// Package adasense is the public API of the AdaSense reproduction: an
// adaptive low-power sensing and human-activity-recognition framework for
// wearable devices (Neseem, Nelson, Reda — DAC 2020).
//
// The package ties together the repository's subsystems:
//
//   - a BMI160-class accelerometer model with Table I's sixteen
//     (sampling-frequency, averaging-window) configurations and a
//     duty-cycle current model;
//   - rate-invariant feature extraction (per-axis mean, σ, and Fourier
//     magnitudes at 1/2/3 Hz) feeding one shared two-layer classifier
//     that serves every configuration;
//   - the SPOT adaptive controller (plain and confidence-gated) that
//     walks the sensor down the Pareto frontier while the user's
//     activity is stable;
//   - a synthetic human-motion generator and a closed-loop simulator for
//     end-to-end power/accuracy evaluation.
//
// # Serving model
//
// The package is organized around the Service/Session serving layer. A
// Service wraps one immutable trained System — the paper's single shared
// classifier — together with the defaults every caller would otherwise
// re-plumb (window/hop, power/noise/MCU models, controller policy),
// configured with functional options. The Service is safe for concurrent
// use from many goroutines; each connected device gets its own
// goroutine-confined Session.
//
// Above the Service sits the fleet Gateway: a sharded session registry
// with id lookup, idle-TTL eviction and a max-sessions cap, an
// atomically swappable current Service (SwapModel repoints new sessions
// and Classify at a retrained System while live sessions keep their
// pinned model until Close or Migrate), bearer-token auth (WithAuth,
// constant-time Authorize), per-device and global token-bucket rate
// limiting (WithRateLimit), graceful drain for shutdown (Drain,
// WithDrainTimeout) and serving telemetry (Gateway.Stats, plus
// Prometheus text exposition via Gateway.WriteMetrics).
//
// Past one gateway, a Cluster federates replicas into a fleet: a
// consistent-hash ring deterministically assigns every device id to one
// replica (Cluster.Route, allocation-free), requests that arrive at the
// wrong replica are forwarded to their owner over the HTTP/JSON wire
// with the bearer token relayed, and Cluster.SwapModel replicates one
// model upload to every replica with counted retries and per-replica
// SwapResult reporting.
// cmd/adasense-gateway serves the whole surface over HTTP/JSON; see
// docs/architecture.md, docs/operations.md and docs/federation.md for
// the layer model, the operational reference and the federation guide.
//
// # Quick start
//
//	sys, _, _ := adasense.TrainSystem(adasense.TrainingConfig{Windows: 2400})
//	svc, _ := adasense.NewService(sys,
//		adasense.WithControllerFactory(func() adasense.Controller {
//			return adasense.NewSPOTWithConfidence(10)
//		}))
//
//	// Closed-loop evaluation, fanned across workers:
//	specs := []adasense.RunSpec{
//		{Motion: adasense.NewMotion(adasense.RandomSchedule(1, 600, 30, 60), 1), Seed: 11},
//		{Motion: adasense.NewMotion(adasense.RandomSchedule(2, 600, 30, 60), 2), Seed: 12},
//	}
//	results, _ := svc.RunMany(ctx, specs, 0)
//	fmt.Printf("accuracy %.1f%%, %.0f µA\n",
//		100*results[0].Accuracy(), results[0].AvgSensorCurrentUA)
//
//	// Real-time serving, one session per device:
//	sess, _ := svc.OpenSession("device-42")
//	defer sess.Close()
//	events, _ := sess.Push(batch) // raw readings at sess.Config()
//
// See examples/ for complete programs and internal/experiments for the
// paper's tables and figures.
package adasense

import (
	"adasense/internal/battery"
	"adasense/internal/core"
	"adasense/internal/dataset"
	"adasense/internal/features"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/sim"
	"adasense/internal/synth"
)

// Activity identifies one of the six recognized activities.
type Activity = synth.Activity

// The six activity classes.
const (
	Sit        = synth.Sit
	Stand      = synth.Stand
	LieDown    = synth.LieDown
	Walk       = synth.Walk
	Upstairs   = synth.Upstairs
	Downstairs = synth.Downstairs

	// NumActivities is the number of activity classes.
	NumActivities = synth.NumActivities
)

// ParseActivity converts an activity name back to an Activity.
func ParseActivity(s string) (Activity, error) { return synth.ParseActivity(s) }

// Config is one accelerometer operating point (sampling frequency and
// averaging window).
type Config = sensor.Config

// PowerModel is the sensor's duty-cycle current model.
type PowerModel = sensor.PowerModel

// ParseConfig parses a configuration label in the Config.Name format,
// e.g. "F100_A128".
func ParseConfig(s string) (Config, error) { return sensor.ParseConfig(s) }

// TableI returns the paper's sixteen sensor configurations.
func TableI() []Config { return sensor.TableI() }

// ParetoStates returns the four Pareto-optimal configurations SPOT walks,
// in descending power order.
func ParetoStates() []Config { return sensor.ParetoStates() }

// DefaultPowerModel returns BMI160-class current constants.
func DefaultPowerModel() PowerModel { return sensor.DefaultPowerModel() }

// Controller adapts the sensor configuration to the classification
// stream; SPOT, the pinned baseline and user-defined policies implement
// it.
type Controller = core.Controller

// SPOT is the paper's State Prediction Optimization Technique controller.
type SPOT = core.SPOT

// Classification is one pipeline output: the predicted activity and its
// softmax confidence.
type Classification = core.Classification

// Pipeline is the feature-extraction + classification pipeline.
type Pipeline = core.Pipeline

// Engine is the real-time deployment loop: the application pushes raw
// sensor batches and receives classification events plus configuration
// switch requests. See System.NewEngine.
type Engine = core.Engine

// Event is one Engine classification tick.
type Event = core.Event

// NewSPOT returns the plain SPOT controller over the paper's four states
// with the given stability threshold in one-second ticks.
func NewSPOT(stabilityTicks int) *SPOT { return core.NewPaperSPOT(stabilityTicks) }

// NewSPOTWithConfidence returns SPOT with the paper's 0.85 confidence
// gate.
func NewSPOTWithConfidence(stabilityTicks int) *SPOT {
	return core.NewPaperSPOTWithConfidence(stabilityTicks)
}

// NewCustomSPOT builds a SPOT controller over arbitrary states and
// thresholds (confidence 0 disables the gate).
func NewCustomSPOT(states []Config, stabilityTicks int, confidence float64) (*SPOT, error) {
	return core.NewSPOTWithConfidence(states, stabilityTicks, confidence)
}

// NewBaselineController returns the paper's fixed F100_A128 baseline.
func NewBaselineController() Controller { return core.NewBaseline() }

// NewFixedController returns a controller that pins the sensor at one
// arbitrary configuration — the closed-loop stand-in for an open-loop
// design point.
func NewFixedController(cfg Config) Controller { return &core.Fixed{Cfg: cfg} }

// Schedule is a ground-truth activity timeline; Motion is its concrete
// signal realization.
type (
	Schedule = synth.Schedule
	Segment  = synth.Segment
	Motion   = synth.Motion
)

// ChangeSetting names the Fig. 7 activity-volatility settings.
type ChangeSetting = synth.ChangeSetting

// The three activity-change settings.
const (
	HighChange   = synth.HighChange
	MediumChange = synth.MediumChange
	LowChange    = synth.LowChange
)

// NewSchedule builds a schedule from explicit segments.
func NewSchedule(segments []Segment) (*Schedule, error) { return synth.NewSchedule(segments) }

// RandomSchedule generates a schedule with uniform dwell times in
// [dwellLo, dwellHi] seconds.
func RandomSchedule(seed uint64, totalSec, dwellLo, dwellHi float64) *Schedule {
	return synth.RandomSchedule(rng.New(seed), totalSec, dwellLo, dwellHi)
}

// SettingSchedule generates a schedule for one of the paper's
// High/Medium/Low settings.
func SettingSchedule(seed uint64, setting ChangeSetting, totalSec float64) *Schedule {
	return synth.SettingSchedule(rng.New(seed), setting, totalSec)
}

// NewMotion realizes a schedule as a concrete synthetic signal.
func NewMotion(schedule *Schedule, seed uint64) *Motion {
	return synth.NewMotion(synth.DefaultModels(), schedule, rng.New(seed))
}

// Battery is a small battery pack for lifetime projections.
type Battery = battery.Pack

// CoinCellCR2032 and SmallLiPo40 are common wearable battery presets.
func CoinCellCR2032() Battery { return battery.CoinCellCR2032() }

// SmallLiPo40 returns a 40 mAh wearable LiPo pack.
func SmallLiPo40() Battery { return battery.SmallLiPo40() }

// SimulationSpec and SimulationResult describe closed-loop runs.
type (
	SimulationSpec   = sim.Spec
	SimulationResult = sim.Result
)

// Simulate runs the closed sensing/classification/control loop.
//
// Deprecated: build a Service with NewService and use Service.Run or
// Service.RunMany, which fill in window/hop and hardware-model defaults
// and reuse pooled pipelines. Simulate remains for callers that assemble
// a full SimulationSpec by hand.
func Simulate(spec SimulationSpec, seed uint64) (SimulationResult, error) {
	return sim.Run(spec, rng.New(seed))
}

// System bundles a trained shared classifier with its feature layout.
type System struct {
	// Network is the shared classifier (one network for every sensor
	// configuration).
	Network *nn.Network

	binFreqs []float64
}

// TrainingConfig parameterizes TrainSystem.
type TrainingConfig struct {
	// Windows is the training corpus size across the four Pareto
	// configurations (default 7300, the paper's corpus).
	Windows int
	// Hidden is the classifier's hidden width (default 32).
	Hidden int
	// Epochs is the number of training passes (default 60).
	Epochs int
	// HoldoutFrac reserves a test fraction and reports accuracy
	// (default 0.2).
	HoldoutFrac float64
	// Seed drives every stochastic choice (default 1).
	Seed uint64
}

// TrainSystem generates a synthetic corpus over the four Pareto
// configurations and trains the shared classifier, returning the system
// and its held-out accuracy.
func TrainSystem(cfg TrainingConfig) (*System, float64, error) {
	if cfg.Windows == 0 {
		cfg.Windows = 7300
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	if cfg.HoldoutFrac == 0 {
		cfg.HoldoutFrac = 0.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := rng.New(cfg.Seed)
	corpus, err := dataset.Generate(dataset.GenSpec{Windows: cfg.Windows}, r.Split(1))
	if err != nil {
		return nil, 0, err
	}
	train, test := corpus.Split(cfg.HoldoutFrac, r.Split(2))
	net := nn.New(corpus.FeatureSize, cfg.Hidden, NumActivities, r.Split(3))
	X, Y := train.XY()
	if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: cfg.Epochs, LabelSmoothing: 0.1}, r.Split(4)); err != nil {
		return nil, 0, err
	}
	tx, ty := test.XY()
	return &System{Network: net, binFreqs: features.DefaultBinFreqsHz()}, nn.Accuracy(net, tx, ty), nil
}

// NewPipeline returns a fresh classification pipeline over the system's
// classifier. Pipelines own scratch buffers: create one per goroutine.
func (s *System) NewPipeline() (*Pipeline, error) {
	ext, err := features.NewExtractor(s.binFreqs)
	if err != nil {
		return nil, err
	}
	return core.NewPipeline(s.Network, ext)
}

// NewEngine returns a real-time engine over the system's classifier and
// the given controller, using the paper's 2 s window / 1 s hop. The
// application must sample its sensor at Engine.Config and push raw batches
// as they arrive.
//
// Deprecated: build a Service with NewService and mint sessions with
// Service.OpenSession; a Session wraps the same engine loop with pooled
// scratch buffers and service-wide defaults.
func (s *System) NewEngine(ctl Controller) (*Engine, error) {
	pipe, err := s.NewPipeline()
	if err != nil {
		return nil, err
	}
	return core.NewEngine(pipe, ctl, 0, 0)
}

// Save and LoadSystem (the versioned model container) live in model.go.
