package adasense_test

import (
	"bytes"
	"sync"
	"testing"

	"adasense"
	"adasense/internal/rng"
	"adasense/internal/sensor"
)

var (
	sysOnce sync.Once
	sysInst *adasense.System
	sysAcc  float64
	sysErr  error
)

func trainedSystem(t *testing.T) (*adasense.System, float64) {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysAcc, sysErr = adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 2400, Epochs: 40, Seed: 7,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst, sysAcc
}

func TestTrainSystemAccuracy(t *testing.T) {
	_, acc := trainedSystem(t)
	if acc < 0.90 {
		t.Fatalf("held-out accuracy = %v, want >= 0.90", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sys, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := adasense.LoadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Network.In != sys.Network.In {
		t.Fatal("round trip lost dimensions")
	}
	if _, err := loaded.NewPipeline(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := adasense.LoadSystem(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPublicTableIAndStates(t *testing.T) {
	if len(adasense.TableI()) != 16 {
		t.Fatal("TableI size wrong")
	}
	states := adasense.ParetoStates()
	if len(states) != 4 || states[0].Name() != "F100_A128" {
		t.Fatalf("ParetoStates = %v", states)
	}
	p := adasense.DefaultPowerModel()
	if p.CurrentUA(states[0]) != 180 {
		t.Fatal("power model wrong")
	}
}

func TestParseActivity(t *testing.T) {
	a, err := adasense.ParseActivity("walk")
	if err != nil || a != adasense.Walk {
		t.Fatalf("ParseActivity = %v, %v", a, err)
	}
}

func TestEndToEndSimulation(t *testing.T) {
	sys, _ := trainedSystem(t)
	pipe, err := sys.NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := adasense.NewSchedule([]adasense.Segment{
		{Activity: adasense.Sit, Duration: 60},
		{Activity: adasense.Walk, Duration: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := adasense.Simulate(adasense.SimulationSpec{
		Motion:     adasense.NewMotion(sched, 11),
		Controller: adasense.NewSPOTWithConfidence(8),
		Classifier: pipe,
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.80 {
		t.Fatalf("end-to-end accuracy = %v", res.Accuracy())
	}
	if res.AvgSensorCurrentUA >= 180 {
		t.Fatal("SPOT saved nothing")
	}
}

func TestEngineStreaming(t *testing.T) {
	sys, _ := trainedSystem(t)
	eng, err := sys.NewEngine(adasense.NewSPOT(5))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the engine with simulated "hardware" batches.
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Stand, Duration: 30}})
	if err != nil {
		t.Fatal(err)
	}
	motion := adasense.NewMotion(sched, 17)
	sampler := newTestSampler(19)
	events := 0
	for tick := 0; tick < 30; tick++ {
		b := sampler.Sample(motion, eng.Config(), float64(tick), float64(tick)+1)
		ev, err := eng.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		events += len(ev)
	}
	if events < 25 {
		t.Fatalf("30 s of streaming produced %d events", events)
	}
	// A stable stand must have walked SPOT off the top configuration.
	if eng.Config() == adasense.ParetoStates()[0] {
		t.Fatal("engine never descended on a stable activity")
	}
}

func TestCustomSPOTAndSchedules(t *testing.T) {
	if _, err := adasense.NewCustomSPOT(nil, 5, 0.5); err == nil {
		t.Fatal("empty states accepted")
	}
	spot, err := adasense.NewCustomSPOT(adasense.ParetoStates()[:2], 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if spot.NumStates() != 2 {
		t.Fatal("custom states lost")
	}
	s := adasense.RandomSchedule(3, 300, 10, 30)
	if s.Total() != 300 {
		t.Fatalf("schedule total = %v", s.Total())
	}
	s2 := adasense.SettingSchedule(4, adasense.LowChange, 300)
	for _, seg := range s2.Segments()[:len(s2.Segments())-1] {
		if seg.Duration < 60 {
			t.Fatalf("Low setting dwell %v below a minute", seg.Duration)
		}
	}
}

// newTestSampler builds a sensor sampler for engine streaming tests.
func newTestSampler(seed uint64) *sensor.Sampler {
	return sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(seed))
}
