// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus serving-layer throughput baselines. Each figure
// benchmark runs the corresponding experiment from internal/experiments
// at a size that completes in seconds; the paper-scale runs behind
// EXPERIMENTS.md use cmd/adasense-experiments.
//
//	go test -bench=. -benchmem
//
// The reported metric of interest for the figure benchmarks is the custom
// one attached with b.ReportMetric (accuracy, µA, savings), not ns/op.
// The BenchmarkService* group measures the Service/Session layer itself
// (session churn, concurrent classification and streaming throughput) so
// later scaling work has a baseline.
package adasense_test

import (
	"sync"
	"testing"

	"adasense"
	"adasense/internal/experiments"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
	benchLabErr  error
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = experiments.NewQuickLab(20260612)
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// benchService wraps the benchmark lab's shared classifier in a Service;
// the fixed-at-top controller keeps streamed batches valid forever, so
// throughput benchmarks can reuse one pre-sampled batch.
func benchService(b *testing.B) *adasense.Service {
	b.Helper()
	sys := &adasense.System{Network: lab(b).Net}
	svc, err := adasense.NewService(sys, adasense.WithControllerFactory(func() adasense.Controller {
		return adasense.NewBaselineController()
	}))
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// benchBatch samples one batch of benchSec seconds at the top
// configuration.
func benchBatch(b *testing.B, benchSec float64) *adasense.Batch {
	b.Helper()
	m := adasense.NewMotion(adasense.RandomSchedule(61, 30, 10, 20), 62)
	return adasense.NewSampler(adasense.DefaultNoiseModel(), 63).
		Sample(m, adasense.ParetoStates()[0], 0, benchSec)
}

// BenchmarkServiceOpenSession measures session churn: open, one 1 s
// push, close — the cost a connecting device pays.
func BenchmarkServiceOpenSession(b *testing.B) {
	svc := benchService(b)
	batch := benchBatch(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := svc.OpenSession("bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Push(batch); err != nil {
			b.Fatal(err)
		}
		sess.Close()
	}
}

// BenchmarkServiceConcurrentClassify measures stateless classification
// throughput with every core hammering the shared classifier through the
// pipeline pool.
func BenchmarkServiceConcurrentClassify(b *testing.B) {
	svc := benchService(b)
	batch := benchBatch(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Classify(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceConcurrentSessions measures streaming throughput with
// one long-lived session per worker goroutine pushing one-hop batches —
// the serving layer's steady state.
func BenchmarkServiceConcurrentSessions(b *testing.B) {
	svc := benchService(b)
	batch := benchBatch(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess, err := svc.OpenSession("bench")
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		for pb.Next() {
			if _, err := sess.Push(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1Configurations regenerates Table I (the sixteen sensor
// configurations with the power model's mode/duty/current columns).
func BenchmarkTable1Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1()
		if len(res.Rows) != 16 {
			b.Fatal("table incomplete")
		}
	}
}

// BenchmarkFig2DesignSpace regenerates the Fig. 2 accuracy/current
// landscape and Pareto frontier over all sixteen configurations.
func BenchmarkFig2DesignSpace(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig2(experiments.Fig2Spec{TrainWindows: 1200, TestWindows: 900, Replicas: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			top := 0.0
			for _, p := range res.Exploration.Points {
				if p.Accuracy > top {
					top = p.Accuracy
				}
			}
			b.ReportMetric(100*top, "best-acc-%")
			b.ReportMetric(float64(len(res.Exploration.Front)), "front-size")
		}
	}
}

// BenchmarkFig5Behavioral regenerates the Fig. 5 120-second behavioural
// trace (sit 60 s → walk 60 s) under SPOT-with-confidence.
func BenchmarkFig5Behavioral(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FloorReachedAt, "floor-at-s")
			b.ReportMetric(res.Run.AvgSensorCurrentUA, "avg-uA")
		}
	}
}

// fig6 runs the Fig. 6 sweep once per benchmark invocation and reports the
// requested panel's metrics.
func fig6(b *testing.B, powerPanel bool) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig6(experiments.Fig6Spec{
			Thresholds:  []int{0, 10, 20, 40, 60},
			Repeats:     2,
			ScheduleSec: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := res.Rows[len(res.Rows)-1]
			if powerPanel {
				b.ReportMetric(100*res.OpSavingSPOT, "spot-saving-%")
				b.ReportMetric(100*res.OpSavingConf, "conf-saving-%")
			} else {
				b.ReportMetric(100*res.Rows[0].SPOTAcc, "acc-thr0-%")
				b.ReportMetric(100*last.SPOTAcc, "acc-thr60-%")
			}
		}
	}
}

// BenchmarkFig6aAccuracy regenerates Fig. 6a: classification accuracy vs
// stability threshold for baseline / SPOT / SPOT+confidence.
func BenchmarkFig6aAccuracy(b *testing.B) { fig6(b, false) }

// BenchmarkFig6bPower regenerates Fig. 6b: sensor power vs stability
// threshold, including the headline operating-point savings.
func BenchmarkFig6bPower(b *testing.B) { fig6(b, true) }

// BenchmarkFig7Comparison regenerates Fig. 7: AdaSense vs the
// intensity-based approach across the High/Medium/Low settings.
func BenchmarkFig7Comparison(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig7(experiments.Fig7Spec{Repeats: 2, ScheduleSec: 300})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			low := res.Rows[2]
			b.ReportMetric(100*(1-low.AdaSensePow/low.IbAPow), "low-saving-%")
		}
	}
}

// BenchmarkMemoryFootprint regenerates the Section V-D classifier-memory
// comparison (1 shared network vs 2 per-rate vs 4 per-configuration).
func BenchmarkMemoryFootprint(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		m := l.Memory()
		if i == b.N-1 {
			b.ReportMetric(float64(m.BankBytes)/float64(m.SharedBytes), "iba-ratio")
			b.ReportMetric(float64(m.PerConfigBytes)/float64(m.SharedBytes), "perconfig-ratio")
		}
	}
}

// BenchmarkProcessingOverhead regenerates the Section V-D data-processing
// comparison: IbA's derivative computation vs AdaSense's pipeline.
func BenchmarkProcessingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Overhead()
		if i == b.N-1 {
			r := res.Rows[0] // F100_A128's 200-sample window
			b.ReportMetric(100*(float64(r.IbACycles)/float64(r.AdaSenseCycles)-1), "iba-overhead-%")
		}
	}
}

// BenchmarkFeatureAblation regenerates the Section III-B claim: accuracy
// vs number of Fourier coefficients, saturating around three.
func BenchmarkFeatureAblation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.FeatureAblation(1500)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.Rows[0].Accuracy, "acc-0bins-%")
			b.ReportMetric(100*res.Rows[3].Accuracy, "acc-3bins-%")
		}
	}
}

// BenchmarkAblationConfidence sweeps the SPOT confidence threshold (the
// paper fixes 0.85 without justification; this locates the sweet spot).
func BenchmarkAblationConfidence(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.ConfidenceAblation(10, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Confidence == 0.85 {
					b.ReportMetric(row.PowerUA, "uA-at-0.85")
				}
			}
		}
	}
}

// BenchmarkAblationFixedPoint compares float32 and Q15 deployments of the
// shared classifier.
func BenchmarkAblationFixedPoint(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.FixedPointAblation(1200)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*(res.FloatAccuracy-res.Q15Accuracy), "acc-cost-pp")
		}
	}
}

// BenchmarkAblationDescendMode compares the two readings of the paper's
// stability-counter semantics (count-once vs count-per-state) on the same
// workload; see internal/core.DescendMode.
func BenchmarkAblationDescendMode(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.DescendModeAblation(10, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.CountOncePowerUA, "count-once-uA")
			b.ReportMetric(res.CountPerStatePowerUA, "per-state-uA")
		}
	}
}

// BenchmarkAblationHiddenWidth sweeps the classifier's hidden width: the
// accuracy-per-byte trade-off behind the paper's memory argument.
func BenchmarkAblationHiddenWidth(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.HiddenWidthAblation(1500)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Hidden == 32 {
					b.ReportMetric(100*row.Accuracy, "acc-h32-%")
				}
			}
		}
	}
}

// BenchmarkAblationFeatureFamilies compares the statistical, Fourier and
// wavelet feature families (the paper's related-work trade-off) on
// accuracy and per-window MCU cost.
func BenchmarkAblationFeatureFamilies(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.FeatureFamilyAblation(1500)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.Rows[1].Accuracy, "fourier-acc-%")
			b.ReportMetric(100*res.Rows[2].Accuracy, "wavelet-acc-%")
		}
	}
}
