package adasense

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/hashring"
	"adasense/internal/membership"
	"adasense/internal/reqtrace"
	"adasense/internal/telemetry"
)

// stampTrace copies a request trace's identity onto an outbound peer
// call: the id as-is and the hop count advanced by one, so the receiving
// replica's spans join the same fleet-wide trace one hop downstream. A
// nil trace (an untraced internal call) stamps nothing; the receiver
// mints its own id.
func stampTrace(h http.Header, tr *reqtrace.Trace) {
	if tr == nil || tr.ID == "" {
		return
	}
	h.Set(TraceHeader, tr.ID)
	h.Set(TraceHopHeader, strconv.Itoa(tr.Hop+1))
}

// Federation headers on the HTTP/JSON wire. ForwardedHeader marks a
// request a replica has already forwarded once; the receiver serves it
// locally even if its own ring disagrees, so a transient membership skew
// between replicas cannot bounce a request forever. ReplicatedHeader
// marks a model upload fanned out by a peer's Cluster.SwapModel; the
// receiver applies it to its local gateway only instead of re-replicating,
// so one fleet-wide push cannot echo.
// ModelGenHeader carries the sender's model generation (a decimal
// uint64) on forwards, replicated pushes and GET /v1/model responses; a
// receiver that sees a generation ahead of its own pulls the newer model
// from the sender (see Cluster.ObserveModelGen).
// TraceHeader carries the fleet-wide request trace id (lowercase hex,
// minted at first ingress) and TraceHopHeader the decimal hop count, so
// one request keeps one identity across forwards, replicated pushes and
// model catch-up pulls; the receiving replica's spans land in its own
// flight recorder under the same id.
const (
	ForwardedHeader  = "X-Adasense-Forwarded"
	ReplicatedHeader = "X-Adasense-Replicated"
	ModelGenHeader   = "X-Adasense-Model-Gen"
	TraceHeader      = "X-Adasense-Trace"
	TraceHopHeader   = "X-Adasense-Trace-Hop"
)

// ErrNotClusterMember reports a NewCluster whose self id is missing from
// the replica set.
var ErrNotClusterMember = errors.New("adasense: self id not in the replica set")

// Replica identifies one gateway replica of a federated fleet: a stable
// id (its position on the hash ring) and the base URL peers reach it at.
// The self replica's URL may be empty — a cluster never calls itself
// over the wire.
type Replica struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// DefaultSwapRetries is the number of retries (after the first attempt)
// SwapModel gives each peer before reporting it failed.
const DefaultSwapRetries = 2

// DefaultSwapRetryBackoff is the pause before a peer's first swap
// retry; each further retry waits one multiple longer, so the default
// schedule (250 ms, then 500 ms) absorbs restart-sized peer outages
// instead of burning every attempt in the same millisecond.
const DefaultSwapRetryBackoff = 250 * time.Millisecond

// clusterConfig holds the federation policy a Cluster applies over its
// gateway.
type clusterConfig struct {
	vnodes   int
	hash     hashring.Hash
	client   *http.Client
	token    string
	retries  int
	backoff  time.Duration
	coldOnly bool
}

// ClusterOption configures a Cluster.
type ClusterOption func(*clusterConfig) error

// WithClusterVirtualNodes sets the hash ring's per-replica virtual-node
// count (default hashring.DefaultVirtualNodes). Every replica of a fleet
// must use the same value, or placements diverge.
func WithClusterVirtualNodes(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("adasense: non-positive virtual-node count %d", n)
		}
		c.vnodes = n
		return nil
	}
}

// WithClusterHash injects the ring's hash function, making placement
// deterministically testable. Every replica of a fleet must use the same
// hash.
func WithClusterHash(h func(string) uint64) ClusterOption {
	return func(c *clusterConfig) error {
		if h == nil {
			return fmt.Errorf("adasense: nil cluster hash")
		}
		c.hash = h
		return nil
	}
}

// WithPeerClient sets the HTTP client used for peer calls (default: a
// client with a 10 s timeout).
func WithPeerClient(client *http.Client) ClusterOption {
	return func(c *clusterConfig) error {
		if client == nil {
			return fmt.Errorf("adasense: nil peer client")
		}
		c.client = client
		return nil
	}
}

// WithPeerAuth sets the bearer token presented on peer calls that carry
// no incoming Authorization header of their own (SwapModel replication).
// Fleets reuse one token: the same value passed to every replica's
// WithAuth.
func WithPeerAuth(token string) ClusterOption {
	return func(c *clusterConfig) error {
		c.token = token
		return nil
	}
}

// WithSwapRetries sets how many times SwapModel retries each
// transiently failing peer (transport error or 5xx; a 4xx fails fast)
// after its first attempt (default DefaultSwapRetries). Zero means one
// attempt only.
func WithSwapRetries(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n < 0 {
			return fmt.Errorf("adasense: negative swap retry count %d", n)
		}
		c.retries = n
		return nil
	}
}

// WithSwapRetryBackoff sets the pause before a peer's first swap retry
// (default DefaultSwapRetryBackoff); retry k waits k times as long.
// Zero retries immediately; negative is invalid.
func WithSwapRetryBackoff(d time.Duration) ClusterOption {
	return func(c *clusterConfig) error {
		if d < 0 {
			return fmt.Errorf("adasense: negative swap retry backoff %v", d)
		}
		c.backoff = d
		return nil
	}
}

// WithStatefulHandoff controls whether a rebalance transfers departing
// sessions' live state to their new owner (default true). Enabled, the
// departing replica snapshots each moved session into an ADSS container
// and PUTs it to the new owner, so the device's adaptation trajectory —
// its duty-cycle descent, window remainder and energy ledger — survives
// the move. Disabled, sessions are simply closed and the new owner
// re-opens them cold, which is the pre-stateful behavior and the right
// choice when replicas run skewed builds whose state payloads disagree.
func WithStatefulHandoff(enabled bool) ClusterOption {
	return func(c *clusterConfig) error {
		c.coldOnly = !enabled
		return nil
	}
}

// clusterView is one immutable generation of the cluster's membership:
// the rebuilt hash ring plus the replica table behind it. Views are
// swapped atomically on a membership change, so the per-request Route
// path reads one pointer and never sees a half-applied rebalance; the
// generation tag makes a stale view detectable wherever a routing
// decision outlives the view it was made on.
type clusterView struct {
	generation uint64
	ring       *hashring.Ring
	replicas   map[string]Replica
	// departed holds the members of the previous view that this one
	// dropped. A replica hands sessions off precisely because the new
	// ring excludes it, so the session-state routes must recognize the
	// previous generation's members where the forwarding routes do not
	// (see IsHandoffPeer).
	departed map[string]Replica
}

// Cluster federates gateway replicas into one fleet: a consistent-hash
// ring assigns every device id to exactly one replica, requests that
// arrive at the wrong replica are forwarded to their owner over the
// existing HTTP/JSON wire, and one model upload is replicated to every
// replica so the whole fleet retrains together.
//
// Placement is a pure function of the member set (see
// adasense/internal/hashring), so replicas agree on ownership with zero
// coordination traffic. Membership is either fixed for the cluster's
// lifetime (NewCluster over a static replica list) or driven by a
// discovery source (NewClusterWithSource): each published snapshot
// atomically swaps in a rebuilt, generation-tagged ring and hands off
// the local sessions whose devices moved to another owner. All methods
// are safe for concurrent use.
type Cluster struct {
	self     string
	gw       *Gateway
	client   *http.Client
	token    string
	retries  int
	backoff  time.Duration
	vnodes   int
	hash     hashring.Hash
	coldOnly bool

	// view is the current membership generation; applyMu serializes
	// snapshot application (the subscription goroutine plus any direct
	// callers) so handoffs for one generation finish dispatching before
	// the next generation's are computed. applyErr holds the most
	// recent snapshot-validation failure (nil after a clean apply),
	// surfaced by MembershipErr.
	view     atomic.Pointer[clusterView]
	applyMu  sync.Mutex
	applyErr atomic.Value // applyError

	// pulling guards the single-flight model catch-up pull (see
	// ObserveModelGen in cluster_rollout.go).
	pulling atomic.Bool

	src       membership.Source
	done      chan struct{}
	closeOnce sync.Once
}

// applyError wraps an error for atomic.Value (which needs a single
// concrete stored type, including for the nil-error case).
type applyError struct{ err error }

// newClusterCore validates the shared constructor arguments and builds
// the cluster shell every constructor finishes from its own view.
func newClusterCore(gw *Gateway, self string, opts []ClusterOption) (*Cluster, error) {
	if gw == nil {
		return nil, fmt.Errorf("adasense: NewCluster needs a gateway")
	}
	if self == "" {
		return nil, fmt.Errorf("adasense: NewCluster needs a non-empty self id")
	}
	cfg := clusterConfig{
		vnodes:  hashring.DefaultVirtualNodes,
		client:  &http.Client{Timeout: 10 * time.Second},
		retries: DefaultSwapRetries,
		backoff: DefaultSwapRetryBackoff,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return &Cluster{
		self:     self,
		gw:       gw,
		client:   cfg.client,
		token:    cfg.token,
		retries:  cfg.retries,
		backoff:  cfg.backoff,
		vnodes:   cfg.vnodes,
		hash:     cfg.hash,
		coldOnly: cfg.coldOnly,
	}, nil
}

// buildView turns a membership snapshot into an immutable cluster view:
// a fresh ring over the member ids plus the validated replica table
// (peer entries need a valid http(s) base URL; the self entry's URL is
// ignored — a cluster never calls itself over the wire).
func (c *Cluster) buildView(snap membership.Snapshot) (*clusterView, error) {
	if len(snap.Members) == 0 {
		return nil, fmt.Errorf("adasense: membership snapshot has no replicas")
	}
	ringOpts := []hashring.Option{hashring.WithVirtualNodes(c.vnodes)}
	if c.hash != nil {
		ringOpts = append(ringOpts, hashring.WithHash(c.hash))
	}
	ring, err := hashring.New(ringOpts...)
	if err != nil {
		return nil, fmt.Errorf("adasense: %w", err)
	}
	replicas := make(map[string]Replica, len(snap.Members))
	for _, m := range snap.Members {
		rep := Replica{ID: m.ID, URL: m.URL}
		if _, dup := replicas[rep.ID]; dup {
			return nil, fmt.Errorf("adasense: duplicate replica id %q", rep.ID)
		}
		if rep.ID != c.self {
			u, err := url.Parse(rep.URL)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return nil, fmt.Errorf("adasense: replica %q needs an http(s) base URL, got %q", rep.ID, rep.URL)
			}
			rep.URL = strings.TrimSuffix(rep.URL, "/")
		}
		if err := ring.Add(rep.ID); err != nil {
			return nil, fmt.Errorf("adasense: %w", err)
		}
		replicas[rep.ID] = rep
	}
	return &clusterView{generation: snap.Generation, ring: ring, replicas: replicas}, nil
}

// NewCluster federates gw as replica self among a fixed replica list
// (which must include self; peer entries need a valid http(s) base
// URL). The gateway's telemetry gains the federation counters, surfaced
// through Gateway.Stats and /metrics. For discovery-driven membership
// use NewClusterWithSource — NewCluster is exactly that over a
// membership.StaticSource, so static and discovered fleets share one
// construction path.
func NewCluster(gw *Gateway, self string, replicas []Replica, opts ...ClusterOption) (*Cluster, error) {
	// A static cluster must contain itself: there is no later snapshot
	// that could bring this replica into the fleet.
	member := false
	members := make([]membership.Member, len(replicas))
	for i, rep := range replicas {
		member = member || rep.ID == self
		members[i] = membership.Member{ID: rep.ID, URL: rep.URL}
	}
	if self != "" && !member {
		return nil, fmt.Errorf("%w: %q", ErrNotClusterMember, self)
	}
	src, err := membership.NewStatic(members)
	if err != nil {
		return nil, fmt.Errorf("adasense: %w", err)
	}
	return NewClusterWithSource(gw, self, src, opts...)
}

// NewClusterWithSource federates gw as replica self over a dynamic
// membership source (see adasense/internal/membership): the source's
// current snapshot becomes the initial ring, and every later snapshot
// atomically swaps in a rebuilt, generation-tagged view, hands off the
// local sessions whose devices changed owner (each closed after its
// in-flight push; the device is transparently re-adopted by its new
// owner on next contact), and advances the rebalance telemetry.
//
// Unlike NewCluster, self need not appear in the current snapshot: a
// replica waiting for discovery to announce it (or already retired from
// the fleet) owns no devices and serves as a pure forwarder until a
// snapshot includes it. Close stops the subscription and closes the
// source; on a construction error the source is closed too, so a
// failed constructor never leaks a running poller.
func NewClusterWithSource(gw *Gateway, self string, src membership.Source, opts ...ClusterOption) (*Cluster, error) {
	if src == nil {
		return nil, fmt.Errorf("adasense: NewClusterWithSource needs a membership source")
	}
	c, err := newClusterCore(gw, self, opts)
	if err != nil {
		src.Close()
		return nil, err
	}
	view, err := c.buildView(src.Current())
	if err != nil {
		src.Close()
		return nil, err
	}
	c.view.Store(view)
	c.applyErr.Store(applyError{})
	// Locally decided rollout stage transitions replicate to every peer
	// through the cluster's retry plumbing, so the fleet agrees on the
	// current stage even when only one replica's traffic tripped a gate.
	gw.rolloutNotify = c.replicateTransition
	c.src = src
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		for snap := range src.Updates() {
			// An invalid snapshot (bad peer URL, duplicate id) keeps the
			// last good view serving; the rejection is surfaced through
			// MembershipErr, since the source itself considered the
			// snapshot well-formed.
			c.applySnapshot(snap)
		}
	}()
	return c, nil
}

// MembershipErr returns the most recent membership snapshot the cluster
// rejected (an entry the source accepted but the cluster cannot route
// on — a peer without an http(s) URL, a duplicate id), or nil after a
// cleanly applied snapshot. The serving view is unaffected by
// rejections; this is the observability hook for a fleet whose
// discovery data has gone bad while the last good membership keeps
// serving. (A file-level read or parse failure is reported by the
// source's own Err hook instead.)
func (c *Cluster) MembershipErr() error {
	if v, ok := c.applyErr.Load().(applyError); ok {
		return v.err
	}
	return nil
}

// applySnapshot swaps in the view built from snap and hands off the
// local sessions the new ring assigns elsewhere. Snapshots at or behind
// the current generation are ignored, so a late-delivered update cannot
// roll the ring back.
func (c *Cluster) applySnapshot(snap membership.Snapshot) error {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()
	if snap.Generation <= c.view.Load().generation {
		return nil
	}
	view, err := c.buildView(snap)
	if err != nil {
		c.applyErr.Store(applyError{err: err})
		return err
	}
	c.applyErr.Store(applyError{})
	// Remember who just left: their in-flight state handoffs must still
	// authenticate as fleet traffic on this replica (one generation of
	// grace — a second change forgets them).
	old := c.view.Load()
	for id, rep := range old.replicas {
		if _, still := view.replicas[id]; !still {
			if view.departed == nil {
				view.departed = make(map[string]Replica)
			}
			view.departed[id] = rep
		}
	}
	c.view.Store(view)
	c.gw.tel.Rebalance()
	// Session handoff: every local session whose device the new ring
	// assigns to another replica is snapshotted, closed, and its state
	// shipped to the new owner — each on its own goroutine, after its
	// in-flight push (sessions serialize their own calls), so one long
	// push delays only its own device. If the transfer cannot happen
	// (stateful handoff disabled, snapshot failed, new owner unknown or
	// unreachable) the session is simply closed and the new owner adopts
	// the device cold on its next contact.
	var departing []*GatewaySession
	c.gw.reg.Range(func(id string, gs *GatewaySession) bool {
		if owner, ok := view.ring.Lookup(id); !ok || owner != c.self {
			departing = append(departing, gs)
		}
		return true
	})
	for _, gs := range departing {
		go c.handOff(gs)
	}
	return nil
}

// handOff dispatches one departing session after a rebalance: close it
// locally and, when stateful handoff is enabled and the new owner is a
// known peer, ship its state snapshot so the device's adaptation
// trajectory survives the move. Every failure degrades to the cold
// path — the session is already closed, so the new owner re-opens it
// from the top configuration on the device's next contact.
func (c *Cluster) handOff(gs *GatewaySession) {
	// Re-check against the live view before closing: under a membership
	// flap, a later snapshot may have restored this device's ownership
	// while the goroutine waited to run, and a session the current ring
	// assigns here must not be torn down by a stale handoff. (That later
	// snapshot's own sweep covers anything this one skips.)
	view := c.view.Load()
	owner, ok := view.ring.Lookup(gs.id)
	if ok && owner == c.self {
		return
	}
	rep, known := view.replicas[owner]
	if c.coldOnly || !known {
		if gs.closeHandedOff() {
			c.gw.tel.SessionHandedOff()
		}
		return
	}
	st, closed := gs.snapshotHandedOff()
	if !closed {
		return // lost the race with a concurrent close
	}
	c.gw.tel.SessionHandedOff()
	if st == nil {
		return // snapshot failed; the new owner adopts the device cold
	}
	body, err := st.AppendBinary(make([]byte, 0, st.EncodedLen()))
	if err != nil {
		return
	}
	// The transfer rides the replicated-push path (peer auth, trace
	// stamping, transient-only retries) on a detached context: the
	// rebalance has already committed locally, so a canceled caller must
	// not strand the state in flight. A failed or rejected PUT needs no
	// cleanup — the device adopts cold at its new owner, exactly as if
	// the snapshot had never been taken.
	c.pushBytes(context.Background(), http.MethodPut, rep,
		"/v1/session-state/"+url.PathEscape(gs.id), "application/octet-stream", body)
}

// Close stops the cluster's membership subscription and closes its
// source (a no-op stream on a static cluster). Close is idempotent,
// safe to call concurrently, and every call returns only once the
// subscription goroutine has exited. The cluster keeps serving its last
// view after Close — routing and forwarding still work, membership just
// stops updating.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { c.src.Close() })
	<-c.done
}

// Self returns this replica's id.
func (c *Cluster) Self() string { return c.self }

// Gateway returns the local gateway the cluster fronts.
func (c *Cluster) Gateway() *Gateway { return c.gw }

// Generation returns the membership generation the cluster currently
// routes on. It increases with every applied snapshot (a static cluster
// stays at 1 forever), so two routing decisions can be compared for
// staleness across a rebalance.
func (c *Cluster) Generation() uint64 { return c.view.Load().generation }

// Members returns every replica of the current membership view, sorted
// by id.
func (c *Cluster) Members() []Replica {
	view := c.view.Load()
	members := make([]Replica, 0, len(view.replicas))
	for _, rep := range view.replicas {
		members = append(members, rep)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	return members
}

// Route returns the replica owning device and whether that is this
// replica. Every replica of a fleet computes the same answer for the
// same device and member set, so a misdirected request needs at most
// one forwarding hop (a fleet mid-rebalance may disagree for one poll
// interval; the forwarding loop guard bounds that to one extra hop).
// The local-hit path performs no allocations.
func (c *Cluster) Route(device string) (Replica, bool) {
	view := c.view.Load()
	owner, _ := view.ring.Lookup(device) // every view has ≥ 1 member
	return view.replicas[owner], owner == c.self
}

// Owns reports whether this replica owns device.
func (c *Cluster) Owns(device string) bool {
	_, local := c.Route(device)
	return local
}

// IsPeer reports whether id names a current cluster member other than
// this replica. HTTP front ends use it to validate the federation wire
// markers: a ForwardedHeader/ReplicatedHeader whose value is not a
// known peer id did not come from this fleet and must not bypass
// routing or replication.
func (c *Cluster) IsPeer(id string) bool {
	_, ok := c.view.Load().replicas[id]
	return ok && id != c.self
}

// IsHandoffPeer reports whether id names a current peer or a member the
// most recent membership change dropped. The session-state routes use
// this wider check: state arrives from a replica that is, by
// definition, no longer in the ring — it hands off precisely because
// the new view excludes it. The grace lasts one generation; a second
// membership change forgets the departed member.
func (c *Cluster) IsHandoffPeer(id string) bool {
	if c.IsPeer(id) {
		return true
	}
	_, ok := c.view.Load().departed[id]
	return ok && id != c.self
}

// MarkStaleRoute records one stale routing decision: a request arrived
// here carrying a peer's forwarding marker although the current ring
// says this replica is not the device's owner — the sender routed on a
// different membership generation. The request is still served locally
// (the loop guard), but the counter surfaces how long a fleet stays
// skewed after a rebalance.
func (c *Cluster) MarkStaleRoute() { c.gw.tel.StaleRoute() }

// Forward proxies r to peer to, relaying the response (status, content
// type, body) back through w. The incoming Authorization header travels
// with the request — fleets share one bearer token, so the owning
// replica re-authorizes the original credentials — and ForwardedHeader
// is stamped so the receiver serves the request locally rather than
// forwarding again. The request body is consumed either way.
//
// A non-nil error means nothing was written to w, so the caller still
// owns the response: ErrRateLimited when this replica's global bucket
// is empty (typically answered 429), otherwise the peer could not be
// reached (typically answered 502). Once the peer has answered, Forward
// relays whatever it said and returns nil — a client that disconnects
// mid-relay is its own problem, not a peer error.
func (c *Cluster) Forward(w http.ResponseWriter, r *http.Request, to Replica) error {
	if to.ID == c.self {
		return fmt.Errorf("adasense: replica %q cannot forward to itself", c.self)
	}
	// A forward is outbound work this replica performs on the device's
	// behalf: it spends one token from the local global bucket, so a
	// flood of misdirected traffic cannot turn a rate-limited replica
	// into an unbounded proxy. The device's own budget is charged at
	// its owner, exactly once.
	if err := c.gw.allowGlobal(); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, to.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		// Construction failed locally; no peer was dialed, so the
		// peer-error series stays out of it.
		return fmt.Errorf("adasense: forwarding to %q: %w", to.ID, err)
	}
	req.ContentLength = r.ContentLength
	if v := r.Header.Get("Content-Type"); v != "" {
		req.Header.Set("Content-Type", v)
	}
	if v := r.Header.Get("Authorization"); v != "" {
		req.Header.Set("Authorization", v)
	}
	req.Header.Set(ForwardedHeader, c.self)
	// Advertise the local model generation so a peer lagging the fleet
	// (e.g. one that joined after a push) notices and catches up.
	req.Header.Set(ModelGenHeader, strconv.FormatUint(c.gw.ModelGeneration(), 10))
	tr := reqtrace.FromContext(r.Context())
	stampTrace(req.Header, tr)
	endSpan := tr.Span("forward")
	hopStart := time.Now()
	resp, err := c.client.Do(req)
	endSpan()
	c.gw.lat.ObserveStage(telemetry.StageForward, time.Since(hopStart))
	if err != nil {
		// A forward that died because the requesting device went away
		// is the client's failure, not the peer's; the peer-error
		// series must only indict peers, or its documented alert pages
		// on ordinary flaky clients.
		if r.Context().Err() == nil {
			c.gw.tel.PeerError()
		}
		return fmt.Errorf("adasense: forwarding to %q: %w", to.ID, err)
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "WWW-Authenticate"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	c.gw.tel.RequestForwarded()
	io.Copy(w, resp.Body)
	return nil
}

// SwapResult reports one replica's outcome of a replicated model swap.
type SwapResult struct {
	// Replica is the replica id; Attempts is how many tries it took
	// (1 on first-attempt success). Err is nil on success.
	Replica  string
	Attempts int
	Err      error
}

// SwapModel replicates a model container to every replica of the
// cluster: the local gateway swaps via Gateway.SwapModel, and each peer
// receives the bytes on POST <peer>/v1/model with ReplicatedHeader set
// (so peers apply locally instead of re-replicating) and the cluster's
// bearer token. Peers are pushed concurrently, each retried up to the
// configured count; results come back per replica, sorted by id, with
// the joined error of every failure (nil when the whole fleet swapped).
//
// A ctx already canceled when SwapModel is called aborts the whole
// operation before any replica is touched. Once the local swap commits,
// the peer fan-out is detached from ctx: cancellation mid-push (an
// uploader disconnecting) does not strand peers on the old model — each
// peer call remains bounded by the peer client's timeout and the retry
// count.
//
// The model is validated locally before anything is pushed: an invalid
// container changes no replica. A partial failure leaves the fleet
// mixed — the caller retries the failed replicas (the swap is
// idempotent) or drops them from rotation.
//
// Fleet-wide swaps are not ordered across entry replicas: two
// concurrent uploads entering through different replicas can interleave
// so that replicas end on different models (with equal swap counters).
// Serialize model deploys through one entry point; re-pushing the
// intended container heals a crossed fleet.
func (c *Cluster) SwapModel(ctx context.Context, model []byte) ([]SwapResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys, err := LoadSystem(bytes.NewReader(model))
	if err != nil {
		return nil, err
	}
	if err := c.gw.SwapModel(sys); err != nil {
		return nil, err
	}
	// The local swap has committed: from here the fleet must converge,
	// so the peer fan-out is detached from ctx's cancellation (an
	// uploader that disconnects mid-push must not strand peers on the
	// old model). Each peer call stays bounded by the peer client's
	// timeout and the retry count.
	ctx = context.WithoutCancel(ctx)
	members := c.Members()
	results := make([]SwapResult, len(members))
	done := make(chan int, len(members))
	for i, rep := range members {
		if rep.ID == c.self {
			results[i] = SwapResult{Replica: rep.ID, Attempts: 1}
			done <- i
			continue
		}
		go func(i int, rep Replica) {
			results[i] = c.pushModel(ctx, rep, model)
			done <- i
		}(i, rep)
	}
	for range members {
		<-done
	}
	errs := make([]error, 0, len(members))
	for _, res := range results {
		if res.Err != nil {
			errs = append(errs, fmt.Errorf("replica %q (%d attempts): %w", res.Replica, res.Attempts, res.Err))
		}
	}
	return results, errors.Join(errs...)
}

// pushModel delivers one model upload to one peer with counted retries.
func (c *Cluster) pushModel(ctx context.Context, rep Replica, model []byte) SwapResult {
	res := c.pushBytes(ctx, http.MethodPost, rep, "/v1/model", "application/octet-stream", model)
	if res.Err == nil {
		c.gw.tel.SwapReplicated()
	}
	return res
}

// pushBytes delivers one replicated payload to one peer with counted
// retries, stamping ReplicatedHeader (so the receiver applies locally
// instead of re-replicating), the sender's model generation and the
// cluster's bearer token. Only transient failures (transport errors,
// 5xx) are retried: a 4xx is the peer deterministically rejecting this
// request — a stale token, a container its build cannot load — and
// repeating it would only inflate the peer-error counter and delay the
// fleet-wide report. The model-swap, rollout-start, stage-transition
// and session-state fan-outs all ride this one delivery path.
func (c *Cluster) pushBytes(ctx context.Context, method string, rep Replica, path, contentType string, body []byte) SwapResult {
	res := SwapResult{Replica: rep.ID}
	for attempt := 1; attempt <= 1+c.retries; attempt++ {
		res.Attempts = attempt
		var retryable bool
		retryable, res.Err = c.pushOnce(ctx, method, rep, path, contentType, body)
		if res.Err == nil {
			return res
		}
		c.gw.tel.PeerError()
		if !retryable {
			return res
		}
		if attempt <= c.retries {
			// Linear backoff so the retry budget spans restart-sized
			// outages. The fan-out context is detached (the fleet must
			// converge once the local swap committed), so a plain sleep
			// cannot strand a canceled caller.
			time.Sleep(time.Duration(attempt) * c.backoff)
		}
	}
	return res
}

func (c *Cluster) pushOnce(ctx context.Context, method string, rep Replica, path, contentType string, body []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, method, rep.URL+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ReplicatedHeader, c.self)
	req.Header.Set(ModelGenHeader, strconv.FormatUint(c.gw.ModelGeneration(), 10))
	stampTrace(req.Header, reqtrace.FromContext(ctx))
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return resp.StatusCode >= 500, fmt.Errorf("peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return false, nil
}
