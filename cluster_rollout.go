package adasense

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"adasense/internal/reqtrace"
)

// maxPulledModelBytes bounds a catch-up model download; it matches the
// gateway server's own upload cap.
const maxPulledModelBytes = 64 << 20

// StartRollout begins a staged canary rollout of the candidate model
// container across the fleet: the local gateway starts it (validating
// the container, honoring the frozen list), then the bytes are
// replicated to every peer on POST /v1/rollout with ReplicatedHeader
// set, so each replica starts its own controller over the same
// candidate. The rollout policy is not shipped: every replica applies
// its own configured `-rollout-*` policy, which fleets keep identical
// the same way they keep ring parameters identical.
//
// From then on each replica evaluates its local traffic; the first
// replica to decide a stage transition replicates it (the transitions
// are idempotent, so concurrent equal decisions collapse). Like
// SwapModel, the fan-out is detached from ctx once the local start has
// committed; results come back per replica with the joined error of
// every failure.
func (c *Cluster) StartRollout(ctx context.Context, model []byte, cfg RolloutConfig) (RolloutStatus, []SwapResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return RolloutStatus{}, nil, err
	}
	st, err := c.gw.StartRollout(model, cfg)
	if err != nil {
		return RolloutStatus{}, nil, err
	}
	ctx = context.WithoutCancel(ctx)
	members := c.Members()
	results := make([]SwapResult, len(members))
	done := make(chan int, len(members))
	for i, rep := range members {
		if rep.ID == c.self {
			results[i] = SwapResult{Replica: rep.ID, Attempts: 1}
			done <- i
			continue
		}
		go func(i int, rep Replica) {
			results[i] = c.pushBytes(ctx, http.MethodPost, rep, "/v1/rollout", "application/octet-stream", model)
			done <- i
		}(i, rep)
	}
	for range members {
		<-done
	}
	errs := make([]error, 0, len(members))
	for _, res := range results {
		if res.Err != nil {
			errs = append(errs, fmt.Errorf("replica %q (%d attempts): %w", res.Replica, res.Attempts, res.Err))
		}
	}
	return st, results, errors.Join(errs...)
}

// AbortRollout rolls the fleet's active rollout back by operator
// decision. The local gateway applies the abort; the resulting
// transition replicates to every peer through the cluster's notify
// hook, exactly like an automatic promote or rollback.
func (c *Cluster) AbortRollout(reason string) (RolloutStatus, error) {
	return c.gw.AbortRollout(reason)
}

// replicateTransition is the gateway's rolloutNotify hook: it fans one
// locally decided stage transition out to every peer on
// POST /v1/rollout/stage. Delivery is asynchronous — the gateway calls
// the hook under its rollout mutex, and a transition is already safe to
// deliver late or twice (Advance/Complete/Rollback are idempotent and
// monotonic), so nothing is gained by blocking the control plane on
// peer round-trips.
func (c *Cluster) replicateTransition(tr RolloutTransition) {
	body, err := json.Marshal(tr)
	if err != nil {
		return
	}
	// The transition fan-out starts from the control plane, not from a
	// client request, so it minted its own trace id: every peer's record
	// of this stage change correlates under one identity.
	ctx := reqtrace.NewContext(context.Background(), reqtrace.New())
	for _, rep := range c.Members() {
		if rep.ID == c.self {
			continue
		}
		go c.pushBytes(ctx, http.MethodPost, rep, "/v1/rollout/stage", "application/json", body)
	}
}

// ObserveModelGen notes a model generation advertised by peer on an
// incoming federation request. When it is ahead of the local gateway's,
// a single background pull of GET <peer>/v1/model installs the newer
// model — how a replica that joined after a fleet-wide push (or missed
// one) converges without an operator re-push. At most one pull runs at
// a time; repeat observations while one is in flight are dropped.
func (c *Cluster) ObserveModelGen(peer string, gen uint64) {
	if gen <= c.gw.ModelGeneration() || !c.IsPeer(peer) {
		return
	}
	if !c.pulling.CompareAndSwap(false, true) {
		return
	}
	rep := c.view.Load().replicas[peer]
	go func() {
		defer c.pulling.Store(false)
		c.pullModel(rep)
	}()
}

// pullModel downloads peer's current model container and installs it at
// the peer's generation. Failures only count the peer-error series —
// the next observed request re-arms the pull.
func (c *Cluster) pullModel(rep Replica) error {
	req, err := http.NewRequest(http.MethodGet, rep.URL+"/v1/model", nil)
	if err != nil {
		return err
	}
	// A catch-up pull is background work with no originating request;
	// mint a fresh trace so the download is identifiable on both ends.
	stampTrace(req.Header, reqtrace.New())
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.gw.tel.PeerError()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.gw.tel.PeerError()
		return fmt.Errorf("adasense: peer %q answered %d to model pull", rep.ID, resp.StatusCode)
	}
	// The response header carries the generation the body was serialized
	// at — authoritative over whatever observation triggered the pull.
	gen, err := strconv.ParseUint(resp.Header.Get(ModelGenHeader), 10, 64)
	if err != nil {
		c.gw.tel.PeerError()
		return fmt.Errorf("adasense: peer %q sent no model generation: %w", rep.ID, err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPulledModelBytes))
	if err != nil {
		c.gw.tel.PeerError()
		return err
	}
	if gen <= c.gw.ModelGeneration() {
		return nil // raced a local swap past the peer; nothing newer
	}
	sys, err := LoadSystem(bytes.NewReader(data))
	if err != nil {
		c.gw.tel.PeerError()
		return err
	}
	if err := c.gw.InstallModel(sys, gen); err != nil {
		// A rollout began while the pull was in flight; the rollout's
		// own completion will set the fleet's model.
		return err
	}
	c.gw.tel.ModelCatchup()
	return nil
}
