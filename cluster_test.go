package adasense_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adasense"
	"adasense/internal/membership"
	"adasense/internal/reqtrace"
)

// modelBytes serializes the shared test system as a model container —
// the payload a replicated swap pushes over the wire.
func modelBytes(t *testing.T) []byte {
	t.Helper()
	sys, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testCluster federates gw as self among replicas.
func testCluster(t *testing.T, gw *adasense.Gateway, self string, replicas []adasense.Replica, opts ...adasense.ClusterOption) *adasense.Cluster {
	t.Helper()
	c, err := adasense.NewCluster(gw, self, replicas, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// peerGateway spins an in-process HTTP replica backed by its own
// gateway: it accepts replicated model pushes on /v1/model and echoes
// anything else, recording what arrived. This stands in for a full
// cmd/adasense-gateway peer in root-package tests.
type peerGateway struct {
	gw     *adasense.Gateway
	ts     *httptest.Server
	swaps  atomic.Int64
	lastFw atomic.Value // string: last ForwardedHeader value seen
}

func newPeerGateway(t *testing.T) *peerGateway {
	t.Helper()
	p := &peerGateway{gw: testGateway(t, baselineFleet())}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fw := r.Header.Get(adasense.ForwardedHeader); fw != "" {
			p.lastFw.Store(fw)
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/model" {
			if r.Header.Get(adasense.ReplicatedHeader) == "" {
				http.Error(w, "missing replication marker", http.StatusBadRequest)
				return
			}
			sys, err := adasense.LoadSystem(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := p.gw.SwapModel(sys); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			p.swaps.Add(1)
			fmt.Fprint(w, `{"ok":true}`)
			return
		}
		// Echo endpoint for forwarding tests.
		dump, _ := httputil.DumpRequest(r, false)
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusTeapot)
		w.Write(dump)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func TestNewClusterValidation(t *testing.T) {
	gw := testGateway(t, baselineFleet())
	two := []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: "http://peer-b.internal:8734"},
	}
	cases := []struct {
		name     string
		gw       *adasense.Gateway
		self     string
		replicas []adasense.Replica
		opts     []adasense.ClusterOption
	}{
		{"nil gateway", nil, "gw-a", two, nil},
		{"empty self", gw, "", two, nil},
		{"self not a member", gw, "gw-z", two, nil},
		{"duplicate replica id", gw, "gw-a", []adasense.Replica{
			{ID: "gw-a"}, {ID: "gw-a", URL: "http://dup.internal:1"},
		}, nil},
		{"peer without URL", gw, "gw-a", []adasense.Replica{
			{ID: "gw-a"}, {ID: "gw-b"},
		}, nil},
		{"peer with non-http URL", gw, "gw-a", []adasense.Replica{
			{ID: "gw-a"}, {ID: "gw-b", URL: "ftp://peer-b:21"},
		}, nil},
		{"zero virtual nodes", gw, "gw-a", two,
			[]adasense.ClusterOption{adasense.WithClusterVirtualNodes(0)}},
		{"nil hash", gw, "gw-a", two,
			[]adasense.ClusterOption{adasense.WithClusterHash(nil)}},
		{"nil peer client", gw, "gw-a", two,
			[]adasense.ClusterOption{adasense.WithPeerClient(nil)}},
		{"negative retries", gw, "gw-a", two,
			[]adasense.ClusterOption{adasense.WithSwapRetries(-1)}},
		{"negative retry backoff", gw, "gw-a", two,
			[]adasense.ClusterOption{adasense.WithSwapRetryBackoff(-time.Second)}},
	}
	for _, tc := range cases {
		if _, err := adasense.NewCluster(tc.gw, tc.self, tc.replicas, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := adasense.NewCluster(gw, "gw-z", two); !errors.Is(err, adasense.ErrNotClusterMember) {
		t.Errorf("self outside the replica set: got %v, want ErrNotClusterMember", err)
	}
}

// TestClusterRoutePlacement checks the federation invariant at the
// Cluster level: two replicas built independently from the same member
// set agree on every device's owner, exactly one replica considers
// itself the owner, and placement spreads across the fleet.
func TestClusterRoutePlacement(t *testing.T) {
	replicas := []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: "http://peer-b.internal:8734"},
		{ID: "gw-c", URL: "http://peer-c.internal:8734"},
	}
	a := testCluster(t, testGateway(t, baselineFleet()), "gw-a", replicas)
	// Replica b lists the same member set with itself as self (and a
	// URL for a instead); order shuffled on purpose.
	b := testCluster(t, testGateway(t, baselineFleet()), "gw-b", []adasense.Replica{
		{ID: "gw-c", URL: "http://peer-c.internal:8734"},
		{ID: "gw-a", URL: "http://peer-a.internal:8734"},
		{ID: "gw-b"},
	})

	owned := make(map[string]int)
	for i := 0; i < 1000; i++ {
		dev := fmt.Sprintf("device-%d", i)
		repA, localA := a.Route(dev)
		repB, localB := b.Route(dev)
		if repA.ID != repB.ID {
			t.Fatalf("replicas disagree on %s: %q vs %q", dev, repA.ID, repB.ID)
		}
		if localA != (repA.ID == "gw-a") || localB != (repB.ID == "gw-b") {
			t.Fatalf("local flag inconsistent for %s", dev)
		}
		if a.Owns(dev) != localA {
			t.Fatalf("Owns disagrees with Route for %s", dev)
		}
		owned[repA.ID]++
	}
	for _, id := range []string{"gw-a", "gw-b", "gw-c"} {
		if owned[id] == 0 {
			t.Errorf("replica %s owns no devices of 1000", id)
		}
	}

	members := a.Members()
	if len(members) != 3 || members[0].ID != "gw-a" || members[2].ID != "gw-c" {
		t.Errorf("Members() = %v, want gw-a..gw-c sorted", members)
	}
	if a.Self() != "gw-a" || a.Gateway() == nil {
		t.Errorf("Self/Gateway accessors broken")
	}
}

func TestClusterForward(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
	})

	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/dev-1/push?x=1", strings.NewReader("{}"))
	req.Header.Set("Authorization", "Bearer fleet-secret")
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	if err := c.Forward(rec, req, adasense.Replica{ID: "gw-b", URL: peer.ts.URL}); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusTeapot {
		t.Errorf("relayed status = %d, want the peer's 418", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Authorization: Bearer fleet-secret") {
		t.Errorf("bearer token did not travel with the forward:\n%s", body)
	}
	if !strings.Contains(body, "/v1/sessions/dev-1/push?x=1") {
		t.Errorf("path+query not preserved:\n%s", body)
	}
	if got, _ := peer.lastFw.Load().(string); got != "gw-a" {
		t.Errorf("ForwardedHeader = %q, want sender id gw-a", got)
	}
	if s := gw.Stats(); s.RequestsForwarded != 1 || s.PeerErrors != 0 {
		t.Errorf("forward telemetry = fwd %d / err %d, want 1 / 0", s.RequestsForwarded, s.PeerErrors)
	}

	// Forwarding to yourself is a programming error, not a loop.
	if err := c.Forward(rec, req, adasense.Replica{ID: "gw-a"}); err == nil {
		t.Error("forward-to-self accepted")
	}

	// A dead peer reports an error without writing a response, and counts.
	dead := httptest.NewRecorder()
	req2 := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil)
	err := c.Forward(dead, req2, adasense.Replica{ID: "gw-x", URL: "http://127.0.0.1:1"})
	if err == nil {
		t.Fatal("forward to a dead peer succeeded")
	}
	if dead.Body.Len() != 0 {
		t.Errorf("failed forward wrote a body: %q", dead.Body.String())
	}
	if s := gw.Stats(); s.PeerErrors != 1 {
		t.Errorf("PeerErrors = %d, want 1", s.PeerErrors)
	}

	// A device that disconnects mid-forward is the client's failure,
	// not the peer's: the error surfaces but the peer-error series
	// stays untouched.
	gone, cancel := context.WithCancel(context.Background())
	cancel()
	req3 := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil).WithContext(gone)
	if err := c.Forward(httptest.NewRecorder(), req3, adasense.Replica{ID: "gw-b", URL: peer.ts.URL}); err == nil {
		t.Fatal("forward with a dead client context succeeded")
	}
	if s := gw.Stats(); s.PeerErrors != 1 {
		t.Errorf("client disconnect counted as a peer error: PeerErrors = %d, want still 1", s.PeerErrors)
	}
}

// TestClusterForwardRateLimited: a forward spends one token from the
// proxying replica's global bucket, so misdirected floods cannot turn a
// rate-limited replica into an unbounded proxy.
func TestClusterForwardRateLimited(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet(),
		adasense.WithRateLimit(adasense.RateLimit{GlobalPerSec: 1, GlobalBurst: 1}))
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
	})
	to := adasense.Replica{ID: "gw-b", URL: peer.ts.URL}

	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil)
	if err := c.Forward(httptest.NewRecorder(), req, to); err != nil {
		t.Fatalf("first forward (full bucket): %v", err)
	}
	denied := httptest.NewRecorder()
	err := c.Forward(denied, req, to)
	if !errors.Is(err, adasense.ErrRateLimited) {
		t.Fatalf("second forward = %v, want ErrRateLimited", err)
	}
	if denied.Body.Len() != 0 {
		t.Errorf("denied forward wrote a body: %q", denied.Body.String())
	}
	if s := gw.Stats(); s.RateLimitedGlobal != 1 || s.RequestsForwarded != 1 || s.PeerErrors != 0 {
		t.Errorf("telemetry = limited %d / forwarded %d / peer errors %d, want 1 / 1 / 0",
			s.RateLimitedGlobal, s.RequestsForwarded, s.PeerErrors)
	}
}

// TestClusterSwapModelReplicates is the fleet-retrain contract: one
// SwapModel lands on the local gateway and every peer, with per-replica
// reporting and telemetry.
func TestClusterSwapModelReplicates(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
	})

	results, err := c.SwapModel(context.Background(), modelBytes(t))
	if err != nil {
		t.Fatalf("SwapModel: %v", err)
	}
	if len(results) != 2 || results[0].Replica != "gw-a" || results[1].Replica != "gw-b" {
		t.Fatalf("results = %+v, want gw-a then gw-b", results)
	}
	for _, res := range results {
		if res.Err != nil || res.Attempts != 1 {
			t.Errorf("replica %s: attempts=%d err=%v, want clean first-attempt success",
				res.Replica, res.Attempts, res.Err)
		}
	}
	if gw.Stats().ModelSwaps != 1 {
		t.Errorf("local ModelSwaps = %d, want 1", gw.Stats().ModelSwaps)
	}
	if peer.gw.Stats().ModelSwaps != 1 || peer.swaps.Load() != 1 {
		t.Errorf("peer saw %d swaps (handler %d), want 1", peer.gw.Stats().ModelSwaps, peer.swaps.Load())
	}
	if s := gw.Stats(); s.SwapsReplicated != 1 || s.PeerErrors != 0 {
		t.Errorf("swap telemetry = replicated %d / errors %d, want 1 / 0", s.SwapsReplicated, s.PeerErrors)
	}
}

// TestClusterSwapModelRetry proves the counted retry: a peer that fails
// twice then recovers is retried to success, and attempts plus peer
// errors are accounted.
func TestClusterSwapModelRetry(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer flaky.Close()

	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: flaky.URL},
	}, adasense.WithSwapRetries(2), adasense.WithSwapRetryBackoff(time.Millisecond))

	results, err := c.SwapModel(context.Background(), modelBytes(t))
	if err != nil {
		t.Fatalf("SwapModel with a recovering peer: %v", err)
	}
	if results[1].Attempts != 3 || results[1].Err != nil {
		t.Errorf("flaky peer result = %+v, want success on attempt 3", results[1])
	}
	if s := gw.Stats(); s.PeerErrors != 2 || s.SwapsReplicated != 1 {
		t.Errorf("telemetry = errors %d / replicated %d, want 2 / 1", s.PeerErrors, s.SwapsReplicated)
	}
}

// TestClusterSwapModelFailsFastOn4xx: a peer that deterministically
// rejects the push (wrong token, incompatible build) is not hammered
// with retries — one attempt, one counted peer error.
func TestClusterSwapModelFailsFastOn4xx(t *testing.T) {
	var calls atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
	}))
	defer rejecting.Close()

	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: rejecting.URL},
	}, adasense.WithSwapRetries(2))

	results, err := c.SwapModel(context.Background(), modelBytes(t))
	if err == nil {
		t.Fatal("rejecting peer reported success")
	}
	if results[1].Attempts != 1 || results[1].Err == nil {
		t.Errorf("4xx peer result = %+v, want exactly 1 attempt", results[1])
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("rejecting peer was called %d times, want 1", got)
	}
	if s := gw.Stats(); s.PeerErrors != 1 {
		t.Errorf("PeerErrors = %d, want 1", s.PeerErrors)
	}
}

// TestClusterSwapModelPartialFailure: an unreachable peer exhausts its
// retries and is reported, while the local swap and healthy peers keep
// the new model.
func TestClusterSwapModelPartialFailure(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
		{ID: "gw-c", URL: "http://127.0.0.1:1"},
	}, adasense.WithSwapRetries(1), adasense.WithSwapRetryBackoff(time.Millisecond))

	results, err := c.SwapModel(context.Background(), modelBytes(t))
	if err == nil {
		t.Fatal("SwapModel with a dead replica reported success")
	}
	if !strings.Contains(err.Error(), `"gw-c"`) {
		t.Errorf("error does not name the failed replica: %v", err)
	}
	byID := map[string]adasense.SwapResult{}
	for _, res := range results {
		byID[res.Replica] = res
	}
	if byID["gw-a"].Err != nil || byID["gw-b"].Err != nil {
		t.Errorf("healthy replicas reported errors: %+v", results)
	}
	if dead := byID["gw-c"]; dead.Err == nil || dead.Attempts != 2 {
		t.Errorf("dead replica = %+v, want 2 exhausted attempts", dead)
	}
	if gw.Stats().ModelSwaps != 1 || peer.gw.Stats().ModelSwaps != 1 {
		t.Error("partial failure rolled back healthy replicas")
	}
}

// TestClusterSwapModelDetachedFromUploader: once the local swap
// commits, the peer fan-out survives the uploader's context dying — a
// disconnecting client must not strand peers on the old model. A
// context already dead on entry aborts before any replica is touched.
func TestClusterSwapModelDetachedFromUploader(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer slow.Close()

	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: slow.URL},
	})

	// Uploader's deadline expires long before the peer answers.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	results, err := c.SwapModel(ctx, modelBytes(t))
	if err != nil {
		t.Fatalf("fan-out did not survive the uploader's deadline: %v", err)
	}
	if results[1].Err != nil || results[1].Attempts != 1 {
		t.Errorf("slow peer = %+v, want success despite the dead uploader context", results[1])
	}
	if gw.Stats().SwapsReplicated != 1 {
		t.Errorf("SwapsReplicated = %d, want 1", gw.Stats().SwapsReplicated)
	}

	// Already dead on entry: nothing happens anywhere.
	dead, kill := context.WithCancel(context.Background())
	kill()
	if _, err := c.SwapModel(dead, modelBytes(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-on-entry context: got %v, want context.Canceled", err)
	}
	if gw.Stats().ModelSwaps != 1 {
		t.Errorf("dead-on-entry context still swapped: %d swaps", gw.Stats().ModelSwaps)
	}
}

// TestClusterSwapModelInvalid: a corrupt container is rejected before
// anything reaches the fleet.
func TestClusterSwapModelInvalid(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
	})
	if _, err := c.SwapModel(context.Background(), []byte("not a model")); err == nil {
		t.Fatal("corrupt model accepted")
	}
	if gw.Stats().ModelSwaps != 0 || peer.gw.Stats().ModelSwaps != 0 {
		t.Error("corrupt model touched a replica")
	}
}

// TestClusterFleetSwapDuringDrain is the federation race proof (run
// under -race in CI): device fleets push through two in-process replicas
// while a replicated SwapModel lands and one replica drains. Nothing may
// tear — pushes either succeed or fail with the documented errors, both
// replicas observe the swap, and the draining replica empties.
func TestClusterFleetSwapDuringDrain(t *testing.T) {
	peer := newPeerGateway(t)
	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.ts.URL},
	})

	const perReplica = 6
	batch := gatewayBatch(t)
	var wg sync.WaitGroup
	start := make(chan struct{})
	pushFleet := func(target *adasense.Gateway, prefix string) {
		for i := 0; i < perReplica; i++ {
			sess, err := target.Open(fmt.Sprintf("%s-%d", prefix, i))
			if err != nil {
				t.Errorf("open %s-%d: %v", prefix, i, err)
				continue
			}
			wg.Add(1)
			go func(sess *adasense.GatewaySession) {
				defer wg.Done()
				<-start
				for j := 0; j < 25; j++ {
					if _, err := sess.Push(batch); err != nil {
						if errors.Is(err, adasense.ErrSessionClosed) {
							return // drained under us: the documented outcome
						}
						t.Errorf("push %s: %v", sess.ID(), err)
						return
					}
				}
			}(sess)
		}
	}
	pushFleet(gw, "dev-a")
	pushFleet(peer.gw, "dev-b")

	wg.Add(2)
	go func() { // the replicated swap lands mid-traffic
		defer wg.Done()
		<-start
		if _, err := c.SwapModel(context.Background(), modelBytes(t)); err != nil {
			t.Errorf("replicated swap: %v", err)
		}
	}()
	go func() { // replica b drains mid-traffic
		defer wg.Done()
		<-start
		time.Sleep(2 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := peer.gw.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	close(start)
	wg.Wait()

	if gw.Stats().ModelSwaps != 1 || peer.gw.Stats().ModelSwaps != 1 {
		t.Errorf("swaps = %d local / %d peer, want 1 / 1",
			gw.Stats().ModelSwaps, peer.gw.Stats().ModelSwaps)
	}
	if n := peer.gw.NumSessions(); n != 0 {
		t.Errorf("drained replica still holds %d sessions", n)
	}
	if !peer.gw.Draining() || gw.Draining() {
		t.Error("drain state leaked across replicas")
	}
}

// TestClusterForwardRelaysNon2xx: once the peer has answered, Forward
// relays whatever it said — 4xx and 5xx included — and returns nil.
// A peer that answers is a working peer; only unreachable peers (covered
// in TestClusterForward) feed the peer-error series.
func TestClusterForwardRelaysNon2xx(t *testing.T) {
	statuses := []int{http.StatusNotFound, http.StatusTooManyRequests, http.StatusServiceUnavailable}
	var next atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status := statuses[next.Load()]
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"peer says %d"}`, status)
	}))
	defer peer.Close()

	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.URL},
	})
	to := adasense.Replica{ID: "gw-b", URL: peer.URL}
	for i, status := range statuses {
		next.Store(int64(i))
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil)
		if err := c.Forward(rec, req, to); err != nil {
			t.Fatalf("forward relaying a %d errored: %v", status, err)
		}
		if rec.Code != status {
			t.Errorf("relayed status = %d, want the peer's %d", rec.Code, status)
		}
		if want := fmt.Sprintf(`{"error":"peer says %d"}`, status); rec.Body.String() != want {
			t.Errorf("relayed body = %q, want %q", rec.Body.String(), want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("relayed content type = %q", ct)
		}
	}
	if s := gw.Stats(); s.RequestsForwarded != uint64(len(statuses)) || s.PeerErrors != 0 {
		t.Errorf("telemetry = forwarded %d / peer errors %d, want %d / 0",
			s.RequestsForwarded, s.PeerErrors, len(statuses))
	}
}

// TestClusterForwardTracePropagation: a forward carries the request's
// trace id with the hop count advanced, records a "forward" span on the
// trace and a forward-stage latency observation — and an untraced
// request stamps no trace headers at all (the receiver mints its own).
// The loop-guard marker travels alongside the trace headers unchanged.
func TestClusterForwardTracePropagation(t *testing.T) {
	type seen struct{ trace, hop, forwarded string }
	var last atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		last.Store(seen{
			trace:     r.Header.Get(adasense.TraceHeader),
			hop:       r.Header.Get(adasense.TraceHopHeader),
			forwarded: r.Header.Get(adasense.ForwardedHeader),
		})
		fmt.Fprint(w, "ok")
	}))
	defer peer.Close()

	gw := testGateway(t, baselineFleet())
	c := testCluster(t, gw, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.URL},
	})
	to := adasense.Replica{ID: "gw-b", URL: peer.URL}

	tr := reqtrace.New()
	tr.Hop = 1 // pretend this replica itself received a forwarded hop
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil)
	req = req.WithContext(reqtrace.NewContext(req.Context(), tr))
	if err := c.Forward(httptest.NewRecorder(), req, to); err != nil {
		t.Fatal(err)
	}
	got, _ := last.Load().(seen)
	if got.trace != tr.ID {
		t.Errorf("peer saw trace id %q, want %q", got.trace, tr.ID)
	}
	if got.hop != "2" {
		t.Errorf("peer saw hop %q, want 2 (sender's 1 + 1)", got.hop)
	}
	if got.forwarded != "gw-a" {
		t.Errorf("loop guard %q did not travel with the trace, want gw-a", got.forwarded)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "forward" || spans[0].Dur <= 0 {
		t.Errorf("trace spans = %+v, want one positive forward span", spans)
	}
	if h := gw.Stats().Latency.Stages["forward"]; h.Count != 1 {
		t.Errorf("forward stage histogram count = %d, want 1", h.Count)
	}

	// No trace in the context → no trace headers on the wire.
	req2 := httptest.NewRequest(http.MethodGet, "/v1/sessions/dev-1", nil)
	if err := c.Forward(httptest.NewRecorder(), req2, to); err != nil {
		t.Fatal(err)
	}
	got, _ = last.Load().(seen)
	if got.trace != "" || got.hop != "" {
		t.Errorf("untraced forward stamped trace headers: id %q hop %q", got.trace, got.hop)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// peersFile writes (or atomically rewrites) a membership file.
func peersFile(t *testing.T, path, content string) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// TestClusterWithSourceRebalance is the dynamic-membership contract at
// the library level: a peers-file change swaps in a new generation,
// exactly the local sessions whose devices changed owner are handed off
// (closed after their in-flight push), and the rebalance telemetry
// advances. An invalid intermediate membership never disturbs the
// serving view.
func TestClusterWithSourceRebalance(t *testing.T) {
	gw := testGateway(t, baselineFleet())
	path := filepath.Join(t.TempDir(), "peers.conf")
	peersFile(t, path, "gw-a\ngw-b=http://127.0.0.1:1\n")
	src, err := membership.NewFileSource(path, membership.WithPollInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c, err := adasense.NewClusterWithSource(gw, "gw-a", src)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Generation() != 1 {
		t.Fatalf("initial generation = %d, want 1", c.Generation())
	}

	// A fleet of sessions opened locally, wherever the ring puts them.
	const devices = 60
	ids := make([]string, devices)
	sessions := make(map[string]*adasense.GatewaySession, devices)
	for i := range ids {
		ids[i] = fmt.Sprintf("hand-dev-%d", i)
		sess, err := gw.Open(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		sessions[ids[i]] = sess
	}

	// An invalid membership (peer without a URL) parses at the file
	// layer but fails cluster validation: the serving view must not
	// move, and the rejection surfaces through MembershipErr.
	peersFile(t, path, "gw-a\ngw-b=http://127.0.0.1:1\ngw-broken\n")
	waitFor(t, 5*time.Second, "the rejection to surface", func() bool { return c.MembershipErr() != nil })
	if got := c.Generation(); got != 1 {
		t.Fatalf("invalid membership applied: generation %d", got)
	}
	if s := gw.Stats(); s.Rebalances != 0 || s.SessionsHandedOff != 0 {
		t.Fatalf("invalid membership touched telemetry: %+v", s)
	}

	// gw-c joins: its arc moves off gw-a (and nominally gw-b); every
	// local session whose device left gw-a must be closed, every other
	// one must keep serving. (The rejected intermediate still consumed a
	// source generation, so the cluster jumps straight past it.)
	peersFile(t, path, "gw-a\ngw-b=http://127.0.0.1:1\ngw-c=http://127.0.0.1:2\n")
	waitFor(t, 5*time.Second, "the join to apply", func() bool { return c.Generation() > 1 })
	if err := c.MembershipErr(); err != nil {
		t.Errorf("MembershipErr = %v after a clean apply, want nil", err)
	}

	keep := 0
	for _, id := range ids {
		if c.Owns(id) {
			keep++
		}
	}
	if keep == 0 || keep == devices {
		t.Fatalf("degenerate rebalance: gw-a kept %d of %d devices", keep, devices)
	}
	waitFor(t, 5*time.Second, "handoff to settle", func() bool { return gw.NumSessions() == keep })
	for _, id := range ids {
		_, live := gw.Lookup(id)
		if live != c.Owns(id) {
			t.Errorf("device %s: live=%v owned=%v — session not on its ring-assigned owner", id, live, c.Owns(id))
		}
	}
	s := gw.Stats()
	if s.Rebalances != 1 {
		t.Errorf("Rebalances = %d, want 1", s.Rebalances)
	}
	if want := uint64(devices - keep); s.SessionsHandedOff != want {
		t.Errorf("SessionsHandedOff = %d, want %d", s.SessionsHandedOff, want)
	}
	if s.SessionsClosed != 0 || s.SessionsEvicted != 0 {
		t.Errorf("handoff leaked into close/evict series: closed=%d evicted=%d", s.SessionsClosed, s.SessionsEvicted)
	}
	if len(c.Members()) != 3 {
		t.Errorf("Members() = %v, want 3 replicas", c.Members())
	}

	// A handed-off session answers the documented error on its next
	// push — the signal that sends the device back through the ring to
	// its new owner.
	batch := gatewayBatch(t)
	for _, id := range ids {
		if c.Owns(id) {
			continue
		}
		if _, err := sessions[id].Push(batch); !errors.Is(err, adasense.ErrSessionClosed) {
			t.Errorf("push on handed-off session %s = %v, want ErrSessionClosed", id, err)
		}
		break
	}

	// MarkStaleRoute feeds the stale-route series.
	c.MarkStaleRoute()
	if got := gw.Stats().StaleRoutes; got != 1 {
		t.Errorf("StaleRoutes = %d, want 1", got)
	}

	// Close is idempotent and stops the subscription: further file
	// changes no longer apply.
	gen := c.Generation()
	c.Close()
	c.Close()
	peersFile(t, path, "gw-a\ngw-b=http://127.0.0.1:1\n")
	time.Sleep(20 * time.Millisecond)
	if got := c.Generation(); got != gen {
		t.Errorf("membership applied after Close: generation %d, want %d", got, gen)
	}
}

// TestClusterWithSourceSelfAbsent: a replica missing from the current
// membership (still booting, or already retired) is a pure forwarder —
// it owns nothing — and starts owning devices the moment a snapshot
// includes it. This is what lets a joining replica start its poller
// before discovery announces it.
func TestClusterWithSourceSelfAbsent(t *testing.T) {
	gw := testGateway(t, baselineFleet())
	path := filepath.Join(t.TempDir(), "peers.conf")
	peersFile(t, path, "gw-b=http://127.0.0.1:1\n")
	src, err := membership.NewFileSource(path, membership.WithPollInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c, err := adasense.NewClusterWithSource(gw, "gw-a", src)
	if err != nil {
		t.Fatalf("absent self rejected: %v", err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if dev := fmt.Sprintf("dev-%d", i); c.Owns(dev) {
			t.Fatalf("absent replica owns %s", dev)
		}
	}
	if rep, local := c.Route("dev-1"); local || rep.ID != "gw-b" {
		t.Fatalf("Route on an absent replica = %+v local=%v, want gw-b remote", rep, local)
	}

	peersFile(t, path, "gw-a\ngw-b=http://127.0.0.1:1\n")
	waitFor(t, 5*time.Second, "self to join", func() bool { return c.Generation() == 2 })
	owns := 0
	for i := 0; i < 50; i++ {
		if c.Owns(fmt.Sprintf("dev-%d", i)) {
			owns++
		}
	}
	if owns == 0 {
		t.Error("joined replica still owns nothing")
	}

	// The static constructor keeps its stricter contract: self must be
	// a member from the start.
	if _, err := adasense.NewCluster(gw, "gw-z", []adasense.Replica{
		{ID: "gw-b", URL: "http://127.0.0.1:1"},
	}); !errors.Is(err, adasense.ErrNotClusterMember) {
		t.Errorf("static constructor accepted an absent self: %v", err)
	}
}
