// Command adasense-dse runs the sensor-configuration design-space
// exploration of the paper's Fig. 2: accuracy and current for all sixteen
// Table I configurations, with the Pareto frontier marked.
//
// Usage:
//
//	adasense-dse [-train 2400] [-test 1800] [-replicas 2] [-strategy perconfig|shared] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"adasense/internal/pareto"
	"adasense/internal/rng"
)

func main() {
	trainW := flag.Int("train", 2400, "training windows (per config for perconfig strategy)")
	testW := flag.Int("test", 1800, "test windows (per config for perconfig strategy)")
	replicas := flag.Int("replicas", 2, "training replications averaged per point")
	strategy := flag.String("strategy", "perconfig", "classifier strategy: perconfig or shared")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*trainW, *testW, *replicas, *strategy, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-dse:", err)
		os.Exit(1)
	}
}

func run(trainW, testW, replicas int, strategy string, seed uint64) error {
	spec := pareto.Spec{
		TrainWindows: trainW,
		TestWindows:  testW,
		Replicas:     replicas,
	}
	switch strategy {
	case "perconfig":
		spec.Strategy = pareto.PerConfig
	case "shared":
		spec.Strategy = pareto.Shared
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	fmt.Fprintln(os.Stderr, "exploring 16 configurations...")
	res, err := pareto.Explore(spec, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Println("config        mode       current(uA)  accuracy(%)  front")
	for _, p := range res.Points {
		mark := ""
		if p.OnFront {
			mark = "  *"
		}
		fmt.Printf("%-13s %-10s %10.2f  %10.2f%s\n",
			p.Config.Name(), p.Mode, p.CurrentUA, 100*p.Accuracy, mark)
	}
	fmt.Print("frontier: ")
	for i, p := range res.Front {
		if i > 0 {
			fmt.Print(" > ")
		}
		fmt.Print(p.Config.Name())
	}
	fmt.Println()
	return nil
}
