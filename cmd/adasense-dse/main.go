// Command adasense-dse runs the sensor-configuration design-space
// exploration of the paper's Fig. 2: accuracy and current for all sixteen
// Table I configurations, with the Pareto frontier marked.
//
// Usage:
//
//	adasense-dse [-train 2400] [-test 1800] [-replicas 2] [-strategy perconfig|shared]
//	             [-validate] [-validate-sec 300] [-parallel 0] [-seed 1]
//
// -validate cross-checks the open-loop frontier estimates in closed loop:
// it trains the shared classifier, pins the sensor at each frontier
// configuration and fans the simulations across workers with
// Service.RunMany, reporting closed-loop current and accuracy next to the
// open-loop point estimates.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"adasense"
	"adasense/internal/pareto"
	"adasense/internal/rng"
)

func main() {
	trainW := flag.Int("train", 2400, "training windows (per config for perconfig strategy)")
	testW := flag.Int("test", 1800, "test windows (per config for perconfig strategy)")
	replicas := flag.Int("replicas", 2, "training replications averaged per point")
	strategy := flag.String("strategy", "perconfig", "classifier strategy: perconfig or shared")
	validate := flag.Bool("validate", false, "closed-loop validation of the frontier via Service.RunMany")
	validateSec := flag.Float64("validate-sec", 300, "closed-loop validation duration per configuration (seconds)")
	parallel := flag.Int("parallel", 0, "validation worker goroutines (0: GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *trainW, *testW, *replicas, *strategy, *validate, *validateSec, *parallel, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-dse:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, trainW, testW, replicas int, strategy string, validate bool, validateSec float64, parallel int, seed uint64) error {
	spec := pareto.Spec{
		TrainWindows: trainW,
		TestWindows:  testW,
		Replicas:     replicas,
	}
	switch strategy {
	case "perconfig":
		spec.Strategy = pareto.PerConfig
	case "shared":
		spec.Strategy = pareto.Shared
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	fmt.Fprintln(os.Stderr, "exploring 16 configurations...")
	res, err := pareto.Explore(spec, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Println("config        mode       current(uA)  accuracy(%)  front")
	for _, p := range res.Points {
		mark := ""
		if p.OnFront {
			mark = "  *"
		}
		fmt.Printf("%-13s %-10s %10.2f  %10.2f%s\n",
			p.Config.Name(), p.Mode, p.CurrentUA, 100*p.Accuracy, mark)
	}
	fmt.Print("frontier: ")
	for i, p := range res.Front {
		if i > 0 {
			fmt.Print(" > ")
		}
		fmt.Print(p.Config.Name())
	}
	fmt.Println()

	if !validate {
		return nil
	}
	return validateFrontier(ctx, res.Front, validateSec, parallel, seed)
}

// validateFrontier replays each frontier point in closed loop: the shared
// classifier serves every pinned configuration, one simulation per point,
// fanned across workers.
func validateFrontier(ctx context.Context, front []pareto.Point, durSec float64, parallel int, seed uint64) error {
	fmt.Fprintln(os.Stderr, "training shared classifier for closed-loop validation...")
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 2400, Epochs: 40, Seed: seed})
	if err != nil {
		return err
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		return err
	}
	specs := make([]adasense.RunSpec, len(front))
	for i, p := range front {
		runSeed := seed + uint64(i)*100
		specs[i] = adasense.RunSpec{
			Motion:     adasense.NewMotion(adasense.SettingSchedule(runSeed+1, adasense.MediumChange, durSec), runSeed+2),
			Controller: adasense.NewFixedController(p.Config),
			Seed:       runSeed + 3,
		}
	}
	results, err := svc.RunMany(ctx, specs, parallel)
	if err != nil {
		return err
	}
	fmt.Println("\nclosed-loop validation (medium workload, shared classifier):")
	fmt.Println("config        open-uA  closed-uA   open-acc  closed-acc")
	for i, p := range front {
		fmt.Printf("%-13s %7.2f  %9.2f  %8.2f%%  %9.2f%%\n",
			p.Config.Name(), p.CurrentUA, results[i].AvgSensorCurrentUA,
			100*p.Accuracy, 100*results[i].Accuracy())
	}
	return nil
}
