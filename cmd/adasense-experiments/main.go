// Command adasense-experiments regenerates the paper's tables and figures
// from the reproduction's models and simulator.
//
// Usage:
//
//	adasense-experiments [-run all|table1|fig2|fig5|fig6|fig7|memory|overhead|ablation|confidence|fixedpoint|fsm]
//	                     [-quick] [-seed N] [-csv DIR] [-cache model.bin]
//
// -quick shrinks corpora and repeats so the full set completes in tens of
// seconds; the defaults reproduce the paper-scale sizes. -cache stores
// the shared classifier as a versioned model container after the first
// run and reloads it on later runs, skipping the training step.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"adasense"
	"adasense/internal/experiments"
	"adasense/internal/pareto"
	"adasense/internal/trace"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, table1, fig2, fig5, fig6, fig7, memory, overhead, ablation, confidence, fixedpoint, hidden, descend, families, fsm)")
	quick := flag.Bool("quick", false, "use reduced corpora and repeats")
	seed := flag.Uint64("seed", 1, "master random seed")
	csvDir := flag.String("csv", "", "directory to write figure CSV data into (optional)")
	cache := flag.String("cache", "", "model container path to reuse the shared classifier across runs (optional)")
	flag.Parse()

	if err := realMain(*run, *quick, *seed, *csvDir, *cache); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-experiments:", err)
		os.Exit(1)
	}
}

// cachedNet loads the shared classifier from the model-container cache,
// returning nil when the cache is absent or unset.
func cachedNet(cache string) (*adasense.System, error) {
	if cache == "" {
		return nil, nil
	}
	f, err := os.Open(cache)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := adasense.LoadSystem(f)
	if err != nil {
		return nil, fmt.Errorf("reading cache %s: %w", cache, err)
	}
	fmt.Fprintf(os.Stderr, "loaded shared classifier from %s\n", cache)
	return sys, nil
}

// saveCache stores the lab's shared classifier as a model container.
func saveCache(cache string, lab *experiments.Lab) error {
	f, err := os.Create(cache)
	if err != nil {
		return err
	}
	defer f.Close()
	sys := &adasense.System{Network: lab.Net}
	if err := sys.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shared classifier cached to %s\n", cache)
	return f.Close()
}

func realMain(run string, quick bool, seed uint64, csvDir, cache string) error {
	want := func(name string) bool { return run == "all" || run == name }

	// Table I, the FSM rendering and the overhead table need no trained
	// models.
	if want("table1") {
		fmt.Println(experiments.Table1().Render())
	}
	if want("fsm") {
		fmt.Println(experiments.FSM().Render())
	}
	if want("overhead") {
		fmt.Println(experiments.Overhead().Render())
	}
	needLab := false
	for _, name := range []string{"fig2", "fig5", "fig6", "fig7", "memory", "ablation", "confidence", "fixedpoint", "hidden", "descend", "families"} {
		if want(name) {
			needLab = true
		}
	}
	if !needLab {
		return nil
	}

	cached, err := cachedNet(cache)
	if err != nil {
		return err
	}
	cfg := experiments.LabConfig{Seed: seed}
	if quick {
		cfg.TrainWindows, cfg.BankWindowsPerConfig, cfg.Epochs = 2400, 1200, 40
	}
	if cached != nil {
		cfg.Net = cached.Network
		fmt.Fprintln(os.Stderr, "training baseline bank...")
	} else if quick {
		fmt.Fprintln(os.Stderr, "training models (quick lab)...")
	} else {
		fmt.Fprintln(os.Stderr, "training models (7300-window corpus)...")
	}
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	if cache != "" && cached == nil {
		if err := saveCache(cache, lab); err != nil {
			return err
		}
	}

	if want("fig2") {
		spec := experiments.Fig2Spec{}
		if quick {
			spec = experiments.Fig2Spec{TrainWindows: 1200, TestWindows: 900}
		}
		res, err := lab.Fig2(spec)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if csvDir != "" {
			pts := append([]pareto.Point(nil), res.Exploration.Points...)
			sort.Slice(pts, func(i, j int) bool { return pts[i].CurrentUA < pts[j].CurrentUA })
			rec := trace.NewRecorder()
			for _, p := range pts {
				rec.Add("accuracy_vs_current", p.CurrentUA, p.Accuracy)
			}
			if err := writeCSV(csvDir, "fig2.csv", rec); err != nil {
				return err
			}
		}
	}
	if want("fig5") {
		res, err := lab.Fig5()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if csvDir != "" {
			if err := writeCSV(csvDir, "fig5.csv", res.Run.Recorder); err != nil {
				return err
			}
		}
	}
	if want("fig6") {
		spec := experiments.Fig6Spec{}
		if quick {
			spec = experiments.Fig6Spec{Repeats: 2, ScheduleSec: 300}
		}
		res, err := lab.Fig6(spec)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if csvDir != "" {
			rec := trace.NewRecorder()
			for _, row := range res.Rows {
				x := float64(row.ThresholdSec)
				rec.Add("baseline_acc", x, row.BaselineAcc)
				rec.Add("spot_acc", x, row.SPOTAcc)
				rec.Add("conf_acc", x, row.ConfAcc)
				rec.Add("baseline_uA", x, row.BaselinePow)
				rec.Add("spot_uA", x, row.SPOTPow)
				rec.Add("conf_uA", x, row.ConfPow)
			}
			if err := writeCSV(csvDir, "fig6.csv", rec); err != nil {
				return err
			}
		}
	}
	if want("fig7") {
		spec := experiments.Fig7Spec{}
		if quick {
			spec = experiments.Fig7Spec{Repeats: 2, ScheduleSec: 300}
		}
		res, err := lab.Fig7(spec)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if csvDir != "" {
			rec := trace.NewRecorder()
			for i, row := range res.Rows {
				x := float64(i)
				rec.Add("iba_uA", x, row.IbAPow)
				rec.Add("ada_uA", x, row.AdaSensePow)
				rec.Add("iba_acc", x, row.IbAAcc)
				rec.Add("ada_acc", x, row.AdaSenseAcc)
			}
			if err := writeCSV(csvDir, "fig7.csv", rec); err != nil {
				return err
			}
		}
	}
	if want("memory") {
		fmt.Println(lab.Memory().Render())
	}
	if want("ablation") {
		windows := 0
		if quick {
			windows = 1500
		}
		res, err := lab.FeatureAblation(windows)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("confidence") {
		repeats := 0
		if quick {
			repeats = 2
		}
		res, err := lab.ConfidenceAblation(0, repeats)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("fixedpoint") {
		res, err := lab.FixedPointAblation(0)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("hidden") {
		windows := 0
		if quick {
			windows = 1500
		}
		res, err := lab.HiddenWidthAblation(windows)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("families") {
		windows := 0
		if quick {
			windows = 1500
		}
		res, err := lab.FeatureFamilyAblation(windows)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("descend") {
		repeats := 0
		if quick {
			repeats = 2
		}
		res, err := lab.DescendModeAblation(0, repeats)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	return nil
}

func writeCSV(dir, name string, rec *trace.Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteCSV(f)
}
