package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adasense"
	"adasense/internal/membership"
)

// fedReplica is one full federated replica: a real HTTP server over its
// own gateway and cluster, plus in-process handles for assertions.
type fedReplica struct {
	id      string
	base    string
	gw      *adasense.Gateway
	cluster *adasense.Cluster
	ts      *httptest.Server
}

// newFederatedFleet starts two full replica servers federated over one
// static member list (and, when token is non-empty, one shared bearer
// token). Listeners are allocated before either server starts so each
// cluster can be built with both base URLs.
func newFederatedFleet(t *testing.T, token string) (*fedReplica, *fedReplica) {
	t.Helper()
	tsA := httptest.NewUnstartedServer(http.NotFoundHandler())
	tsB := httptest.NewUnstartedServer(http.NotFoundHandler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	replicas := []adasense.Replica{
		{ID: "gw-a", URL: "http://" + tsA.Listener.Addr().String()},
		{ID: "gw-b", URL: "http://" + tsB.Listener.Addr().String()},
	}
	build := func(self string, ts *httptest.Server) *fedReplica {
		opts := []adasense.GatewayOption{
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})),
		}
		var copts []adasense.ClusterOption
		if token != "" {
			opts = append(opts, adasense.WithAuth(token))
			copts = append(copts, adasense.WithPeerAuth(token))
		}
		gw, err := adasense.NewGateway(quickSystem(t), opts...)
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewCluster(gw, self, replicas, copts...)
		if err != nil {
			t.Fatal(err)
		}
		ts.Config.Handler = newServer(gw, cluster)
		ts.Start()
		return &fedReplica{id: self, base: ts.URL, gw: gw, cluster: cluster, ts: ts}
	}
	return build("gw-a", tsA), build("gw-b", tsB)
}

// deviceOwnedBy finds a device id the ring places on the given replica.
func deviceOwnedBy(t *testing.T, c *adasense.Cluster, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("fed-dev-%d", i)
		if rep, _ := c.Route(id); rep.ID == owner {
			return id
		}
	}
	t.Fatalf("no device hashes to %s in 10000 tries", owner)
	return ""
}

// doFed runs one request with an optional bearer token and raw or JSON
// body, decoding the JSON response into out unless nil.
func doFed(t *testing.T, method, url, token string, body []byte, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestParsePeers(t *testing.T) {
	reps, err := parsePeers("gw-a, gw-b=http://host-b:8734, gw-c=")
	if err != nil {
		t.Fatal(err)
	}
	want := []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: "http://host-b:8734"},
		{ID: "gw-c"},
	}
	if len(reps) != len(want) {
		t.Fatalf("parsed %v, want %v", reps, want)
	}
	for i := range want {
		if reps[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, reps[i], want[i])
		}
	}
	for _, bad := range []string{"", "=http://host:1", ",,"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

// TestFederationMixedFleet is the acceptance scenario: two httptest
// replicas serve a mixed fleet. Every device opened through replica A
// lands on its ring-assigned replica — misdirected opens, pushes, gets
// and closes are forwarded transparently — and the forwards are counted.
func TestFederationMixedFleet(t *testing.T) {
	a, b := newFederatedFleet(t, "")

	// Open ten devices, all through replica A, whoever owns them.
	const devices = 10
	owners := map[string]string{}
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("mixed-%d", i)
		rep, _ := a.cluster.Route(id)
		owners[id] = rep.ID
		var sess sessionJSON
		if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": id}), &sess); code != 201 {
			t.Fatalf("open %s via A = %d", id, code)
		}
		if sess.ID != id {
			t.Fatalf("open %s returned %+v", id, sess)
		}
	}

	// Every session lives on exactly its ring-assigned replica.
	forwardedOpens := 0
	for id, owner := range owners {
		ownGw, otherGw := a.gw, b.gw
		if owner == "gw-b" {
			ownGw, otherGw = b.gw, a.gw
			forwardedOpens++
		}
		if _, ok := ownGw.Lookup(id); !ok {
			t.Errorf("device %s missing from its owner %s", id, owner)
		}
		if _, ok := otherGw.Lookup(id); ok {
			t.Errorf("device %s duplicated off its owner %s", id, owner)
		}
	}
	if forwardedOpens == 0 || forwardedOpens == devices {
		t.Fatalf("degenerate placement: %d of %d devices on gw-b — ring not mixing", forwardedOpens, devices)
	}
	if live := a.gw.NumSessions() + b.gw.NumSessions(); live != devices {
		t.Errorf("fleet holds %d sessions, want %d", live, devices)
	}

	// A misdirected push is forwarded transparently: same wire contract
	// as a local one.
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")
	if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": bDev}), nil); code != 201 {
		t.Fatalf("open %s = %d", bDev, code)
	}
	var pushed pushResponse
	if code := doFed(t, "POST", a.base+"/v1/sessions/"+bDev+"/push", "", jsonBody(t, wireBatch(t, 2)), &pushed); code != 200 {
		t.Fatalf("forwarded push = %d", code)
	}
	if len(pushed.Events) == 0 {
		t.Fatalf("forwarded push returned no events: %+v", pushed)
	}
	var got sessionJSON
	if code := doFed(t, "GET", a.base+"/v1/sessions/"+bDev, "", nil, &got); code != 200 || got.ID != bDev {
		t.Errorf("forwarded get = %d %+v", code, got)
	}
	// Closing through the non-owner forwards too.
	if code := doFed(t, "DELETE", a.base+"/v1/sessions/"+bDev, "", nil, nil); code != 204 {
		t.Errorf("forwarded close = %d, want 204", code)
	}
	if _, ok := b.gw.Lookup(bDev); ok {
		t.Error("forwarded close left the session on its owner")
	}

	// The forwards are visible in replica A's metrics; replica B, which
	// only ever served locally, forwarded nothing.
	mA, mB := scrapeMetrics(t, a.base), scrapeMetrics(t, b.base)
	wantForwards := float64(forwardedOpens + 4) // opens + open/push/get/close of bDev
	if mA["adasense_forwarded_total"] != wantForwards {
		t.Errorf("A forwarded_total = %v, want %v", mA["adasense_forwarded_total"], wantForwards)
	}
	if mB["adasense_forwarded_total"] != 0 || mB["adasense_peer_errors_total"] != 0 {
		t.Errorf("B federation counters = fwd %v / err %v, want 0 / 0",
			mB["adasense_forwarded_total"], mB["adasense_peer_errors_total"])
	}
}

// TestFederationReplicatedModelPush: one POST /v1/model retrains the
// whole fleet — both replicas swap, the response reports each replica,
// and live sessions on both replicas observe the new model on migrate.
func TestFederationReplicatedModelPush(t *testing.T) {
	a, b := newFederatedFleet(t, "")
	devA := deviceOwnedBy(t, a.cluster, "gw-a")
	devB := deviceOwnedBy(t, a.cluster, "gw-b")
	for _, dev := range []string{devA, devB} {
		if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": dev}), nil); code != 201 {
			t.Fatalf("open %s = %d", dev, code)
		}
	}
	sessA, okA := a.gw.Lookup(devA)
	sessB, okB := b.gw.Lookup(devB)
	if !okA || !okB {
		t.Fatal("sessions not on their owners")
	}
	svcA, svcB := sessA.Service(), sessB.Service()

	var model bytes.Buffer
	if err := quickSystem(t).Save(&model); err != nil {
		t.Fatal(err)
	}
	var report struct {
		ModelSwaps uint64            `json:"model_swaps"`
		Replicas   []swapReplicaJSON `json:"replicas"`
	}
	if code := doFed(t, "POST", a.base+"/v1/model", "", model.Bytes(), &report); code != 200 {
		t.Fatalf("replicated model push = %d", code)
	}
	if len(report.Replicas) != 2 {
		t.Fatalf("report = %+v, want both replicas", report)
	}
	for _, rep := range report.Replicas {
		if !rep.OK || rep.Attempts != 1 || rep.Error != "" {
			t.Errorf("replica report %+v, want clean success", rep)
		}
	}
	if a.gw.Stats().ModelSwaps != 1 || b.gw.Stats().ModelSwaps != 1 {
		t.Fatalf("swaps = %d / %d, want 1 on both replicas",
			a.gw.Stats().ModelSwaps, b.gw.Stats().ModelSwaps)
	}

	// Sessions on both replicas observe the upload: migrate re-pins them
	// onto the pushed model (devB's migrate is sent to the wrong replica
	// on purpose — it forwards).
	if code := doFed(t, "POST", a.base+"/v1/sessions/"+devA+"/migrate", "", nil, nil); code != 200 {
		t.Fatalf("migrate %s = %d", devA, code)
	}
	if code := doFed(t, "POST", a.base+"/v1/sessions/"+devB+"/migrate", "", nil, nil); code != 200 {
		t.Fatalf("forwarded migrate %s = %d", devB, code)
	}
	if sessA.Service() == svcA || sessB.Service() == svcB {
		t.Error("a session kept its pre-push model after migrate")
	}

	mA := scrapeMetrics(t, a.base)
	if mA["adasense_replicated_swaps_total"] != 1 || mA["adasense_model_swaps_total"] != 1 {
		t.Errorf("A swap series = replicated %v / local %v, want 1 / 1",
			mA["adasense_replicated_swaps_total"], mA["adasense_model_swaps_total"])
	}
	if mB := scrapeMetrics(t, b.base); mB["adasense_model_swaps_total"] != 1 || mB["adasense_replicated_swaps_total"] != 0 {
		t.Errorf("B swap series = local %v / replicated %v, want 1 / 0",
			mB["adasense_model_swaps_total"], mB["adasense_replicated_swaps_total"])
	}
}

// TestFederationSpoofedMarkersIgnored: loop-guard headers are honored
// only when their value names a known peer replica, so a client
// stamping arbitrary values cannot bypass ring routing or turn a
// fleet-wide model push into a single-replica one. This guards against
// accidents and unknown values only — replica ids are not secrets (they
// appear in error bodies and swap reports), so a token-holding client
// naming a real peer id can still bypass; docs/federation.md therefore
// requires stripping these headers at the edge proxy.
func TestFederationSpoofedMarkersIgnored(t *testing.T) {
	a, b := newFederatedFleet(t, "")
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")

	req, err := http.NewRequest("POST", a.base+"/v1/sessions",
		bytes.NewReader(jsonBody(t, map[string]string{"id": bDev})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(adasense.ForwardedHeader, "mallory")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("open with spoofed forward marker = %d", resp.StatusCode)
	}
	if _, onA := a.gw.Lookup(bDev); onA {
		t.Error("spoofed forward marker pinned a session off its owner")
	}
	if _, onB := b.gw.Lookup(bDev); !onB {
		t.Error("spoofed forward marker kept the session from its owner")
	}

	var model bytes.Buffer
	if err := quickSystem(t).Save(&model); err != nil {
		t.Fatal(err)
	}
	req, err = http.NewRequest("POST", a.base+"/v1/model", bytes.NewReader(model.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(adasense.ReplicatedHeader, "mallory")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("model push with spoofed replication marker = %d", resp.StatusCode)
	}
	if a.gw.Stats().ModelSwaps != 1 || b.gw.Stats().ModelSwaps != 1 {
		t.Errorf("spoofed replication marker stopped the fleet-wide swap: %d / %d",
			a.gw.Stats().ModelSwaps, b.gw.Stats().ModelSwaps)
	}
}

// TestFederationAuthReused: in an authenticated fleet the device's
// bearer token travels with the forward, so one credential works against
// whichever replica the device happens to reach. A bad token dies at the
// first replica.
func TestFederationAuthReused(t *testing.T) {
	a, _ := newFederatedFleet(t, "fleet-secret")
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")

	if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": bDev}), nil); code != 401 {
		t.Fatalf("unauthenticated forwarded open = %d, want 401", code)
	}
	var sess sessionJSON
	if code := doFed(t, "POST", a.base+"/v1/sessions", "fleet-secret", jsonBody(t, map[string]string{"id": bDev}), &sess); code != 201 {
		t.Fatalf("authenticated forwarded open = %d, want 201", code)
	}
	if code := doFed(t, "POST", a.base+"/v1/sessions/"+bDev+"/push", "fleet-secret", jsonBody(t, wireBatch(t, 2)), nil); code != 200 {
		t.Fatalf("authenticated forwarded push = %d, want 200", code)
	}
}

func jsonBody(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFederationDynamicMembershipHandoff is the dynamic-membership
// acceptance proof (run under -race in CI): three full replica servers
// driven by one polled peers file serve a pushing fleet while gw-c
// leaves and gw-d joins mid-traffic. No push is lost (every push
// eventually lands, retried through the documented 404/410/502/503
// answers), every device finishes on its ring-assigned owner and only
// there, the departed replica is empty, and the handoff telemetry
// advanced.
func TestFederationDynamicMembershipHandoff(t *testing.T) {
	names := []string{"gw-a", "gw-b", "gw-c", "gw-d"}
	servers := make(map[string]*httptest.Server, len(names))
	urls := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		urls[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, urls[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	// gw-d's server runs from the start, but discovery has not announced
	// it yet: it is a pure forwarder until the membership change.
	writePeers("gw-a", "gw-b", "gw-c")

	gws := make(map[string]*adasense.Gateway, len(names))
	clusters := make(map[string]*adasense.Cluster, len(names))
	for _, n := range names {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		gws[n], clusters[n] = gw, cluster
		servers[n].Config.Handler = newServer(gw, cluster)
		servers[n].Start()
	}

	waitCluster := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The fleet: every device enters through a fixed replica (spread
	// over a, b and the doomed c) and pushes in three rounds — before,
	// during, and after the membership change. A push is never given up:
	// transient answers (a handoff landing mid-request) are retried, so
	// "no pushes lost" means every round completes for every device.
	const (
		devices     = 15
		perRound    = 6
		maxAttempts = 200
	)
	entries := []string{servers["gw-a"].URL, servers["gw-b"].URL, servers["gw-c"].URL}
	batch := jsonBody(t, wireBatch(t, 1))
	// Re-opens are best-effort: mid-skew an open can transiently answer
	// 410 (stale-route refusal) or 502/503 like any other request, and
	// the retry loop absorbs it — a push landing (200) is the only
	// progress criterion, so "no pushes lost" is judged on pushes alone.
	openDevice := func(entry, id string) {
		doFed(t, "POST", entry+"/v1/sessions", "", jsonBody(t, map[string]string{"id": id}), nil)
	}
	pushRound := func(entry, id string) error {
		for n := 0; n < perRound; n++ {
			landed := false
			for attempt := 0; attempt < maxAttempts; attempt++ {
				if code := doFed(t, "POST", entry+"/v1/sessions/"+id+"/push", "", batch, nil); code == 200 {
					landed = true
					break
				}
				// 404/410: the session moved under us — reopen wherever
				// the ring now says and retry. 502/503: a peer mid-drain
				// or mid-handoff — just retry.
				openDevice(entry, id)
				time.Sleep(2 * time.Millisecond)
			}
			if !landed {
				return fmt.Errorf("push %d for %s never landed", n, id)
			}
		}
		return nil
	}

	var midpoint, done sync.WaitGroup
	finalRound := make(chan struct{})
	errs := make(chan error, devices)
	for i := 0; i < devices; i++ {
		entry := entries[i%len(entries)]
		id := fmt.Sprintf("dyn-dev-%d", i)
		midpoint.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			openDevice(entry, id)
			err := pushRound(entry, id) // round 1: stable fleet
			midpoint.Done()
			if err == nil {
				err = pushRound(entry, id) // round 2: races the rebalance
			}
			<-finalRound
			if err == nil {
				err = pushRound(entry, id) // round 3: settled fleet
			}
			errs <- err
		}()
	}

	// Mid-traffic: gw-c leaves, gw-d joins. Round 2 pushes race the
	// rebalance on every replica.
	midpoint.Wait()
	writePeers("gw-a", "gw-b", "gw-d")
	waitCluster("every replica to apply the change", func() bool {
		for _, n := range names {
			if clusters[n].Generation() < 2 {
				return false
			}
		}
		return true
	})
	close(finalRound)
	done.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The departed replica drains to empty once its handoffs settle.
	waitCluster("gw-c to empty", func() bool { return gws["gw-c"].NumSessions() == 0 })

	// Every device sits on its ring-assigned owner — and nowhere else.
	ringOf := clusters["gw-a"]
	ownersSeen := map[string]int{}
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("dyn-dev-%d", i)
		owner, _ := ringOf.Route(id)
		ownersSeen[owner.ID]++
		for _, n := range names {
			_, live := gws[n].Lookup(id)
			if live != (n == owner.ID) {
				t.Errorf("device %s: live on %s = %v, ring owner is %s", id, n, live, owner.ID)
			}
		}
	}
	if ownersSeen["gw-c"] != 0 {
		t.Errorf("ring still assigns %d devices to the departed replica", ownersSeen["gw-c"])
	}
	if live := gws["gw-a"].NumSessions() + gws["gw-b"].NumSessions() + gws["gw-d"].NumSessions(); live != devices {
		t.Errorf("fleet holds %d sessions, want %d", live, devices)
	}

	// The handoff and rebalance telemetry advanced: gw-c handed off
	// everything it held, every replica counted one applied change, and
	// each moved session arrived through the handoff machinery — by
	// state transfer when gw-c's PUT won the race, by cold adoption when
	// the device's own retry got there first.
	var handedOff, arrived uint64
	for _, n := range names {
		s := gws[n].Stats()
		handedOff += s.SessionsHandedOff
		arrived += s.HandoffsStateful + s.HandoffsCold
		if s.Rebalances != 1 {
			t.Errorf("%s Rebalances = %d, want 1", n, s.Rebalances)
		}
	}
	if handedOff == 0 {
		t.Error("adasense_sessions_handed_off_total stayed 0 across the fleet")
	}
	if arrived == 0 {
		t.Error("no moved session was counted as a stateful restore or a cold adoption")
	}
	m := scrapeMetrics(t, servers["gw-a"].URL)
	for _, series := range []string{"adasense_rebalances_total", "adasense_sessions_handed_off_total",
		"adasense_stale_route_total", "adasense_handoffs_stateful_total", "adasense_handoffs_cold_total"} {
		if _, ok := m[series]; !ok {
			t.Errorf("/metrics is missing %s", series)
		}
	}
	if m["adasense_rebalances_total"] != 1 {
		t.Errorf("gw-a adasense_rebalances_total = %v, want 1", m["adasense_rebalances_total"])
	}
}

// TestFederationForwardErrorPaths covers the wire mapping of a failing
// forward: an unreachable owner answers 502 with a body naming the
// peer, while an owner that answers — even with an error — has its
// status relayed verbatim (a drained owner's 503, a missing session's
// 404).
func TestFederationForwardErrorPaths(t *testing.T) {
	a, b := newFederatedFleet(t, "")
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")

	// Owner answering an error: relayed untouched — the 404 of a
	// never-opened session on a GET (only pushes adopt), and the 400 of
	// a malformed batch.
	var missing errorJSON
	if code := doFed(t, "GET", a.base+"/v1/sessions/"+bDev, "", nil, &missing); code != 404 {
		t.Fatalf("forwarded get of unknown session = %d, want the owner's 404", code)
	}
	if missing.Error == "" {
		t.Error("owner's 404 body was not relayed")
	}
	var relayed errorJSON
	if code := doFed(t, "POST", a.base+"/v1/sessions/"+bDev+"/push", "", []byte("{not json"), &relayed); code != 400 {
		t.Fatalf("forwarded malformed push = %d, want the owner's 400", code)
	}
	if relayed.Error == "" {
		t.Error("owner's error body was not relayed")
	}

	// Owner draining: its 503 is relayed, not rewritten.
	if err := b.gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": bDev}), nil); code != 503 {
		t.Fatalf("open forwarded to a draining owner = %d, want 503", code)
	}

	// Owner unreachable: the dialed replica answers 502 and names the
	// peer; the forward counts as a peer error.
	b.ts.Close()
	var gone errorJSON
	if code := doFed(t, "GET", a.base+"/v1/sessions/"+bDev, "", nil, &gone); code != 502 {
		t.Fatalf("forward to a dead owner = %d, want 502", code)
	}
	if !strings.Contains(gone.Error, `"gw-b"`) {
		t.Errorf("502 body does not name the dead peer: %q", gone.Error)
	}
	if s := a.gw.Stats(); s.PeerErrors == 0 {
		t.Error("dead-owner forward did not count a peer error")
	}
}

// TestFederationStatefulHandoffColdFallback is the handoff-fidelity
// acceptance proof (run under -race in CI), split from the churn test
// above so each probe's trajectory is deterministic. Stateful half: a
// SPOT device descended mid-trajectory on a gracefully departing
// replica reappears on its ring-assigned new owner with a
// byte-identical ADSS snapshot — configuration, controller counters,
// window remainder and energy ledger all intact, counted on
// adasense_handoffs_stateful_total and never on the cold series. Cold
// half: when the old owner dies outright (nothing handed off), the
// device's next push on the survivor adopts it cold at the top
// configuration, counted on adasense_handoffs_cold_total — and in both
// halves the device's next push lands.
func TestFederationStatefulHandoffColdFallback(t *testing.T) {
	names := []string{"gw-a", "gw-b", "gw-c"}
	servers := make(map[string]*httptest.Server, len(names))
	urls := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		urls[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, urls[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(names...)

	gws := make(map[string]*adasense.Gateway, len(names))
	clusters := make(map[string]*adasense.Cluster, len(names))
	for _, n := range names {
		// Zero stability threshold: the probes descend within a few
		// seconds of stable activity, leaving real mid-trajectory FSM
		// state for the handoff to carry.
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewSPOT(0)
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		gws[n], clusters[n] = gw, cluster
		servers[n].Config.Handler = newServer(gw, cluster)
		servers[n].Start()
	}
	waitCond := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	top := adasense.ParetoStates()[0]
	// openAndDescend opens the device through gw-a's front door (the ring
	// forwards to its owner), then drives stable walking traffic in
	// process — sampled at whatever configuration the session currently
	// directs — until the SPOT steps off the top state.
	openAndDescend := func(owner, id string, seed uint64) *adasense.GatewaySession {
		t.Helper()
		if code := doFed(t, "POST", servers["gw-a"].URL+"/v1/sessions", "", jsonBody(t, map[string]string{"id": id}), nil); code != 200 && code != 201 {
			t.Fatalf("opening %s = %d", id, code)
		}
		sess, ok := gws[owner].Lookup(id)
		if !ok {
			t.Fatalf("%s did not land on its owner %s", id, owner)
		}
		sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 120}})
		if err != nil {
			t.Fatal(err)
		}
		m := adasense.NewMotion(sched, seed)
		sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), seed+1)
		clock := 0.0
		for sess.Config() == top && clock < 60 {
			b := sampler.Sample(m, sess.Config(), clock, clock+1)
			if _, err := sess.Push(b); err != nil {
				t.Fatal(err)
			}
			clock++
		}
		if sess.Config() == top {
			t.Fatalf("probe %s never descended", id)
		}
		return sess
	}
	encode := func(st *adasense.SessionState) []byte {
		t.Helper()
		raw, err := st.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	// --- Stateful half: gw-c leaves gracefully. ---
	statefulID := deviceOwnedBy(t, clusters["gw-a"], "gw-c")
	donor := openAndDescend("gw-c", statefulID, 101)
	before, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	beforeBytes := encode(before)
	cfgBefore := donor.Config()

	writePeers("gw-a", "gw-b")
	waitCond("every replica to apply the change", func() bool {
		for _, n := range names {
			if clusters[n].Generation() < 2 {
				return false
			}
		}
		return true
	})
	waitCond("gw-c to drain", func() bool { return gws["gw-c"].NumSessions() == 0 })
	owner, _ := clusters["gw-a"].Route(statefulID)
	if owner.ID == "gw-c" {
		t.Fatalf("ring still assigns %s to the departed replica", statefulID)
	}
	// The state PUT is asynchronous; wait for it to land on the new owner.
	var moved *adasense.GatewaySession
	waitCond("the state transfer to land on "+owner.ID, func() bool {
		s, ok := gws[owner.ID].Lookup(statefulID)
		if ok {
			moved = s
		}
		return ok
	})
	if got := moved.Config(); got != cfgBefore {
		t.Fatalf("handed-off probe serves at %s, had descended to %s", got.Name(), cfgBefore.Name())
	}
	after, err := moved.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(after), beforeBytes) {
		t.Fatalf("handoff was lossy:\nbefore: %+v\nafter:  %+v", before, after)
	}
	stateful := gws["gw-a"].Stats().HandoffsStateful + gws["gw-b"].Stats().HandoffsStateful
	if stateful != 1 {
		t.Errorf("fleet HandoffsStateful = %d after one graceful departure, want 1", stateful)
	}
	if cold := gws["gw-a"].Stats().HandoffsCold + gws["gw-b"].Stats().HandoffsCold; cold != 0 {
		t.Errorf("fleet HandoffsCold = %d, the stateful path needed no fallback", cold)
	}
	// The device's next push lands on the moved session.
	if _, err := moved.Push(adasense.NewSampler(adasense.DefaultNoiseModel(), 103).
		Sample(adasense.NewMotion(mustWalkSchedule(t), 102), moved.Config(), 60, 61)); err != nil {
		t.Fatalf("post-handoff push failed: %v", err)
	}

	// --- Cold half: gw-b dies without handing anything off. ---
	coldID := deviceOwnedBy(t, clusters["gw-a"], "gw-b")
	openAndDescend("gw-b", coldID, 201)
	statefulBefore := gws["gw-a"].Stats().HandoffsStateful
	clusters["gw-b"].Close()
	servers["gw-b"].Close()
	writePeers("gw-a")
	waitCond("gw-a to apply the final change", func() bool { return clusters["gw-a"].Generation() >= 3 })

	// The dead owner sent nothing, so the device's own reconnect is what
	// revives it: the first push on the survivor adopts the session cold.
	batch := jsonBody(t, wireBatch(t, 1))
	landed := false
	for attempt := 0; attempt < 200 && !landed; attempt++ {
		if code := doFed(t, "POST", servers["gw-a"].URL+"/v1/sessions/"+coldID+"/push", "", batch, nil); code == 200 {
			landed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !landed {
		t.Fatal("cold-fallback push never landed on the survivor")
	}
	adopted, ok := gws["gw-a"].Lookup(coldID)
	if !ok {
		t.Fatal("survivor serves pushes for a session it does not hold")
	}
	if adopted.Config() != top {
		t.Errorf("cold adoption kept state it could not have received: %s", adopted.Config().Name())
	}
	if cold := gws["gw-a"].Stats().HandoffsCold; cold != 1 {
		t.Errorf("gw-a HandoffsCold = %d after the fallback, want 1", cold)
	}
	if got := gws["gw-a"].Stats().HandoffsStateful; got != statefulBefore {
		t.Errorf("gw-a HandoffsStateful moved %d -> %d with no live peer to send state", statefulBefore, got)
	}

	m := scrapeMetrics(t, servers["gw-a"].URL)
	for _, series := range []string{"adasense_handoffs_stateful_total", "adasense_handoffs_cold_total"} {
		if _, ok := m[series]; !ok {
			t.Errorf("/metrics is missing %s", series)
		}
	}
	if m["adasense_handoffs_cold_total"] < 1 {
		t.Errorf("gw-a adasense_handoffs_cold_total = %v, want >= 1", m["adasense_handoffs_cold_total"])
	}
}

// mustWalkSchedule is the probes' steady walking schedule.
func mustWalkSchedule(t *testing.T) *adasense.Schedule {
	t.Helper()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 120}})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}
