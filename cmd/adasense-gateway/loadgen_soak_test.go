package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adasense"
	"adasense/internal/loadgen"
	"adasense/internal/membership"
)

// TestLoadgenSoakChurn is the PR 8 soak (run under -race in CI): a
// 200-device mixed-cohort synthetic fleet drives a three-replica
// in-process cluster open-loop through a fixed event budget while, mid
// run, (a) a healthy model rollout promotes 5% → 25% → 100% on live
// traffic and (b) a membership change removes a replica, rebalancing
// the ring and forcing its sessions to reopen elsewhere. The contract:
// not one offered push is lost — every batch either lands as a 2xx
// (possibly after retries and a reopen) or was consciously shed by the
// driver — and the loadgen report stays well-formed throughout.
func TestLoadgenSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	names := []string{"gw-a", "gw-b", "gw-c"}
	servers := make(map[string]*httptest.Server, len(names))
	urls := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		urls[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, urls[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(names...)

	// Small windows so stage verdicts fill from traffic that is spread
	// across a whole fleet (not hammered on one session), and gates wide
	// open: this soak exercises the serving path under churn — gate
	// discrimination is rollout_e2e_test's job. Samples accumulate
	// until an arm qualifies, so the window length only sets the floor.
	rolloutCfg := adasense.DefaultRolloutConfig()
	rolloutCfg.Window = 50 * time.Millisecond
	rolloutCfg.MinSamples = 5
	rolloutCfg.ConfidenceTolerance = 0.6
	rolloutCfg.ShiftTolerance = 2
	rolloutCfg.ErrorTolerance = 1
	rolloutCfg.PowerTolerance = 10

	gws := make(map[string]*adasense.Gateway, len(names))
	clusters := make(map[string]*adasense.Cluster, len(names))
	for _, n := range names {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		gws[n], clusters[n] = gw, cluster
		srv := newServer(gw, cluster)
		srv.rolloutCfg = rolloutCfg
		servers[n].Config.Handler = srv
		servers[n].Start()
	}

	candidate := candidateBytes(t, quickSystem(t))

	// One-second batches keep per-push classify cost down so the race
	// detector doesn't turn the whole run into shed; the goodput floor
	// below is deliberately loose for the same reason — shed is the
	// open-loop driver's overload valve, not a serving failure.
	runner, err := loadgen.NewRunner(loadgen.Config{
		Targets:     []string{servers["gw-a"].URL, servers["gw-b"].URL},
		Devices:     200,
		Seed:        2026,
		BatchSec:    1,
		Workers:     96,
		MaxAttempts: 16,
		OpenFirst:   true,
		Phases: []loadgen.Phase{
			{Rate: 200, Events: 400},  // steady state
			{Rate: 200, Events: 1000}, // rollout promotes under load
			{Rate: 200, Events: 600},  // gw-c leaves under load
		},
		OnPhase: func(i int) {
			switch i {
			case 1:
				if code := doFed(t, "POST", servers["gw-a"].URL+"/v1/rollout", "", candidate, nil); code != 201 {
					t.Fatalf("rollout start = %d", code)
				}
			case 2:
				// No waiting here: the rebalance races the phase's
				// traffic on purpose.
				writePeers("gw-a", "gw-b")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("soak report invalid: %v", err)
	}
	if rep.Totals.Lost != 0 {
		enc, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("pushes lost during soak:\n%s", enc)
	}
	if want := uint64(400 + 1000 + 600); rep.Totals.Offered != want {
		t.Fatalf("offered = %d, want %d", rep.Totals.Offered, want)
	}
	if ok := rep.Totals.PushOK; float64(ok) < 0.75*float64(rep.Totals.Offered) {
		t.Fatalf("goodput collapsed: %d of %d offered pushes succeeded", ok, rep.Totals.Offered)
	}
	// The membership change settled: both survivors applied the
	// two-member ring and the departed replica handed every session off.
	// Handoff is transparent to devices (state moves replica-to-replica,
	// so pushes keep landing without a reopen), which is why the lost
	// and reopen counters stay quiet while the stats below move.
	waitFor(t, "survivors to apply the membership change", 10*time.Second, func() bool {
		return clusters["gw-a"].Generation() >= 2 && clusters["gw-b"].Generation() >= 2
	})
	waitFor(t, "gw-c to hand off all sessions", 10*time.Second, func() bool {
		return gws["gw-c"].NumSessions() == 0
	})
	if handed := gws["gw-c"].Stats().SessionsHandedOff; handed == 0 {
		t.Fatal("gw-c reports no sessions handed off after leaving the ring")
	}
	// With dozens of sessions leaving gw-c mid-traffic, at least one
	// must arrive on a survivor by state transfer rather than a cold
	// reopen — the stateful path is the default, and a cold adoption
	// only wins when a device's in-flight push beats the state PUT.
	if stateful := gws["gw-a"].Stats().HandoffsStateful + gws["gw-b"].Stats().HandoffsStateful; stateful == 0 {
		t.Fatal("no session moved statefully during the churn")
	}

	// The rollout completed on the survivors and published the candidate
	// as the fleet's model. Traffic has stopped, so tick the stage
	// machine while polling: a verdict whose window filled right at the
	// end of the run still needs an evaluation to apply.
	for _, n := range []string{"gw-a", "gw-b"} {
		gw := gws[n]
		waitFor(t, n+" rollout completion", 30*time.Second, func() bool {
			gw.RolloutTick()
			st, err := gw.RolloutStatus()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "rolled_back" {
				t.Fatalf("%s rolled back during soak: %+v", n, st)
			}
			return st.State == "completed"
		})
		if gen := gw.ModelGeneration(); gen != 2 {
			t.Fatalf("%s model generation = %d after promote, want 2", n, gen)
		}
	}
}
