package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adasense"
	"adasense/internal/loadgen"
	"adasense/internal/membership"
)

// TestLoadgenSoakStream is the streaming counterpart of the churn soak
// (run under -race in CI): a mixed-cohort fleet holds persistent ADSP
// connections — half over the WebSocket upgrade, half over raw TCP —
// against a three-replica cluster while a membership change removes a
// replica mid-run. Every device entering at the wrong replica is
// redirected at the door and follows; devices whose owner leaves are
// redirected on a live connection and re-dial. The contract is the same
// as the HTTP soak: zero lost pushes and a well-formed report.
func TestLoadgenSoakStream(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	names := []string{"gw-a", "gw-b", "gw-c"}
	servers := make(map[string]*httptest.Server, len(names))
	urls := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		urls[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, urls[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(names...)

	gws := make(map[string]*adasense.Gateway, len(names))
	tcpTargets := make([]string, 0, len(names))
	for _, n := range names {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		gws[n] = gw
		h := newServer(gw, cluster)
		servers[n].Config.Handler = h
		servers[n].Start()

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		tcpTargets = append(tcpTargets, "tcp://"+ln.Addr().String())
		go h.stream.Serve(ln)
	}

	// Targets alternate transports: ws upgrades on two replicas' HTTP
	// listeners and the raw framing on the third's -stream-addr
	// equivalent. Round-robin device assignment spreads the fleet over
	// all three, so redirect-following is exercised from the first dial.
	runner, err := loadgen.NewRunner(loadgen.Config{
		Targets:     []string{servers["gw-a"].URL, tcpTargets[1], servers["gw-c"].URL},
		Transport:   loadgen.TransportStream,
		Devices:     120,
		Seed:        2027,
		BatchSec:    1,
		Workers:     96,
		MaxAttempts: 16,
		OpenFirst:   true,
		Phases: []loadgen.Phase{
			{Rate: 200, Events: 400}, // steady state over streams
			{Rate: 200, Events: 800}, // gw-c leaves under load
		},
		OnPhase: func(i int) {
			if i == 1 {
				// The rebalance races the phase's streamed traffic on
				// purpose: live connections to gw-c must be redirected.
				writePeers("gw-a", "gw-b")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("soak report invalid: %v", err)
	}
	if rep.Transport != loadgen.TransportStream {
		t.Fatalf("report transport = %q, want %q", rep.Transport, loadgen.TransportStream)
	}
	if rep.Totals.Lost != 0 {
		enc, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("pushes lost during stream soak:\n%s", enc)
	}
	if want := uint64(400 + 800); rep.Totals.Offered != want {
		t.Fatalf("offered = %d, want %d", rep.Totals.Offered, want)
	}
	if ok := rep.Totals.PushOK; float64(ok) < 0.75*float64(rep.Totals.Offered) {
		t.Fatalf("goodput collapsed: %d of %d offered pushes succeeded", ok, rep.Totals.Offered)
	}
	// The departed replica handed every session off and serves none.
	waitFor(t, "gw-c to hand off all sessions", 10*time.Second, func() bool {
		return gws["gw-c"].NumSessions() == 0
	})
}
