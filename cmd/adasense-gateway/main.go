// Command adasense-gateway serves a fleet of wearable devices over
// HTTP/JSON: it wraps one trained shared classifier in an
// adasense.Gateway — session registry with idle eviction, atomic model
// hot-swap, serving telemetry — and exposes the whole serving surface on
// the wire.
//
// Usage:
//
//	adasense-gateway [-addr :8734] [-model model.bin]
//	                 [-max-sessions 0] [-idle-ttl 0] [-sweep 30s]
//	                 [-train-windows 2400]
//
// With -model it serves a container written by adasense-train; without
// it, it trains a quick model at startup so the gateway is drivable out
// of the box. A retrained model is hot-swapped in with
//
//	curl -X POST --data-binary @model.bin http://host/v1/model
//
// without dropping a single live session. With -idle-ttl > 0 a
// background sweeper reclaims sessions idle past the TTL every -sweep
// interval.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"adasense"
)

func main() {
	addr := flag.String("addr", ":8734", "listen address")
	modelPath := flag.String("model", "", "trained model container (empty: train a quick model at startup)")
	trainWindows := flag.Int("train-windows", 2400, "corpus size for the startup-trained model (with no -model)")
	maxSessions := flag.Int("max-sessions", 0, "session capacity cap (0 = unlimited)")
	idleTTL := flag.Duration("idle-ttl", 0, "evict sessions idle this long (0 = never)")
	sweep := flag.Duration("sweep", 30*time.Second, "idle-eviction sweep interval")
	flag.Parse()

	if err := run(*addr, *modelPath, *trainWindows, *maxSessions, *idleTTL, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-gateway:", err)
		os.Exit(1)
	}
}

func loadOrTrain(modelPath string, trainWindows int) (*adasense.System, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("serving model %s", modelPath)
		return adasense.LoadSystem(f)
	}
	log.Printf("no -model: training a quick classifier on %d windows...", trainWindows)
	sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: trainWindows})
	if err != nil {
		return nil, err
	}
	log.Printf("startup model ready (held-out accuracy %.1f%%)", 100*acc)
	return sys, nil
}

func run(addr, modelPath string, trainWindows, maxSessions int, idleTTL, sweep time.Duration) error {
	sys, err := loadOrTrain(modelPath, trainWindows)
	if err != nil {
		return err
	}
	gw, err := adasense.NewGateway(sys,
		adasense.WithMaxSessions(maxSessions),
		adasense.WithIdleTTL(idleTTL),
	)
	if err != nil {
		return err
	}

	if idleTTL > 0 {
		if sweep <= 0 {
			return fmt.Errorf("non-positive sweep interval %v", sweep)
		}
		go func() {
			for range time.Tick(sweep) {
				if evicted := gw.EvictIdle(); len(evicted) > 0 {
					log.Printf("evicted %d idle session(s): %v", len(evicted), evicted)
				}
			}
		}()
	}

	log.Printf("gateway listening on %s (max-sessions=%d, idle-ttl=%v)", addr, maxSessions, idleTTL)
	return http.ListenAndServe(addr, newServer(gw))
}
