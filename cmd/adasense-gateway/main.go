// Command adasense-gateway serves a fleet of wearable devices over
// HTTP/JSON: it wraps one trained shared classifier in an
// adasense.Gateway — session registry with idle eviction, atomic model
// hot-swap, bearer-token auth, token-bucket rate limiting, graceful
// drain, Prometheus telemetry — and exposes the whole serving surface
// on the wire.
//
// Usage:
//
//	adasense-gateway [-addr :8734] [-model model.bin]
//	                 [-max-sessions 0] [-idle-ttl 0] [-sweep 30s]
//	                 [-token ""] [-device-rps 0] [-device-burst 0]
//	                 [-global-rps 0] [-global-burst 0]
//	                 [-drain-timeout 30s] [-train-windows 2400]
//	                 [-self ""] [-peers ""]
//	                 [-peers-file ""] [-peers-poll 5s] [-peers-debounce 0]
//	                 [-rollout-stages 0.05,0.25,1] [-rollout-window 1m]
//	                 [-rollout-min-samples 200] [-rollout-tick 5s]
//	                 [-rollout-confidence-tol 0.05] [-rollout-shift-tol 0.2]
//	                 [-rollout-error-tol 0.02] [-rollout-power-tol 0.1]
//	                 [-log-format text] [-log-level info]
//	                 [-slow-request 1s] [-flight-recorder 256]
//	                 [-debug-addr ""] [-stream-addr ""]
//
// With -model it serves a container written by adasense-train; without
// it, it trains a quick model at startup so the gateway is drivable out
// of the box. A retrained model is hot-swapped in with
//
//	curl -X POST -H "Authorization: Bearer $TOKEN" \
//	     --data-binary @model.bin http://host/v1/model
//
// without dropping a single live session. With -idle-ttl > 0 a
// background sweeper reclaims sessions idle past the TTL every -sweep
// interval. With -token (or the ADASENSE_TOKEN environment variable)
// every /v1/* route requires the bearer token; /metrics and /healthz
// stay open. On SIGTERM or SIGINT the gateway drains: new opens are
// refused, live sessions are closed after their in-flight pushes, the
// final telemetry snapshot is logged, and the process exits within
// -drain-timeout.
//
// With -self and -peers the gateway federates into a static replica
// fleet:
//
//	adasense-gateway -self gw-a \
//	    -peers gw-a=http://host-a:8734,gw-b=http://host-b:8734
//
// A consistent-hash ring over the replica ids assigns every device to
// one replica; session requests that arrive at the wrong replica are
// forwarded to their owner (the bearer token travels along), and one
// model upload is replicated to every replica. Every replica must be
// started with the identical -peers list and token.
//
// With -peers-file the member list is discovered instead of fixed: the
// file (same id=url grammar, one entry per line or comma-separated,
// #-comments allowed — a mounted configmap works as-is) is re-read
// every -peers-poll, and a change rebalances the fleet live: the ring
// is rebuilt, sessions whose devices moved are closed on their old
// owner after their in-flight push, and each device is transparently
// re-opened on its new owner on next contact. Every replica polls the
// same membership data. See docs/federation.md for topology, placement,
// membership and failure modes, and docs/operations.md for the full
// reference.
//
// A new model can also be rolled out gradually instead of swapped
// at once:
//
//	curl -X POST -H "Authorization: Bearer $TOKEN" \
//	     --data-binary @candidate.bin http://host/v1/rollout
//
// stages the candidate through device cohorts (-rollout-stages, ring
// fractions of the device id space), comparing canary health against
// the incumbent over -rollout-window and auto-promoting or
// auto-rolling-back against the -rollout-*-tol gates; a background
// ticker (-rollout-tick) keeps the stage machine moving on quiet
// fleets. GET /v1/rollout reports live status, DELETE aborts. See
// docs/rollout.md.
//
// Every request is traced end to end: an id is minted at ingress (or
// inherited from the X-Adasense-Trace header), travels across replica
// forwards and replications, and lands with its per-stage span
// breakdown in an in-memory flight recorder queryable at
// GET /v1/debug/requests (auth-gated). Access logs are structured
// (-log-format text|json, -log-level), requests slower than
// -slow-request or dying with a 5xx log at warn, and -debug-addr
// exposes net/http/pprof on a separate listener that should stay
// private. See docs/observability.md.
//
// Besides HTTP/JSON, devices can hold one persistent binary streaming
// connection each (the ADSP protocol): a WebSocket upgraded at
// GET /v1/stream, or raw TCP on -stream-addr. Batches push as compact
// binary frames, classification events and server-directed sensor
// reconfigurations flow back on the same connection, and on a
// federated fleet a misrouted device is redirected to its owning
// replica instead of being proxied per push. See docs/streaming.md for
// the wire protocol and operational semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adasense"
	"adasense/internal/membership"
	"adasense/internal/reqtrace"
)

// version identifies the build in the adasense_build_info metric and
// the /healthz payload. Release builds inject it:
//
//	go build -ldflags "-X main.version=$(git describe --tags --always)" ./cmd/adasense-gateway
var version = "dev"

func main() {
	cfg := gatewayFlags{}
	flag.StringVar(&cfg.addr, "addr", ":8734", "listen address")
	flag.StringVar(&cfg.modelPath, "model", "", "trained model container (empty: train a quick model at startup)")
	flag.IntVar(&cfg.trainWindows, "train-windows", 2400, "corpus size for the startup-trained model (with no -model)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "session capacity cap (0 = unlimited)")
	flag.DurationVar(&cfg.idleTTL, "idle-ttl", 0, "evict sessions idle this long (0 = never)")
	flag.DurationVar(&cfg.sweep, "sweep", 30*time.Second, "idle-eviction sweep interval")
	flag.StringVar(&cfg.token, "token", "",
		"bearer token required on /v1/* routes (default $ADASENSE_TOKEN; empty = no auth)")
	flag.Float64Var(&cfg.deviceRPS, "device-rps", 0, "sustained per-device requests/sec (0 = unlimited)")
	flag.IntVar(&cfg.deviceBurst, "device-burst", 0, "per-device burst allowance (required with -device-rps)")
	flag.Float64Var(&cfg.globalRPS, "global-rps", 0, "sustained gateway-wide requests/sec (0 = unlimited)")
	flag.IntVar(&cfg.globalBurst, "global-burst", 0, "gateway-wide burst allowance (required with -global-rps)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", adasense.DefaultDrainTimeout,
		"deadline for graceful drain on SIGTERM/SIGINT")
	flag.StringVar(&cfg.self, "self", "", "this replica's id in a federated fleet (requires -peers or -peers-file)")
	flag.StringVar(&cfg.peers, "peers", "",
		"federation members as id=url,id=url (must include -self; identical on every replica)")
	flag.StringVar(&cfg.peersFile, "peers-file", "",
		"file holding the federation members (id=url per line; polled for live rebalancing)")
	flag.DurationVar(&cfg.peersPoll, "peers-poll", membership.DefaultPollInterval,
		"how often -peers-file is re-read for membership changes")
	flag.DurationVar(&cfg.peersDebounce, "peers-debounce", 0,
		"publish a -peers-file change only after its content is stable this long "+
			"(0 = immediately; set ≥ one -peers-poll to tolerate non-atomic writers)")
	flag.BoolVar(&cfg.handoffState, "handoff-state", true,
		"transfer live session state to the new owner on rebalance "+
			"(false: close sessions and let the new owner re-open them cold)")
	rolloutDefaults := adasense.DefaultRolloutConfig()
	flag.StringVar(&cfg.rolloutStages, "rollout-stages", "0.05,0.25,1",
		"canary cohort fractions per rollout stage (ascending, last must be 1)")
	flag.DurationVar(&cfg.rolloutWindow, "rollout-window", rolloutDefaults.Window,
		"minimum observation window before a rollout stage is judged")
	flag.IntVar(&cfg.rolloutMinSamples, "rollout-min-samples", rolloutDefaults.MinSamples,
		"minimum canary and incumbent classifications before a stage is judged")
	flag.DurationVar(&cfg.rolloutTick, "rollout-tick", 5*time.Second,
		"how often the rollout stage machine is evaluated in the background "+
			"(it is also evaluated inline on served traffic)")
	flag.Float64Var(&cfg.rolloutConfidenceTol, "rollout-confidence-tol", rolloutDefaults.ConfidenceTolerance,
		"max mean-classify-confidence lag of canary vs incumbent before rollback")
	flag.Float64Var(&cfg.rolloutShiftTol, "rollout-shift-tol", rolloutDefaults.ShiftTolerance,
		"max activity-distribution total-variation shift before rollback")
	flag.Float64Var(&cfg.rolloutErrorTol, "rollout-error-tol", rolloutDefaults.ErrorTolerance,
		"max canary error-rate excess over incumbent before rollback")
	flag.Float64Var(&cfg.rolloutPowerTol, "rollout-power-tol", rolloutDefaults.PowerTolerance,
		"max relative estimated-power excess of canary vs incumbent before rollback")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.DurationVar(&cfg.slowRequest, "slow-request", defaultSlowRequest,
		"requests at least this slow log at warn and are retained by the flight recorder (0 = never)")
	flag.IntVar(&cfg.flightRecorder, "flight-recorder", defaultFlightRecorderSize,
		"completed request traces kept for GET /v1/debug/requests (0 = keep none)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "",
		"separate listen address for net/http/pprof (empty = disabled; keep it private)")
	flag.StringVar(&cfg.streamAddr, "stream-addr", "",
		"listen address for raw-TCP ADSP streaming ingest "+
			"(empty = disabled; the WebSocket transport at GET /v1/stream is always on)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "peers-poll":
			cfg.peersPollSet = true
		case "peers-debounce":
			cfg.peersDebounceSet = true
		}
	})
	// The env fallback is resolved after parsing so the secret never
	// becomes a flag default, which -h and flag errors would print.
	if cfg.token == "" {
		cfg.token = os.Getenv("ADASENSE_TOKEN")
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-gateway:", err)
		os.Exit(1)
	}
}

type gatewayFlags struct {
	addr, modelPath           string
	trainWindows, maxSessions int
	idleTTL, sweep            time.Duration
	token                     string
	deviceRPS, globalRPS      float64
	deviceBurst, globalBurst  int
	drainTimeout              time.Duration
	self, peers               string
	peersFile                 string
	peersPoll                 time.Duration
	peersDebounce             time.Duration
	handoffState              bool
	// Set-ness recorded via flag.Visit, so passing a flag at its default
	// value is still caught by the static-peers misconfiguration guard.
	peersPollSet, peersDebounceSet bool

	rolloutStages                         string
	rolloutWindow, rolloutTick            time.Duration
	rolloutMinSamples                     int
	rolloutConfidenceTol, rolloutShiftTol float64
	rolloutErrorTol, rolloutPowerTol      float64

	logFormat, logLevel string
	slowRequest         time.Duration
	flightRecorder      int
	debugAddr           string
	streamAddr          string
}

// newLogger builds the process logger from -log-format and -log-level.
func newLogger(cfg gatewayFlags) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(cfg.logLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level: unknown level %q (want debug, info, warn or error)", cfg.logLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(cfg.logFormat) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: unknown format %q (want text or json)", cfg.logFormat)
	}
}

// rolloutConfig assembles and validates the rollout policy from the
// -rollout-* flags. The policy stays local: a replicated rollout start
// carries only the candidate bytes, and each replica judges it under
// its own flags (kept identical fleet-wide, like ring parameters).
func (cfg gatewayFlags) rolloutConfig() (adasense.RolloutConfig, error) {
	rc := adasense.DefaultRolloutConfig()
	rc.Window = cfg.rolloutWindow
	rc.MinSamples = cfg.rolloutMinSamples
	rc.ConfidenceTolerance = cfg.rolloutConfidenceTol
	rc.ShiftTolerance = cfg.rolloutShiftTol
	rc.ErrorTolerance = cfg.rolloutErrorTol
	rc.PowerTolerance = cfg.rolloutPowerTol
	rc.Stages = nil
	for _, field := range strings.Split(cfg.rolloutStages, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return rc, fmt.Errorf("-rollout-stages: %q is not a fraction", field)
		}
		rc.Stages = append(rc.Stages, f)
	}
	if err := rc.Validate(); err != nil {
		return rc, err
	}
	if cfg.rolloutTick <= 0 {
		return rc, fmt.Errorf("non-positive -rollout-tick %v", cfg.rolloutTick)
	}
	return rc, nil
}

// parsePeers parses the -peers list ("id=url,id=url"). The self entry
// may be a bare id or omit its URL ("gw-a" or "gw-a=") — it still needs
// to be listed so every replica ring-hashes the same member set; peer
// entries need a URL, which NewCluster enforces.
func parsePeers(list string) ([]adasense.Replica, error) {
	members, err := membership.Parse(list)
	if err != nil {
		return nil, err
	}
	replicas := make([]adasense.Replica, len(members))
	for i, m := range members {
		replicas[i] = adasense.Replica{ID: m.ID, URL: m.URL}
	}
	return replicas, nil
}

// buildCluster federates the gateway per -self plus either -peers
// (static membership) or -peers-file (polled, live-rebalancing
// membership); no federation flags means standalone (nil cluster). On
// the file path the source is returned too, so run can watch its
// health hook.
func buildCluster(gw *adasense.Gateway, cfg gatewayFlags) (*adasense.Cluster, *membership.FileSource, error) {
	if cfg.peers == "" && cfg.peersFile == "" && cfg.self == "" {
		return nil, nil, nil
	}
	if cfg.self == "" {
		return nil, nil, fmt.Errorf("federation needs -self")
	}
	if cfg.peers != "" && cfg.peersFile != "" {
		return nil, nil, fmt.Errorf("-peers and -peers-file are mutually exclusive")
	}
	// A poll interval or debounce alongside static -peers would be
	// silently ignored; surface the misconfiguration at startup instead.
	if cfg.peers != "" && (cfg.peersPollSet || cfg.peersDebounceSet) {
		return nil, nil, fmt.Errorf("-peers-poll and -peers-debounce require -peers-file (static -peers is never re-read)")
	}
	var opts []adasense.ClusterOption
	if cfg.token != "" {
		opts = append(opts, adasense.WithPeerAuth(cfg.token))
	}
	opts = append(opts, adasense.WithStatefulHandoff(cfg.handoffState))
	if cfg.peersFile != "" {
		src, err := membership.NewFileSource(cfg.peersFile,
			membership.WithPollInterval(cfg.peersPoll),
			membership.WithDebounce(cfg.peersDebounce))
		if err != nil {
			return nil, nil, err
		}
		// NewClusterWithSource closes the source itself on error.
		cluster, err := adasense.NewClusterWithSource(gw, cfg.self, src, opts...)
		if err != nil {
			return nil, nil, err
		}
		return cluster, src, nil
	}
	if cfg.peers == "" {
		return nil, nil, fmt.Errorf("federation needs -peers or -peers-file")
	}
	replicas, err := parsePeers(cfg.peers)
	if err != nil {
		return nil, nil, err
	}
	cluster, err := adasense.NewCluster(gw, cfg.self, replicas, opts...)
	return cluster, nil, err
}

// watchMembershipHealth logs transitions of the membership health hooks
// (file read/parse failures from the source, snapshot rejections from
// the cluster), so a peers file gone bad is visible in the gateway log
// while the last good view keeps serving.
func watchMembershipHealth(cluster *adasense.Cluster, src *membership.FileSource, every time.Duration) {
	var last string
	for range time.Tick(every) {
		msg := ""
		if err := src.Err(); err != nil {
			msg = err.Error()
		} else if err := cluster.MembershipErr(); err != nil {
			msg = err.Error()
		}
		if msg == last {
			continue
		}
		if msg != "" {
			slog.Warn("membership degraded, serving last good view",
				"generation", cluster.Generation(), "err", msg)
		} else {
			slog.Info("membership healthy again", "generation", cluster.Generation())
		}
		last = msg
	}
}

func loadOrTrain(modelPath string, trainWindows int) (*adasense.System, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		slog.Info("serving model", "path", modelPath)
		return adasense.LoadSystem(f)
	}
	slog.Info("no -model: training a quick classifier", "windows", trainWindows)
	sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: trainWindows})
	if err != nil {
		return nil, err
	}
	slog.Info("startup model ready", "heldout_accuracy", acc)
	return sys, nil
}

// buildGateway assembles the hardened gateway from the flag set.
func buildGateway(sys *adasense.System, cfg gatewayFlags) (*adasense.Gateway, error) {
	opts := []adasense.GatewayOption{
		adasense.WithMaxSessions(cfg.maxSessions),
		adasense.WithIdleTTL(cfg.idleTTL),
		adasense.WithDrainTimeout(cfg.drainTimeout),
	}
	if cfg.token != "" {
		opts = append(opts, adasense.WithAuth(cfg.token))
	}
	if cfg.deviceRPS > 0 || cfg.globalRPS > 0 {
		opts = append(opts, adasense.WithRateLimit(adasense.RateLimit{
			DevicePerSec: cfg.deviceRPS,
			DeviceBurst:  cfg.deviceBurst,
			GlobalPerSec: cfg.globalRPS,
			GlobalBurst:  cfg.globalBurst,
		}))
	}
	return adasense.NewGateway(sys, opts...)
}

func run(cfg gatewayFlags) error {
	logger, err := newLogger(cfg)
	if err != nil {
		return err
	}
	// The process logger is also the default: package-level helpers
	// (loadOrTrain, watchMembershipHealth) and anything else that logs
	// without a handle inherit the configured format and level.
	slog.SetDefault(logger)
	rolloutCfg, err := cfg.rolloutConfig()
	if err != nil {
		return err
	}
	sys, err := loadOrTrain(cfg.modelPath, cfg.trainWindows)
	if err != nil {
		return err
	}
	gw, err := buildGateway(sys, cfg)
	if err != nil {
		return err
	}
	cluster, src, err := buildCluster(gw, cfg)
	if err != nil {
		return err
	}
	if src != nil {
		go watchMembershipHealth(cluster, src, cfg.peersPoll)
	}

	if cfg.idleTTL > 0 {
		if cfg.sweep <= 0 {
			return fmt.Errorf("non-positive sweep interval %v", cfg.sweep)
		}
		go func() {
			for range time.Tick(cfg.sweep) {
				if evicted := gw.EvictIdle(); len(evicted) > 0 {
					logger.Info("evicted idle sessions", "count", len(evicted), "devices", evicted)
				}
			}
		}()
	}

	// The rollout ticker is the quiet-fleet fallback: served traffic
	// evaluates the stage machine inline, but a canary over devices
	// that stop pushing would otherwise never settle.
	go func() {
		for range time.Tick(cfg.rolloutTick) {
			if verdict := gw.RolloutTick(); verdict != "" {
				logger.Info("rollout decision", "verdict", verdict)
			}
		}
	}()

	handler := newServer(gw, cluster)
	handler.rolloutCfg = rolloutCfg
	handler.recorder = reqtrace.NewRecorder(cfg.flightRecorder, cfg.slowRequest)
	handler.log = logger
	handler.version = version
	srv := &http.Server{Addr: cfg.addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// The raw-TCP ADSP listener shares the HTTP surface's streamServer,
	// so both transports land in the same session loop, batcher and
	// stream counters. See docs/streaming.md.
	var streamLn net.Listener
	if cfg.streamAddr != "" {
		streamLn, err = net.Listen("tcp", cfg.streamAddr)
		if err != nil {
			return fmt.Errorf("stream listener: %w", err)
		}
		logger.Info("adsp stream listening", "addr", cfg.streamAddr)
		go func() {
			if err := handler.stream.Serve(streamLn); err != nil {
				logger.Error("stream listener failed", "err", err)
			}
		}()
	}

	if cfg.debugAddr != "" {
		// pprof rides its own listener so profiling stays reachable even
		// when binding the serving address to a public interface; the
		// debug address should only ever bind loopback or a private net.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", cfg.debugAddr)
			if err := http.ListenAndServe(cfg.debugAddr, dbg); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	logger.Info("gateway listening",
		"addr", cfg.addr, "version", version,
		"max_sessions", cfg.maxSessions, "idle_ttl", cfg.idleTTL,
		"auth", gw.AuthRequired(), "rate_limit", cfg.deviceRPS > 0 || cfg.globalRPS > 0)
	if cluster != nil {
		defer cluster.Close()
		source := "static -peers"
		if cfg.peersFile != "" {
			source = fmt.Sprintf("%s (polled every %v)", cfg.peersFile, cfg.peersPoll)
		}
		logger.Info("federated",
			"replica", cluster.Self(), "members", len(cluster.Members()), "membership", source)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
	}

	// Graceful drain: refuse new opens, let in-flight pushes finish,
	// close every session, then stop the HTTP listener. The final
	// telemetry snapshot is the "flush" — counters are fully settled
	// once Drain returns.
	logger.Info("shutdown signal: draining", "timeout", cfg.drainTimeout)
	// Streams close first — each live connection gets a goodbye frame
	// with CodeDraining so devices reconnect elsewhere cleanly — then
	// the gateway drains the sessions those streams were bound to.
	if streamLn != nil {
		streamLn.Close()
	}
	handler.stream.Shutdown()
	// Drain applies the gateway's own drain timeout to a deadline-less
	// context — including the -drain-timeout 0 "wait indefinitely" case,
	// which an explicit WithTimeout here would turn into an instant
	// expiry.
	drainErr := gw.Drain(context.Background())
	if drainErr != nil {
		logger.Warn("drain", "err", drainErr)
	}
	sctx := context.Background()
	if cfg.drainTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, cfg.drainTimeout)
		defer cancel()
	}
	if err := srv.Shutdown(sctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	s := gw.Stats()
	logger.Info("final telemetry",
		"opened", s.SessionsOpened, "closed", s.SessionsClosed, "evicted", s.SessionsEvicted,
		"batches", s.BatchesPushed, "events", s.EventsEmitted, "classify", s.ClassifyCalls,
		"swaps", s.ModelSwaps, "rate_limited_device", s.RateLimitedDevice,
		"rate_limited_global", s.RateLimitedGlobal, "auth_rejects", s.AuthRejects)
	return drainErr
}
