package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"adasense"
	"adasense/internal/reqtrace"
	"adasense/internal/telemetry"
)

// Flight-recorder defaults, overridable with -flight-recorder and
// -slow-request.
const (
	defaultFlightRecorderSize = 256
	defaultSlowRequest        = time.Second
)

// statusWriter captures the status code a handler writes, for the
// access log, the route histogram and the flight recorder.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ingressTrace resolves the request's trace: a well-formed
// adasense.TraceHeader from upstream (a peer forward, a replication
// fan-out, or a client that wants to correlate) is inherited together
// with its hop count; otherwise a fresh id is minted here. The id is
// validated before reuse so a hostile header cannot inject content into
// logs or the flight recorder.
func ingressTrace(r *http.Request) *reqtrace.Trace {
	tr := &reqtrace.Trace{Start: time.Now()}
	if id := r.Header.Get(adasense.TraceHeader); reqtrace.ValidID(id) {
		tr.ID = id
		if hop, err := strconv.Atoi(r.Header.Get(adasense.TraceHopHeader)); err == nil && hop > 0 && hop <= 16 {
			tr.Hop = hop
		}
	} else {
		tr.ID = reqtrace.NewID()
	}
	return tr
}

// observe is the ingress middleware wrapping every /v1/* route: it
// resolves the request trace, carries it through the context (where the
// auth/route middlewares, the handlers and Cluster.Forward add their
// spans), echoes the trace id on the response, and on completion feeds
// the route histogram, the flight recorder and the access log.
func (s *server) observe(route telemetry.Route, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := ingressTrace(r)
		w.Header().Set(adasense.TraceHeader, tr.ID)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(reqtrace.NewContext(r.Context(), tr)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(tr.Start)
		s.gw.ObserveRoute(route, dur)
		rec := reqtrace.Record{
			ID:       tr.ID,
			Hop:      tr.Hop,
			Route:    route.String(),
			Method:   r.Method,
			Path:     r.URL.Path,
			Device:   r.PathValue("id"),
			Status:   sw.status,
			Start:    tr.Start,
			Duration: dur,
			Spans:    tr.Spans(),
		}
		s.recorder.Record(rec)
		s.logRequest(rec)
	}
}

// logRequest emits the access log line for one completed request: info
// for healthy traffic, warn once a request crosses the slow threshold
// or dies with a 5xx, so `-log-level warn` keeps exactly the requests
// an operator would page on.
func (s *server) logRequest(rec reqtrace.Record) {
	level := slog.LevelInfo
	if rec.Status >= 500 || rec.Duration >= s.recorder.SlowThreshold() {
		level = slog.LevelWarn
	}
	attrs := []any{
		"trace", rec.ID,
		"hop", rec.Hop,
		"route", rec.Route,
		"method", rec.Method,
		"path", rec.Path,
		"status", rec.Status,
		"dur", rec.Duration,
		"replica", s.replica(),
	}
	if rec.Device != "" {
		attrs = append(attrs, "device", rec.Device)
	}
	if level == slog.LevelWarn && rec.Status < 500 {
		attrs = append(attrs, "slow", true)
	}
	s.log.Log(nil, level, "request", attrs...)
}

// replica returns this server's fleet id, or "standalone".
func (s *server) replica() string {
	if s.cluster == nil {
		return "standalone"
	}
	return s.cluster.Self()
}

// handleDebugRequests serves the flight recorder: the last N completed
// request traces plus the retained slow/error sample, each with its
// per-stage span breakdown. The route rides the same bearer-token gate
// as /v1/*, so trace contents (device ids, paths) never leak to
// unauthenticated scrapers.
func (s *server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.recorder.Snapshot())
}
