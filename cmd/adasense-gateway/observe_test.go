package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"adasense"
	"adasense/internal/reqtrace"
)

// getRecorder fetches one replica's flight recorder snapshot.
func getRecorder(t *testing.T, base, token string) reqtrace.Snapshot {
	t.Helper()
	var snap reqtrace.Snapshot
	if code := doFed(t, "GET", base+"/v1/debug/requests", token, nil, &snap); code != 200 {
		t.Fatalf("GET /v1/debug/requests = %d", code)
	}
	return snap
}

// findRecord returns the recorder entries matching a trace id and route.
func findRecord(snap reqtrace.Snapshot, id, route string) []reqtrace.Record {
	var out []reqtrace.Record
	for _, rec := range snap.Recent {
		if rec.ID == id && rec.Route == route {
			out = append(out, rec)
		}
	}
	return out
}

func spanNames(rec reqtrace.Record) map[string]bool {
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestFederationTraceAcrossReplicas is the observability acceptance
// scenario (run under -race in CI): a push sent to the wrong replica of
// a two-replica fleet is forwarded to its owner, and the flight
// recorders of BOTH replicas hold the same trace id — the dialed
// replica's record carries the forward hop, the owner's record carries
// the serving work, and together the trace names at least four pipeline
// stages.
func TestFederationTraceAcrossReplicas(t *testing.T) {
	a, b := newFederatedFleet(t, "")
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")
	if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": bDev}), nil); code != 201 {
		t.Fatalf("forwarded open = %d", code)
	}

	// Push through the NON-owner so the request crosses the fleet, and
	// capture the trace id the gateway echoes on the response.
	req, err := http.NewRequest("POST", a.base+"/v1/sessions/"+bDev+"/push",
		bytes.NewReader(jsonBody(t, wireBatch(t, 2))))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded push = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(adasense.TraceHeader)
	if !reqtrace.ValidID(traceID) {
		t.Fatalf("response %s = %q, not a valid trace id", adasense.TraceHeader, traceID)
	}

	// Replica A (dialed, non-owner): minted the trace at hop 0 and spent
	// the request forwarding.
	recA := findRecord(getRecorder(t, a.base, ""), traceID, "push")
	if len(recA) != 1 {
		t.Fatalf("replica A recorded %d entries for trace %s, want 1", len(recA), traceID)
	}
	if recA[0].Hop != 0 || recA[0].Status != 200 || recA[0].Device != bDev {
		t.Errorf("A record = hop %d status %d device %q, want 0/200/%q",
			recA[0].Hop, recA[0].Status, recA[0].Device, bDev)
	}
	namesA := spanNames(recA[0])
	for _, want := range []string{"auth", "route", "forward"} {
		if !namesA[want] {
			t.Errorf("A spans %v missing %q", recA[0].Spans, want)
		}
	}

	// Replica B (owner): inherited the SAME id one hop downstream and
	// did the serving work.
	recB := findRecord(getRecorder(t, b.base, ""), traceID, "push")
	if len(recB) != 1 {
		t.Fatalf("replica B recorded %d entries for trace %s, want 1", len(recB), traceID)
	}
	if recB[0].Hop != 1 || recB[0].Status != 200 || recB[0].Device != bDev {
		t.Errorf("B record = hop %d status %d device %q, want 1/200/%q",
			recB[0].Hop, recB[0].Status, recB[0].Device, bDev)
	}
	namesB := spanNames(recB[0])
	for _, want := range []string{"auth", "route", "push"} {
		if !namesB[want] {
			t.Errorf("B spans %v missing %q", recB[0].Spans, want)
		}
	}
	for name := range namesB {
		namesA[name] = true
	}
	if len(namesA) < 4 {
		t.Errorf("trace %s names %d distinct stages across the fleet, want >= 4", traceID, len(namesA))
	}
	for _, sp := range append(recA[0].Spans, recB[0].Spans...) {
		if sp.Dur < 0 {
			t.Errorf("span %q has negative duration %d", sp.Name, sp.Dur)
		}
	}

	// The forward hops (the open and the push) landed in the dialed
	// replica's stage histogram — and only there.
	if c := a.gw.Stats().Latency.Stages["forward"].Count; c != 2 {
		t.Errorf("A forward stage count = %d, want 2", c)
	}
	if c := b.gw.Stats().Latency.Stages["forward"].Count; c != 0 {
		t.Errorf("B forward stage count = %d, want 0", c)
	}
}

// TestIngressTrace: a well-formed upstream trace header is inherited
// with its hop count; malformed ids, absurd hop counts and injection
// attempts are discarded and a fresh id is minted instead.
func TestIngressTrace(t *testing.T) {
	mk := func(id, hop string) *http.Request {
		r, err := http.NewRequest("GET", "/v1/sessions/x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			r.Header.Set(adasense.TraceHeader, id)
		}
		if hop != "" {
			r.Header.Set(adasense.TraceHopHeader, hop)
		}
		return r
	}
	if tr := ingressTrace(mk("abcdef0123456789", "3")); tr.ID != "abcdef0123456789" || tr.Hop != 3 {
		t.Errorf("valid upstream trace not inherited: %+v", tr)
	}
	for _, bad := range []struct{ id, hop string }{
		{"", ""},                             // no upstream trace
		{"ABCDEF0123456789", "1"},            // uppercase: not our grammar
		{"abc\"def} evil=\"1", "1"},          // log/label injection attempt
		{strings.Repeat("a", 65), "1"},       // oversized
		{"abcdef0123456789", "17"},           // hop above the loop cap
		{"abcdef0123456789", "-2"},           // negative hop
		{"abcdef0123456789", "not-a-number"}, // junk hop
	} {
		tr := ingressTrace(mk(bad.id, bad.hop))
		if !reqtrace.ValidID(tr.ID) {
			t.Errorf("id=%q hop=%q: minted invalid id %q", bad.id, bad.hop, tr.ID)
		}
		if bad.id != "" && reqtrace.ValidID(bad.id) {
			// A valid id with a bad hop keeps the id but resets the hop.
			if tr.ID != bad.id || tr.Hop != 0 {
				t.Errorf("id=%q hop=%q: got id=%q hop=%d, want inherited id at hop 0", bad.id, bad.hop, tr.ID, tr.Hop)
			}
		} else if tr.ID == bad.id || tr.Hop != 0 {
			t.Errorf("id=%q hop=%q: hostile header leaked into trace %+v", bad.id, bad.hop, tr)
		}
	}
}

// TestDebugRequestsAuthGated: the flight recorder holds device ids and
// paths, so it rides the same bearer gate as the serving routes.
func TestDebugRequestsAuthGated(t *testing.T) {
	ts, _ := newTestServer(t, adasense.WithAuth("s3cret"))
	if code := doFed(t, "GET", ts.URL+"/v1/debug/requests", "", nil, nil); code != 401 {
		t.Fatalf("unauthenticated debug fetch = %d, want 401", code)
	}
	if code := doFed(t, "POST", ts.URL+"/v1/sessions", "s3cret", jsonBody(t, map[string]string{"id": "dbg-1"}), nil); code != 201 {
		t.Fatal("open failed")
	}
	snap := getRecorder(t, ts.URL, "s3cret")
	if snap.Total != 1 || len(snap.Recent) != 1 {
		t.Fatalf("recorder snapshot = total %d, %d recent, want 1/1", snap.Total, len(snap.Recent))
	}
	rec := snap.Recent[0]
	if rec.Route != "open" || rec.Status != 201 || !reqtrace.ValidID(rec.ID) {
		t.Errorf("recorded %+v, want a valid open/201 trace", rec)
	}
}

// TestHealthzVersion: the probe body carries the build version so a
// fleet sweep of /healthz doubles as a version inventory.
func TestHealthzVersion(t *testing.T) {
	ts, _ := newTestServer(t)
	var body struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if code := doFed(t, "GET", ts.URL+"/healthz", "", nil, &body); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if body.Status != "ok" || body.Version != version {
		t.Errorf("healthz body = %+v, want status ok, version %q", body, version)
	}
}

// TestMetricsHistogramExposition drives real traffic through the
// server, then validates the latency histograms on /metrics against the
// Prometheus text grammar: cumulative buckets per labeled series ending
// in +Inf, +Inf equal to the series count, and the route that served
// the traffic actually counted. The build-info gauge rides the same
// scrape.
func TestMetricsHistogramExposition(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := doFed(t, "POST", ts.URL+"/v1/sessions", "", jsonBody(t, map[string]string{"id": "m-1"}), nil); code != 201 {
		t.Fatal("open failed")
	}
	for i := 0; i < 3; i++ {
		if code := doFed(t, "POST", ts.URL+"/v1/sessions/m-1/push", "", jsonBody(t, wireBatch(t, 2)), nil); code != 200 {
			t.Fatal("push failed")
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	if !regexp.MustCompile(`(?m)^adasense_build_info\{version="[^"]*",goversion="[^"]+"\} 1$`).MatchString(text) {
		t.Error("/metrics is missing the adasense_build_info gauge")
	}
	for _, family := range []string{"adasense_request_duration_seconds", "adasense_stage_duration_seconds"} {
		if !strings.Contains(text, "# TYPE "+family+" histogram") {
			t.Errorf("/metrics is missing the %s histogram TYPE line", family)
		}
		validateFamilyBuckets(t, family, text)
	}

	// The pushes landed in their route series: 3 pushes, 1 open, and the
	// extraction/classification stages ran once per pushed window batch.
	counts := histogramCounts(t, "adasense_request_duration_seconds", "route", text)
	if counts["push"] != 3 || counts["open"] != 1 {
		t.Errorf("route counts = %v, want push 3, open 1", counts)
	}
	stages := histogramCounts(t, "adasense_stage_duration_seconds", "stage", text)
	if stages["classify"] == 0 || stages["extract"] == 0 {
		t.Errorf("stage counts = %v, want classify and extract > 0", stages)
	}
}

// histogramCounts extracts the _count sample per label value of one
// histogram family from raw exposition text.
func histogramCounts(t *testing.T, family, label, text string) map[string]float64 {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s_count\{%s="([^"]+)"\} ([0-9.e+-]+)$`, family, label))
	counts := map[string]float64{}
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("bad _count sample %q: %v", m[0], err)
		}
		counts[m[1]] = v
	}
	if len(counts) == 0 {
		t.Fatalf("no _count samples for family %s", family)
	}
	return counts
}

// validateFamilyBuckets checks one histogram family's bucket samples:
// per labeled series, cumulative non-decreasing counts over ascending
// le bounds, a trailing +Inf bucket, and +Inf equal to _count.
func validateFamilyBuckets(t *testing.T, family, text string) {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s_bucket\{[a-z]+="([^"]+)",le="([^"]+)"\} ([0-9.e+-]+|\+Inf)$`, family))
	type state struct {
		lastLe, lastCount float64
		inf               float64
		seenInf           bool
	}
	series := map[string]*state{}
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		st := series[m[1]]
		if st == nil {
			st = &state{lastLe: -1, lastCount: -1}
			series[m[1]] = st
		}
		count, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("%s: bad bucket count %q", family, m[0])
		}
		if count < st.lastCount {
			t.Errorf("%s{%s}: bucket counts not cumulative at le=%s", family, m[1], m[2])
		}
		st.lastCount = count
		if m[2] == "+Inf" {
			st.inf, st.seenInf = count, true
			continue
		}
		le, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("%s: bad le %q", family, m[2])
		}
		if le <= st.lastLe {
			t.Errorf("%s{%s}: le bounds not ascending at %s", family, m[1], m[2])
		}
		st.lastLe = le
	}
	if len(series) == 0 {
		t.Fatalf("no bucket samples for family %s", family)
	}
	countRe := regexp.MustCompile(fmt.Sprintf(`(?m)^%s_count\{[a-z]+="([^"]+)"\} ([0-9.e+-]+)$`, family))
	for _, m := range countRe.FindAllStringSubmatch(text, -1) {
		st := series[m[1]]
		if st == nil || !st.seenInf {
			t.Errorf("%s{%s}: no +Inf bucket", family, m[1])
			continue
		}
		count, _ := strconv.ParseFloat(m[2], 64)
		if st.inf != count {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", family, m[1], st.inf, count)
		}
	}
}
