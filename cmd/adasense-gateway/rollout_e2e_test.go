package main

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adasense"
	"adasense/internal/membership"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/rollout"
)

// fastRollout is a rollout policy scaled for tests: real gates, but
// windows judged after milliseconds and a handful of classifications.
func fastRollout(minSamples int) adasense.RolloutConfig {
	cfg := adasense.DefaultRolloutConfig()
	cfg.Window = 5 * time.Millisecond
	cfg.MinSamples = minSamples
	return cfg
}

// candidateBytes serializes sys into a model container.
func candidateBytes(t *testing.T, sys *adasense.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// degradedSystem builds an untrained classifier over the real feature
// dimensions: it loads and serves fine, but classifies at chance
// confidence (~1/NumActivities), which trips the rollout's confidence
// gate against any trained incumbent.
func degradedSystem(t *testing.T) *adasense.System {
	t.Helper()
	return &adasense.System{Network: nn.New(15, 4, adasense.NumActivities, rng.New(1))}
}

// newRolloutFleet is newFederatedFleet with the rollout policy under
// test installed on both replicas' servers.
func newRolloutFleet(t *testing.T, cfg adasense.RolloutConfig) (*fedReplica, *fedReplica) {
	t.Helper()
	tsA := httptest.NewUnstartedServer(http.NotFoundHandler())
	tsB := httptest.NewUnstartedServer(http.NotFoundHandler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	replicas := []adasense.Replica{
		{ID: "gw-a", URL: "http://" + tsA.Listener.Addr().String()},
		{ID: "gw-b", URL: "http://" + tsB.Listener.Addr().String()},
	}
	build := func(self string, ts *httptest.Server) *fedReplica {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewCluster(gw, self, replicas)
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(gw, cluster)
		srv.rolloutCfg = cfg
		ts.Config.Handler = srv
		ts.Start()
		return &fedReplica{id: self, base: ts.URL, gw: gw, cluster: cluster, ts: ts}
	}
	return build("gw-a", tsA), build("gw-b", tsB)
}

// cohortDeviceOwnedBy finds a device the ring places on owner whose
// rollout cohort membership at the given fraction matches in.
func cohortDeviceOwnedBy(t *testing.T, c *adasense.Cluster, owner string, cand uint64, frac float64, in bool) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("ro-dev-%d", i)
		if rep, _ := c.Route(id); rep.ID != owner {
			continue
		}
		if rollout.InCohort(id, cand, frac) == in {
			return id
		}
	}
	t.Fatalf("no device on %s with InCohort(%.2f)=%v in 100000 tries", owner, frac, in)
	return ""
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRolloutFleetAutoPromote is the promote acceptance scenario (run
// under -race in CI): a two-replica fleet stages a healthy candidate
// through 5% → 25% → 100%. Only cohort devices serve from the canary —
// an incumbent-pinned device keeps its exact engine mid-stage — every
// stage auto-promotes on live traffic health, completion publishes the
// canary as the fleet's model on both replicas, and the promote
// telemetry lands in /metrics.
func TestRolloutFleetAutoPromote(t *testing.T) {
	// The canary session is opened fresh at rollout start, so its first
	// window still carries a (higher-confidence) warm-up transient; a
	// wider lag gate keeps the tiny 3-sample test windows off that edge
	// while still judging real health.
	cfg := fastRollout(3)
	cfg.ConfidenceTolerance = 0.15
	a, b := newRolloutFleet(t, cfg)
	candidate := candidateBytes(t, quickSystem(t))
	cand := adasense.CandidateHash(candidate)

	// Both arms get traffic from replica A's own devices, so A is the
	// only replica whose windows qualify: A decides, B follows the
	// replicated transitions.
	canaryDev := cohortDeviceOwnedBy(t, a.cluster, "gw-a", cand, 0.05, true)
	incDev := cohortDeviceOwnedBy(t, a.cluster, "gw-a", cand, 0.25, false)
	batch := jsonBody(t, wireBatch(t, 2))
	for _, dev := range []string{canaryDev, incDev} {
		if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": dev}), nil); code != 201 {
			t.Fatalf("open %s = %d", dev, code)
		}
		// Warm both sessions past their first-window transient so the
		// tiny test windows compare steady-state confidences.
		for i := 0; i < 6; i++ {
			if code := doFed(t, "POST", a.base+"/v1/sessions/"+dev+"/push", "", batch, nil); code != 200 {
				t.Fatalf("warmup push %s = %d", dev, code)
			}
		}
	}
	sessCanary, _ := a.gw.Lookup(canaryDev)
	sessInc, _ := a.gw.Lookup(incDev)
	svcBefore := sessInc.Service()

	var started adasense.RolloutStatus
	var report struct {
		Rollout  adasense.RolloutStatus `json:"rollout"`
		Replicas []swapReplicaJSON      `json:"replicas"`
	}
	if code := doFed(t, "POST", a.base+"/v1/rollout", "", candidate, &report); code != 201 {
		t.Fatalf("rollout start = %d", code)
	}
	started = report.Rollout
	if started.State != "observing" || started.Stage != 0 || started.Fraction != 0.05 {
		t.Fatalf("started rollout = %+v", started)
	}
	if len(report.Replicas) != 2 {
		t.Fatalf("start replicated to %d replicas, want 2: %+v", len(report.Replicas), report.Replicas)
	}
	if !b.gw.RolloutActive() {
		t.Fatal("replica B did not start the replicated rollout")
	}

	// Mid-stage split: the cohort device moved to the canary engine, the
	// incumbent device kept its exact pre-rollout engine.
	if sessCanary.Service() == svcBefore {
		t.Fatal("cohort device was not repinned onto the canary")
	}
	if sessInc.Service() != svcBefore {
		t.Fatal("incumbent-pinned device lost its engine mid-stage")
	}

	// Drive both arms until the stage machine completes. Every push
	// evaluates the machine inline; the same walking batch on the same
	// weights keeps every gate delta near zero.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := a.gw.RolloutStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "completed" {
			break
		}
		if st.State == "rolled_back" {
			t.Fatalf("healthy candidate rolled back: %+v", st.Decisions)
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout never completed; status %+v", st)
		}
		for _, dev := range []string{canaryDev, incDev} {
			if code := doFed(t, "POST", a.base+"/v1/sessions/"+dev+"/push", "", batch, nil); code != 200 {
				t.Fatalf("push %s = %d", dev, code)
			}
		}
	}

	// Completion promoted the canary to incumbent fleet-wide: replicated
	// transitions settle B, the model generation advanced on both
	// replicas, and both sessions serve from the promoted engine.
	waitFor(t, "replica B to settle", 10*time.Second, func() bool { return !b.gw.RolloutActive() })
	stB, err := b.gw.RolloutStatus()
	if err != nil || stB.State != "completed" {
		t.Fatalf("B settled state = %+v, %v", stB, err)
	}
	if ga, gb := a.gw.ModelGeneration(), b.gw.ModelGeneration(); ga != 2 || gb != 2 {
		t.Fatalf("model generations = %d / %d, want 2 / 2", ga, gb)
	}
	if sessInc.Service() == svcBefore || sessInc.Service() != sessCanary.Service() {
		t.Fatal("sessions not converged on the promoted engine")
	}
	st, err := a.gw.RolloutStatus()
	if err != nil {
		t.Fatal(err)
	}
	promotes := 0
	for _, d := range st.Decisions {
		if d.Action == "promote" {
			promotes++
		}
	}
	if promotes != 2 || st.Decisions[len(st.Decisions)-1].Action != "complete" {
		t.Fatalf("decision log = %+v, want 2 promotes then complete", st.Decisions)
	}

	mA, mB := scrapeMetrics(t, a.base), scrapeMetrics(t, b.base)
	if mA["adasense_rollouts_promoted_total"] != 1 || mB["adasense_rollouts_promoted_total"] != 1 {
		t.Errorf("promoted_total = %v / %v, want 1 / 1",
			mA["adasense_rollouts_promoted_total"], mB["adasense_rollouts_promoted_total"])
	}
	if mA["adasense_rollout_canary_classifies_total"] == 0 {
		t.Error("canary classifies were not counted")
	}
	if mA["adasense_rollout_stage"] != -1 || mA["adasense_model_generation"] != 2 {
		t.Errorf("settled gauges = stage %v gen %v, want -1 / 2",
			mA["adasense_rollout_stage"], mA["adasense_model_generation"])
	}
}

// TestRolloutFleetAutoRollback is the rollback acceptance scenario: a
// candidate classifying at chance trips the confidence gate on live
// traffic, the fleet rolls back automatically, zero devices are left on
// the canary, the candidate hash is frozen against restarts, and the
// rollback telemetry lands in /metrics.
func TestRolloutFleetAutoRollback(t *testing.T) {
	a, b := newRolloutFleet(t, fastRollout(3))
	candidate := candidateBytes(t, degradedSystem(t))
	cand := adasense.CandidateHash(candidate)

	canaryDev := cohortDeviceOwnedBy(t, a.cluster, "gw-a", cand, 0.05, true)
	incDev := cohortDeviceOwnedBy(t, a.cluster, "gw-a", cand, 0.25, false)
	for _, dev := range []string{canaryDev, incDev} {
		if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": dev}), nil); code != 201 {
			t.Fatalf("open %s = %d", dev, code)
		}
	}
	sessCanary, _ := a.gw.Lookup(canaryDev)
	sessInc, _ := a.gw.Lookup(incDev)
	svcBefore := sessInc.Service()

	if code := doFed(t, "POST", a.base+"/v1/rollout", "", candidate, nil); code != 201 {
		t.Fatalf("rollout start = %d", code)
	}

	batch := jsonBody(t, wireBatch(t, 2))
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := a.gw.RolloutStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "rolled_back" {
			if !strings.Contains(st.Decisions[len(st.Decisions)-1].Reason, "confidence gate") {
				t.Fatalf("rollback reason = %+v, want the confidence gate", st.Decisions)
			}
			break
		}
		if st.State == "completed" {
			t.Fatal("chance-level candidate was promoted")
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout never rolled back; status %+v", st)
		}
		for _, dev := range []string{canaryDev, incDev} {
			if code := doFed(t, "POST", a.base+"/v1/sessions/"+dev+"/push", "", batch, nil); code != 200 {
				t.Fatalf("push %s = %d", dev, code)
			}
		}
	}

	// Zero devices on the canary: the cohort device is back on the exact
	// incumbent engine, the incumbent never moved, the model generation
	// never advanced, and B followed the replicated rollback.
	waitFor(t, "replica B to settle", 10*time.Second, func() bool { return !b.gw.RolloutActive() })
	if sessCanary.Service() != svcBefore || sessInc.Service() != svcBefore {
		t.Fatal("a device is still pinned off the incumbent after rollback")
	}
	if ga, gb := a.gw.ModelGeneration(), b.gw.ModelGeneration(); ga != 1 || gb != 1 {
		t.Fatalf("model generations = %d / %d, want 1 / 1", ga, gb)
	}
	stB, err := b.gw.RolloutStatus()
	if err != nil || stB.State != "rolled_back" {
		t.Fatalf("B settled state = %+v, %v", stB, err)
	}

	// The failed hash is frozen: restarting the same candidate answers
	// 423 on both the origin and (replicated start) the peer.
	var locked errorJSON
	if code := doFed(t, "POST", a.base+"/v1/rollout", "", candidate, &locked); code != http.StatusLocked {
		t.Fatalf("restart of rolled-back candidate = %d, want 423", code)
	}
	if !strings.Contains(locked.Error, "frozen") {
		t.Errorf("423 body = %q, want the freeze named", locked.Error)
	}

	mA, mB := scrapeMetrics(t, a.base), scrapeMetrics(t, b.base)
	if mA["adasense_rollouts_rolled_back_total"] != 1 || mB["adasense_rollouts_rolled_back_total"] != 1 {
		t.Errorf("rolled_back_total = %v / %v, want 1 / 1",
			mA["adasense_rollouts_rolled_back_total"], mB["adasense_rollouts_rolled_back_total"])
	}
}

// TestRolloutSurvivesRebalance runs a rollout across a polled-membership
// fleet while a replica leaves mid-stage (run under -race in CI): cohort
// membership is a pure function of device id and candidate hash, so a
// handed-off cohort device lands on the canary at its new owner too, and
// the (degraded) canary still rolls back cleanly on the remaining
// replicas with every device back on the incumbent.
func TestRolloutSurvivesRebalance(t *testing.T) {
	names := []string{"gw-a", "gw-b", "gw-c"}
	servers := make(map[string]*httptest.Server, len(names))
	urls := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		urls[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, urls[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(names...)

	// A high sample floor keeps the health verdict pending until the
	// handoff assertions are done; the flood at the end trips it.
	rolloutCfg := fastRollout(60)
	gws := make(map[string]*adasense.Gateway, len(names))
	clusters := make(map[string]*adasense.Cluster, len(names))
	for _, n := range names {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		gws[n], clusters[n] = gw, cluster
		srv := newServer(gw, cluster)
		srv.rolloutCfg = rolloutCfg
		servers[n].Config.Handler = srv
		servers[n].Start()
	}
	entryA := servers["gw-a"].URL

	candidate := candidateBytes(t, degradedSystem(t))
	cand := adasense.CandidateHash(candidate)
	// The devices under test live on the replica that will leave.
	cohortDev := cohortDeviceOwnedBy(t, clusters["gw-a"], "gw-c", cand, 0.05, true)
	incDev := cohortDeviceOwnedBy(t, clusters["gw-a"], "gw-c", cand, 0.25, false)
	for _, dev := range []string{cohortDev, incDev} {
		if code := doFed(t, "POST", entryA+"/v1/sessions", "", jsonBody(t, map[string]string{"id": dev}), nil); code != 201 {
			t.Fatalf("open %s = %d", dev, code)
		}
	}

	if code := doFed(t, "POST", entryA+"/v1/rollout", "", candidate, nil); code != 201 {
		t.Fatalf("rollout start = %d", code)
	}
	for _, n := range names {
		if !gws[n].RolloutActive() {
			t.Fatalf("%s did not start the replicated rollout", n)
		}
	}
	sessCohort, _ := gws["gw-c"].Lookup(cohortDev)
	sessInc, _ := gws["gw-c"].Lookup(incDev)
	if sessCohort.Service() == sessInc.Service() {
		t.Fatal("cohort device not on the canary before the rebalance")
	}

	// gw-c leaves mid-rollout. Its sessions hand off; the devices are
	// re-opened wherever the ring now says (push-style retry absorbs the
	// transient answers of a fleet mid-skew).
	writePeers("gw-a", "gw-b")
	waitFor(t, "remaining replicas to apply the change", 10*time.Second, func() bool {
		return clusters["gw-a"].Generation() >= 2 && clusters["gw-b"].Generation() >= 2
	})
	waitFor(t, "gw-c to empty", 10*time.Second, func() bool { return gws["gw-c"].NumSessions() == 0 })
	reopen := func(dev string) *adasense.GatewaySession {
		var sess *adasense.GatewaySession
		waitFor(t, "reopen of "+dev, 10*time.Second, func() bool {
			doFed(t, "POST", entryA+"/v1/sessions", "", jsonBody(t, map[string]string{"id": dev}), nil)
			owner, _ := clusters["gw-a"].Route(dev)
			s, ok := gws[owner.ID].Lookup(dev)
			sess = s
			return ok
		})
		return sess
	}
	sessCohort = reopen(cohortDev)

	// Cohort membership survived the handoff: on its new owner the
	// cohort device is pinned to that replica's canary while a
	// non-cohort device co-owned there serves from its incumbent.
	// (Service pointers are only comparable within one gateway, so the
	// incumbent witness must live on the same replica.)
	decider, _ := clusters["gw-a"].Route(cohortDev)
	coIncDev := cohortDeviceOwnedBy(t, clusters["gw-a"], decider.ID, cand, 0.25, false)
	if code := doFed(t, "POST", entryA+"/v1/sessions", "", jsonBody(t, map[string]string{"id": coIncDev}), nil); code != 201 {
		t.Fatalf("open %s = %d", coIncDev, code)
	}
	sessCoInc, ok := gws[decider.ID].Lookup(coIncDev)
	if !ok {
		t.Fatalf("%s missing from its owner %s", coIncDev, decider.ID)
	}
	if sessCohort.Service() == sessCoInc.Service() {
		t.Fatal("cohort device lost its canary pin across the handoff")
	}

	// Flood both arms until the degraded canary trips the confidence
	// gate. A verdict needs both arms' windows qualified on one replica,
	// so the incumbent traffic comes from the co-owned witness; the
	// rollback must then settle every remaining replica with zero
	// devices on the canary.
	batch := jsonBody(t, wireBatch(t, 2))
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := gws[decider.ID].RolloutStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "rolled_back" {
			break
		}
		if st.State == "completed" {
			t.Fatal("chance-level candidate was promoted")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rollback mid-churn; status %+v", st)
		}
		for _, dev := range []string{cohortDev, coIncDev} {
			doFed(t, "POST", entryA+"/v1/sessions/"+dev+"/push", "", batch, nil)
		}
	}
	waitFor(t, "the fleet to settle", 10*time.Second, func() bool {
		return !gws["gw-a"].RolloutActive() && !gws["gw-b"].RolloutActive()
	})
	if sessCohort.Service() != sessCoInc.Service() {
		t.Fatal("a device is still pinned to the canary after the mid-churn rollback")
	}
	for _, n := range []string{"gw-a", "gw-b"} {
		if st, err := gws[n].RolloutStatus(); err != nil || st.State != "rolled_back" {
			t.Errorf("%s settled state = %+v, %v", n, st, err)
		}
	}
}

// TestRolloutBlocksSwapAndAborts: the regression contract of satellite
// work — a direct model swap during an active rollout is refused with
// ErrRolloutActive / 409 on the wire, an operator DELETE aborts without
// freezing, and swaps work again after settling.
func TestRolloutBlocksSwapAndAborts(t *testing.T) {
	gw, err := adasense.NewGateway(quickSystem(t),
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(gw, nil)
	// A sample floor no test traffic reaches: the rollout stays active
	// until the operator abort.
	srv.rolloutCfg = fastRollout(1 << 20)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if code := doFed(t, "GET", ts.URL+"/v1/rollout", "", nil, nil); code != 404 {
		t.Fatalf("status before any rollout = %d, want 404", code)
	}

	model := candidateBytes(t, quickSystem(t))
	if code := doFed(t, "POST", ts.URL+"/v1/rollout", "", model, nil); code != 201 {
		t.Fatalf("rollout start = %d", code)
	}

	// Wire: 409. Direct API: ErrRolloutActive.
	var conflict errorJSON
	if code := doFed(t, "POST", ts.URL+"/v1/model", "", model, &conflict); code != http.StatusConflict {
		t.Fatalf("swap during rollout = %d, want 409", code)
	}
	if !strings.Contains(conflict.Error, "rollout") {
		t.Errorf("409 body = %q, want the rollout named", conflict.Error)
	}
	if err := gw.SwapModel(quickSystem(t)); !errors.Is(err, adasense.ErrRolloutActive) {
		t.Fatalf("SwapModel during rollout = %v, want ErrRolloutActive", err)
	}

	var aborted adasense.RolloutStatus
	if code := doFed(t, "DELETE", ts.URL+"/v1/rollout", "", nil, &aborted); code != 200 {
		t.Fatalf("abort = %d", code)
	}
	if aborted.State != "rolled_back" || aborted.Decisions[len(aborted.Decisions)-1].Action != "abort" {
		t.Fatalf("aborted status = %+v", aborted)
	}
	if code := doFed(t, "DELETE", ts.URL+"/v1/rollout", "", nil, nil); code != 404 {
		t.Fatalf("second abort = %d, want 404", code)
	}

	// An operator abort does not freeze: the same candidate restarts,
	// and a swap after settling works again.
	if code := doFed(t, "POST", ts.URL+"/v1/rollout", "", model, nil); code != 201 {
		t.Fatalf("restart after abort = %d, want 201", code)
	}
	if _, err := gw.AbortRollout("test cleanup"); err != nil {
		t.Fatal(err)
	}
	if err := gw.SwapModel(quickSystem(t)); err != nil {
		t.Fatalf("swap after settling = %v", err)
	}
	if gw.ModelGeneration() != 2 {
		t.Fatalf("generation after swap = %d, want 2", gw.ModelGeneration())
	}
}

// TestRolloutStageRouteIsPeerOnly: the stage-transition route only
// accepts replication from a known peer — a client (or a standalone
// gateway) cannot drive the stage machine directly.
func TestRolloutStageRouteIsPeerOnly(t *testing.T) {
	a, _ := newRolloutFleet(t, fastRollout(1<<20))
	tr := jsonBody(t, adasense.RolloutTransition{Action: "promote", ToStage: 1})
	if code := doFed(t, "POST", a.base+"/v1/rollout/stage", "", tr, nil); code != http.StatusForbidden {
		t.Fatalf("client stage transition = %d, want 403", code)
	}
	ts, _ := newTestServer(t)
	if code := doFed(t, "POST", ts.URL+"/v1/rollout/stage", "", tr, nil); code != http.StatusForbidden {
		t.Fatalf("standalone stage transition = %d, want 403", code)
	}
}

// TestModelCatchup: a replica that missed a model push converges on its
// own. Replica A swaps locally (generation 2); the next forwarded
// request advertises the generation, B pulls GET /v1/model from A and
// installs it at A's generation, counting the catch-up.
func TestModelCatchup(t *testing.T) {
	a, b := newRolloutFleet(t, fastRollout(3))

	// GET /v1/model serves the current container with its generation.
	req, err := http.NewRequest("GET", a.base+"/v1/model", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(adasense.ModelGenHeader) != "1" {
		t.Fatalf("GET /v1/model = %d gen %q, want 200 gen 1", resp.StatusCode, resp.Header.Get(adasense.ModelGenHeader))
	}
	if _, err := adasense.LoadSystem(bytes.NewReader(raw.Bytes())); err != nil {
		t.Fatalf("served container does not load: %v", err)
	}

	// A swaps locally only — B is now one generation behind.
	if err := a.gw.SwapModel(quickSystem(t)); err != nil {
		t.Fatal(err)
	}
	if a.gw.ModelGeneration() != 2 || b.gw.ModelGeneration() != 1 {
		t.Fatalf("generations = %d / %d, want 2 / 1", a.gw.ModelGeneration(), b.gw.ModelGeneration())
	}

	// Any forwarded request from A advertises generation 2; observing it
	// makes B pull and install in the background.
	bDev := deviceOwnedBy(t, a.cluster, "gw-b")
	if code := doFed(t, "POST", a.base+"/v1/sessions", "", jsonBody(t, map[string]string{"id": bDev}), nil); code != 201 {
		t.Fatalf("forwarded open = %d", code)
	}
	waitFor(t, "replica B to catch up", 10*time.Second, func() bool {
		return b.gw.ModelGeneration() == 2
	})
	if got := b.gw.Stats().ModelCatchups; got != 1 {
		t.Errorf("B ModelCatchups = %d, want 1", got)
	}
	if m := scrapeMetrics(t, b.base); m["adasense_model_catchups_total"] != 1 {
		t.Errorf("B adasense_model_catchups_total = %v, want 1", m["adasense_model_catchups_total"])
	}
}
