package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adasense"
	"adasense/internal/reqtrace"
	"adasense/internal/telemetry"
)

// maxModelBytes bounds a model upload; real containers are tens of
// kilobytes. maxJSONBytes bounds every JSON request body — the largest
// legitimate one is a pushed batch, a few hundred samples of three
// float64 axes — so an oversized body cannot exhaust gateway memory.
const (
	maxModelBytes = 64 << 20
	maxJSONBytes  = 8 << 20
)

// sessionJSON is the wire shape of a session: its id and the sensor
// configuration the device must currently sample at.
type sessionJSON struct {
	ID     string `json:"id"`
	Config string `json:"config"`
}

// batchJSON is the wire shape of a pushed batch of raw 3-axis readings.
type batchJSON struct {
	// Config names the sensor configuration the batch was sampled under
	// (e.g. "F100_A128"); it must match the session's current config.
	Config  string    `json:"config"`
	StartAt float64   `json:"start_at,omitempty"`
	X       []float64 `json:"x"`
	Y       []float64 `json:"y"`
	Z       []float64 `json:"z"`
}

// eventJSON is one classification tick emitted by a push.
type eventJSON struct {
	Activity      string  `json:"activity"`
	Confidence    float64 `json:"confidence"`
	Config        string  `json:"config"`
	ConfigChanged bool    `json:"config_changed"`
}

// pushResponse carries the completed events plus the configuration the
// device must sample at from now on.
type pushResponse struct {
	Events []eventJSON `json:"events"`
	Config string      `json:"config"`
}

// classifyResponse is a one-shot classification result.
type classifyResponse struct {
	Activity   string  `json:"activity"`
	Confidence float64 `json:"confidence"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func (b *batchJSON) toBatch() (*adasense.Batch, error) {
	cfg, err := adasense.ParseConfig(b.Config)
	if err != nil {
		return nil, err
	}
	if len(b.X) == 0 || len(b.X) != len(b.Y) || len(b.X) != len(b.Z) {
		return nil, fmt.Errorf("batch needs equal-length non-empty x/y/z (got %d/%d/%d)",
			len(b.X), len(b.Y), len(b.Z))
	}
	return &adasense.Batch{Config: cfg, StartAt: b.StartAt, X: b.X, Y: b.Y, Z: b.Z}, nil
}

// server is the HTTP front end over one Gateway, optionally federated
// into a Cluster (nil when standalone).
type server struct {
	gw      *adasense.Gateway
	cluster *adasense.Cluster
	mux     *http.ServeMux

	// rolloutCfg is the policy applied to rollouts started through this
	// server (-rollout-* flags). It is not shipped with replicated
	// starts: every replica applies its own, which fleets keep identical
	// the same way they keep ring parameters identical.
	rolloutCfg adasense.RolloutConfig

	// stream is the ADSP streaming ingress sharing this gateway: the
	// GET /v1/stream WebSocket upgrade plus the raw-TCP listener main
	// starts behind -stream-addr. See stream.go and docs/streaming.md.
	stream *streamServer

	// recorder is the flight recorder behind GET /v1/debug/requests;
	// log receives the structured access and lifecycle logs; version is
	// what /healthz and adasense_build_info report. newServer fills in
	// working defaults; main overrides them from flags before serving.
	recorder *reqtrace.Recorder
	log      *slog.Logger
	version  string
}

// newServer wires the gateway's HTTP surface:
//
//	POST   /v1/sessions              open a session            {"id": ...}
//	GET    /v1/sessions/{id}         current config
//	POST   /v1/sessions/{id}/push    push a batch, get events
//	POST   /v1/sessions/{id}/migrate re-pin to the current model
//	DELETE /v1/sessions/{id}         close the session
//	POST   /v1/classify              one-shot stateless classification
//	POST   /v1/model                 hot-swap an uploaded model container
//	GET    /v1/model                 download the current model container
//	POST   /v1/rollout               start a staged canary rollout
//	GET    /v1/rollout               rollout status (stage, health, log)
//	DELETE /v1/rollout               abort the rollout (rolls back)
//	POST   /v1/rollout/stage         replica-to-replica stage transition
//	GET    /v1/session-state/{id}    replica-to-replica session snapshot (ADSS)
//	PUT    /v1/session-state/{id}    replica-to-replica session restore (ADSS)
//	GET    /v1/stream                ADSP streaming ingest (WebSocket upgrade)
//	GET    /v1/debug/requests        flight recorder (recent + slow/error traces)
//	GET    /metrics                  Prometheus text exposition
//	GET    /healthz                  liveness/readiness probe
//
// When the gateway was built with adasense.WithAuth, every /v1/* route
// requires "Authorization: Bearer <token>"; /metrics and /healthz stay
// open so scrapers and load balancers need no credentials.
//
// Every /v1/* route runs inside the observe middleware: the request
// trace is minted (or inherited from adasense.TraceHeader on a
// forwarded hop), spans accumulate across the middlewares and the
// cluster's forwarding path, and the completed request lands in the
// route latency histogram, the flight recorder and the access log. The
// trace id is echoed on every response in adasense.TraceHeader.
//
// With a non-nil cluster the server federates: session routes for a
// device the hash ring places on a peer are forwarded there (the bearer
// header travels with them), and a model upload is replicated to every
// replica — unless the request is itself a forward or a replication fan-
// out (marked by adasense.ForwardedHeader / adasense.ReplicatedHeader),
// which is always served locally so requests cannot loop.
func newServer(gw *adasense.Gateway, cluster *adasense.Cluster) *server {
	s := &server{gw: gw, cluster: cluster, mux: http.NewServeMux(),
		rolloutCfg: adasense.DefaultRolloutConfig(),
		recorder:   reqtrace.NewRecorder(defaultFlightRecorderSize, defaultSlowRequest),
		log:        slog.Default(),
		version:    version,
	}
	s.stream = newStreamServer(s)
	s.mux.HandleFunc("POST /v1/sessions", s.observe(telemetry.RouteOpen, s.auth(s.handleOpen)))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.observe(telemetry.RouteGet, s.auth(s.routed(s.handleGet))))
	s.mux.HandleFunc("POST /v1/sessions/{id}/push", s.observe(telemetry.RoutePush, s.auth(s.routed(s.handlePush))))
	s.mux.HandleFunc("POST /v1/sessions/{id}/migrate", s.observe(telemetry.RouteMigrate, s.auth(s.routed(s.handleMigrate))))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.observe(telemetry.RouteClose, s.auth(s.routed(s.handleClose))))
	s.mux.HandleFunc("POST /v1/classify", s.observe(telemetry.RouteClassify, s.auth(s.handleClassify)))
	s.mux.HandleFunc("POST /v1/model", s.observe(telemetry.RouteModel, s.auth(s.handleModel)))
	s.mux.HandleFunc("GET /v1/model", s.observe(telemetry.RouteModel, s.auth(s.handleModelGet)))
	s.mux.HandleFunc("POST /v1/rollout", s.observe(telemetry.RouteRollout, s.auth(s.handleRolloutStart)))
	s.mux.HandleFunc("GET /v1/rollout", s.observe(telemetry.RouteRollout, s.auth(s.handleRolloutStatus)))
	s.mux.HandleFunc("DELETE /v1/rollout", s.observe(telemetry.RouteRollout, s.auth(s.handleRolloutAbort)))
	s.mux.HandleFunc("POST /v1/rollout/stage", s.observe(telemetry.RouteRollout, s.auth(s.handleRolloutStage)))
	s.mux.HandleFunc("GET /v1/session-state/{id}", s.observe(telemetry.RouteState, s.auth(s.handleStateGet)))
	s.mux.HandleFunc("PUT /v1/session-state/{id}", s.observe(telemetry.RouteState, s.auth(s.handleStatePut)))
	// The stream route runs outside the auth and observe middlewares:
	// its auth is in-band (the hello frame, shared with raw TCP) and
	// its connection outlives any per-request trace — see handleWS.
	s.mux.HandleFunc("GET /v1/stream", s.stream.handleWS)
	s.mux.HandleFunc("GET /v1/debug/requests", s.auth(s.handleDebugRequests))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// auth enforces the gateway's bearer token (constant-time compare inside
// Gateway.Authorize). With no token configured it is a pass-through.
// The check is timed as the trace's "auth" span and the auth stage of
// the latency histograms.
func (s *server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The auth scheme compares case-insensitively (RFC 7235). A
		// header without the Bearer scheme presents the empty token,
		// which only an auth-less gateway accepts.
		const scheme = "Bearer "
		header, token := r.Header.Get("Authorization"), ""
		if len(header) >= len(scheme) && strings.EqualFold(header[:len(scheme)], scheme) {
			token = header[len(scheme):]
		}
		endSpan := reqtrace.FromContext(r.Context()).Span("auth")
		start := time.Now()
		ok := s.gw.Authorize(token)
		s.gw.ObserveStage(telemetry.StageAuth, time.Since(start))
		endSpan()
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="adasense"`)
			writeJSON(w, http.StatusUnauthorized, errorJSON{Error: "missing or invalid bearer token"})
			return
		}
		h(w, r)
	}
}

// forwardedByPeer reports whether r is a forward from another replica
// of this fleet: the marker header must name a known peer id, so a
// client stamping an arbitrary value cannot bypass ring routing.
func (s *server) forwardedByPeer(r *http.Request) bool {
	return s.cluster.IsPeer(r.Header.Get(adasense.ForwardedHeader))
}

// routed is the federation forwarding middleware for routes whose path
// carries the device id: a request for a device the ring places on a
// peer is proxied there transparently. Standalone servers and requests
// already forwarded once (loop guard under membership skew) serve
// locally; a forward that lands on a replica whose own ring disagrees
// is counted as a stale route — the sender decided on an older
// membership generation.
func (s *server) routed(h http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tr := reqtrace.FromContext(r.Context())
		endSpan := tr.Span("route")
		start := time.Now()
		if s.forwardedByPeer(r) {
			s.observePeerGen(r, r.Header.Get(adasense.ForwardedHeader))
			if !s.cluster.Owns(r.PathValue("id")) {
				s.cluster.MarkStaleRoute()
			}
			s.gw.ObserveStage(telemetry.StageRoute, time.Since(start))
			endSpan()
			h(w, r)
			return
		}
		to, local := s.cluster.Route(r.PathValue("id"))
		s.gw.ObserveStage(telemetry.StageRoute, time.Since(start))
		endSpan()
		if local {
			h(w, r)
			return
		}
		s.forward(w, r, to)
	}
}

// observePeerGen hands the model generation a peer advertised on a
// federation request to the cluster's catch-up hook: a replica lagging
// the fleet's model (one that joined after a push) pulls and installs
// the newer model in the background.
func (s *server) observePeerGen(r *http.Request, peer string) {
	if s.cluster == nil || peer == "" {
		return
	}
	if gen, err := strconv.ParseUint(r.Header.Get(adasense.ModelGenHeader), 10, 64); err == nil {
		s.cluster.ObserveModelGen(peer, gen)
	}
}

// forward proxies r to its owning replica: a forward denied by the
// local global token bucket maps like any rate-limited request (429),
// transport failure maps to 502 so devices can distinguish a dead peer
// from their own bad request.
func (s *server) forward(w http.ResponseWriter, r *http.Request, to adasense.Replica) {
	if err := s.cluster.Forward(w, r, to); err != nil {
		if errors.Is(err, adasense.ErrRateLimited) {
			writeError(w, err)
			return
		}
		// The cluster error already names the peer replica.
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps gateway errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, adasense.ErrSessionNotFound):
		status = http.StatusNotFound
	case errors.Is(err, adasense.ErrSessionExists):
		status = http.StatusConflict
	case errors.Is(err, adasense.ErrGatewayFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, adasense.ErrRateLimited):
		status = http.StatusTooManyRequests
	case errors.Is(err, adasense.ErrGatewayDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, adasense.ErrSessionClosed):
		status = http.StatusGone
	case errors.Is(err, adasense.ErrRolloutActive):
		status = http.StatusConflict
	case errors.Is(err, adasense.ErrNoRollout):
		status = http.StatusNotFound
	case errors.Is(err, adasense.ErrRolloutFrozen):
		status = http.StatusLocked
	case errors.Is(err, adasense.ErrStateGeneration):
		status = http.StatusConflict
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// lookup resolves the path's session id or writes a 404.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*adasense.GatewaySession, bool) {
	id := r.PathValue("id")
	sess, ok := s.gw.Lookup(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", adasense.ErrSessionNotFound, id))
		return nil, false
	}
	return sess, true
}

// session is lookup plus federation adoption — the cold half of
// rebalance handoff, used by the push path only. On a federated
// gateway, a device this replica's ring assigns here but holds no
// session for is adopted on the spot: either the departing owner's
// state snapshot never arrived (old owner dead, container rejected,
// stateful handoff disabled) or the device outran the transfer — and
// the device's next pushed batch transparently re-creates the session
// cold on the new owner. Only the push path adopts — it is the device's
// actual workload, it spends the device's rate-limit tokens, and
// restricting adoption to it keeps DELETE observable and keeps
// read-only GETs from minting sessions. Devices owned elsewhere (and
// any id on a standalone gateway) still answer 404.
func (s *server) session(w http.ResponseWriter, r *http.Request) (*adasense.GatewaySession, bool) {
	id := r.PathValue("id")
	if sess, ok := s.gw.Lookup(id); ok {
		return sess, true
	}
	if s.cluster == nil || !s.cluster.Owns(id) {
		writeError(w, fmt.Errorf("%w: %q", adasense.ErrSessionNotFound, id))
		return nil, false
	}
	sess, err := s.gw.AdoptSession(id)
	if errors.Is(err, adasense.ErrSessionExists) {
		// Concurrent adoption by another in-flight request: use its win.
		if sess, ok := s.gw.Lookup(id); ok {
			return sess, true
		}
		err = fmt.Errorf("%w: %q", adasense.ErrSessionNotFound, id)
	}
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	// Re-check ownership now that the registration is visible: a
	// rebalance that landed mid-adoption may already have swept the
	// registry, and this session must not outlive it on a replica that
	// no longer owns the device. Closing and answering 404 sends the
	// device back through the ring to its new owner.
	if !s.cluster.Owns(id) {
		sess.Close()
		writeError(w, fmt.Errorf("%w: %q", adasense.ErrSessionNotFound, id))
		return nil, false
	}
	return sess, true
}

// decodeJSON decodes a size-capped JSON request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBytes)).Decode(v)
}

// handleOpen routes by the device id in the request body, so it reads
// the raw body first: a federated open for a peer-owned device is
// forwarded with the body re-attached, everything else decodes from the
// same bytes.
func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJSONBytes))
	if err != nil {
		writeError(w, fmt.Errorf("reading open request: %w", err))
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, fmt.Errorf("decoding open request: %w", err))
		return
	}
	if s.cluster != nil && s.forwardedByPeer(r) {
		// Opens do not pass through the routed middleware, so the
		// forwarding peer's model generation is observed here.
		s.observePeerGen(r, r.Header.Get(adasense.ForwardedHeader))
	}
	// An empty id is invalid on every replica — fail locally instead of
	// burning a forward on hash("")'s owner.
	if s.cluster != nil && req.ID != "" {
		if !s.forwardedByPeer(r) {
			if to, local := s.cluster.Route(req.ID); !local {
				r.Body = io.NopCloser(bytes.NewReader(raw))
				r.ContentLength = int64(len(raw))
				s.forward(w, r, to)
				return
			}
		} else if !s.cluster.Owns(req.ID) {
			// A forward for a device this ring does not place here: the
			// sender routed on a stale generation. Refuse up front — at
			// 410 the device retries through an up-to-date replica —
			// rather than minting a session only for the post-open
			// re-check to tear it down (or, at capacity, answering a
			// misleading 429).
			s.cluster.MarkStaleRoute()
			writeError(w, fmt.Errorf("%w: %q is not owned here (stale route)",
				adasense.ErrSessionClosed, req.ID))
			return
		}
	}
	endSpan := reqtrace.FromContext(r.Context()).Span("open")
	sess, err := s.gw.Open(req.ID)
	endSpan()
	if err != nil {
		writeError(w, err)
		return
	}
	// Re-check ownership now that the registration is visible: a
	// rebalance landing mid-open may already have swept the registry,
	// and the session must not linger on a replica that no longer owns
	// the device (a ghost no later sweep would catch). Close it and
	// hand the open straight to the new owner — or, if this request was
	// itself a forward (the sender routed on a stale ring), answer 410
	// so the device retries through an up-to-date replica instead of
	// bouncing a second hop.
	if s.cluster != nil {
		if to, local := s.cluster.Route(req.ID); !local {
			sess.Close()
			if !s.forwardedByPeer(r) {
				r.Body = io.NopCloser(bytes.NewReader(raw))
				r.ContentLength = int64(len(raw))
				s.forward(w, r, to)
				return
			}
			writeError(w, fmt.Errorf("%w: %q rebalanced to %q during open",
				adasense.ErrSessionClosed, req.ID, to.ID))
			return
		}
	}
	writeJSON(w, http.StatusCreated, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handlePush(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var bj batchJSON
	if err := decodeJSON(w, r, &bj); err != nil {
		writeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	batch, err := bj.toBatch()
	if err != nil {
		writeError(w, err)
		return
	}
	endSpan := reqtrace.FromContext(r.Context()).Span("push")
	events, err := sess.Push(batch)
	endSpan()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := pushResponse{Events: make([]eventJSON, len(events)), Config: sess.Config().Name()}
	for i, ev := range events {
		resp.Events[i] = eventJSON{
			Activity:      ev.Classification.Activity.String(),
			Confidence:    ev.Classification.Confidence,
			Config:        ev.Config.Name(),
			ConfigChanged: ev.ConfigChanged,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := sess.Migrate(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.gw.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var bj batchJSON
	if err := decodeJSON(w, r, &bj); err != nil {
		writeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	batch, err := bj.toBatch()
	if err != nil {
		writeError(w, err)
		return
	}
	endSpan := reqtrace.FromContext(r.Context()).Span("classify")
	cls, err := s.gw.Classify(batch)
	endSpan()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{
		Activity:   cls.Activity.String(),
		Confidence: cls.Confidence,
	})
}

// swapReplicaJSON is one replica's outcome in a federated model push.
type swapReplicaJSON struct {
	Replica  string `json:"replica"`
	Attempts int    `json:"attempts"`
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
}

// handleModel hot-swaps the serving model from an uploaded container
// (the adasense-train output format). The swap is atomic: a bad upload
// changes nothing, a good one serves new sessions and Classify calls
// immediately while live sessions keep their pinned model.
//
// On a federated gateway one upload retrains the whole fleet: the model
// is replicated to every replica with per-replica results in the
// response. An upload fanned out by a peer (adasense.ReplicatedHeader)
// applies locally only, so replication cannot echo.
func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxModelBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("reading model upload: %w", err))
		return
	}
	if len(raw) > maxModelBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorJSON{Error: fmt.Sprintf("model upload exceeds %d bytes", maxModelBytes)})
		return
	}
	if s.cluster != nil && !s.cluster.IsPeer(r.Header.Get(adasense.ReplicatedHeader)) {
		s.handleModelReplicated(w, r, raw)
		return
	}
	sys, err := adasense.LoadSystem(bytes.NewReader(raw))
	if err != nil {
		writeError(w, err)
		return
	}
	// A peer's replication fan-out carries the origin's model
	// generation: install at it (the local generation adopts
	// max(local+1, origin)) so both sides order the model identically.
	// An operator upload is a plain swap.
	if peer := r.Header.Get(adasense.ReplicatedHeader); s.cluster != nil && s.cluster.IsPeer(peer) {
		if gen, perr := strconv.ParseUint(r.Header.Get(adasense.ModelGenHeader), 10, 64); perr == nil {
			err = s.gw.InstallModel(sys, gen)
		} else {
			err = s.gw.SwapModel(sys)
		}
	} else {
		err = s.gw.SwapModel(sys)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ModelSwaps uint64 `json:"model_swaps"`
	}{s.gw.Stats().ModelSwaps})
}

// handleModelGet serves the current model container bytes, with the
// model generation in adasense.ModelGenHeader — the pull side of
// replica catch-up, also handy for operator model backups.
func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	gen, err := s.gw.WriteModel(&buf)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(adasense.ModelGenHeader, strconv.FormatUint(gen, 10))
	w.Write(buf.Bytes())
}

// rolloutReplicaJSON is one replica's outcome of a rollout-start
// fan-out.
type rolloutReplicaJSON = swapReplicaJSON

// handleRolloutStart begins a staged canary rollout from an uploaded
// candidate container. On a federated gateway the start replicates to
// every replica (each applies its own -rollout-* policy); a start
// fanned out by a peer applies locally only, so replication cannot
// echo. 409 while another rollout is active, 423 when the candidate
// hash was frozen by an earlier health rollback.
func (s *server) handleRolloutStart(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxModelBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("reading rollout candidate: %w", err))
		return
	}
	if len(raw) > maxModelBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorJSON{Error: fmt.Sprintf("candidate exceeds %d bytes", maxModelBytes)})
		return
	}
	if s.cluster != nil {
		if peer := r.Header.Get(adasense.ReplicatedHeader); s.cluster.IsPeer(peer) {
			s.observePeerGen(r, peer)
			st, err := s.gw.StartRollout(raw, s.rolloutCfg)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusCreated, st)
			return
		}
		st, results, err := s.cluster.StartRollout(r.Context(), raw, s.rolloutCfg)
		if results == nil {
			writeError(w, err)
			return
		}
		status := http.StatusCreated
		if err != nil {
			status = http.StatusBadGateway
		}
		report := make([]rolloutReplicaJSON, len(results))
		for i, res := range results {
			report[i] = rolloutReplicaJSON{Replica: res.Replica, Attempts: res.Attempts, OK: res.Err == nil}
			if res.Err != nil {
				report[i].Error = res.Err.Error()
			}
		}
		writeJSON(w, status, struct {
			Rollout  adasense.RolloutStatus `json:"rollout"`
			Replicas []rolloutReplicaJSON   `json:"replicas"`
		}{st, report})
		return
	}
	st, err := s.gw.StartRollout(raw, s.rolloutCfg)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// handleRolloutStatus reports the active rollout (live health windows,
// gate deltas, decision log) or the final status of the last settled
// one; 404 when no rollout has run since startup.
func (s *server) handleRolloutStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.gw.RolloutStatus()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleRolloutAbort rolls the active rollout back by operator
// decision; the abort transition replicates fleet-wide through the
// cluster's notify hook. Unlike a health-gate rollback it does not
// freeze the candidate hash.
func (s *server) handleRolloutAbort(w http.ResponseWriter, r *http.Request) {
	st, err := s.gw.AbortRollout("operator abort via DELETE /v1/rollout")
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleRolloutStage applies a stage transition decided by a peer
// replica. The route is replica-to-replica only: a request not carrying
// a known peer's replication marker is refused, so a client cannot
// drive the fleet's stage machine directly.
func (s *server) handleRolloutStage(w http.ResponseWriter, r *http.Request) {
	peer := r.Header.Get(adasense.ReplicatedHeader)
	if s.cluster == nil || !s.cluster.IsPeer(peer) {
		writeJSON(w, http.StatusForbidden,
			errorJSON{Error: "rollout stage transitions are replica-to-replica only"})
		return
	}
	// The origin's generation rides along; a replica that missed the
	// whole rollout (joined late) catches up to the completed model here.
	s.observePeerGen(r, peer)
	var tr adasense.RolloutTransition
	if err := decodeJSON(w, r, &tr); err != nil {
		writeError(w, fmt.Errorf("decoding stage transition: %w", err))
		return
	}
	applied, err := s.gw.ApplyRolloutTransition(tr)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Applied bool `json:"applied"`
	}{applied})
}

// handleStateGet serves a live session's state snapshot as an ADSS
// container, with the snapshot's pinned model generation in
// adasense.ModelGenHeader. Like stage transitions, the route is
// replica-to-replica only — but judged by IsHandoffPeer, since the
// counterpart of a handoff is a member the latest membership change
// just dropped. Session state is federation plumbing, not device API
// surface.
func (s *server) handleStateGet(w http.ResponseWriter, r *http.Request) {
	peer := r.Header.Get(adasense.ReplicatedHeader)
	if s.cluster == nil || !s.cluster.IsHandoffPeer(peer) {
		writeJSON(w, http.StatusForbidden,
			errorJSON{Error: "session-state transfers are replica-to-replica only"})
		return
	}
	s.observePeerGen(r, peer)
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st, err := sess.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(adasense.ModelGenHeader, strconv.FormatUint(st.Generation, 10))
	st.Save(w)
}

// handleStatePut restores a session from an ADSS container shipped by a
// departing peer — the receiving half of stateful rebalance handoff.
// Replica-to-replica only, judged by IsHandoffPeer (the sender left the
// ring in the very change that triggered the transfer, so the current
// peer set alone would refuse every handoff), and only for a device
// this replica's ring
// owns (anything else is a stale route: the sender decided on an older
// membership generation, and the device will be adopted by its real
// owner instead). A rejected container — bad bytes (400), a live
// session already minted by the device's own traffic (409), a model-
// generation mismatch (409) — needs no cleanup on the sender: the
// device simply adopts cold here on its next push.
func (s *server) handleStatePut(w http.ResponseWriter, r *http.Request) {
	peer := r.Header.Get(adasense.ReplicatedHeader)
	if s.cluster == nil || !s.cluster.IsHandoffPeer(peer) {
		writeJSON(w, http.StatusForbidden,
			errorJSON{Error: "session-state transfers are replica-to-replica only"})
		return
	}
	s.observePeerGen(r, peer)
	id := r.PathValue("id")
	if !s.cluster.Owns(id) {
		s.cluster.MarkStaleRoute()
		writeError(w, fmt.Errorf("%w: %q is not owned here (stale route)",
			adasense.ErrSessionClosed, id))
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, adasense.MaxSessionStateBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("reading session state: %w", err))
		return
	}
	st, err := adasense.DecodeSessionState(raw)
	if err != nil {
		writeError(w, err)
		return
	}
	endSpan := reqtrace.FromContext(r.Context()).Span("restore")
	_, err = s.gw.RestoreSession(id, st)
	endSpan()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// handleModelReplicated fans a model upload out to every replica. All
// replicas swapped answers 200; a bad container answers 400 with no
// replica touched; a partial failure answers 502 with the per-replica
// report — the local swap and any successful peers keep the new model
// (retrying the upload is idempotent).
func (s *server) handleModelReplicated(w http.ResponseWriter, r *http.Request, raw []byte) {
	results, err := s.cluster.SwapModel(r.Context(), raw)
	if results == nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if err != nil {
		status = http.StatusBadGateway
	}
	report := make([]swapReplicaJSON, len(results))
	for i, res := range results {
		report[i] = swapReplicaJSON{Replica: res.Replica, Attempts: res.Attempts, OK: res.Err == nil}
		if res.Err != nil {
			report[i].Error = res.Err.Error()
		}
	}
	writeJSON(w, status, struct {
		ModelSwaps uint64            `json:"model_swaps"`
		Replicas   []swapReplicaJSON `json:"replicas"`
	}{s.gw.Stats().ModelSwaps, report})
}

// handleMetrics serves the Prometheus text exposition. Everything comes
// from one Gateway.Stats snapshot — the handler holds no gateway
// internals — plus the process-level adasense_build_info gauge, so
// fleet dashboards can correlate every series with the deployed build.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	if err := s.gw.WriteMetrics(w); err != nil {
		return
	}
	e := telemetry.NewEncoder(w)
	s.stream.writeMetrics(e)
	e.GaugeWith("adasense_build_info", "Build metadata; the payload is the labels, the value is always 1.",
		[]telemetry.Label{
			{Name: "version", Value: s.version},
			{Name: "goversion", Value: runtime.Version()},
		}, 1)
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once draining so load balancers stop routing to a terminating
// instance. The body carries the build version so a fleet sweep of
// /healthz doubles as a deployment inventory.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, body := http.StatusOK, "ok"
	if s.gw.Draining() {
		status, body = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}{body, s.version})
}
