package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"adasense"
	"adasense/internal/telemetry"
)

// maxModelBytes bounds a model upload; real containers are tens of
// kilobytes. maxJSONBytes bounds every JSON request body — the largest
// legitimate one is a pushed batch, a few hundred samples of three
// float64 axes — so an oversized body cannot exhaust gateway memory.
const (
	maxModelBytes = 64 << 20
	maxJSONBytes  = 8 << 20
)

// sessionJSON is the wire shape of a session: its id and the sensor
// configuration the device must currently sample at.
type sessionJSON struct {
	ID     string `json:"id"`
	Config string `json:"config"`
}

// batchJSON is the wire shape of a pushed batch of raw 3-axis readings.
type batchJSON struct {
	// Config names the sensor configuration the batch was sampled under
	// (e.g. "F100_A128"); it must match the session's current config.
	Config  string    `json:"config"`
	StartAt float64   `json:"start_at,omitempty"`
	X       []float64 `json:"x"`
	Y       []float64 `json:"y"`
	Z       []float64 `json:"z"`
}

// eventJSON is one classification tick emitted by a push.
type eventJSON struct {
	Activity      string  `json:"activity"`
	Confidence    float64 `json:"confidence"`
	Config        string  `json:"config"`
	ConfigChanged bool    `json:"config_changed"`
}

// pushResponse carries the completed events plus the configuration the
// device must sample at from now on.
type pushResponse struct {
	Events []eventJSON `json:"events"`
	Config string      `json:"config"`
}

// classifyResponse is a one-shot classification result.
type classifyResponse struct {
	Activity   string  `json:"activity"`
	Confidence float64 `json:"confidence"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func (b *batchJSON) toBatch() (*adasense.Batch, error) {
	cfg, err := adasense.ParseConfig(b.Config)
	if err != nil {
		return nil, err
	}
	if len(b.X) == 0 || len(b.X) != len(b.Y) || len(b.X) != len(b.Z) {
		return nil, fmt.Errorf("batch needs equal-length non-empty x/y/z (got %d/%d/%d)",
			len(b.X), len(b.Y), len(b.Z))
	}
	return &adasense.Batch{Config: cfg, StartAt: b.StartAt, X: b.X, Y: b.Y, Z: b.Z}, nil
}

// server is the HTTP front end over one Gateway.
type server struct {
	gw  *adasense.Gateway
	mux *http.ServeMux
}

// newServer wires the gateway's HTTP surface:
//
//	POST   /v1/sessions              open a session            {"id": ...}
//	GET    /v1/sessions/{id}         current config
//	POST   /v1/sessions/{id}/push    push a batch, get events
//	POST   /v1/sessions/{id}/migrate re-pin to the current model
//	DELETE /v1/sessions/{id}         close the session
//	POST   /v1/classify              one-shot stateless classification
//	POST   /v1/model                 hot-swap an uploaded model container
//	GET    /metrics                  Prometheus text exposition
//	GET    /healthz                  liveness/readiness probe
//
// When the gateway was built with adasense.WithAuth, every /v1/* route
// requires "Authorization: Bearer <token>"; /metrics and /healthz stay
// open so scrapers and load balancers need no credentials.
func newServer(gw *adasense.Gateway) *server {
	s := &server{gw: gw, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sessions", s.auth(s.handleOpen))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.auth(s.handleGet))
	s.mux.HandleFunc("POST /v1/sessions/{id}/push", s.auth(s.handlePush))
	s.mux.HandleFunc("POST /v1/sessions/{id}/migrate", s.auth(s.handleMigrate))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.auth(s.handleClose))
	s.mux.HandleFunc("POST /v1/classify", s.auth(s.handleClassify))
	s.mux.HandleFunc("POST /v1/model", s.auth(s.handleModel))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// auth enforces the gateway's bearer token (constant-time compare inside
// Gateway.Authorize). With no token configured it is a pass-through.
func (s *server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The auth scheme compares case-insensitively (RFC 7235). A
		// header without the Bearer scheme presents the empty token,
		// which only an auth-less gateway accepts.
		const scheme = "Bearer "
		header, token := r.Header.Get("Authorization"), ""
		if len(header) >= len(scheme) && strings.EqualFold(header[:len(scheme)], scheme) {
			token = header[len(scheme):]
		}
		if !s.gw.Authorize(token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="adasense"`)
			writeJSON(w, http.StatusUnauthorized, errorJSON{Error: "missing or invalid bearer token"})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps gateway errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, adasense.ErrSessionNotFound):
		status = http.StatusNotFound
	case errors.Is(err, adasense.ErrSessionExists):
		status = http.StatusConflict
	case errors.Is(err, adasense.ErrGatewayFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, adasense.ErrRateLimited):
		status = http.StatusTooManyRequests
	case errors.Is(err, adasense.ErrGatewayDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, adasense.ErrSessionClosed):
		status = http.StatusGone
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// lookup resolves the path's session id or writes a 404.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*adasense.GatewaySession, bool) {
	id := r.PathValue("id")
	sess, ok := s.gw.Lookup(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: %q", adasense.ErrSessionNotFound, id))
		return nil, false
	}
	return sess, true
}

// decodeJSON decodes a size-capped JSON request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBytes)).Decode(v)
}

func (s *server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, fmt.Errorf("decoding open request: %w", err))
		return
	}
	sess, err := s.gw.Open(req.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handlePush(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var bj batchJSON
	if err := decodeJSON(w, r, &bj); err != nil {
		writeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	batch, err := bj.toBatch()
	if err != nil {
		writeError(w, err)
		return
	}
	events, err := sess.Push(batch)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := pushResponse{Events: make([]eventJSON, len(events)), Config: sess.Config().Name()}
	for i, ev := range events {
		resp.Events[i] = eventJSON{
			Activity:      ev.Classification.Activity.String(),
			Confidence:    ev.Classification.Confidence,
			Config:        ev.Config.Name(),
			ConfigChanged: ev.ConfigChanged,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if err := sess.Migrate(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionJSON{ID: sess.ID(), Config: sess.Config().Name()})
}

func (s *server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.gw.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var bj batchJSON
	if err := decodeJSON(w, r, &bj); err != nil {
		writeError(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	batch, err := bj.toBatch()
	if err != nil {
		writeError(w, err)
		return
	}
	cls, err := s.gw.Classify(batch)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{
		Activity:   cls.Activity.String(),
		Confidence: cls.Confidence,
	})
}

// handleModel hot-swaps the serving model from an uploaded container
// (the adasense-train output format). The swap is atomic: a bad upload
// changes nothing, a good one serves new sessions and Classify calls
// immediately while live sessions keep their pinned model.
func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxModelBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("reading model upload: %w", err))
		return
	}
	if len(raw) > maxModelBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorJSON{Error: fmt.Sprintf("model upload exceeds %d bytes", maxModelBytes)})
		return
	}
	sys, err := adasense.LoadSystem(bytes.NewReader(raw))
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.gw.SwapModel(sys); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ModelSwaps uint64 `json:"model_swaps"`
	}{s.gw.Stats().ModelSwaps})
}

// handleMetrics serves the Prometheus text exposition. Everything comes
// from one Gateway.Stats snapshot — the handler holds no gateway
// internals.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	s.gw.WriteMetrics(w)
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once draining so load balancers stop routing to a terminating
// instance.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, body := http.StatusOK, "ok"
	if s.gw.Draining() {
		status, body = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, struct {
		Status string `json:"status"`
	}{body})
}
