package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adasense"
)

var (
	sysOnce sync.Once
	sysInst *adasense.System
	sysErr  error
)

// quickSystem trains one small shared classifier for every server test.
func quickSystem(t *testing.T) *adasense.System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, _, sysErr = adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 900, Epochs: 15, Seed: 42,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

// newTestServer starts a real HTTP server over a fleet pinned at the top
// configuration (so one pre-sampled batch stays valid forever).
func newTestServer(t *testing.T, opts ...adasense.GatewayOption) (*httptest.Server, *adasense.Gateway) {
	t.Helper()
	opts = append([]adasense.GatewayOption{
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})),
	}, opts...)
	gw, err := adasense.NewGateway(quickSystem(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(gw))
	t.Cleanup(ts.Close)
	return ts, gw
}

// wireBatch samples secs seconds of walking at the top configuration and
// returns it in the wire format.
func wireBatch(t *testing.T, secs float64) batchJSON {
	t.Helper()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 30}})
	if err != nil {
		t.Fatal(err)
	}
	m := adasense.NewMotion(sched, 31)
	b := adasense.NewSampler(adasense.DefaultNoiseModel(), 32).
		Sample(m, adasense.ParetoStates()[0], 0, secs)
	return batchJSON{Config: b.Config.Name(), X: b.X, Y: b.Y, Z: b.Z}
}

// do runs one JSON request and decodes the response into out (unless nil).
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd drives the full serving surface over the wire:
// health, open, lookup, push, metrics, hot-swap, migrate, classify,
// close.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	// Liveness.
	var health struct {
		Status string `json:"status"`
	}
	if code := do(t, "GET", base+"/healthz", nil, &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}

	// Open a session; the device must start at the top configuration.
	var sess sessionJSON
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-1"}, &sess); code != 201 {
		t.Fatalf("open = %d", code)
	}
	if sess.ID != "dev-1" || sess.Config != "F100_A128" {
		t.Fatalf("open session = %+v", sess)
	}
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-1"}, nil); code != 409 {
		t.Fatalf("duplicate open = %d, want 409", code)
	}
	if code := do(t, "GET", base+"/v1/sessions/dev-1", nil, &sess); code != 200 || sess.ID != "dev-1" {
		t.Fatalf("get session = %d %+v", code, sess)
	}
	if code := do(t, "GET", base+"/v1/sessions/ghost", nil, nil); code != 404 {
		t.Fatalf("get unknown session = %d, want 404", code)
	}

	// Push two seconds of walking: one full window, at least one event.
	var pushed pushResponse
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 2), &pushed); code != 200 {
		t.Fatalf("push = %d", code)
	}
	if len(pushed.Events) == 0 || pushed.Config == "" {
		t.Fatalf("push response = %+v", pushed)
	}
	for _, ev := range pushed.Events {
		if _, err := adasense.ParseActivity(ev.Activity); err != nil {
			t.Fatalf("push event has bad activity: %+v", ev)
		}
		if ev.Confidence <= 0 || ev.Confidence > 1 {
			t.Fatalf("push event confidence out of range: %+v", ev)
		}
	}

	// Push error paths: malformed JSON, bad config label, unknown id.
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", []byte("{nope"), nil); code != 400 {
		t.Fatalf("malformed push = %d, want 400", code)
	}
	bad := wireBatch(t, 1)
	bad.Config = "F9000_A1"
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", bad, nil); code != 400 {
		t.Fatalf("bad-config push = %d, want 400", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/ghost/push", wireBatch(t, 1), nil); code != 404 {
		t.Fatalf("push to unknown session = %d, want 404", code)
	}

	// One-shot classification.
	var cls classifyResponse
	if code := do(t, "POST", base+"/v1/classify", wireBatch(t, 2), &cls); code != 200 {
		t.Fatalf("classify = %d", code)
	}
	if _, err := adasense.ParseActivity(cls.Activity); err != nil {
		t.Fatalf("classify activity %q: %v", cls.Activity, err)
	}

	// Hot-swap: upload a retrained model; live session must survive.
	var buf bytes.Buffer
	retrained, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 600, Epochs: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if err := retrained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var swap struct {
		ModelSwaps uint64 `json:"model_swaps"`
	}
	if code := do(t, "POST", base+"/v1/model", buf.Bytes(), &swap); code != 200 || swap.ModelSwaps != 1 {
		t.Fatalf("model upload = %d %+v", code, swap)
	}
	if code := do(t, "POST", base+"/v1/model", []byte("garbage"), nil); code != 400 {
		t.Fatalf("garbage model upload = %d, want 400", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), &pushed); code != 200 {
		t.Fatalf("push after swap = %d; live session dropped by hot-swap", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/migrate", nil, &sess); code != 200 {
		t.Fatalf("migrate = %d", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), &pushed); code != 200 {
		t.Fatalf("push after migrate = %d", code)
	}

	// Metrics reflect everything above.
	var metrics metricsResponse
	if code := do(t, "GET", base+"/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if metrics.Sessions != 1 || metrics.SessionsOpened != 1 {
		t.Fatalf("metrics sessions = %+v", metrics)
	}
	if metrics.BatchesPushed != 3 || metrics.EventsEmitted == 0 {
		t.Fatalf("metrics data path = %+v", metrics)
	}
	if metrics.ModelSwaps != 1 || metrics.ClassifyCalls != 1 {
		t.Fatalf("metrics swap/classify = %+v", metrics)
	}

	// Close: 204, then the id is gone.
	if code := do(t, "DELETE", base+"/v1/sessions/dev-1", nil, nil); code != 204 {
		t.Fatalf("close = %d", code)
	}
	if code := do(t, "DELETE", base+"/v1/sessions/dev-1", nil, nil); code != 404 {
		t.Fatalf("double close = %d, want 404", code)
	}
	if code := do(t, "GET", base+"/metrics", nil, &metrics); code != 200 || metrics.Sessions != 0 {
		t.Fatalf("metrics after close = %d %+v", code, metrics)
	}
}

// TestServerCapacityAndEviction exercises the fleet-policy knobs over the
// wire: the max-sessions cap maps to 429, and idle sessions reaped by the
// sweeper answer 404/410 afterwards.
func TestServerCapacityAndEviction(t *testing.T) {
	clock := struct {
		sync.Mutex
		now time.Time
	}{now: time.Unix(9000, 0)}
	ts, gw := newTestServer(t,
		adasense.WithMaxSessions(2),
		adasense.WithIdleTTL(time.Minute),
		adasense.WithGatewayClock(func() time.Time {
			clock.Lock()
			defer clock.Unlock()
			return clock.now
		}),
	)
	base := ts.URL

	for _, id := range []string{"a", "b"} {
		if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": id}, nil); code != 201 {
			t.Fatalf("open %s = %d", id, code)
		}
	}
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "c"}, nil); code != 429 {
		t.Fatalf("over-capacity open = %d, want 429", code)
	}

	// Make "a" stale while "b" stays fresh, then sweep.
	clock.Lock()
	clock.now = clock.now.Add(time.Minute)
	clock.Unlock()
	if code := do(t, "POST", base+"/v1/sessions/b/push", wireBatch(t, 1), nil); code != 200 {
		t.Fatalf("push b = %d", code)
	}
	evicted := gw.EvictIdle()
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("EvictIdle = %v, want [a]", evicted)
	}
	if code := do(t, "GET", base+"/v1/sessions/a", nil, nil); code != 404 {
		t.Fatalf("get evicted session = %d, want 404", code)
	}
	// The freed slot is reusable over the wire.
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "c"}, nil); code != 201 {
		t.Fatalf("open after eviction = %d, want 201", code)
	}
	var metrics metricsResponse
	if code := do(t, "GET", base+"/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if metrics.SessionsEvicted != 1 || metrics.Sessions != 2 {
		t.Fatalf("metrics after eviction = %+v", metrics)
	}
	if !strings.HasPrefix(fmt.Sprint(metrics.PoolHitRate), "0") && metrics.PoolHitRate != 1 {
		t.Fatalf("pool hit rate out of range: %v", metrics.PoolHitRate)
	}
}
