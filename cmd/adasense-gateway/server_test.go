package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adasense"
)

var (
	sysOnce sync.Once
	sysInst *adasense.System
	sysErr  error
)

// quickSystem trains one small shared classifier for every server test.
func quickSystem(t testing.TB) *adasense.System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, _, sysErr = adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 900, Epochs: 15, Seed: 42,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

// newTestServer starts a real HTTP server over a fleet pinned at the top
// configuration (so one pre-sampled batch stays valid forever).
func newTestServer(t *testing.T, opts ...adasense.GatewayOption) (*httptest.Server, *adasense.Gateway) {
	t.Helper()
	opts = append([]adasense.GatewayOption{
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})),
	}, opts...)
	gw, err := adasense.NewGateway(quickSystem(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(gw, nil))
	t.Cleanup(ts.Close)
	return ts, gw
}

// wireBatch samples secs seconds of walking at the top configuration and
// returns it in the wire format.
func wireBatch(t *testing.T, secs float64) batchJSON {
	t.Helper()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 30}})
	if err != nil {
		t.Fatal(err)
	}
	m := adasense.NewMotion(sched, 31)
	b := adasense.NewSampler(adasense.DefaultNoiseModel(), 32).
		Sample(m, adasense.ParetoStates()[0], 0, secs)
	return batchJSON{Config: b.Config.Name(), X: b.X, Y: b.Y, Z: b.Z}
}

// scrapeMetrics GETs /metrics, validates the Prometheus text exposition
// shape (every sample preceded by its # HELP and # TYPE lines), and
// returns the samples by series name.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	var lastHelp, lastType string
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			lastType = f[2]
			if f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram" {
				t.Fatalf("bad TYPE line %q", line)
			}
		default:
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("bad sample line %q", line)
			}
			// Histogram samples carry a family suffix, and labeled series
			// carry a {..} block; both belong to the family of the
			// preceding HELP/TYPE pair.
			base, _, _ := strings.Cut(name, "{")
			family := base
			if suffix := strings.TrimPrefix(base, lastHelp); lastHelp != "" &&
				(suffix == "_bucket" || suffix == "_sum" || suffix == "_count") {
				family = lastHelp
			}
			if family != lastHelp || family != lastType {
				t.Fatalf("sample %q not preceded by its HELP/TYPE lines (saw %q/%q)", name, lastHelp, lastType)
			}
			var v float64
			if _, err := fmt.Sscanf(val, "%g", &v); err != nil {
				t.Fatalf("bad sample value %q: %v", line, err)
			}
			samples[base] = v
		}
	}
	return samples
}

// do runs one JSON request and decodes the response into out (unless nil).
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd drives the full serving surface over the wire:
// health, open, lookup, push, metrics, hot-swap, migrate, classify,
// close.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	// Liveness.
	var health struct {
		Status string `json:"status"`
	}
	if code := do(t, "GET", base+"/healthz", nil, &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}

	// Open a session; the device must start at the top configuration.
	var sess sessionJSON
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-1"}, &sess); code != 201 {
		t.Fatalf("open = %d", code)
	}
	if sess.ID != "dev-1" || sess.Config != "F100_A128" {
		t.Fatalf("open session = %+v", sess)
	}
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-1"}, nil); code != 409 {
		t.Fatalf("duplicate open = %d, want 409", code)
	}
	if code := do(t, "GET", base+"/v1/sessions/dev-1", nil, &sess); code != 200 || sess.ID != "dev-1" {
		t.Fatalf("get session = %d %+v", code, sess)
	}
	if code := do(t, "GET", base+"/v1/sessions/ghost", nil, nil); code != 404 {
		t.Fatalf("get unknown session = %d, want 404", code)
	}

	// Push two seconds of walking: one full window, at least one event.
	var pushed pushResponse
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 2), &pushed); code != 200 {
		t.Fatalf("push = %d", code)
	}
	if len(pushed.Events) == 0 || pushed.Config == "" {
		t.Fatalf("push response = %+v", pushed)
	}
	for _, ev := range pushed.Events {
		if _, err := adasense.ParseActivity(ev.Activity); err != nil {
			t.Fatalf("push event has bad activity: %+v", ev)
		}
		if ev.Confidence <= 0 || ev.Confidence > 1 {
			t.Fatalf("push event confidence out of range: %+v", ev)
		}
	}

	// Push error paths: malformed JSON, bad config label, unknown id.
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", []byte("{nope"), nil); code != 400 {
		t.Fatalf("malformed push = %d, want 400", code)
	}
	bad := wireBatch(t, 1)
	bad.Config = "F9000_A1"
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", bad, nil); code != 400 {
		t.Fatalf("bad-config push = %d, want 400", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/ghost/push", wireBatch(t, 1), nil); code != 404 {
		t.Fatalf("push to unknown session = %d, want 404", code)
	}

	// One-shot classification.
	var cls classifyResponse
	if code := do(t, "POST", base+"/v1/classify", wireBatch(t, 2), &cls); code != 200 {
		t.Fatalf("classify = %d", code)
	}
	if _, err := adasense.ParseActivity(cls.Activity); err != nil {
		t.Fatalf("classify activity %q: %v", cls.Activity, err)
	}

	// Hot-swap: upload a retrained model; live session must survive.
	var buf bytes.Buffer
	retrained, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 600, Epochs: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if err := retrained.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var swap struct {
		ModelSwaps uint64 `json:"model_swaps"`
	}
	if code := do(t, "POST", base+"/v1/model", buf.Bytes(), &swap); code != 200 || swap.ModelSwaps != 1 {
		t.Fatalf("model upload = %d %+v", code, swap)
	}
	if code := do(t, "POST", base+"/v1/model", []byte("garbage"), nil); code != 400 {
		t.Fatalf("garbage model upload = %d, want 400", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), &pushed); code != 200 {
		t.Fatalf("push after swap = %d; live session dropped by hot-swap", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/migrate", nil, &sess); code != 200 {
		t.Fatalf("migrate = %d", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), &pushed); code != 200 {
		t.Fatalf("push after migrate = %d", code)
	}

	// Metrics (Prometheus text format) reflect everything above.
	m := scrapeMetrics(t, base)
	if m["adasense_sessions_live"] != 1 || m["adasense_sessions_opened_total"] != 1 {
		t.Fatalf("metrics sessions = %v", m)
	}
	if m["adasense_batches_pushed_total"] != 3 || m["adasense_events_emitted_total"] == 0 {
		t.Fatalf("metrics data path = %v", m)
	}
	if m["adasense_model_swaps_total"] != 1 || m["adasense_classify_calls_total"] != 1 {
		t.Fatalf("metrics swap/classify = %v", m)
	}
	if m["adasense_draining"] != 0 || m["adasense_session_capacity"] != 0 {
		t.Fatalf("metrics gauges = %v", m)
	}

	// Close: 204, then the id is gone.
	if code := do(t, "DELETE", base+"/v1/sessions/dev-1", nil, nil); code != 204 {
		t.Fatalf("close = %d", code)
	}
	if code := do(t, "DELETE", base+"/v1/sessions/dev-1", nil, nil); code != 404 {
		t.Fatalf("double close = %d, want 404", code)
	}
	if m := scrapeMetrics(t, base); m["adasense_sessions_live"] != 0 {
		t.Fatalf("metrics after close = %v", m)
	}
}

// TestServerCapacityAndEviction exercises the fleet-policy knobs over the
// wire: the max-sessions cap maps to 429, and idle sessions reaped by the
// sweeper answer 404/410 afterwards.
func TestServerCapacityAndEviction(t *testing.T) {
	clock := struct {
		sync.Mutex
		now time.Time
	}{now: time.Unix(9000, 0)}
	ts, gw := newTestServer(t,
		adasense.WithMaxSessions(2),
		adasense.WithIdleTTL(time.Minute),
		adasense.WithGatewayClock(func() time.Time {
			clock.Lock()
			defer clock.Unlock()
			return clock.now
		}),
	)
	base := ts.URL

	for _, id := range []string{"a", "b"} {
		if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": id}, nil); code != 201 {
			t.Fatalf("open %s = %d", id, code)
		}
	}
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "c"}, nil); code != 429 {
		t.Fatalf("over-capacity open = %d, want 429", code)
	}

	// Make "a" stale while "b" stays fresh, then sweep.
	clock.Lock()
	clock.now = clock.now.Add(time.Minute)
	clock.Unlock()
	if code := do(t, "POST", base+"/v1/sessions/b/push", wireBatch(t, 1), nil); code != 200 {
		t.Fatalf("push b = %d", code)
	}
	evicted := gw.EvictIdle()
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("EvictIdle = %v, want [a]", evicted)
	}
	if code := do(t, "GET", base+"/v1/sessions/a", nil, nil); code != 404 {
		t.Fatalf("get evicted session = %d, want 404", code)
	}
	// The freed slot is reusable over the wire.
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "c"}, nil); code != 201 {
		t.Fatalf("open after eviction = %d, want 201", code)
	}
	m := scrapeMetrics(t, base)
	if m["adasense_sessions_evicted_total"] != 1 || m["adasense_sessions_live"] != 2 {
		t.Fatalf("metrics after eviction = %v", m)
	}
	if m["adasense_session_capacity"] != 2 {
		t.Fatalf("capacity gauge = %v", m["adasense_session_capacity"])
	}
	if rate := m["adasense_pool_hit_rate"]; rate < 0 || rate > 1 {
		t.Fatalf("pool hit rate out of range: %v", rate)
	}
}

// doTok is do with a bearer token attached.
func doTok(t *testing.T, method, url, token string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServerAuth locks the gateway behind a bearer token: every /v1/*
// route answers 401 without it, /metrics and /healthz stay open, and
// the rejects are counted.
func TestServerAuth(t *testing.T) {
	ts, _ := newTestServer(t, adasense.WithAuth("s3cret"))
	base := ts.URL

	open := map[string]string{"id": "dev-1"}
	if code := do(t, "POST", base+"/v1/sessions", open, nil); code != 401 {
		t.Fatalf("tokenless open = %d, want 401", code)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := resp.Header.Get("WWW-Authenticate"); !strings.HasPrefix(h, "Bearer") {
		t.Fatalf("WWW-Authenticate = %q", h)
	}
	if code := doTok(t, "POST", base+"/v1/sessions", "Bearer wrong", open, nil); code != 401 {
		t.Fatalf("wrong-token open = %d, want 401", code)
	}
	// The token must arrive under the Bearer scheme.
	if code := doTok(t, "POST", base+"/v1/sessions", "s3cret", open, nil); code != 401 {
		t.Fatalf("schemeless token open = %d, want 401", code)
	}
	for _, route := range []struct{ method, path string }{
		{"GET", "/v1/sessions/dev-1"},
		{"POST", "/v1/sessions/dev-1/push"},
		{"POST", "/v1/sessions/dev-1/migrate"},
		{"DELETE", "/v1/sessions/dev-1"},
		{"POST", "/v1/classify"},
		{"POST", "/v1/model"},
	} {
		if code := do(t, route.method, base+route.path, nil, nil); code != 401 {
			t.Fatalf("tokenless %s %s = %d, want 401", route.method, route.path, code)
		}
	}

	// The right token serves; the open endpoints never asked for one.
	var sess sessionJSON
	if code := doTok(t, "POST", base+"/v1/sessions", "Bearer s3cret", open, &sess); code != 201 || sess.ID != "dev-1" {
		t.Fatalf("authorized open = %d %+v", code, sess)
	}
	// The scheme compares case-insensitively (RFC 7235).
	if code := doTok(t, "GET", base+"/v1/sessions/dev-1", "bearer s3cret", nil, nil); code != 200 {
		t.Fatalf("lowercase-scheme get = %d, want 200", code)
	}
	if code := do(t, "GET", base+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz behind auth = %d", code)
	}
	m := scrapeMetrics(t, base)
	if m["adasense_auth_rejects_total"] < 9 {
		t.Fatalf("auth rejects = %v, want >= 9", m["adasense_auth_rejects_total"])
	}
	if m["adasense_sessions_live"] != 1 {
		t.Fatalf("sessions live = %v", m["adasense_sessions_live"])
	}
}

// TestServerRateLimit floods one device on a fake clock: the burst is
// admitted, the flood gets 429, other devices and the refill keep
// working, and the rejects are counted.
func TestServerRateLimit(t *testing.T) {
	clock := struct {
		sync.Mutex
		now time.Time
	}{now: time.Unix(7000, 0)}
	ts, _ := newTestServer(t,
		adasense.WithGatewayClock(func() time.Time {
			clock.Lock()
			defer clock.Unlock()
			return clock.now
		}),
		adasense.WithRateLimit(adasense.RateLimit{DevicePerSec: 1, DeviceBurst: 3}),
	)
	base := ts.URL

	// Burst of 3: the open plus two pushes are admitted...
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-1"}, nil); code != 201 {
		t.Fatalf("open = %d", code)
	}
	for i := 0; i < 2; i++ {
		if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), nil); code != 200 {
			t.Fatalf("burst push %d = %d", i, code)
		}
	}
	// ...then the flood is shed with 429.
	for i := 0; i < 3; i++ {
		if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), nil); code != 429 {
			t.Fatalf("flood push %d = %d, want 429", i, code)
		}
	}

	// Another device is untouched, and a refilled token admits again.
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "dev-2"}, nil); code != 201 {
		t.Fatalf("independent open = %d", code)
	}
	clock.Lock()
	clock.now = clock.now.Add(time.Second)
	clock.Unlock()
	if code := do(t, "POST", base+"/v1/sessions/dev-1/push", wireBatch(t, 1), nil); code != 200 {
		t.Fatalf("post-refill push = %d", code)
	}

	m := scrapeMetrics(t, base)
	if m["adasense_rate_limited_device_total"] != 3 {
		t.Fatalf("device rejects = %v, want 3", m["adasense_rate_limited_device_total"])
	}
}

// TestServerDrain closes the serving loop: a draining gateway refuses
// opens with 503, flips /healthz to 503 for load balancers, reports
// itself in /metrics, and leaves zero live sessions.
func TestServerDrain(t *testing.T) {
	ts, gw := newTestServer(t)
	base := ts.URL

	for _, id := range []string{"a", "b", "c"} {
		if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": id}, nil); code != 201 {
			t.Fatalf("open %s = %d", id, code)
		}
	}
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := gw.NumSessions(); n != 0 {
		t.Fatalf("NumSessions after drain = %d", n)
	}
	if code := do(t, "POST", base+"/v1/sessions", map[string]string{"id": "late"}, nil); code != 503 {
		t.Fatalf("open while draining = %d, want 503", code)
	}
	if code := do(t, "GET", base+"/healthz", nil, nil); code != 503 {
		t.Fatalf("healthz while draining = %d, want 503", code)
	}
	if code := do(t, "POST", base+"/v1/sessions/a/push", wireBatch(t, 1), nil); code != 404 && code != 410 {
		t.Fatalf("push to drained session = %d, want 404/410", code)
	}
	m := scrapeMetrics(t, base)
	if m["adasense_draining"] != 1 || m["adasense_sessions_live"] != 0 {
		t.Fatalf("drain metrics = %v", m)
	}
	if m["adasense_sessions_closed_total"] != 3 {
		t.Fatalf("closed total = %v, want 3", m["adasense_sessions_closed_total"])
	}
}
