package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"adasense"
	"adasense/internal/stream"
	"adasense/internal/telemetry"
)

// streamServer is the ADSP streaming ingress over the same gateway the
// HTTP surface serves: one persistent connection per device, carried
// over a WebSocket upgraded at GET /v1/stream or over the raw TCP
// listener behind -stream-addr (both transports run the identical
// session loop — ADSP frames are self-delimiting, so the loop only
// needs an ordered byte stream).
//
// Per connection the steady state allocates nothing: frames decode
// through one stream.Reader into reused message structs, replies are
// built in place in a reused write buffer, and the push closure is
// created once at session bind. Pushes from all connections funnel
// through one admission batcher whose coalescing keeps the
// feature-extraction working set hot under concurrency; its queue wait
// is the "admit" stage of the latency histograms, frame-payload decode
// is the "decode" stage. docs/streaming.md is the protocol reference.
type streamServer struct {
	s       *server
	tel     *telemetry.StreamCounters
	batcher *stream.Batcher

	// mu guards conns and closed: Shutdown says goodbye to every live
	// connection exactly once, and connections arriving after shutdown
	// are refused at the door.
	mu     sync.Mutex
	conns  map[*streamConn]struct{}
	closed bool
}

// streamConn is one live ADSP connection's server-side state.
type streamConn struct {
	rwc io.ReadWriteCloser

	// wmu serializes frame writes (the session loop with Shutdown's
	// goodbye); wbuf is the reused frame-encoding buffer.
	wmu  sync.Mutex
	wbuf []byte
}

// streamBatcherQueue bounds tasks admitted but not yet running. One
// connection submits at most one task at a time, so the queue acts as a
// connection-concurrency window, not a per-device buffer.
const streamBatcherQueue = 256

func newStreamServer(s *server) *streamServer {
	ss := &streamServer{
		s:     s,
		tel:   &telemetry.StreamCounters{},
		conns: make(map[*streamConn]struct{}),
	}
	ss.batcher = stream.NewBatcher(runtime.GOMAXPROCS(0), streamBatcherQueue,
		ss.tel.BatcherFlush,
		func(d time.Duration) { s.gw.ObserveStage(telemetry.StageAdmit, d) })
	return ss
}

// handleWS is the GET /v1/stream route: WebSocket upgrade, then the
// ADSP session loop on the hijacked connection. The route skips the
// auth and observe middlewares deliberately — auth is in-band (the
// hello frame carries the bearer token, shared with the raw-TCP
// transport), and the request trace/latency machinery is per-request
// where a stream is one connection serving thousands of pushes; the
// stream's own counters and stage histograms cover it instead.
func (ss *streamServer) handleWS(w http.ResponseWriter, r *http.Request) {
	conn, err := stream.UpgradeHTTP(w, r)
	if err != nil {
		return // UpgradeHTTP already answered the request
	}
	ss.ServeConn(conn)
}

// Serve accepts raw-TCP ADSP connections (-stream-addr) until the
// listener closes.
func (ss *streamServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go ss.ServeConn(conn)
	}
}

// ServeConn runs one connection's full ADSP lifetime and closes it.
func (ss *streamServer) ServeConn(rwc io.ReadWriteCloser) {
	c := &streamConn{rwc: rwc}
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		ss.writeGoodbye(c, stream.CodeDraining, "gateway draining")
		rwc.Close()
		return
	}
	ss.conns[c] = struct{}{}
	ss.mu.Unlock()
	ss.tel.ConnOpened()
	defer func() {
		ss.mu.Lock()
		delete(ss.conns, c)
		ss.mu.Unlock()
		ss.tel.ConnClosed()
		rwc.Close()
	}()
	ss.serve(c)
}

// Shutdown refuses new connections, says goodbye to every live one,
// and drains the admission batcher. Called on the signal path before
// Gateway.Drain so devices see a clean draining close instead of
// pushes failing against closing sessions.
func (ss *streamServer) Shutdown() {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	conns := make([]*streamConn, 0, len(ss.conns))
	for c := range ss.conns {
		conns = append(conns, c)
	}
	ss.mu.Unlock()
	for _, c := range conns {
		ss.writeGoodbye(c, stream.CodeDraining, "gateway draining")
		c.rwc.Close() // unblocks the session loop's blocking read
	}
	ss.batcher.Close()
}

// serve runs the handshake and session loop for one connection.
func (ss *streamServer) serve(c *streamConn) {
	gw, cluster := ss.s.gw, ss.s.cluster
	rd := stream.NewReader(c.rwc)

	// Handshake: exactly one hello first.
	f, err := rd.Next()
	if err != nil {
		return
	}
	ss.tel.FrameIn(uint8(f.Type))
	if f.Type != stream.FrameHello {
		ss.writeGoodbye(c, stream.CodeProtocol, "expected hello frame")
		return
	}
	hello, err := stream.DecodeHello(f.Payload)
	if err != nil {
		ss.writeGoodbye(c, stream.CodeProtocol, err.Error())
		return
	}
	start := time.Now()
	authorized := gw.Authorize(hello.Token)
	gw.ObserveStage(telemetry.StageAuth, time.Since(start))
	if !authorized {
		ss.writeGoodbye(c, stream.CodeUnauthorized, "missing or invalid bearer token")
		return
	}
	if hello.Device == "" {
		ss.writeGoodbye(c, stream.CodeProtocol, "hello needs a device id")
		return
	}
	if gw.Draining() {
		ss.writeGoodbye(c, stream.CodeDraining, "gateway draining")
		return
	}
	device := hello.Device

	// Ring routing: unlike the HTTP surface the stream never proxies —
	// a persistent connection pinned through a middleman would pay the
	// forward hop on every push, exactly what ADSP exists to avoid. The
	// device is told its owner and re-dials there.
	if !ss.redirectIfNotOwned(c, device) {
		return
	}

	// Bind the session: resume a live one, open (or adopt, on a
	// federated gateway — same cold-handoff semantics as the HTTP push
	// path) otherwise.
	sess, ok := gw.Lookup(device)
	resumed := ok
	if !ok {
		var err error
		sess, err = gw.Open(device)
		if errors.Is(err, adasense.ErrSessionExists) {
			// Lost an open race (e.g. against the device's own HTTP
			// traffic): use the winner.
			sess, ok = gw.Lookup(device)
			if !ok {
				ss.writeGoodbye(c, stream.CodeInternal, "session lost mid-open")
				return
			}
			resumed = true
			err = nil
		}
		switch {
		case err == nil:
		case errors.Is(err, adasense.ErrGatewayFull):
			ss.writeGoodbye(c, stream.CodeCapacity, err.Error())
			return
		case errors.Is(err, adasense.ErrGatewayDraining):
			ss.writeGoodbye(c, stream.CodeDraining, err.Error())
			return
		default:
			ss.writeGoodbye(c, stream.CodeInternal, err.Error())
			return
		}
	}
	// Re-check ownership now the registration is visible, mirroring
	// handleOpen: a rebalance landing mid-bind must not leave a ghost
	// session here. A session this loop minted is closed; a resumed one
	// belongs to the rebalance sweep.
	if cluster != nil && !cluster.Owns(device) {
		if !resumed {
			sess.Close()
		}
		ss.redirectIfNotOwned(c, device)
		return
	}

	lastCfg := sess.Config()
	ss.writeWelcome(c, stream.Welcome{Config: lastCfg, ModelGen: gw.ModelGeneration(), Resumed: resumed})

	// Session loop state, all reused across pushes: the batch and batch
	// wrapper decode in place, the ack encodes in place, and the push
	// closure is minted once — the steady-state push path allocates
	// nothing on this side of the feature pipeline.
	task := stream.NewTask()
	var batch stream.BatchMsg
	var ack stream.EventsMsg
	var ab adasense.Batch
	var pushed []adasense.Event
	var pushErr error
	push := func() { pushed, pushErr = sess.Push(&ab) }

	for {
		f, err := rd.Next()
		if err != nil {
			// Encoding errors get a reason before the close; a vanished
			// peer (EOF or transport failure) gets silence.
			switch {
			case errors.Is(err, stream.ErrFrameTooLarge):
				ss.writeGoodbye(c, stream.CodeTooLarge, err.Error())
			case errors.Is(err, stream.ErrBadVersion):
				ss.writeGoodbye(c, stream.CodeVersion, err.Error())
			case errors.Is(err, stream.ErrBadMagic), errors.Is(err, stream.ErrBadFlags),
				errors.Is(err, stream.ErrBadType), errors.Is(err, stream.ErrBadChecksum):
				ss.writeGoodbye(c, stream.CodeProtocol, err.Error())
			}
			return
		}
		ss.tel.FrameIn(uint8(f.Type))
		switch f.Type {
		case stream.FrameBatch:
			start := time.Now()
			if err := batch.Decode(f.Payload); err != nil {
				// The envelope CRC passed but the payload is malformed:
				// a broken encoder, not line noise. Close.
				ss.writeGoodbye(c, stream.CodeProtocol, err.Error())
				return
			}
			gw.ObserveStage(telemetry.StageDecode, time.Since(start))
			// Ownership is re-checked per push like the HTTP routed
			// middleware: a rebalance must move the device promptly, not
			// whenever it happens to reconnect.
			if !ss.redirectIfNotOwned(c, device) {
				return
			}
			ab = adasense.Batch{Config: batch.Config, StartAt: batch.StartAt, X: batch.X, Y: batch.Y, Z: batch.Z}
			ss.batcher.Submit(task, push)
			if pushErr != nil {
				if !ss.answerPushError(c, sess, device, batch.Seq, pushErr) {
					return
				}
				continue
			}
			cfg := sess.Config()
			ack.Seq = batch.Seq
			ack.Config = cfg
			if cap(ack.Events) < len(pushed) {
				ack.Events = make([]stream.Event, len(pushed))
			}
			ack.Events = ack.Events[:len(pushed)]
			for i := range pushed {
				ev := &pushed[i]
				ack.Events[i] = stream.Event{
					Activity:      uint8(ev.Classification.Activity),
					Confidence:    ev.Classification.Confidence,
					Config:        ev.Config,
					ConfigChanged: ev.ConfigChanged,
				}
			}
			ss.writeEvents(c, &ack)
			lastCfg = cfg
		case stream.FramePing:
			ss.writePong(c, f.Payload)
			// Pings double as the config-push opportunity for idle
			// devices: if the directed config drifted since the last
			// frame the device saw, push the correction.
			if cfg := sess.Config(); cfg != lastCfg {
				ss.writeConfig(c, cfg)
				lastCfg = cfg
			}
		case stream.FramePong:
			// Unsolicited pongs are permitted (RFC 6455 spirit).
		case stream.FrameGoodbye:
			return
		default:
			ss.writeGoodbye(c, stream.CodeProtocol, "unexpected "+f.Type.String()+" frame")
			return
		}
	}
}

// answerPushError maps a session push failure onto the wire. It
// reports whether the connection survives: per-batch refusals answer
// with an error frame and keep serving, terminal conditions say
// goodbye.
func (ss *streamServer) answerPushError(c *streamConn, sess *adasense.GatewaySession, device string, seq uint64, err error) bool {
	switch {
	case errors.Is(err, adasense.ErrRateLimited):
		ss.writeError(c, stream.ErrorMsg{Seq: seq, Code: stream.CodeRateLimited, Config: sess.Config(), Msg: err.Error()})
		return true
	case errors.Is(err, adasense.ErrSessionClosed), errors.Is(err, adasense.ErrSessionNotFound):
		// Closed underneath the stream — usually a rebalance sweep. If
		// the ring now places the device elsewhere, say so on the way
		// out; the device re-dials the owner and resumes warm (stateful
		// handoff) or cold.
		if !ss.redirectIfNotOwned(c, device) {
			return false
		}
		ss.writeGoodbye(c, stream.CodeSessionClosed, err.Error())
		return false
	case errors.Is(err, adasense.ErrGatewayDraining):
		ss.writeGoodbye(c, stream.CodeDraining, err.Error())
		return false
	default:
		// Config mismatch and the like: refuse the batch, direct the
		// config the device must resample at (self-healing).
		ss.writeError(c, stream.ErrorMsg{Seq: seq, Code: stream.CodeBadBatch, Config: sess.Config(), Msg: err.Error()})
		return true
	}
}

// redirectIfNotOwned reports whether the device belongs on this
// replica. If not, it names the owner in a redirect frame and says
// goodbye with CodeRedirect; the caller returns.
func (ss *streamServer) redirectIfNotOwned(c *streamConn, device string) bool {
	cluster := ss.s.cluster
	if cluster == nil {
		return true
	}
	owner, local := cluster.Route(device)
	if local {
		return true
	}
	ss.tel.RedirectSent()
	ss.writeRedirect(c, stream.Redirect{ReplicaID: owner.ID, ReplicaURL: owner.URL})
	ss.writeGoodbye(c, stream.CodeRedirect, "device is owned by "+owner.ID)
	return false
}

// sendFrame seals and writes a frame whose payload was appended to
// c.wbuf by the caller (between begin and here), under the write lock.
func (c *streamConn) sendFrame() error {
	buf := stream.EndFrame(c.wbuf, 0)
	c.wbuf = buf
	_, err := c.rwc.Write(buf)
	return err
}

func (ss *streamServer) writeWelcome(c *streamConn, w stream.Welcome) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameWelcome)
	c.wbuf = stream.AppendWelcome(c.wbuf, w)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameWelcome))
	}
}

func (ss *streamServer) writeEvents(c *streamConn, m *stream.EventsMsg) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameEvents)
	c.wbuf = stream.AppendEvents(c.wbuf, m)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameEvents))
	}
}

func (ss *streamServer) writeConfig(c *streamConn, cfg adasense.Config) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameConfig)
	c.wbuf = stream.AppendConfig(c.wbuf, cfg)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameConfig))
	}
}

func (ss *streamServer) writePong(c *streamConn, payload []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FramePong)
	c.wbuf = append(c.wbuf, payload...)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FramePong))
	}
}

func (ss *streamServer) writeError(c *streamConn, e stream.ErrorMsg) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameError)
	c.wbuf = stream.AppendError(c.wbuf, e)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameError))
	}
}

func (ss *streamServer) writeRedirect(c *streamConn, r stream.Redirect) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameRedirect)
	c.wbuf = stream.AppendRedirect(c.wbuf, r)
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameRedirect))
	}
}

func (ss *streamServer) writeGoodbye(c *streamConn, code stream.CloseCode, msg string) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = stream.BeginFrame(c.wbuf[:0], stream.FrameGoodbye)
	c.wbuf = stream.AppendGoodbye(c.wbuf, stream.Goodbye{Code: code, Msg: msg})
	if c.sendFrame() == nil {
		ss.tel.FrameOut(uint8(stream.FrameGoodbye))
	}
}

// writeMetrics appends the adasense_stream_* series to a /metrics
// exposition — the streaming counterpart of Gateway.WriteMetrics,
// emitted by handleMetrics after the gateway's own series.
func (ss *streamServer) writeMetrics(e *telemetry.Encoder) {
	snap := ss.tel.Snapshot()
	e.Counter("adasense_stream_connections_total",
		"ADSP stream connections accepted since process start.", snap.ConnsOpened)
	e.Gauge("adasense_stream_connections",
		"ADSP stream connections currently live.", float64(snap.ConnsLive))
	frames := func(counts [telemetry.NumFrameTypes]uint64) []telemetry.CounterSample {
		samples := make([]telemetry.CounterSample, 0, int(stream.FrameGoodbye))
		for t := stream.FrameHello; t <= stream.FrameGoodbye; t++ {
			samples = append(samples, telemetry.CounterSample{LabelValue: t.String(), V: counts[t]})
		}
		return samples
	}
	e.CounterVec("adasense_stream_frames_in_total",
		"Decoded inbound ADSP frames by type.", "type", frames(snap.FramesIn))
	e.CounterVec("adasense_stream_frames_out_total",
		"Written outbound ADSP frames by type.", "type", frames(snap.FramesOut))
	e.Counter("adasense_stream_redirects_total",
		"Stream connections redirected to the device's owning replica.", snap.Redirects)
	e.Counter("adasense_stream_batcher_flushes_total",
		"Admission batcher runs (each executes one or more coalesced pushes).", snap.BatcherFlushes)
	e.Counter("adasense_stream_batcher_coalesced_total",
		"Pushes that rode an already-running batcher flush instead of starting one.", snap.BatcherCoalesced)
	e.Gauge("adasense_stream_batcher_occupancy",
		"Pushes admitted to the batcher queue but not yet executing.", float64(ss.batcher.Depth()))
}
