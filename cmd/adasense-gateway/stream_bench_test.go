package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"adasense"
	"adasense/internal/stream"
)

// benchServer starts one single-replica server for the capacity
// benchmarks: real HTTP listener, streaming ingress wired, no cluster.
func benchServer(b *testing.B) (*httptest.Server, *server) {
	b.Helper()
	gw, err := adasense.NewGateway(quickSystem(b),
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})))
	if err != nil {
		b.Fatal(err)
	}
	h := newServer(gw, nil)
	// Discard access logs: at info level every benched push would write
	// a log line, polluting the benchmark output CI parses.
	h.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)
	return ts, h
}

// BenchmarkStreamPushHTTPJSON is the baseline the streaming ingress is
// judged against: one device pushing one-second batches over the
// request/response surface — TCP+HTTP framing, JSON encode/decode and a
// fresh handler pass per push.
func BenchmarkStreamPushHTTPJSON(b *testing.B) {
	ts, _ := benchServer(b)
	raw := streamBatch(b)
	body, err := json.Marshal(batchJSON{Config: raw.Config.Name(), StartAt: raw.StartAt, X: raw.X, Y: raw.Y, Z: raw.Z})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	resp, err := client.Post(ts.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"id":"bench-http"}`)))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("open = %d", resp.StatusCode)
	}
	push := func() {
		resp, err := client.Post(ts.URL+"/v1/sessions/bench-http/push", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("push = %d", resp.StatusCode)
		}
	}
	// Warm the session's window and the connection pool so the loop
	// measures the steady state, like the stream benchmarks.
	for i := 0; i < 8; i++ {
		push()
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
	}
}

// benchStreamPush measures the ADSP steady state — one persistent
// connection, binary frames, reused buffers on both ends — against a
// live server, over whichever transport target points at.
func benchStreamPush(b *testing.B, target string) {
	b.Helper()
	raw := streamBatch(b)
	c, err := stream.Dial(context.Background(), target, "bench-adsp", "")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	m := stream.BatchMsg{Config: raw.Config, StartAt: raw.StartAt, X: raw.X, Y: raw.Y, Z: raw.Z}
	// Warm both ends' reused buffers (client frame/events scratch,
	// server decode scratch, session window) out of the timed loop.
	for i := 0; i < 8; i++ {
		if _, err := c.Push(raw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(stream.AppendFrame(nil, stream.FrameBatch, stream.AppendBatch(nil, &m)))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Push(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPushADSP drives the WebSocket-upgraded stream at
// GET /v1/stream.
func BenchmarkStreamPushADSP(b *testing.B) {
	ts, _ := benchServer(b)
	benchStreamPush(b, ts.URL)
}

// BenchmarkStreamPushADSPTCP drives the raw-TCP listener behind
// -stream-addr.
func BenchmarkStreamPushADSPTCP(b *testing.B) {
	_, h := benchServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go h.stream.Serve(ln)
	benchStreamPush(b, "tcp://"+ln.Addr().String())
}
