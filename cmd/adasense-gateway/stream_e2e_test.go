package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adasense"
	"adasense/internal/membership"
	"adasense/internal/stream"
)

// streamBatch samples one second of walking at the top configuration —
// the ADSP counterpart of wireBatch, kept as a real sensor batch since
// the stream client pushes the struct, not JSON.
func streamBatch(t testing.TB) *adasense.Batch {
	t.Helper()
	sched, err := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 30}})
	if err != nil {
		t.Fatal(err)
	}
	m := adasense.NewMotion(sched, 33)
	b := adasense.NewSampler(adasense.DefaultNoiseModel(), 34).
		Sample(m, adasense.ParetoStates()[0], 0, 1)
	return b
}

// devicesOwnedBy finds n distinct device ids the ring places on owner.
func devicesOwnedBy(t *testing.T, c *adasense.Cluster, owner, prefix string, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; len(ids) < n && i < 100000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if rep, _ := c.Route(id); rep.ID == owner {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		t.Fatalf("found only %d of %d devices hashing to %s", len(ids), n, owner)
	}
	return ids
}

// streamDev is one simulated device holding a persistent ADSP
// connection. Fields are only touched from the device's own goroutine
// (rounds are sequential), so no lock is needed.
type streamDev struct {
	id        string
	target    string // current dial target (ws base URL or tcp://addr)
	tcp       bool   // prefer the raw-TCP transport when retargeting
	c         *stream.Client
	acked     int
	redirects int
}

// TestStreamFleetRebalance is the streaming ingress end-to-end test: a
// mixed ws/raw-TCP device fleet holds persistent ADSP connections
// through a two-replica cluster, keeps pushing across a membership
// change that moves every device to one survivor, and finally watches
// the survivor drain. The invariants: misrouted connections are
// redirected (never proxied), no push is ever lost — every batch is
// acked, possibly after a redirect-and-redial — and a drain closes
// streams with an explicit goodbye rather than a dropped socket.
func TestStreamFleetRebalance(t *testing.T) {
	const (
		token       = "stream-secret"
		perRound    = 4
		maxAttempts = 200
	)

	// Two replicas discovered through a polled membership file, each
	// serving the HTTP surface (WebSocket upgrade included) plus a raw
	// ADSP listener — the -stream-addr path, minus the flag plumbing.
	names := []string{"gw-a", "gw-b"}
	servers := make(map[string]*httptest.Server, len(names))
	httpURL := make(map[string]string, len(names))
	tcpURL := make(map[string]string, len(names))
	tcpByHTTP := make(map[string]string, len(names))
	for _, n := range names {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		t.Cleanup(ts.Close)
		servers[n] = ts
		httpURL[n] = "http://" + ts.Listener.Addr().String()
	}
	path := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(members ...string) error {
		var b strings.Builder
		for _, m := range members {
			fmt.Fprintf(&b, "%s=%s\n", m, httpURL[m])
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err := writePeers("gw-a", "gw-b"); err != nil {
		t.Fatal(err)
	}

	handlers := make(map[string]*server, len(names))
	clusters := make(map[string]*adasense.Cluster, len(names))
	for _, n := range names {
		gw, err := adasense.NewGateway(quickSystem(t),
			adasense.WithAuth(token),
			adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
				return adasense.NewBaselineController()
			})))
		if err != nil {
			t.Fatal(err)
		}
		src, err := membership.NewFileSource(path, membership.WithPollInterval(3*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cluster, err := adasense.NewClusterWithSource(gw, n, src, adasense.WithPeerAuth(token))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		h := newServer(gw, cluster)
		handlers[n], clusters[n] = h, cluster
		servers[n].Config.Handler = h
		servers[n].Start()

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		tcpURL[n] = "tcp://" + ln.Addr().String()
		tcpByHTTP[httpURL[n]] = tcpURL[n]
		go handlers[n].stream.Serve(ln)
	}

	// The fleet: devices split evenly between the two owners, on both
	// transports, and half of them enter through the WRONG replica so
	// the redirect handshake is exercised from the first dial.
	idsA := devicesOwnedBy(t, clusters["gw-a"], "gw-a", "stream-dev-a", 5)
	idsB := devicesOwnedBy(t, clusters["gw-a"], "gw-b", "stream-dev-b", 5)
	var devs []*streamDev
	var wrongEntry int
	mkDev := func(id, owner string, i int) {
		d := &streamDev{id: id, tcp: i%2 == 1}
		entry := owner
		if i%2 == 0 { // every ws device starts at the wrong replica
			if entry = "gw-a"; owner == "gw-a" {
				entry = "gw-b"
			}
			wrongEntry++
		}
		if d.tcp {
			d.target = tcpURL[entry]
		} else {
			d.target = httpURL[entry]
		}
		devs = append(devs, d)
	}
	for i, id := range idsA {
		mkDev(id, "gw-a", i)
	}
	for i, id := range idsB {
		mkDev(id, "gw-b", i)
	}

	batch := streamBatch(t)
	var redirects atomic.Int64
	ctx := context.Background()

	retarget := func(d *streamDev, url string) {
		if d.tcp {
			if tcp, ok := tcpByHTTP[url]; ok {
				d.target = tcp
				return
			}
		}
		d.target = url
	}
	// pushOnce lands one batch, absorbing redirects, handoffs and
	// transient refusals. A push is never given up: an ack is the only
	// exit, so "no pushes lost" is the loop terminating at all.
	pushOnce := func(d *streamDev) {
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if d.c == nil {
				c, err := stream.Dial(ctx, d.target, d.id, token)
				if err != nil {
					var g *stream.GoodbyeError
					if errors.As(err, &g) && g.Code == stream.CodeRedirect && g.Redirect != nil {
						redirects.Add(1)
						d.redirects++
						retarget(d, g.Redirect.ReplicaURL)
						continue
					}
					time.Sleep(2 * time.Millisecond)
					continue
				}
				d.c = c
			}
			_, err := d.c.Push(batch)
			if err == nil {
				d.acked++
				return
			}
			var g *stream.GoodbyeError
			var se *stream.ServerError
			switch {
			case errors.As(err, &g):
				// The server closed the stream: a redirect retargets, a
				// handoff or drain re-dials wherever we last pointed.
				d.c = nil
				if g.Code == stream.CodeRedirect && g.Redirect != nil {
					redirects.Add(1)
					d.redirects++
					retarget(d, g.Redirect.ReplicaURL)
				}
			case errors.As(err, &se):
				// Per-batch refusal (rate limit mid-burst): the
				// connection survives, back off and resend.
				time.Sleep(5 * time.Millisecond)
			default:
				// Transport failure: drop the connection and re-dial.
				d.c.Close()
				d.c = nil
				time.Sleep(2 * time.Millisecond)
			}
		}
		t.Errorf("device %s: push not acked after %d attempts", d.id, maxAttempts)
	}
	startRound := func() *sync.WaitGroup {
		var wg sync.WaitGroup
		for _, d := range devs {
			wg.Add(1)
			go func(d *streamDev) {
				defer wg.Done()
				for i := 0; i < perRound; i++ {
					pushOnce(d)
				}
			}(d)
		}
		return &wg
	}

	// Round 1: steady state on two replicas.
	startRound().Wait()

	// Round 2 runs WHILE the membership change lands: gw-b leaves, so
	// every device it owned is swept mid-round and must follow a
	// redirect to gw-a without losing a push.
	wg := startRound()
	if err := writePeers("gw-a"); err != nil {
		t.Error(err)
	}
	wg.Wait()

	// Round 3: after both replicas converge on the single-member view,
	// all traffic must land on gw-a.
	deadline := time.Now().Add(10 * time.Second)
	probe := idsB[0]
	for !clusters["gw-a"].Owns(probe) || clusters["gw-b"].Owns(probe) {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for membership change to converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	startRound().Wait()

	for _, d := range devs {
		if d.acked != 3*perRound {
			t.Errorf("device %s: %d of %d pushes acked", d.id, d.acked, 3*perRound)
		}
	}
	// Every wrong-entry device was redirected at its first dial, and
	// every gw-b device was redirected by the rebalance — on a live
	// connection, not just at the door.
	if got := redirects.Load(); got < int64(wrongEntry) {
		t.Errorf("observed %d client redirects, want at least %d", got, wrongEntry)
	}
	for _, d := range devs {
		if strings.HasPrefix(d.id, "stream-dev-b") && d.redirects == 0 {
			t.Errorf("device %s never saw a redirect despite its owner leaving", d.id)
		}
	}

	// Drain gw-a. Live streams get a goodbye; a connection arriving
	// after shutdown is refused with CodeDraining at the door — read
	// without writing so the refusal cannot race a reset.
	pre := scrapeMetrics(t, servers["gw-a"].URL)
	if pre["adasense_stream_connections"] < 1 {
		t.Errorf("stream connections gauge = %v before drain, want >= 1", pre["adasense_stream_connections"])
	}
	if pre["adasense_stream_redirects_total"] < 1 {
		t.Errorf("gw-a stream redirects counter = %v, want >= 1", pre["adasense_stream_redirects_total"])
	}
	handlers["gw-a"].stream.Shutdown()
	for _, d := range devs {
		if d.c == nil {
			continue
		}
		_, err := d.c.Push(batch)
		if err == nil {
			t.Errorf("device %s: push succeeded after drain", d.id)
		} else if g := new(stream.GoodbyeError); errors.As(err, &g) && g.Code != stream.CodeDraining {
			t.Errorf("device %s: drain goodbye code = %s, want %s", d.id, g.Code, stream.CodeDraining)
		}
		d.c.Close()
	}
	refused, err := net.Dial("tcp", strings.TrimPrefix(tcpURL["gw-a"], "tcp://"))
	if err != nil {
		t.Fatal(err)
	}
	defer refused.Close()
	f, err := stream.NewReader(refused).Next()
	if err != nil {
		t.Fatalf("reading post-drain refusal: %v", err)
	}
	if f.Type != stream.FrameGoodbye {
		t.Fatalf("post-drain frame = %s, want goodbye", f.Type)
	}
	if g, err := stream.DecodeGoodbye(f.Payload); err != nil || g.Code != stream.CodeDraining {
		t.Fatalf("post-drain goodbye = %+v (%v), want code %s", g, err, stream.CodeDraining)
	}
	post := scrapeMetrics(t, servers["gw-a"].URL)
	if post["adasense_stream_connections"] != 0 {
		t.Errorf("stream connections gauge = %v after drain, want 0", post["adasense_stream_connections"])
	}
}
