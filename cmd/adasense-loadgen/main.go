// Command adasense-loadgen drives a synthetic wearable fleet against a
// running adasense gateway cluster and reports what the serving path
// actually sustained: per-route latency quantiles, error counts,
// achieved vs offered throughput, and — when run as a rate ramp — a
// knee-finding capacity estimate.
//
// Usage:
//
//	adasense-loadgen -targets http://gw-a:8734,http://gw-b:8734
//	                 [-transport http] [-token ""] [-devices 50]
//	                 [-cohorts elderly:0.35,rehab:0.25,medium:0.2,drift:0.1,burst:0.1]
//	                 [-rate 50] [-duration 30s] [-events 0]
//	                 [-ramp ""] [-batch-sec 2] [-horizon 3600]
//	                 [-seed 1] [-workers 64] [-attempts 3]
//	                 [-open-first] [-timeout 10s] [-out -] [-strict]
//
// Each synthetic device follows an internal/synth cohort schedule
// (elderly, rehab, medium, high, low, drift, burst — see docs/loadgen.md
// for the grammar), opens a session, and pushes sensor batches paced
// open-loop at the offered rate, adapting its sensor config to whatever
// the gateway directs — the paper's adaptive loop, at fleet scale.
//
// -transport stream replaces the JSON request per push with one
// persistent ADSP connection per device (WebSocket at /v1/stream, or
// the raw framing for tcp:// targets) — see docs/streaming.md. Redirect
// goodbyes are followed to the owning replica automatically.
//
// A ramp like -ramp 50:30s,100:30s,200:30s runs phases at increasing
// offered rates and estimates the capacity knee from where goodput
// degrades. -events N replaces wall-clock phase lengths with a fixed
// offered-push budget, which makes CI smokes deterministic.
//
// With -strict the exit code is 2 unless every offered push got a 2xx
// (no shed, lost, 4xx/429/5xx, or transport errors) and the report
// validates — the CI smoke contract. The JSON report goes to -out
// (default stdout).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adasense/internal/loadgen"
)

// version is stamped by the release build:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/adasense-loadgen
var version = "dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("adasense-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets     = fs.String("targets", "", "comma-separated gateway base URLs (required)")
		transport   = fs.String("transport", "http", "wire transport: http (JSON per push) or stream (persistent ADSP connections)")
		token       = fs.String("token", os.Getenv("ADASENSE_TOKEN"), "bearer token sent on every request")
		devices     = fs.Int("devices", 50, "synthetic fleet size")
		cohorts     = fs.String("cohorts", "", "cohort mix as name:weight,... (default: the standard mixed fleet)")
		rate        = fs.Float64("rate", 50, "offered pushes/sec fleet-wide (single-phase runs)")
		duration    = fs.Duration("duration", 30*time.Second, "single-phase run length")
		events      = fs.Int("events", 0, "fixed offered-push budget; overrides -duration when > 0")
		ramp        = fs.String("ramp", "", "rate ramp as rate:duration,... (e.g. 50:30s,100:30s); overrides -rate/-duration")
		batchSec    = fs.Float64("batch-sec", 2, "signal seconds per pushed batch")
		horizon     = fs.Float64("horizon", 3600, "seconds of schedule generated per device (signal clock wraps)")
		seed        = fs.Uint64("seed", 1, "master RNG seed; equal seeds reproduce the fleet byte-for-byte")
		workers     = fs.Int("workers", 64, "max concurrent in-flight requests (busy slots shed, not queue)")
		attempts    = fs.Int("attempts", 3, "attempts per push (retries cover 5xx/429/transport and re-open on 404/410)")
		openFirst   = fs.Bool("open-first", true, "open every session before pacing starts")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
		out         = fs.String("out", "-", "report destination file; - = stdout")
		strict      = fs.Bool("strict", false, "exit 2 unless every offered push succeeded and the report validates")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *showVersion {
		fmt.Fprintln(stdout, "adasense-loadgen", version)
		return 0
	}
	if *targets == "" {
		fmt.Fprintln(stderr, "adasense-loadgen: -targets is required")
		fs.Usage()
		return 1
	}

	mix, err := parseMix(*cohorts)
	if err != nil {
		fmt.Fprintln(stderr, "adasense-loadgen:", err)
		return 1
	}
	phases, err := parsePhases(*ramp, *rate, *duration, *events)
	if err != nil {
		fmt.Fprintln(stderr, "adasense-loadgen:", err)
		return 1
	}

	runner, err := loadgen.NewRunner(loadgen.Config{
		Targets:     splitList(*targets),
		Transport:   *transport,
		Token:       *token,
		Devices:     *devices,
		Mix:         mix,
		BatchSec:    *batchSec,
		HorizonSec:  *horizon,
		Seed:        *seed,
		Phases:      phases,
		Workers:     *workers,
		MaxAttempts: *attempts,
		OpenFirst:   *openFirst,
		Client:      &http.Client{Timeout: *timeout},
	})
	if err != nil {
		fmt.Fprintln(stderr, "adasense-loadgen:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	report, runErr := runner.Run(ctx)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "adasense-loadgen: encoding report:", err)
		return 1
	}
	if *out == "-" || *out == "" {
		fmt.Fprintln(stdout, string(enc))
	} else if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "adasense-loadgen: writing report:", err)
		return 1
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "adasense-loadgen: run interrupted:", runErr)
		return 1
	}
	if *strict {
		if err := strictCheck(report); err != nil {
			fmt.Fprintln(stderr, "adasense-loadgen: strict:", err)
			return 2
		}
	}
	return 0
}

// strictCheck enforces the CI smoke contract: a validating report in
// which every offered push got a 2xx and nothing was shed or retried
// into an error.
func strictCheck(r *loadgen.Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	t := r.Totals
	if t.Offered == 0 {
		return fmt.Errorf("no pushes were offered")
	}
	bad := t.Shed + t.Lost + t.Status429 + t.Status4xx + t.Status5xx + t.Transport +
		r.Preopened.Status429 + r.Preopened.Status4xx + r.Preopened.Status5xx + r.Preopened.Transport
	if bad != 0 {
		return fmt.Errorf("non-clean run: shed=%d lost=%d 4xx=%d 429=%d 5xx=%d transport=%d (preopen errors included)",
			t.Shed, t.Lost, t.Status4xx, t.Status429, t.Status5xx, t.Transport)
	}
	if t.PushOK != t.Offered {
		return fmt.Errorf("push_2xx=%d != offered=%d", t.PushOK, t.Offered)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseMix parses the cohort grammar "name:weight,name:weight,...".
// Empty input selects the default mixed fleet.
func parseMix(s string) ([]loadgen.Cohort, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil // NewRunner substitutes DefaultMix
	}
	var mix []loadgen.Cohort
	for _, part := range splitList(s) {
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad cohort %q: want name:weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad cohort weight in %q", part)
		}
		mix = append(mix, loadgen.Cohort{Name: strings.TrimSpace(name), Weight: w})
	}
	return mix, nil
}

// parsePhases builds the pacing plan: either the -ramp grammar
// "rate:duration,..." or a single phase from -rate with -duration or a
// fixed -events budget.
func parsePhases(ramp string, rate float64, duration time.Duration, events int) ([]loadgen.Phase, error) {
	if strings.TrimSpace(ramp) == "" {
		ph := loadgen.Phase{Rate: rate}
		if events > 0 {
			ph.Events = events
		} else {
			ph.Duration = duration
		}
		return []loadgen.Phase{ph}, nil
	}
	var phases []loadgen.Phase
	for _, part := range splitList(ramp) {
		rstr, dstr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad ramp phase %q: want rate:duration", part)
		}
		r, err := strconv.ParseFloat(rstr, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad ramp rate in %q", part)
		}
		d, err := time.ParseDuration(dstr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad ramp duration in %q", part)
		}
		phases = append(phases, loadgen.Phase{Rate: r, Duration: d})
	}
	return phases, nil
}
