package main

import (
	"reflect"
	"testing"
	"time"

	"adasense/internal/loadgen"
)

func TestParseMix(t *testing.T) {
	got, err := parseMix("elderly:2, rehab:1,burst:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Cohort{
		{Name: "elderly", Weight: 2},
		{Name: "rehab", Weight: 1},
		{Name: "burst", Weight: 0.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMix = %+v, want %+v", got, want)
	}
	if got, err := parseMix(""); err != nil || got != nil {
		t.Fatalf("empty mix = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"elderly", "elderly:x", "elderly:-1", ":1"} {
		if _, err := parseMix(bad); err == nil && bad != ":1" {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

func TestParsePhases(t *testing.T) {
	got, err := parsePhases("50:10s,100:30s", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Phase{
		{Rate: 50, Duration: 10 * time.Second},
		{Rate: 100, Duration: 30 * time.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsePhases = %+v, want %+v", got, want)
	}

	got, err = parsePhases("", 25, 5*time.Second, 0)
	if err != nil || len(got) != 1 || got[0].Rate != 25 || got[0].Duration != 5*time.Second {
		t.Fatalf("single phase = %+v, %v", got, err)
	}
	got, err = parsePhases("", 25, 5*time.Second, 400)
	if err != nil || got[0].Events != 400 || got[0].Duration != 0 {
		t.Fatalf("event-budget phase = %+v, %v", got, err)
	}
	for _, bad := range []string{"50", "x:10s", "50:xs", "-1:10s", "50:-10s"} {
		if _, err := parsePhases(bad, 0, 0, 0); err == nil {
			t.Fatalf("parsePhases(%q) accepted", bad)
		}
	}
}

func TestStrictCheck(t *testing.T) {
	clean := &loadgen.Report{
		Phases: []loadgen.PhaseReport{{
			Counts: loadgen.Counts{Offered: 10, PushOK: 10},
			Routes: map[string]loadgen.RouteStats{"push": {Count: 10}},
		}},
		Routes: map[string]loadgen.RouteStats{"push": {Count: 10}},
		Totals: loadgen.Counts{Offered: 10, PushOK: 10},
	}
	if err := strictCheck(clean); err != nil {
		t.Fatalf("clean report rejected: %v", err)
	}
	dirty := *clean
	dirty.Totals = loadgen.Counts{Offered: 10, PushOK: 9, Lost: 1, Status5xx: 1}
	if err := strictCheck(&dirty); err == nil {
		t.Fatal("lossy report accepted")
	}
	empty := *clean
	empty.Totals = loadgen.Counts{}
	if err := strictCheck(&empty); err == nil {
		t.Fatal("empty run accepted")
	}
}
