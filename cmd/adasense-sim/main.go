// Command adasense-sim runs the closed sensing/classification/control
// loop over a synthetic user and reports recognition accuracy, energy and
// per-configuration dwell. It can load a model trained by adasense-train
// (either the versioned container or the legacy raw-network format) or
// train a quick one on the fly.
//
// Usage:
//
//	adasense-sim [-model model.bin] [-controller spot|spot-conf|baseline]
//	             [-threshold 10] [-duration 600] [-setting medium|high|low|sitwalk]
//	             [-repeats 1] [-parallel 0] [-seed 1] [-csv trace.csv]
//
// With -repeats > 1 the same workload setting is re-drawn with distinct
// seeds and fanned across workers through Service.RunMany; the report
// then aggregates the runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"adasense"
	"adasense/internal/trace"
)

func main() {
	model := flag.String("model", "", "model file from adasense-train (empty: train a quick model)")
	controller := flag.String("controller", "spot-conf", "controller: spot, spot-conf or baseline")
	threshold := flag.Int("threshold", 10, "SPOT stability threshold (seconds)")
	duration := flag.Float64("duration", 600, "simulated duration (seconds)")
	setting := flag.String("setting", "medium", "workload: high, medium, low or sitwalk")
	repeats := flag.Int("repeats", 1, "independent runs to aggregate")
	parallel := flag.Int("parallel", 0, "worker goroutines for -repeats (0: GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write the recorded trace as CSV (first run only)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *model, *controller, *threshold, *duration, *setting, *repeats, *parallel, *seed, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-sim:", err)
		os.Exit(1)
	}
}

func loadOrTrain(model string, seed uint64) (*adasense.System, error) {
	if model == "" {
		fmt.Fprintln(os.Stderr, "no -model given; training a quick classifier...")
		sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 2400, Epochs: 40, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "quick classifier held-out accuracy: %.1f%%\n", 100*acc)
		return sys, nil
	}
	f, err := os.Open(model)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return adasense.LoadSystem(f)
}

func schedule(setting string, duration float64, seed uint64) (*adasense.Schedule, error) {
	switch setting {
	case "high":
		return adasense.SettingSchedule(seed, adasense.HighChange, duration), nil
	case "medium":
		return adasense.SettingSchedule(seed, adasense.MediumChange, duration), nil
	case "low":
		return adasense.SettingSchedule(seed, adasense.LowChange, duration), nil
	case "sitwalk":
		half := duration / 2
		return adasense.NewSchedule([]adasense.Segment{
			{Activity: adasense.Sit, Duration: half},
			{Activity: adasense.Walk, Duration: half},
		})
	default:
		return nil, fmt.Errorf("unknown setting %q", setting)
	}
}

func run(ctx context.Context, model, controller string, threshold int, duration float64, setting string, repeats, parallel int, seed uint64, csvPath string) error {
	sys, err := loadOrTrain(model, seed)
	if err != nil {
		return err
	}

	factory, err := controllerFactory(controller, threshold)
	if err != nil {
		return err
	}
	svc, err := adasense.NewService(sys, adasense.WithControllerFactory(factory))
	if err != nil {
		return err
	}

	if repeats < 1 {
		repeats = 1
	}
	specs := make([]adasense.RunSpec, repeats)
	for i := range specs {
		runSeed := seed + uint64(i)*1000
		sched, err := schedule(setting, duration, runSeed+1)
		if err != nil {
			return err
		}
		specs[i] = adasense.RunSpec{
			Motion: adasense.NewMotion(sched, runSeed+2),
			Seed:   runSeed + 3,
			Record: csvPath != "" && i == 0,
		}
	}

	results, err := svc.RunMany(ctx, specs, parallel)
	if err != nil {
		return err
	}

	report(results)
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var rec *trace.Recorder = results[0].Recorder
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", csvPath)
	}
	return nil
}

func controllerFactory(name string, threshold int) (func() adasense.Controller, error) {
	switch name {
	case "spot":
		return func() adasense.Controller { return adasense.NewSPOT(threshold) }, nil
	case "spot-conf":
		return func() adasense.Controller { return adasense.NewSPOTWithConfidence(threshold) }, nil
	case "baseline":
		return func() adasense.Controller { return adasense.NewBaselineController() }, nil
	default:
		return nil, fmt.Errorf("unknown controller %q", name)
	}
}

func report(results []adasense.SimulationResult) {
	var durSec, acc, sensorUA, mcuUA, chargeUC float64
	ticks := 0
	dwell := map[string]float64{}
	for _, res := range results {
		durSec += res.DurationSec
		acc += res.Accuracy()
		sensorUA += res.AvgSensorCurrentUA
		mcuUA += res.AvgMCUCurrentUA
		chargeUC += res.SensorChargeUC
		ticks += res.Ticks
		for name, d := range res.ConfigDwellSec {
			dwell[name] += d
		}
	}
	n := float64(len(results))
	if len(results) > 1 {
		fmt.Printf("aggregated over %d runs\n", len(results))
	}
	fmt.Printf("duration:            %.0f s (%d classification ticks)\n", durSec, ticks)
	fmt.Printf("recognition accuracy: %.2f%%\n", 100*acc/n)
	fmt.Printf("avg sensor current:   %.1f uA (baseline 180.0)\n", sensorUA/n)
	fmt.Printf("avg MCU current:      %.1f uA\n", mcuUA/n)
	fmt.Printf("sensor charge:        %.0f uC\n", chargeUC)
	fmt.Println("configuration dwell:")
	for _, cfg := range adasense.TableI() {
		if d, ok := dwell[cfg.Name()]; ok {
			fmt.Printf("  %-13s %7.0f s (%4.1f%%)\n", cfg.Name(), d, 100*d/durSec)
		}
	}
	fmt.Println("\nconfusion matrix (last run):")
	fmt.Print(results[len(results)-1].Confusion.String())
}
