// Command adasense-sim runs the closed sensing/classification/control
// loop over a synthetic user and reports recognition accuracy, energy and
// per-configuration dwell. It can load a model trained by adasense-train
// or train a quick one on the fly.
//
// Usage:
//
//	adasense-sim [-model model.bin] [-controller spot|spot-conf|baseline]
//	             [-threshold 10] [-duration 600] [-setting medium|high|low|sitwalk]
//	             [-seed 1] [-csv trace.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"adasense"
	"adasense/internal/trace"
)

func main() {
	model := flag.String("model", "", "model file from adasense-train (empty: train a quick model)")
	controller := flag.String("controller", "spot-conf", "controller: spot, spot-conf or baseline")
	threshold := flag.Int("threshold", 10, "SPOT stability threshold (seconds)")
	duration := flag.Float64("duration", 600, "simulated duration (seconds)")
	setting := flag.String("setting", "medium", "workload: high, medium, low or sitwalk")
	seed := flag.Uint64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write the recorded trace as CSV")
	flag.Parse()

	if err := run(*model, *controller, *threshold, *duration, *setting, *seed, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-sim:", err)
		os.Exit(1)
	}
}

func loadOrTrain(model string, seed uint64) (*adasense.System, error) {
	if model == "" {
		fmt.Fprintln(os.Stderr, "no -model given; training a quick classifier...")
		sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 2400, Epochs: 40, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "quick classifier held-out accuracy: %.1f%%\n", 100*acc)
		return sys, nil
	}
	f, err := os.Open(model)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return adasense.LoadSystem(f)
}

func run(model, controller string, threshold int, duration float64, setting string, seed uint64, csvPath string) error {
	sys, err := loadOrTrain(model, seed)
	if err != nil {
		return err
	}
	pipe, err := sys.NewPipeline()
	if err != nil {
		return err
	}

	var sched *adasense.Schedule
	switch setting {
	case "high":
		sched = adasense.SettingSchedule(seed+1, adasense.HighChange, duration)
	case "medium":
		sched = adasense.SettingSchedule(seed+1, adasense.MediumChange, duration)
	case "low":
		sched = adasense.SettingSchedule(seed+1, adasense.LowChange, duration)
	case "sitwalk":
		half := duration / 2
		sched, err = adasense.NewSchedule([]adasense.Segment{
			{Activity: adasense.Sit, Duration: half},
			{Activity: adasense.Walk, Duration: half},
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown setting %q", setting)
	}

	var ctl adasense.Controller
	switch controller {
	case "spot":
		ctl = adasense.NewSPOT(threshold)
	case "spot-conf":
		ctl = adasense.NewSPOTWithConfidence(threshold)
	case "baseline":
		ctl = adasense.NewBaselineController()
	default:
		return fmt.Errorf("unknown controller %q", controller)
	}

	res, err := adasense.Simulate(adasense.SimulationSpec{
		Motion:     adasense.NewMotion(sched, seed+2),
		Controller: ctl,
		Classifier: pipe,
		Record:     csvPath != "",
	}, seed+3)
	if err != nil {
		return err
	}

	fmt.Printf("duration:            %.0f s (%d classification ticks)\n", res.DurationSec, res.Ticks)
	fmt.Printf("recognition accuracy: %.2f%%\n", 100*res.Accuracy())
	fmt.Printf("avg sensor current:   %.1f uA (baseline 180.0)\n", res.AvgSensorCurrentUA)
	fmt.Printf("avg MCU current:      %.1f uA\n", res.AvgMCUCurrentUA)
	fmt.Printf("sensor charge:        %.0f uC\n", res.SensorChargeUC)
	fmt.Println("configuration dwell:")
	for _, cfg := range adasense.TableI() {
		if dwell, ok := res.ConfigDwellSec[cfg.Name()]; ok {
			fmt.Printf("  %-13s %7.0f s (%4.1f%%)\n", cfg.Name(), dwell, 100*dwell/res.DurationSec)
		}
	}
	fmt.Println("\nconfusion matrix:")
	fmt.Print(res.Confusion.String())

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var rec *trace.Recorder = res.Recorder
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", csvPath)
	}
	return nil
}
