// Command adasense-train trains the shared activity classifier on a
// synthetic corpus spanning the four Pareto sensor configurations and
// saves it as a versioned model container (feature layout + compact
// float32 weights) that adasense.LoadSystem reads back.
//
// Usage:
//
//	adasense-train -out model.bin [-windows 7300] [-hidden 32] [-epochs 60]
//	               [-seed 1] [-legacy]
//
// -legacy writes the pre-container raw-network format for compatibility
// testing with older readers.
package main

import (
	"flag"
	"fmt"
	"os"

	"adasense"
)

func main() {
	out := flag.String("out", "adasense-model.bin", "output model path")
	windows := flag.Int("windows", 7300, "training corpus size (windows)")
	hidden := flag.Int("hidden", 32, "hidden layer width")
	epochs := flag.Int("epochs", 60, "training epochs")
	seed := flag.Uint64("seed", 1, "random seed")
	legacy := flag.Bool("legacy", false, "write the legacy raw-network format instead of the container")
	flag.Parse()

	if err := run(*out, *windows, *hidden, *epochs, *seed, *legacy); err != nil {
		fmt.Fprintln(os.Stderr, "adasense-train:", err)
		os.Exit(1)
	}
}

func run(out string, windows, hidden, epochs int, seed uint64, legacy bool) error {
	fmt.Fprintf(os.Stderr, "training on %d windows across %d configurations...\n",
		windows, len(adasense.ParetoStates()))
	sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{
		Windows: windows,
		Hidden:  hidden,
		Epochs:  epochs,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	format := "versioned container"
	if legacy {
		format = "legacy raw network"
		_, err = sys.Network.WriteTo(f)
	} else {
		err = sys.Save(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("model: %s (%s)\n", out, format)
	fmt.Printf("held-out accuracy: %.2f%%\n", 100*acc)
	fmt.Printf("classifier size:   %d bytes (float32)\n", sys.Network.WeightBytes(4))
	return f.Close()
}
