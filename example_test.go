package adasense_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"adasense"
)

// exampleSystem trains a small shared classifier; examples keep the
// corpus tiny so `go test` stays fast.
func exampleSystem() (*adasense.System, error) {
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{
		Windows: 600, Epochs: 8, Seed: 7,
	})
	return sys, err
}

// exampleBatch samples secs seconds of walking at the top sensor
// configuration.
func exampleBatch(secs float64) *adasense.Batch {
	sched, _ := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 60}})
	motion := adasense.NewMotion(sched, 11)
	return adasense.NewSampler(adasense.DefaultNoiseModel(), 12).
		Sample(motion, adasense.ParetoStates()[0], 0, secs)
}

// ExampleGateway walks the fleet front end through its lifecycle: open a
// device session, push raw readings, hot-swap the model, migrate, and
// drain for shutdown.
func ExampleGateway() {
	sys, err := exampleSystem()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	// Pin the fleet at the top configuration so the example's one batch
	// stays valid; production fleets use the default adaptive policy.
	gw, err := adasense.NewGateway(sys,
		adasense.WithMaxSessions(1000),
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})),
		adasense.WithDrainTimeout(10*time.Second),
	)
	if err != nil {
		fmt.Println("gateway:", err)
		return
	}

	sess, err := gw.Open("wrist-7")
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	fmt.Println("config:", sess.Config().Name())

	// Two seconds of readings at a 1 s hop complete two windows.
	events, err := sess.Push(exampleBatch(2))
	if err != nil {
		fmt.Println("push:", err)
		return
	}
	fmt.Println("events:", len(events))

	// Hot-swap a retrained model: new sessions serve it immediately,
	// live sessions keep their pinned model until they Migrate.
	if err := gw.SwapModel(sys); err != nil {
		fmt.Println("swap:", err)
		return
	}
	fmt.Println("swaps:", gw.Stats().ModelSwaps)
	if err := sess.Migrate(); err != nil {
		fmt.Println("migrate:", err)
		return
	}

	// Graceful shutdown: no new opens, live sessions closed.
	if err := gw.Drain(context.Background()); err != nil {
		fmt.Println("drain:", err)
		return
	}
	fmt.Println("live after drain:", gw.NumSessions())
	_, err = gw.Open("latecomer")
	fmt.Println("open while draining:", errors.Is(err, adasense.ErrGatewayDraining))

	// Output:
	// config: F100_A128
	// events: 2
	// swaps: 1
	// live after drain: 0
	// open while draining: true
}

// ExampleService_RunMany fans closed-loop simulations across workers;
// results are deterministic per (spec, seed) and arrive in spec order.
func ExampleService_RunMany() {
	sys, err := exampleSystem()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		fmt.Println("service:", err)
		return
	}

	sched, _ := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 20}})
	motion := adasense.NewMotion(sched, 3)
	specs := []adasense.RunSpec{
		{Motion: motion, Seed: 1},
		{Motion: motion, Seed: 2},
		{Motion: motion, Seed: 3},
	}
	results, err := svc.RunMany(context.Background(), specs, 2)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("runs:", len(results))
	for i, r := range results {
		fmt.Printf("run %d: %.0f s, %d ticks\n", i, r.DurationSec, r.Ticks)
	}

	// Output:
	// runs: 3
	// run 0: 20 s, 20 ticks
	// run 1: 20 s, 20 ticks
	// run 2: 20 s, 20 ticks
}
