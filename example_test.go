package adasense_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"adasense"
)

// exampleSystem trains a small shared classifier; examples keep the
// corpus tiny so `go test` stays fast.
func exampleSystem() (*adasense.System, error) {
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{
		Windows: 600, Epochs: 8, Seed: 7,
	})
	return sys, err
}

// exampleBatch samples secs seconds of walking at the top sensor
// configuration.
func exampleBatch(secs float64) *adasense.Batch {
	sched, _ := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 60}})
	motion := adasense.NewMotion(sched, 11)
	return adasense.NewSampler(adasense.DefaultNoiseModel(), 12).
		Sample(motion, adasense.ParetoStates()[0], 0, secs)
}

// ExampleGateway walks the fleet front end through its lifecycle: open a
// device session, push raw readings, hot-swap the model, migrate, and
// drain for shutdown.
func ExampleGateway() {
	sys, err := exampleSystem()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	// Pin the fleet at the top configuration so the example's one batch
	// stays valid; production fleets use the default adaptive policy.
	gw, err := adasense.NewGateway(sys,
		adasense.WithMaxSessions(1000),
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})),
		adasense.WithDrainTimeout(10*time.Second),
	)
	if err != nil {
		fmt.Println("gateway:", err)
		return
	}

	sess, err := gw.Open("wrist-7")
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	fmt.Println("config:", sess.Config().Name())

	// Two seconds of readings at a 1 s hop complete two windows.
	events, err := sess.Push(exampleBatch(2))
	if err != nil {
		fmt.Println("push:", err)
		return
	}
	fmt.Println("events:", len(events))

	// Hot-swap a retrained model: new sessions serve it immediately,
	// live sessions keep their pinned model until they Migrate.
	if err := gw.SwapModel(sys); err != nil {
		fmt.Println("swap:", err)
		return
	}
	fmt.Println("swaps:", gw.Stats().ModelSwaps)
	if err := sess.Migrate(); err != nil {
		fmt.Println("migrate:", err)
		return
	}

	// Graceful shutdown: no new opens, live sessions closed.
	if err := gw.Drain(context.Background()); err != nil {
		fmt.Println("drain:", err)
		return
	}
	fmt.Println("live after drain:", gw.NumSessions())
	_, err = gw.Open("latecomer")
	fmt.Println("open while draining:", errors.Is(err, adasense.ErrGatewayDraining))

	// Output:
	// config: F100_A128
	// events: 2
	// swaps: 1
	// live after drain: 0
	// open while draining: true
}

// ExampleCluster federates two gateway replicas: a consistent-hash ring
// deterministically splits the device fleet between them, and one
// SwapModel replicates a retrained model to every replica. The peer here
// is a test server applying uploads to its own gateway; production peers
// run cmd/adasense-gateway with -self plus either a static -peers list
// (used here via NewCluster) or a polled -peers-file, which drives the
// ring from a membership source (NewClusterWithSource) and rebalances
// the fleet live — the membership generation below advances with every
// applied change.
func ExampleCluster() {
	sys, err := exampleSystem()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	gwA, errA := adasense.NewGateway(sys)
	gwB, errB := adasense.NewGateway(sys)
	if errA != nil || errB != nil {
		fmt.Println("gateways:", errA, errB)
		return
	}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sys, err := adasense.LoadSystem(r.Body)
		if err == nil {
			err = gwB.SwapModel(sys)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer peer.Close()

	cluster, err := adasense.NewCluster(gwA, "gw-a", []adasense.Replica{
		{ID: "gw-a"},
		{ID: "gw-b", URL: peer.URL},
	})
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}

	// Placement is a pure function of the member set: every replica
	// computes the same owner for every device, so misdirected requests
	// need exactly one forwarding hop. A static membership stays at
	// generation 1; a source-driven one advances on every rebalance.
	fmt.Println("membership generation:", cluster.Generation())
	for _, device := range []string{"wrist-3", "wrist-4", "wrist-5"} {
		owner, local := cluster.Route(device)
		fmt.Printf("%s -> %s (local %v)\n", device, owner.ID, local)
	}

	// One model push retrains the whole fleet, with per-replica results.
	var model bytes.Buffer
	if err := sys.Save(&model); err != nil {
		fmt.Println("save:", err)
		return
	}
	results, err := cluster.SwapModel(context.Background(), model.Bytes())
	if err != nil {
		fmt.Println("swap:", err)
		return
	}
	for _, res := range results {
		fmt.Printf("%s: swapped on attempt %d\n", res.Replica, res.Attempts)
	}
	fmt.Println("fleet swaps:", gwA.Stats().ModelSwaps+gwB.Stats().ModelSwaps)

	// Output:
	// membership generation: 1
	// wrist-3 -> gw-b (local false)
	// wrist-4 -> gw-a (local true)
	// wrist-5 -> gw-b (local false)
	// gw-a: swapped on attempt 1
	// gw-b: swapped on attempt 1
	// fleet swaps: 2
}

// ExampleService_RunMany fans closed-loop simulations across workers;
// results are deterministic per (spec, seed) and arrive in spec order.
func ExampleService_RunMany() {
	sys, err := exampleSystem()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		fmt.Println("service:", err)
		return
	}

	sched, _ := adasense.NewSchedule([]adasense.Segment{{Activity: adasense.Walk, Duration: 20}})
	motion := adasense.NewMotion(sched, 3)
	specs := []adasense.RunSpec{
		{Motion: motion, Seed: 1},
		{Motion: motion, Seed: 2},
		{Motion: motion, Seed: 3},
	}
	results, err := svc.RunMany(context.Background(), specs, 2)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("runs:", len(results))
	for i, r := range results {
		fmt.Printf("run %d: %.0f s, %d ticks\n", i, r.DurationSec, r.Ticks)
	}

	// Output:
	// runs: 3
	// run 0: 20 s, 20 ticks
	// run 1: 20 s, 20 ticks
	// run 2: 20 s, 20 ticks
}
