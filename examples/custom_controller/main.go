// Custom_controller shows how to plug a user-defined adaptation policy
// into the framework through the Controller interface, and races it
// against SPOT on the same workload.
//
// The custom policy is a hysteresis two-state controller: it drops
// straight to the floor configuration after K consecutive stable
// classifications and returns to full power on any change — simpler than
// SPOT (no intermediate states), trading accuracy for a faster descent.
package main

import (
	"fmt"
	"log"

	"adasense"
)

// twoState is the custom policy. It implements adasense.Controller.
type twoState struct {
	high, low adasense.Config
	holdTicks int

	stable  int
	last    adasense.Activity
	hasLast bool
	atLow   bool
}

func newTwoState(holdTicks int) *twoState {
	states := adasense.ParetoStates()
	return &twoState{high: states[0], low: states[len(states)-1], holdTicks: holdTicks}
}

func (c *twoState) Config() adasense.Config {
	if c.atLow {
		return c.low
	}
	return c.high
}

func (c *twoState) Observe(a adasense.Activity, confidence float64) {
	if !c.hasLast {
		c.last, c.hasLast = a, true
		return
	}
	if a == c.last {
		c.stable++
		if c.stable >= c.holdTicks {
			c.atLow = true
		}
		return
	}
	c.last = a
	c.stable = 0
	c.atLow = false
}

func (c *twoState) Reset() { *c = twoState{high: c.high, low: c.low, holdTicks: c.holdTicks} }

func main() {
	fmt.Println("training shared classifier...")
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 4800, Epochs: 60, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}

	schedule := adasense.RandomSchedule(42, 900, 30, 60)
	motion := adasense.NewMotion(schedule, 43)

	race := func(name string, ctl adasense.Controller) {
		pipe, err := sys.NewPipeline()
		if err != nil {
			log.Fatal(err)
		}
		res, err := adasense.Simulate(adasense.SimulationSpec{
			Motion:     motion,
			Controller: ctl,
			Classifier: pipe,
		}, 44)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s accuracy %5.1f%%   current %6.1f uA   saving %4.0f%%\n",
			name, 100*res.Accuracy(), res.AvgSensorCurrentUA,
			100*(1-res.AvgSensorCurrentUA/180))
	}

	fmt.Println()
	race("pinned baseline", adasense.NewBaselineController())
	race("custom two-state (hold 10 ticks)", newTwoState(10))
	race("SPOT (10 s)", adasense.NewSPOT(10))
	race("SPOT + confidence (10 s)", adasense.NewSPOTWithConfidence(10))
	fmt.Println("\nThe two-state policy saves aggressively but pays in accuracy at the")
	fmt.Println("floor configuration; SPOT's graded descent keeps mid states in play,")
	fmt.Println("and the confidence gate recovers the savings lost to classifier noise.")
}
