// Custom_controller shows how to plug a user-defined adaptation policy
// into the framework through the Controller interface, and races it
// against SPOT on the same workload — all four policies simulated
// concurrently with Service.RunMany.
//
// The custom policy is a hysteresis two-state controller: it drops
// straight to the floor configuration after K consecutive stable
// classifications and returns to full power on any change — simpler than
// SPOT (no intermediate states), trading accuracy for a faster descent.
package main

import (
	"context"
	"fmt"
	"log"

	"adasense"
)

// twoState is the custom policy. It implements adasense.Controller.
type twoState struct {
	high, low adasense.Config
	holdTicks int

	stable  int
	last    adasense.Activity
	hasLast bool
	atLow   bool
}

func newTwoState(holdTicks int) *twoState {
	states := adasense.ParetoStates()
	return &twoState{high: states[0], low: states[len(states)-1], holdTicks: holdTicks}
}

func (c *twoState) Config() adasense.Config {
	if c.atLow {
		return c.low
	}
	return c.high
}

func (c *twoState) Observe(a adasense.Activity, confidence float64) {
	if !c.hasLast {
		c.last, c.hasLast = a, true
		return
	}
	if a == c.last {
		c.stable++
		if c.stable >= c.holdTicks {
			c.atLow = true
		}
		return
	}
	c.last = a
	c.stable = 0
	c.atLow = false
}

func (c *twoState) Reset() { *c = twoState{high: c.high, low: c.low, holdTicks: c.holdTicks} }

func main() {
	fmt.Println("training shared classifier...")
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 4800, Epochs: 60, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		log.Fatal(err)
	}

	// One motion realization, shared read-only by all four runs; one
	// RunSpec per policy, identical sampling seed for a fair race.
	schedule := adasense.RandomSchedule(42, 900, 30, 60)
	motion := adasense.NewMotion(schedule, 43)
	entrants := []struct {
		name string
		ctl  adasense.Controller
	}{
		{"pinned baseline", adasense.NewBaselineController()},
		{"custom two-state (hold 10 ticks)", newTwoState(10)},
		{"SPOT (10 s)", adasense.NewSPOT(10)},
		{"SPOT + confidence (10 s)", adasense.NewSPOTWithConfidence(10)},
	}
	specs := make([]adasense.RunSpec, len(entrants))
	for i, e := range entrants {
		specs[i] = adasense.RunSpec{Motion: motion, Controller: e.ctl, Seed: 44}
	}

	results, err := svc.RunMany(context.Background(), specs, len(specs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for i, e := range entrants {
		res := results[i]
		fmt.Printf("%-34s accuracy %5.1f%%   current %6.1f uA   saving %4.0f%%\n",
			e.name, 100*res.Accuracy(), res.AvgSensorCurrentUA,
			100*(1-res.AvgSensorCurrentUA/180))
	}
	fmt.Println("\nThe two-state policy saves aggressively but pays in accuracy at the")
	fmt.Println("floor configuration; SPOT's graded descent keeps mid states in play,")
	fmt.Println("and the confidence gate recovers the savings lost to classifier noise.")
}
