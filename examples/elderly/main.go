// Elderly runs a long-horizon daily-living monitoring scenario from the
// paper's introduction: wearables tracking activity patterns of older
// adults, where gait share and sedentary time are the clinically relevant
// digital biomarkers and the device must last for days.
//
// A synthetic subject lives through two hours of slowly changing daily
// activities. The example serves AdaSense through the Service layer and
// compares it with the intensity-based baseline on the same signal,
// deriving the biomarker summary from the recognized stream.
package main

import (
	"context"
	"fmt"
	"log"

	"adasense"
	"adasense/internal/iba"
	"adasense/internal/rng"
	"adasense/internal/sim"
)

func main() {
	const horizonSec = 7200 // two hours

	fmt.Println("training shared classifier and baseline classifier bank...")
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 4800, Epochs: 60, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	ibaCtl := iba.NewDefaultController()
	bank, err := iba.TrainBank([]adasense.Config{ibaCtl.High, ibaCtl.Low}, 1200, 32, rng.New(32))
	if err != nil {
		log.Fatal(err)
	}

	// Older adults change activity slowly: the paper's Low setting. The
	// controller factory bakes the scenario's 12 s threshold into the
	// service, so every run and session shares it.
	svc, err := adasense.NewService(sys,
		adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewSPOTWithConfidence(12)
		}))
	if err != nil {
		log.Fatal(err)
	}
	schedule := adasense.SettingSchedule(33, adasense.LowChange, horizonSec)
	motion := adasense.NewMotion(schedule, 34)

	ada, err := svc.Run(context.Background(), adasense.RunSpec{Motion: motion, Seed: 35})
	if err != nil {
		log.Fatal(err)
	}
	// The intensity baseline swaps both the controller and the
	// classifier bank, which the Service's shared classifier cannot
	// stand in for — it runs on the raw simulator.
	base, err := sim.Run(sim.Spec{
		Motion:     motion,
		Controller: ibaCtl,
		Classifier: bank,
	}, rng.New(35))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %12s %12s\n", "", "AdaSense", "IbA")
	fmt.Printf("%-28s %11.1f%% %11.1f%%\n", "recognition accuracy", 100*ada.Accuracy(), 100*base.Accuracy())
	fmt.Printf("%-28s %10.1fuA %10.1fuA\n", "avg sensor current", ada.AvgSensorCurrentUA, base.AvgSensorCurrentUA)
	fmt.Printf("%-28s %10.1fuA %10.1fuA\n", "avg MCU current", ada.AvgMCUCurrentUA, base.AvgMCUCurrentUA)
	pack := adasense.SmallLiPo40()
	fmt.Printf("%-28s %11.0f h %11.0f h\n", "battery projection (40 mAh)",
		pack.LifetimeHours(ada.AvgSensorCurrentUA+ada.AvgMCUCurrentUA),
		pack.LifetimeHours(base.AvgSensorCurrentUA+base.AvgMCUCurrentUA))

	// Digital biomarkers from the recognized stream.
	fmt.Println("\ndaily-living biomarkers (from AdaSense's recognized stream):")
	var recog [adasense.NumActivities]float64
	total := 0.0
	for truth := 0; truth < adasense.NumActivities; truth++ {
		for pred := 0; pred < adasense.NumActivities; pred++ {
			recog[pred] += float64(ada.Confusion[truth][pred])
			total += float64(ada.Confusion[truth][pred])
		}
	}
	gait := recog[adasense.Walk] + recog[adasense.Upstairs] + recog[adasense.Downstairs]
	sedentary := recog[adasense.Sit] + recog[adasense.LieDown]
	fmt.Printf("  gait share:      %5.1f%% of the day\n", 100*gait/total)
	fmt.Printf("  sedentary share: %5.1f%% of the day\n", 100*sedentary/total)
	fmt.Printf("  stair activity:  %5.1f min\n", (recog[adasense.Upstairs]+recog[adasense.Downstairs])/60)

	// Ground truth for reference.
	var truthShare [adasense.NumActivities]float64
	for _, seg := range schedule.Segments() {
		truthShare[seg.Activity] += seg.Duration
	}
	gt := truthShare[adasense.Walk] + truthShare[adasense.Upstairs] + truthShare[adasense.Downstairs]
	fmt.Printf("  (ground-truth gait share: %.1f%%)\n", 100*gt/float64(horizonSec))
}
