// Quickstart: train the shared activity classifier, run the closed
// sensing/classification/control loop with the SPOT controller for two
// minutes of synthetic activity, and print the power/accuracy outcome.
package main

import (
	"fmt"
	"log"

	"adasense"
)

func main() {
	// 1. Train the single shared classifier on a synthetic corpus
	//    spanning the four Pareto sensor configurations. (Production use
	//    would train once with adasense-train and load the saved model.)
	fmt.Println("training shared classifier...")
	sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{
		Windows: 4800, // reduced corpus: quick demo
		Epochs:  60,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out accuracy: %.1f%%\n", 100*acc)
	fmt.Printf("classifier size:   %d bytes — one network for all sensor configurations\n\n",
		sys.Network.WeightBytes(4))

	// 2. Build the HAR pipeline and the adaptive controller.
	pipe, err := sys.NewPipeline()
	if err != nil {
		log.Fatal(err)
	}
	spot := adasense.NewSPOTWithConfidence(10) // 10 s stability, 0.85 confidence gate

	// 3. Describe what the synthetic user does: sit for a minute, then
	//    take the stairs down and walk away.
	schedule, err := adasense.NewSchedule([]adasense.Segment{
		{Activity: adasense.Sit, Duration: 60},
		{Activity: adasense.Downstairs, Duration: 20},
		{Activity: adasense.Walk, Duration: 40},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run the closed loop: the sensor model samples the synthetic
	//    motion under whatever configuration SPOT selects, the pipeline
	//    classifies every second, and SPOT adapts from the results.
	res, err := adasense.Simulate(adasense.SimulationSpec{
		Motion:     adasense.NewMotion(schedule, 7),
		Controller: spot,
		Classifier: pipe,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %v s of activity\n", res.DurationSec)
	fmt.Printf("recognition accuracy: %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("avg sensor current:   %.1f uA (pinned baseline: 180 uA)\n", res.AvgSensorCurrentUA)
	fmt.Printf("power saving:         %.0f%%\n", 100*(1-res.AvgSensorCurrentUA/180))
	fmt.Println("\ntime per sensor configuration:")
	for _, cfg := range adasense.ParetoStates() {
		fmt.Printf("  %-12s %5.0f s\n", cfg.Name(), res.ConfigDwellSec[cfg.Name()])
	}
}
