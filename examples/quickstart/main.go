// Quickstart: train the shared activity classifier, stand up the serving
// layer, run the closed sensing/classification/control loop with the SPOT
// controller for two minutes of synthetic activity, and print the
// power/accuracy outcome — then serve the same model to a streaming
// device session.
package main

import (
	"context"
	"fmt"
	"log"

	"adasense"
)

func main() {
	// 1. Train the single shared classifier on a synthetic corpus
	//    spanning the four Pareto sensor configurations. (Production use
	//    would train once with adasense-train and load the saved model
	//    container with adasense.LoadSystem.)
	fmt.Println("training shared classifier...")
	sys, acc, err := adasense.TrainSystem(adasense.TrainingConfig{
		Windows: 4800, // reduced corpus: quick demo
		Epochs:  60,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out accuracy: %.1f%%\n", 100*acc)
	fmt.Printf("classifier size:   %d bytes — one network for all sensor configurations\n\n",
		sys.Network.WeightBytes(4))

	// 2. Wrap the immutable model in a Service. Options set the defaults
	//    every session and simulation share; here the paper's SPOT
	//    controller with a 10 s stability threshold and 0.85 confidence
	//    gate.
	svc, err := adasense.NewService(sys,
		adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewSPOTWithConfidence(10)
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Describe what the synthetic user does: sit for a minute, then
	//    take the stairs down and walk away.
	schedule, err := adasense.NewSchedule([]adasense.Segment{
		{Activity: adasense.Sit, Duration: 60},
		{Activity: adasense.Downstairs, Duration: 20},
		{Activity: adasense.Walk, Duration: 40},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run the closed loop: the sensor model samples the synthetic
	//    motion under whatever configuration SPOT selects, the pipeline
	//    classifies every second, and SPOT adapts from the results.
	res, err := svc.Run(context.Background(), adasense.RunSpec{
		Motion: adasense.NewMotion(schedule, 7),
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %v s of activity\n", res.DurationSec)
	fmt.Printf("recognition accuracy: %.1f%%\n", 100*res.Accuracy())
	fmt.Printf("avg sensor current:   %.1f uA (pinned baseline: 180 uA)\n", res.AvgSensorCurrentUA)
	fmt.Printf("power saving:         %.0f%%\n", 100*(1-res.AvgSensorCurrentUA/180))
	fmt.Println("\ntime per sensor configuration:")
	for _, cfg := range adasense.ParetoStates() {
		fmt.Printf("  %-12s %5.0f s\n", cfg.Name(), res.ConfigDwellSec[cfg.Name()])
	}

	// 5. The same Service also serves real-time device sessions: the
	//    application samples its IMU at sess.Config() and pushes raw
	//    batches as they arrive. Here a sampler stands in for the
	//    hardware for ten seconds.
	sess, err := svc.OpenSession("demo-device")
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	motion := adasense.NewMotion(schedule, 8)
	sampler := adasense.NewSampler(adasense.DefaultNoiseModel(), 9)
	fmt.Println("\nstreaming session (first 10 s):")
	for tick := 0; tick < 10; tick++ {
		b := sampler.Sample(motion, sess.Config(), float64(tick), float64(tick)+1)
		events, err := sess.Push(b)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			fmt.Printf("  t=%2ds  %-8v conf %.2f  sensor %s\n",
				tick+1, ev.Classification.Activity, ev.Classification.Confidence, ev.Config.Name())
		}
	}
}
