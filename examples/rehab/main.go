// Rehab monitors a post-operative rehabilitation session — the paper's
// introductory motivating scenario: continuous activity monitoring between
// clinical visits, where battery life decides whether the device survives
// the day.
//
// A synthetic patient performs a prescribed session (walking intervals and
// stair repetitions interleaved with rests). The example reports exercise
// compliance (time actually spent in each prescribed activity), the energy
// consumed, and the battery-life improvement AdaSense's controller buys
// over pinning the sensor at full power. Both conditions run concurrently
// through the serving layer's batch runner.
package main

import (
	"context"
	"fmt"
	"log"

	"adasense"
)

// prescription is the rehab protocol: alternating exercise and rest.
func prescription() ([]adasense.Segment, error) {
	var segs []adasense.Segment
	add := func(a adasense.Activity, d float64) {
		segs = append(segs, adasense.Segment{Activity: a, Duration: d})
	}
	add(adasense.Sit, 45) // intake rest
	for rep := 0; rep < 3; rep++ {
		add(adasense.Walk, 90)       // walking interval
		add(adasense.Stand, 30)      // standing recovery
		add(adasense.Upstairs, 25)   // stair climb
		add(adasense.Downstairs, 20) // stair descent
		add(adasense.Sit, 60)        // seated rest
	}
	add(adasense.LieDown, 120) // cool-down
	return segs, nil
}

func main() {
	fmt.Println("training shared classifier...")
	sys, _, err := adasense.TrainSystem(adasense.TrainingConfig{Windows: 4800, Epochs: 60, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := adasense.NewService(sys)
	if err != nil {
		log.Fatal(err)
	}

	segs, err := prescription()
	if err != nil {
		log.Fatal(err)
	}
	schedule, err := adasense.NewSchedule(segs)
	if err != nil {
		log.Fatal(err)
	}
	motion := adasense.NewMotion(schedule, 77)

	// Baseline and AdaSense observe the same motion with the same
	// sampling seed for a fair comparison; RunMany executes the two
	// conditions in parallel on the shared classifier.
	conditions := []struct {
		name string
		ctl  adasense.Controller
	}{
		{"pinned baseline (F100_A128)", adasense.NewBaselineController()},
		{"AdaSense (SPOT + confidence, 12 s threshold)", adasense.NewSPOTWithConfidence(12)},
	}
	specs := make([]adasense.RunSpec, len(conditions))
	for i, c := range conditions {
		specs[i] = adasense.RunSpec{Motion: motion, Controller: c.ctl, Seed: 23}
	}
	results, err := svc.RunMany(context.Background(), specs, len(specs))
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range conditions {
		fmt.Printf("\n%s:\n", c.name)
		fmt.Printf("  recognition accuracy: %.1f%%\n", 100*results[i].Accuracy())
		fmt.Printf("  avg sensor current:   %.1f uA\n", results[i].AvgSensorCurrentUA)
	}
	base, ada := results[0], results[1]

	// Exercise compliance from the recognized stream: minutes per
	// recognized activity vs prescribed minutes.
	fmt.Println("\nsession compliance report (recognized vs prescribed):")
	prescribed := map[adasense.Activity]float64{}
	for _, s := range segs {
		prescribed[s.Activity] += s.Duration
	}
	recognized := map[adasense.Activity]float64{}
	for truth := 0; truth < adasense.NumActivities; truth++ {
		for pred := 0; pred < adasense.NumActivities; pred++ {
			recognized[adasense.Activity(pred)] += float64(ada.Confusion[truth][pred])
		}
	}
	for a := adasense.Activity(0); int(a) < adasense.NumActivities; a++ {
		fmt.Printf("  %-11s prescribed %5.1f min   recognized %5.1f min\n",
			a, prescribed[a]/60, recognized[a]/60)
	}

	// Battery-life projection for a 40 mAh wearable cell powering the
	// sensor (self-discharge included).
	pack := adasense.SmallLiPo40()
	fmt.Println("\nsensor-limited battery projection (40 mAh LiPo):")
	fmt.Printf("  baseline: %6.0f h\n", pack.LifetimeHours(base.AvgSensorCurrentUA))
	fmt.Printf("  AdaSense: %6.0f h  (%.1fx longer)\n",
		pack.LifetimeHours(ada.AvgSensorCurrentUA),
		pack.Improvement(base.AvgSensorCurrentUA, ada.AvgSensorCurrentUA))
}
