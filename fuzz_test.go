package adasense

import (
	"bytes"
	"testing"

	"adasense/internal/nn"
	"adasense/internal/rng"
)

// fuzzContainerSeed builds a small valid ADSC container for the corpus:
// an untrained network over the default feature layout — structurally
// identical to what adasense-train ships, just not worth serving.
func fuzzContainerSeed(f *testing.F) []byte {
	f.Helper()
	sys := &System{Network: nn.New(15, 4, NumActivities, rng.New(1))}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadSystem throws arbitrary bytes at the model-container loader —
// the exact path a hostile POST /v1/rollout body reaches. Invariants:
// no panic, no implausible allocation (the header's dimension and bin
// counts are bounded before anything is sized from them), and anything
// the loader accepts must survive a Save/Load round trip unchanged in
// shape — an accepted container that cannot re-serialize would strand
// the replica catch-up path, which ships models as these bytes.
func FuzzLoadSystem(f *testing.F) {
	valid := fuzzContainerSeed(f)
	// The envelope is "ADSC" + version/bin-count (8 bytes) + the bin
	// frequencies; the embedded "ADNN" network stream starts right after.
	netOff := bytes.Index(valid, []byte(nn.Magic))
	if netOff < 0 {
		f.Fatal("container seed carries no embedded network magic")
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-network
	f.Add(valid[:11])                  // truncated mid-header
	f.Add(valid[netOff:])              // legacy path: bare network stream
	f.Add([]byte("ADSC"))              // magic only
	f.Add([]byte("ADNN"))              // legacy magic only
	f.Add([]byte("MZ\x90\x00"))        // wrong magic entirely
	f.Add(bytes.Repeat([]byte{0}, 64)) // zeros
	corrupt := append([]byte(nil), valid...)
	corrupt[6] ^= 0xff // absurd bin count
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	huge[netOff+len(nn.Magic)+1] ^= 0xff // absurd network dimension
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := LoadSystem(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sys.Network == nil {
			t.Fatal("LoadSystem accepted a container with no network")
		}
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			t.Fatalf("accepted container cannot re-serialize: %v", err)
		}
		again, err := LoadSystem(&buf)
		if err != nil {
			t.Fatalf("re-serialized container rejected: %v", err)
		}
		if again.Network.In != sys.Network.In || again.Network.Out != sys.Network.Out {
			t.Fatalf("round trip changed network shape: %d/%d vs %d/%d",
				sys.Network.In, sys.Network.Out, again.Network.In, again.Network.Out)
		}
	})
}
