package adasense

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"adasense/internal/nn"
	"adasense/internal/rng"
)

// fuzzContainerSeed builds a small valid ADSC container for the corpus:
// an untrained network over the default feature layout — structurally
// identical to what adasense-train ships, just not worth serving.
func fuzzContainerSeed(f *testing.F) []byte {
	f.Helper()
	sys := &System{Network: nn.New(15, 4, NumActivities, rng.New(1))}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadSystem throws arbitrary bytes at the model-container loader —
// the exact path a hostile POST /v1/rollout body reaches. Invariants:
// no panic, no implausible allocation (the header's dimension and bin
// counts are bounded before anything is sized from them), and anything
// the loader accepts must survive a Save/Load round trip unchanged in
// shape — an accepted container that cannot re-serialize would strand
// the replica catch-up path, which ships models as these bytes.
func FuzzLoadSystem(f *testing.F) {
	valid := fuzzContainerSeed(f)
	// The envelope is "ADSC" + version/bin-count (8 bytes) + the bin
	// frequencies; the embedded "ADNN" network stream starts right after.
	netOff := bytes.Index(valid, []byte(nn.Magic))
	if netOff < 0 {
		f.Fatal("container seed carries no embedded network magic")
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-network
	f.Add(valid[:11])                  // truncated mid-header
	f.Add(valid[netOff:])              // legacy path: bare network stream
	f.Add([]byte("ADSC"))              // magic only
	f.Add([]byte("ADNN"))              // legacy magic only
	f.Add([]byte("MZ\x90\x00"))        // wrong magic entirely
	f.Add(bytes.Repeat([]byte{0}, 64)) // zeros
	corrupt := append([]byte(nil), valid...)
	corrupt[6] ^= 0xff // absurd bin count
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	huge[netOff+len(nn.Magic)+1] ^= 0xff // absurd network dimension
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := LoadSystem(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sys.Network == nil {
			t.Fatal("LoadSystem accepted a container with no network")
		}
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			t.Fatalf("accepted container cannot re-serialize: %v", err)
		}
		again, err := LoadSystem(&buf)
		if err != nil {
			t.Fatalf("re-serialized container rejected: %v", err)
		}
		if again.Network.In != sys.Network.In || again.Network.Out != sys.Network.Out {
			t.Fatalf("round trip changed network shape: %d/%d vs %d/%d",
				sys.Network.In, sys.Network.Out, again.Network.In, again.Network.Out)
		}
	})
}

// fuzzSessionStateSeed builds a small valid ADSS container for the
// corpus: a mid-descent SPOT snapshot with a partial window.
func fuzzSessionStateSeed(f *testing.F) []byte {
	f.Helper()
	st := &SessionState{Generation: 3, WindowSec: 2, HopSec: 1}
	st.Engine.Config = ParetoStates()[1]
	st.Engine.Pending = 7
	for i := 0; i < 25; i++ {
		v := float64(i) * 0.125
		st.Engine.X = append(st.Engine.X, v)
		st.Engine.Y = append(st.Engine.Y, -v)
		st.Engine.Z = append(st.Engine.Z, 1-v)
	}
	st.Engine.CtlKind = "spot/1"
	st.Engine.CtlState = []byte{1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 1, 1, 0, 0, 0}
	st.Energy = EnergyEstimate{ElapsedSec: 31.5, ChargeUC: 2048}
	buf, err := st.AppendBinary(nil)
	if err != nil {
		f.Fatal(err)
	}
	return buf
}

// FuzzSessionStateRoundTrip throws arbitrary bytes at the ADSS decoder —
// the exact path a hostile PUT /v1/session-state body reaches. The
// invariants mirror FuzzLoadSystem's: no panic, no implausible
// allocation (every interior length is bounds-checked before anything is
// sized from it), and any container the decoder accepts must re-encode
// byte-identically — the canonical-encoding property the differential
// handoff tests rely on.
func FuzzSessionStateRoundTrip(f *testing.F) {
	valid := fuzzSessionStateSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated mid-payload
	f.Add(valid[:10])                  // truncated mid-header
	f.Add([]byte("ADSS"))              // magic only
	f.Add([]byte("ADSC"))              // the sibling container's magic
	f.Add(bytes.Repeat([]byte{0}, 64)) // zeros
	version := append([]byte(nil), valid...)
	version[4] ^= 0xff // absurd version
	f.Add(version)
	// An absurd window sample count with a fixed-up CRC, so the decoder
	// reaches the bounds check rather than stopping at the checksum.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[52:], 1<<31)
	plen := int(binary.LittleEndian.Uint32(huge[8:12]))
	binary.LittleEndian.PutUint32(huge[12+plen:], crc32.ChecksumIEEE(huge[12:12+plen]))
	f.Add(huge)
	crc := append([]byte(nil), valid...)
	crc[len(crc)-1] ^= 0xff // checksum mismatch
	f.Add(crc)
	f.Add(append(append([]byte(nil), valid...), 0)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSessionState(data)
		if err != nil {
			return
		}
		buf, err := st.AppendBinary(make([]byte, 0, st.EncodedLen()))
		if err != nil {
			t.Fatalf("accepted container cannot re-encode: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("round trip not byte-identical:\nin:  %x\nout: %x", data, buf)
		}
	})
}
