package adasense

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/ratelimit"
	"adasense/internal/registry"
	"adasense/internal/telemetry"
)

// Gateway errors. Open and CloseSession wrap these so callers (and HTTP
// front ends) can map them with errors.Is.
var (
	// ErrSessionExists reports an Open with an id that is already serving.
	ErrSessionExists = errors.New("adasense: session id already open")
	// ErrGatewayFull reports an Open beyond the max-sessions cap.
	ErrGatewayFull = errors.New("adasense: gateway at session capacity")
	// ErrSessionNotFound reports an operation on an unknown session id.
	ErrSessionNotFound = errors.New("adasense: no such session")
	// ErrSessionClosed reports an operation on a closed (or evicted)
	// session.
	ErrSessionClosed = errors.New("adasense: session closed")
	// ErrRateLimited reports a request rejected by the gateway's token
	// buckets (per-device or global).
	ErrRateLimited = errors.New("adasense: rate limited")
	// ErrGatewayDraining reports an Open on a gateway that has begun
	// graceful shutdown.
	ErrGatewayDraining = errors.New("adasense: gateway draining")
	// ErrStateGeneration reports a session-state snapshot pinned to a
	// model generation this gateway is not serving; the sender falls
	// back to the cold re-open path.
	ErrStateGeneration = errors.New("adasense: session state from a different model generation")
)

// gatewayConfig holds the fleet-level policy a Gateway applies over its
// Service.
type gatewayConfig struct {
	maxSessions  int
	idleTTL      time.Duration
	shards       int
	clock        func() time.Time
	svcOpts      []Option
	authToken    string
	limits       ratelimit.Limits
	rateLimited  bool
	drainTimeout time.Duration
}

// GatewayOption configures a Gateway.
type GatewayOption func(*gatewayConfig) error

// DefaultDrainTimeout is the deadline Drain applies when its context has
// none and WithDrainTimeout was not used.
const DefaultDrainTimeout = 30 * time.Second

// WithMaxSessions caps the number of concurrently open sessions; Open
// returns ErrGatewayFull beyond it. Zero (the default) means unlimited.
func WithMaxSessions(n int) GatewayOption {
	return func(c *gatewayConfig) error {
		if n < 0 {
			return fmt.Errorf("adasense: negative session cap %d", n)
		}
		c.maxSessions = n
		return nil
	}
}

// WithIdleTTL sets the idle time after which EvictIdle reclaims a
// session. Zero (the default) disables eviction.
func WithIdleTTL(d time.Duration) GatewayOption {
	return func(c *gatewayConfig) error {
		if d < 0 {
			return fmt.Errorf("adasense: negative idle TTL %v", d)
		}
		c.idleTTL = d
		return nil
	}
}

// WithGatewayClock injects the gateway's time source, making idle
// eviction deterministically testable. The default is time.Now.
func WithGatewayClock(now func() time.Time) GatewayOption {
	return func(c *gatewayConfig) error {
		if now == nil {
			return fmt.Errorf("adasense: nil gateway clock")
		}
		c.clock = now
		return nil
	}
}

// WithRegistryShards sets the session registry's shard count (rounded up
// to a power of two, default 16). More shards reduce lock contention
// under very large fleets.
func WithRegistryShards(n int) GatewayOption {
	return func(c *gatewayConfig) error {
		if n <= 0 {
			return fmt.Errorf("adasense: non-positive shard count %d", n)
		}
		c.shards = n
		return nil
	}
}

// RateLimit is the gateway's admission policy, enforced by a sharded
// token-bucket limiter: every Open and Push spends one token from the
// device's bucket and one from the shared global bucket, every one-shot
// Classify spends one global token. Rates are sustained tokens per
// second; bursts are bucket depths (the size of a spike admitted after
// idle time). A non-positive rate disables that tier, so a purely
// global or purely per-device policy is expressed by zeroing the other
// pair.
type RateLimit struct {
	DevicePerSec float64 `json:"device_per_sec"`
	DeviceBurst  int     `json:"device_burst"`
	GlobalPerSec float64 `json:"global_per_sec"`
	GlobalBurst  int     `json:"global_burst"`
}

// WithRateLimit enables per-device and/or global admission limiting.
// Rejected calls fail with ErrRateLimited and are counted in Stats. The
// limiter shares the gateway's clock, so rate limiting is
// deterministically testable alongside idle eviction.
func WithRateLimit(rl RateLimit) GatewayOption {
	return func(c *gatewayConfig) error {
		c.limits = ratelimit.Limits{
			DeviceRate:  rl.DevicePerSec,
			DeviceBurst: rl.DeviceBurst,
			GlobalRate:  rl.GlobalPerSec,
			GlobalBurst: rl.GlobalBurst,
		}
		c.rateLimited = true
		return nil
	}
}

// WithAuth requires every authenticated gateway operation to present
// this bearer token; Authorize compares in constant time. An empty
// token is rejected here — leaving the option off is how an open
// gateway is configured.
func WithAuth(token string) GatewayOption {
	return func(c *gatewayConfig) error {
		if token == "" {
			return fmt.Errorf("adasense: empty auth token (omit WithAuth for an open gateway)")
		}
		c.authToken = token
		return nil
	}
}

// WithDrainTimeout sets the deadline Drain applies when its context has
// none (default 30 s). Zero disables the default, making such a Drain
// wait indefinitely; negative is invalid.
func WithDrainTimeout(d time.Duration) GatewayOption {
	return func(c *gatewayConfig) error {
		if d < 0 {
			return fmt.Errorf("adasense: negative drain timeout %v", d)
		}
		c.drainTimeout = d
		return nil
	}
}

// WithServiceOptions sets the Service options the gateway applies to the
// initial service and to every service it builds on SwapModel, so a
// hot-swapped model keeps the fleet's window/hop, hardware models and
// controller policy.
func WithServiceOptions(opts ...Option) GatewayOption {
	return func(c *gatewayConfig) error {
		c.svcOpts = append(c.svcOpts, opts...)
		return nil
	}
}

// ServingStats is a point-in-time snapshot of a gateway's serving
// state: the monotonic telemetry counters plus the live gauges
// (registry occupancy, capacity, drain state) a metrics endpoint needs,
// so exporters read everything from one snapshot instead of reaching
// into gateway internals.
type ServingStats struct {
	SessionsOpened  uint64 `json:"sessions_opened"`
	SessionsClosed  uint64 `json:"sessions_closed"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
	BatchesPushed   uint64 `json:"batches_pushed"`
	EventsEmitted   uint64 `json:"events_emitted"`
	ClassifyCalls   uint64 `json:"classify_calls"`
	PoolHits        uint64 `json:"pool_hits"`
	PoolMisses      uint64 `json:"pool_misses"`
	ModelSwaps      uint64 `json:"model_swaps"`

	// RateLimitedDevice and RateLimitedGlobal count requests rejected
	// at the per-device and gateway-wide token buckets; AuthRejects
	// counts requests presenting a missing or wrong bearer token.
	RateLimitedDevice uint64 `json:"rate_limited_device"`
	RateLimitedGlobal uint64 `json:"rate_limited_global"`
	AuthRejects       uint64 `json:"auth_rejects"`

	// Federation counters, advanced by the Cluster layer: requests
	// forwarded to their owning peer replica, model swaps successfully
	// replicated to a peer, and failed peer calls (forwards plus swap
	// attempts). All zero on an unfederated gateway.
	RequestsForwarded uint64 `json:"requests_forwarded"`
	SwapsReplicated   uint64 `json:"swaps_replicated"`
	PeerErrors        uint64 `json:"peer_errors"`

	// Dynamic-membership counters, advanced by a source-driven Cluster:
	// membership changes applied (ring generations swapped in), local
	// sessions closed because a rebalance moved their device to another
	// replica, and forwarded requests that arrived on a stale ring
	// generation. All zero on a static or standalone gateway.
	Rebalances        uint64 `json:"rebalances"`
	SessionsHandedOff uint64 `json:"sessions_handed_off"`
	StaleRoutes       uint64 `json:"stale_routes"`

	// Stateful-handoff counters, both advanced on the receiving
	// replica: sessions restored from a peer's ADSS state snapshot
	// (the device's adaptation trajectory survived the move), and
	// sessions re-opened cold for an owned device with no live session
	// (rebalance fallback and post-eviction reconnects).
	HandoffsStateful uint64 `json:"handoffs_stateful"`
	HandoffsCold     uint64 `json:"handoffs_cold"`

	// Rollout counters: classification events served by a canary arm,
	// rollouts promoted to incumbent, rollouts ended in rollback
	// (health gate or operator abort), and models pulled from a peer by
	// generation catch-up. All zero on a gateway that never canaries.
	RolloutCanaryClassifies uint64 `json:"rollout_canary_classifies"`
	RolloutsPromoted        uint64 `json:"rollouts_promoted"`
	RolloutsRolledBack      uint64 `json:"rollouts_rolled_back"`
	ModelCatchups           uint64 `json:"model_catchups"`

	// RolloutStage is the active rollout's stage index, or -1 while no
	// rollout is observing; RolloutFraction is its current cohort
	// fraction. ModelGeneration orders the serving model fleet-wide.
	RolloutStage    int     `json:"rollout_stage"`
	RolloutFraction float64 `json:"rollout_fraction"`
	ModelGeneration uint64  `json:"model_generation"`

	// PoolHitRate is PoolHits / (PoolHits + PoolMisses), or 0 before the
	// first pipeline checkout.
	PoolHitRate float64 `json:"pool_hit_rate"`

	// SessionsLive is the registry occupancy at snapshot time;
	// SessionCapacity is the configured max-sessions cap (0 =
	// unlimited). Draining reports whether Drain has begun.
	SessionsLive    int  `json:"sessions_live"`
	SessionCapacity int  `json:"session_capacity"`
	Draining        bool `json:"draining"`

	// Latency holds the per-route and per-stage latency histogram
	// snapshots — the non-counter instruments riding the same
	// single-snapshot path, so WriteMetrics never reads a live
	// histogram.
	Latency telemetry.LatencySnapshot `json:"latency"`
}

// Gateway is the fleet-level serving front end over the Service/Session
// layer: one place a production deployment opens, finds, evicts and
// closes the sessions of a whole device fleet, atomically hot-swaps the
// model they serve, and reads serving telemetry.
//
// A Gateway owns an atomically swappable *Service plus a sharded session
// registry with id lookup, an idle-TTL eviction policy and a max-sessions
// capacity cap. All methods are safe for concurrent use by any number of
// goroutines; unlike a bare Session, a GatewaySession serializes its own
// calls, so gateway-fronted traffic needs no external confinement.
//
// Hot-swap semantics: SwapModel builds a fresh Service over the retrained
// System and atomically repoints what the gateway serves. New sessions
// and one-shot Classify calls use the new model from that instant; live
// sessions keep the service they were minted on — their in-flight state
// and scratch buffers stay consistent — until they close or opt in with
// Migrate. No session is dropped or corrupted by a swap.
type Gateway struct {
	cfg     gatewayConfig
	tel     *telemetry.Counters
	lat     telemetry.Latencies
	cur     atomic.Pointer[Service]
	reg     *registry.Registry[*GatewaySession]
	limiter *ratelimit.Limiter // nil without WithRateLimit

	// draining flips once, when Drain begins; Open rejects from then on.
	draining atomic.Bool

	// swapMu serializes model publishes so (cur, modelGen) always move
	// as a pair and concurrent swaps cannot publish out of order
	// relative to the swap counter.
	swapMu sync.Mutex

	// modelGen is the fleet-wide model ordinal this gateway serves: 1
	// at startup, advanced by every swap, rollout completion and
	// catch-up install. Stored only under swapMu.
	modelGen atomic.Uint64

	// rolloutMu serializes the rollout control plane (start, abort,
	// tick, replicated transitions, model installs) and orders before
	// swapMu and before any session mutex; the per-push serving path
	// never takes it.
	rolloutMu sync.Mutex
	rollouts  struct {
		// active is the rollout currently observing, nil otherwise.
		active atomic.Pointer[activeRollout]
		// last retains the final status of the most recently settled
		// rollout for GET /v1/rollout.
		last atomic.Pointer[RolloutStatus]
		// frozen maps candidate hashes a health gate rolled back to the
		// gate's reason; guarded by rolloutMu.
		frozen map[uint64]string
	}

	// rolloutNotify, when set (by the Cluster layer), receives every
	// locally decided rollout transition for fleet-wide replication.
	// Set before serving begins; never mutated after.
	rolloutNotify func(RolloutTransition)
}

// NewGateway builds a gateway serving sys. Service options supplied via
// WithServiceOptions configure the initial service and every hot-swapped
// successor.
func NewGateway(sys *System, opts ...GatewayOption) (*Gateway, error) {
	cfg := gatewayConfig{shards: 16, clock: time.Now, drainTimeout: DefaultDrainTimeout}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	gw := &Gateway{cfg: cfg, tel: &telemetry.Counters{}}
	gw.rollouts.frozen = make(map[uint64]string)
	gw.modelGen.Store(1)
	if cfg.rateLimited {
		limiter, err := ratelimit.New(cfg.limits,
			ratelimit.WithShards(cfg.shards),
			ratelimit.WithClock(ratelimit.Clock(cfg.clock)),
		)
		if err != nil {
			return nil, fmt.Errorf("adasense: %w", err)
		}
		gw.limiter = limiter
	}
	svc, err := NewService(sys, cfg.svcOpts...)
	if err != nil {
		return nil, err
	}
	svc.tel = gw.tel
	svc.lat = &gw.lat
	svc.gen = 1
	gw.cur.Store(svc)
	gw.reg = registry.New[*GatewaySession](
		registry.WithShards(cfg.shards),
		registry.WithCapacity(cfg.maxSessions),
		registry.WithClock(registry.Clock(cfg.clock)),
	)
	return gw, nil
}

// Service returns the service currently serving new sessions and
// Classify calls. The pointer is a snapshot: a concurrent SwapModel may
// supersede it at any time.
func (gw *Gateway) Service() *Service { return gw.cur.Load() }

// SwapModel atomically repoints the gateway at a retrained System. It
// builds a fresh Service with the gateway's service options, validates it
// (an invalid system leaves the gateway untouched), then publishes it:
// subsequent Open and Classify calls serve the new model, while live
// sessions keep their pinned service until Close or Migrate.
//
// While a rollout is observing, SwapModel fails with ErrRolloutActive:
// an all-at-once push would silently clobber the half-promoted canary
// and invalidate its health comparison. Finish or abort the rollout
// first.
func (gw *Gateway) SwapModel(sys *System) error {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	if ar := gw.rollouts.active.Load(); ar != nil {
		return fmt.Errorf("%w: candidate %016x at stage %d — abort it or let it settle before swapping",
			ErrRolloutActive, ar.ctl.Candidate(), ar.ctl.Stage())
	}
	svc, err := NewService(sys, gw.cfg.svcOpts...)
	if err != nil {
		return fmt.Errorf("adasense: swap rejected: %w", err)
	}
	svc.tel = gw.tel
	svc.lat = &gw.lat
	gw.swapMu.Lock()
	svc.gen = gw.modelGen.Load() + 1
	gw.cur.Store(svc)
	gw.modelGen.Add(1)
	gw.swapMu.Unlock()
	gw.tel.ModelSwap()
	return nil
}

// Open mints a session on the current service and registers it under id.
// It fails with ErrSessionExists if the id is already serving and
// ErrGatewayFull at the max-sessions cap. The registry slot is reserved
// before the session is built, so a rejected open (duplicate id,
// capacity) costs a map probe, not a pipeline and engine construction —
// a reconnect storm against a full gateway sheds load cheaply.
func (gw *Gateway) Open(id string) (*GatewaySession, error) {
	if id == "" {
		return nil, fmt.Errorf("adasense: Open needs a non-empty session id")
	}
	if gw.draining.Load() {
		return nil, fmt.Errorf("%w: rejecting open %q", ErrGatewayDraining, id)
	}
	if err := gw.allow(id); err != nil {
		return nil, err
	}
	// Register first, holding the session lock so a concurrent Lookup
	// that wins the race blocks on Push/Config until the session is
	// actually built (or sees it closed if the build failed).
	gs := &GatewaySession{id: id, gw: gw}
	gs.mu.Lock()
	if err := gw.reg.Put(id, gs); err != nil {
		gs.mu.Unlock()
		switch {
		case errors.Is(err, registry.ErrDuplicate):
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		case errors.Is(err, registry.ErrFull):
			return nil, fmt.Errorf("%w (%d)", ErrGatewayFull, gw.cfg.maxSessions)
		}
		return nil, err
	}
	// Re-check draining now that the registration is visible: a Drain
	// that set the flag between the first check and the Put may already
	// have swept an empty registry and returned, so tearing down here is
	// the only way this open cannot outlive a completed drain. (A Drain
	// starting after this load sees the registration and closes it.)
	if gw.draining.Load() {
		gs.closed = true
		gs.mu.Unlock()
		gw.reg.CompareAndRemove(id, gs)
		return nil, fmt.Errorf("%w: rejecting open %q", ErrGatewayDraining, id)
	}
	// Resolve the service rollout-aware: a device inside an active
	// rollout's cohort pins to the canary. The registration above
	// happens before this load, so a rollout transition racing the
	// build either is already visible here or will find this session in
	// its re-pin sweep (blocking on gs.mu until the build publishes).
	sess, err := gw.serviceFor(id).OpenSession(id)
	if err != nil {
		gs.closed = true
		gs.mu.Unlock()
		gw.reg.CompareAndRemove(id, gs)
		return nil, err
	}
	gs.sess = sess
	gs.mu.Unlock()
	gw.tel.SessionOpened()
	return gs, nil
}

// AdoptSession is Open for a device the ring says this replica owns but
// no live session exists for: the cold half of the handoff contract,
// taken when the old owner is gone, never sent a snapshot, or sent one
// this replica rejected. It counts in the handoffs_cold series so the
// stateful/cold split is visible fleet-wide.
func (gw *Gateway) AdoptSession(id string) (*GatewaySession, error) {
	gs, err := gw.Open(id)
	if err != nil {
		return nil, err
	}
	gw.tel.HandoffCold()
	return gs, nil
}

// RestoreSession mints a session for id and primes it from a peer's
// state snapshot — the receiving half of a stateful rebalance handoff.
// It mirrors Open's registration contract (draining, duplicate ids,
// capacity) and additionally requires the snapshot's pinned model
// generation to match the service that will host the session; a skewed
// snapshot fails with ErrStateGeneration and the sender falls back to
// the cold path. On any restore failure nothing stays registered — the
// device's next push adopts it cold.
func (gw *Gateway) RestoreSession(id string, st *SessionState) (*GatewaySession, error) {
	if id == "" {
		return nil, fmt.Errorf("adasense: RestoreSession needs a non-empty session id")
	}
	if st == nil {
		return nil, fmt.Errorf("adasense: RestoreSession needs a snapshot")
	}
	if gw.draining.Load() {
		return nil, fmt.Errorf("%w: rejecting restore %q", ErrGatewayDraining, id)
	}
	// Peer-driven work carries no device traffic; charge the global
	// bucket only, like forwards.
	if err := gw.allowGlobal(); err != nil {
		return nil, err
	}
	gs := &GatewaySession{id: id, gw: gw}
	gs.mu.Lock()
	if err := gw.reg.Put(id, gs); err != nil {
		gs.mu.Unlock()
		switch {
		case errors.Is(err, registry.ErrDuplicate):
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		case errors.Is(err, registry.ErrFull):
			return nil, fmt.Errorf("%w (%d)", ErrGatewayFull, gw.cfg.maxSessions)
		}
		return nil, err
	}
	unwind := func() {
		gs.closed = true
		gs.mu.Unlock()
		gw.reg.CompareAndRemove(id, gs)
	}
	if gw.draining.Load() {
		unwind()
		return nil, fmt.Errorf("%w: rejecting restore %q", ErrGatewayDraining, id)
	}
	svc := gw.serviceFor(id)
	// A snapshot from generation 0 comes from a bare Service and pins
	// nothing; anything else must match the hosting service exactly. A
	// cohort device during an active rollout resolves to the canary
	// (generation 0 until promoted), so snapshots conservatively fall
	// back cold rather than graft incumbent state onto the canary arm.
	if st.Generation != 0 && st.Generation != svc.gen {
		unwind()
		return nil, fmt.Errorf("%w: snapshot pinned generation %d, serving %d",
			ErrStateGeneration, st.Generation, svc.gen)
	}
	sess, err := svc.OpenSession(id)
	if err != nil {
		unwind()
		return nil, err
	}
	if err := sess.Restore(st); err != nil {
		sess.Close()
		unwind()
		return nil, err
	}
	gs.sess = sess
	gs.mu.Unlock()
	gw.tel.SessionOpened()
	gw.tel.HandoffStateful()
	return gs, nil
}

// allow runs one keyed admission check, mapping limiter decisions onto
// ErrRateLimited and the telemetry counters. A nil limiter admits
// everything.
func (gw *Gateway) allow(device string) error {
	if gw.limiter == nil {
		return nil
	}
	start := time.Now()
	decision := gw.limiter.Allow(device)
	gw.lat.ObserveStage(telemetry.StageRateLimit, time.Since(start))
	switch decision {
	case ratelimit.DeniedGlobal:
		gw.tel.RateLimitedGlobal()
		return fmt.Errorf("%w: gateway throughput cap", ErrRateLimited)
	case ratelimit.DeniedDevice:
		gw.tel.RateLimitedDevice()
		return fmt.Errorf("%w: device %q over its budget", ErrRateLimited, device)
	}
	return nil
}

// allowGlobal spends one token from the gateway-wide bucket only — the
// admission check for work that carries no device identity (one-shot
// Classify, federation forwards). A nil limiter admits everything.
func (gw *Gateway) allowGlobal() error {
	if gw.limiter == nil {
		return nil
	}
	start := time.Now()
	ok := gw.limiter.AllowGlobal().OK()
	gw.lat.ObserveStage(telemetry.StageRateLimit, time.Since(start))
	if ok {
		return nil
	}
	gw.tel.RateLimitedGlobal()
	return fmt.Errorf("%w: gateway throughput cap", ErrRateLimited)
}

// ObserveRoute records one completed request of the given route class
// into the gateway's latency histograms. The HTTP front end calls it
// once per request; the histograms surface through Stats().Latency and
// /metrics.
func (gw *Gateway) ObserveRoute(r telemetry.Route, d time.Duration) {
	gw.lat.ObserveRoute(r, d)
}

// ObserveStage records one completed pipeline stage (auth, ring route,
// forward hop, ...) into the gateway's latency histograms. Callers that
// time a stage themselves — the HTTP middleware, the Cluster forward
// path — report through here so every instrument lives in one place.
func (gw *Gateway) ObserveStage(s telemetry.Stage, d time.Duration) {
	gw.lat.ObserveStage(s, d)
}

// Authorize reports whether the presented bearer token matches the one
// configured with WithAuth, comparing in constant time so the check does
// not leak the token's contents through timing. Without WithAuth every
// token (including the empty one) is accepted. Rejections are counted
// in Stats.
func (gw *Gateway) Authorize(token string) bool {
	if gw.cfg.authToken == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(token), []byte(gw.cfg.authToken)) == 1 {
		return true
	}
	gw.tel.AuthReject()
	return false
}

// AuthRequired reports whether the gateway was configured with WithAuth.
func (gw *Gateway) AuthRequired() bool { return gw.cfg.authToken != "" }

// Lookup returns the live session registered under id.
func (gw *Gateway) Lookup(id string) (*GatewaySession, bool) {
	return gw.reg.Get(id)
}

// CloseSession closes and unregisters the session with the given id.
func (gw *Gateway) CloseSession(id string) error {
	gs, ok := gw.reg.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	gs.Close()
	return nil
}

// EvictIdle reclaims every session idle for at least the gateway's idle
// TTL (by the gateway's clock) and returns the evicted ids. With no TTL
// configured it is a no-op. Production callers run it on a ticker; tests
// drive it manually with a fake clock.
func (gw *Gateway) EvictIdle() []string {
	evicted := gw.reg.EvictIdle(gw.cfg.idleTTL)
	ids := make([]string, 0, len(evicted))
	for _, e := range evicted {
		// closeEvicted reports false if the session lost the race to a
		// concurrent Close, which already counted it.
		if e.Val.closeEvicted() {
			gw.tel.SessionEvicted()
		}
		ids = append(ids, e.ID)
	}
	// Piggyback limiter hygiene on the sweep: token buckets of devices
	// idle past the TTL are dropped (only once refilled, so invisibly).
	if gw.limiter != nil {
		gw.limiter.Prune(gw.cfg.idleTTL)
	}
	return ids
}

// NumSessions returns the number of currently open sessions.
func (gw *Gateway) NumSessions() int { return gw.reg.Len() }

// Classify runs one stateless classification through the current model.
// After a SwapModel it serves the new model immediately. Classify
// carries no device identity, so rate limiting charges only the global
// bucket.
func (gw *Gateway) Classify(b *Batch) (Classification, error) {
	if err := gw.allowGlobal(); err != nil {
		return Classification{}, err
	}
	return gw.cur.Load().Classify(b)
}

// Drain gracefully shuts the gateway down: it stops accepting opens
// (Open fails with ErrGatewayDraining from the first instant), then
// closes every live session — in-flight pushes finish first, since a
// session serializes its own calls — and returns once the registry is
// empty. The telemetry counters are left fully settled (every close
// counted) for a final scrape or log line.
//
// If ctx carries no deadline the gateway's drain timeout applies
// (WithDrainTimeout, default DefaultDrainTimeout). On timeout Drain
// reports how many sessions were still live. Draining is terminal:
// there is no resume, and repeated Drain calls are safe.
func (gw *Gateway) Drain(ctx context.Context) error {
	gw.draining.Store(true)
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); !ok && gw.cfg.drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gw.cfg.drainTimeout)
		defer cancel()
	}
	// Sweep in a goroutine so the deadline always wins a wait: Close
	// blocks on each session's own mutex until its in-flight push
	// finishes. Each session is closed on its own goroutine, so one
	// session stuck in a long push delays only itself, not the rest of
	// the fleet. Rounds repeat until the registry is empty — catching
	// opens that raced the draining flag — with stragglers from earlier
	// rounds collapsing into idempotent no-op Closes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		// One closer goroutine per session for the whole drain (ids
		// cannot re-register while draining), so a session stuck in a
		// long push parks exactly one goroutine, however many rounds
		// pass before its push completes.
		spawned := make(map[string]bool)
		for ctx.Err() == nil {
			gw.reg.Range(func(id string, gs *GatewaySession) bool {
				if !spawned[id] {
					spawned[id] = true
					go gs.Close()
				}
				return ctx.Err() == nil
			})
			if gw.reg.Len() == 0 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	select {
	case <-done:
		if n := gw.reg.Len(); n != 0 {
			return fmt.Errorf("adasense: drain interrupted with %d live session(s): %w", n, ctx.Err())
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("adasense: drain deadline with %d live session(s): %w", gw.reg.Len(), ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (gw *Gateway) Draining() bool { return gw.draining.Load() }

// Stats returns a point-in-time snapshot of the gateway's serving
// telemetry plus the live gauges (occupancy, capacity, drain state).
// Counters persist across model hot-swaps.
func (gw *Gateway) Stats() ServingStats {
	s := gw.tel.Snapshot()
	stage, fraction := gw.rolloutStageGauge()
	return ServingStats{
		SessionsOpened:  s.SessionsOpened,
		SessionsClosed:  s.SessionsClosed,
		SessionsEvicted: s.SessionsEvicted,
		BatchesPushed:   s.BatchesPushed,
		EventsEmitted:   s.EventsEmitted,
		ClassifyCalls:   s.ClassifyCalls,
		PoolHits:        s.PoolHits,
		PoolMisses:      s.PoolMisses,
		ModelSwaps:      s.ModelSwaps,

		RateLimitedDevice: s.RateLimitedDevice,
		RateLimitedGlobal: s.RateLimitedGlobal,
		AuthRejects:       s.AuthRejects,

		RequestsForwarded: s.RequestsForwarded,
		SwapsReplicated:   s.SwapsReplicated,
		PeerErrors:        s.PeerErrors,

		Rebalances:        s.Rebalances,
		SessionsHandedOff: s.SessionsHandedOff,
		StaleRoutes:       s.StaleRoutes,
		HandoffsStateful:  s.HandoffsStateful,
		HandoffsCold:      s.HandoffsCold,

		RolloutCanaryClassifies: s.RolloutCanaryClassifies,
		RolloutsPromoted:        s.RolloutsPromoted,
		RolloutsRolledBack:      s.RolloutsRolledBack,
		ModelCatchups:           s.ModelCatchups,

		RolloutStage:    stage,
		RolloutFraction: fraction,
		ModelGeneration: gw.modelGen.Load(),

		PoolHitRate: s.PoolHitRate,

		SessionsLive:    gw.reg.Len(),
		SessionCapacity: gw.cfg.maxSessions,
		Draining:        gw.draining.Load(),

		Latency: gw.lat.Snapshot(),
	}
}

// WriteMetrics writes the gateway's serving telemetry to w in the
// Prometheus text exposition format — the payload behind a /metrics
// endpoint. Counters and gauges are label-free; the latency histograms
// carry a single route= or stage= label. Counters persist across model
// hot-swaps. The full series reference lives in docs/operations.md and
// docs/observability.md.
//
// Everything written here comes from one Stats() snapshot — the
// exporter never reads a live instrument.
func (gw *Gateway) WriteMetrics(w io.Writer) error {
	s := gw.Stats()
	e := telemetry.NewEncoder(w)
	e.Counter("adasense_sessions_opened_total", "Sessions minted by Open.", s.SessionsOpened)
	e.Counter("adasense_sessions_closed_total", "Sessions closed by their owner (Close/CloseSession/Drain).", s.SessionsClosed)
	e.Counter("adasense_sessions_evicted_total", "Sessions reclaimed by the idle-TTL sweep.", s.SessionsEvicted)
	e.Counter("adasense_batches_pushed_total", "Batches accepted by sessions.", s.BatchesPushed)
	e.Counter("adasense_events_emitted_total", "Classification events completed by pushes.", s.EventsEmitted)
	e.Counter("adasense_classify_calls_total", "One-shot stateless classifications.", s.ClassifyCalls)
	e.Counter("adasense_pool_hits_total", "Pipeline checkouts served from the pool.", s.PoolHits)
	e.Counter("adasense_pool_misses_total", "Pipeline checkouts that built a fresh pipeline.", s.PoolMisses)
	e.Counter("adasense_model_swaps_total", "Atomic model hot-swaps.", s.ModelSwaps)
	e.Counter("adasense_rate_limited_device_total", "Requests rejected at their device's token bucket.", s.RateLimitedDevice)
	e.Counter("adasense_rate_limited_global_total", "Requests rejected at the gateway-wide token bucket.", s.RateLimitedGlobal)
	e.Counter("adasense_auth_rejects_total", "Requests with a missing or wrong bearer token.", s.AuthRejects)
	e.Counter("adasense_forwarded_total", "Requests forwarded to their owning peer replica.", s.RequestsForwarded)
	e.Counter("adasense_replicated_swaps_total", "Model swaps successfully replicated to a peer replica.", s.SwapsReplicated)
	e.Counter("adasense_peer_errors_total", "Failed peer replica calls (forwards and swap replications).", s.PeerErrors)
	e.Counter("adasense_rebalances_total", "Membership changes applied (hash ring generations swapped in).", s.Rebalances)
	e.Counter("adasense_sessions_handed_off_total", "Sessions closed by a rebalance that moved their device to another replica.", s.SessionsHandedOff)
	e.Counter("adasense_stale_route_total", "Forwarded requests that arrived on a stale ring generation.", s.StaleRoutes)
	e.Counter("adasense_handoffs_stateful_total", "Sessions restored on this replica from a peer's state snapshot.", s.HandoffsStateful)
	e.Counter("adasense_handoffs_cold_total", "Sessions re-opened cold on this replica for an owned device with no live session.", s.HandoffsCold)
	e.Counter("adasense_rollout_canary_classifies_total", "Classification events served by an active rollout's canary arm.", s.RolloutCanaryClassifies)
	e.Counter("adasense_rollouts_promoted_total", "Rollouts completed: the canary passed every stage and became the incumbent.", s.RolloutsPromoted)
	e.Counter("adasense_rollouts_rolled_back_total", "Rollouts ended in rollback (health gate or operator abort).", s.RolloutsRolledBack)
	e.Counter("adasense_model_catchups_total", "Models pulled from a peer because a request revealed a newer fleet generation.", s.ModelCatchups)
	e.Gauge("adasense_rollout_stage", "Active rollout's stage index (-1 while no rollout is observing).", float64(s.RolloutStage))
	e.Gauge("adasense_rollout_fraction", "Active rollout's cohort fraction of the device-id space (0 while idle).", s.RolloutFraction)
	e.Gauge("adasense_model_generation", "Fleet-wide ordinal of the model this gateway serves.", float64(s.ModelGeneration))
	e.Gauge("adasense_pool_hit_rate", "Pipeline pool hit rate (hits / checkouts).", s.PoolHitRate)
	e.Gauge("adasense_sessions_live", "Currently open sessions (registry occupancy).", float64(s.SessionsLive))
	e.Gauge("adasense_session_capacity", "Configured max-sessions cap (0 = unlimited).", float64(s.SessionCapacity))
	draining := 0.0
	if s.Draining {
		draining = 1
	}
	e.Gauge("adasense_draining", "1 once graceful drain has begun, else 0.", draining)
	routes := make([]telemetry.HistogramSeries, 0, telemetry.NumRoutes)
	for r := telemetry.Route(0); r < telemetry.NumRoutes; r++ {
		routes = append(routes, telemetry.HistogramSeries{LabelValue: r.String(), H: s.Latency.Routes[r.String()]})
	}
	e.Histogram("adasense_request_duration_seconds", "End-to-end request latency by route class.", "route", routes)
	stages := make([]telemetry.HistogramSeries, 0, telemetry.NumStages)
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		stages = append(stages, telemetry.HistogramSeries{LabelValue: st.String(), H: s.Latency.Stages[st.String()]})
	}
	e.Histogram("adasense_stage_duration_seconds", "Serving-pipeline stage latency by stage.", "stage", stages)
	return e.Err()
}

// GatewaySession is one device's session as served through a Gateway: a
// Session pinned to the service that minted it, plus the registry
// bookkeeping (idle tracking, eviction, id lookup). Unlike a bare
// Session, a GatewaySession serializes its own method calls, so it may be
// driven from multiple goroutines (e.g. whichever HTTP handler holds the
// device's next batch).
type GatewaySession struct {
	id string
	gw *Gateway

	mu     sync.Mutex
	sess   *Session
	closed bool
}

// ID returns the session id.
func (s *GatewaySession) ID() string { return s.id }

// Service returns the service the session is pinned to. After a
// SwapModel it keeps returning the minting service until Migrate.
func (s *GatewaySession) Service() *Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil {
		return nil
	}
	return s.sess.svc
}

// Config returns the sensor configuration the session's device must
// currently sample at.
func (s *GatewaySession) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil { // lost the race to a failed Open build
		return Config{}
	}
	return s.sess.Config()
}

// Energy returns the session's accumulated energy ledger. Like the
// configuration it survives Migrate and stateful handoff.
func (s *GatewaySession) Energy() EnergyEstimate {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil {
		return EnergyEstimate{}
	}
	return s.sess.Energy()
}

// Push feeds a batch of raw readings and returns the classification
// events it completed, refreshing the session's idle timer. It returns
// ErrSessionClosed after Close or eviction and ErrRateLimited when the
// device is over its token budget (the batch is not applied — the
// device should back off and resample, not retry the same window).
func (s *GatewaySession) Push(b *Batch) ([]Event, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	if err := s.gw.allow(s.id); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	events, err := s.sess.Push(b)
	// Snapshot the pinned service before unlocking so rollout health is
	// attributed to the arm that actually served this push, then feed
	// the rollout outside the session lock: evaluation may win a stage
	// transition whose re-pin sweep takes session mutexes.
	svc := s.sess.svc
	s.mu.Unlock()
	if err != nil {
		s.gw.rolloutObserveError(svc)
		return nil, err
	}
	s.gw.reg.Touch(s.id)
	s.gw.rolloutObserve(svc, events)
	s.gw.rolloutMaybeTick()
	return events, nil
}

// Reset returns the session's engine and controller to their initial
// state.
func (s *GatewaySession) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != nil {
		s.sess.Reset()
	}
}

// Snapshot captures the session's live state (adaptation trajectory,
// window remainder, energy estimate, pinned model generation) without
// disturbing it; the session keeps serving. It is the sending half of a
// stateful handoff and the payload behind GET /v1/session-state.
func (s *GatewaySession) Snapshot() (*SessionState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.sess == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	return s.sess.Snapshot()
}

// Migrate re-pins the session to the gateway's current service (or, for
// a device inside an active rollout's cohort, the canary service). It is
// the opt-in half of the hot-swap contract: after a SwapModel, a live
// session keeps its old model until it migrates (or closes). Migration
// mints a fresh engine and controller on the new service and carries the
// adaptation state (SPOT trajectory, window remainder, energy estimate)
// across when the new service's geometry and controller flavor accept
// it; a rejected snapshot falls back to the old contract — restarting
// from the top configuration, as after close-and-reopen — while keeping
// the id registered and the idle timer running. Migrating while already
// current is a no-op.
func (s *GatewaySession) Migrate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	cur := s.gw.serviceFor(s.id)
	if cur == s.sess.svc {
		return nil
	}
	fresh, err := cur.OpenSession(s.id)
	if err != nil {
		return err
	}
	// The generation pin is deliberately not enforced here: unlike a
	// cross-replica restore, a migrate is an explicit opt-in onto the
	// new model, and the adaptation trajectory (activity labels, sensor
	// configs) is model-independent. Session.Restore leaves the fresh
	// session Reset on rejection, which IS the fallback.
	if st, err := s.sess.Snapshot(); err == nil {
		_ = fresh.Restore(st)
	}
	s.sess.Close()
	s.sess = fresh
	return nil
}

// Close unregisters the session and releases its resources. Closing
// twice (or closing a session the sweeper already evicted) is a no-op.
func (s *GatewaySession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sess.Close()
	s.mu.Unlock()
	// Drop our own registration only: if an eviction sweep already
	// reclaimed this id and a new session reused it, leave that one be.
	s.gw.reg.CompareAndRemove(s.id, s)
	s.gw.tel.SessionClosed()
}

// closeEvicted is Close for the eviction sweep, which has already removed
// the registration. It reports whether this call actually closed the
// session (false if a concurrent Close got there first).
func (s *GatewaySession) closeEvicted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.sess.Close()
	return true
}

// closeHandedOff is Close for a rebalance handoff: a membership change
// moved this session's device to another replica, so the departing
// owner closes it after its in-flight push and drops the registration.
// It reports whether this call actually closed the session (false if a
// concurrent Close or eviction got there first). Like evictions,
// handoffs count in their own telemetry series, not sessions_closed.
func (s *GatewaySession) closeHandedOff() bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.closed = true
	s.sess.Close()
	s.mu.Unlock()
	s.gw.reg.CompareAndRemove(s.id, s)
	return true
}

// snapshotHandedOff is closeHandedOff plus a final state snapshot taken
// in the same critical section, so no push can land between the
// snapshot and the close — the snapshot is exact. It returns the
// snapshot (nil if it could not be taken; the device then re-opens
// cold) and whether this call closed the session. No network happens
// under the lock; shipping the snapshot is the caller's job.
func (s *GatewaySession) snapshotHandedOff() (*SessionState, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	st, err := s.sess.Snapshot()
	s.closed = true
	s.sess.Close()
	s.mu.Unlock()
	s.gw.reg.CompareAndRemove(s.id, s)
	if err != nil {
		return nil, true
	}
	return st, true
}
