package adasense

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/registry"
	"adasense/internal/telemetry"
)

// Gateway errors. Open and CloseSession wrap these so callers (and HTTP
// front ends) can map them with errors.Is.
var (
	// ErrSessionExists reports an Open with an id that is already serving.
	ErrSessionExists = errors.New("adasense: session id already open")
	// ErrGatewayFull reports an Open beyond the max-sessions cap.
	ErrGatewayFull = errors.New("adasense: gateway at session capacity")
	// ErrSessionNotFound reports an operation on an unknown session id.
	ErrSessionNotFound = errors.New("adasense: no such session")
	// ErrSessionClosed reports an operation on a closed (or evicted)
	// session.
	ErrSessionClosed = errors.New("adasense: session closed")
)

// gatewayConfig holds the fleet-level policy a Gateway applies over its
// Service.
type gatewayConfig struct {
	maxSessions int
	idleTTL     time.Duration
	shards      int
	clock       func() time.Time
	svcOpts     []Option
}

// GatewayOption configures a Gateway.
type GatewayOption func(*gatewayConfig) error

// WithMaxSessions caps the number of concurrently open sessions; Open
// returns ErrGatewayFull beyond it. Zero (the default) means unlimited.
func WithMaxSessions(n int) GatewayOption {
	return func(c *gatewayConfig) error {
		if n < 0 {
			return fmt.Errorf("adasense: negative session cap %d", n)
		}
		c.maxSessions = n
		return nil
	}
}

// WithIdleTTL sets the idle time after which EvictIdle reclaims a
// session. Zero (the default) disables eviction.
func WithIdleTTL(d time.Duration) GatewayOption {
	return func(c *gatewayConfig) error {
		if d < 0 {
			return fmt.Errorf("adasense: negative idle TTL %v", d)
		}
		c.idleTTL = d
		return nil
	}
}

// WithGatewayClock injects the gateway's time source, making idle
// eviction deterministically testable. The default is time.Now.
func WithGatewayClock(now func() time.Time) GatewayOption {
	return func(c *gatewayConfig) error {
		if now == nil {
			return fmt.Errorf("adasense: nil gateway clock")
		}
		c.clock = now
		return nil
	}
}

// WithRegistryShards sets the session registry's shard count (rounded up
// to a power of two, default 16). More shards reduce lock contention
// under very large fleets.
func WithRegistryShards(n int) GatewayOption {
	return func(c *gatewayConfig) error {
		if n <= 0 {
			return fmt.Errorf("adasense: non-positive shard count %d", n)
		}
		c.shards = n
		return nil
	}
}

// WithServiceOptions sets the Service options the gateway applies to the
// initial service and to every service it builds on SwapModel, so a
// hot-swapped model keeps the fleet's window/hop, hardware models and
// controller policy.
func WithServiceOptions(opts ...Option) GatewayOption {
	return func(c *gatewayConfig) error {
		c.svcOpts = append(c.svcOpts, opts...)
		return nil
	}
}

// ServingStats is a point-in-time copy of a gateway's telemetry counters.
type ServingStats struct {
	SessionsOpened  uint64 `json:"sessions_opened"`
	SessionsClosed  uint64 `json:"sessions_closed"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
	BatchesPushed   uint64 `json:"batches_pushed"`
	EventsEmitted   uint64 `json:"events_emitted"`
	ClassifyCalls   uint64 `json:"classify_calls"`
	PoolHits        uint64 `json:"pool_hits"`
	PoolMisses      uint64 `json:"pool_misses"`
	ModelSwaps      uint64 `json:"model_swaps"`

	// PoolHitRate is PoolHits / (PoolHits + PoolMisses), or 0 before the
	// first pipeline checkout.
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// Gateway is the fleet-level serving front end over the Service/Session
// layer: one place a production deployment opens, finds, evicts and
// closes the sessions of a whole device fleet, atomically hot-swaps the
// model they serve, and reads serving telemetry.
//
// A Gateway owns an atomically swappable *Service plus a sharded session
// registry with id lookup, an idle-TTL eviction policy and a max-sessions
// capacity cap. All methods are safe for concurrent use by any number of
// goroutines; unlike a bare Session, a GatewaySession serializes its own
// calls, so gateway-fronted traffic needs no external confinement.
//
// Hot-swap semantics: SwapModel builds a fresh Service over the retrained
// System and atomically repoints what the gateway serves. New sessions
// and one-shot Classify calls use the new model from that instant; live
// sessions keep the service they were minted on — their in-flight state
// and scratch buffers stay consistent — until they close or opt in with
// Migrate. No session is dropped or corrupted by a swap.
type Gateway struct {
	cfg gatewayConfig
	tel *telemetry.Counters
	cur atomic.Pointer[Service]
	reg *registry.Registry[*GatewaySession]

	// swapMu serializes SwapModel so concurrent swaps cannot publish
	// out of order relative to the swap counter.
	swapMu sync.Mutex
}

// NewGateway builds a gateway serving sys. Service options supplied via
// WithServiceOptions configure the initial service and every hot-swapped
// successor.
func NewGateway(sys *System, opts ...GatewayOption) (*Gateway, error) {
	cfg := gatewayConfig{shards: 16, clock: time.Now}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	gw := &Gateway{cfg: cfg, tel: &telemetry.Counters{}}
	svc, err := NewService(sys, cfg.svcOpts...)
	if err != nil {
		return nil, err
	}
	svc.tel = gw.tel
	gw.cur.Store(svc)
	gw.reg = registry.New[*GatewaySession](
		registry.WithShards(cfg.shards),
		registry.WithCapacity(cfg.maxSessions),
		registry.WithClock(registry.Clock(cfg.clock)),
	)
	return gw, nil
}

// Service returns the service currently serving new sessions and
// Classify calls. The pointer is a snapshot: a concurrent SwapModel may
// supersede it at any time.
func (gw *Gateway) Service() *Service { return gw.cur.Load() }

// SwapModel atomically repoints the gateway at a retrained System. It
// builds a fresh Service with the gateway's service options, validates it
// (an invalid system leaves the gateway untouched), then publishes it:
// subsequent Open and Classify calls serve the new model, while live
// sessions keep their pinned service until Close or Migrate.
func (gw *Gateway) SwapModel(sys *System) error {
	gw.swapMu.Lock()
	defer gw.swapMu.Unlock()
	svc, err := NewService(sys, gw.cfg.svcOpts...)
	if err != nil {
		return fmt.Errorf("adasense: swap rejected: %w", err)
	}
	svc.tel = gw.tel
	gw.cur.Store(svc)
	gw.tel.ModelSwap()
	return nil
}

// Open mints a session on the current service and registers it under id.
// It fails with ErrSessionExists if the id is already serving and
// ErrGatewayFull at the max-sessions cap. The registry slot is reserved
// before the session is built, so a rejected open (duplicate id,
// capacity) costs a map probe, not a pipeline and engine construction —
// a reconnect storm against a full gateway sheds load cheaply.
func (gw *Gateway) Open(id string) (*GatewaySession, error) {
	if id == "" {
		return nil, fmt.Errorf("adasense: Open needs a non-empty session id")
	}
	// Register first, holding the session lock so a concurrent Lookup
	// that wins the race blocks on Push/Config until the session is
	// actually built (or sees it closed if the build failed).
	gs := &GatewaySession{id: id, gw: gw}
	gs.mu.Lock()
	if err := gw.reg.Put(id, gs); err != nil {
		gs.mu.Unlock()
		switch {
		case errors.Is(err, registry.ErrDuplicate):
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		case errors.Is(err, registry.ErrFull):
			return nil, fmt.Errorf("%w (%d)", ErrGatewayFull, gw.cfg.maxSessions)
		}
		return nil, err
	}
	sess, err := gw.cur.Load().OpenSession(id)
	if err != nil {
		gs.closed = true
		gs.mu.Unlock()
		gw.reg.CompareAndRemove(id, gs)
		return nil, err
	}
	gs.sess = sess
	gs.mu.Unlock()
	gw.tel.SessionOpened()
	return gs, nil
}

// Lookup returns the live session registered under id.
func (gw *Gateway) Lookup(id string) (*GatewaySession, bool) {
	return gw.reg.Get(id)
}

// CloseSession closes and unregisters the session with the given id.
func (gw *Gateway) CloseSession(id string) error {
	gs, ok := gw.reg.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	gs.Close()
	return nil
}

// EvictIdle reclaims every session idle for at least the gateway's idle
// TTL (by the gateway's clock) and returns the evicted ids. With no TTL
// configured it is a no-op. Production callers run it on a ticker; tests
// drive it manually with a fake clock.
func (gw *Gateway) EvictIdle() []string {
	evicted := gw.reg.EvictIdle(gw.cfg.idleTTL)
	ids := make([]string, 0, len(evicted))
	for _, e := range evicted {
		// closeEvicted reports false if the session lost the race to a
		// concurrent Close, which already counted it.
		if e.Val.closeEvicted() {
			gw.tel.SessionEvicted()
		}
		ids = append(ids, e.ID)
	}
	return ids
}

// NumSessions returns the number of currently open sessions.
func (gw *Gateway) NumSessions() int { return gw.reg.Len() }

// Classify runs one stateless classification through the current model.
// After a SwapModel it serves the new model immediately.
func (gw *Gateway) Classify(b *Batch) (Classification, error) {
	return gw.cur.Load().Classify(b)
}

// Stats returns a point-in-time snapshot of the gateway's serving
// telemetry. Counters persist across model hot-swaps.
func (gw *Gateway) Stats() ServingStats {
	return ServingStats(gw.tel.Snapshot())
}

// GatewaySession is one device's session as served through a Gateway: a
// Session pinned to the service that minted it, plus the registry
// bookkeeping (idle tracking, eviction, id lookup). Unlike a bare
// Session, a GatewaySession serializes its own method calls, so it may be
// driven from multiple goroutines (e.g. whichever HTTP handler holds the
// device's next batch).
type GatewaySession struct {
	id string
	gw *Gateway

	mu     sync.Mutex
	sess   *Session
	closed bool
}

// ID returns the session id.
func (s *GatewaySession) ID() string { return s.id }

// Service returns the service the session is pinned to. After a
// SwapModel it keeps returning the minting service until Migrate.
func (s *GatewaySession) Service() *Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil {
		return nil
	}
	return s.sess.svc
}

// Config returns the sensor configuration the session's device must
// currently sample at.
func (s *GatewaySession) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil { // lost the race to a failed Open build
		return Config{}
	}
	return s.sess.Config()
}

// Push feeds a batch of raw readings and returns the classification
// events it completed, refreshing the session's idle timer. It returns
// ErrSessionClosed after Close or eviction.
func (s *GatewaySession) Push(b *Batch) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	events, err := s.sess.Push(b)
	if err != nil {
		return nil, err
	}
	s.gw.reg.Touch(s.id)
	return events, nil
}

// Reset returns the session's engine and controller to their initial
// state.
func (s *GatewaySession) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess != nil {
		s.sess.Reset()
	}
}

// Migrate re-pins the session to the gateway's current service. It is
// the opt-in half of the hot-swap contract: after a SwapModel, a live
// session keeps its old model until it migrates (or closes). Migration
// mints a fresh engine and controller on the new service, so adaptation
// state restarts from the top configuration — the same contract as
// closing and reopening, but keeping the id registered and the idle
// timer running. Migrating while already current is a no-op.
func (s *GatewaySession) Migrate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %q", ErrSessionClosed, s.id)
	}
	cur := s.gw.cur.Load()
	if cur == s.sess.svc {
		return nil
	}
	fresh, err := cur.OpenSession(s.id)
	if err != nil {
		return err
	}
	s.sess.Close()
	s.sess = fresh
	return nil
}

// Close unregisters the session and releases its resources. Closing
// twice (or closing a session the sweeper already evicted) is a no-op.
func (s *GatewaySession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sess.Close()
	s.mu.Unlock()
	// Drop our own registration only: if an eviction sweep already
	// reclaimed this id and a new session reused it, leave that one be.
	s.gw.reg.CompareAndRemove(s.id, s)
	s.gw.tel.SessionClosed()
}

// closeEvicted is Close for the eviction sweep, which has already removed
// the registration. It reports whether this call actually closed the
// session (false if a concurrent Close got there first).
func (s *GatewaySession) closeEvicted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	s.sess.Close()
	return true
}
