// BenchmarkGateway* is the fleet-gateway baseline group: session churn
// through the sharded registry, lookup on a populated fleet, one-shot
// Classify overhead versus a bare Service, and telemetry counter
// overhead. Run alongside BenchmarkService* to price the gateway layer.
package adasense_test

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"adasense"
	"adasense/internal/telemetry"
)

// benchCluster federates benchGateway's replica into a five-member
// fleet (peers never dialed: routing is pure ring math).
func benchCluster(b *testing.B) *adasense.Cluster {
	b.Helper()
	replicas := []adasense.Replica{{ID: "gw-self"}}
	for i := 0; i < 4; i++ {
		replicas = append(replicas, adasense.Replica{
			ID:  fmt.Sprintf("gw-peer-%d", i),
			URL: fmt.Sprintf("http://peer-%d.internal:8734", i),
		})
	}
	c, err := adasense.NewCluster(benchGateway(b), "gw-self", replicas)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterRoute measures the federation routing decision on the
// local-hit path — the per-request tax every device of a five-replica
// fleet pays before its gateway work begins. It must report zero
// allocations: routing is one ring hash plus a binary search.
func BenchmarkClusterRoute(b *testing.B) {
	c := benchCluster(b)
	// Find a device this replica owns, so the loop prices the local hit.
	local := ""
	for i := 0; i < 10000 && local == ""; i++ {
		if id := fmt.Sprintf("bench-dev-%d", i); c.Owns(id) {
			local = id
		}
	}
	if local == "" {
		b.Fatal("no device hashes to the local replica")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, isLocal := c.Route(local); !isLocal || rep.ID != "gw-self" {
			b.Fatal("local device routed to a peer")
		}
	}
}

// BenchmarkClusterRouteRemote prices the routing decision when the
// device belongs to a peer (the forward itself is network-bound and not
// measured here).
func BenchmarkClusterRouteRemote(b *testing.B) {
	c := benchCluster(b)
	remote := ""
	for i := 0; i < 10000 && remote == ""; i++ {
		if id := fmt.Sprintf("bench-dev-%d", i); !c.Owns(id) {
			remote = id
		}
	}
	if remote == "" {
		b.Fatal("no device hashes to a peer")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, isLocal := c.Route(remote); isLocal || rep.ID == "gw-self" {
			b.Fatal("remote device routed locally")
		}
	}
}

// benchGateway mirrors benchService: the benchmark lab's classifier with
// the fleet pinned at the top configuration.
func benchGateway(b *testing.B) *adasense.Gateway {
	b.Helper()
	sys := &adasense.System{Network: lab(b).Net}
	gw, err := adasense.NewGateway(sys,
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})))
	if err != nil {
		b.Fatal(err)
	}
	return gw
}

// BenchmarkGatewaySessionChurn measures the registry-tracked session
// lifecycle — open, lookup, one 1 s push, close — the gateway-side cost a
// connecting device pays on top of BenchmarkServiceOpenSession.
func BenchmarkGatewaySessionChurn(b *testing.B) {
	gw := benchGateway(b)
	batch := benchBatch(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := gw.Open("bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := gw.Lookup("bench"); !ok {
			b.Fatal("lookup lost the session")
		}
		if _, err := sess.Push(batch); err != nil {
			b.Fatal(err)
		}
		sess.Close()
	}
}

// BenchmarkGatewayLookup measures id lookup on a thousand-device fleet —
// the hot path every routed request pays.
func BenchmarkGatewayLookup(b *testing.B) {
	gw := benchGateway(b)
	const fleet = 1000
	ids := make([]string, fleet)
	for i := range ids {
		ids[i] = fmt.Sprintf("device-%d", i)
		if _, err := gw.Open(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := gw.Lookup(ids[i%fleet]); !ok {
				b.Fatal("lookup miss")
			}
			i++
		}
	})
}

// BenchmarkGatewayConcurrentClassify measures one-shot classification
// through the gateway's atomic service pointer; compare with
// BenchmarkServiceConcurrentClassify for the gateway's added overhead
// (one atomic load plus telemetry).
func BenchmarkGatewayConcurrentClassify(b *testing.B) {
	gw := benchGateway(b)
	batch := benchBatch(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := gw.Classify(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGatewayConcurrentSessions measures streaming throughput with
// one registry-tracked session per worker — the gateway's steady state,
// comparable to BenchmarkServiceConcurrentSessions.
func BenchmarkGatewayConcurrentSessions(b *testing.B) {
	gw := benchGateway(b)
	batch := benchBatch(b, 1)
	var n atomic.Int32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprintf("bench-%d", n.Add(1))
		sess, err := gw.Open(id)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		for pb.Next() {
			if _, err := sess.Push(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGatewayTelemetry measures the serving counters in isolation —
// the per-batch accounting cost every push pays — and Stats(), the
// /metrics snapshot cost.
func BenchmarkGatewayTelemetry(b *testing.B) {
	b.Run("count", func(b *testing.B) {
		var c telemetry.Counters
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.BatchPushed(1)
				c.PoolHit()
			}
		})
	})
	b.Run("snapshot", func(b *testing.B) {
		gw := benchGateway(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := gw.Stats(); s.ModelSwaps != 0 {
				b.Fatal("unexpected swap")
			}
		}
	})
}

// BenchmarkGatewayRateLimitCheck prices the admission check a rate-limited
// push pays on top of BenchmarkGatewaySessionChurn: one sharded
// device-bucket take plus one global-bucket take, with rates high enough
// that nothing is denied.
func BenchmarkGatewayRateLimitCheck(b *testing.B) {
	sys := &adasense.System{Network: lab(b).Net}
	gw, err := adasense.NewGateway(sys,
		adasense.WithRateLimit(adasense.RateLimit{
			DevicePerSec: 1e9, DeviceBurst: 1 << 30,
			GlobalPerSec: 1e9, GlobalBurst: 1 << 30,
		}),
		adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
			return adasense.NewBaselineController()
		})))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := gw.Open("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	batch := benchBatch(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Push(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayWriteMetrics prices one Prometheus scrape: a Stats
// snapshot plus the text exposition of every series.
func BenchmarkGatewayWriteMetrics(b *testing.B) {
	gw := benchGateway(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gw.WriteMetrics(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
