package adasense

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"adasense/internal/hashring"
	"adasense/internal/rollout"
)

// Rollout errors. The HTTP front end maps them onto status codes
// (409 / 404 / 423).
var (
	// ErrRolloutActive reports a model swap or rollout start while
	// another rollout is still observing — an operator push must not
	// silently clobber a half-promoted canary.
	ErrRolloutActive = errors.New("adasense: rollout in progress")
	// ErrNoRollout reports a rollout operation when none has ever run.
	ErrNoRollout = errors.New("adasense: no rollout")
	// ErrRolloutFrozen reports a rollout start of a candidate container
	// that a previous rollout rolled back on a health gate: the same
	// bytes cannot be re-canaried until the freeze is lifted (restart,
	// or ship a retrained container with a different hash).
	ErrRolloutFrozen = errors.New("adasense: candidate frozen by an earlier rollback")
)

// RolloutConfig parameterizes a staged rollout: stage fractions,
// observation window, and health-gate tolerances.
type RolloutConfig = rollout.Config

// RolloutStatus is the externally visible snapshot of a rollout — the
// payload behind GET /v1/rollout.
type RolloutStatus = rollout.Status

// RolloutHealth is one serving arm's observation-window snapshot.
type RolloutHealth = rollout.Health

// DefaultRolloutConfig returns the default rollout policy: a 5% → 25%
// → 100% cohort ladder, a one-minute observation window, 200 samples
// per arm, and the default gate tolerances.
func DefaultRolloutConfig() RolloutConfig { return rollout.Default() }

// CandidateHash identifies a candidate model container: the hash of its
// serialized bytes in the placement ring's hash space, so cohort
// membership derived from it is identical on every replica.
func CandidateHash(data []byte) uint64 {
	return hashring.DefaultHash(string(data))
}

// activeRollout pairs the stage machine with the canary service it
// gates traffic onto. The candidate System is kept so completion can
// publish it as the gateway's current model.
type activeRollout struct {
	ctl    *rollout.Controller
	canary *Service
}

// RolloutTransition describes one applied stage-machine transition, as
// handed to the cluster layer for fleet-wide replication.
type RolloutTransition struct {
	CandidateHash uint64 `json:"candidate_hash"`
	Action        string `json:"action"`
	ToStage       int    `json:"to_stage"`
	Reason        string `json:"reason"`
}

// StartRollout begins a staged rollout of the candidate model container
// in data: the container is validated and wrapped in a canary service,
// and devices inside the first stage's ring-slice cohort are re-pinned
// onto it — everyone else keeps serving the incumbent. At most one
// rollout is active at a time (ErrRolloutActive), and a candidate that
// a previous rollout rolled back on a health gate is frozen
// (ErrRolloutFrozen).
//
// From here the rollout drives itself: serving traffic feeds both arms'
// health windows, and evaluation (piggybacked on pushes, plus any
// RolloutTick ticker) promotes through cfg.Stages or rolls back per the
// gates. The decision is local to this gateway; under a Cluster, stage
// transitions replicate so the fleet agrees.
func (gw *Gateway) StartRollout(data []byte, cfg RolloutConfig) (RolloutStatus, error) {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	if gw.draining.Load() {
		return RolloutStatus{}, fmt.Errorf("%w: rejecting rollout start", ErrGatewayDraining)
	}
	if ar := gw.rollouts.active.Load(); ar != nil {
		return RolloutStatus{}, fmt.Errorf("%w: candidate %016x at stage %d",
			ErrRolloutActive, ar.ctl.Candidate(), ar.ctl.Stage())
	}
	hash := CandidateHash(data)
	if reason, frozen := gw.rollouts.frozen[hash]; frozen {
		return RolloutStatus{}, fmt.Errorf("%w: %016x (%s)", ErrRolloutFrozen, hash, reason)
	}
	sys, err := LoadSystem(bytes.NewReader(data))
	if err != nil {
		return RolloutStatus{}, fmt.Errorf("adasense: rollout candidate rejected: %w", err)
	}
	svc, err := NewService(sys, gw.cfg.svcOpts...)
	if err != nil {
		return RolloutStatus{}, fmt.Errorf("adasense: rollout candidate rejected: %w", err)
	}
	svc.tel = gw.tel
	svc.lat = &gw.lat
	ctl, err := rollout.New(cfg, hash, gw.cfg.clock())
	if err != nil {
		return RolloutStatus{}, fmt.Errorf("adasense: %w", err)
	}
	gw.rollouts.active.Store(&activeRollout{ctl: ctl, canary: svc})
	gw.repinSessions()
	return ctl.Status(), nil
}

// AbortRollout rolls the active rollout back by operator decision:
// every cohort device returns to the incumbent. Unlike a health-gate
// rollback, an abort does not freeze the candidate hash — the same
// container may be rolled out again. Returns the settled status, or
// ErrNoRollout when nothing is active.
func (gw *Gateway) AbortRollout(reason string) (RolloutStatus, error) {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	ar := gw.rollouts.active.Load()
	if ar == nil {
		return RolloutStatus{}, fmt.Errorf("%w: nothing to abort", ErrNoRollout)
	}
	if reason == "" {
		reason = "operator abort"
	}
	gw.applyRolloutLocked(ar, rollout.ActionAbort, ar.ctl.Stage(), reason, true)
	return ar.ctl.Status(), nil
}

// RolloutStatus returns the active rollout's live status, or the final
// status of the last settled one. ErrNoRollout means no rollout has
// run since the gateway started.
func (gw *Gateway) RolloutStatus() (RolloutStatus, error) {
	if ar := gw.rollouts.active.Load(); ar != nil {
		return ar.ctl.Status(), nil
	}
	if st := gw.rollouts.last.Load(); st != nil {
		return *st, nil
	}
	return RolloutStatus{}, ErrNoRollout
}

// RolloutActive reports whether a rollout is currently observing.
func (gw *Gateway) RolloutActive() bool { return gw.rollouts.active.Load() != nil }

// RolloutTick evaluates the active rollout's current stage and applies
// the verdict (promote / complete / rollback), reporting the action
// applied ("" while holding or with no active rollout). Evaluation
// also piggybacks on serving pushes, so a ticker is only needed to
// settle rollouts on fleets whose traffic can go quiet mid-stage.
func (gw *Gateway) RolloutTick() string {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	return gw.rolloutTickLocked()
}

func (gw *Gateway) rolloutTickLocked() string {
	ar := gw.rollouts.active.Load()
	if ar == nil {
		return ""
	}
	v := ar.ctl.Evaluate(gw.cfg.clock())
	if v.Action == "" {
		return ""
	}
	to := ar.ctl.Stage()
	if v.Action == rollout.ActionPromote {
		to++
	}
	if !gw.applyRolloutLocked(ar, v.Action, to, v.Reason, true) {
		return ""
	}
	return v.Action
}

// rolloutMaybeTick is the push-path evaluation hook: opportunistic
// (TryLock — a contended tick is happening anyway) and cheap when idle.
func (gw *Gateway) rolloutMaybeTick() {
	if gw.rollouts.active.Load() == nil {
		return
	}
	if !gw.rolloutMu.TryLock() {
		return
	}
	defer gw.rolloutMu.Unlock()
	gw.rolloutTickLocked()
}

// ApplyRolloutTransition applies a stage transition decided elsewhere
// in the fleet (replicated by the cluster layer). It is idempotent: a
// duplicate or stale transition reports false with no error — including
// a settling transition arriving after this replica already settled the
// same candidate itself, the normal case when two replicas decide
// concurrently. A transition for a candidate hash this replica has
// never seen reports ErrNoRollout — it missed the start.
func (gw *Gateway) ApplyRolloutTransition(tr RolloutTransition) (bool, error) {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	ar := gw.rollouts.active.Load()
	if ar == nil || ar.ctl.Candidate() != tr.CandidateHash {
		if last := gw.rollouts.last.Load(); last != nil && last.CandidateHash == fmt.Sprintf("%016x", tr.CandidateHash) {
			return false, nil
		}
		return false, fmt.Errorf("%w: no active rollout for candidate %016x", ErrNoRollout, tr.CandidateHash)
	}
	switch tr.Action {
	case rollout.ActionPromote, rollout.ActionComplete, rollout.ActionRollback, rollout.ActionAbort:
	default:
		return false, fmt.Errorf("adasense: unknown rollout action %q", tr.Action)
	}
	return gw.applyRolloutLocked(ar, tr.Action, tr.ToStage, tr.Reason, false), nil
}

// applyRolloutLocked performs one stage-machine transition under
// rolloutMu: it drives the controller, re-pins affected sessions,
// settles completion/rollback (including publishing the canary as the
// new current model on completion, and freezing the candidate on a
// health rollback), and — for locally decided transitions — hands the
// transition to the cluster notify hook for fleet-wide replication.
// Reports whether the transition actually applied (false on stale or
// duplicate transitions, which keeps replication idempotent).
func (gw *Gateway) applyRolloutLocked(ar *activeRollout, action string, to int, reason string, local bool) bool {
	now := gw.cfg.clock()
	switch action {
	case rollout.ActionPromote:
		if !ar.ctl.Advance(to, now, reason) {
			return false
		}
	case rollout.ActionComplete:
		if !ar.ctl.Complete(now, reason) {
			return false
		}
		// The canary is the fleet's model now: publish it for new
		// sessions and one-shot classifies, and advance the model
		// generation so lagging replicas catch up by pulling it. The
		// canary service gains its generation pin here — until
		// promotion it carried 0, so state snapshots never grafted
		// incumbent trajectories onto the canary arm.
		gw.swapMu.Lock()
		ar.canary.gen = gw.modelGen.Load() + 1
		gw.cur.Store(ar.canary)
		gw.modelGen.Add(1)
		gw.swapMu.Unlock()
		gw.tel.ModelSwap()
		gw.tel.RolloutPromoted()
		gw.settleRollout(ar)
	case rollout.ActionRollback, rollout.ActionAbort:
		if !ar.ctl.Rollback(now, action, reason) {
			return false
		}
		if action == rollout.ActionRollback {
			gw.rollouts.frozen[ar.ctl.Candidate()] = reason
		}
		gw.tel.RolloutRolledBack()
		gw.settleRollout(ar)
	default:
		return false
	}
	gw.repinSessions()
	if local && gw.rolloutNotify != nil {
		gw.rolloutNotify(RolloutTransition{
			CandidateHash: ar.ctl.Candidate(), Action: action, ToStage: to, Reason: reason,
		})
	}
	return true
}

// settleRollout retires the active rollout, retaining its final status
// for GET /v1/rollout.
func (gw *Gateway) settleRollout(ar *activeRollout) {
	st := ar.ctl.Status()
	gw.rollouts.last.Store(&st)
	gw.rollouts.active.Store(nil)
}

// serviceFor resolves the service a device's session must pin to: the
// canary while an active rollout has the device in the current cohort,
// the gateway's current service otherwise.
func (gw *Gateway) serviceFor(id string) *Service {
	if ar := gw.rollouts.active.Load(); ar != nil && ar.ctl.InCohort(id) {
		return ar.canary
	}
	return gw.cur.Load()
}

// repinSessions sweeps the registry after a rollout transition,
// re-pinning every session whose device's cohort membership changed:
// newly cohorted devices move onto the canary, and a rollback returns
// every canary device to the incumbent. Devices outside the cohort are
// untouched mid-stage. Unlike Migrate, a re-pin deliberately mints a
// fresh engine with no state carry-over: both rollout arms must be
// judged from the same warm-up footing, and a rollback must discard
// whatever trajectory the canary induced.
func (gw *Gateway) repinSessions() {
	gw.reg.Range(func(id string, gs *GatewaySession) bool {
		gs.repin()
		return true
	})
}

// repin re-resolves the session's service pin, swapping engines only
// when the rollout-aware resolution differs from the current pin. On a
// re-open failure the old pin is kept — the session keeps serving.
func (s *GatewaySession) repin() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.sess == nil {
		return
	}
	want := s.gw.serviceFor(s.id)
	if s.sess.svc == want {
		return
	}
	fresh, err := want.OpenSession(s.id)
	if err != nil {
		return
	}
	s.sess.Close()
	s.sess = fresh
}

// rolloutObserve feeds one push's classification events into the active
// rollout's health window, attributed to the arm (canary or incumbent)
// of the service the events were produced on. The power reading is the
// estimated sensor current of the configuration each event left in
// effect — the power half of the paper's accuracy/power trade-off,
// aggregated fleet-wide.
func (gw *Gateway) rolloutObserve(svc *Service, events []Event) {
	ar := gw.rollouts.active.Load()
	if ar == nil || len(events) == 0 {
		return
	}
	canary := svc == ar.canary
	power := svc.PowerModel()
	for _, ev := range events {
		ar.ctl.Record(canary, int(ev.Classification.Activity), ev.Classification.Confidence, power.CurrentUA(ev.Config))
	}
	if canary {
		gw.tel.RolloutCanaryClassifies(len(events))
	}
}

// rolloutObserveError attributes one failed push to the arm that
// served it.
func (gw *Gateway) rolloutObserveError(svc *Service) {
	ar := gw.rollouts.active.Load()
	if ar == nil || svc == nil {
		return
	}
	ar.ctl.RecordError(svc == ar.canary)
}

// ModelGeneration returns the gateway's model generation: 1 at
// startup, advanced by every SwapModel, rollout completion, and
// installed catch-up pull. Generations order models fleet-wide so a
// replica can tell from a request header that a peer serves a newer
// model than it does.
func (gw *Gateway) ModelGeneration() uint64 { return gw.modelGen.Load() }

// InstallModel installs a model shipped by a peer at the peer's
// generation: the gateway adopts max(local+1, gen) so generations stay
// monotonic on both the pushing and the pulling side. Like SwapModel it
// is rejected while a rollout is observing.
func (gw *Gateway) InstallModel(sys *System, gen uint64) error {
	gw.rolloutMu.Lock()
	defer gw.rolloutMu.Unlock()
	if gw.rollouts.active.Load() != nil {
		return fmt.Errorf("%w: refusing model install", ErrRolloutActive)
	}
	svc, err := NewService(sys, gw.cfg.svcOpts...)
	if err != nil {
		return fmt.Errorf("adasense: install rejected: %w", err)
	}
	svc.tel = gw.tel
	svc.lat = &gw.lat
	gw.swapMu.Lock()
	next := gw.modelGen.Load() + 1
	if gen > next {
		next = gen
	}
	svc.gen = next
	gw.cur.Store(svc)
	gw.modelGen.Store(next)
	gw.swapMu.Unlock()
	gw.tel.ModelSwap()
	return nil
}

// WriteModel serializes the gateway's current model container to w and
// returns the generation it was serving at — the payload behind
// GET /v1/model, which is how a lagging replica catches up to the
// fleet's model without an operator re-push.
func (gw *Gateway) WriteModel(w io.Writer) (uint64, error) {
	// Snapshot (service, generation) as a pair under swapMu — both are
	// only stored under it — then serialize outside the lock so a slow
	// reader cannot block swaps.
	gw.swapMu.Lock()
	svc, gen := gw.cur.Load(), gw.modelGen.Load()
	gw.swapMu.Unlock()
	if err := svc.System().Save(w); err != nil {
		return 0, err
	}
	return gen, nil
}

// rolloutStageGauge is the value of the adasense_rollout_stage gauge:
// the active rollout's stage index, or -1 while none is observing.
func (gw *Gateway) rolloutStageGauge() (stage int, fraction float64) {
	ar := gw.rollouts.active.Load()
	if ar == nil {
		return -1, 0
	}
	return ar.ctl.Stage(), ar.ctl.Fraction()
}
