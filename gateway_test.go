package adasense_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adasense"
)

// altSystem trains a second, deliberately small system so hot-swap tests
// can tell "old model" from "new model" by service identity.
var (
	altOnce sync.Once
	altSys  *adasense.System
	altErr  error
)

func altSystem(t *testing.T) *adasense.System {
	t.Helper()
	altOnce.Do(func() {
		altSys, _, altErr = adasense.TrainSystem(adasense.TrainingConfig{
			Windows: 600, Epochs: 10, Seed: 99,
		})
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altSys
}

// baselineFleet pins every session at the top configuration, so one
// pre-sampled batch stays valid for the whole test no matter how many
// pushes or migrations happen.
func baselineFleet() adasense.GatewayOption {
	return adasense.WithServiceOptions(adasense.WithControllerFactory(func() adasense.Controller {
		return adasense.NewBaselineController()
	}))
}

func testGateway(t *testing.T, opts ...adasense.GatewayOption) *adasense.Gateway {
	t.Helper()
	sys, _ := trainedSystem(t)
	gw, err := adasense.NewGateway(sys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

// gatewayBatch samples one second of walking at the top configuration.
func gatewayBatch(t *testing.T) *adasense.Batch {
	t.Helper()
	m := adasense.NewMotion(mustSchedule(t, adasense.Segment{Activity: adasense.Walk, Duration: 30}), 21)
	return adasense.NewSampler(adasense.DefaultNoiseModel(), 22).
		Sample(m, adasense.ParetoStates()[0], 0, 1)
}

func TestNewGatewayValidation(t *testing.T) {
	sys, _ := trainedSystem(t)
	if _, err := adasense.NewGateway(nil); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithMaxSessions(-1)); err == nil {
		t.Fatal("negative session cap accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithIdleTTL(-time.Second)); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithGatewayClock(nil)); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithRegistryShards(0)); err == nil {
		t.Fatal("zero shards accepted")
	}
	// Service options propagate — an invalid one fails gateway construction.
	if _, err := adasense.NewGateway(sys, adasense.WithServiceOptions(adasense.WithWindow(-1))); err == nil {
		t.Fatal("invalid service option accepted")
	}
}

func TestGatewaySessionLifecycle(t *testing.T) {
	gw := testGateway(t, baselineFleet(), adasense.WithMaxSessions(2))

	if _, err := gw.Open(""); err == nil {
		t.Fatal("empty id accepted")
	}
	a, err := gw.Open("dev-a")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "dev-a" {
		t.Fatalf("ID = %q", a.ID())
	}
	if got, ok := gw.Lookup("dev-a"); !ok || got != a {
		t.Fatal("Lookup did not find the open session")
	}
	if _, err := gw.Open("dev-a"); !errors.Is(err, adasense.ErrSessionExists) {
		t.Fatalf("duplicate Open = %v, want ErrSessionExists", err)
	}
	if _, err := gw.Open("dev-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Open("dev-c"); !errors.Is(err, adasense.ErrGatewayFull) {
		t.Fatalf("over-capacity Open = %v, want ErrGatewayFull", err)
	}
	if gw.NumSessions() != 2 {
		t.Fatalf("NumSessions = %d, want 2", gw.NumSessions())
	}

	// Push works through the gateway session and counts telemetry.
	b := gatewayBatch(t)
	events, err := a.Push(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("1 s push produced no event")
	}

	// Close: idempotent, rejects Push, frees the id and the capacity slot.
	a.Close()
	a.Close()
	if _, err := a.Push(b); !errors.Is(err, adasense.ErrSessionClosed) {
		t.Fatalf("Push after Close = %v, want ErrSessionClosed", err)
	}
	if _, ok := gw.Lookup("dev-a"); ok {
		t.Fatal("closed session still registered")
	}
	if _, err := gw.Open("dev-c"); err != nil {
		t.Fatalf("Open after Close = %v, capacity slot leaked", err)
	}
	if err := gw.CloseSession("dev-b"); err != nil {
		t.Fatal(err)
	}
	if err := gw.CloseSession("dev-b"); !errors.Is(err, adasense.ErrSessionNotFound) {
		t.Fatalf("double CloseSession = %v, want ErrSessionNotFound", err)
	}

	s := gw.Stats()
	if s.SessionsOpened != 3 || s.SessionsClosed != 2 || s.SessionsEvicted != 0 {
		t.Fatalf("lifecycle counters = %+v", s)
	}
	if s.BatchesPushed != 1 || s.EventsEmitted == 0 {
		t.Fatalf("data-path counters = %+v", s)
	}
}

func TestGatewayDeterministicIdleEviction(t *testing.T) {
	clk := time.Unix(5000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	gw := testGateway(t, baselineFleet(),
		adasense.WithIdleTTL(60*time.Second),
		adasense.WithGatewayClock(now))
	b := gatewayBatch(t)

	s1, err := gw.Open("idle")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := gw.Open("busy")
	if err != nil {
		t.Fatal(err)
	}

	advance(30 * time.Second)
	if _, err := s2.Push(b); err != nil { // refreshes busy's idle timer
		t.Fatal(err)
	}
	advance(30 * time.Second)

	// idle has been idle the full 60 s, busy only 30 s.
	evicted := gw.EvictIdle()
	if len(evicted) != 1 || evicted[0] != "idle" {
		t.Fatalf("EvictIdle = %v, want [idle]", evicted)
	}
	if _, err := s1.Push(b); !errors.Is(err, adasense.ErrSessionClosed) {
		t.Fatalf("Push after eviction = %v, want ErrSessionClosed", err)
	}
	if _, ok := gw.Lookup("idle"); ok {
		t.Fatal("evicted session still registered")
	}
	if _, err := s2.Push(b); err != nil {
		t.Fatalf("survivor broken after sweep: %v", err)
	}

	// The evicted id is immediately reusable, and closing the stale
	// handle must not unregister its successor.
	s1b, err := gw.Open("idle")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if got, ok := gw.Lookup("idle"); !ok || got != s1b {
		t.Fatal("stale Close unregistered the reopened session")
	}

	s := gw.Stats()
	if s.SessionsEvicted != 1 || s.SessionsOpened != 3 {
		t.Fatalf("eviction counters = %+v", s)
	}

	// A gateway without a TTL never evicts.
	gwNoTTL := testGateway(t, baselineFleet())
	if _, err := gwNoTTL.Open("x"); err != nil {
		t.Fatal(err)
	}
	if ev := gwNoTTL.EvictIdle(); len(ev) != 0 {
		t.Fatalf("TTL-less gateway evicted %v", ev)
	}
}

func TestGatewaySwapModel(t *testing.T) {
	gw := testGateway(t, baselineFleet())
	b := gatewayBatch(t)

	live, err := gw.Open("pinned")
	if err != nil {
		t.Fatal(err)
	}
	oldSvc := gw.Service()
	if live.Service() != oldSvc {
		t.Fatal("fresh session not pinned to the current service")
	}

	// An invalid system must be rejected without touching the gateway.
	if err := gw.SwapModel(nil); err == nil {
		t.Fatal("nil system swap accepted")
	}
	if gw.Service() != oldSvc || gw.Stats().ModelSwaps != 0 {
		t.Fatal("rejected swap disturbed the gateway")
	}

	if err := gw.SwapModel(altSystem(t)); err != nil {
		t.Fatal(err)
	}
	newSvc := gw.Service()
	if newSvc == oldSvc {
		t.Fatal("SwapModel did not repoint the gateway")
	}
	if newSvc.System() != altSystem(t) {
		t.Fatal("new service does not serve the swapped system")
	}

	// Live sessions keep the pinned model; new sessions get the new one.
	if live.Service() != oldSvc {
		t.Fatal("swap moved a live session")
	}
	if _, err := live.Push(b); err != nil {
		t.Fatalf("live session broken by swap: %v", err)
	}
	fresh, err := gw.Open("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Service() != newSvc {
		t.Fatal("post-swap session not on the new service")
	}

	// Migrate is the opt-in re-pin; migrating while current is a no-op.
	if err := live.Migrate(); err != nil {
		t.Fatal(err)
	}
	if live.Service() != newSvc {
		t.Fatal("Migrate did not re-pin the session")
	}
	if err := live.Migrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Push(b); err != nil {
		t.Fatalf("migrated session broken: %v", err)
	}

	live.Close()
	if err := live.Migrate(); !errors.Is(err, adasense.ErrSessionClosed) {
		t.Fatalf("Migrate after Close = %v, want ErrSessionClosed", err)
	}
	if got := gw.Stats().ModelSwaps; got != 1 {
		t.Fatalf("ModelSwaps = %d, want 1", got)
	}
}

// TestGatewaySwapWhileSessionsPush is the hot-swap race proof: a fleet of
// sessions pushes continuously (half of them migrating as they go) while
// the main goroutine hot-swaps the model back and forth and serves
// one-shot Classify calls. Under -race this must be clean, every push
// must succeed, and the telemetry totals must balance.
func TestGatewaySwapWhileSessionsPush(t *testing.T) {
	const pushers, pushes, swaps = 8, 50, 20
	sysA, _ := trainedSystem(t)
	sysB := altSystem(t)
	gw := testGateway(t, baselineFleet())
	b := gatewayBatch(t)

	var wg sync.WaitGroup
	errs := make([]error, pushers)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess, err := gw.Open(fmt.Sprintf("dev-%d", p))
			if err != nil {
				errs[p] = err
				return
			}
			defer sess.Close()
			for i := 0; i < pushes; i++ {
				if _, err := sess.Push(b); err != nil {
					errs[p] = fmt.Errorf("push %d: %w", i, err)
					return
				}
				if p%2 == 0 && i%10 == 9 {
					if err := sess.Migrate(); err != nil {
						errs[p] = fmt.Errorf("migrate at %d: %w", i, err)
						return
					}
				}
			}
		}(p)
	}

	for i := 0; i < swaps; i++ {
		sys := sysA
		if i%2 == 0 {
			sys = sysB
		}
		if err := gw.SwapModel(sys); err != nil {
			t.Fatal(err)
		}
		if _, err := gw.Classify(b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for p, err := range errs {
		if err != nil {
			t.Fatalf("pusher %d: %v", p, err)
		}
	}
	s := gw.Stats()
	if s.BatchesPushed != pushers*pushes {
		t.Fatalf("BatchesPushed = %d, want %d", s.BatchesPushed, pushers*pushes)
	}
	if s.ModelSwaps != swaps || s.ClassifyCalls != swaps {
		t.Fatalf("swap counters = %+v", s)
	}
	if s.SessionsOpened != pushers || s.SessionsClosed != pushers {
		t.Fatalf("session counters = %+v", s)
	}
	if gw.NumSessions() != 0 {
		t.Fatalf("NumSessions = %d after all closed", gw.NumSessions())
	}
	if s.PoolHitRate == 0 {
		t.Fatalf("pool hit rate stayed zero: %+v", s)
	}
}

// TestGatewayHardeningValidation covers the option validation added with
// auth, rate limiting and drain.
func TestGatewayHardeningValidation(t *testing.T) {
	sys, _ := trainedSystem(t)
	if _, err := adasense.NewGateway(sys, adasense.WithAuth("")); err == nil {
		t.Fatal("empty auth token accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithDrainTimeout(-time.Second)); err == nil {
		t.Fatal("negative drain timeout accepted")
	}
	// A positive rate with no burst never admits anything — rejected.
	if _, err := adasense.NewGateway(sys, adasense.WithRateLimit(adasense.RateLimit{DevicePerSec: 1})); err == nil {
		t.Fatal("device rate without burst accepted")
	}
	if _, err := adasense.NewGateway(sys, adasense.WithRateLimit(adasense.RateLimit{GlobalPerSec: 1})); err == nil {
		t.Fatal("global rate without burst accepted")
	}
}

// TestGatewayStatsSnapshot is the regression test for the Stats gauges:
// registry occupancy, capacity and drain state must come out of the one
// snapshot, so /metrics never reaches into gateway internals.
func TestGatewayStatsSnapshot(t *testing.T) {
	gw := testGateway(t, baselineFleet(), adasense.WithMaxSessions(5))

	s := gw.Stats()
	if s.SessionsLive != 0 || s.SessionCapacity != 5 || s.Draining {
		t.Fatalf("fresh stats = %+v", s)
	}
	for _, id := range []string{"a", "b", "c"} {
		if _, err := gw.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	if s := gw.Stats(); s.SessionsLive != 3 || s.SessionsLive != gw.NumSessions() {
		t.Fatalf("occupancy = %+v, NumSessions = %d", s, gw.NumSessions())
	}
	if err := gw.CloseSession("b"); err != nil {
		t.Fatal(err)
	}
	if s := gw.Stats(); s.SessionsLive != 2 {
		t.Fatalf("occupancy after close = %+v", s)
	}
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s = gw.Stats()
	if !s.Draining || s.SessionsLive != 0 || s.SessionCapacity != 5 {
		t.Fatalf("stats after drain = %+v", s)
	}

	// The Prometheus writer is fed by the same snapshot.
	var b strings.Builder
	if err := gw.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adasense_sessions_live 0\n",
		"adasense_session_capacity 5\n",
		"adasense_draining 1\n",
		"adasense_sessions_opened_total 3\n",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("WriteMetrics missing %q:\n%s", want, b.String())
		}
	}
}

func TestGatewayAuthorize(t *testing.T) {
	open := testGateway(t, baselineFleet())
	if open.AuthRequired() {
		t.Fatal("auth-less gateway claims AuthRequired")
	}
	if !open.Authorize("") || !open.Authorize("anything") {
		t.Fatal("auth-less gateway rejected a token")
	}

	gw := testGateway(t, baselineFleet(), adasense.WithAuth("hunter2"))
	if !gw.AuthRequired() {
		t.Fatal("AuthRequired = false with WithAuth")
	}
	if gw.Authorize("") || gw.Authorize("hunter") || gw.Authorize("hunter22") {
		t.Fatal("wrong token authorized")
	}
	if !gw.Authorize("hunter2") {
		t.Fatal("right token rejected")
	}
	if got := gw.Stats().AuthRejects; got != 3 {
		t.Fatalf("AuthRejects = %d, want 3", got)
	}
}

func TestGatewayRateLimit(t *testing.T) {
	clk := time.Unix(8000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	gw := testGateway(t, baselineFleet(),
		adasense.WithGatewayClock(now),
		adasense.WithRateLimit(adasense.RateLimit{
			DevicePerSec: 1, DeviceBurst: 2,
			GlobalPerSec: 100, GlobalBurst: 100,
		}))
	b := gatewayBatch(t)

	// Device burst of 2: the open plus one push, then ErrRateLimited.
	sess, err := gw.Open("dev")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Push(b); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Push(b); !errors.Is(err, adasense.ErrRateLimited) {
		t.Fatalf("over-budget push = %v, want ErrRateLimited", err)
	}
	// The rejected push did not close or corrupt the session.
	advance(time.Second)
	if _, err := sess.Push(b); err != nil {
		t.Fatalf("post-refill push = %v", err)
	}

	// A flooding open is shed before any session is built.
	if _, err := gw.Open("dev"); !errors.Is(err, adasense.ErrRateLimited) {
		t.Fatalf("over-budget open = %v, want ErrRateLimited", err)
	}

	// Classify charges only the global bucket; exhaust it and every
	// keyed call is denied globally too.
	for i := 0; i < 200; i++ {
		gw.Classify(b)
	}
	if _, err := gw.Classify(b); !errors.Is(err, adasense.ErrRateLimited) {
		t.Fatalf("over-global classify = %v, want ErrRateLimited", err)
	}
	advance(10 * time.Second) // refills both buckets to their bursts
	if _, err := sess.Push(b); err != nil {
		t.Fatalf("push after global refill = %v", err)
	}

	s := gw.Stats()
	if s.RateLimitedDevice != 2 {
		t.Fatalf("RateLimitedDevice = %d, want 2", s.RateLimitedDevice)
	}
	if s.RateLimitedGlobal == 0 {
		t.Fatalf("RateLimitedGlobal = %d, want > 0", s.RateLimitedGlobal)
	}
}

func TestGatewayDrain(t *testing.T) {
	gw := testGateway(t, baselineFleet())
	b := gatewayBatch(t)

	sessions := make([]*adasense.GatewaySession, 5)
	for i := range sessions {
		s, err := gw.Open(fmt.Sprintf("dev-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	if gw.Draining() {
		t.Fatal("Draining before Drain")
	}
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !gw.Draining() || gw.NumSessions() != 0 {
		t.Fatalf("after drain: draining=%v live=%d", gw.Draining(), gw.NumSessions())
	}
	for _, s := range sessions {
		if _, err := s.Push(b); !errors.Is(err, adasense.ErrSessionClosed) {
			t.Fatalf("push after drain = %v, want ErrSessionClosed", err)
		}
	}
	if _, err := gw.Open("late"); !errors.Is(err, adasense.ErrGatewayDraining) {
		t.Fatalf("open while draining = %v, want ErrGatewayDraining", err)
	}
	// Drain is idempotent, and the close counters balance exactly once.
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := gw.Stats()
	if s.SessionsClosed != 5 || s.SessionsOpened != 5 {
		t.Fatalf("drain counters = %+v", s)
	}

	// A dead context surfaces as a drain error when sessions are live.
	gw2 := testGateway(t, baselineFleet())
	if _, err := gw2.Open("x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := gw2.Drain(ctx); err == nil && gw2.NumSessions() != 0 {
		t.Fatal("canceled drain reported success with live sessions")
	}
}

// TestGatewayDrainWhileFleetPushes is the SIGTERM-style race proof: a
// fleet pushes continuously, a model swap lands mid-drain, and Drain
// must still return with zero live sessions before its deadline. Run
// with -race. The gateway clock is fake, pinning idle eviction out of
// the picture; drain progress itself is wall-clock bounded.
func TestGatewayDrainWhileFleetPushes(t *testing.T) {
	const pushers = 8
	clk := time.Unix(9000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }

	gw := testGateway(t, baselineFleet(),
		adasense.WithGatewayClock(now),
		adasense.WithIdleTTL(time.Hour),
		adasense.WithDrainTimeout(20*time.Second))
	b := gatewayBatch(t)

	// Open the whole fleet before the drain can begin, then let every
	// pusher hammer its session until the drain closes it under them.
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		sess, err := gw.Open(fmt.Sprintf("dev-%d", p))
		if err != nil {
			t.Fatalf("open %d: %v", p, err)
		}
		wg.Add(1)
		go func(p int, sess *adasense.GatewaySession) {
			defer wg.Done()
			for {
				if _, err := sess.Push(b); err != nil {
					if !errors.Is(err, adasense.ErrSessionClosed) {
						t.Errorf("pusher %d: %v", p, err)
					}
					break
				}
			}
			// The session was closed, so the drain has begun; a reopen
			// must be refused.
			if _, err := gw.Open(fmt.Sprintf("dev-%d-re", p)); !errors.Is(err, adasense.ErrGatewayDraining) {
				t.Errorf("pusher %d reopen = %v, want ErrGatewayDraining", p, err)
			}
		}(p, sess)
	}

	// Drain while the fleet pushes, with a swap landing mid-drain.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		if err := gw.SwapModel(altSystem(t)); err != nil {
			t.Errorf("swap mid-drain: %v", err)
		}
	}()
	if err := gw.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-swapDone
	wg.Wait()

	if n := gw.NumSessions(); n != 0 {
		t.Fatalf("live sessions after drain = %d", n)
	}
	s := gw.Stats()
	if s.SessionsClosed != s.SessionsOpened {
		t.Fatalf("open/close counters unbalanced after drain: %+v", s)
	}
	if !s.Draining || s.SessionsLive != 0 {
		t.Fatalf("stats after drain = %+v", s)
	}
}
