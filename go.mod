module adasense

go 1.24
