module adasense

go 1.23
