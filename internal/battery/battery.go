// Package battery converts the simulator's average-current results into
// device-lifetime projections — the quantity that actually motivates the
// paper ("wearable devices have strict power ... limitations"): a 69 %
// sensor-current reduction only matters through the days of battery life
// it buys.
package battery

import "fmt"

// Pack models a small primary cell or rechargeable battery.
type Pack struct {
	// CapacityUAh is the usable capacity in µAh.
	CapacityUAh float64
	// SelfDischargePerMonth is the fraction of capacity lost per month
	// regardless of load (e.g. 0.02 for a lithium coin cell).
	SelfDischargePerMonth float64
}

// CoinCellCR2032 returns a CR2032-class pack: 225 mAh, ~1 % self-discharge
// per month.
func CoinCellCR2032() Pack {
	return Pack{CapacityUAh: 225_000, SelfDischargePerMonth: 0.01}
}

// SmallLiPo40 returns a 40 mAh wearable LiPo with ~3 % self-discharge per
// month.
func SmallLiPo40() Pack {
	return Pack{CapacityUAh: 40_000, SelfDischargePerMonth: 0.03}
}

// Validate reports whether the pack parameters are physical.
func (p Pack) Validate() error {
	if p.CapacityUAh <= 0 {
		return fmt.Errorf("battery: non-positive capacity %v", p.CapacityUAh)
	}
	if p.SelfDischargePerMonth < 0 || p.SelfDischargePerMonth >= 1 {
		return fmt.Errorf("battery: self-discharge %v outside [0,1)", p.SelfDischargePerMonth)
	}
	return nil
}

// selfDischargeUA converts the monthly self-discharge fraction into an
// equivalent constant current draw.
func (p Pack) selfDischargeUA() float64 {
	const hoursPerMonth = 730.0
	return p.CapacityUAh * p.SelfDischargePerMonth / hoursPerMonth
}

// LifetimeHours returns how long the pack sustains the given average load
// current (µA), accounting for self-discharge. It panics on an invalid
// pack; a non-positive load returns the self-discharge-limited lifetime.
func (p Pack) LifetimeHours(avgLoadUA float64) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if avgLoadUA < 0 {
		avgLoadUA = 0
	}
	total := avgLoadUA + p.selfDischargeUA()
	if total <= 0 {
		return 0
	}
	return p.CapacityUAh / total
}

// LifetimeDays is LifetimeHours / 24.
func (p Pack) LifetimeDays(avgLoadUA float64) float64 {
	return p.LifetimeHours(avgLoadUA) / 24
}

// Improvement returns the lifetime ratio of running at optimized vs
// baseline average current — the end-user meaning of the paper's power
// savings. Self-discharge damps the ratio: halving the load does not quite
// double the life.
func (p Pack) Improvement(baselineUA, optimizedUA float64) float64 {
	base := p.LifetimeHours(baselineUA)
	if base == 0 {
		return 0
	}
	return p.LifetimeHours(optimizedUA) / base
}
