package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLifetimeBasic(t *testing.T) {
	p := Pack{CapacityUAh: 1000} // no self-discharge
	if got := p.LifetimeHours(100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("1000 µAh at 100 µA = %v h, want 10", got)
	}
	if got := p.LifetimeDays(100); math.Abs(got-10.0/24) > 1e-12 {
		t.Fatalf("LifetimeDays = %v", got)
	}
}

func TestSelfDischargeLimitsIdleLifetime(t *testing.T) {
	p := CoinCellCR2032()
	idle := p.LifetimeHours(0)
	if math.IsInf(idle, 1) || idle <= 0 {
		t.Fatalf("idle lifetime = %v, want finite positive", idle)
	}
	// 1 %/month self-discharge bounds shelf life to ~100 months.
	months := idle / 730
	if months < 50 || months > 150 {
		t.Fatalf("shelf life = %v months, want ~100", months)
	}
}

func TestLifetimeMonotoneInLoad(t *testing.T) {
	p := SmallLiPo40()
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw)+1, float64(bRaw)+1
		if a > b {
			a, b = b, a
		}
		return p.LifetimeHours(a) >= p.LifetimeHours(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImprovementDampedBySelfDischarge(t *testing.T) {
	ideal := Pack{CapacityUAh: 40_000}
	leaky := SmallLiPo40()
	// Paper-class saving: 180 µA baseline → 56 µA optimized.
	idealRatio := ideal.Improvement(180, 56)
	leakyRatio := leaky.Improvement(180, 56)
	if math.Abs(idealRatio-180.0/56) > 1e-9 {
		t.Fatalf("ideal ratio = %v, want %v", idealRatio, 180.0/56)
	}
	if leakyRatio >= idealRatio {
		t.Fatal("self-discharge should damp the improvement")
	}
	if leakyRatio < 2 {
		t.Fatalf("leaky ratio = %v, still expect a substantial win", leakyRatio)
	}
}

func TestValidate(t *testing.T) {
	bad := []Pack{
		{CapacityUAh: 0},
		{CapacityUAh: -1},
		{CapacityUAh: 100, SelfDischargePerMonth: -0.1},
		{CapacityUAh: 100, SelfDischargePerMonth: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid pack accepted", i)
		}
	}
	if CoinCellCR2032().Validate() != nil || SmallLiPo40().Validate() != nil {
		t.Fatal("presets invalid")
	}
}

func TestNegativeLoadClamps(t *testing.T) {
	p := SmallLiPo40()
	if p.LifetimeHours(-5) != p.LifetimeHours(0) {
		t.Fatal("negative load should clamp to 0")
	}
}

func TestImprovementZeroBase(t *testing.T) {
	p := Pack{CapacityUAh: 100, SelfDischargePerMonth: 0}
	// Zero load and zero self-discharge: lifetime defined as 0 → ratio 0.
	if p.Improvement(0, 0) != 0 {
		t.Fatalf("Improvement with zero base = %v", p.Improvement(0, 0))
	}
}
