// Package core implements the paper's primary contribution: the adaptive
// low-power sensing controller (SPOT — State Prediction Optimization
// Technique, Section IV-C/D/E) and the buffered HAR classification
// pipeline it drives (Section III-A).
//
// The controller watches the stream of per-second classifications. While
// the recognized activity is stable it walks the sensor down a list of
// Pareto-optimal configurations, one step each time a stability counter
// fills; the moment the recognized activity changes it snaps back to the
// highest-accuracy configuration. The confidence-gated variant ignores
// low-confidence activity changes so that classifier noise does not
// forfeit the accumulated power savings.
package core

import (
	"fmt"

	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// Controller adapts the sensor configuration to the classification stream.
// Implementations are driven at the classification cadence (one Observe
// per classified window, i.e. once per second in the paper's setup).
type Controller interface {
	// Config returns the sensor configuration to use for the next
	// sensing episode.
	Config() sensor.Config
	// Observe feeds one classification result (the predicted activity
	// and the classifier's softmax confidence for it) to the controller.
	Observe(activity synth.Activity, confidence float64)
	// Reset returns the controller to its initial state.
	Reset()
}

// BatchObserver is an optional Controller extension: controllers that
// decide from the raw signal (the intensity-based baseline) receive each
// classified window before Observe is called.
type BatchObserver interface {
	ObserveBatch(b *sensor.Batch)
}

// StatefulController is an optional Controller extension for controllers
// whose Observe accumulates mutable state (SPOT's stability counter and
// remembered activity). It lets a live session be snapshotted on one
// replica and restored on another without losing the adaptation
// trajectory.
//
// The payload carries only the mutable state — never the configuration
// (state list, thresholds, mode), which the restoring side must already
// hold identically. Engine.Restore verifies the configurations agree by
// comparing the post-restore Config() against the snapshot.
type StatefulController interface {
	Controller
	// StateKind identifies the payload format (e.g. "spot/1"). Restore
	// rejects a payload recorded under a different kind.
	StateKind() string
	// AppendState appends the controller's mutable state to dst and
	// returns the extended slice.
	AppendState(dst []byte) []byte
	// RestoreState replaces the controller's mutable state with a
	// payload previously produced by AppendState. On error the
	// controller is left Reset.
	RestoreState(data []byte) error
}

// Fixed is a trivial controller that never leaves one configuration. The
// paper's accuracy/power baseline pins the sensor at F100_A128 via Fixed.
type Fixed struct {
	Cfg sensor.Config
}

// Config returns the pinned configuration.
func (f *Fixed) Config() sensor.Config { return f.Cfg }

// Observe ignores the classification stream.
func (f *Fixed) Observe(synth.Activity, float64) {}

// Reset does nothing.
func (f *Fixed) Reset() {}

// NewBaseline returns the paper's baseline controller: the sensor pinned
// at the highest-accuracy configuration F100_A128.
func NewBaseline() *Fixed {
	return &Fixed{Cfg: sensor.ParetoStates()[0]}
}

var _ Controller = (*Fixed)(nil)

// Condition identifies which of the paper's FSM transition conditions
// (Fig. 4) fired on an Observe call. Warmup is the first observation,
// before any previous activity exists to compare with.
type Condition int

const (
	// Warmup: first observation; no transition.
	Warmup Condition = iota
	// C1: same activity, counter below the stability threshold; stay and
	// count.
	C1
	// C2: same activity, counter reached the stability threshold; step
	// one state down and restart the counter.
	C2
	// C3: activity changed; snap back to the first (highest-accuracy)
	// state.
	C3
	// C4: same activity in the last state; stay (the FSM's absorbing
	// self-loop).
	C4
	// Suppressed: the activity changed but with confidence below the
	// confidence threshold; SPOT-with-confidence ignores it (Section
	// IV-E).
	Suppressed
)

// String returns the paper's condition label.
func (c Condition) String() string {
	switch c {
	case Warmup:
		return "warmup"
	case C1:
		return "C1"
	case C2:
		return "C2"
	case C3:
		return "C3"
	case C4:
		return "C4"
	case Suppressed:
		return "suppressed"
	default:
		return fmt.Sprintf("condition(%d)", int(c))
	}
}
