package core

import (
	"fmt"

	"adasense/internal/sensor"
)

// Engine drives the HAR framework in real time against a physical sensor:
// the application configures its IMU to Engine.Config(), pushes raw
// batches as they arrive, and acts on the emitted events — a
// classification every hop, plus the configuration the sensor must be
// switched to for the next episode.
//
// The closed-loop simulator (internal/sim) bypasses Engine because it owns
// time; Engine is the deployment-facing counterpart with the same
// buffering and controller semantics. It is not safe for concurrent use.
type Engine struct {
	pipeline   *Pipeline
	controller Controller

	window     *SlidingWindow
	hopSamples int // samples per classification tick at the current config
	pending    int // samples accumulated since the last tick
	windowSec  float64
	hopSec     float64

	// chunk is Push's scratch for slicing an incoming batch at hop
	// boundaries; reusing it keeps the per-chunk header off the heap
	// (SlidingWindow.Push copies the samples out, so aliasing the
	// caller's batch is safe). Cleared before Push returns.
	chunk sensor.Batch
}

// Event is one classification tick emitted by Push.
type Event struct {
	// Classification is the pipeline's output for the window ending at
	// this tick.
	Classification Classification
	// Config is the configuration the sensor must use from now on.
	Config sensor.Config
	// ConfigChanged reports whether Config differs from the
	// configuration in effect when the tick's window was sampled.
	ConfigChanged bool
}

// NewEngine builds an engine over a trained pipeline and a controller.
// windowSec/hopSec default to the paper's 2 s window with 1 s hop when
// zero.
func NewEngine(p *Pipeline, c Controller, windowSec, hopSec float64) (*Engine, error) {
	if p == nil || c == nil {
		return nil, fmt.Errorf("core: engine needs a pipeline and a controller")
	}
	if windowSec == 0 {
		windowSec = 2
	}
	if hopSec == 0 {
		hopSec = 1
	}
	if hopSec <= 0 || windowSec < hopSec {
		return nil, fmt.Errorf("core: invalid window/hop %v/%v", windowSec, hopSec)
	}
	c.Reset()
	w, err := NewSlidingWindow(c.Config(), windowSec)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		pipeline:   p,
		controller: c,
		window:     w,
		windowSec:  windowSec,
		hopSec:     hopSec,
	}
	e.hopSamples = e.window.Config().BatchSize(hopSec)
	return e, nil
}

// Config returns the configuration the sensor must currently use.
func (e *Engine) Config() sensor.Config { return e.window.Config() }

// Push feeds a batch of raw readings sampled under the engine's current
// configuration and returns the classification events it completed (zero
// or more, one per elapsed hop). It returns an error if the batch was
// sampled under a different configuration — the caller failed to apply a
// requested switch.
//
// If an event switches the configuration, any samples of the same batch
// beyond that tick are discarded: they were acquired under the old
// configuration, which a physical sensor cannot retroactively change.
// Pushing in chunks of at most one hop avoids any loss.
func (e *Engine) Push(b *sensor.Batch) ([]Event, error) {
	if b.Config != e.window.Config() {
		return nil, fmt.Errorf("core: pushed %s batch while engine expects %s",
			b.Config.Name(), e.window.Config().Name())
	}
	var events []Event
	offset := 0
	for offset < b.Len() {
		take := b.Len() - offset
		if room := e.hopSamples - e.pending; take > room {
			take = room
		}
		e.chunk = sensor.Batch{
			Config: b.Config,
			X:      b.X[offset : offset+take],
			Y:      b.Y[offset : offset+take],
			Z:      b.Z[offset : offset+take],
		}
		e.window.Push(&e.chunk)
		e.pending += take
		offset += take

		if e.pending < e.hopSamples {
			break // batch exhausted before the next tick
		}
		e.pending = 0
		win := e.window.Window()
		cls := e.pipeline.Classify(win)
		if bo, ok := e.controller.(BatchObserver); ok {
			bo.ObserveBatch(win)
		}
		e.controller.Observe(cls.Activity, cls.Confidence)

		next := e.controller.Config()
		changed := next != e.window.Config()
		events = append(events, Event{Classification: cls, Config: next, ConfigChanged: changed})
		if changed {
			// Remaining samples were acquired under the old
			// configuration; drop them and wait for data at the new one.
			e.window.Reset(next)
			e.hopSamples = next.BatchSize(e.hopSec)
			break
		}
	}
	e.chunk = sensor.Batch{} // don't pin the caller's batch between pushes
	return events, nil
}

// Reset returns the engine (and its controller) to the initial state.
func (e *Engine) Reset() {
	e.controller.Reset()
	e.window.Reset(e.controller.Config())
	e.hopSamples = e.window.Config().BatchSize(e.hopSec)
	e.pending = 0
}
