package core

import (
	"fmt"

	"adasense/internal/sensor"
)

// EngineState is a point-in-time snapshot of everything an Engine
// accumulates between Push calls: the current sensor configuration, the
// pending-sample count toward the next classification tick, the sliding
// window's buffered samples, and the controller's mutable state. It is a
// plain value — serialization lives with the caller (the adasense
// package's ADSS container), so core stays wire-format free.
type EngineState struct {
	// Config is the sensor configuration in effect at the snapshot.
	Config sensor.Config
	// Pending counts samples accumulated since the last tick; it is
	// always in [0, hopSamples) at the snapshotting engine's config.
	Pending int
	// X, Y, Z hold the sliding window's trailing samples.
	X, Y, Z []float64
	// CtlKind names the controller payload format ("" for stateless
	// controllers such as Fixed).
	CtlKind string
	// CtlState is the controller's AppendState payload.
	CtlState []byte
}

// WindowLen returns the number of buffered window samples.
func (es *EngineState) WindowLen() int { return len(es.X) }

// SnapshotInto captures the engine's state into es, reusing es's slices
// when they have capacity. The engine is left untouched and keeps
// running.
func (e *Engine) SnapshotInto(es *EngineState) {
	es.Config = e.window.Config()
	es.Pending = e.pending
	es.X, es.Y, es.Z = es.X[:0], es.Y[:0], es.Z[:0]
	if win := e.window.Window(); win != nil {
		es.X = append(es.X, win.X...)
		es.Y = append(es.Y, win.Y...)
		es.Z = append(es.Z, win.Z...)
	}
	if sc, ok := e.controller.(StatefulController); ok {
		es.CtlKind = sc.StateKind()
		es.CtlState = sc.AppendState(es.CtlState[:0])
	} else {
		es.CtlKind = ""
		es.CtlState = es.CtlState[:0]
	}
}

// Snapshot returns a freshly allocated snapshot of the engine's state.
func (e *Engine) Snapshot() *EngineState {
	es := &EngineState{}
	e.SnapshotInto(es)
	return es
}

// Restore replaces the engine's accumulated state with a snapshot taken
// from an engine over the same window/hop geometry and an identically
// configured controller. Every field is validated before it is applied:
// the controller payload kind must match, the post-restore controller
// configuration must equal the snapshot's (catching skewed state lists),
// and the pending count and window length must fit the configuration's
// hop and window sizes. On error the engine is left Reset — the cold
// fallback state — never half-restored.
func (e *Engine) Restore(es *EngineState) error {
	if err := es.Config.Validate(); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	sc, stateful := e.controller.(StatefulController)
	switch {
	case es.CtlKind == "" && stateful:
		return fmt.Errorf("core: restore: snapshot carries no state for stateful controller %q", sc.StateKind())
	case es.CtlKind != "" && !stateful:
		return fmt.Errorf("core: restore: snapshot controller state %q but engine controller is stateless", es.CtlKind)
	case stateful && es.CtlKind != sc.StateKind():
		return fmt.Errorf("core: restore: controller state kind %q, engine wants %q", es.CtlKind, sc.StateKind())
	}
	hop := es.Config.BatchSize(e.hopSec)
	if es.Pending < 0 || es.Pending >= hop {
		return fmt.Errorf("core: restore: pending %d outside hop of %d samples", es.Pending, hop)
	}
	if len(es.X) != len(es.Y) || len(es.X) != len(es.Z) {
		return fmt.Errorf("core: restore: ragged window axes %d/%d/%d", len(es.X), len(es.Y), len(es.Z))
	}
	if max := es.Config.BatchSize(e.windowSec); len(es.X) > max {
		return fmt.Errorf("core: restore: window of %d samples exceeds %d at %s", len(es.X), max, es.Config.Name())
	}

	e.controller.Reset()
	if stateful {
		if err := e.controller.(StatefulController).RestoreState(es.CtlState); err != nil {
			e.Reset()
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	if got := e.controller.Config(); got != es.Config {
		// The restored controller resolves its state to a different
		// configuration than the snapshotting one did — the two sides
		// hold different state lists. Refuse rather than classify
		// wrongly-rated samples.
		e.Reset()
		return fmt.Errorf("core: restore: controller resolves to %s, snapshot was at %s",
			got.Name(), es.Config.Name())
	}
	e.window.Reset(es.Config)
	if len(es.X) > 0 {
		e.window.Push(&sensor.Batch{Config: es.Config, X: es.X, Y: es.Y, Z: es.Z})
	}
	e.hopSamples = hop
	e.pending = es.Pending
	return nil
}
