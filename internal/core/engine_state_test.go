package core

import (
	"bytes"
	"reflect"
	"testing"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// controllerFlavor builds one controller variant for the differential
// suite; fresh() must return a controller configured identically to the
// one the control engine runs, never a shared instance.
type controllerFlavor struct {
	name  string
	fresh func() Controller
}

func snapshotFlavors() []controllerFlavor {
	custom := sensor.ParetoStates()[1:3]
	return []controllerFlavor{
		{"fixed-baseline", func() Controller { return NewBaseline() }},
		{"spot-plain", func() Controller { return NewPaperSPOT(2) }},
		{"spot-confidence", func() Controller { return NewPaperSPOTWithConfidence(2) }},
		{"spot-zero-threshold", func() Controller { return NewPaperSPOT(0) }},
		{"spot-custom-states", func() Controller { return MustSPOT(custom, 1, 0) }},
	}
}

// TestEngineSnapshotRestoreDifferential is the equivalence proof behind
// stateful session handoff: an engine restored from a snapshot must be
// observationally indistinguishable from the engine that never moved.
// For every controller flavor and a set of snapshot points chosen to
// straddle hop boundaries (pending = 0 as well as mid-hop remainders),
// the control engine runs uninterrupted while a fresh engine is restored
// from its snapshot; both then consume the identical batch stream and
// must emit identical events at every step.
func TestEngineSnapshotRestoreDifferential(t *testing.T) {
	p := trainedPipeline(t)
	sched := synth.MustSchedule(
		synth.Segment{Activity: synth.Sit, Duration: 8},
		synth.Segment{Activity: synth.Walk, Duration: 8},
		synth.Segment{Activity: synth.Sit, Duration: 8},
		synth.Segment{Activity: synth.LieDown, Duration: 40},
	)
	// 0.3 s slivers against a 1 s hop: the pending remainder cycles
	// through non-zero values and periodically lands exactly on a tick,
	// so these snapshot points cover both sides of the window boundary.
	const sliver = 0.3
	snapPoints := []int{1, 3, 7, 10, 13, 20, 27}

	for _, fl := range snapshotFlavors() {
		for _, snapAt := range snapPoints {
			t.Run(fl.name+"/after-"+string(rune('0'+snapAt/10))+string(rune('0'+snapAt%10)), func(t *testing.T) {
				m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(401))
				s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(402))
				control, err := NewEngine(p, fl.fresh(), 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				clock := 0.0
				for i := 0; i < snapAt; i++ {
					b := s.Sample(m, control.Config(), clock, clock+sliver)
					if _, err := control.Push(b); err != nil {
						t.Fatal(err)
					}
					clock += sliver
				}

				es := control.Snapshot()
				restored, err := NewEngine(p, fl.fresh(), 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := restored.Restore(es); err != nil {
					t.Fatalf("restore at sliver %d: %v", snapAt, err)
				}
				if restored.Config() != control.Config() {
					t.Fatalf("restored config %s, control %s",
						restored.Config().Name(), control.Config().Name())
				}

				// The rest of the stream: identical batches into both
				// engines, identical events out — including ticks that
				// switch the configuration mid-batch and discard the tail.
				for i := 0; i < 80; i++ {
					cfg := control.Config()
					if restored.Config() != cfg {
						t.Fatalf("sliver %d: configs diverged (%s vs %s)",
							i, restored.Config().Name(), cfg.Name())
					}
					b := s.Sample(m, cfg, clock, clock+sliver)
					evControl, errControl := control.Push(b)
					evRestored, errRestored := restored.Push(b)
					if (errControl == nil) != (errRestored == nil) {
						t.Fatalf("sliver %d: push errors diverged (%v vs %v)", i, errControl, errRestored)
					}
					if !reflect.DeepEqual(evControl, evRestored) {
						t.Fatalf("sliver %d: event streams diverged:\ncontrol:  %+v\nrestored: %+v",
							i, evControl, evRestored)
					}
					clock += sliver
				}

				// After identical histories the two snapshots must agree
				// field for field (the byte-level proof lives with the
				// ADSS codec; here the states themselves must match).
				a, b := control.Snapshot(), restored.Snapshot()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("post-replay snapshots diverged:\ncontrol:  %+v\nrestored: %+v", a, b)
				}
			})
		}
	}
}

// TestEngineSnapshotLeavesEngineRunning guards Snapshot's read-only
// contract: taking a snapshot must not perturb the engine it reads.
func TestEngineSnapshotLeavesEngineRunning(t *testing.T) {
	p := trainedPipeline(t)
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 60})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(403))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(404))
	e, err := NewEngine(p, NewPaperSPOT(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for tick := 0; tick < 10; tick++ {
		e.Snapshot() // interleave snapshots with the drive loop
		b := s.Sample(m, e.Config(), float64(tick), float64(tick)+1)
		ev, err := e.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		events += len(ev)
	}
	if events != 10 {
		t.Fatalf("snapshots perturbed the drive loop: %d events over 10 s, want 10", events)
	}
}

// TestEngineSnapshotIntoReusesSlices pins SnapshotInto's no-alloc
// contract for the steady state: once the EngineState's slices have
// grown to the window size, repeated snapshots must not allocate new
// backing arrays.
func TestEngineSnapshotIntoReusesSlices(t *testing.T) {
	p := trainedPipeline(t)
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Sit, Duration: 60})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(405))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(406))
	e, err := NewEngine(p, NewBaseline(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 4; tick++ {
		if _, err := e.Push(s.Sample(m, e.Config(), float64(tick), float64(tick)+1)); err != nil {
			t.Fatal(err)
		}
	}
	var es EngineState
	e.SnapshotInto(&es)
	x, y, z := &es.X[0], &es.Y[0], &es.Z[0]
	e.SnapshotInto(&es)
	if &es.X[0] != x || &es.Y[0] != y || &es.Z[0] != z {
		t.Fatal("SnapshotInto reallocated slices that had capacity")
	}
}

// TestEngineRestoreRejects drives every validation branch of
// Engine.Restore and asserts the reject leaves the engine in its cold
// Reset state, never half-restored.
func TestEngineRestoreRejects(t *testing.T) {
	p := trainedPipeline(t)
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 120})

	drive := func(e *Engine, seed uint64, slivers int) {
		t.Helper()
		m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(seed))
		s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(seed+1))
		clock := 0.0
		for i := 0; i < slivers; i++ {
			b := s.Sample(m, e.Config(), clock, clock+0.3)
			if _, err := e.Push(b); err != nil {
				t.Fatal(err)
			}
			clock += 0.3
		}
	}
	snapshotOf := func(ctl Controller, slivers int) *EngineState {
		t.Helper()
		e, err := NewEngine(p, ctl, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		drive(e, 501, slivers)
		return e.Snapshot()
	}

	cases := []struct {
		name   string
		target func() Controller
		mangle func(*EngineState)
	}{
		{"invalid config", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.Config = sensor.Config{FreqHz: -1} }},
		{"stateless snapshot into stateful controller", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.CtlKind, es.CtlState = "", nil }},
		{"stateful snapshot into stateless controller", func() Controller { return NewBaseline() },
			func(es *EngineState) {}},
		{"kind mismatch", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.CtlKind = "spot/0" }},
		{"negative pending", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.Pending = -1 }},
		{"pending at a full hop", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.Pending = int(es.Config.FreqHz) }},
		{"ragged axes", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.Y = es.Y[:len(es.Y)-1] }},
		{"oversized window", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) {
				n := es.Config.BatchSize(2) + 1
				es.X = make([]float64, n)
				es.Y = make([]float64, n)
				es.Z = make([]float64, n)
			}},
		{"corrupt controller payload", func() Controller { return NewPaperSPOT(2) },
			func(es *EngineState) { es.CtlState = es.CtlState[:len(es.CtlState)-1] }},
		{"state index outside target state list", func() Controller { return MustSPOT(sensor.ParetoStates()[:2], 2, 0) },
			func(es *EngineState) {
				// Pin the snapshot to the floor state deterministically
				// (the engine-driven fixture's index depends on the
				// pipeline's classifications): drive a bare FSM there.
				spot := NewPaperSPOT(0)
				spot.Observe(synth.Walk, 1)
				for spot.StateIndex() < spot.NumStates()-1 {
					spot.Observe(synth.Walk, 1)
				}
				es.Config = spot.Config()
				es.CtlState = spot.AppendState(nil)
				es.Pending = 0
				es.X, es.Y, es.Z = nil, nil, nil
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Snapshot a paper-SPOT engine deep enough to have descended
			// (zero threshold: every stable tick steps down), then mangle.
			es := snapshotOf(NewPaperSPOT(0), 40)
			if es.CtlKind != "spot/1" {
				t.Fatalf("fixture snapshot kind %q", es.CtlKind)
			}
			tc.mangle(es)
			e, err := NewEngine(p, tc.target(), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			cold := e.Config()
			if err := e.Restore(es); err == nil {
				t.Fatal("mangled snapshot accepted")
			}
			if e.Config() != cold {
				t.Fatalf("failed restore left engine at %s, want cold %s",
					e.Config().Name(), cold.Name())
			}
			// The engine must still serve from its cold state.
			drive(e, 601, 4)
		})
	}
}

// TestEngineRestoreRejectsSkewedStateList covers the post-restore
// configuration check: a snapshot whose controller state resolves to a
// different configuration on the restoring side (the two replicas hold
// different state lists) must be refused, not silently misclassified.
func TestEngineRestoreRejectsSkewedStateList(t *testing.T) {
	p := trainedPipeline(t)
	states := sensor.ParetoStates()
	es := func() *EngineState {
		e, err := NewEngine(p, MustSPOT(states, 0, 0), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 60})
		m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(701))
		s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(702))
		for tick := 0; tick < 6; tick++ {
			if _, err := e.Push(s.Sample(m, e.Config(), float64(tick), float64(tick)+1)); err != nil {
				t.Fatal(err)
			}
		}
		snap := e.Snapshot()
		if snap.Config == states[0] {
			t.Fatal("fixture: zero-threshold SPOT never descended")
		}
		return snap
	}()

	// Same number of states, same kind, but a reversed list: the restored
	// index resolves to a different configuration than the snapshot's.
	reversed := make([]sensor.Config, len(states))
	for i, s := range states {
		reversed[len(states)-1-i] = s
	}
	e, err := NewEngine(p, MustSPOT(reversed, 0, 0), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(es); err == nil {
		t.Fatal("snapshot restored across skewed state lists")
	}
	if e.Config() != reversed[0] {
		t.Fatalf("failed restore left engine at %s", e.Config().Name())
	}
}

// TestSPOTStateRoundTrip pins the spot/1 payload: encode, decode into a
// fresh FSM with the same configuration, and compare observable state.
func TestSPOTStateRoundTrip(t *testing.T) {
	src := NewPaperSPOTWithConfidence(2)
	src.Observe(synth.Walk, 0.9)
	src.Observe(synth.Walk, 0.9)
	src.Observe(synth.Walk, 0.9)
	src.Observe(synth.Walk, 0.9)
	payload := src.AppendState(nil)
	if len(payload) != spotStateLen {
		t.Fatalf("payload is %d bytes, want %d", len(payload), spotStateLen)
	}
	dst := NewPaperSPOTWithConfidence(2)
	if err := dst.RestoreState(payload); err != nil {
		t.Fatal(err)
	}
	if dst.StateIndex() != src.StateIndex() || dst.Counter() != src.Counter() ||
		dst.LastCondition() != src.LastCondition() {
		t.Fatalf("round trip diverged: %d/%d/%v vs %d/%d/%v",
			dst.StateIndex(), dst.Counter(), dst.LastCondition(),
			src.StateIndex(), src.Counter(), src.LastCondition())
	}
	if !bytes.Equal(dst.AppendState(nil), payload) {
		t.Fatal("re-encoded payload differs")
	}
}

// TestSPOTRestoreStateRejects drives RestoreState's validation branches;
// every reject must leave the FSM Reset.
func TestSPOTRestoreStateRejects(t *testing.T) {
	mk := func(idx, counter, last uint32, hasLast byte, cond uint32) []byte {
		b := make([]byte, 0, spotStateLen)
		b = append(b, byte(idx), byte(idx>>8), byte(idx>>16), byte(idx>>24))
		b = append(b, byte(counter), byte(counter>>8), byte(counter>>16), byte(counter>>24))
		b = append(b, byte(last), byte(last>>8), byte(last>>16), byte(last>>24))
		b = append(b, hasLast)
		return append(b, byte(cond), byte(cond>>8), byte(cond>>16), byte(cond>>24))
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"short payload", make([]byte, spotStateLen-1)},
		{"long payload", make([]byte, spotStateLen+1)},
		{"index out of range", mk(4, 0, 0, 1, uint32(C1))},
		{"implausible counter", mk(0, 1<<31, 0, 1, uint32(C1))},
		{"activity out of range", mk(0, 0, uint32(synth.NumActivities), 1, uint32(C1))},
		{"non-boolean hasLast", mk(0, 0, 0, 2, uint32(C1))},
		{"condition out of range", mk(0, 0, 0, 1, uint32(Suppressed)+1)},
		{"progress before first observation", mk(1, 0, 0, 0, uint32(C1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewPaperSPOT(2)
			s.Observe(synth.Walk, 1)
			s.Observe(synth.Walk, 1)
			if err := s.RestoreState(tc.payload); err == nil {
				t.Fatal("bad payload accepted")
			}
			if s.StateIndex() != 0 || s.Counter() != 0 || s.LastCondition() != Warmup {
				t.Fatal("reject left the FSM half-restored")
			}
		})
	}
}
