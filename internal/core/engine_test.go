package core

import (
	"testing"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func engineFixture(t *testing.T, ctl Controller) (*Engine, *synth.Motion, *sensor.Sampler) {
	t.Helper()
	p := trainedPipeline(t)
	e, err := NewEngine(p, ctl, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched := synth.MustSchedule(
		synth.Segment{Activity: synth.Sit, Duration: 60},
		synth.Segment{Activity: synth.Walk, Duration: 60},
	)
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(101))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(102))
	return e, m, s
}

func TestNewEngineValidation(t *testing.T) {
	p := trainedPipeline(t)
	if _, err := NewEngine(nil, NewBaseline(), 0, 0); err == nil {
		t.Fatal("nil pipeline accepted")
	}
	if _, err := NewEngine(p, nil, 0, 0); err == nil {
		t.Fatal("nil controller accepted")
	}
	if _, err := NewEngine(p, NewBaseline(), 1, 2); err == nil {
		t.Fatal("window < hop accepted")
	}
}

func TestEngineEmitsOneEventPerHop(t *testing.T) {
	e, m, s := engineFixture(t, NewBaseline())
	total := 0
	for tick := 0; tick < 10; tick++ {
		b := s.Sample(m, e.Config(), float64(tick), float64(tick)+1)
		events, err := e.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		total += len(events)
	}
	if total != 10 {
		t.Fatalf("10 s of pushes produced %d events, want 10", total)
	}
}

func TestEngineHandlesPartialPushes(t *testing.T) {
	e, m, s := engineFixture(t, NewBaseline())
	// Push in 0.25 s slivers: one event every four pushes.
	events := 0
	for i := 0; i < 40; i++ {
		tt := float64(i) * 0.25
		b := s.Sample(m, e.Config(), tt, tt+0.25)
		ev, err := e.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		events += len(ev)
	}
	if events != 10 {
		t.Fatalf("10 s in slivers produced %d events, want 10", events)
	}
}

func TestEngineMultiHopBatch(t *testing.T) {
	e, m, s := engineFixture(t, NewBaseline())
	// A single 5 s push yields 5 events under a fixed controller.
	b := s.Sample(m, e.Config(), 0, 5)
	events, err := e.Push(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("5 s batch produced %d events, want 5", len(events))
	}
}

func TestEngineWalksSPOTDown(t *testing.T) {
	spot := NewPaperSPOT(3)
	e, m, s := engineFixture(t, spot)
	floor := sensor.ParetoStates()[3]
	sawChange := false
	for tick := 0; tick < 30 && e.Config() != floor; tick++ {
		b := s.Sample(m, e.Config(), float64(tick), float64(tick)+1)
		events, err := e.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.ConfigChanged {
				sawChange = true
				if ev.Config != e.Config() {
					t.Fatal("event config and engine config disagree after switch")
				}
			}
		}
	}
	if !sawChange {
		t.Fatal("no configuration change was emitted")
	}
	if e.Config() != floor {
		t.Fatalf("engine did not reach the floor state: %v", e.Config().Name())
	}
}

func TestEnginePushRejectsWrongConfig(t *testing.T) {
	e, m, s := engineFixture(t, NewPaperSPOT(2))
	wrong := sensor.Config{FreqHz: 25, AvgWindow: 32}
	if wrong == e.Config() {
		t.Fatal("fixture broken")
	}
	b := s.Sample(m, wrong, 0, 1)
	if _, err := e.Push(b); err == nil {
		t.Fatal("mismatched config accepted")
	}
}

func TestEngineDiscardsTailOnSwitch(t *testing.T) {
	// A 5 s push under a zero-threshold SPOT must stop at the first tick:
	// the config changed, so the remaining 4 s are unusable.
	spot := NewPaperSPOT(0)
	e, m, s := engineFixture(t, spot)
	// Warm up: first tick is SPOT's warmup (no change).
	b := s.Sample(m, e.Config(), 0, 1)
	if _, err := e.Push(b); err != nil {
		t.Fatal(err)
	}
	b = s.Sample(m, e.Config(), 1, 6)
	events, err := e.Push(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].ConfigChanged {
		t.Fatalf("expected a single config-changing event, got %d", len(events))
	}
}

func TestEngineMultiHopBatchStraddlesSwitch(t *testing.T) {
	// A multi-hop batch that straddles a configuration switch must stop
	// at the switching tick, discard the stale tail, and resume cleanly
	// once the caller supplies data at the new configuration.
	spot := NewPaperSPOT(0)
	e, m, s := engineFixture(t, spot)
	top := e.Config()

	// Warm up: first tick is SPOT's warmup (no change).
	if _, err := e.Push(s.Sample(m, e.Config(), 0, 1)); err != nil {
		t.Fatal(err)
	}

	// Push 1..6: the tick at t=2 switches (threshold 0 steps down after
	// one stable observation), so only one of the five hops completes.
	events, err := e.Push(s.Sample(m, top, 1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].ConfigChanged {
		t.Fatalf("straddling batch produced %d events (changed=%v), want 1 changed",
			len(events), len(events) > 0 && events[0].ConfigChanged)
	}
	next := events[0].Config
	if next == top || e.Config() != next {
		t.Fatalf("engine config = %v after switch to %v", e.Config().Name(), next.Name())
	}

	// Data still sampled at the old configuration must now be rejected:
	// the caller failed to apply the switch.
	if _, err := e.Push(s.Sample(m, top, 2, 3)); err == nil {
		t.Fatal("stale-configuration batch accepted after the switch")
	}

	// Resuming at the (current) configuration picks the loop back up:
	// every subsequent second completes exactly one tick, with the first
	// post-switch window starting empty. Threshold 0 keeps stepping down
	// until the floor, so sample at e.Config() each second.
	for tick := 2; tick < 6; tick++ {
		events, err := e.Push(s.Sample(m, e.Config(), float64(tick), float64(tick)+1))
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 1 {
			t.Fatalf("post-switch second %d produced %d events, want 1", tick, len(events))
		}
	}
	if e.Config() != sensor.ParetoStates()[3] {
		t.Fatalf("threshold-0 SPOT should have reached the floor, at %v", e.Config().Name())
	}
}

func TestEngineReset(t *testing.T) {
	spot := NewPaperSPOT(1)
	e, m, s := engineFixture(t, spot)
	for tick := 0; tick < 10; tick++ {
		b := s.Sample(m, e.Config(), float64(tick), float64(tick)+1)
		if _, err := e.Push(b); err != nil {
			t.Fatal(err)
		}
	}
	if e.Config() == sensor.ParetoStates()[0] {
		t.Fatal("setup: engine never descended")
	}
	e.Reset()
	if e.Config() != sensor.ParetoStates()[0] {
		t.Fatal("Reset did not restore the initial configuration")
	}
}

func TestEngineClassificationsAreSane(t *testing.T) {
	e, m, s := engineFixture(t, NewPaperSPOTWithConfidence(5))
	correct, total := 0, 0
	for tick := 0; tick < 120; tick++ {
		b := s.Sample(m, e.Config(), float64(tick), float64(tick)+1)
		events, err := e.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		truth := m.Schedule().ActivityAt(float64(tick) + 0.5)
		for _, ev := range events {
			total++
			if ev.Classification.Activity == truth {
				correct++
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d events over 120 s", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.75 {
		t.Fatalf("engine accuracy = %v", acc)
	}
}
