package core

import (
	"fmt"
	"time"

	"adasense/internal/features"
	"adasense/internal/nn"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// SlidingWindow is the framework's buffer (Fig. 1): it accumulates sensor
// batches under one configuration and exposes the trailing classification
// window (two seconds in the paper, pushed through the pipeline every
// second with one second of overlap).
//
// When the controller switches the sensor configuration the buffer must be
// reset: samples taken at different rates cannot share one batch. The
// rate-invariant features still allow classifying the first, shorter
// post-switch window, so no classification tick is skipped.
type SlidingWindow struct {
	cfg       sensor.Config
	windowSec float64
	batch     *sensor.Batch
}

// NewSlidingWindow returns a buffer for cfg holding windowSec seconds.
func NewSlidingWindow(cfg sensor.Config, windowSec float64) (*SlidingWindow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if windowSec <= 0 {
		return nil, fmt.Errorf("core: non-positive window %v", windowSec)
	}
	size := cfg.BatchSize(windowSec)
	return &SlidingWindow{
		cfg:       cfg,
		windowSec: windowSec,
		batch: &sensor.Batch{
			Config: cfg,
			X:      make([]float64, 0, size),
			Y:      make([]float64, 0, size),
			Z:      make([]float64, 0, size),
		},
	}, nil
}

// Config returns the configuration the buffer currently accepts.
func (w *SlidingWindow) Config() sensor.Config { return w.cfg }

// Push appends a batch and trims the buffer to the trailing window. The
// batch's configuration must match the buffer's.
func (w *SlidingWindow) Push(b *sensor.Batch) {
	if b.Config != w.cfg {
		panic(fmt.Sprintf("core: pushed %v batch into %v buffer", b.Config.Name(), w.cfg.Name()))
	}
	w.batch.Append(b)
	max := w.cfg.BatchSize(w.windowSec)
	if n := w.batch.Len(); n > max {
		// Trim by copying down rather than reslicing forward: a forward
		// reslice walks through the backing array and forces Append to
		// reallocate periodically; copying keeps the buffer's capacity in
		// place, so the steady state allocates nothing.
		w.batch.X = w.batch.X[:copy(w.batch.X, w.batch.X[n-max:])]
		w.batch.Y = w.batch.Y[:copy(w.batch.Y, w.batch.Y[n-max:])]
		w.batch.Z = w.batch.Z[:copy(w.batch.Z, w.batch.Z[n-max:])]
	}
}

// Window returns the buffered trailing window (nil when empty). The
// returned batch aliases the buffer; callers must not retain it across
// Push or Reset.
func (w *SlidingWindow) Window() *sensor.Batch {
	if w.batch.Len() == 0 {
		return nil
	}
	return w.batch
}

// Reset clears the buffer and switches it to accept cfg. The backing
// arrays are kept (Window's no-retention contract makes that safe), so
// configuration switches do not allocate.
func (w *SlidingWindow) Reset(cfg sensor.Config) {
	w.cfg = cfg
	w.batch.Config = cfg
	w.batch.X = w.batch.X[:0]
	w.batch.Y = w.batch.Y[:0]
	w.batch.Z = w.batch.Z[:0]
}

// Classification is one pipeline output.
type Classification struct {
	Activity   synth.Activity
	Confidence float64
}

// Pipeline is the HAR framework of Fig. 1: feature extraction plus the
// shared neural-network classifier. It is NOT safe for concurrent use
// (the extractor owns scratch buffers); create one per goroutine.
type Pipeline struct {
	ext *features.Extractor
	net *nn.Network

	// Stages, when non-nil, receives the feature-extraction and
	// forward-pass wall times of every Classify call. The serving layer
	// sets it to feed its latency histograms; the nil default costs one
	// branch.
	Stages func(extract, classify time.Duration)

	feat  []float64
	probs []float64
}

// NewPipeline builds a pipeline from a trained network and a feature
// extractor. The extractor's feature size must match the network input.
func NewPipeline(net *nn.Network, ext *features.Extractor) (*Pipeline, error) {
	if ext.Size() != net.In {
		return nil, fmt.Errorf("core: extractor size %d != network input %d", ext.Size(), net.In)
	}
	return &Pipeline{
		ext:   ext,
		net:   net,
		feat:  make([]float64, ext.Size()),
		probs: make([]float64, net.Out),
	}, nil
}

// Network returns the pipeline's classifier.
func (p *Pipeline) Network() *nn.Network { return p.net }

// Extractor returns the pipeline's feature extractor.
func (p *Pipeline) Extractor() *features.Extractor { return p.ext }

// Classify runs feature extraction and classification on one batch.
func (p *Pipeline) Classify(b *sensor.Batch) Classification {
	var extStart, clsStart time.Time
	timed := p.Stages != nil
	if timed {
		extStart = time.Now()
	}
	p.feat = p.ext.Extract(b, p.feat)
	if timed {
		clsStart = time.Now()
	}
	p.probs = p.net.Forward(p.feat, p.probs)
	best := 0
	for i, v := range p.probs {
		if v > p.probs[best] {
			best = i
		}
	}
	if timed {
		p.Stages(clsStart.Sub(extStart), time.Since(clsStart))
	}
	return Classification{Activity: synth.Activity(best), Confidence: p.probs[best]}
}

// ClassifyFeatures classifies a pre-extracted feature vector. It
// implements eval.Classifier.
func (p *Pipeline) ClassifyFeatures(feat []float64) (synth.Activity, float64) {
	cls, conf := p.net.Predict(feat)
	return synth.Activity(cls), conf
}
