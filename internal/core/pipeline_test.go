package core

import (
	"testing"

	"adasense/internal/dataset"
	"adasense/internal/features"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func TestSlidingWindowTrimsToWindow(t *testing.T) {
	cfg := sensor.Config{FreqHz: 50, AvgWindow: 16}
	w, err := NewSlidingWindow(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != nil {
		t.Fatal("empty buffer should yield nil window")
	}
	mk := func(n int) *sensor.Batch {
		return &sensor.Batch{Config: cfg, X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
	}
	w.Push(mk(50)) // 1 s
	if got := w.Window().Len(); got != 50 {
		t.Fatalf("after 1 s window len = %d", got)
	}
	w.Push(mk(50))
	w.Push(mk(50))
	if got := w.Window().Len(); got != 100 {
		t.Fatalf("window len = %d, want trim to 100 (2 s @ 50 Hz)", got)
	}
}

func TestSlidingWindowKeepsLatestSamples(t *testing.T) {
	cfg := sensor.Config{FreqHz: 2, AvgWindow: 8}
	w, err := NewSlidingWindow(cfg, 2) // 4 samples
	if err != nil {
		t.Fatal(err)
	}
	b := &sensor.Batch{Config: cfg,
		X: []float64{1, 2, 3, 4, 5, 6},
		Y: []float64{1, 2, 3, 4, 5, 6},
		Z: []float64{1, 2, 3, 4, 5, 6}}
	w.Push(b)
	win := w.Window()
	if win.Len() != 4 || win.X[0] != 3 || win.X[3] != 6 {
		t.Fatalf("window = %v, want trailing samples {3..6}", win.X)
	}
}

func TestSlidingWindowConfigMismatchPanics(t *testing.T) {
	w, _ := NewSlidingWindow(sensor.Config{FreqHz: 50, AvgWindow: 16}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched push did not panic")
		}
	}()
	w.Push(&sensor.Batch{Config: sensor.Config{FreqHz: 25, AvgWindow: 16}})
}

func TestSlidingWindowReset(t *testing.T) {
	cfgA := sensor.Config{FreqHz: 50, AvgWindow: 16}
	cfgB := sensor.Config{FreqHz: 12.5, AvgWindow: 8}
	w, _ := NewSlidingWindow(cfgA, 2)
	w.Push(&sensor.Batch{Config: cfgA, X: []float64{1}, Y: []float64{1}, Z: []float64{1}})
	w.Reset(cfgB)
	if w.Config() != cfgB {
		t.Fatal("Reset did not switch config")
	}
	if w.Window() != nil {
		t.Fatal("Reset did not clear samples")
	}
}

func TestNewSlidingWindowValidation(t *testing.T) {
	if _, err := NewSlidingWindow(sensor.Config{FreqHz: 0, AvgWindow: 8}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewSlidingWindow(sensor.Config{FreqHz: 50, AvgWindow: 16}, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// trainedPipeline builds a pipeline from a quickly trained classifier.
func trainedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	r := rng.New(4242)
	corpus, err := dataset.Generate(dataset.GenSpec{Windows: 1800}, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	net := nn.New(corpus.FeatureSize, 24, synth.NumActivities, r.Split(2))
	X, Y := corpus.XY()
	if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 30}, r.Split(3)); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(net, features.MustExtractor(nil))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineSizeMismatch(t *testing.T) {
	net := nn.New(10, 4, synth.NumActivities, rng.New(1))
	if _, err := NewPipeline(net, features.MustExtractor(nil)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPipelineClassifiesObviousActivities(t *testing.T) {
	p := trainedPipeline(t)
	r := rng.New(9)
	models := synth.DefaultModels()
	sampler := sensor.NewSampler(sensor.DefaultNoiseModel(), r.Split(1))
	correct, total := 0, 0
	for _, act := range []synth.Activity{synth.Sit, synth.LieDown, synth.Walk} {
		for rep := 0; rep < 10; rep++ {
			sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: 8})
			m := synth.NewMotion(models, sched, r.Split(uint64(act)*100+uint64(rep)))
			b := sampler.Sample(m, sensor.ParetoStates()[0], 3, 5)
			got := p.Classify(b)
			if got.Confidence < 0 || got.Confidence > 1 {
				t.Fatalf("confidence %v out of range", got.Confidence)
			}
			total++
			if got.Activity == act {
				correct++
			}
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.85 {
		t.Fatalf("pipeline accuracy on clear activities = %v", frac)
	}
}

func TestPipelineClassifyMatchesClassifyFeatures(t *testing.T) {
	p := trainedPipeline(t)
	r := rng.New(11)
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 8})
	m := synth.NewMotion(synth.DefaultModels(), sched, r.Split(1))
	sampler := sensor.NewSampler(sensor.DefaultNoiseModel(), r.Split(2))
	b := sampler.Sample(m, sensor.ParetoStates()[1], 3, 5)

	c1 := p.Classify(b)
	feat := p.Extractor().Extract(b, nil)
	act, conf := p.ClassifyFeatures(feat)
	if act != c1.Activity || conf != c1.Confidence {
		t.Fatalf("Classify (%v,%v) != ClassifyFeatures (%v,%v)", c1.Activity, c1.Confidence, act, conf)
	}
}

func TestPipelineAccessors(t *testing.T) {
	p := trainedPipeline(t)
	if p.Network() == nil || p.Extractor() == nil {
		t.Fatal("accessors returned nil")
	}
}
