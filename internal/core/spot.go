package core

import (
	"encoding/binary"
	"fmt"

	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// SPOT implements the State Prediction Optimization Technique: a finite
// state machine over a power-descending list of sensor configurations
// (Fig. 4 of the paper).
//
// Semantics, matching Section IV-D:
//
//   - The FSM starts at state 0, the highest-accuracy configuration.
//   - Every observation compares the current classification with the
//     previous one. A match increments a counter (C1); when the counter
//     reaches the stability threshold the FSM moves one state down and the
//     counter restarts (C2). In the last state a match just stays (C4).
//   - A mismatch snaps the FSM back to state 0 and clears the counter
//     (C3).
//
// With a confidence threshold > 0 the FSM becomes SPOT-with-confidence
// (Section IV-E): in any low-power state, a mismatch whose classification
// confidence is below the threshold is attributed to classifier noise and
// ignored entirely — state, counter and remembered activity are left
// untouched. In state 0 the gate is inactive (there is no higher state to
// move to and no saving to protect), so changes always re-anchor the
// remembered activity.
//
// The stability threshold is expressed in observation ticks; with the
// paper's 1-second classification cadence, ticks equal seconds.
//
// The paper leaves one detail ambiguous: whether the counter restarts
// after each downward step (so every hop needs a full threshold of
// stability) or keeps counting (so the FSM waits one threshold, then steps
// down once per stable tick until the floor). Its Fig. 6b — power still
// below baseline at thresholds of 20–40 s and converging to the baseline
// exactly at the 60 s dwell bound — is only consistent with the latter, so
// CountOnce is the default; CountPerState is kept for the ablation bench.
type SPOT struct {
	states         []sensor.Config
	stabilityTicks int
	confThreshold  float64
	mode           DescendMode

	idx     int
	counter int
	last    synth.Activity
	hasLast bool

	lastCondition Condition
}

// DescendMode selects the stability counter's behaviour across downward
// steps (see the SPOT type comment).
type DescendMode int

const (
	// CountOnce keeps the counter across C2 transitions: after the first
	// threshold of stability the FSM steps down once per stable tick,
	// reaching the floor ≈ threshold + numStates ticks after the last
	// activity change. Default, calibrated against the paper's Fig. 5/6.
	CountOnce DescendMode = iota
	// CountPerState restarts the counter at every C2 transition: each hop
	// needs a full threshold of stability, so the floor is reached after
	// ≈ (numStates-1) × threshold ticks.
	CountPerState
)

// String returns the mode name.
func (m DescendMode) String() string {
	switch m {
	case CountOnce:
		return "count-once"
	case CountPerState:
		return "count-per-state"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// NewSPOT builds a plain SPOT controller over the given power-descending
// states. stabilityTicks must be >= 0; zero makes every matching
// observation a step down (the paper's "stability threshold = 0" sweep
// point).
func NewSPOT(states []sensor.Config, stabilityTicks int) (*SPOT, error) {
	return NewSPOTWithConfidence(states, stabilityTicks, 0)
}

// NewSPOTWithConfidence builds a SPOT controller that ignores activity
// changes reported with confidence below confThreshold (0 disables the
// gate; the paper evaluates 0.85).
func NewSPOTWithConfidence(states []sensor.Config, stabilityTicks int, confThreshold float64) (*SPOT, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("core: SPOT needs at least one state")
	}
	for i, s := range states {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: SPOT state %d: %w", i, err)
		}
	}
	if stabilityTicks < 0 {
		return nil, fmt.Errorf("core: negative stability threshold %d", stabilityTicks)
	}
	if confThreshold < 0 || confThreshold > 1 {
		return nil, fmt.Errorf("core: confidence threshold %v outside [0,1]", confThreshold)
	}
	return &SPOT{
		states:         append([]sensor.Config(nil), states...),
		stabilityTicks: stabilityTicks,
		confThreshold:  confThreshold,
	}, nil
}

// MustSPOT is NewSPOTWithConfidence that panics on error, for tests and
// examples.
func MustSPOT(states []sensor.Config, stabilityTicks int, confThreshold float64) *SPOT {
	s, err := NewSPOTWithConfidence(states, stabilityTicks, confThreshold)
	if err != nil {
		panic(err)
	}
	return s
}

// NewPaperSPOT returns SPOT over the paper's four Pareto states.
func NewPaperSPOT(stabilityTicks int) *SPOT {
	return MustSPOT(sensor.ParetoStates(), stabilityTicks, 0)
}

// NewPaperSPOTWithConfidence returns SPOT-with-confidence (threshold 0.85,
// the paper's value) over the paper's four Pareto states.
func NewPaperSPOTWithConfidence(stabilityTicks int) *SPOT {
	return MustSPOT(sensor.ParetoStates(), stabilityTicks, 0.85)
}

// Config returns the configuration of the current FSM state.
func (s *SPOT) Config() sensor.Config { return s.states[s.idx] }

// StateIndex returns the current state index (0 = highest power).
func (s *SPOT) StateIndex() int { return s.idx }

// NumStates returns the number of FSM states.
func (s *SPOT) NumStates() int { return len(s.states) }

// Counter returns the current stability counter value.
func (s *SPOT) Counter() int { return s.counter }

// LastCondition returns the FSM condition that fired on the most recent
// Observe (Warmup before any observation).
func (s *SPOT) LastCondition() Condition { return s.lastCondition }

// ConfidenceThreshold returns the confidence gate (0 = plain SPOT).
func (s *SPOT) ConfidenceThreshold() float64 { return s.confThreshold }

// Mode returns the descend mode.
func (s *SPOT) Mode() DescendMode { return s.mode }

// SetMode selects the descend mode. It must be called before the first
// Observe; changing the mode mid-run panics.
func (s *SPOT) SetMode(m DescendMode) {
	if s.hasLast {
		panic("core: SetMode after observations started")
	}
	if m != CountOnce && m != CountPerState {
		panic(fmt.Sprintf("core: unknown descend mode %d", int(m)))
	}
	s.mode = m
}

// Observe feeds one classification to the FSM.
func (s *SPOT) Observe(activity synth.Activity, confidence float64) {
	if !s.hasLast {
		s.last = activity
		s.hasLast = true
		s.lastCondition = Warmup
		return
	}
	if activity == s.last {
		if s.idx == len(s.states)-1 {
			s.lastCondition = C4
			return
		}
		s.counter++
		if s.counter >= s.stabilityTicks {
			s.idx++
			if s.mode == CountPerState {
				s.counter = 0
			}
			s.lastCondition = C2
			return
		}
		s.lastCondition = C1
		return
	}
	// Activity changed. The confidence gate guards only "the decision to
	// move from a lower power state to a higher power state" (Section
	// IV-E): in state 0 there is no higher state and no accumulated
	// saving to protect, so the change is always accepted — otherwise a
	// single wrong warm-up classification could freeze the FSM forever.
	if s.confThreshold > 0 && confidence < s.confThreshold && s.idx > 0 {
		s.lastCondition = Suppressed
		return
	}
	s.idx = 0
	s.counter = 0
	s.last = activity
	s.lastCondition = C3
}

// Reset returns the FSM to its initial state (state 0, no history).
func (s *SPOT) Reset() {
	s.idx = 0
	s.counter = 0
	s.hasLast = false
	s.lastCondition = Warmup
}

// spotStateKind versions the SPOT snapshot payload; bump it when the
// layout below changes so a restore across skewed builds fails loudly
// instead of misinterpreting bytes.
const spotStateKind = "spot/1"

// spotStateLen is the fixed payload size: idx u32 | counter u32 |
// last u32 | hasLast u8 | lastCondition u32, little-endian.
const spotStateLen = 17

// StateKind identifies the SPOT snapshot payload format.
func (s *SPOT) StateKind() string { return spotStateKind }

// AppendState appends the FSM's mutable state (state index, stability
// counter, remembered activity, last condition) to dst. The state list,
// thresholds and descend mode are configuration, not state, and are not
// serialized.
func (s *SPOT) AppendState(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.idx))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.counter))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.last))
	if s.hasLast {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return binary.LittleEndian.AppendUint32(dst, uint32(s.lastCondition))
}

// RestoreState replaces the FSM's mutable state with a payload produced
// by AppendState on a controller with the same configuration. Every
// field is bounds-checked against this controller's state list and the
// activity/condition enums; on error the FSM is left Reset.
func (s *SPOT) RestoreState(data []byte) error {
	s.Reset()
	if len(data) != spotStateLen {
		return fmt.Errorf("core: SPOT state payload is %d bytes, want %d", len(data), spotStateLen)
	}
	idx := binary.LittleEndian.Uint32(data[0:4])
	counter := binary.LittleEndian.Uint32(data[4:8])
	last := binary.LittleEndian.Uint32(data[8:12])
	hasLast := data[12]
	cond := binary.LittleEndian.Uint32(data[13:17])
	switch {
	case int(idx) >= len(s.states):
		return fmt.Errorf("core: SPOT state index %d outside %d states", idx, len(s.states))
	case counter > uint32(1)<<30:
		return fmt.Errorf("core: implausible SPOT counter %d", counter)
	case !synth.Activity(last).Valid():
		return fmt.Errorf("core: SPOT remembered activity %d out of range", last)
	case hasLast > 1:
		return fmt.Errorf("core: SPOT hasLast flag %d is not a boolean", hasLast)
	case cond > uint32(Suppressed):
		return fmt.Errorf("core: SPOT condition %d out of range", cond)
	case hasLast == 0 && (idx != 0 || counter != 0 || cond != uint32(Warmup)):
		return fmt.Errorf("core: SPOT state claims progress before the first observation")
	}
	s.idx = int(idx)
	s.counter = int(counter)
	s.last = synth.Activity(last)
	s.hasLast = hasLast == 1
	s.lastCondition = Condition(cond)
	return nil
}

var _ Controller = (*SPOT)(nil)
var _ StatefulController = (*SPOT)(nil)

// TransitionTable renders the FSM's states and conditions as a small text
// table (the reproduction's stand-in for the paper's Fig. 4 diagram).
func (s *SPOT) TransitionTable() string {
	out := "state  config        on-match                on-change\n"
	for i, cfg := range s.states {
		match := fmt.Sprintf("C1 count, C2@%d -> S%d", s.stabilityTicks, i+1)
		if i == len(s.states)-1 {
			match = "C4 stay"
		}
		change := "C3 -> S0"
		if s.confThreshold > 0 {
			change = fmt.Sprintf("C3 -> S0 if conf >= %.2f", s.confThreshold)
		}
		out += fmt.Sprintf("S%-5d %-13s %-23s %s\n", i, cfg.Name(), match, change)
	}
	return out
}
