package core

import (
	"strings"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func TestNewSPOTValidation(t *testing.T) {
	if _, err := NewSPOT(nil, 3); err == nil {
		t.Fatal("empty state list accepted")
	}
	if _, err := NewSPOT([]sensor.Config{{FreqHz: -1, AvgWindow: 8}}, 3); err == nil {
		t.Fatal("invalid state accepted")
	}
	if _, err := NewSPOT(sensor.ParetoStates(), -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewSPOTWithConfidence(sensor.ParetoStates(), 3, 1.5); err == nil {
		t.Fatal("confidence > 1 accepted")
	}
}

func TestSPOTStartsAtHighestPower(t *testing.T) {
	s := NewPaperSPOT(5)
	if s.Config() != sensor.ParetoStates()[0] {
		t.Fatalf("initial config = %v", s.Config().Name())
	}
	if s.StateIndex() != 0 || s.LastCondition() != Warmup {
		t.Fatal("initial FSM state wrong")
	}
}

func TestSPOTWalksDownCountOnce(t *testing.T) {
	// Default mode: wait one threshold, then one step per stable tick.
	const thr = 3
	s := NewPaperSPOT(thr)
	if s.Mode() != CountOnce {
		t.Fatalf("default mode = %v, want count-once", s.Mode())
	}
	s.Observe(synth.Walk, 1) // warmup
	if s.LastCondition() != Warmup {
		t.Fatalf("first observation condition = %v", s.LastCondition())
	}
	// thr-1 C1 ticks at state 0.
	for i := 0; i < thr-1; i++ {
		s.Observe(synth.Walk, 1)
		if s.LastCondition() != C1 || s.StateIndex() != 0 {
			t.Fatalf("tick %d: condition %v at state %d", i, s.LastCondition(), s.StateIndex())
		}
	}
	// Then one C2 per tick until the floor.
	for state := 1; state < s.NumStates(); state++ {
		s.Observe(synth.Walk, 1)
		if s.LastCondition() != C2 || s.StateIndex() != state {
			t.Fatalf("descent tick: condition %v at state %d, want C2 at %d",
				s.LastCondition(), s.StateIndex(), state)
		}
	}
	// In the last state matches are absorbed (C4).
	for i := 0; i < 10; i++ {
		s.Observe(synth.Walk, 1)
		if s.LastCondition() != C4 {
			t.Fatalf("last state condition = %v, want C4", s.LastCondition())
		}
		if s.StateIndex() != s.NumStates()-1 {
			t.Fatal("left the absorbing state on a match")
		}
	}
}

func TestSPOTWalksDownCountPerState(t *testing.T) {
	const thr = 3
	s := NewPaperSPOT(thr)
	s.SetMode(CountPerState)
	s.Observe(synth.Walk, 1) // warmup
	// Each state hop needs thr matching observations: thr-1 C1s then a C2.
	for state := 0; state < s.NumStates()-1; state++ {
		for i := 0; i < thr-1; i++ {
			s.Observe(synth.Walk, 1)
			if s.LastCondition() != C1 {
				t.Fatalf("state %d obs %d: condition = %v, want C1", state, i, s.LastCondition())
			}
			if s.StateIndex() != state {
				t.Fatalf("left state %d early", state)
			}
		}
		s.Observe(synth.Walk, 1)
		if s.LastCondition() != C2 {
			t.Fatalf("state %d: condition = %v, want C2", state, s.LastCondition())
		}
		if s.StateIndex() != state+1 {
			t.Fatalf("C2 did not advance to state %d", state+1)
		}
		if s.Counter() != 0 {
			t.Fatal("C2 did not reset the counter in count-per-state mode")
		}
	}
}

func TestSPOTSetModeValidation(t *testing.T) {
	s := NewPaperSPOT(3)
	s.Observe(synth.Walk, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetMode mid-run did not panic")
			}
		}()
		s.SetMode(CountPerState)
	}()
	s2 := NewPaperSPOT(3)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mode did not panic")
		}
	}()
	s2.SetMode(DescendMode(9))
}

func TestDescendModeString(t *testing.T) {
	if CountOnce.String() != "count-once" || CountPerState.String() != "count-per-state" {
		t.Fatal("mode names wrong")
	}
	if DescendMode(7).String() != "mode(7)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestSPOTSnapsBackOnChange(t *testing.T) {
	s := NewPaperSPOT(2)
	s.Observe(synth.Sit, 1)
	for i := 0; i < 20; i++ {
		s.Observe(synth.Sit, 1)
	}
	if s.StateIndex() != s.NumStates()-1 {
		t.Fatal("did not reach the floor state")
	}
	s.Observe(synth.Walk, 1)
	if s.LastCondition() != C3 {
		t.Fatalf("condition = %v, want C3", s.LastCondition())
	}
	if s.StateIndex() != 0 || s.Counter() != 0 {
		t.Fatal("C3 did not reset FSM")
	}
	// The remembered activity must now be the new one: another walk is a
	// match, not a change.
	s.Observe(synth.Walk, 1)
	if s.LastCondition() == C3 {
		t.Fatal("consecutive identical activities treated as a change")
	}
}

func TestSPOTZeroThresholdDescendsEachMatch(t *testing.T) {
	s := NewPaperSPOT(0)
	s.Observe(synth.Stand, 1)
	for i := 1; i < s.NumStates(); i++ {
		s.Observe(synth.Stand, 1)
		if s.StateIndex() != i {
			t.Fatalf("after %d matches state = %d", i, s.StateIndex())
		}
	}
}

func TestSPOTConfidenceGate(t *testing.T) {
	s := MustSPOT(sensor.ParetoStates(), 1, 0.85)
	s.Observe(synth.Sit, 0.99)
	for i := 0; i < 8; i++ {
		s.Observe(synth.Sit, 0.99)
	}
	floor := s.NumStates() - 1
	if s.StateIndex() != floor {
		t.Fatal("did not reach floor")
	}
	// A low-confidence change must be ignored entirely.
	s.Observe(synth.Walk, 0.60)
	if s.LastCondition() != Suppressed {
		t.Fatalf("condition = %v, want Suppressed", s.LastCondition())
	}
	if s.StateIndex() != floor {
		t.Fatal("low-confidence change moved the FSM")
	}
	// The remembered activity is unchanged: a confident sit remains a
	// match.
	s.Observe(synth.Sit, 0.99)
	if s.LastCondition() != C4 {
		t.Fatalf("after suppressed change, sit gave %v, want C4", s.LastCondition())
	}
	// A high-confidence change still resets.
	s.Observe(synth.Walk, 0.95)
	if s.StateIndex() != 0 || s.LastCondition() != C3 {
		t.Fatal("high-confidence change did not reset")
	}
}

func TestSPOTConfidenceGateInactiveAtTop(t *testing.T) {
	// A low-confidence change at state 0 must still update the remembered
	// activity: the gate protects accumulated savings, of which state 0
	// has none. Otherwise a wrong warm-up freezes the FSM.
	s := MustSPOT(sensor.ParetoStates(), 2, 0.85)
	s.Observe(synth.Sit, 0.40) // wrong, low-confidence warmup
	s.Observe(synth.Stand, 0.60)
	if s.LastCondition() != C3 {
		t.Fatalf("state-0 change gave %v, want C3 (gate inactive at top)", s.LastCondition())
	}
	// From now on, confident stands count toward descending.
	s.Observe(synth.Stand, 0.60)
	s.Observe(synth.Stand, 0.60)
	if s.StateIndex() != 1 {
		t.Fatalf("FSM did not descend after recovering from wrong warmup (state %d)", s.StateIndex())
	}
}

func TestSPOTPlainIgnoresConfidence(t *testing.T) {
	s := NewPaperSPOT(1)
	s.Observe(synth.Sit, 0.1)
	s.Observe(synth.Sit, 0.1)
	s.Observe(synth.Walk, 0.01) // plain SPOT: any change resets
	if s.LastCondition() != C3 {
		t.Fatalf("plain SPOT suppressed a change: %v", s.LastCondition())
	}
}

func TestSPOTReset(t *testing.T) {
	s := NewPaperSPOT(1)
	s.Observe(synth.Sit, 1)
	s.Observe(synth.Sit, 1)
	s.Observe(synth.Sit, 1)
	if s.StateIndex() == 0 {
		t.Fatal("setup failed to descend")
	}
	s.Reset()
	if s.StateIndex() != 0 || s.Counter() != 0 || s.LastCondition() != Warmup {
		t.Fatal("Reset incomplete")
	}
	// After reset the first observation is warmup again.
	s.Observe(synth.Walk, 1)
	if s.LastCondition() != Warmup {
		t.Fatal("post-reset observation should be warmup")
	}
}

// TestSPOTInvariants drives the FSM with random observation streams and
// checks structural invariants.
func TestSPOTInvariants(t *testing.T) {
	r := rng.New(77)
	f := func(seed uint16, thrRaw uint8, withConf, perState bool) bool {
		rr := rng.New(uint64(seed))
		thr := int(thrRaw % 10)
		conf := 0.0
		if withConf {
			conf = 0.85
		}
		s := MustSPOT(sensor.ParetoStates(), thr, conf)
		if perState {
			s.SetMode(CountPerState)
		}
		counterBound := thr + s.NumStates()
		if perState {
			counterBound = thr
		}
		prevIdx := 0
		for i := 0; i < 300; i++ {
			act := synth.Activity(rr.Intn(synth.NumActivities))
			c := rr.Float64()
			s.Observe(act, c)
			idx := s.StateIndex()
			// Invariant 1: state index in range.
			if idx < 0 || idx >= s.NumStates() {
				return false
			}
			// Invariant 2: moves are one step down or a snap to zero.
			if idx != prevIdx && idx != prevIdx+1 && idx != 0 {
				return false
			}
			// Invariant 3: counter bounded (threshold, plus the descent
			// span in count-once mode).
			if s.Counter() > counterBound {
				return false
			}
			// Invariant 4: condition consistent with movement.
			switch s.LastCondition() {
			case C2:
				if idx != prevIdx+1 {
					return false
				}
			case C3:
				if idx != 0 {
					return false
				}
			case C1, C4, Suppressed, Warmup:
				if idx != prevIdx {
					return false
				}
			}
			prevIdx = idx
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSPOTPowerDescendsAlongStates(t *testing.T) {
	// The state list orders power high → low, so walking the FSM down
	// must never increase current.
	p := sensor.DefaultPowerModel()
	s := NewPaperSPOT(0)
	s.Observe(synth.Sit, 1)
	prev := p.CurrentUA(s.Config())
	for i := 0; i < s.NumStates(); i++ {
		s.Observe(synth.Sit, 1)
		cur := p.CurrentUA(s.Config())
		if cur > prev {
			t.Fatal("descending the FSM increased current")
		}
		prev = cur
	}
}

func TestConditionStrings(t *testing.T) {
	want := map[Condition]string{Warmup: "warmup", C1: "C1", C2: "C2", C3: "C3", C4: "C4", Suppressed: "suppressed"}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Condition(%d).String() = %q", int(c), c.String())
		}
	}
	if Condition(42).String() != "condition(42)" {
		t.Fatal("unknown condition string wrong")
	}
}

func TestTransitionTable(t *testing.T) {
	s := NewPaperSPOTWithConfidence(7)
	tbl := s.TransitionTable()
	for _, want := range []string{"F100_A128", "F12.5_A8", "C4 stay", "conf >= 0.85"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("transition table missing %q:\n%s", want, tbl)
		}
	}
}

func TestBaselineController(t *testing.T) {
	b := NewBaseline()
	cfg := b.Config()
	b.Observe(synth.Walk, 1)
	b.Reset()
	if b.Config() != cfg || cfg != (sensor.Config{FreqHz: 100, AvgWindow: 128}) {
		t.Fatal("baseline controller must pin F100_A128")
	}
}
