// Package dataset builds labeled feature corpora for training and
// evaluating the activity classifier. It is the software counterpart of
// the paper's data-collection campaign: "an extensive data set of 7300
// activity windows of the four optimal accelerometer configurations"
// (Section V-A), synthesized here instead of recorded.
package dataset

import (
	"fmt"

	"adasense/internal/features"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// Example is one labeled feature vector, tagged with the sensor
// configuration it was observed under.
type Example struct {
	Features []float64
	Label    synth.Activity
	Config   sensor.Config
}

// Corpus is a set of examples with a common feature layout.
type Corpus struct {
	Examples    []Example
	FeatureSize int
}

// Len returns the number of examples.
func (c *Corpus) Len() int { return len(c.Examples) }

// XY returns the corpus as parallel input/label slices for the trainer.
// The returned slices alias the corpus's feature storage.
func (c *Corpus) XY() (X [][]float64, Y []int) {
	X = make([][]float64, len(c.Examples))
	Y = make([]int, len(c.Examples))
	for i, ex := range c.Examples {
		X[i] = ex.Features
		Y[i] = int(ex.Label)
	}
	return X, Y
}

// FilterConfig returns the sub-corpus observed under cfg. The examples are
// shared, not copied.
func (c *Corpus) FilterConfig(cfg sensor.Config) *Corpus {
	out := &Corpus{FeatureSize: c.FeatureSize}
	for _, ex := range c.Examples {
		if ex.Config == cfg {
			out.Examples = append(out.Examples, ex)
		}
	}
	return out
}

// ClassCounts returns the number of examples per activity class.
func (c *Corpus) ClassCounts() [synth.NumActivities]int {
	var counts [synth.NumActivities]int
	for _, ex := range c.Examples {
		counts[ex.Label]++
	}
	return counts
}

// Split partitions the corpus into train and test parts with the given
// test fraction, shuffling with r. Examples are shared with the receiver.
func (c *Corpus) Split(testFrac float64, r *rng.Source) (train, test *Corpus) {
	if testFrac < 0 || testFrac > 1 {
		panic("dataset: test fraction out of [0,1]")
	}
	idx := r.Perm(len(c.Examples))
	nTest := int(float64(len(c.Examples)) * testFrac)
	train = &Corpus{FeatureSize: c.FeatureSize}
	test = &Corpus{FeatureSize: c.FeatureSize}
	for i, j := range idx {
		if i < nTest {
			test.Examples = append(test.Examples, c.Examples[j])
		} else {
			train.Examples = append(train.Examples, c.Examples[j])
		}
	}
	return train, test
}

// GenSpec describes a corpus-generation run.
type GenSpec struct {
	// Configs lists the sensor configurations to observe under; windows
	// are distributed round-robin across them. Defaults to the four
	// Pareto states.
	Configs []sensor.Config
	// Windows is the total number of 2-second windows to generate
	// (default 7300, the paper's corpus size).
	Windows int
	// WindowSec and HopSec define the classification batching (defaults
	// 2 s and 1 s, Section III-A).
	WindowSec, HopSec float64
	// EpisodeSec is the length of each synthetic single-activity episode
	// windows are cut from (default 12 s).
	EpisodeSec float64
	// Noise overrides the sensor noise model (zero value selects
	// DefaultNoiseModel).
	Noise *sensor.NoiseModel
	// BinFreqsHz overrides the spectral feature bins (nil selects the
	// paper's 1/2/3 Hz).
	BinFreqsHz []float64
	// Extractor overrides the feature extractor entirely (for the
	// feature-family ablation: wavelet features etc.). When set,
	// BinFreqsHz is ignored.
	Extractor FeatureExtractor
}

// FeatureExtractor abstracts the per-window feature computation so
// corpora can be built for alternative feature families.
// *features.Extractor and *features.WaveletExtractor satisfy it.
type FeatureExtractor interface {
	Size() int
	Extract(b *sensor.Batch, dst []float64) []float64
}

func (g GenSpec) withDefaults() GenSpec {
	if g.Configs == nil {
		g.Configs = sensor.ParetoStates()
	}
	if g.Windows == 0 {
		g.Windows = 7300
	}
	if g.WindowSec == 0 {
		g.WindowSec = 2
	}
	if g.HopSec == 0 {
		g.HopSec = 1
	}
	if g.EpisodeSec == 0 {
		// 6 s episodes yield 4 windows each: enough hop overlap to mimic
		// streaming batches, while keeping per-class subject diversity
		// high (the paper's corpus spans many recording sessions).
		g.EpisodeSec = 6
	}
	if g.Noise == nil {
		n := sensor.DefaultNoiseModel()
		g.Noise = &n
	}
	return g
}

// Generate synthesizes a corpus per spec. Windows are balanced across
// (configuration × activity) cells; each cell draws fresh episodes so
// windows within a cell still span many synthetic subjects. Deterministic
// given r.
func Generate(spec GenSpec, r *rng.Source) (*Corpus, error) {
	spec = spec.withDefaults()
	if len(spec.Configs) == 0 {
		return nil, fmt.Errorf("dataset: no sensor configurations")
	}
	for _, cfg := range spec.Configs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	var ext FeatureExtractor
	if spec.Extractor != nil {
		ext = spec.Extractor
	} else {
		e, err := features.NewExtractor(spec.BinFreqsHz)
		if err != nil {
			return nil, err
		}
		ext = e
	}
	models := synth.DefaultModels()
	sampler := sensor.NewSampler(*spec.Noise, r.Split(1))
	motionRng := r.Split(2)

	corpus := &Corpus{FeatureSize: ext.Size()}
	windowsPerEpisode := int((spec.EpisodeSec - spec.WindowSec) / spec.HopSec)
	if windowsPerEpisode < 1 {
		return nil, fmt.Errorf("dataset: episode length %v too short for window %v", spec.EpisodeSec, spec.WindowSec)
	}

	cells := len(spec.Configs) * synth.NumActivities
	cell := 0
	for corpus.Len() < spec.Windows {
		cfg := spec.Configs[cell%len(spec.Configs)]
		act := synth.Activity((cell / len(spec.Configs)) % synth.NumActivities)
		cell = (cell + 1) % cells

		sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: spec.EpisodeSec})
		motion := synth.NewMotion(models, sched, motionRng)
		for w := 0; w < windowsPerEpisode && corpus.Len() < spec.Windows; w++ {
			t0 := float64(w) * spec.HopSec
			batch := sampler.Sample(motion, cfg, t0, t0+spec.WindowSec)
			feat := make([]float64, ext.Size())
			ext.Extract(batch, feat)
			corpus.Examples = append(corpus.Examples, Example{
				Features: feat,
				Label:    act,
				Config:   cfg,
			})
		}
	}
	return corpus, nil
}
