package dataset

import (
	"testing"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func smallSpec() GenSpec {
	return GenSpec{Windows: 240}
}

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate(smallSpec(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 240 {
		t.Fatalf("Len = %d, want 240", c.Len())
	}
	if c.FeatureSize != 15 {
		t.Fatalf("FeatureSize = %d", c.FeatureSize)
	}
	for i, ex := range c.Examples {
		if len(ex.Features) != 15 {
			t.Fatalf("example %d feature size %d", i, len(ex.Features))
		}
		if !ex.Label.Valid() {
			t.Fatalf("example %d invalid label", i)
		}
	}
}

func TestGenerateBalanced(t *testing.T) {
	c, err := Generate(smallSpec(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ClassCounts()
	for a, n := range counts {
		if n < 240/synth.NumActivities-20 || n > 240/synth.NumActivities+20 {
			t.Fatalf("class %v count %d far from balanced", synth.Activity(a), n)
		}
	}
	// Every Pareto config should appear.
	for _, cfg := range sensor.ParetoStates() {
		if c.FilterConfig(cfg).Len() == 0 {
			t.Fatalf("config %v absent from corpus", cfg.Name())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Examples {
		for j := range a.Examples[i].Features {
			if a.Examples[i].Features[j] != b.Examples[i].Features[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenSpec{Configs: []sensor.Config{{FreqHz: -1, AvgWindow: 8}}}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Generate(GenSpec{EpisodeSec: 1, WindowSec: 2, HopSec: 1, Windows: 10}, rng.New(1)); err == nil {
		t.Fatal("episode shorter than window accepted")
	}
	if _, err := Generate(GenSpec{BinFreqsHz: []float64{-1}, Windows: 10}, rng.New(1)); err == nil {
		t.Fatal("bad bin freqs accepted")
	}
}

func TestXYParallel(t *testing.T) {
	c, err := Generate(smallSpec(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	X, Y := c.XY()
	if len(X) != c.Len() || len(Y) != c.Len() {
		t.Fatal("XY lengths wrong")
	}
	for i := range X {
		if &X[i][0] != &c.Examples[i].Features[0] {
			t.Fatal("XY should alias corpus storage")
		}
		if Y[i] != int(c.Examples[i].Label) {
			t.Fatal("labels misaligned")
		}
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	c, err := Generate(smallSpec(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	train, test := c.Split(0.25, rng.New(8))
	if train.Len()+test.Len() != c.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), c.Len())
	}
	if test.Len() != 60 {
		t.Fatalf("test size = %d, want 60", test.Len())
	}
	seen := map[*float64]bool{}
	for _, ex := range train.Examples {
		seen[&ex.Features[0]] = true
	}
	for _, ex := range test.Examples {
		if seen[&ex.Features[0]] {
			t.Fatal("example appears in both splits")
		}
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	c := &Corpus{}
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction did not panic")
		}
	}()
	c.Split(1.5, rng.New(1))
}

func TestFilterConfig(t *testing.T) {
	c, err := Generate(smallSpec(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sensor.ParetoStates()[0]
	sub := c.FilterConfig(cfg)
	for _, ex := range sub.Examples {
		if ex.Config != cfg {
			t.Fatal("FilterConfig leaked other configs")
		}
	}
	total := 0
	for _, cc := range sensor.ParetoStates() {
		total += c.FilterConfig(cc).Len()
	}
	if total != c.Len() {
		t.Fatalf("config partition covers %d of %d", total, c.Len())
	}
}
