package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceBasic(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("Variance of constant = %v, want 0", got)
	}
	// Population variance of {1,2,3,4} = 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); !almostEqual(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v, want 1.25", got)
	}
}

func TestStdDevShiftInvariance(t *testing.T) {
	r := rng.New(1)
	f := func(shiftRaw int8) bool {
		shift := float64(shiftRaw)
		x := make([]float64, 64)
		y := make([]float64, 64)
		for i := range x {
			x[i] = r.Norm()
			y[i] = x[i] + shift
		}
		return almostEqual(StdDev(x), StdDev(y), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, -3, 3, -3}); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("RMS = %v, want 3", got)
	}
	if got := RMS(nil); got != 0 {
		t.Fatalf("RMS(nil) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	if got := MeanAbsDiff([]float64{0, 1, 3, 0}); !almostEqual(got, (1+2+3)/3.0, 1e-12) {
		t.Fatalf("MeanAbsDiff = %v", got)
	}
	if got := MeanAbsDiff([]float64{5}); got != 0 {
		t.Fatalf("MeanAbsDiff single = %v, want 0", got)
	}
}

func TestMagnitude3(t *testing.T) {
	m := Magnitude3([]float64{3}, []float64{4}, []float64{0})
	if !almostEqual(m[0], 5, 1e-12) {
		t.Fatalf("Magnitude3 = %v, want 5", m[0])
	}
}

// --- Goertzel ---

func TestGoertzelPureTone(t *testing.T) {
	const fs = 100.0
	const f = 2.0
	n := 200 // 2 seconds: integer number of cycles
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	// Unit sinusoid at the target bin -> normalized magnitude ~0.5.
	if got := Goertzel(x, f, fs); !almostEqual(got, 0.5, 1e-6) {
		t.Fatalf("Goertzel at tone = %v, want 0.5", got)
	}
	// Far-off bin should be near zero.
	if got := Goertzel(x, 11, fs); got > 1e-6 {
		t.Fatalf("Goertzel off tone = %v, want ~0", got)
	}
}

func TestGoertzelRateInvariance(t *testing.T) {
	// The same physical tone sampled at different rates over the same
	// duration must produce (approximately) the same feature value. This
	// is the property AdaSense's unified feature set relies on.
	const f = 1.5
	const dur = 2.0
	mag := func(fs float64) float64 {
		n := int(dur * fs)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
		}
		return Goertzel(x, f, fs)
	}
	m100 := mag(100)
	m25 := mag(25)
	m12 := mag(12.5)
	if !almostEqual(m100, m25, 0.02) || !almostEqual(m100, m12, 0.05) {
		t.Fatalf("rate invariance violated: %v %v %v", m100, m25, m12)
	}
}

func TestGoertzelMatchesNaiveDFT(t *testing.T) {
	r := rng.New(2)
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	re, im := NaiveDFT(x)
	for k := 1; k < 8; k++ {
		want := math.Hypot(re[k], im[k]) / float64(n)
		// Bin k of an n-point DFT at fs corresponds to freq k*fs/n.
		got := Goertzel(x, float64(k)*100/float64(n), 100)
		if !almostEqual(got, want, 1e-9) {
			t.Fatalf("bin %d: Goertzel=%v naive=%v", k, got, want)
		}
	}
}

func TestGoertzelEmptyAndBadFs(t *testing.T) {
	if Goertzel(nil, 1, 100) != 0 {
		t.Fatal("Goertzel(nil) != 0")
	}
	if Goertzel([]float64{1, 2}, 1, 0) != 0 {
		t.Fatal("Goertzel with fs=0 != 0")
	}
}

func TestGoertzelBinsReuse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	buf := make([]float64, 3)
	out := GoertzelBins(x, []float64{1, 2, 3}, 100, buf)
	if &out[0] != &buf[0] {
		t.Fatal("GoertzelBins did not reuse provided buffer")
	}
	out2 := GoertzelBins(x, []float64{1, 2, 3}, 100, nil)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("GoertzelBins buffer reuse changed results")
		}
	}
}

// --- FFT ---

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		wantRe, wantIm := NaiveDFT(x)
		re := make([]float64, n)
		im := make([]float64, n)
		copy(re, x)
		FFT(re, im)
		for k := 0; k < n; k++ {
			if !almostEqual(re[k], wantRe[k], 1e-7) || !almostEqual(im[k], wantIm[k], 1e-7) {
				t.Fatalf("n=%d bin %d: FFT=(%v,%v) naive=(%v,%v)", n, k, re[k], im[k], wantRe[k], wantIm[k])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 128
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.Norm()
		}
		re := make([]float64, n)
		im := make([]float64, n)
		copy(re, x)
		FFT(re, im)
		IFFT(re, im)
		for i := range x {
			if !almostEqual(re[i], x[i], 1e-9) || !almostEqual(im[i], 0, 1e-9) {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	r := rng.New(5)
	n := 256
	x := make([]float64, n)
	var timeEnergy float64
	for i := range x {
		x[i] = r.Norm()
		timeEnergy += x[i] * x[i]
	}
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	FFT(re, im)
	var freqEnergy float64
	for k := range re {
		freqEnergy += re[k]*re[k] + im[k]*im[k]
	}
	freqEnergy /= float64(n)
	if !almostEqual(timeEnergy, freqEnergy, 1e-6*timeEnergy) {
		t.Fatalf("Parseval violated: time=%v freq=%v", timeEnergy, freqEnergy)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 3 did not panic")
		}
	}()
	FFT(make([]float64, 3), make([]float64, 3))
}

func TestFFTMagnitudesTone(t *testing.T) {
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	mags := FFTMagnitudes(x)
	if len(mags) != n/2+1 {
		t.Fatalf("len(mags) = %d", len(mags))
	}
	if !almostEqual(mags[8], 0.5, 1e-9) {
		t.Fatalf("tone bin magnitude = %v, want 0.5", mags[8])
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 128: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// --- windows / detrend ---

func TestHannEndpoints(t *testing.T) {
	w := Hann(64)
	if !almostEqual(w[0], 0, 1e-12) || !almostEqual(w[63], 0, 1e-12) {
		t.Fatalf("Hann endpoints = %v, %v", w[0], w[63])
	}
	if w[32] < 0.9 {
		t.Fatalf("Hann midpoint = %v", w[32])
	}
	if got := Hann(1); got[0] != 1 {
		t.Fatalf("Hann(1) = %v", got)
	}
}

func TestHammingBounds(t *testing.T) {
	for _, v := range Hamming(33) {
		if v < 0.07 || v > 1 {
			t.Fatalf("Hamming out of bounds: %v", v)
		}
	}
	if got := Hamming(1); got[0] != 1 {
		t.Fatalf("Hamming(1) = %v", got)
	}
}

func TestApplyWindowAndDetrend(t *testing.T) {
	x := []float64{2, 4, 6}
	ApplyWindow(x, []float64{1, 0.5, 0})
	want := []float64{2, 2, 0}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ApplyWindow: %v", x)
		}
	}
	y := []float64{5, 7, 9}
	m := Detrend(y)
	if m != 7 {
		t.Fatalf("Detrend mean = %v", m)
	}
	if !almostEqual(Mean(y), 0, 1e-12) {
		t.Fatalf("detrended mean = %v", Mean(y))
	}
}

// --- resampling ---

func TestLinearInterpExactAtSamples(t *testing.T) {
	x := []float64{0, 10, 20, 30}
	for i, want := range x {
		if got := LinearInterp(x, 10, float64(i)/10); got != want {
			t.Fatalf("interp at sample %d = %v", i, got)
		}
	}
	if got := LinearInterp(x, 10, 0.05); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("midpoint interp = %v", got)
	}
	// Clamping.
	if got := LinearInterp(x, 10, -1); got != 0 {
		t.Fatalf("pre-clamp = %v", got)
	}
	if got := LinearInterp(x, 10, 99); got != 30 {
		t.Fatalf("post-clamp = %v", got)
	}
}

func TestResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := Resample(x, 10, 10, 5)
	for i := range x {
		if !almostEqual(x[i], y[i], 1e-12) {
			t.Fatalf("identity resample differs at %d", i)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Decimate len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decimate = %v", got)
		}
	}
}

func TestMovingAverageConstant(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	for _, v := range MovingAverage(x, 3) {
		if !almostEqual(v, 5, 1e-12) {
			t.Fatal("moving average of constant signal is not constant")
		}
	}
}

func TestMovingAverageKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := MovingAverage(x, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage = %v, want %v", got, want)
		}
	}
}

func TestMovingAverageReducesNoiseBySqrtW(t *testing.T) {
	// Averaging w iid samples divides the std by ~sqrt(w) — this is the
	// physical basis of the averaging-window/noise trade-off in the paper.
	r := rng.New(6)
	n := 100000
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	for _, w := range []int{4, 16, 64} {
		avg := MovingAverage(x, w)
		// Skip the warm-up prefix and decorrelate by sampling every w-th
		// element.
		var samples []float64
		for i := w; i < n; i += w {
			samples = append(samples, avg[i])
		}
		got := StdDev(samples)
		want := 1 / math.Sqrt(float64(w))
		if math.Abs(got-want) > 0.25*want {
			t.Fatalf("w=%d: averaged std=%v, want ~%v", w, got, want)
		}
	}
}

func BenchmarkGoertzel200(b *testing.B) {
	x := make([]float64, 200)
	for i := range x {
		x[i] = math.Sin(float64(i) / 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Goertzel(x, 2, 100)
	}
}

func BenchmarkFFT256(b *testing.B) {
	re := make([]float64, 256)
	im := make([]float64, 256)
	for i := range re {
		re[i] = math.Sin(float64(i) / 5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(re, im)
	}
}
