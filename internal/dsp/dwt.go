package dsp

// Haar discrete wavelet transform. The paper's related work ([12], [16])
// discusses the DWT as the computationally heavier alternative to
// statistical and Fourier features; this implementation backs the
// feature-family ablation that justifies AdaSense's choice.
//
// A property worth noting (and demonstrated by the ablation): DWT subband
// boundaries sit at fs/2^(k+1) — they move with the sampling rate. Under
// heterogeneous sensor configurations the "same" subband means different
// physics at different rates, unlike Goertzel bins pinned to physical
// frequencies.

// HaarStep performs one Haar analysis step: approx gets the scaled
// pairwise sums of x, detail the scaled differences. len(x) must be even;
// approx and detail must each hold len(x)/2.
func HaarStep(x, approx, detail []float64) {
	n := len(x) / 2
	if len(x)%2 != 0 || len(approx) < n || len(detail) < n {
		panic("dsp: HaarStep size mismatch")
	}
	const invSqrt2 = 0.7071067811865476
	for i := 0; i < n; i++ {
		a, b := x[2*i], x[2*i+1]
		approx[i] = (a + b) * invSqrt2
		detail[i] = (a - b) * invSqrt2
	}
}

// HaarDWT decomposes x into `levels` detail bands plus a final
// approximation, zero-padding x to the next power of two first. It returns
// the detail coefficient slices from finest (level 1, highest frequencies)
// to coarsest, followed by the final approximation. levels is clamped to
// log2(paddedLen).
func HaarDWT(x []float64, levels int) [][]float64 {
	n := NextPow2(len(x))
	buf := make([]float64, n)
	copy(buf, x)
	maxLevels := 0
	for m := n; m > 1; m >>= 1 {
		maxLevels++
	}
	if levels > maxLevels {
		levels = maxLevels
	}
	if levels < 1 {
		levels = 1
	}
	var out [][]float64
	cur := buf
	for lv := 0; lv < levels; lv++ {
		half := len(cur) / 2
		approx := make([]float64, half)
		detail := make([]float64, half)
		HaarStep(cur, approx, detail)
		out = append(out, detail)
		cur = approx
	}
	out = append(out, cur)
	return out
}

// WaveletEnergies returns the per-band mean energy (sum of squared
// coefficients divided by the original length) of the Haar decomposition:
// one value per detail level (finest first) plus the final approximation.
// The division by len(x) keeps the scale comparable across batch sizes.
func WaveletEnergies(x []float64, levels int) []float64 {
	if len(x) == 0 {
		out := make([]float64, levels+1)
		return out
	}
	bands := HaarDWT(x, levels)
	out := make([]float64, len(bands))
	inv := 1 / float64(len(x))
	for i, band := range bands {
		sum := 0.0
		for _, c := range band {
			sum += c * c
		}
		out[i] = sum * inv
	}
	return out
}
