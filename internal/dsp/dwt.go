package dsp

// Haar discrete wavelet transform. The paper's related work ([12], [16])
// discusses the DWT as the computationally heavier alternative to
// statistical and Fourier features; this implementation backs the
// feature-family ablation that justifies AdaSense's choice.
//
// A property worth noting (and demonstrated by the ablation): DWT subband
// boundaries sit at fs/2^(k+1) — they move with the sampling rate. Under
// heterogeneous sensor configurations the "same" subband means different
// physics at different rates, unlike Goertzel bins pinned to physical
// frequencies.

// HaarStep performs one Haar analysis step: approx gets the scaled
// pairwise sums of x, detail the scaled differences. len(x) must be even;
// approx and detail must each hold len(x)/2.
func HaarStep(x, approx, detail []float64) {
	n := len(x) / 2
	if len(x)%2 != 0 || len(approx) < n || len(detail) < n {
		panic("dsp: HaarStep size mismatch")
	}
	const invSqrt2 = 0.7071067811865476
	for i := 0; i < n; i++ {
		a, b := x[2*i], x[2*i+1]
		approx[i] = (a + b) * invSqrt2
		detail[i] = (a - b) * invSqrt2
	}
}

// HaarDWT decomposes x into `levels` detail bands plus a final
// approximation, zero-padding x to the next power of two first. It returns
// the detail coefficient slices from finest (level 1, highest frequencies)
// to coarsest, followed by the final approximation. levels is clamped to
// log2(paddedLen).
//
// Every returned band is carved from one shared backing array. Callers on
// a hot path should hold a DWT workspace and call Transform instead,
// which reuses that array across calls.
func HaarDWT(x []float64, levels int) [][]float64 {
	var w DWT
	return w.Transform(x, levels)
}

// DWT is a reusable Haar analysis workspace: all coefficients of a
// decomposition live in one backing array sized to the padded input, and
// Transform reuses it across calls, so steady-state use allocates
// nothing. The bands returned by Transform alias the workspace and are
// valid only until the next call. A DWT is not safe for concurrent use.
type DWT struct {
	coeffs []float64 // work area (front half) ∥ band storage (back half)
	bands  [][]float64
}

// Transform decomposes x exactly like HaarDWT, reusing the workspace.
func (w *DWT) Transform(x []float64, levels int) [][]float64 {
	n := NextPow2(len(x))
	maxLevels := 0
	for m := n; m > 1; m >>= 1 {
		maxLevels++
	}
	if levels > maxLevels {
		levels = maxLevels
	}
	if levels < 1 {
		levels = 1
	}
	// The detail bands plus the final approximation hold at most n
	// coefficients total, so one 2n array fits the work area and every
	// band: cascading halves the work area in place while each level's
	// details land in the storage half.
	if cap(w.coeffs) < 2*n {
		w.coeffs = make([]float64, 2*n)
	}
	work, store := w.coeffs[:n], w.coeffs[n:2*n]
	copy(work, x)
	clear(work[len(x):])
	if cap(w.bands) < levels+1 {
		w.bands = make([][]float64, 0, levels+1)
	}
	out := w.bands[:0]
	cur, pos := work, 0
	for lv := 0; lv < levels; lv++ {
		half := len(cur) / 2
		detail := store[pos : pos+half : pos+half]
		pos += half
		// In-place lifting: the approximation lands in the front half of
		// cur. The write at index i trails every remaining read (2i and
		// 2i+1 are ≥ i+1 for i ≥ 1), so no unread sample is clobbered.
		HaarStep(cur, cur[:half], detail)
		out = append(out, detail)
		cur = cur[:half]
	}
	final := store[pos : pos+len(cur) : pos+len(cur)]
	copy(final, cur)
	out = append(out, final)
	w.bands = out
	return out
}

// WaveletEnergies returns the per-band mean energy (sum of squared
// coefficients divided by the original length) of the Haar decomposition:
// one value per detail level (finest first) plus the final approximation.
// The division by len(x) keeps the scale comparable across batch sizes.
func WaveletEnergies(x []float64, levels int) []float64 {
	if len(x) == 0 {
		out := make([]float64, levels+1)
		return out
	}
	bands := HaarDWT(x, levels)
	out := make([]float64, len(bands))
	inv := 1 / float64(len(x))
	for i, band := range bands {
		sum := 0.0
		for _, c := range band {
			sum += c * c
		}
		out[i] = sum * inv
	}
	return out
}
