package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
)

func TestHaarStepKnown(t *testing.T) {
	x := []float64{1, 1, 2, 2}
	approx := make([]float64, 2)
	detail := make([]float64, 2)
	HaarStep(x, approx, detail)
	s2 := math.Sqrt2
	if math.Abs(approx[0]-s2) > 1e-12 || math.Abs(approx[1]-2*s2) > 1e-12 {
		t.Fatalf("approx = %v", approx)
	}
	if detail[0] != 0 || detail[1] != 0 {
		t.Fatalf("detail of pairwise-constant signal = %v", detail)
	}
}

func TestHaarStepPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd length did not panic")
		}
	}()
	HaarStep(make([]float64, 3), make([]float64, 1), make([]float64, 1))
}

func TestHaarDWTEnergyConservation(t *testing.T) {
	// The Haar transform is orthonormal: total energy of all bands equals
	// the signal energy (for power-of-two lengths; padding adds zeros).
	r := rng.New(7)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		x := make([]float64, 128)
		var want float64
		for i := range x {
			x[i] = rr.Norm()
			want += x[i] * x[i]
		}
		bands := HaarDWT(x, 7)
		var got float64
		for _, band := range bands {
			for _, c := range band {
				got += c * c
			}
		}
		return math.Abs(got-want) < 1e-9*want
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarDWTLevelClamping(t *testing.T) {
	bands := HaarDWT(make([]float64, 8), 99)
	// 8 samples allow 3 levels: 3 details + final approx = 4 bands.
	if len(bands) != 4 {
		t.Fatalf("bands = %d, want 4", len(bands))
	}
	if len(bands[3]) != 1 {
		t.Fatalf("final approx length = %d, want 1", len(bands[3]))
	}
}

func TestWaveletEnergiesLocalizeFrequency(t *testing.T) {
	const fs = 64.0
	n := 256
	mk := func(f float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
		}
		return x
	}
	// A tone near Nyquist concentrates in the finest detail band; a slow
	// tone concentrates in the coarse bands.
	fast := WaveletEnergies(mk(28), 5)
	slow := WaveletEnergies(mk(1), 5)
	if fast[0] < fast[3] {
		t.Fatalf("fast tone not in finest band: %v", fast)
	}
	coarse := slow[4] + slow[5]
	if coarse < slow[0] {
		t.Fatalf("slow tone not in coarse bands: %v", slow)
	}
}

func TestWaveletEnergiesEmpty(t *testing.T) {
	out := WaveletEnergies(nil, 3)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty signal has nonzero energy")
		}
	}
}

func TestDWTWorkspaceMatchesHaarDWT(t *testing.T) {
	// One workspace reused across mixed lengths and depths must agree
	// with the allocating entry point call for call.
	var w DWT
	r := rng.New(11)
	for _, n := range []int{256, 8, 200, 64, 31, 2} {
		for _, levels := range []int{1, 5, 99} {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.Norm()
			}
			want := HaarDWT(x, levels)
			got := w.Transform(x, levels)
			if len(got) != len(want) {
				t.Fatalf("n=%d levels=%d: %d bands, want %d", n, levels, len(got), len(want))
			}
			for bi := range want {
				if len(got[bi]) != len(want[bi]) {
					t.Fatalf("n=%d levels=%d band %d: len %d, want %d", n, levels, bi, len(got[bi]), len(want[bi]))
				}
				for ci := range want[bi] {
					if math.Abs(got[bi][ci]-want[bi][ci]) > 1e-12 {
						t.Fatalf("n=%d levels=%d band %d coeff %d: %g, want %g",
							n, levels, bi, ci, got[bi][ci], want[bi][ci])
					}
				}
			}
		}
	}
}

func BenchmarkHaarDWT256(b *testing.B) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HaarDWT(x, 5)
	}
}

func BenchmarkHaarDWT256Reuse(b *testing.B) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	var w DWT
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Transform(x, 5)
	}
}
