package dsp

import "math"

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex sequence (re, im). The length must be a power of
// two; FFT panics otherwise. The transform is unnormalized (matching the
// usual engineering convention); callers divide by N as needed.
func FFT(re, im []float64) {
	n := len(re)
	if len(im) != n {
		panic("dsp: FFT re/im length mismatch")
	}
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				uRe, uIm := re[i], im[i]
				vRe := re[j]*curRe - im[j]*curIm
				vIm := re[j]*curIm + im[j]*curRe
				re[i], im[i] = uRe+vRe, uIm+vIm
				re[j], im[j] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// IFFT computes the inverse FFT of (re, im) in place, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(re, im []float64) {
	n := len(re)
	if n == 0 {
		return
	}
	for i := range im {
		im[i] = -im[i]
	}
	FFT(re, im)
	inv := 1 / float64(n)
	for i := range re {
		re[i] *= inv
		im[i] *= -inv
	}
}

// FFTMagnitudes returns the first half (N/2+1 bins, DC through Nyquist) of
// the magnitude spectrum of the real signal x, normalized by N. len(x) must
// be a power of two.
func FFTMagnitudes(x []float64) []float64 {
	n := len(x)
	re := make([]float64, n)
	im := make([]float64, n)
	copy(re, x)
	FFT(re, im)
	out := make([]float64, n/2+1)
	inv := 1 / float64(n)
	for i := range out {
		out[i] = math.Hypot(re[i], im[i]) * inv
	}
	return out
}

// NaiveDFT computes the full DFT of the real signal x by direct summation.
// It is O(N²) and exists as the correctness oracle for FFT and Goertzel in
// tests; production code paths never call it.
func NaiveDFT(x []float64) (re, im []float64) {
	n := len(x)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		var sr, si float64
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sr += x[t] * math.Cos(ang)
			si += x[t] * math.Sin(ang)
		}
		re[k], im[k] = sr, si
	}
	return re, im
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
