package dsp

import "math"

// Goertzel computes the magnitude of the discrete-time Fourier transform of
// x at the physical frequency freqHz, given the sampling rate fsHz, using
// the Goertzel second-order recursion. The result is normalized by the
// number of samples so that a unit-amplitude sinusoid at freqHz yields a
// magnitude of ~0.5 independent of the batch length.
//
// Targeting a *physical* frequency rather than an FFT bin index is the key
// to AdaSense's rate-invariant features: a 2-second batch holds 200 samples
// at 100 Hz but only 12 at 6.25 Hz, yet "spectral content at 1 Hz" means
// the same thing for both, so a single classifier can consume either.
func Goertzel(x []float64, freqHz, fsHz float64) float64 {
	n := len(x)
	if n == 0 || fsHz <= 0 {
		return 0
	}
	// Normalized angular frequency. The recursion is exact for any real
	// omega, not only for integer bin centers.
	omega := 2 * math.Pi * freqHz / fsHz
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Power of the resonator state, then magnitude.
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0 // guard tiny negative rounding residue
	}
	return math.Sqrt(power) / float64(n)
}

// GoertzelBins evaluates Goertzel at each frequency in freqsHz and returns
// the magnitudes. dst, if non-nil and long enough, is reused.
func GoertzelBins(x []float64, freqsHz []float64, fsHz float64, dst []float64) []float64 {
	if cap(dst) < len(freqsHz) {
		dst = make([]float64, len(freqsHz))
	}
	dst = dst[:len(freqsHz)]
	for i, f := range freqsHz {
		dst[i] = Goertzel(x, f, fsHz)
	}
	return dst
}
