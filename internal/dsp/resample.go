package dsp

// LinearInterp evaluates the piecewise-linear interpolant of the samples x
// (taken at a uniform rate fsHz, first sample at t=0) at time tSec.
// Times outside the sampled span clamp to the end samples.
//
// Linear interpolation over variable-rate data is the normalization
// strategy of Liu et al. [17] discussed in the paper's related work; it is
// provided both for the comparison path and for resampling utilities.
func LinearInterp(x []float64, fsHz, tSec float64) float64 {
	if len(x) == 0 {
		return 0
	}
	pos := tSec * fsHz
	if pos <= 0 {
		return x[0]
	}
	if pos >= float64(len(x)-1) {
		return x[len(x)-1]
	}
	i := int(pos)
	frac := pos - float64(i)
	return x[i]*(1-frac) + x[i+1]*frac
}

// Resample converts x sampled at fromHz into n samples at toHz using linear
// interpolation, starting at t=0.
func Resample(x []float64, fromHz, toHz float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = LinearInterp(x, fromHz, float64(i)/toHz)
	}
	return out
}

// Decimate returns every k-th sample of x starting from index 0. It panics
// if k <= 0.
func Decimate(x []float64, k int) []float64 {
	if k <= 0 {
		panic("dsp: Decimate with non-positive factor")
	}
	out := make([]float64, 0, (len(x)+k-1)/k)
	for i := 0; i < len(x); i += k {
		out = append(out, x[i])
	}
	return out
}

// MovingAverage returns the w-point trailing moving average of x. The first
// w-1 outputs average the available prefix. It panics if w <= 0. This is
// the discrete counterpart of the sensor's averaging window and is used by
// tests to cross-check the analytic averaged-signal model.
func MovingAverage(x []float64, w int) []float64 {
	if w <= 0 {
		panic("dsp: MovingAverage with non-positive window")
	}
	out := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		sum += v
		if i >= w {
			sum -= x[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}
