// Package dsp is the signal-processing substrate for the AdaSense
// reproduction: descriptive statistics, single-bin Goertzel DFT, a radix-2
// FFT, a naive DFT used as a test oracle, window functions and linear
// resampling. Everything operates on float64 slices and is allocation-free
// where the call patterns are hot (per-window feature extraction).
package dsp

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x (dividing by N), or 0 for
// slices shorter than 1. The two-pass formulation is used for numerical
// stability.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	sum := 0.0
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// MinMax returns the minimum and maximum of x. It panics on an empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("dsp: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MeanAbsDiff returns the mean absolute first difference of x,
// mean(|x[i+1]-x[i]|). It is the signal-intensity measure used by the
// intensity-based baseline (NK et al. [8] in the paper): static activities
// have small derivatives, locomotion large ones. Returns 0 for slices with
// fewer than two samples.
func MeanAbsDiff(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	sum := 0.0
	for i := 1; i < len(x); i++ {
		sum += math.Abs(x[i] - x[i-1])
	}
	return sum / float64(len(x)-1)
}

// Magnitude3 returns sqrt(x²+y²+z²) for each sample triple. The three input
// slices must have equal length.
func Magnitude3(x, y, z []float64) []float64 {
	if len(x) != len(y) || len(y) != len(z) {
		panic("dsp: Magnitude3 length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = math.Sqrt(x[i]*x[i] + y[i]*y[i] + z[i]*z[i])
	}
	return out
}
