package dsp

import "math"

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies x element-wise by w in place. The slices must have
// equal length.
func ApplyWindow(x, w []float64) {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= w[i]
	}
}

// Detrend subtracts the mean of x from every element, in place, and returns
// the removed mean. Feature extraction detrends before spectral estimation
// so the gravity component does not leak into the low-frequency bins.
func Detrend(x []float64) float64 {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
	return m
}
