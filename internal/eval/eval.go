// Package eval provides classification metrics: accuracy, confusion
// matrices and per-class precision/recall/F1, used by the design-space
// exploration and by EXPERIMENTS.md reporting.
package eval

import (
	"fmt"
	"strings"

	"adasense/internal/synth"
)

// Confusion is a row-major confusion matrix: Confusion[truth][predicted].
type Confusion [synth.NumActivities][synth.NumActivities]int

// Add records one observation.
func (c *Confusion) Add(truth, predicted synth.Activity) {
	c[truth][predicted]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for i := range c {
		for j := range c[i] {
			n += c[i][j]
		}
	}
	return n
}

// Correct returns the trace (correctly classified count).
func (c *Confusion) Correct() int {
	n := 0
	for i := range c {
		n += c[i][i]
	}
	return n
}

// Accuracy returns Correct/Total, or 0 when empty.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Correct()) / float64(t)
}

// Precision returns the precision of class a (0 when the class was never
// predicted).
func (c *Confusion) Precision(a synth.Activity) float64 {
	col := 0
	for i := range c {
		col += c[i][a]
	}
	if col == 0 {
		return 0
	}
	return float64(c[a][a]) / float64(col)
}

// Recall returns the recall of class a (0 when the class never occurred).
func (c *Confusion) Recall(a synth.Activity) float64 {
	row := 0
	for j := range c[a] {
		row += c[a][j]
	}
	if row == 0 {
		return 0
	}
	return float64(c[a][a]) / float64(row)
}

// F1 returns the harmonic mean of precision and recall for class a.
func (c *Confusion) F1(a synth.Activity) float64 {
	p, r := c.Precision(a), c.Recall(a)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 returns the unweighted mean F1 over classes that occur.
func (c *Confusion) MacroF1() float64 {
	sum, n := 0.0, 0
	for a := synth.Activity(0); int(a) < synth.NumActivities; a++ {
		row := 0
		for j := range c[a] {
			row += c[a][j]
		}
		if row == 0 {
			continue
		}
		sum += c.F1(a)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the matrix as an aligned table with class labels.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s", "truth\\pred")
	for j := synth.Activity(0); int(j) < synth.NumActivities; j++ {
		fmt.Fprintf(&b, "%11s", j)
	}
	b.WriteByte('\n')
	for i := synth.Activity(0); int(i) < synth.NumActivities; i++ {
		fmt.Fprintf(&b, "%-11s", i)
		for j := 0; j < synth.NumActivities; j++ {
			fmt.Fprintf(&b, "%11d", c[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Classifier is anything that maps a feature vector to an activity class
// with a confidence. *nn.Network satisfies it via a thin adapter in the
// callers; the indirection keeps eval free of model dependencies.
type Classifier interface {
	Classify(features []float64) (synth.Activity, float64)
}

// Score runs the classifier over parallel feature/label slices and returns
// the confusion matrix.
func Score(c Classifier, X [][]float64, Y []synth.Activity) Confusion {
	var m Confusion
	for i, x := range X {
		pred, _ := c.Classify(x)
		m.Add(Y[i], pred)
	}
	return m
}
