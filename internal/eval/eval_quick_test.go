package eval

import (
	"testing"
	"testing/quick"

	"adasense/internal/rng"
	"adasense/internal/synth"
)

// TestConfusionInvariants fills confusion matrices with random
// observations and checks structural invariants of every metric.
func TestConfusionInvariants(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%200) + 1
		var c Confusion
		for i := 0; i < n; i++ {
			c.Add(synth.Activity(r.Intn(synth.NumActivities)),
				synth.Activity(r.Intn(synth.NumActivities)))
		}
		if c.Total() != n {
			return false
		}
		if c.Correct() > c.Total() {
			return false
		}
		acc := c.Accuracy()
		if acc < 0 || acc > 1 {
			return false
		}
		for a := synth.Activity(0); int(a) < synth.NumActivities; a++ {
			p, rec, f1 := c.Precision(a), c.Recall(a), c.F1(a)
			if p < 0 || p > 1 || rec < 0 || rec > 1 || f1 < 0 || f1 > 1 {
				return false
			}
			// F1 is bounded by both precision and recall's max.
			if f1 > p+rec {
				return false
			}
		}
		m := c.MacroF1()
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPerfectClassifierScoresOne checks that a diagonal matrix yields
// accuracy and macro F1 of exactly 1 regardless of class distribution.
func TestPerfectClassifierScoresOne(t *testing.T) {
	f := func(counts [synth.NumActivities]uint8) bool {
		var c Confusion
		total := 0
		for a, n := range counts {
			for i := 0; i < int(n); i++ {
				c.Add(synth.Activity(a), synth.Activity(a))
				total++
			}
		}
		if total == 0 {
			return true
		}
		return c.Accuracy() == 1 && c.MacroF1() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
