package eval

import (
	"math"
	"strings"
	"testing"

	"adasense/internal/synth"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(synth.Walk, synth.Walk)
	c.Add(synth.Walk, synth.Walk)
	c.Add(synth.Walk, synth.Downstairs)
	c.Add(synth.Sit, synth.Sit)
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Correct() != 3 {
		t.Fatalf("Correct = %d", c.Correct())
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestEmptyConfusion(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.MacroF1() != 0 {
		t.Fatal("empty confusion should score 0")
	}
	if c.Precision(synth.Walk) != 0 || c.Recall(synth.Walk) != 0 || c.F1(synth.Walk) != 0 {
		t.Fatal("per-class metrics of empty matrix should be 0")
	}
}

func TestPrecisionRecall(t *testing.T) {
	var c Confusion
	// truth walk ×3: predicted walk, walk, sit.
	c.Add(synth.Walk, synth.Walk)
	c.Add(synth.Walk, synth.Walk)
	c.Add(synth.Walk, synth.Sit)
	// truth sit ×2: predicted walk, sit.
	c.Add(synth.Sit, synth.Walk)
	c.Add(synth.Sit, synth.Sit)
	if got := c.Recall(synth.Walk); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Recall(walk) = %v", got)
	}
	if got := c.Precision(synth.Walk); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Precision(walk) = %v", got)
	}
	if got := c.F1(synth.Walk); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1(walk) = %v", got)
	}
}

func TestMacroF1SkipsAbsentClasses(t *testing.T) {
	var c Confusion
	c.Add(synth.Walk, synth.Walk)
	c.Add(synth.Sit, synth.Sit)
	if got := c.MacroF1(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want 1 (absent classes skipped)", got)
	}
}

func TestStringContainsLabels(t *testing.T) {
	var c Confusion
	c.Add(synth.Upstairs, synth.Downstairs)
	s := c.String()
	if !strings.Contains(s, "upstairs") || !strings.Contains(s, "downstairs") {
		t.Fatalf("String missing labels:\n%s", s)
	}
}

type constClassifier synth.Activity

func (cc constClassifier) Classify([]float64) (synth.Activity, float64) {
	return synth.Activity(cc), 1
}

func TestScore(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	Y := []synth.Activity{synth.Walk, synth.Walk, synth.Sit}
	m := Score(constClassifier(synth.Walk), X, Y)
	if m.Total() != 3 || m.Correct() != 2 {
		t.Fatalf("Score total=%d correct=%d", m.Total(), m.Correct())
	}
}
