package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/core"
	"adasense/internal/dataset"
	"adasense/internal/features"
	"adasense/internal/fixedpoint"
	"adasense/internal/mcu"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/sim"
	"adasense/internal/synth"
)

// FeatureAblationRow reports accuracy with a given number of Fourier bins
// (0 = statistical features only).
type FeatureAblationRow struct {
	Bins     int
	Accuracy float64
}

// FeatureAblationResult supports the Section III-B claim that the first
// three Fourier coefficients suffice.
type FeatureAblationResult struct {
	Rows []FeatureAblationRow
}

// FeatureAblation trains a classifier per spectral-bin count over the four
// Pareto configurations and reports held-out accuracy. windows sizes each
// corpus (0 selects 3600).
func (l *Lab) FeatureAblation(windows int) (FeatureAblationResult, error) {
	if windows == 0 {
		windows = 3600
	}
	var out FeatureAblationResult
	for bins := 0; bins <= 6; bins++ {
		freqs := make([]float64, bins)
		for i := range freqs {
			freqs[i] = float64(i + 1)
		}
		if bins == 0 {
			freqs = []float64{} // stats-only feature set
		}
		sub := l.rngFor(uint64(100 + bins))
		train, err := dataset.Generate(dataset.GenSpec{Windows: windows, BinFreqsHz: freqs}, sub.Split(1))
		if err != nil {
			return out, err
		}
		test, err := dataset.Generate(dataset.GenSpec{Windows: windows / 2, BinFreqsHz: freqs}, sub.Split(2))
		if err != nil {
			return out, err
		}
		net := nn.New(train.FeatureSize, 32, synth.NumActivities, sub.Split(3))
		X, Y := train.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 50}, sub.Split(4)); err != nil {
			return out, err
		}
		tx, ty := test.XY()
		out.Rows = append(out.Rows, FeatureAblationRow{Bins: bins, Accuracy: nn.Accuracy(net, tx, ty)})
	}
	return out, nil
}

// Render formats the ablation.
func (f FeatureAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Feature ablation: accuracy vs number of Fourier coefficients (Section III-B)\n")
	b.WriteString("bins   features   accuracy%\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%4d   %8d   %8.2f\n", r.Bins, 3*(2+r.Bins), 100*r.Accuracy)
	}
	b.WriteString("(the paper keeps 3 coefficients: accuracy saturates there)\n")
	return b.String()
}

// ConfidenceAblationRow reports one confidence-threshold sweep point.
type ConfidenceAblationRow struct {
	Confidence float64
	Accuracy   float64
	PowerUA    float64
}

// ConfidenceAblationResult sweeps the SPOT confidence threshold (the
// paper fixes 0.85 without a sweep; this ablation justifies the choice).
type ConfidenceAblationResult struct {
	Rows []ConfidenceAblationRow
}

// ConfidenceAblation sweeps the confidence gate at a fixed stability
// threshold over a typical workload.
func (l *Lab) ConfidenceAblation(stabilityTicks int, repeats int) (ConfidenceAblationResult, error) {
	if stabilityTicks == 0 {
		stabilityTicks = 10
	}
	if repeats == 0 {
		repeats = 3
	}
	r := l.rngFor(300)
	type workload struct {
		motion  *synth.Motion
		simSeed uint64
	}
	workloads := make([]workload, repeats)
	for i := range workloads {
		sched := synth.RandomSchedule(r.Split(uint64(i)*2+1), 600, 20, 60)
		workloads[i] = workload{
			motion:  synth.NewMotion(synth.DefaultModels(), sched, r.Split(uint64(i)*2+2)),
			simSeed: r.Uint64(),
		}
	}
	var out ConfidenceAblationResult
	for _, conf := range []float64{0, 0.5, 0.7, 0.85, 0.95, 0.99} {
		row := ConfidenceAblationRow{Confidence: conf}
		for _, w := range workloads {
			res, err := sim.Run(sim.Spec{
				Motion:     w.motion,
				Controller: core.MustSPOT(sensor.ParetoStates(), stabilityTicks, conf),
				Classifier: l.Pipeline(),
			}, rng.New(w.simSeed))
			if err != nil {
				return out, err
			}
			row.Accuracy += res.Accuracy() / float64(repeats)
			row.PowerUA += res.AvgSensorCurrentUA / float64(repeats)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the sweep.
func (c ConfidenceAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Confidence-threshold ablation (paper fixes 0.85)\n")
	b.WriteString("conf    accuracy%   power-uA\n")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%.2f   %9.2f   %8.1f\n", r.Confidence, 100*r.Accuracy, r.PowerUA)
	}
	return b.String()
}

// HiddenWidthRow is one point of the classifier capacity sweep.
type HiddenWidthRow struct {
	Hidden   int
	Accuracy float64
	Bytes    int
}

// HiddenWidthResult sweeps the classifier's hidden width — the knob behind
// the paper's memory argument: wearables have "only few KBs of memory", so
// accuracy per byte matters as much as accuracy.
type HiddenWidthResult struct {
	Rows []HiddenWidthRow
}

// HiddenWidthAblation trains classifiers of increasing hidden width on the
// standard 4-configuration corpus and reports held-out accuracy and
// float32 footprint. windows sizes each corpus (0 selects 3600).
func (l *Lab) HiddenWidthAblation(windows int) (HiddenWidthResult, error) {
	if windows == 0 {
		windows = 3600
	}
	var out HiddenWidthResult
	for _, hidden := range []int{4, 8, 16, 32, 64} {
		sub := l.rngFor(uint64(600 + hidden))
		train, err := dataset.Generate(dataset.GenSpec{Windows: windows}, sub.Split(1))
		if err != nil {
			return out, err
		}
		test, err := dataset.Generate(dataset.GenSpec{Windows: windows / 2}, sub.Split(2))
		if err != nil {
			return out, err
		}
		net := nn.New(train.FeatureSize, hidden, synth.NumActivities, sub.Split(3))
		X, Y := train.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 50, LabelSmoothing: 0.1}, sub.Split(4)); err != nil {
			return out, err
		}
		tx, ty := test.XY()
		out.Rows = append(out.Rows, HiddenWidthRow{
			Hidden:   hidden,
			Accuracy: nn.Accuracy(net, tx, ty),
			Bytes:    net.WeightBytes(4),
		})
	}
	return out, nil
}

// Render formats the sweep.
func (h HiddenWidthResult) Render() string {
	var b strings.Builder
	b.WriteString("Classifier capacity ablation (accuracy per byte)\n")
	b.WriteString("hidden   bytes   accuracy%\n")
	for _, r := range h.Rows {
		fmt.Fprintf(&b, "%6d   %5d   %8.2f\n", r.Hidden, r.Bytes, 100*r.Accuracy)
	}
	b.WriteString("(accuracy is capacity-insensitive: the rate-invariant features carry the task,\n so even the smallest network fits a wearable's memory budget)\n")
	return b.String()
}

// DescendModeResult compares the two readings of the paper's ambiguous
// stability-counter semantics on the same workload (see
// core.DescendMode): the count-once default reaches the floor
// ≈ threshold + 3 ticks after the last change, count-per-state needs
// 3 × threshold.
type DescendModeResult struct {
	CountOncePowerUA     float64
	CountOnceAccuracy    float64
	CountPerStatePowerUA float64
	CountPerStateAcc     float64
}

// DescendModeAblation runs plain SPOT in both descend modes.
func (l *Lab) DescendModeAblation(stabilityTicks, repeats int) (DescendModeResult, error) {
	if stabilityTicks == 0 {
		stabilityTicks = 10
	}
	if repeats == 0 {
		repeats = 3
	}
	r := l.rngFor(500)
	var out DescendModeResult
	for rep := 0; rep < repeats; rep++ {
		sched := synth.RandomSchedule(r.Split(uint64(rep)*2+1), 600, 40, 60)
		motion := synth.NewMotion(synth.DefaultModels(), sched, r.Split(uint64(rep)*2+2))
		simSeed := r.Uint64()
		for _, mode := range []core.DescendMode{core.CountOnce, core.CountPerState} {
			spot := core.NewPaperSPOT(stabilityTicks)
			spot.SetMode(mode)
			res, err := sim.Run(sim.Spec{
				Motion:     motion,
				Controller: spot,
				Classifier: l.Pipeline(),
			}, rng.New(simSeed))
			if err != nil {
				return out, err
			}
			inv := 1 / float64(repeats)
			if mode == core.CountOnce {
				out.CountOncePowerUA += res.AvgSensorCurrentUA * inv
				out.CountOnceAccuracy += res.Accuracy() * inv
			} else {
				out.CountPerStatePowerUA += res.AvgSensorCurrentUA * inv
				out.CountPerStateAcc += res.Accuracy() * inv
			}
		}
	}
	return out, nil
}

// Render formats the comparison.
func (d DescendModeResult) Render() string {
	var b strings.Builder
	b.WriteString("Stability-counter semantics ablation (paper Fig. 4 is ambiguous)\n")
	fmt.Fprintf(&b, "count-once (default): accuracy %.2f%%, power %.1f uA\n",
		100*d.CountOnceAccuracy, d.CountOncePowerUA)
	fmt.Fprintf(&b, "count-per-state:      accuracy %.2f%%, power %.1f uA\n",
		100*d.CountPerStateAcc, d.CountPerStatePowerUA)
	b.WriteString("(count-once matches the paper's Fig. 6b: power below baseline until the 60 s dwell bound)\n")
	return b.String()
}

// FixedPointResult compares float32 and Q15 deployments of the shared
// classifier.
type FixedPointResult struct {
	FloatAccuracy float64
	Q15Accuracy   float64
	FloatBytes    int
	Q15Bytes      int
}

// FixedPointAblation evaluates the quantized classifier on a held-out
// corpus. windows sizes the test corpus (0 selects 2400).
func (l *Lab) FixedPointAblation(windows int) (FixedPointResult, error) {
	if windows == 0 {
		windows = 2400
	}
	test, err := dataset.Generate(dataset.GenSpec{Windows: windows}, l.rngFor(400))
	if err != nil {
		return FixedPointResult{}, err
	}
	X, Y := test.XY()
	q := fixedpoint.Quantize(l.Net)
	correct := 0
	for i, x := range X {
		if c, _ := q.Predict(x); c == Y[i] {
			correct++
		}
	}
	return FixedPointResult{
		FloatAccuracy: nn.Accuracy(l.Net, X, Y),
		Q15Accuracy:   float64(correct) / float64(len(X)),
		FloatBytes:    l.Net.WeightBytes(4),
		Q15Bytes:      q.WeightBytes(),
	}, nil
}

// Render formats the comparison.
func (f FixedPointResult) Render() string {
	var b strings.Builder
	b.WriteString("Fixed-point deployment ablation\n")
	fmt.Fprintf(&b, "float32: accuracy %.2f%%, %d B\n", 100*f.FloatAccuracy, f.FloatBytes)
	fmt.Fprintf(&b, "Q15:     accuracy %.2f%%, %d B\n", 100*f.Q15Accuracy, f.Q15Bytes)
	return b.String()
}

// FeatureFamilyRow is one feature-family comparison point.
type FeatureFamilyRow struct {
	Name         string
	FeatureSize  int
	Accuracy     float64
	CyclesPerWin uint64
}

// FeatureFamilyResult compares the three feature families the paper's
// related work weighs (statistical, Fourier, wavelet) in AdaSense's
// heterogeneous-rate setting: one shared classifier trained over the four
// Pareto configurations per family, plus the per-window MCU cost on a
// 100 Hz 2-second batch.
type FeatureFamilyResult struct {
	Rows []FeatureFamilyRow
}

// FeatureFamilyAblation trains one classifier per feature family. windows
// sizes each corpus (0 selects 3600).
func (l *Lab) FeatureFamilyAblation(windows int) (FeatureFamilyResult, error) {
	if windows == 0 {
		windows = 3600
	}
	const batch200 = 200 // F100_A128, 2 s
	wavelet, err := features.NewWaveletExtractor(5)
	if err != nil {
		return FeatureFamilyResult{}, err
	}
	// Per-window cost = feature extraction + inference on the family's
	// feature width (a larger vector costs classifier cycles and bytes).
	families := []struct {
		name   string
		ext    dataset.FeatureExtractor
		cycles uint64
	}{
		{"statistical", features.MustExtractor([]float64{}),
			mcu.FeatureExtractionCycles(batch200, 0) + mcu.InferenceCycles(6, 32, 6)},
		{"fourier-3 (AdaSense)", features.MustExtractor(nil),
			mcu.FeatureExtractionCycles(batch200, 3) + mcu.InferenceCycles(15, 32, 6)},
		{"wavelet-5", wavelet,
			mcu.FeatureExtractionCycles(batch200, 0) + mcu.WaveletCycles(batch200, 5) +
				mcu.InferenceCycles(24, 32, 6)},
	}
	var out FeatureFamilyResult
	for i, fam := range families {
		sub := l.rngFor(uint64(700 + i))
		train, err := dataset.Generate(dataset.GenSpec{Windows: windows, Extractor: fam.ext}, sub.Split(1))
		if err != nil {
			return out, err
		}
		test, err := dataset.Generate(dataset.GenSpec{Windows: windows / 2, Extractor: fam.ext}, sub.Split(2))
		if err != nil {
			return out, err
		}
		net := nn.New(train.FeatureSize, 32, synth.NumActivities, sub.Split(3))
		X, Y := train.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 50, LabelSmoothing: 0.1}, sub.Split(4)); err != nil {
			return out, err
		}
		tx, ty := test.XY()
		out.Rows = append(out.Rows, FeatureFamilyRow{
			Name:         fam.name,
			FeatureSize:  fam.ext.Size(),
			Accuracy:     nn.Accuracy(net, tx, ty),
			CyclesPerWin: fam.cycles,
		})
	}
	return out, nil
}

// Render formats the comparison.
func (f FeatureFamilyResult) Render() string {
	var b strings.Builder
	b.WriteString("Feature-family ablation (related work: statistical vs Fourier vs DWT)\n")
	b.WriteString("family                 dims   accuracy%   cycles/window@100Hz\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-21s %5d   %9.2f   %19d\n", r.Name, r.FeatureSize, 100*r.Accuracy, r.CyclesPerWin)
	}
	b.WriteString("(Haar band energies are competitive on accuracy in our simulator even\n though subband edges move with the sampling rate; the Fourier set's\n advantage is its fixed physical meaning and the smaller feature vector\n — 15 vs 24 dims — which shrinks classifier memory and inference cost.)\n")
	return b.String()
}
