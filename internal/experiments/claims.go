package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/core"
	"adasense/internal/fixedpoint"
	"adasense/internal/mcu"
	"adasense/internal/sensor"
)

// MemoryResult is the Section V-D classifier-memory comparison.
type MemoryResult struct {
	// SharedBytes is AdaSense's single classifier (float32).
	SharedBytes int
	// BankBytes is the intensity baseline's per-rate classifiers (2
	// networks).
	BankBytes int
	// PerConfigBytes is the naive per-configuration strategy over the
	// four Pareto states (4 networks) — the paper's "4× less memory"
	// comparison.
	PerConfigBytes int
	// SharedQ15Bytes is the shared classifier quantized to Q15.
	SharedQ15Bytes int
}

// Memory computes the comparison from the lab's trained models.
func (l *Lab) Memory() MemoryResult {
	shared := l.Net.WeightBytes(4)
	return MemoryResult{
		SharedBytes:    shared,
		BankBytes:      l.Bank.MemoryBytes(4),
		PerConfigBytes: shared * len(sensor.ParetoStates()),
		SharedQ15Bytes: fixedpoint.Quantize(l.Net).WeightBytes(),
	}
}

// Render formats the memory table.
func (m MemoryResult) Render() string {
	var b strings.Builder
	b.WriteString("Classifier memory (Section V-D)\n")
	fmt.Fprintf(&b, "AdaSense shared classifier (float32):        %6d B\n", m.SharedBytes)
	fmt.Fprintf(&b, "IbA per-rate classifiers (2 networks):       %6d B  (%.1fx AdaSense)\n",
		m.BankBytes, float64(m.BankBytes)/float64(m.SharedBytes))
	fmt.Fprintf(&b, "per-configuration classifiers (4 networks):  %6d B  (%.1fx AdaSense)\n",
		m.PerConfigBytes, float64(m.PerConfigBytes)/float64(m.SharedBytes))
	fmt.Fprintf(&b, "AdaSense shared classifier quantized (Q15):  %6d B\n", m.SharedQ15Bytes)
	return b.String()
}

// OverheadRow compares per-window MCU cost with and without the intensity
// baseline's derivative computation at one batch size.
type OverheadRow struct {
	Samples        int
	AdaSenseCycles uint64
	IbACycles      uint64
	AdaSenseUC     float64
	IbAUC          float64
}

// OverheadResult is the Section V-D data-processing-overhead comparison.
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead computes per-window cycle and charge costs for the four Pareto
// configurations' 2-second windows.
func Overhead() OverheadResult {
	m := mcu.Default()
	var out OverheadResult
	for _, cfg := range sensor.ParetoStates() {
		n := cfg.BatchSize(2)
		ada := mcu.FeatureExtractionCycles(n, 3) + mcu.InferenceCycles(15, 32, 6)
		ibaC := ada + mcu.DerivativeCycles(n)
		out.Rows = append(out.Rows, OverheadRow{
			Samples:        n,
			AdaSenseCycles: ada,
			IbACycles:      ibaC,
			AdaSenseUC:     m.ActiveChargeUC(ada),
			IbAUC:          m.ActiveChargeUC(ibaC),
		})
	}
	return out
}

// Render formats the overhead table.
func (o OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("Data-processing overhead per 2 s window (Section V-D)\n")
	b.WriteString("samples   AdaSense-cycles   IbA-cycles   overhead%   AdaSense-uC   IbA-uC\n")
	for _, r := range o.Rows {
		over := 100 * (float64(r.IbACycles)/float64(r.AdaSenseCycles) - 1)
		fmt.Fprintf(&b, "%7d   %15d   %10d   %8.1f   %11.3f   %6.3f\n",
			r.Samples, r.AdaSenseCycles, r.IbACycles, over, r.AdaSenseUC, r.IbAUC)
	}
	b.WriteString("(AdaSense needs no derivative computation to drive its controller)\n")
	return b.String()
}

// FSMResult renders the SPOT transition structure (the reproduction of the
// Fig. 4 state diagram).
type FSMResult struct {
	Plain      string
	Confidence string
}

// FSM renders both controller variants' transition tables.
func FSM() FSMResult {
	plain := mustTable(false)
	conf := mustTable(true)
	return FSMResult{Plain: plain, Confidence: conf}
}

func mustTable(withConf bool) string {
	if withConf {
		return core.NewPaperSPOTWithConfidence(7).TransitionTable()
	}
	return core.NewPaperSPOT(7).TransitionTable()
}

// Render formats both tables.
func (f FSMResult) Render() string {
	return "SPOT FSM (Fig. 4), stability threshold shown as ticks:\n" +
		f.Plain + "\nSPOT with confidence 0.85:\n" + f.Confidence
}
