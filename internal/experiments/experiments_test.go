package experiments

import (
	"strings"
	"sync"
	"testing"

	"adasense/internal/pareto"
	"adasense/internal/sensor"
)

var (
	labOnce sync.Once
	labInst *Lab
	labErr  error
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		labInst, labErr = NewQuickLab(2026)
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return labInst
}

func TestTable1(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 16 {
		t.Fatalf("Table I rows = %d", len(res.Rows))
	}
	paretoCount := 0
	normalCount := 0
	for _, r := range res.Rows {
		if r.Pareto {
			paretoCount++
		}
		if r.Mode.String() == "normal" {
			normalCount++
			if r.DutyCycle != 1 {
				t.Fatalf("%s normal mode with duty %v", r.Config.Name(), r.DutyCycle)
			}
		}
	}
	if paretoCount != 4 {
		t.Fatalf("Pareto marks = %d, want 4", paretoCount)
	}
	if normalCount != 4 { // F100/F50/F25/F12.5 at A128 cannot duty-cycle
		t.Fatalf("normal-mode configs = %d, want 4", normalCount)
	}
	out := res.Render()
	for _, want := range []string{"F100_A128", "F6.25_A8", "Table I"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFSMRender(t *testing.T) {
	out := FSM().Render()
	for _, want := range []string{"C4 stay", "conf >= 0.85", "F12.5_A8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FSM render missing %q:\n%s", want, out)
		}
	}
}

func TestOverheadIbAPaysForDerivative(t *testing.T) {
	res := Overhead()
	if len(res.Rows) != 4 {
		t.Fatalf("overhead rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.IbACycles <= r.AdaSenseCycles {
			t.Fatalf("IbA cycles %d not above AdaSense %d", r.IbACycles, r.AdaSenseCycles)
		}
		if r.IbAUC <= r.AdaSenseUC {
			t.Fatal("IbA charge not above AdaSense")
		}
	}
	if !strings.Contains(res.Render(), "overhead") {
		t.Fatal("render missing header")
	}
}

func TestMemoryClaims(t *testing.T) {
	lab := quickLab(t)
	m := lab.Memory()
	if m.BankBytes != 2*m.SharedBytes {
		t.Fatalf("bank = %d, want 2× shared %d", m.BankBytes, m.SharedBytes)
	}
	if m.PerConfigBytes != 4*m.SharedBytes {
		t.Fatalf("per-config = %d, want 4× shared", m.PerConfigBytes)
	}
	if m.SharedQ15Bytes >= m.SharedBytes {
		t.Fatal("Q15 not smaller than float32")
	}
	out := m.Render()
	if !strings.Contains(out, "2.0x") || !strings.Contains(out, "4.0x") {
		t.Fatalf("render missing ratios:\n%s", out)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop experiment")
	}
	lab := quickLab(t)
	res, err := lab.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Descent: the floor must be reached near threshold+3 ticks (paper:
	// ~28 s).
	if res.FloorReachedAt < 25 || res.FloorReachedAt > 32 {
		t.Fatalf("floor reached at %v s, want ~28", res.FloorReachedAt)
	}
	// Snap back within a few seconds of the activity change at 60 s.
	if res.SnapBackAt < 60 || res.SnapBackAt > 66 {
		t.Fatalf("snap back at %v s, want shortly after 60", res.SnapBackAt)
	}
	// Second descent completes.
	if res.SecondFloorAt < 0 || res.SecondFloorAt > 100 {
		t.Fatalf("second floor at %v s", res.SecondFloorAt)
	}
	if res.Run.AvgSensorCurrentUA >= 180 {
		t.Fatal("SPOT drew baseline power")
	}
	if !strings.Contains(res.Render(), "Fig. 5") {
		t.Fatal("render missing header")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop sweep")
	}
	lab := quickLab(t)
	res, err := lab.Fig6(Fig6Spec{
		Thresholds:  []int{0, 10, 30, 60},
		Repeats:     2,
		ScheduleSec: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Fig. 6a: accuracy rises with the threshold toward the baseline.
	if first.SPOTAcc >= last.SPOTAcc {
		t.Fatalf("SPOT accuracy did not rise: %v -> %v", first.SPOTAcc, last.SPOTAcc)
	}
	if last.SPOTAcc < first.BaselineAcc-0.02 {
		t.Fatalf("SPOT accuracy at 60 s (%v) should approach baseline (%v)", last.SPOTAcc, first.BaselineAcc)
	}
	// Fig. 6b: power rises with the threshold and matches the baseline at
	// 60 s (dwell times are below one minute).
	if first.SPOTPow >= last.SPOTPow {
		t.Fatalf("SPOT power did not rise: %v -> %v", first.SPOTPow, last.SPOTPow)
	}
	if last.SPOTPow < 0.97*last.BaselinePow {
		t.Fatalf("SPOT power at 60 s = %v, want ~baseline %v", last.SPOTPow, last.BaselinePow)
	}
	// The confidence gate saves more power than plain SPOT overall.
	if res.AvgSavingConf <= res.AvgSavingSPOT {
		t.Fatalf("confidence saving %v not above plain %v", res.AvgSavingConf, res.AvgSavingSPOT)
	}
	// Substantial operating-point savings (paper: 60 % / 69 %).
	if res.OpSavingSPOT < 0.35 || res.OpSavingConf < 0.45 {
		t.Fatalf("operating-point savings too small: %v / %v", res.OpSavingSPOT, res.OpSavingConf)
	}
	if !strings.Contains(res.Render(), "stability threshold") {
		t.Fatal("render missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop comparison")
	}
	lab := quickLab(t)
	res, err := lab.Fig7(Fig7Spec{Repeats: 2, ScheduleSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	high, medium, low := res.Rows[0], res.Rows[1], res.Rows[2]
	// At the High setting AdaSense loses to IbA (paper: 10.7 vs 9.3).
	if high.AdaSensePow <= high.IbAPow {
		t.Fatalf("High: AdaSense %v should draw more than IbA %v", high.AdaSensePow, high.IbAPow)
	}
	// At Medium and Low it wins by at least the paper's 25 %.
	for _, row := range []Fig7Row{medium, low} {
		if saving := 1 - row.AdaSensePow/row.IbAPow; saving < 0.25 {
			t.Fatalf("%v: AdaSense saving %v below 25%%", row.Setting, saving)
		}
	}
	// AdaSense's power decreases as the user gets more stable.
	if !(high.AdaSensePow > medium.AdaSensePow && medium.AdaSensePow > low.AdaSensePow) {
		t.Fatal("AdaSense power should fall from High to Low")
	}
	// IbA's power is roughly setting-independent (within 20 %).
	if low.IbAPow < 0.8*high.IbAPow {
		t.Fatalf("IbA power varies too much: %v vs %v", high.IbAPow, low.IbAPow)
	}
	// Accuracy: AdaSense runs below the per-configuration classifiers,
	// but not catastrophically (paper prose: 1–1.5 %; ours: a few %).
	for _, row := range res.Rows {
		if row.AdaSenseAcc > row.IbAAcc+0.02 {
			t.Fatalf("%v: AdaSense accuracy above IbA contradicts the paper's prose", row.Setting)
		}
		if row.AdaSenseAcc < row.IbAAcc-0.08 {
			t.Fatalf("%v: AdaSense accuracy %v too far below IbA %v", row.Setting, row.AdaSenseAcc, row.IbAAcc)
		}
	}
	if !strings.Contains(res.Render(), "IbA") {
		t.Fatal("render missing header")
	}
}

func TestFeatureAblationSaturatesAtThreeBins(t *testing.T) {
	if testing.Short() {
		t.Skip("trains seven classifiers")
	}
	lab := quickLab(t)
	res, err := lab.FeatureAblation(1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	acc := func(bins int) float64 { return res.Rows[bins].Accuracy }
	// Spectral features must help substantially over stats alone.
	if acc(3) < acc(0)+0.03 {
		t.Fatalf("3 bins (%v) should clearly beat 0 bins (%v)", acc(3), acc(0))
	}
	// And accuracy saturates: going to 6 bins buys far less than the
	// first three did. (Our synthetic gait keeps some harmonic content
	// just above 3 Hz, so saturation is softer than the paper's; see
	// EXPERIMENTS.md.)
	if acc(6) > acc(3)+0.045 {
		t.Fatalf("6 bins (%v) should not beat 3 bins (%v) by much", acc(6), acc(3))
	}
	// The paper's ~97 % ballpark with 3 coefficients.
	if acc(3) < 0.90 {
		t.Fatalf("3-bin accuracy %v below plausible band", acc(3))
	}
	if !strings.Contains(res.Render(), "Fourier") {
		t.Fatal("render missing header")
	}
}

func TestConfidenceAblationMonotonePower(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop sweep")
	}
	lab := quickLab(t)
	res, err := lab.ConfidenceAblation(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 0.85 gate must save power over no gate. (An extreme
	// gate like 0.99 can backfire: it suppresses even real changes, so
	// the FSM freezes wherever it was — the ablation exists to show 0.85
	// is a sweet spot, so no monotonicity is asserted.)
	byConf := map[float64]float64{}
	for _, row := range res.Rows {
		byConf[row.Confidence] = row.PowerUA
	}
	if byConf[0.85] >= byConf[0] {
		t.Fatalf("0.85 gate power %v not below ungated %v", byConf[0.85], byConf[0])
	}
	if !strings.Contains(res.Render(), "0.85") {
		t.Fatal("render missing threshold")
	}
}

func TestFixedPointAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates a corpus")
	}
	lab := quickLab(t)
	res, err := lab.FixedPointAblation(1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Q15Accuracy < res.FloatAccuracy-0.02 {
		t.Fatalf("Q15 accuracy %v too far below float %v", res.Q15Accuracy, res.FloatAccuracy)
	}
	if res.Q15Bytes >= res.FloatBytes {
		t.Fatal("Q15 bytes not smaller")
	}
	if !strings.Contains(res.Render(), "Q15") {
		t.Fatal("render missing header")
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains sixteen classifiers")
	}
	lab := quickLab(t)
	res, err := lab.Fig2(Fig2Spec{TrainWindows: 1500, TestWindows: 1200, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploration.Points) != 16 {
		t.Fatalf("points = %d", len(res.Exploration.Points))
	}
	// At test-scale corpora the per-point noise is ±1-2 %, so assert with
	// a matching ε (the full-size run in EXPERIMENTS.md uses ε = 1 %).
	idxByName := map[string]int{}
	for i, p := range res.Exploration.Points {
		idxByName[p.Config.Name()] = i
	}
	for _, cfg := range sensor.ParetoStates() {
		if !pareto.EpsilonNonDominated(res.Exploration.Points, idxByName[cfg.Name()], 0.025) {
			t.Errorf("paper state %s ε-dominated beyond test tolerance", cfg.Name())
		}
	}
	if !res.DominatedExampleOK {
		t.Error("F6.25_A128 should be dominated")
	}
	if !strings.Contains(res.Render(), "frontier") {
		t.Fatal("render missing frontier")
	}
}

func TestHiddenWidthAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains five classifiers")
	}
	lab := quickLab(t)
	res, err := lab.HiddenWidthAblation(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Bytes grow monotonically with width.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Bytes <= res.Rows[i-1].Bytes {
			t.Fatal("bytes not monotone in width")
		}
	}
	// The finding this sweep documents: capacity is NOT the bottleneck —
	// the rate-invariant features carry the problem, so every width from
	// 4 to 64 lands in the same accuracy band. Assert the band, not a
	// monotone trend that does not exist.
	for _, row := range res.Rows {
		if row.Accuracy < 0.85 {
			t.Fatalf("width %d accuracy %v below the common band", row.Hidden, row.Accuracy)
		}
	}
	if !strings.Contains(res.Render(), "hidden") {
		t.Fatal("render missing header")
	}
}

func TestDescendModeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop comparison")
	}
	lab := quickLab(t)
	res, err := lab.DescendModeAblation(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Count-once descends faster, so it must draw less power.
	if res.CountOncePowerUA >= res.CountPerStatePowerUA {
		t.Fatalf("count-once (%v) should draw less than count-per-state (%v)",
			res.CountOncePowerUA, res.CountPerStatePowerUA)
	}
	if !strings.Contains(res.Render(), "count-once") {
		t.Fatal("render missing header")
	}
}

func TestFeatureFamilyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three classifiers")
	}
	lab := quickLab(t)
	res, err := lab.FeatureFamilyAblation(1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	stats, fourier, wavelet := res.Rows[0], res.Rows[1], res.Rows[2]
	// Spectral families must clearly beat statistics alone.
	if fourier.Accuracy < stats.Accuracy+0.05 || wavelet.Accuracy < stats.Accuracy+0.05 {
		t.Fatalf("spectral features should beat stats: %v / %v vs %v",
			fourier.Accuracy, wavelet.Accuracy, stats.Accuracy)
	}
	// The wavelet family pays for its wider feature vector.
	if wavelet.FeatureSize <= fourier.FeatureSize {
		t.Fatal("wavelet feature vector should be wider")
	}
	if wavelet.CyclesPerWin <= stats.CyclesPerWin {
		t.Fatal("wavelet pipeline should cost more than stats alone")
	}
	if !strings.Contains(res.Render(), "wavelet") {
		t.Fatal("render missing family name")
	}
}
