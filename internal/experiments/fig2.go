package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/pareto"
	"adasense/internal/sensor"
)

// Fig2Result is the design-space exploration of Fig. 2.
type Fig2Result struct {
	Exploration pareto.Result
	// PaperStatesOK reports whether the paper's four SPOT states are
	// ε-non-dominated (ε = 1 %) in the recomputed landscape.
	PaperStatesOK bool
	// DominatedExampleOK reports whether the paper's callout — F6.25_A128
	// strictly dominated — holds.
	DominatedExampleOK bool
}

// Fig2Spec sizes the exploration.
type Fig2Spec struct {
	// TrainWindows/TestWindows are per configuration (the exploration
	// trains per-configuration classifiers; defaults 2400/1800).
	TrainWindows, TestWindows int
	// Replicas averages each point over independent trainings
	// (default 2).
	Replicas int
}

// Fig2 recomputes the accuracy/current landscape over Table I and the
// Pareto frontier.
func (l *Lab) Fig2(spec Fig2Spec) (Fig2Result, error) {
	if spec.Replicas == 0 {
		spec.Replicas = 2
	}
	res, err := pareto.Explore(pareto.Spec{
		TrainWindows: spec.TrainWindows,
		TestWindows:  spec.TestWindows,
		Replicas:     spec.Replicas,
	}, l.rngFor(2))
	if err != nil {
		return Fig2Result{}, err
	}
	out := Fig2Result{Exploration: res, PaperStatesOK: true}
	idxByName := map[string]int{}
	for i, p := range res.Points {
		idxByName[p.Config.Name()] = i
	}
	for _, cfg := range sensor.ParetoStates() {
		if !pareto.EpsilonNonDominated(res.Points, idxByName[cfg.Name()], 0.01) {
			out.PaperStatesOK = false
		}
	}
	out.DominatedExampleOK = !pareto.EpsilonNonDominated(res.Points, idxByName["F6.25_A128"], 0)
	return out, nil
}

// Render formats the exploration as the Fig. 2 scatter data.
func (f Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 2: accelerometer configurations accuracy and power trade-off\n")
	b.WriteString("config        mode       current(uA)  accuracy(%)  front\n")
	for _, p := range f.Exploration.Points {
		mark := ""
		if p.OnFront {
			mark = "  *"
		}
		fmt.Fprintf(&b, "%-13s %-10s %10.2f  %10.2f%s\n",
			p.Config.Name(), p.Mode, p.CurrentUA, 100*p.Accuracy, mark)
	}
	fmt.Fprintf(&b, "frontier (descending current): ")
	for i, p := range f.Exploration.Front {
		if i > 0 {
			b.WriteString(" > ")
		}
		b.WriteString(p.Config.Name())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "paper's four SPOT states ε-non-dominated: %v\n", f.PaperStatesOK)
	fmt.Fprintf(&b, "paper's dominated example (F6.25_A128):   %v\n", f.DominatedExampleOK)
	return b.String()
}
