package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/core"
	"adasense/internal/sim"
	"adasense/internal/synth"
	"adasense/internal/trace"
)

// Fig5Result is the behavioural analysis of Fig. 5: a 120-second use case
// (sit for 60 s, then walk for 60 s) under SPOT, with the accelerometer
// readings and the sensor current trace.
type Fig5Result struct {
	Run sim.Result
	// FloorReachedAt is the first time (s) the controller reached the
	// lowest-power state; the paper reports ≈28 s.
	FloorReachedAt float64
	// SnapBackAt is the first time (s) after the 60 s activity change at
	// which the controller was back in the highest-power state.
	SnapBackAt float64
	// SecondFloorAt is the first time the floor is reached again after
	// the snap-back (paper: another ≈28 s later).
	SecondFloorAt float64
}

// Fig5StabilityTicks is the stability threshold used for the trace: with
// the default count-once descent, the floor is reached threshold + 3
// ticks after the run starts — 28 s, the paper's reported descent time.
const Fig5StabilityTicks = 25

// Fig5 runs the 120-second behavioural trace under SPOT-with-confidence
// (misclassification-driven resets would otherwise occasionally interrupt
// the clean descent the paper's figure shows).
func (l *Lab) Fig5() (Fig5Result, error) {
	r := l.rngFor(5)
	sched := synth.MustSchedule(
		synth.Segment{Activity: synth.Sit, Duration: 60},
		synth.Segment{Activity: synth.Walk, Duration: 60},
	)
	motion := synth.NewMotion(synth.DefaultModels(), sched, r.Split(1))
	spot := core.NewPaperSPOTWithConfidence(Fig5StabilityTicks)
	run, err := sim.Run(sim.Spec{
		Motion:      motion,
		Controller:  spot,
		Classifier:  l.Pipeline(),
		Record:      true,
		RecordAccel: true,
	}, r.Split(2))
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{Run: run, FloorReachedAt: -1, SnapBackAt: -1, SecondFloorAt: -1}
	states := run.Recorder.Series("state")
	floor := float64(spot.NumStates() - 1)
	for i := range states.T {
		t, v := states.T[i], states.V[i]
		switch {
		case res.FloorReachedAt < 0 && v == floor:
			res.FloorReachedAt = t
		case t > 60 && res.SnapBackAt < 0 && v == 0:
			res.SnapBackAt = t
		case res.SnapBackAt >= 0 && res.SecondFloorAt < 0 && v == floor:
			res.SecondFloorAt = t
		}
	}
	return res, nil
}

// Render formats the trace summary and an ASCII rendition of Fig. 5b.
func (f Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: AdaSense behavioural analysis (sit 0-60 s, walk 60-120 s)\n")
	fmt.Fprintf(&b, "floor state first reached at t=%.0f s (paper: ~28 s)\n", f.FloorReachedAt)
	fmt.Fprintf(&b, "snap back to full power at  t=%.0f s (activity change at 60 s)\n", f.SnapBackAt)
	fmt.Fprintf(&b, "floor reached again at      t=%.0f s (paper: ~28 s after the change)\n", f.SecondFloorAt)
	fmt.Fprintf(&b, "average sensor current: %.1f uA (pinned baseline: 180 uA)\n", f.Run.AvgSensorCurrentUA)
	fmt.Fprintf(&b, "recognition accuracy over the trace: %.1f%%\n", 100*f.Run.Accuracy())
	b.WriteString("\nFig. 5b — sensor current per unit time:\n")
	b.WriteString(trace.ASCIIPlot(f.Run.Recorder.Series("config_current_uA"), 100, 12))
	b.WriteString("\nFig. 5a — y-axis accelerometer readings:\n")
	b.WriteString(trace.ASCIIPlot(f.Run.Recorder.Series("accel_y"), 100, 10))
	return b.String()
}
