package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/core"
	"adasense/internal/rng"
	"adasense/internal/sim"
	"adasense/internal/synth"
)

// Fig6Row is one stability-threshold sweep point: classification accuracy
// (Fig. 6a) and average sensor current (Fig. 6b) for the pinned baseline,
// plain SPOT and SPOT-with-confidence(0.85).
type Fig6Row struct {
	ThresholdSec int
	BaselineAcc  float64
	SPOTAcc      float64
	ConfAcc      float64
	BaselinePow  float64
	SPOTPow      float64
	ConfPow      float64
}

// Fig6Result is the full sweep.
type Fig6Result struct {
	Rows []Fig6Row
	// AvgSavingSPOT / AvgSavingConf are the sweep-average power savings
	// relative to the baseline.
	AvgSavingSPOT float64
	AvgSavingConf float64
	// OpSavingSPOT / OpSavingConf are the savings at the 10 s operating
	// threshold — the reading of the paper's headline "60 % (SPOT) /
	// 69 % (SPOT with confidence)" reduction that our sweep reproduces.
	OpSavingSPOT float64
	OpSavingConf float64
}

// OperatingThresholdSec is the stability threshold whose savings are
// reported as the headline numbers.
const OperatingThresholdSec = 10

// Fig6Spec sizes the sweep.
type Fig6Spec struct {
	// Thresholds in seconds (default 0..60 step 5).
	Thresholds []int
	// Repeats averages each point over this many schedules (default 3).
	Repeats int
	// ScheduleSec is each schedule's length (default 600).
	ScheduleSec float64
	// DwellLo/DwellHi bound activity dwell times (defaults 40 and 60 s:
	// activities change within a minute, so a 60 s threshold never fires
	// and SPOT degenerates to the baseline, matching the paper's Fig. 6b
	// endpoint).
	DwellLo, DwellHi float64
}

func (s Fig6Spec) withDefaults() Fig6Spec {
	if s.Thresholds == nil {
		for t := 0; t <= 60; t += 5 {
			s.Thresholds = append(s.Thresholds, t)
		}
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.ScheduleSec == 0 {
		s.ScheduleSec = 600
	}
	if s.DwellLo == 0 {
		s.DwellLo = 40
	}
	if s.DwellHi == 0 {
		s.DwellHi = 60
	}
	return s
}

// Fig6 sweeps the stability threshold for the three scenarios of the
// paper's Fig. 6: baseline (sensor pinned at F100_A128), SPOT, and
// SPOT-with-confidence 0.85, all sharing the single 4-configuration
// classifier.
func (l *Lab) Fig6(spec Fig6Spec) (Fig6Result, error) {
	spec = spec.withDefaults()
	r := l.rngFor(6)

	type workload struct {
		motion  *synth.Motion
		simSeed uint64
	}
	workloads := make([]workload, spec.Repeats)
	for i := range workloads {
		sched := synth.RandomSchedule(r.Split(uint64(i)*2+1), spec.ScheduleSec, spec.DwellLo, spec.DwellHi)
		workloads[i] = workload{
			motion:  synth.NewMotion(synth.DefaultModels(), sched, r.Split(uint64(i)*2+2)),
			simSeed: r.Uint64(),
		}
	}

	run := func(w workload, c core.Controller) (acc, pow float64) {
		res, err := sim.Run(sim.Spec{
			Motion:     w.motion,
			Controller: c,
			Classifier: l.Pipeline(),
		}, rng.New(w.simSeed)) // same sampling noise for every controller
		if err != nil {
			panic(err) // spec is internally constructed; cannot fail
		}
		return res.Accuracy(), res.AvgSensorCurrentUA
	}

	// The baseline is threshold-independent: evaluate once per workload.
	var baseAcc, basePow float64
	for _, w := range workloads {
		a, p := run(w, core.NewBaseline())
		baseAcc += a / float64(spec.Repeats)
		basePow += p / float64(spec.Repeats)
	}

	var out Fig6Result
	var savingSPOT, savingConf float64
	for _, thr := range spec.Thresholds {
		row := Fig6Row{ThresholdSec: thr, BaselineAcc: baseAcc, BaselinePow: basePow}
		for _, w := range workloads {
			a, p := run(w, core.NewPaperSPOT(thr))
			row.SPOTAcc += a / float64(spec.Repeats)
			row.SPOTPow += p / float64(spec.Repeats)
			a, p = run(w, core.NewPaperSPOTWithConfidence(thr))
			row.ConfAcc += a / float64(spec.Repeats)
			row.ConfPow += p / float64(spec.Repeats)
		}
		out.Rows = append(out.Rows, row)
		savingSPOT += 1 - row.SPOTPow/row.BaselinePow
		savingConf += 1 - row.ConfPow/row.BaselinePow
		if thr == OperatingThresholdSec {
			out.OpSavingSPOT = 1 - row.SPOTPow/row.BaselinePow
			out.OpSavingConf = 1 - row.ConfPow/row.BaselinePow
		}
	}
	out.AvgSavingSPOT = savingSPOT / float64(len(spec.Thresholds))
	out.AvgSavingConf = savingConf / float64(len(spec.Thresholds))
	return out, nil
}

// Render formats both panels of Fig. 6.
func (f Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6: AdaSense power and accuracy vs stability threshold\n")
	b.WriteString("thr(s)  base-acc%  spot-acc%  conf-acc%   base-uA   spot-uA   conf-uA\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%5d   %8.2f   %8.2f   %8.2f   %7.1f   %7.1f   %7.1f\n",
			r.ThresholdSec, 100*r.BaselineAcc, 100*r.SPOTAcc, 100*r.ConfAcc,
			r.BaselinePow, r.SPOTPow, r.ConfPow)
	}
	fmt.Fprintf(&b, "sweep-average power saving:   SPOT %.0f%%, SPOT+confidence %.0f%%\n",
		100*f.AvgSavingSPOT, 100*f.AvgSavingConf)
	fmt.Fprintf(&b, "saving at %d s operating point: SPOT %.0f%%, SPOT+confidence %.0f%% (paper: 60%% / 69%%)\n",
		OperatingThresholdSec, 100*f.OpSavingSPOT, 100*f.OpSavingConf)
	return b.String()
}
