package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/core"
	"adasense/internal/iba"
	"adasense/internal/mcu"
	"adasense/internal/rng"
	"adasense/internal/sim"
	"adasense/internal/synth"
)

// Fig7Row compares AdaSense with the intensity-based approach (IbA) under
// one user-activity-change setting.
type Fig7Row struct {
	Setting     synth.ChangeSetting
	IbAPow      float64
	AdaSensePow float64
	IbAAcc      float64
	AdaSenseAcc float64
}

// Fig7Result is the paper's Fig. 7 comparison.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Spec sizes the comparison.
type Fig7Spec struct {
	// Repeats averages each setting over this many schedules (default 3).
	Repeats int
	// ScheduleSec is each schedule's length (default 600).
	ScheduleSec float64
	// StabilityTicks is AdaSense's stability threshold (default 10).
	StabilityTicks int
}

func (s Fig7Spec) withDefaults() Fig7Spec {
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.ScheduleSec == 0 {
		s.ScheduleSec = 600
	}
	if s.StabilityTicks == 0 {
		s.StabilityTicks = 10
	}
	return s
}

// Fig7 runs both systems under the High/Medium/Low activity settings.
// AdaSense is SPOT-with-confidence over the shared classifier; IbA is the
// intensity controller over its per-configuration classifier bank, with
// the derivative computation charged to its MCU budget.
func (l *Lab) Fig7(spec Fig7Spec) (Fig7Result, error) {
	spec = spec.withDefaults()
	r := l.rngFor(7)

	var out Fig7Result
	for _, setting := range []synth.ChangeSetting{synth.HighChange, synth.MediumChange, synth.LowChange} {
		row := Fig7Row{Setting: setting}
		for rep := 0; rep < spec.Repeats; rep++ {
			tag := uint64(setting)*100 + uint64(rep)
			sched := synth.SettingSchedule(r.Split(tag*2+1), setting, spec.ScheduleSec)
			motion := synth.NewMotion(synth.DefaultModels(), sched, r.Split(tag*2+2))
			simSeed := r.Uint64()

			ada, err := sim.Run(sim.Spec{
				Motion:     motion,
				Controller: core.NewPaperSPOTWithConfidence(spec.StabilityTicks),
				Classifier: l.Pipeline(),
			}, rng.New(simSeed))
			if err != nil {
				return Fig7Result{}, err
			}
			ibaRun, err := sim.Run(sim.Spec{
				Motion:     motion,
				Controller: iba.NewDefaultController(),
				Classifier: l.Bank,
				CyclesPerWindow: func(n int) uint64 {
					// IbA pays the derivative on top of the pipeline.
					return mcu.FeatureExtractionCycles(n, 3) +
						mcu.InferenceCycles(15, 32, 6) +
						mcu.DerivativeCycles(n)
				},
			}, rng.New(simSeed))
			if err != nil {
				return Fig7Result{}, err
			}
			inv := 1 / float64(spec.Repeats)
			row.AdaSensePow += ada.AvgSensorCurrentUA * inv
			row.AdaSenseAcc += ada.Accuracy() * inv
			row.IbAPow += ibaRun.AvgSensorCurrentUA * inv
			row.IbAAcc += ibaRun.Accuracy() * inv
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the comparison table. The paper's prose (Section V-D)
// states AdaSense's accuracy runs 1–1.5 % below IbA's per-configuration
// classifiers while saving ≥25 % power at the Medium/Low settings; the
// figure's plotted accuracy values contradict the prose, and this
// reproduction follows the prose.
func (f Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7: AdaSense vs Intensity-based Approach (IbA)\n")
	b.WriteString("setting   IbA-uA   Ada-uA   saving%   IbA-acc%   Ada-acc%\n")
	for _, r := range f.Rows {
		saving := 100 * (1 - r.AdaSensePow/r.IbAPow)
		fmt.Fprintf(&b, "%-8s %7.1f  %7.1f  %8.1f  %9.2f  %9.2f\n",
			r.Setting, r.IbAPow, r.AdaSensePow, saving, 100*r.IbAAcc, 100*r.AdaSenseAcc)
	}
	return b.String()
}
