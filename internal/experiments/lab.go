// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) plus the prose claims of Sections III-B and V-D.
// Each experiment has a runner returning a structured result with a
// Render method; cmd/adasense-experiments and the repository's benchmarks
// are thin wrappers around these runners.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table1           — Table I: the 16 sensor configurations
//	Fig2             — design-space exploration and Pareto frontier
//	Fig5             — 120 s behavioural trace (sit → walk)
//	Fig6             — accuracy & power vs stability threshold
//	Fig7             — AdaSense vs the intensity-based approach
//	Memory           — classifier memory comparison
//	Overhead         — processing-overhead comparison
//	FeatureAblation  — accuracy vs number of Fourier coefficients
//	ConfidenceAblation, FixedPointAblation, FSM — design-choice ablations
package experiments

import (
	"fmt"

	"adasense/internal/core"
	"adasense/internal/dataset"
	"adasense/internal/features"
	"adasense/internal/iba"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// Lab bundles the trained models every closed-loop experiment needs: the
// AdaSense shared classifier (one network for all four Pareto
// configurations, trained on the paper's 7300-window corpus) and the
// intensity baseline's per-configuration classifier bank.
type Lab struct {
	// Net is AdaSense's shared classifier.
	Net *nn.Network
	// Bank is the intensity baseline's per-configuration classifiers.
	Bank *iba.Bank
	// TrainWindows records the corpus size the lab was built with.
	TrainWindows int

	seed uint64
}

// LabConfig sizes a lab.
type LabConfig struct {
	// Net, when non-nil, is used as the shared classifier instead of
	// training one — e.g. a network loaded from a saved model container.
	// Its input size must match the default feature layout.
	Net *nn.Network

	// TrainWindows is the shared-classifier corpus size (default 7300,
	// the paper's); ignored when Net is set.
	TrainWindows int
	// BankWindowsPerConfig sizes each baseline classifier's corpus
	// (default 2400).
	BankWindowsPerConfig int
	// Hidden is the classifier hidden width (default 32).
	Hidden int
	// Epochs overrides training epochs (default 60).
	Epochs int
	// Seed makes the lab reproducible (default 1).
	Seed uint64
}

func (c LabConfig) withDefaults() LabConfig {
	if c.TrainWindows == 0 {
		c.TrainWindows = 7300
	}
	if c.BankWindowsPerConfig == 0 {
		c.BankWindowsPerConfig = 2400
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NewLab trains the shared classifier and the baseline bank.
func NewLab(cfg LabConfig) (*Lab, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)

	net := cfg.Net
	if net == nil {
		corpus, err := dataset.Generate(dataset.GenSpec{
			Windows: cfg.TrainWindows, // across the four Pareto states
		}, r.Split(1))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating corpus: %w", err)
		}
		net = nn.New(corpus.FeatureSize, cfg.Hidden, synth.NumActivities, r.Split(2))
		X, Y := corpus.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: cfg.Epochs, LabelSmoothing: 0.1}, r.Split(3)); err != nil {
			return nil, fmt.Errorf("experiments: training shared classifier: %w", err)
		}
	} else if want := features.MustExtractor(nil).Size(); net.In != want {
		return nil, fmt.Errorf("experiments: supplied network input %d does not match the feature layout (%d)", net.In, want)
	}

	ic := iba.NewDefaultController()
	bank, err := iba.TrainBank([]sensor.Config{ic.High, ic.Low},
		cfg.BankWindowsPerConfig, cfg.Hidden, r.Split(4))
	if err != nil {
		return nil, fmt.Errorf("experiments: training baseline bank: %w", err)
	}
	return &Lab{Net: net, Bank: bank, TrainWindows: cfg.TrainWindows, seed: cfg.Seed}, nil
}

// NewQuickLab builds a smaller lab for tests: same structure, reduced
// corpora and epochs.
func NewQuickLab(seed uint64) (*Lab, error) {
	return NewLab(LabConfig{
		TrainWindows:         2400,
		BankWindowsPerConfig: 1200,
		Epochs:               40,
		Seed:                 seed,
	})
}

// Pipeline returns a fresh HAR pipeline over the shared classifier.
// Pipelines own scratch buffers, so each concurrent user needs its own.
func (l *Lab) Pipeline() *core.Pipeline {
	p, err := core.NewPipeline(l.Net, features.MustExtractor(nil))
	if err != nil {
		panic(err) // unreachable: lab nets are built against default features
	}
	return p
}

// rngFor derives an experiment-specific deterministic stream.
func (l *Lab) rngFor(tag uint64) *rng.Source {
	return rng.New(l.seed*1_000_003 + tag)
}
