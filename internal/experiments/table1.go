package experiments

import (
	"fmt"
	"strings"

	"adasense/internal/sensor"
)

// Table1Row describes one Table I configuration together with the power
// model's view of it (the paper's table lists only the combinations; the
// mode and current columns make the reproduction's duty-cycle arithmetic
// auditable).
type Table1Row struct {
	Config    sensor.Config
	Mode      sensor.Mode
	DutyCycle float64
	CurrentUA float64
	Pareto    bool
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 enumerates the paper's sixteen configurations with the default
// power model.
func Table1() Table1Result {
	p := sensor.DefaultPowerModel()
	pareto := map[sensor.Config]bool{}
	for _, c := range sensor.ParetoStates() {
		pareto[c] = true
	}
	var res Table1Result
	for _, cfg := range sensor.TableI() {
		res.Rows = append(res.Rows, Table1Row{
			Config:    cfg,
			Mode:      p.ModeFor(cfg),
			DutyCycle: p.DutyCycle(cfg),
			CurrentUA: p.CurrentUA(cfg),
			Pareto:    pareto[cfg],
		})
	}
	return res
}

// Render formats the table.
func (t Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I: accelerometer sampling frequency and averaging window combinations\n")
	b.WriteString("config        mode       duty    current(uA)  SPOT-state\n")
	for _, r := range t.Rows {
		mark := ""
		if r.Pareto {
			mark = "  *"
		}
		fmt.Fprintf(&b, "%-13s %-10s %5.3f   %10.2f%s\n",
			r.Config.Name(), r.Mode, r.DutyCycle, r.CurrentUA, mark)
	}
	b.WriteString("(* = one of the paper's four Pareto states)\n")
	return b.String()
}
