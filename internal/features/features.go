// Package features implements AdaSense's rate-invariant feature extraction
// (Section III-B of the paper).
//
// The feature vector for a batch of 3-axis readings is, per axis:
//
//   - the mean (captures gravity orientation — separates postures),
//   - the standard deviation (captures motion intensity), and
//   - the magnitudes of the Fourier transform at a small set of fixed
//     physical frequencies, by default 1, 2 and 3 Hz — the paper's "first
//     three coefficients ... representing the frequency components up to
//     3 Hz" (captures gait cadence).
//
// Crucially the vector's size does not depend on the batch length: a 2-s
// batch holds 200 samples at 100 Hz and 12 at 6.25 Hz, but both map to the
// same 15 numbers with the same physical meaning, which is what lets one
// classifier serve every sensor configuration. The spectral bins are
// evaluated with the Goertzel recursion at the target physical frequencies
// rather than at FFT bin indices, so the bins stay aligned across sampling
// rates.
package features

import (
	"fmt"

	"adasense/internal/dsp"
	"adasense/internal/sensor"
)

// DefaultBinFreqsHz is the paper's spectral feature set: the components up
// to 3 Hz at 1 Hz spacing.
func DefaultBinFreqsHz() []float64 { return []float64{1, 2, 3} }

// Extractor computes feature vectors from sensor batches. An Extractor
// owns scratch buffers and is NOT safe for concurrent use; create one per
// goroutine.
type Extractor struct {
	binFreqs []float64
	scratch  []float64
	bins     []float64
}

// NewExtractor returns an extractor using the given spectral bin
// frequencies (nil selects DefaultBinFreqsHz). Bin frequencies must be
// positive.
func NewExtractor(binFreqsHz []float64) (*Extractor, error) {
	if binFreqsHz == nil {
		binFreqsHz = DefaultBinFreqsHz()
	}
	for _, f := range binFreqsHz {
		if f <= 0 {
			return nil, fmt.Errorf("features: non-positive bin frequency %v", f)
		}
	}
	return &Extractor{
		binFreqs: append([]float64(nil), binFreqsHz...),
		bins:     make([]float64, len(binFreqsHz)),
	}, nil
}

// MustExtractor is NewExtractor that panics on error.
func MustExtractor(binFreqsHz []float64) *Extractor {
	e, err := NewExtractor(binFreqsHz)
	if err != nil {
		panic(err)
	}
	return e
}

// Size returns the feature vector length: 3 axes × (mean, std, |bins|).
func (e *Extractor) Size() int { return 3 * (2 + len(e.binFreqs)) }

// BinFreqsHz returns a copy of the spectral bin frequencies.
func (e *Extractor) BinFreqsHz() []float64 { return append([]float64(nil), e.binFreqs...) }

// Names returns human-readable feature names in extraction order.
func (e *Extractor) Names() []string {
	axes := []string{"x", "y", "z"}
	var out []string
	for _, ax := range axes {
		out = append(out, "mean_"+ax, "std_"+ax)
		for _, f := range e.binFreqs {
			out = append(out, fmt.Sprintf("fft%g_%s", f, ax))
		}
	}
	return out
}

// Extract computes the feature vector of batch b into dst (reused when
// large enough) and returns it. The layout matches Names(): features for
// x, then y, then z.
func (e *Extractor) Extract(b *sensor.Batch, dst []float64) []float64 {
	size := e.Size()
	if cap(dst) < size {
		dst = make([]float64, size)
	}
	dst = dst[:size]
	perAxis := 2 + len(e.binFreqs)
	for ax := 0; ax < 3; ax++ {
		samples := b.Axis(ax)
		if cap(e.scratch) < len(samples) {
			e.scratch = make([]float64, len(samples))
		}
		e.scratch = e.scratch[:len(samples)]
		copy(e.scratch, samples)

		base := ax * perAxis
		// Detrend before spectral estimation so the gravity offset does
		// not leak into the low-frequency bins; the removed mean IS the
		// first feature.
		mean := dsp.Detrend(e.scratch)
		dst[base] = mean
		dst[base+1] = dsp.StdDev(e.scratch)
		e.bins = dsp.GoertzelBins(e.scratch, e.binFreqs, b.Config.FreqHz, e.bins)
		copy(dst[base+2:base+2+len(e.bins)], e.bins)
	}
	return dst
}
