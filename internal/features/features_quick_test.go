package features

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// TestExtractAlwaysFinite drives the extractor with random activities,
// configurations and window lengths and requires every feature to be
// finite and every σ/spectral feature non-negative.
func TestExtractAlwaysFinite(t *testing.T) {
	e := MustExtractor(nil)
	models := synth.DefaultModels()
	table := sensor.TableI()
	f := func(seed uint16, actRaw, cfgRaw, durRaw uint8) bool {
		r := rng.New(uint64(seed))
		act := synth.Activity(int(actRaw) % synth.NumActivities)
		cfg := table[int(cfgRaw)%len(table)]
		dur := 0.25 + float64(durRaw%8)*0.25 // 0.25 .. 2 s windows
		sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: 10})
		m := synth.NewMotion(models, sched, r.Split(1))
		s := sensor.NewSampler(sensor.DefaultNoiseModel(), r.Split(2))
		b := s.Sample(m, cfg, 3, 3+dur)
		feat := e.Extract(b, nil)
		if len(feat) != e.Size() {
			return false
		}
		perAxis := e.Size() / 3
		for i, v := range feat {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			// std and spectral magnitudes are non-negative by
			// construction; only the mean (index 0 per axis) may be
			// negative.
			if i%perAxis != 0 && v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWaveletExtractorFinite is the same property for the wavelet family.
func TestWaveletExtractorFinite(t *testing.T) {
	e, err := NewWaveletExtractor(5)
	if err != nil {
		t.Fatal(err)
	}
	models := synth.DefaultModels()
	f := func(seed uint16, actRaw uint8) bool {
		r := rng.New(uint64(seed))
		act := synth.Activity(int(actRaw) % synth.NumActivities)
		sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: 8})
		m := synth.NewMotion(models, sched, r.Split(1))
		s := sensor.NewSampler(sensor.DefaultNoiseModel(), r.Split(2))
		b := s.Sample(m, sensor.Config{FreqHz: 50, AvgWindow: 16}, 2, 4)
		for _, v := range e.Extract(b, nil) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWaveletExtractorValidation(t *testing.T) {
	if _, err := NewWaveletExtractor(0); err == nil {
		t.Fatal("0 levels accepted")
	}
	if _, err := NewWaveletExtractor(9); err == nil {
		t.Fatal("9 levels accepted")
	}
	e, err := NewWaveletExtractor(3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 3*(2+4) || e.Levels() != 3 {
		t.Fatalf("Size=%d Levels=%d", e.Size(), e.Levels())
	}
}

// TestWaveletSeparatesStaticFromDynamic confirms the wavelet family
// carries the same basic class signal as the default features.
func TestWaveletSeparatesStaticFromDynamic(t *testing.T) {
	e, err := NewWaveletExtractor(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sensor.Config{FreqHz: 100, AvgWindow: 128}
	sit := e.Extract(sampleBatch(t, synth.Sit, cfg, 61), nil)
	walk := e.Extract(sampleBatch(t, synth.Walk, cfg, 62), nil)
	// Total band energy (y axis): locomotion must dwarf posture.
	perAxis := 2 + 5
	sumBands := func(f []float64) float64 {
		s := 0.0
		for i := perAxis + 2; i < 2*perAxis; i++ {
			s += f[i]
		}
		return s
	}
	if sumBands(walk) < 10*sumBands(sit) {
		t.Fatalf("walk band energy %v not well above sit %v", sumBands(walk), sumBands(sit))
	}
}
