package features

import (
	"math"
	"testing"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func sampleBatch(t *testing.T, act synth.Activity, cfg sensor.Config, seed uint64) *sensor.Batch {
	t.Helper()
	sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: 20})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(seed))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(seed+1000))
	return s.Sample(m, cfg, 5, 7)
}

func TestSizeAndNames(t *testing.T) {
	e := MustExtractor(nil)
	if e.Size() != 15 {
		t.Fatalf("default size = %d, want 15", e.Size())
	}
	names := e.Names()
	if len(names) != 15 {
		t.Fatalf("len(names) = %d", len(names))
	}
	if names[0] != "mean_x" || names[1] != "std_x" || names[2] != "fft1_x" || names[5] != "mean_y" {
		t.Fatalf("names layout wrong: %v", names[:6])
	}
}

func TestNewExtractorValidation(t *testing.T) {
	if _, err := NewExtractor([]float64{1, -2}); err == nil {
		t.Fatal("negative bin frequency accepted")
	}
	e, err := NewExtractor([]float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 12 {
		t.Fatalf("custom size = %d, want 12", e.Size())
	}
}

func TestSizeInvariantAcrossConfigs(t *testing.T) {
	// The defining property: identical feature vector length for every
	// sensor configuration.
	e := MustExtractor(nil)
	for _, cfg := range sensor.TableI() {
		b := sampleBatch(t, synth.Walk, cfg, 42)
		got := e.Extract(b, nil)
		if len(got) != 15 {
			t.Fatalf("%v: feature size %d", cfg.Name(), len(got))
		}
	}
}

func TestMeanFeatureCapturesGravity(t *testing.T) {
	e := MustExtractor(nil)
	b := sampleBatch(t, synth.LieDown, sensor.Config{FreqHz: 100, AvgWindow: 128}, 7)
	f := e.Extract(b, nil)
	// Lying down: z axis carries most of gravity in our model.
	meanZ := f[10]
	if meanZ < 7 {
		t.Fatalf("lie-down mean_z = %v, want close to +g", meanZ)
	}
	magnitude := math.Sqrt(f[0]*f[0] + f[5]*f[5] + f[10]*f[10])
	if math.Abs(magnitude-synth.Gravity) > 1.0 {
		t.Fatalf("gravity magnitude from means = %v", magnitude)
	}
}

func TestStdSeparatesStaticFromDynamic(t *testing.T) {
	e := MustExtractor(nil)
	cfg := sensor.Config{FreqHz: 100, AvgWindow: 128}
	sit := e.Extract(sampleBatch(t, synth.Sit, cfg, 11), nil)
	walk := e.Extract(sampleBatch(t, synth.Walk, cfg, 12), nil)
	if walk[6] < 4*sit[6] { // std_y
		t.Fatalf("walk std_y (%v) not well above sit std_y (%v)", walk[6], sit[6])
	}
}

func TestSpectralBinsSeparateGaits(t *testing.T) {
	e := MustExtractor(nil)
	cfg := sensor.Config{FreqHz: 100, AvgWindow: 128}
	// Average over several windows to beat per-window noise.
	avgFeat := func(act synth.Activity, seedBase uint64) []float64 {
		acc := make([]float64, 15)
		const n = 8
		for i := uint64(0); i < n; i++ {
			f := e.Extract(sampleBatch(t, act, cfg, seedBase+i), nil)
			for j := range acc {
				acc[j] += f[j] / n
			}
		}
		return acc
	}
	up := avgFeat(synth.Upstairs, 100)     // fundamental ~1.1-1.4 Hz -> 1 Hz bin
	down := avgFeat(synth.Downstairs, 200) // fundamental ~2.1-2.4 Hz -> 2 Hz bin
	// fft bins for y axis sit at indices 7,8,9 = 1,2,3 Hz.
	if up[7] <= up[8] {
		t.Fatalf("upstairs should peak in the 1 Hz bin: bins=%v", up[7:10])
	}
	if down[8] <= down[7] {
		t.Fatalf("downstairs should peak in the 2 Hz bin: bins=%v", down[7:10])
	}
}

func TestRateInvarianceOfFeatureMeaning(t *testing.T) {
	// The same motion observed at two Pareto configurations must produce
	// *comparable* features (not identical: noise and attenuation differ,
	// but the physical scale must match within tens of percent).
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 20})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(55))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(56))
	e := MustExtractor(nil)
	fHigh := e.Extract(s.Sample(m, sensor.Config{FreqHz: 100, AvgWindow: 128}, 5, 7), nil)
	fLow := e.Extract(s.Sample(m, sensor.Config{FreqHz: 12.5, AvgWindow: 16}, 5, 7), nil)
	// Gravity means must agree closely.
	for _, idx := range []int{0, 5, 10} {
		if math.Abs(fHigh[idx]-fLow[idx]) > 1.0 {
			t.Fatalf("mean feature %d differs across rates: %v vs %v", idx, fHigh[idx], fLow[idx])
		}
	}
}

func TestExtractReusesDst(t *testing.T) {
	e := MustExtractor(nil)
	b := sampleBatch(t, synth.Sit, sensor.Config{FreqHz: 50, AvgWindow: 16}, 3)
	buf := make([]float64, 15)
	out := e.Extract(b, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Extract did not reuse dst")
	}
}

func TestExtractDeterministic(t *testing.T) {
	e := MustExtractor(nil)
	b := sampleBatch(t, synth.Walk, sensor.Config{FreqHz: 50, AvgWindow: 16}, 9)
	a := append([]float64(nil), e.Extract(b, nil)...)
	c := e.Extract(b, nil)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("Extract not deterministic on same batch")
		}
	}
}

func TestBinFreqsCopy(t *testing.T) {
	e := MustExtractor([]float64{1, 2})
	got := e.BinFreqsHz()
	got[0] = 99
	if e.BinFreqsHz()[0] == 99 {
		t.Fatal("BinFreqsHz leaked internal slice")
	}
}

func BenchmarkExtract200Samples(b *testing.B) {
	sched := synth.MustSchedule(synth.Segment{Activity: synth.Walk, Duration: 20})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(1))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(2))
	batch := s.Sample(m, sensor.Config{FreqHz: 100, AvgWindow: 128}, 5, 7)
	e := MustExtractor(nil)
	dst := make([]float64, e.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(batch, dst)
	}
}
