package features

import (
	"fmt"

	"adasense/internal/dsp"
	"adasense/internal/sensor"
)

// WaveletExtractor is the DWT-based alternative feature set the paper's
// related work discusses ([12], [16]): per axis, mean and σ plus the Haar
// subband energies. It exists for the feature-family ablation; AdaSense
// itself uses Extractor.
//
// Unlike the Goertzel bins, DWT subband edges sit at fs/2^(k+1): they move
// with the sampling rate, so under heterogeneous configurations the same
// feature slot carries different physics — the weakness the ablation
// quantifies.
//
// A WaveletExtractor owns scratch buffers and is NOT safe for concurrent
// use.
type WaveletExtractor struct {
	levels  int
	scratch []float64
	dwt     dsp.DWT
}

// NewWaveletExtractor returns an extractor with the given decomposition
// depth (1..8).
func NewWaveletExtractor(levels int) (*WaveletExtractor, error) {
	if levels < 1 || levels > 8 {
		return nil, fmt.Errorf("features: wavelet levels %d outside 1..8", levels)
	}
	return &WaveletExtractor{levels: levels}, nil
}

// Size returns the feature vector length: 3 axes × (mean, std, levels+1
// band energies).
func (e *WaveletExtractor) Size() int { return 3 * (2 + e.levels + 1) }

// Levels returns the decomposition depth.
func (e *WaveletExtractor) Levels() int { return e.levels }

// Extract computes the wavelet feature vector of batch b into dst (reused
// when large enough).
func (e *WaveletExtractor) Extract(b *sensor.Batch, dst []float64) []float64 {
	size := e.Size()
	if cap(dst) < size {
		dst = make([]float64, size)
	}
	dst = dst[:size]
	perAxis := 2 + e.levels + 1
	for ax := 0; ax < 3; ax++ {
		samples := b.Axis(ax)
		if cap(e.scratch) < len(samples) {
			e.scratch = make([]float64, len(samples))
		}
		e.scratch = e.scratch[:len(samples)]
		copy(e.scratch, samples)

		base := ax * perAxis
		mean := dsp.Detrend(e.scratch)
		dst[base] = mean
		dst[base+1] = dsp.StdDev(e.scratch)
		// Band energies straight from the reusable DWT workspace — the
		// steady-state extraction path performs no allocations. Short
		// batches clamp the decomposition depth, so the tail band slots
		// are zeroed up front.
		for i := base + 2; i < base+perAxis; i++ {
			dst[i] = 0
		}
		if len(e.scratch) == 0 {
			continue
		}
		bands := e.dwt.Transform(e.scratch, e.levels)
		inv := 1 / float64(len(e.scratch))
		for i, band := range bands {
			sum := 0.0
			for _, c := range band {
				sum += c * c
			}
			dst[base+2+i] = sum * inv
		}
	}
	return dst
}
