// Package fixedpoint provides Q15 fixed-point arithmetic and a quantized
// inference path for the activity classifier.
//
// The paper's target MCU (CC2640R2F, Cortex-M3) has no FPU, and its memory
// argument counts classifier bytes; shipping int16 weights halves the
// footprint again relative to float32. This package quantizes a trained
// nn.Network to symmetric per-tensor Q15 and runs inference with int32
// accumulators, so the repository can measure the accuracy cost of the
// deployment-grade arithmetic (an ablation bench in EXPERIMENTS.md).
package fixedpoint

import (
	"math"

	"adasense/internal/nn"
)

// Q15 is a signed 1.15 fixed-point number: value = q / 32768, representable
// range [-1, 1).
type Q15 int16

// One is the largest representable Q15 value (≈ 0.99997).
const One Q15 = math.MaxInt16

// FromFloat converts f to Q15, saturating at the representable range.
func FromFloat(f float64) Q15 {
	v := math.Round(f * 32768)
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return Q15(v)
}

// Float converts q back to float64.
func (q Q15) Float() float64 { return float64(q) / 32768 }

// Add returns a+b with saturation.
func Add(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	return sat(s)
}

// Sub returns a-b with saturation.
func Sub(a, b Q15) Q15 {
	return sat(int32(a) - int32(b))
}

// Mul returns the Q15 product with rounding and saturation.
func Mul(a, b Q15) Q15 {
	p := int32(a) * int32(b)
	// Round to nearest: add half an LSB before the shift.
	p += 1 << 14
	return sat(p >> 15)
}

func sat(v int32) Q15 {
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return Q15(v)
}

// Tensor is a per-tensor symmetrically quantized weight matrix: real value
// = int16 value × Scale.
type Tensor struct {
	Data  []int16
	Scale float64
}

// quantizeTensor quantizes values symmetrically to int16.
func quantizeTensor(values []float64) Tensor {
	t := Tensor{Data: make([]int16, len(values))}
	t.Scale = quantizeInto(t.Data, values)
	return t
}

// quantizeInto is the in-place form of quantizeTensor for preallocated
// scratch: it quantizes values symmetrically into dst (same length) and
// returns the scale.
func quantizeInto(dst []int16, values []float64) float64 {
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 1
	}
	scale := maxAbs / 32767
	for i, v := range values {
		q := math.Round(v / scale)
		if q > 32767 {
			q = 32767
		} else if q < -32768 {
			q = -32768
		}
		dst[i] = int16(q)
	}
	return scale
}

// Network is a quantized 2-layer MLP: int16 weights with per-tensor
// scales, float biases and standardization (biases are a negligible share
// of the parameters and keeping them exact isolates the weight-precision
// effect).
type Network struct {
	In, Hidden, Out int
	W1, W2          Tensor
	B1, B2          []float64
	MeanIn, StdIn   []float64
}

// Quantize converts a trained float network to the Q15 deployment form.
func Quantize(n *nn.Network) *Network {
	return &Network{
		In: n.In, Hidden: n.Hidden, Out: n.Out,
		W1:     quantizeTensor(n.W1),
		W2:     quantizeTensor(n.W2),
		B1:     append([]float64(nil), n.B1...),
		B2:     append([]float64(nil), n.B2...),
		MeanIn: append([]float64(nil), n.MeanIn...),
		StdIn:  append([]float64(nil), n.StdIn...),
	}
}

// WeightBytes returns the storage footprint: 2 bytes per weight, 4 per
// bias/standardization entry.
func (q *Network) WeightBytes() int {
	return 2*(len(q.W1.Data)+len(q.W2.Data)) +
		4*(len(q.B1)+len(q.B2)+len(q.MeanIn)+len(q.StdIn))
}

// Workspace holds the scratch buffers one quantized inference needs —
// standardized inputs, per-layer quantized activations, probabilities —
// so a steady-state caller (one workspace per engine or session) runs
// the forward pass without allocating. A workspace is sized for one
// network's dimensions and is not safe for concurrent use.
type Workspace struct {
	xs, hidden, probs []float64
	xq, hq            []int16
}

// NewWorkspace allocates scratch sized for q.
func NewWorkspace(q *Network) *Workspace {
	return &Workspace{
		xs:     make([]float64, q.In),
		hidden: make([]float64, q.Hidden),
		probs:  make([]float64, q.Out),
		xq:     make([]int16, q.In),
		hq:     make([]int16, q.Hidden),
	}
}

// fits reports whether the workspace was sized for q's dimensions.
func (ws *Workspace) fits(q *Network) bool {
	return len(ws.xs) == q.In && len(ws.hidden) == q.Hidden && len(ws.probs) == q.Out
}

// Forward computes class probabilities with quantized weights: inputs are
// standardized and quantized to Q12.4-style fixed scale per layer, MACs
// accumulate in int32, and activations dequantize between layers. The
// softmax runs in float (it is a handful of scalar ops on the MCU).
func (q *Network) Forward(x []float64, probs []float64) []float64 {
	if cap(probs) < q.Out {
		probs = make([]float64, q.Out)
	}
	probs = probs[:q.Out]
	q.forward(NewWorkspace(q), x, probs)
	return probs
}

// ForwardWS is Forward running entirely in ws's scratch — the zero-
// allocation form, pinned by scripts/bench-diff.sh. The returned slice
// aliases ws and is valid until the next call.
func (q *Network) ForwardWS(ws *Workspace, x []float64) []float64 {
	if !ws.fits(q) {
		panic("fixedpoint: workspace sized for a different network")
	}
	q.forward(ws, x, ws.probs)
	return ws.probs
}

func (q *Network) forward(ws *Workspace, x, probs []float64) {
	if len(x) != q.In {
		panic("fixedpoint: input size mismatch")
	}
	// Standardize and quantize the input with its own symmetric scale.
	xs := ws.xs
	for i := range xs {
		xs[i] = (x[i] - q.MeanIn[i]) / q.StdIn[i]
	}
	xScale := quantizeInto(ws.xq, xs)

	hidden := ws.hidden
	for h := 0; h < q.Hidden; h++ {
		var acc int64
		row := q.W1.Data[h*q.In : (h+1)*q.In]
		for i, w := range row {
			acc += int64(w) * int64(ws.xq[i])
		}
		v := float64(acc)*q.W1.Scale*xScale + q.B1[h]
		if v < 0 {
			v = 0
		}
		hidden[h] = v
	}
	hScale := quantizeInto(ws.hq, hidden)
	maxLogit := math.Inf(-1)
	for o := 0; o < q.Out; o++ {
		var acc int64
		row := q.W2.Data[o*q.Hidden : (o+1)*q.Hidden]
		for h, w := range row {
			acc += int64(w) * int64(ws.hq[h])
		}
		v := float64(acc)*q.W2.Scale*hScale + q.B2[o]
		probs[o] = v
		if v > maxLogit {
			maxLogit = v
		}
	}
	var z float64
	for o := range probs {
		probs[o] = math.Exp(probs[o] - maxLogit)
		z += probs[o]
	}
	for o := range probs {
		probs[o] /= z
	}
}

// Predict returns the most probable class and its confidence.
func (q *Network) Predict(x []float64) (int, float64) {
	return argmax(q.Forward(x, nil))
}

// PredictWS is Predict running in ws's scratch, allocation-free.
func (q *Network) PredictWS(ws *Workspace, x []float64) (int, float64) {
	return argmax(q.ForwardWS(ws, x))
}

func argmax(probs []float64) (int, float64) {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best, probs[best]
}
