package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/dataset"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/synth"
)

func TestQ15RoundTripWithinLSB(t *testing.T) {
	f := func(raw int16) bool {
		v := float64(raw) / 40000 // within representable range
		q := FromFloat(v)
		return math.Abs(q.Float()-v) <= 1.0/32768+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQ15Saturation(t *testing.T) {
	if FromFloat(5) != math.MaxInt16 {
		t.Fatal("positive saturation failed")
	}
	if FromFloat(-5) != math.MinInt16 {
		t.Fatal("negative saturation failed")
	}
	if Add(One, One) != One {
		t.Fatal("Add should saturate")
	}
	if Sub(FromFloat(-0.9), FromFloat(0.9)) != math.MinInt16 {
		t.Fatal("Sub should saturate")
	}
}

func TestQ15MulBasics(t *testing.T) {
	a, b := FromFloat(0.5), FromFloat(0.5)
	if got := Mul(a, b).Float(); math.Abs(got-0.25) > 1e-4 {
		t.Fatalf("0.5*0.5 = %v", got)
	}
	if got := Mul(FromFloat(-0.5), FromFloat(0.5)).Float(); math.Abs(got+0.25) > 1e-4 {
		t.Fatalf("-0.5*0.5 = %v", got)
	}
	if Mul(0, One) != 0 {
		t.Fatal("0*x != 0")
	}
}

func TestQ15MulCommutesAndBounded(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Q15(a), Q15(b)
		p := Mul(x, y)
		if p != Mul(y, x) {
			return false
		}
		exact := x.Float() * y.Float()
		return math.Abs(p.Float()-exact) <= 2.0/32768
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeTensorZeros(t *testing.T) {
	tr := quantizeTensor([]float64{0, 0, 0})
	if tr.Scale != 1 {
		t.Fatalf("zero tensor scale = %v", tr.Scale)
	}
	for _, v := range tr.Data {
		if v != 0 {
			t.Fatal("zero tensor has nonzero values")
		}
	}
}

func TestQuantizeTensorReconstruction(t *testing.T) {
	vals := []float64{0.5, -1.25, 3.0, 0.001}
	tr := quantizeTensor(vals)
	for i, v := range vals {
		rec := float64(tr.Data[i]) * tr.Scale
		if math.Abs(rec-v) > tr.Scale {
			t.Fatalf("value %d: %v reconstructed as %v", i, v, rec)
		}
	}
}

func TestQuantizedNetworkMatchesFloat(t *testing.T) {
	r := rng.New(31)
	corpus, err := dataset.Generate(dataset.GenSpec{Windows: 2400}, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	train, test := corpus.Split(0.3, r.Split(2))
	net := nn.New(corpus.FeatureSize, 32, synth.NumActivities, r.Split(3))
	X, Y := train.XY()
	if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 40}, r.Split(4)); err != nil {
		t.Fatal(err)
	}
	qnet := Quantize(net)

	tx, ty := test.XY()
	floatAcc := nn.Accuracy(net, tx, ty)
	agree, correct := 0, 0
	for i, x := range tx {
		fc, _ := net.Predict(x)
		qc, conf := qnet.Predict(x)
		if conf < 0 || conf > 1 {
			t.Fatalf("bad confidence %v", conf)
		}
		if fc == qc {
			agree++
		}
		if qc == ty[i] {
			correct++
		}
	}
	agreeFrac := float64(agree) / float64(len(tx))
	qAcc := float64(correct) / float64(len(tx))
	if agreeFrac < 0.97 {
		t.Fatalf("quantized net agrees with float on only %v", agreeFrac)
	}
	if qAcc < floatAcc-0.02 {
		t.Fatalf("quantization cost too high: float %v, Q15 %v", floatAcc, qAcc)
	}
}

func TestQuantizedNetworkBytesHalved(t *testing.T) {
	net := nn.New(15, 32, 6, rng.New(7))
	q := Quantize(net)
	floatBytes := net.WeightBytes(4)
	if q.WeightBytes() >= floatBytes {
		t.Fatalf("Q15 bytes %d not below float32 bytes %d", q.WeightBytes(), floatBytes)
	}
	// Weights dominate, so the ratio should approach 2×.
	ratio := float64(floatBytes) / float64(q.WeightBytes())
	if ratio < 1.6 {
		t.Fatalf("compression ratio = %v, want ≈2", ratio)
	}
}

func TestQuantizedForwardIsDistribution(t *testing.T) {
	net := nn.New(4, 8, 3, rng.New(9))
	q := Quantize(net)
	probs := q.Forward([]float64{0.5, -1, 2, 0}, nil)
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestQuantizedForwardPanicsOnSizeMismatch(t *testing.T) {
	q := Quantize(nn.New(4, 8, 3, rng.New(9)))
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	q.Forward([]float64{1}, nil)
}

// TestWorkspaceForwardMatchesAllocating pins ForwardWS to the
// allocating path bit for bit: same scratch-free math, different
// buffers.
func TestWorkspaceForwardMatchesAllocating(t *testing.T) {
	net := nn.New(6, 12, 4, rng.New(11))
	q := Quantize(net)
	ws := NewWorkspace(q)
	r := rng.New(12)
	x := make([]float64, q.In)
	for trial := 0; trial < 50; trial++ {
		for i := range x {
			x[i] = r.Norm()
		}
		want := q.Forward(x, nil)
		got := q.ForwardWS(ws, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d prob %d: ws %v != alloc %v", trial, i, got[i], want[i])
			}
		}
		wc, wp := q.Predict(x)
		gc, gp := q.PredictWS(ws, x)
		if wc != gc || wp != gp {
			t.Fatalf("trial %d: PredictWS (%d,%v) != Predict (%d,%v)", trial, gc, gp, wc, wp)
		}
	}
}

func TestWorkspaceRejectsWrongNetwork(t *testing.T) {
	small := Quantize(nn.New(4, 8, 3, rng.New(9)))
	big := Quantize(nn.New(6, 12, 4, rng.New(9)))
	ws := NewWorkspace(small)
	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized workspace did not panic")
		}
	}()
	big.ForwardWS(ws, make([]float64, 6))
}

func BenchmarkQuantizedPredict(b *testing.B) {
	q := Quantize(nn.New(15, 32, 6, rng.New(1)))
	x := make([]float64, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Predict(x)
	}
}

// BenchmarkQuantizedPredictWS is the workspace form — the steady-state
// inference path. Pinned at 0 allocs/op by scripts/bench-diff.sh.
func BenchmarkQuantizedPredictWS(b *testing.B) {
	q := Quantize(nn.New(15, 32, 6, rng.New(1)))
	ws := NewWorkspace(q)
	x := make([]float64, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.PredictWS(ws, x)
	}
}
