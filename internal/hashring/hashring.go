// Package hashring implements the consistent-hash ring that shards a
// device fleet across gateway replicas.
//
// Each replica id is projected onto the ring at a configurable number of
// virtual-node points; a device id is owned by the replica whose first
// point lies clockwise of the device's own hash. Placement is a pure
// function of the member set and the ring parameters — independent of
// insertion order and identical across processes — so every replica in a
// fleet computes the same owner for every device with no coordination
// traffic. Adding or removing one replica moves only the arcs adjacent
// to its points (roughly a 1/n fraction of the keyspace); every other
// device keeps its owner.
//
// Lookup is allocation-free (an inlined 64-bit FNV-1a hash plus a binary
// search over the sorted point slice), cheap enough for the per-request
// routing path. The hash is injectable for tests that need to force
// placements.
package hashring

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Hash maps a key to a point on the ring. Implementations must be pure:
// replicas rely on every process hashing identically.
type Hash func(string) uint64

// DefaultVirtualNodes is the per-replica virtual-node count used when
// WithVirtualNodes is not given. More points smooth the per-replica
// load split at the cost of a larger (still tiny) sorted slice.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over replica ids. The zero value is not
// usable; construct with New. All methods are safe for concurrent use:
// mutations publish a fresh sorted point slice through an atomic
// pointer (copy-on-write), so the per-request Lookup path takes no lock
// at all — membership changes are rare, lookups are every request.
type Ring struct {
	mu      sync.Mutex // guards members and point-slice rebuilds
	hash    Hash
	vnodes  int
	members map[string]struct{}
	points  atomic.Pointer[[]point] // sorted by (hash, owner): deterministic under collisions
}

type point struct {
	hash  uint64
	owner string
}

// Option configures a Ring.
type Option func(*Ring) error

// WithHash injects the ring's hash function (default: 64-bit FNV-1a).
// Every replica of a fleet must use the same hash.
func WithHash(h Hash) Option {
	return func(r *Ring) error {
		if h == nil {
			return fmt.Errorf("hashring: nil hash")
		}
		r.hash = h
		return nil
	}
}

// WithVirtualNodes sets the number of ring points per replica (default
// DefaultVirtualNodes).
func WithVirtualNodes(n int) Option {
	return func(r *Ring) error {
		if n <= 0 {
			return fmt.Errorf("hashring: non-positive virtual-node count %d", n)
		}
		r.vnodes = n
		return nil
	}
}

// New builds an empty ring.
func New(opts ...Option) (*Ring, error) {
	r := &Ring{hash: fnv64a, vnodes: DefaultVirtualNodes, members: make(map[string]struct{})}
	r.points.Store(&[]point{})
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add places a replica's virtual nodes on the ring. Adding an id that is
// already a member is an error.
func (r *Ring) Add(id string) error {
	if id == "" {
		return fmt.Errorf("hashring: empty replica id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return fmt.Errorf("hashring: replica %q already on the ring", id)
	}
	r.members[id] = struct{}{}
	old := *r.points.Load()
	next := make([]point, 0, len(old)+r.vnodes)
	next = append(next, old...)
	for i := 0; i < r.vnodes; i++ {
		next = append(next, point{hash: r.hash(id + "#" + strconv.Itoa(i)), owner: id})
	}
	sort.Slice(next, func(a, b int) bool {
		if next[a].hash != next[b].hash {
			return next[a].hash < next[b].hash
		}
		return next[a].owner < next[b].owner
	})
	r.points.Store(&next)
	return nil
}

// Remove takes a replica's virtual nodes off the ring, reporting whether
// it was a member. Its arcs fall to the next point clockwise; no other
// placement changes.
func (r *Ring) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return false
	}
	delete(r.members, id)
	old := *r.points.Load()
	next := make([]point, 0, len(old))
	for _, p := range old {
		if p.owner != id {
			next = append(next, p)
		}
	}
	r.points.Store(&next)
	return true
}

// Lookup returns the replica owning key, or false on an empty ring. It
// is lock-free (one atomic load of the published point slice) and
// performs no allocations.
func (r *Ring) Lookup(key string) (string, bool) {
	points := *r.points.Load()
	if len(points) == 0 {
		return "", false
	}
	h := r.hash(key)
	// First point at or clockwise of h, wrapping past the top.
	lo, hi := 0, len(points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		lo = 0
	}
	return points[lo].owner, true
}

// Members returns the replica ids on the ring, sorted.
func (r *Ring) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// DefaultHash is the ring's default hash function (64-bit FNV-1a with
// a murmur3-style finalizer), exported so other layers that must agree
// with ring placement coordinates — e.g. the rollout cohort math, which
// carves canary cohorts out of the same hash space — can reuse it
// without re-implementing it.
func DefaultHash(s string) uint64 { return fnv64a(s) }

// fnv64a is the 64-bit FNV-1a hash with a murmur3-style finalizer,
// inlined so Lookup stays allocation-free. Bare FNV-1a avalanches
// poorly on the short sequential keys device fleets use ("dev-1",
// "dev-2", …), which skews the per-replica load split; the final mix
// spreads those low-entropy inputs across the whole ring.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
