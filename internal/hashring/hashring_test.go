package hashring

import (
	"fmt"
	"strconv"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = "device-" + strconv.Itoa(i)
	}
	return ks
}

func placements(t *testing.T, r *Ring, ks []string) map[string]string {
	t.Helper()
	owners := make(map[string]string, len(ks))
	for _, k := range ks {
		owner, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) on a populated ring reported empty", k)
		}
		owners[k] = owner
	}
	return owners
}

func TestRingOptionErrors(t *testing.T) {
	if _, err := New(WithHash(nil)); err == nil {
		t.Error("nil hash accepted")
	}
	if _, err := New(WithVirtualNodes(0)); err == nil {
		t.Error("zero virtual nodes accepted")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(""); err == nil {
		t.Error("empty replica id accepted")
	}
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("a"); err == nil {
		t.Error("duplicate replica accepted")
	}
}

func TestRingEmpty(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("device-1"); ok {
		t.Error("Lookup on empty ring reported an owner")
	}
	if r.Len() != 0 || len(r.Members()) != 0 {
		t.Errorf("empty ring: Len=%d Members=%v", r.Len(), r.Members())
	}
	if r.Remove("ghost") {
		t.Error("Remove of a non-member reported true")
	}
}

// TestRingDeterministicPlacement is the federation invariant: two rings
// built independently (different processes in production) from the same
// member set place every key identically, regardless of the order the
// members were added in.
func TestRingDeterministicPlacement(t *testing.T) {
	ks := keys(2000)
	build := func(order []string) *Ring {
		r, err := New()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range order {
			if err := r.Add(id); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	a := build([]string{"gw-a", "gw-b", "gw-c", "gw-d"})
	b := build([]string{"gw-d", "gw-b", "gw-a", "gw-c"})
	pa, pb := placements(t, a, ks), placements(t, b, ks)
	for _, k := range ks {
		if pa[k] != pb[k] {
			t.Fatalf("placement of %q depends on insertion order: %q vs %q", k, pa[k], pb[k])
		}
	}
	// Repeated lookups on one ring are stable too.
	for _, k := range ks[:100] {
		if again, _ := a.Lookup(k); again != pa[k] {
			t.Fatalf("Lookup(%q) not stable: %q then %q", k, pa[k], again)
		}
	}
}

// TestRingMinimalRebalance proves the consistent-hashing contract: adding
// one replica steals only its own arcs. Every moved key moves TO the new
// replica (no key shuffles between surviving replicas), and the moved
// fraction stays near 1/(n+1). Removing it again restores the original
// placement exactly.
func TestRingMinimalRebalance(t *testing.T) {
	ks := keys(10000)
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"gw-a", "gw-b", "gw-c", "gw-d"} {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	before := placements(t, r, ks)

	if err := r.Add("gw-e"); err != nil {
		t.Fatal(err)
	}
	after := placements(t, r, ks)
	moved := 0
	for _, k := range ks {
		if before[k] == after[k] {
			continue
		}
		moved++
		if after[k] != "gw-e" {
			t.Fatalf("key %q moved between survivors: %q -> %q", k, before[k], after[k])
		}
	}
	// Ideal moved fraction is 1/5; allow generous slack for hash variance
	// but fail on anything resembling a full reshuffle.
	frac := float64(moved) / float64(len(ks))
	if frac == 0 || frac > 2.0/5 {
		t.Fatalf("adding 1 of 5 replicas moved %.1f%% of keys (want ~20%%, ≤40%%)", 100*frac)
	}

	if !r.Remove("gw-e") {
		t.Fatal("Remove(gw-e) reported non-member")
	}
	restored := placements(t, r, ks)
	for _, k := range ks {
		if restored[k] != before[k] {
			t.Fatalf("remove did not restore %q: %q vs %q", k, restored[k], before[k])
		}
	}
}

// TestRingRemoveMinimalRebalance is the inverse arc proof: removing one
// replica reassigns only that replica's own arc. Every key it owned
// falls to a survivor, and no key owned by a survivor moves at all —
// the guarantee the cluster's session handoff leans on (only the
// departing replica's devices re-home).
func TestRingRemoveMinimalRebalance(t *testing.T) {
	ks := keys(10000)
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"gw-a", "gw-b", "gw-c", "gw-d"} {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	before := placements(t, r, ks)

	if !r.Remove("gw-c") {
		t.Fatal("Remove(gw-c) reported non-member")
	}
	after := placements(t, r, ks)
	moved := 0
	for _, k := range ks {
		if before[k] == "gw-c" {
			moved++
			if after[k] == "gw-c" {
				t.Fatalf("key %q still owned by the removed replica", k)
			}
			continue
		}
		if after[k] != before[k] {
			t.Fatalf("survivor-owned key %q shuffled: %q -> %q", k, before[k], after[k])
		}
	}
	// The removed replica's share of four should be near 1/4.
	frac := float64(moved) / float64(len(ks))
	if frac == 0 || frac > 2.0/4 {
		t.Fatalf("removing 1 of 4 replicas moved %.1f%% of keys (want ~25%%, ≤50%%)", 100*frac)
	}
}

// TestRingDistribution sanity-checks the virtual-node smoothing: no
// replica of four owns a wildly outsized share.
func TestRingDistribution(t *testing.T) {
	ks := keys(10000)
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	members := []string{"gw-a", "gw-b", "gw-c", "gw-d"}
	for _, id := range members {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[string]int)
	for _, owner := range placements(t, r, ks) {
		counts[owner]++
	}
	for _, id := range members {
		frac := float64(counts[id]) / float64(len(ks))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("replica %s owns %.1f%% of keys (want a rough quarter)", id, 100*frac)
		}
	}
}

// TestRingInjectableHash forces placements through a custom hash and
// exercises the clockwise-wraparound at the top of the ring.
func TestRingInjectableHash(t *testing.T) {
	// One virtual node per replica, hash by explicit table.
	table := map[string]uint64{
		"a#0": 100, "b#0": 200, // ring points
		"k-low": 50, "k-mid": 150, "k-high": 250, // keys
	}
	r, err := New(WithVirtualNodes(1), WithHash(func(s string) uint64 { return table[s] }))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	for key, want := range map[string]string{
		"k-low":  "a", // 50 -> first point clockwise is a@100
		"k-mid":  "b", // 150 -> b@200
		"k-high": "a", // 250 -> wraps past the top back to a@100
	} {
		if got, _ := r.Lookup(key); got != want {
			t.Errorf("Lookup(%s) = %s, want %s", key, got, want)
		}
	}
}

func TestRingMembers(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"gw-c", "gw-a", "gw-b"} {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	got := fmt.Sprint(r.Members())
	if want := "[gw-a gw-b gw-c]"; got != want {
		t.Errorf("Members() = %s, want %s", got, want)
	}
	if r.Len() != 3 {
		t.Errorf("Len() = %d, want 3", r.Len())
	}
}

// TestRingConcurrentLookupDuringMutation is the copy-on-write safety
// proof (run under -race in CI): lock-free lookups race membership
// changes and must always see a complete published snapshot — the old
// ring or the new one, never a torn slice.
func TestRingConcurrentLookupDuringMutation(t *testing.T) {
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"gw-a", "gw-b"} {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := r.Add("gw-c"); err != nil {
				t.Errorf("re-add: %v", err)
				return
			}
			if !r.Remove("gw-c") {
				t.Error("remove lost gw-c")
				return
			}
		}
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		owner, ok := r.Lookup("device-" + strconv.Itoa(i%512))
		if !ok || owner == "" {
			t.Fatalf("lookup saw an empty ring mid-mutation (iter %d)", i)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r, err := New()
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []string{"gw-a", "gw-b", "gw-c", "gw-d", "gw-e"} {
		if err := r.Add(id); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup("device-12345"); !ok {
			b.Fatal("empty ring")
		}
	}
}
