// Package iba reimplements the paper's comparison baseline: the
// intensity-based approach of NK et al. [8] ("Sensor-classifier
// co-optimization for wearable human activity recognition applications"),
// as the paper describes it in Section V-D:
//
//   - the activity intensity is the first derivative of the accelerometer
//     readings; low intensity (static postures) switches the sensor to a
//     low-power configuration, high intensity (locomotion) to the normal
//     high-rate configuration;
//   - a separate classifier is retrained for every sampling frequency the
//     sensor uses, doubling classifier memory relative to AdaSense's
//     single shared network.
package iba

import (
	"fmt"

	"adasense/internal/core"
	"adasense/internal/dataset"
	"adasense/internal/dsp"
	"adasense/internal/features"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// Bank is a set of per-configuration classifiers, each trained only on
// data from its own sensor configuration (the NK et al. strategy).
type Bank struct {
	pipes map[sensor.Config]*core.Pipeline
}

// TrainBank trains one classifier per configuration. windowsPerConfig
// sizes each training corpus; hidden is the per-network hidden width.
func TrainBank(configs []sensor.Config, windowsPerConfig, hidden int, r *rng.Source) (*Bank, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("iba: no configurations")
	}
	if windowsPerConfig <= 0 {
		windowsPerConfig = 2400
	}
	if hidden <= 0 {
		hidden = 32
	}
	b := &Bank{pipes: make(map[sensor.Config]*core.Pipeline)}
	for i, cfg := range configs {
		sub := r.Split(uint64(i) + 1)
		corpus, err := dataset.Generate(dataset.GenSpec{
			Configs: []sensor.Config{cfg},
			Windows: windowsPerConfig,
		}, sub.Split(1))
		if err != nil {
			return nil, err
		}
		net := nn.New(corpus.FeatureSize, hidden, synth.NumActivities, sub.Split(2))
		X, Y := corpus.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{}, sub.Split(3)); err != nil {
			return nil, err
		}
		pipe, err := core.NewPipeline(net, features.MustExtractor(nil))
		if err != nil {
			return nil, err
		}
		b.pipes[cfg] = pipe
	}
	return b, nil
}

// Classify dispatches the window to the classifier trained for its
// configuration. It panics if the bank has no classifier for the batch's
// configuration — the baseline cannot classify rates it was not trained
// for, which is exactly its memory-overhead weakness.
func (b *Bank) Classify(batch *sensor.Batch) core.Classification {
	pipe, ok := b.pipes[batch.Config]
	if !ok {
		panic(fmt.Sprintf("iba: no classifier trained for %v", batch.Config.Name()))
	}
	return pipe.Classify(batch)
}

// Configs returns the configurations the bank can classify.
func (b *Bank) Configs() []sensor.Config {
	out := make([]sensor.Config, 0, len(b.pipes))
	for cfg := range b.pipes {
		out = append(out, cfg)
	}
	return out
}

// Pipeline returns the classifier for cfg (nil if absent).
func (b *Bank) Pipeline(cfg sensor.Config) *core.Pipeline { return b.pipes[cfg] }

// MemoryBytes returns the total classifier weight storage at the given
// bytes per parameter — the quantity the paper's memory comparison uses.
func (b *Bank) MemoryBytes(bytesPerParam int) int {
	total := 0
	for _, p := range b.pipes {
		total += p.Network().WeightBytes(bytesPerParam)
	}
	return total
}

// Controller switches between a high-rate and a low-power configuration
// based on signal intensity: the mean absolute first derivative of the
// readings, averaged over the three axes and expressed per second.
//
// The derivative's noise floor scales with the sampling rate and reading
// noise, so each configuration needs its own calibrated threshold (the
// deployed baseline would calibrate once per supported rate, exactly as it
// trains one classifier per rate).
type Controller struct {
	// High is the normal-mode configuration used for intense activities.
	High sensor.Config
	// Low is the low-power configuration used for static activities.
	Low sensor.Config
	// HighThreshold and LowThreshold are the intensity switching
	// thresholds (m/s³) applied to windows sampled under High and Low
	// respectively.
	HighThreshold, LowThreshold float64

	cur sensor.Config
}

// Default thresholds, calibrated on the synthetic population: under
// F100_A128 static postures stay below ~7 m/s³ and locomotion above
// ~14 m/s³; under F6.25_A128 the bands are ~0.5 and ~4 m/s³.
const (
	DefaultHighThreshold = 11.0
	DefaultLowThreshold  = 2.0
)

// NewController returns an intensity-based controller over the given
// high/low configurations and per-configuration thresholds.
func NewController(high, low sensor.Config, highThreshold, lowThreshold float64) (*Controller, error) {
	if err := high.Validate(); err != nil {
		return nil, err
	}
	if err := low.Validate(); err != nil {
		return nil, err
	}
	if highThreshold <= 0 || lowThreshold <= 0 {
		return nil, fmt.Errorf("iba: non-positive intensity threshold (%v, %v)", highThreshold, lowThreshold)
	}
	return &Controller{High: high, Low: low, HighThreshold: highThreshold, LowThreshold: lowThreshold, cur: high}, nil
}

// NewDefaultController returns the controller over F100_A128 (high) and
// F6.25_A128 (low) with the default thresholds.
//
// The low state keeps the sensor's default 128-sample averaging window:
// NK et al. lower the sampling frequency in low-power mode but do not
// exploit the averaging window as a power knob — that omission is exactly
// the gap AdaSense's Section I identifies, and it is why the baseline's
// low state draws 92 µA where AdaSense's floor draws 15 µA.
func NewDefaultController() *Controller {
	c, err := NewController(
		sensor.Config{FreqHz: 100, AvgWindow: 128},
		sensor.Config{FreqHz: 6.25, AvgWindow: 128},
		DefaultHighThreshold, DefaultLowThreshold,
	)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return c
}

// Config returns the configuration for the next sensing episode.
func (c *Controller) Config() sensor.Config { return c.cur }

// Intensity computes the controller's per-second intensity measure of a
// window: mean absolute sample-to-sample difference scaled by the rate,
// averaged over axes.
func Intensity(b *sensor.Batch) float64 {
	sum := dsp.MeanAbsDiff(b.X) + dsp.MeanAbsDiff(b.Y) + dsp.MeanAbsDiff(b.Z)
	return sum / 3 * b.Config.FreqHz
}

// ThresholdFor returns the threshold applied to windows sampled under cfg
// (the low threshold for anything that is not the high configuration).
func (c *Controller) ThresholdFor(cfg sensor.Config) float64 {
	if cfg == c.High {
		return c.HighThreshold
	}
	return c.LowThreshold
}

// ObserveBatch updates the configuration from the window's intensity.
func (c *Controller) ObserveBatch(b *sensor.Batch) {
	if Intensity(b) >= c.ThresholdFor(b.Config) {
		c.cur = c.High
	} else {
		c.cur = c.Low
	}
}

// Observe ignores classification output: the baseline switches on signal
// intensity, not on recognized activity.
func (c *Controller) Observe(synth.Activity, float64) {}

// Reset returns the controller to the high-power configuration.
func (c *Controller) Reset() { c.cur = c.High }

var _ core.Controller = (*Controller)(nil)
