package iba

import (
	"testing"

	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

func sampleWindow(t *testing.T, act synth.Activity, cfg sensor.Config, seed uint64) *sensor.Batch {
	t.Helper()
	sched := synth.MustSchedule(synth.Segment{Activity: act, Duration: 10})
	m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(seed))
	s := sensor.NewSampler(sensor.DefaultNoiseModel(), rng.New(seed+500))
	return s.Sample(m, cfg, 4, 6)
}

func TestIntensitySeparatesStaticFromLocomotion(t *testing.T) {
	c := NewDefaultController()
	for _, cfg := range []sensor.Config{c.High, c.Low} {
		thr := c.ThresholdFor(cfg)
		for seed := uint64(0); seed < 8; seed++ {
			for act := synth.Activity(0); int(act) < synth.NumActivities; act++ {
				in := Intensity(sampleWindow(t, act, cfg, 100*seed+uint64(act)))
				if act.IsStatic() && in >= thr {
					t.Fatalf("%v under %v: static intensity %v above threshold %v",
						act, cfg.Name(), in, thr)
				}
				if !act.IsStatic() && in < thr {
					t.Fatalf("%v under %v: locomotion intensity %v below threshold %v",
						act, cfg.Name(), in, thr)
				}
			}
		}
	}
}

func TestControllerSwitches(t *testing.T) {
	c := NewDefaultController()
	if c.Config() != c.High {
		t.Fatal("controller must start at the high configuration")
	}
	c.ObserveBatch(sampleWindow(t, synth.Sit, c.High, 1))
	if c.Config() != c.Low {
		t.Fatal("static window did not switch to low power")
	}
	c.ObserveBatch(sampleWindow(t, synth.Downstairs, c.Low, 2))
	if c.Config() != c.High {
		t.Fatal("locomotion window did not switch back to high power")
	}
	c.Observe(synth.Walk, 0.2) // must be a no-op
	if c.Config() != c.High {
		t.Fatal("Observe should not affect the intensity controller")
	}
	c.ObserveBatch(sampleWindow(t, synth.LieDown, c.High, 3))
	c.Reset()
	if c.Config() != c.High {
		t.Fatal("Reset should restore the high configuration")
	}
}

func TestNewControllerValidation(t *testing.T) {
	good := sensor.Config{FreqHz: 100, AvgWindow: 128}
	bad := sensor.Config{FreqHz: -1, AvgWindow: 8}
	if _, err := NewController(bad, good, 5, 5); err == nil {
		t.Fatal("bad high config accepted")
	}
	if _, err := NewController(good, bad, 5, 5); err == nil {
		t.Fatal("bad low config accepted")
	}
	if _, err := NewController(good, good, 0, 5); err == nil {
		t.Fatal("zero high threshold accepted")
	}
	if _, err := NewController(good, good, 5, 0); err == nil {
		t.Fatal("zero low threshold accepted")
	}
}

func TestTrainBankValidation(t *testing.T) {
	if _, err := TrainBank(nil, 100, 8, rng.New(1)); err == nil {
		t.Fatal("empty config list accepted")
	}
}

func TestBankClassifiesPerConfig(t *testing.T) {
	c := NewDefaultController()
	bank, err := TrainBank([]sensor.Config{c.High, c.Low}, 900, 24, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(bank.Configs()) != 2 {
		t.Fatalf("bank has %d configs", len(bank.Configs()))
	}
	correct, total := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		for _, tc := range []struct {
			act synth.Activity
			cfg sensor.Config
		}{{synth.Sit, c.Low}, {synth.Walk, c.High}, {synth.LieDown, c.Low}} {
			got := bank.Classify(sampleWindow(t, tc.act, tc.cfg, 40+seed*10+uint64(tc.act)))
			total++
			if got.Activity == tc.act {
				correct++
			}
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.8 {
		t.Fatalf("bank accuracy on clear windows = %v", frac)
	}
}

func TestBankPanicsOnUnknownConfig(t *testing.T) {
	bank, err := TrainBank([]sensor.Config{{FreqHz: 100, AvgWindow: 128}}, 300, 8, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown config did not panic")
		}
	}()
	bank.Classify(&sensor.Batch{Config: sensor.Config{FreqHz: 50, AvgWindow: 16}})
}

func TestBankMemoryIsTwiceSingleNetwork(t *testing.T) {
	// The paper's memory claim: NK et al. store one classifier per
	// sampling frequency (two here), AdaSense stores one.
	c := NewDefaultController()
	bank, err := TrainBank([]sensor.Config{c.High, c.Low}, 300, 32, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	single := nn.New(15, 32, synth.NumActivities, rng.New(5))
	if got, want := bank.MemoryBytes(4), 2*single.WeightBytes(4); got != want {
		t.Fatalf("bank memory = %d, want %d (2× single)", got, want)
	}
	if bank.Pipeline(c.High) == nil || bank.Pipeline(sensor.Config{FreqHz: 1, AvgWindow: 1}) != nil {
		t.Fatal("Pipeline accessor wrong")
	}
}
