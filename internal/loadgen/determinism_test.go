package loadgen

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// batchBytes serializes a batch's samples exactly (IEEE-754 bits), so
// equality means byte-for-byte identical signals, not approximately
// similar ones.
func batchBytes(t *testing.T, xs ...[]float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range xs {
		for _, v := range s {
			if err := binary.Write(&buf, binary.LittleEndian, math.Float64bits(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// TestSeedReproducesFleetByteForByte is the injectable-RNG contract:
// the whole fleet — cohort assignment, device ids, activity schedules,
// and the sampled sensor batches themselves — is a pure function of
// Config.Seed. Two independently constructed runners with the same seed
// must generate identical bytes; a different seed must not.
func TestSeedReproducesFleetByteForByte(t *testing.T) {
	mk := func(seed uint64) *Runner {
		r, err := NewRunner(Config{
			Targets:    []string{"http://fleet.invalid"},
			Devices:    20,
			Seed:       seed,
			HorizonSec: 600,
			Phases:     []Phase{{Rate: 1, Events: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(99), mk(99)
	if len(a.devices) != len(b.devices) {
		t.Fatalf("fleet sizes differ: %d vs %d", len(a.devices), len(b.devices))
	}
	if !reflect.DeepEqual(a.cohorts, b.cohorts) {
		t.Fatalf("cohort assignment differs: %v vs %v", a.cohorts, b.cohorts)
	}
	for i := range a.devices {
		da, db := a.devices[i], b.devices[i]
		if da.id != db.id || da.cohort != db.cohort {
			t.Fatalf("device %d identity differs: %s/%s vs %s/%s", i, da.id, da.cohort, db.id, db.cohort)
		}
		if !reflect.DeepEqual(da.motion.Schedule().Segments(), db.motion.Schedule().Segments()) {
			t.Fatalf("device %s schedules differ across identically seeded runners", da.id)
		}
		// Three consecutive batches: sampling draws from the device's
		// split rng source, so the stream itself must replay exactly.
		for n := 0; n < 3; n++ {
			ba, bb := da.nextBatch(2), db.nextBatch(2)
			da.t += 2
			db.t += 2
			if !bytes.Equal(batchBytes(t, ba.X, ba.Y, ba.Z), batchBytes(t, bb.X, bb.Y, bb.Z)) {
				t.Fatalf("device %s batch %d differs byte-for-byte", da.id, n)
			}
		}
	}

	c := mk(100)
	same := true
	for i := range a.devices {
		if !reflect.DeepEqual(a.devices[i].motion.Schedule().Segments(), c.devices[i].motion.Schedule().Segments()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fleets")
	}
}
