package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"adasense/internal/sensor"
)

// Client-side copies of the gateway's wire shapes (the server's structs
// live in cmd/adasense-gateway's package main). Only the fields the
// driver consumes are declared; unknown fields are ignored on decode.

type batchJSON struct {
	Config  string    `json:"config"`
	StartAt float64   `json:"start_at,omitempty"`
	X       []float64 `json:"x"`
	Y       []float64 `json:"y"`
	Z       []float64 `json:"z"`
}

type sessionJSON struct {
	ID     string `json:"id"`
	Config string `json:"config"`
}

type pushJSON struct {
	Config string `json:"config"`
}

// marshalBatch encodes a sensor batch as the push wire body.
func marshalBatch(b *sensor.Batch) []byte {
	body, err := json.Marshal(batchJSON{
		Config:  b.Config.Name(),
		StartAt: b.StartAt,
		X:       b.X,
		Y:       b.Y,
		Z:       b.Z,
	})
	if err != nil {
		panic(err) // unreachable: plain floats and a string
	}
	return body
}

// wireClient is the minimal gateway HTTP client: open, lookup, push.
// Every method returns the HTTP status (0 on transport error) and the
// server-directed sensor config name when the response carries one.
type wireClient struct {
	hc    *http.Client
	token string
}

func (c *wireClient) do(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	// Cap the read defensively; real responses are small JSON bodies.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// open creates (or re-creates) the device's session. It returns the
// session's config name on success.
func (c *wireClient) open(ctx context.Context, base, id string) (string, int, error) {
	body, _ := json.Marshal(sessionJSON{ID: id})
	status, data, err := c.do(ctx, http.MethodPost, base+"/v1/sessions", body)
	if err != nil {
		return "", status, err
	}
	var s sessionJSON
	if status == http.StatusCreated || status == http.StatusOK {
		if jerr := json.Unmarshal(data, &s); jerr != nil {
			return "", status, fmt.Errorf("loadgen: malformed open response: %w", jerr)
		}
	}
	return s.Config, status, nil
}

// get looks up an existing session's config — used to re-sync after an
// open races an adoption (409: the session already exists).
func (c *wireClient) get(ctx context.Context, base, id string) (string, int, error) {
	status, data, err := c.do(ctx, http.MethodGet, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return "", status, err
	}
	var s sessionJSON
	if status == http.StatusOK {
		if jerr := json.Unmarshal(data, &s); jerr != nil {
			return "", status, fmt.Errorf("loadgen: malformed get response: %w", jerr)
		}
	}
	return s.Config, status, nil
}

// push submits one sensor batch and returns the server-directed config.
func (c *wireClient) push(ctx context.Context, base, id string, body []byte) (string, int, error) {
	status, data, err := c.do(ctx, http.MethodPost, base+"/v1/sessions/"+id+"/push", body)
	if err != nil {
		return "", status, err
	}
	var p pushJSON
	if status == http.StatusOK {
		if jerr := json.Unmarshal(data, &p); jerr != nil {
			return "", status, fmt.Errorf("loadgen: malformed push response: %w", jerr)
		}
	}
	return p.Config, status, nil
}
