// Package loadgen drives a synthetic wearable fleet against the serving
// path. It instantiates N devices from internal/synth cohort schedules
// (elderly and rehab profiles, drifting volatility, adversarial bursts),
// paces their sensor-batch pushes open-loop at configured rates, records
// end-to-end latency into internal/telemetry log2 histograms, and emits
// a Report with per-route quantiles, error counts, achieved-vs-offered
// throughput, and a knee-finding capacity estimate from a rate ramp.
//
// The runner speaks the gateway's wire protocols through a pluggable
// transport — plain HTTP/JSON requests or persistent ADSP streaming
// connections (Config.Transport) — so the same code drives a live
// cluster (cmd/adasense-loadgen) and in-process httptest replicas.
// That makes it the test suite's soak/chaos harness: devices keep
// pushing while membership changes, rollouts advance, and models swap
// underneath them.
//
// Determinism: all randomness flows from Config.Seed through an
// internal/rng master source that is split once per device, so the same
// seed reproduces the same cohort assignment, activity schedules, and
// sensor batches byte-for-byte regardless of scheduling order.
package loadgen

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/stream"
	"adasense/internal/synth"
	"adasense/internal/telemetry"
)

// Cohort is one slice of the device population: a synth cohort profile
// name (see synth.CohortNames) and its relative weight.
type Cohort struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// DefaultMix is the standard mixed-fleet population: mostly the two
// clinical profiles, a volatility baseline, plus drifting and
// adversarial minorities to keep the controller and the serving path
// honest.
func DefaultMix() []Cohort {
	return []Cohort{
		{Name: "elderly", Weight: 0.35},
		{Name: "rehab", Weight: 0.25},
		{Name: "medium", Weight: 0.20},
		{Name: "drift", Weight: 0.10},
		{Name: "burst", Weight: 0.10},
	}
}

// Phase is one pacing phase: pushes are offered at Rate per second
// fleet-wide until either Events pushes have been offered (when Events
// > 0 — the deterministic soak budget) or Duration has elapsed.
type Phase struct {
	Rate     float64       `json:"rate"`
	Duration time.Duration `json:"duration,omitempty"`
	Events   int           `json:"events,omitempty"`
}

// Config parameterizes a load-generation run. Targets and Devices are
// required; zero values elsewhere take the documented defaults.
type Config struct {
	// Targets are gateway base URLs. Devices are assigned round-robin;
	// the gateways' federation layer forwards misrouted requests (the
	// stream transport is redirected instead, and follows).
	Targets []string
	// Transport selects the wire driver: TransportHTTP (default) pushes
	// JSON over request/response; TransportStream holds one persistent
	// ADSP connection per device and pushes binary frames.
	Transport string
	// Token is the bearer token sent on every request; empty = no auth.
	Token string
	// Devices is the synthetic fleet size.
	Devices int
	// Mix is the cohort population; nil = DefaultMix(). Weights are
	// relative, apportioned deterministically over Devices.
	Mix []Cohort
	// BatchSec is the signal time covered by each push (default 2 s,
	// one classification window).
	BatchSec float64
	// HorizonSec is the length of each device's generated schedule
	// (default 3600 s); the signal clock wraps past it.
	HorizonSec float64
	// Seed feeds the master rng.Source; equal seeds reproduce the fleet
	// byte-for-byte.
	Seed uint64
	// Phases is the pacing plan, run in order; a multi-phase ramp also
	// yields a capacity estimate. Required.
	Phases []Phase
	// Workers bounds concurrent in-flight requests (default 64). When
	// all workers are busy at a slot's send time the push is shed, not
	// queued — open-loop pacing must not apply backpressure.
	Workers int
	// MaxAttempts bounds attempts per offered push (default 1). Retries
	// cover transport errors, 5xx, 429, and ownership churn (404/410
	// re-open the session first — the rebalance-adoption dance).
	MaxAttempts int
	// OpenFirst opens every session before pacing starts, so phase
	// latencies measure steady-state pushes rather than session churn.
	OpenFirst bool
	// OnPhase, when set, is called synchronously with the phase index
	// before that phase starts pacing — the chaos-orchestration hook
	// (advance a rollout, rewrite a peers file) used by the soak tests.
	OnPhase func(phase int)
	// Client is the HTTP client (default: 10 s timeout). HTTP transport
	// only; the stream transport dials its own connections per device.
	Client *http.Client
}

// defaultConfig is the sensor operating point assumed until the gateway
// directs otherwise: the paper's top configuration.
var defaultConfig = sensor.Config{FreqHz: 100, AvgWindow: 128}

// device is one synthetic wearable: its generated motion, its sampler,
// and the server-directed sensor config. A device's requests are
// serialized by mu; distinct devices push concurrently.
type device struct {
	id     string
	cohort string
	target string

	mu       sync.Mutex
	sampler  *sensor.Sampler
	motion   *synth.Motion
	cfg      sensor.Config // last config the server directed
	t        float64       // signal clock, seconds into the schedule
	horizon  float64
	opened   bool
	everOpen bool

	// Stream-transport state: the live ADSP connection (nil between
	// dials) and the current dial target, which a redirect goodbye
	// repoints at the owning replica.
	sc           *stream.Client
	streamTarget string
}

// nextBatch samples the device's next sensor batch at its current
// config, wrapping the signal clock at the horizon. The clock is NOT
// advanced — callers advance it only after the push succeeds, so a
// retried push re-samples the same signal interval (at whatever config
// the server has since directed).
func (d *device) nextBatch(batchSec float64) *sensor.Batch {
	if d.t+batchSec > d.horizon {
		d.t = 0
	}
	return d.sampler.Sample(d.motion, d.cfg, d.t, d.t+batchSec)
}

// Runner executes one load-generation run. Build with NewRunner; Run
// may be called once.
type Runner struct {
	cfg     Config
	devices []*device
	cohorts map[string]int
	tr      transport
	sem     chan struct{}

	// Run-wide aggregate latency, alongside the per-phase instruments.
	allOpen telemetry.Histogram
	allPush telemetry.Histogram
}

// apportion splits n devices over the mix weights deterministically:
// floors first, then remainders to the largest fractional parts (ties
// broken by mix order).
func apportion(n int, mix []Cohort) []int {
	total := 0.0
	for _, c := range mix {
		total += c.Weight
	}
	counts := make([]int, len(mix))
	fracs := make([]float64, len(mix))
	assigned := 0
	for i, c := range mix {
		exact := float64(n) * c.Weight / total
		counts[i] = int(exact)
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(fracs); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	return counts
}

// NewRunner validates the config and deterministically builds the
// device fleet from the seed.
func NewRunner(cfg Config) (*Runner, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	targets := make([]string, len(cfg.Targets))
	for i, t := range cfg.Targets {
		u, err := url.Parse(t)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("loadgen: target %q is not an absolute URL", t)
		}
		targets[i] = strings.TrimRight(t, "/")
	}
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("loadgen: devices must be positive, got %d", cfg.Devices)
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: no pacing phases")
	}
	for i, ph := range cfg.Phases {
		if ph.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: phase %d rate must be positive", i)
		}
		if ph.Events <= 0 && ph.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: phase %d needs an event budget or a duration", i)
		}
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	wsum := 0.0
	for i, c := range cfg.Mix {
		if c.Weight < 0 {
			return nil, fmt.Errorf("loadgen: cohort %d (%q) has negative weight", i, c.Name)
		}
		wsum += c.Weight
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("loadgen: cohort weights sum to zero")
	}
	if cfg.BatchSec <= 0 {
		cfg.BatchSec = 2
	}
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 3600
	}
	if cfg.HorizonSec < cfg.BatchSec {
		return nil, fmt.Errorf("loadgen: horizon %v s shorter than one batch (%v s)", cfg.HorizonSec, cfg.BatchSec)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}

	r := &Runner{
		cfg:     cfg,
		cohorts: make(map[string]int, len(cfg.Mix)),
		sem:     make(chan struct{}, cfg.Workers),
	}
	switch cfg.Transport {
	case "", TransportHTTP:
		r.cfg.Transport = TransportHTTP
		r.tr = &httpTransport{c: &wireClient{hc: hc, token: cfg.Token}}
	case TransportStream:
		r.tr = &streamTransport{token: cfg.Token}
	default:
		return nil, fmt.Errorf("loadgen: unknown transport %q (want %q or %q)",
			cfg.Transport, TransportHTTP, TransportStream)
	}
	models := synth.DefaultModels()
	master := rng.New(cfg.Seed)
	counts := apportion(cfg.Devices, cfg.Mix)
	for ci, c := range cfg.Mix {
		for k := 0; k < counts[ci]; k++ {
			// One split per device, in fleet order: the device's entire
			// stochastic identity derives from this child source.
			dr := master.Split(uint64(len(r.devices)))
			schedule, err := synth.CohortSchedule(c.Name, dr, cfg.HorizonSec)
			if err != nil {
				return nil, fmt.Errorf("loadgen: %w", err)
			}
			d := &device{
				id:      fmt.Sprintf("ldg-%s-%04d", c.Name, k),
				cohort:  c.Name,
				target:  targets[len(r.devices)%len(targets)],
				motion:  synth.NewMotion(models, schedule, dr),
				sampler: sensor.NewSampler(sensor.DefaultNoiseModel(), dr),
				cfg:     defaultConfig,
				horizon: cfg.HorizonSec,
			}
			d.streamTarget = d.target
			r.devices = append(r.devices, d)
			r.cohorts[c.Name] = r.cohorts[c.Name] + 1
		}
	}
	return r, nil
}
