package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubGateway implements just enough of the gateway wire protocol to
// exercise the driver without a trained model: open/get/push with
// configurable config steering and fault injection.
type stubGateway struct {
	mu       sync.Mutex
	sessions map[string]string // device id -> config name
	directed string            // config name pushed back to devices ("" = keep)
	pushes   int
	// inject, when set, may return a non-zero status to force as the
	// response for a push (called with the running push count).
	inject func(n int) int
}

func newStubGateway() *stubGateway {
	return &stubGateway{sessions: make(map[string]string)}
}

func (g *stubGateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req sessionJSON
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			http.Error(w, `{"error":"bad open"}`, http.StatusBadRequest)
			return
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		if _, ok := g.sessions[req.ID]; ok {
			http.Error(w, `{"error":"exists"}`, http.StatusConflict)
			return
		}
		g.sessions[req.ID] = "F100_A128"
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(sessionJSON{ID: req.ID, Config: g.sessions[req.ID]})
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		defer g.mu.Unlock()
		cfg, ok := g.sessions[r.PathValue("id")]
		if !ok {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(sessionJSON{ID: r.PathValue("id"), Config: cfg})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/push", func(w http.ResponseWriter, r *http.Request) {
		var b batchJSON
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			http.Error(w, `{"error":"bad batch"}`, http.StatusBadRequest)
			return
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		g.pushes++
		if g.inject != nil {
			if st := g.inject(g.pushes); st != 0 {
				http.Error(w, `{"error":"injected"}`, st)
				return
			}
		}
		id := r.PathValue("id")
		cfg, ok := g.sessions[id]
		if !ok {
			http.Error(w, `{"error":"gone"}`, http.StatusGone)
			return
		}
		if b.Config != cfg {
			http.Error(w, `{"error":"config mismatch"}`, http.StatusConflict)
			return
		}
		if g.directed != "" {
			g.sessions[id] = g.directed
		}
		json.NewEncoder(w).Encode(map[string]any{"events": []any{}, "config": g.sessions[id]})
	})
	return mux
}

// drop forgets every session, simulating eviction or a rebalance that
// moved ownership: the next push draws 410 and must re-open.
func (g *stubGateway) drop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sessions = make(map[string]string)
}

func testConfig(target string) Config {
	return Config{
		Targets:    []string{target},
		Devices:    12,
		BatchSec:   2,
		HorizonSec: 300,
		Seed:       42,
		Phases:     []Phase{{Rate: 300, Events: 120}},
		Workers:    32,
		OpenFirst:  true,
	}
}

// TestRunAgainstStub drives the full driver loop against the stub and
// checks the report contract end to end, including the adaptive-config
// downlink: the stub steers every device to F50_A64 and the fleet must
// follow.
func TestRunAgainstStub(t *testing.T) {
	g := newStubGateway()
	g.directed = "F50_A64"
	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	var phases []int
	cfg := testConfig(srv.URL)
	cfg.Phases = []Phase{{Rate: 300, Events: 60}, {Rate: 300, Events: 60}}
	cfg.OnPhase = func(i int) { phases = append(phases, i) }
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(phases, []int{0, 1}) {
		t.Fatalf("OnPhase calls = %v, want [0 1]", phases)
	}
	if rep.Totals.Offered != 120 {
		t.Fatalf("offered = %d, want 120", rep.Totals.Offered)
	}
	if rep.Totals.Lost != 0 || rep.Totals.Shed != 0 {
		t.Fatalf("lost=%d shed=%d, want 0/0", rep.Totals.Lost, rep.Totals.Shed)
	}
	if rep.Totals.PushOK != 120 {
		t.Fatalf("push_2xx = %d, want 120", rep.Totals.PushOK)
	}
	if rep.Routes["push"].Count != 120 || rep.Routes["open"].Count == 0 {
		t.Fatalf("route counts: %+v", rep.Routes)
	}
	if rep.Phases[0].AchievedRate <= 0 {
		t.Fatalf("achieved rate = %v, want > 0", rep.Phases[0].AchievedRate)
	}
	for _, d := range r.devices {
		if d.cfg.Name() != "F50_A64" {
			t.Fatalf("device %s config = %s, want steered F50_A64", d.id, d.cfg.Name())
		}
	}
	if data, err := json.Marshal(rep); err != nil || !strings.Contains(string(data), `"p99_s"`) {
		t.Fatalf("report JSON marshal: err=%v json=%.80s", err, data)
	}
}

// TestRetryRidesOutSessionLoss drops every session mid-run; with
// retries enabled the driver must re-open and lose nothing.
func TestRetryRidesOutSessionLoss(t *testing.T) {
	g := newStubGateway()
	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.MaxAttempts = 4
	cfg.Phases = []Phase{{Rate: 300, Events: 60}, {Rate: 300, Events: 60}}
	cfg.OnPhase = func(i int) {
		if i == 1 {
			g.drop()
		}
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Lost != 0 {
		t.Fatalf("lost = %d, want 0 (retries should ride out the drop)", rep.Totals.Lost)
	}
	if rep.Totals.Reopens == 0 || rep.Totals.Status4xx == 0 {
		t.Fatalf("reopens=%d status4xx=%d, want both > 0 after session drop", rep.Totals.Reopens, rep.Totals.Status4xx)
	}
}

// TestLostAndErrorAccounting injects hard 500s with retries disabled:
// every failed push must be counted lost, and the accounting invariant
// must still hold.
func TestLostAndErrorAccounting(t *testing.T) {
	g := newStubGateway()
	g.inject = func(n int) int {
		if n%4 == 0 {
			return http.StatusInternalServerError
		}
		return 0
	}
	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.MaxAttempts = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Status5xx == 0 || rep.Totals.Lost == 0 {
		t.Fatalf("status5xx=%d lost=%d, want both > 0", rep.Totals.Status5xx, rep.Totals.Lost)
	}
	if rep.Totals.Lost != rep.Totals.Status5xx {
		t.Fatalf("lost=%d != status5xx=%d with retries off", rep.Totals.Lost, rep.Totals.Status5xx)
	}
}

// TestRunCancellation cancels mid-phase: Run must return promptly with
// the context error and a still-consistent partial report.
func TestRunCancellation(t *testing.T) {
	g := newStubGateway()
	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	cfg := testConfig(srv.URL)
	cfg.Phases = []Phase{{Rate: 10, Duration: time.Hour}}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var rep *Report
	go func() {
		rep, err = r.Run(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err == nil {
		t.Fatal("Run returned nil error after cancellation")
	}
	c := rep.Phases[0].Counts
	if c.Shed+c.PushOK+c.Lost != c.Offered {
		t.Fatalf("partial report accounting broken: %+v", c)
	}
}

func TestApportionExactAndDeterministic(t *testing.T) {
	mix := DefaultMix()
	for _, n := range []int{1, 7, 12, 200, 997} {
		counts := apportion(n, mix)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != n {
			t.Fatalf("apportion(%d) sums to %d", n, sum)
		}
		if !reflect.DeepEqual(counts, apportion(n, mix)) {
			t.Fatalf("apportion(%d) not deterministic", n)
		}
	}
	// A 200-device default mix must include every cohort.
	counts := apportion(200, mix)
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("cohort %s got zero devices out of 200", mix[i].Name)
		}
	}
}

func TestFindKnee(t *testing.T) {
	mk := func(rate float64, offered, ok, errs uint64, achieved float64) PhaseReport {
		return PhaseReport{
			OfferedRate:  rate,
			AchievedRate: achieved,
			Counts:       Counts{Offered: offered, PushOK: ok, Status5xx: errs, Lost: offered - ok},
		}
	}
	cases := []struct {
		name      string
		phases    []PhaseReport
		knee      float64
		saturated bool
	}{
		{"empty", nil, 0, false},
		{"all sustained", []PhaseReport{
			mk(100, 1000, 1000, 0, 99), mk(200, 1000, 990, 0, 198),
		}, 200, false},
		{"knee found", []PhaseReport{
			mk(100, 1000, 1000, 0, 99),
			mk(200, 1000, 999, 1, 197),
			mk(400, 1000, 700, 300, 280),
		}, 200, true},
		{"never sustained", []PhaseReport{
			mk(500, 1000, 100, 900, 50),
		}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := findKnee(tc.phases)
			if tc.phases == nil {
				if got != nil {
					t.Fatal("want nil capacity for no phases")
				}
				return
			}
			if got.KneeRate != tc.knee || got.Saturated != tc.saturated {
				t.Fatalf("knee=%v saturated=%v, want %v/%v", got.KneeRate, got.Saturated, tc.knee, tc.saturated)
			}
		})
	}
}

func TestNewRunnerValidation(t *testing.T) {
	base := testConfig("http://example.invalid")
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no targets", func(c *Config) { c.Targets = nil }},
		{"relative target", func(c *Config) { c.Targets = []string{"localhost:8080"} }},
		{"no devices", func(c *Config) { c.Devices = 0 }},
		{"no phases", func(c *Config) { c.Phases = nil }},
		{"zero rate", func(c *Config) { c.Phases = []Phase{{Rate: 0, Events: 10}} }},
		{"no budget", func(c *Config) { c.Phases = []Phase{{Rate: 10}} }},
		{"bad cohort", func(c *Config) { c.Mix = []Cohort{{Name: "astronaut", Weight: 1}} }},
		{"negative weight", func(c *Config) { c.Mix = []Cohort{{Name: "elderly", Weight: -1}} }},
		{"zero weights", func(c *Config) { c.Mix = []Cohort{{Name: "elderly", Weight: 0}} }},
		{"horizon under batch", func(c *Config) { c.HorizonSec = 1; c.BatchSec = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewRunner(cfg); err == nil {
				t.Fatal("config accepted, want error")
			}
		})
	}
}
