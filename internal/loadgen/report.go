package loadgen

import (
	"fmt"

	"adasense/internal/telemetry"
)

// Counts is the outcome tally of one phase (or the whole run). The
// accounting invariant Offered == Shed + PushOK + Lost holds per phase;
// status counters tally every HTTP response seen, including ones that a
// later retry turned into a success.
type Counts struct {
	Offered   uint64 `json:"offered"`
	Shed      uint64 `json:"shed"`
	PushOK    uint64 `json:"push_2xx"`
	Status429 uint64 `json:"status_429"`
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
	Transport uint64 `json:"transport_errors"`
	Retries   uint64 `json:"retries"`
	Reopens   uint64 `json:"reopens"`
	Lost      uint64 `json:"lost"`
}

func (c Counts) add(o Counts) Counts {
	return Counts{
		Offered:   c.Offered + o.Offered,
		Shed:      c.Shed + o.Shed,
		PushOK:    c.PushOK + o.PushOK,
		Status429: c.Status429 + o.Status429,
		Status4xx: c.Status4xx + o.Status4xx,
		Status5xx: c.Status5xx + o.Status5xx,
		Transport: c.Transport + o.Transport,
		Retries:   c.Retries + o.Retries,
		Reopens:   c.Reopens + o.Reopens,
		Lost:      c.Lost + o.Lost,
	}
}

// errors returns the responses that signal the target (not the driver)
// failed: rate rejections, server errors, transport failures.
func (c Counts) errors() uint64 {
	return c.Status429 + c.Status4xx + c.Status5xx + c.Transport
}

// RouteStats summarizes one route's latency from its log2 histogram:
// mean plus interpolated p50/p95/p99 (see telemetry.BucketBounds for
// the resolution this implies).
type RouteStats struct {
	Count   uint64  `json:"count"`
	MeanSec float64 `json:"mean_s"`
	P50Sec  float64 `json:"p50_s"`
	P95Sec  float64 `json:"p95_s"`
	P99Sec  float64 `json:"p99_s"`
}

func routeStats(s telemetry.HistogramSnapshot) RouteStats {
	rs := RouteStats{
		Count:  s.Count,
		P50Sec: s.Quantile(0.50),
		P95Sec: s.Quantile(0.95),
		P99Sec: s.Quantile(0.99),
	}
	if s.Count > 0 {
		rs.MeanSec = s.SumSeconds / float64(s.Count)
	}
	return rs
}

// PhaseReport is one pacing phase's result.
type PhaseReport struct {
	Index        int                   `json:"index"`
	OfferedRate  float64               `json:"offered_rate"`
	AchievedRate float64               `json:"achieved_rate"`
	ElapsedSec   float64               `json:"elapsed_s"`
	Counts       Counts                `json:"counts"`
	Routes       map[string]RouteStats `json:"routes"`
}

// sustained reports whether the phase kept up with its offered rate:
// nearly every offered push succeeded and errors stayed marginal.
func (p PhaseReport) sustained() bool {
	if p.Counts.Offered == 0 {
		return false
	}
	goodput := float64(p.Counts.PushOK) / float64(p.Counts.Offered)
	errRatio := float64(p.Counts.errors()) / float64(p.Counts.Offered)
	return goodput >= kneeGoodput && errRatio <= kneeMaxErrRatio
}

// Knee criteria: a phase counts as sustained when at least 95% of
// offered pushes succeed and under 1% of them draw an error response.
const (
	kneeGoodput     = 0.95
	kneeMaxErrRatio = 0.01
)

// Capacity is the rate-ramp knee estimate: the highest offered rate the
// target sustained, and whether a later (higher) phase failed — i.e.
// whether the ramp actually found the knee or just ran out of phases.
type Capacity struct {
	KneeRate       float64 `json:"knee_rate"`
	AchievedAtKnee float64 `json:"achieved_at_knee"`
	Saturated      bool    `json:"saturated"`
	Criterion      string  `json:"criterion"`
}

// findKnee scans the phases in ramp order for the highest sustained
// offered rate. Returns nil when no phases ran.
func findKnee(phases []PhaseReport) *Capacity {
	if len(phases) == 0 {
		return nil
	}
	est := &Capacity{
		Criterion: fmt.Sprintf("goodput >= %.0f%% of offered and errors <= %.0f%% of offered",
			kneeGoodput*100, kneeMaxErrRatio*100),
	}
	for _, p := range phases {
		if p.sustained() {
			if p.OfferedRate > est.KneeRate {
				est.KneeRate = p.OfferedRate
				est.AchievedAtKnee = p.AchievedRate
			}
		} else {
			est.Saturated = true
		}
	}
	return est
}

// Report is the run's full result, marshaled as the cmd's JSON output.
// See docs/loadgen.md for the schema reference.
type Report struct {
	Seed      uint64                `json:"seed"`
	Devices   int                   `json:"devices"`
	Cohorts   map[string]int        `json:"cohorts"`
	BatchSec  float64               `json:"batch_sec"`
	Targets   []string              `json:"targets"`
	Transport string                `json:"transport"`
	Preopened Counts                `json:"preopened"`
	Phases    []PhaseReport         `json:"phases"`
	Routes    map[string]RouteStats `json:"routes"`
	Totals    Counts                `json:"totals"`
	Capacity  *Capacity             `json:"capacity,omitempty"`
}

// Validate checks the report's structural invariants — the "well-formed
// report" contract the soak test and the CI smoke assert: phases
// present, quantiles monotone, and per-phase accounting exact.
func (r *Report) Validate() error {
	if len(r.Phases) == 0 {
		return fmt.Errorf("loadgen: report has no phases")
	}
	if _, ok := r.Routes["push"]; !ok {
		return fmt.Errorf("loadgen: report missing push route stats")
	}
	for _, p := range r.Phases {
		c := p.Counts
		if c.Shed+c.PushOK+c.Lost != c.Offered {
			return fmt.Errorf("loadgen: phase %d accounting broken: offered=%d shed=%d ok=%d lost=%d",
				p.Index, c.Offered, c.Shed, c.PushOK, c.Lost)
		}
		for name, rs := range p.Routes {
			if rs.P50Sec > rs.P95Sec || rs.P95Sec > rs.P99Sec {
				return fmt.Errorf("loadgen: phase %d route %s quantiles not monotone: p50=%v p95=%v p99=%v",
					p.Index, name, rs.P50Sec, rs.P95Sec, rs.P99Sec)
			}
		}
	}
	for name, rs := range r.Routes {
		if rs.P50Sec > rs.P95Sec || rs.P95Sec > rs.P99Sec {
			return fmt.Errorf("loadgen: route %s quantiles not monotone", name)
		}
	}
	return nil
}
