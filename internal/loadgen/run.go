package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/sensor"
	"adasense/internal/telemetry"
)

// counters is the per-phase atomic tally. Invariant: every offered push
// resolves as exactly one of shed, pushOK, or lost — which is what lets
// the soak test assert "zero lost pushes" precisely.
type counters struct {
	offered   atomic.Uint64
	shed      atomic.Uint64
	pushOK    atomic.Uint64
	status429 atomic.Uint64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
	transport atomic.Uint64
	retries   atomic.Uint64
	reopens   atomic.Uint64
	lost      atomic.Uint64
}

func (c *counters) snapshot() Counts {
	return Counts{
		Offered:   c.offered.Load(),
		Shed:      c.shed.Load(),
		PushOK:    c.pushOK.Load(),
		Status429: c.status429.Load(),
		Status4xx: c.status4xx.Load(),
		Status5xx: c.status5xx.Load(),
		Transport: c.transport.Load(),
		Retries:   c.retries.Load(),
		Reopens:   c.reopens.Load(),
		Lost:      c.lost.Load(),
	}
}

// phaseInstruments is one phase's latency capture.
type phaseInstruments struct {
	open telemetry.Histogram
	push telemetry.Histogram
}

// Run executes the configured phases and assembles the report. The
// returned report covers whatever completed even when ctx is canceled
// mid-run (the error is returned alongside it).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	report := &Report{
		Seed:      r.cfg.Seed,
		Devices:   len(r.devices),
		Cohorts:   r.cohorts,
		BatchSec:  r.cfg.BatchSec,
		Targets:   r.cfg.Targets,
		Transport: r.cfg.Transport,
	}
	if r.cfg.OpenFirst {
		r.preopen(ctx, report)
	}
	var runErr error
	for i, ph := range r.cfg.Phases {
		if ctx.Err() != nil {
			runErr = ctx.Err()
			break
		}
		if r.cfg.OnPhase != nil {
			r.cfg.OnPhase(i)
		}
		report.Phases = append(report.Phases, r.runPhase(ctx, i, ph))
	}
	// Release per-device connection state (stream transport) before
	// assembling the report, so a held-open fleet does not outlive Run.
	for _, d := range r.devices {
		d.mu.Lock()
		r.tr.close(d)
		d.mu.Unlock()
	}
	report.Routes = map[string]RouteStats{
		"open": routeStats(r.allOpen.Snapshot()),
		"push": routeStats(r.allPush.Snapshot()),
	}
	for _, p := range report.Phases {
		report.Totals = report.Totals.add(p.Counts)
	}
	report.Capacity = findKnee(report.Phases)
	if runErr == nil {
		runErr = ctx.Err()
	}
	return report, runErr
}

// preopen opens every session before pacing starts, bounded by the
// worker pool. Failures are tolerated — the push path re-opens.
func (r *Runner) preopen(ctx context.Context, report *Report) {
	var pc counters
	ph := &phaseInstruments{}
	var wg sync.WaitGroup
	for _, d := range r.devices {
		if ctx.Err() != nil {
			break
		}
		r.sem <- struct{}{}
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			defer func() { <-r.sem }()
			d.mu.Lock()
			defer d.mu.Unlock()
			r.openDevice(ctx, d, &pc, ph)
		}(d)
	}
	wg.Wait()
	report.Preopened = pc.snapshot()
	// Pre-open latencies fold into the run-wide open aggregate only
	// (allOpen is observed inside openDevice); the throwaway phase
	// instruments just keep them out of phase 0's numbers.
}

// runPhase paces offered pushes open-loop: slot n fires at
// start + n/rate regardless of how previous pushes are faring. When no
// worker slot is free at fire time the push is shed — an overloaded
// target shows up as shed + lost counts, never as a slower offered
// rate.
func (r *Runner) runPhase(ctx context.Context, index int, ph Phase) PhaseReport {
	var pc counters
	inst := &phaseInstruments{}
	interval := time.Duration(float64(time.Second) / ph.Rate)
	var wg sync.WaitGroup
	start := time.Now()
	rr := 0
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for n := 0; ; n++ {
		if ph.Events > 0 {
			if n >= ph.Events {
				break
			}
		} else if time.Duration(n)*interval >= ph.Duration {
			break
		}
		if wait := time.Until(start.Add(time.Duration(n) * interval)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		}
		if ctx.Err() != nil {
			break
		}
		d := r.devices[rr%len(r.devices)]
		rr++
		pc.offered.Add(1)
		select {
		case r.sem <- struct{}{}:
			wg.Add(1)
			go func(d *device) {
				defer wg.Done()
				defer func() { <-r.sem }()
				r.pushDevice(ctx, d, &pc, inst)
			}(d)
		default:
			pc.shed.Add(1)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	counts := pc.snapshot()
	pr := PhaseReport{
		Index:       index,
		OfferedRate: ph.Rate,
		ElapsedSec:  elapsed.Seconds(),
		Counts:      counts,
		Routes: map[string]RouteStats{
			"open": routeStats(inst.open.Snapshot()),
			"push": routeStats(inst.push.Snapshot()),
		},
	}
	if elapsed > 0 {
		pr.AchievedRate = float64(counts.PushOK) / elapsed.Seconds()
	}
	return pr
}

// pushDevice performs one offered push end to end: (re-)open if needed,
// sample a batch at the device's current config, POST it, and classify
// the outcome. Resolves as exactly one pushOK or lost. The device lock
// serializes pushes to the same device; retry backoff sleeps while
// holding it, which is correct — a device cannot usefully push while
// its session state is in doubt.
func (r *Runner) pushDevice(ctx context.Context, d *device, pc *counters, inst *phaseInstruments) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for attempt := 1; ; attempt++ {
		ok, retryable := r.pushAttempt(ctx, d, pc, inst)
		if ok {
			pc.pushOK.Add(1)
			return
		}
		if !retryable || attempt >= r.cfg.MaxAttempts || ctx.Err() != nil {
			pc.lost.Add(1)
			return
		}
		pc.retries.Add(1)
		backoff(ctx, attempt)
	}
}

// pushAttempt is one open-if-needed + push round trip. It reports
// success and, on failure, whether another attempt could help.
func (r *Runner) pushAttempt(ctx context.Context, d *device, pc *counters, inst *phaseInstruments) (ok, retryable bool) {
	if !d.opened {
		if !r.openDevice(ctx, d, pc, inst) {
			return false, true
		}
	}
	b := d.nextBatch(r.cfg.BatchSec)
	t := time.Now()
	cfgName, status, err := r.tr.push(ctx, d, b)
	dur := time.Since(t)
	inst.push.Observe(dur)
	r.allPush.Observe(dur)
	switch {
	case err != nil:
		pc.transport.Add(1)
		return false, true
	case status == 200:
		d.t += r.cfg.BatchSec
		d.applyConfig(cfgName)
		return true, false
	case status == 404 || status == 410 || status == 409:
		// Not (or no longer) open here: rebalanced away, evicted, or
		// the config drifted during a handoff. Re-open and retry.
		pc.status4xx.Add(1)
		d.opened = false
		return false, true
	case status == 429:
		pc.status429.Add(1)
		return false, true
	case status >= 500:
		pc.status5xx.Add(1)
		return false, true
	default:
		// Other 4xx (auth, malformed): retrying the same request cannot
		// succeed.
		pc.status4xx.Add(1)
		return false, false
	}
}

// openDevice opens (or re-syncs) the device's session and records the
// open-route latency. Caller holds d.mu.
func (r *Runner) openDevice(ctx context.Context, d *device, pc *counters, inst *phaseInstruments) bool {
	t := time.Now()
	cfgName, status, err := r.tr.open(ctx, d)
	dur := time.Since(t)
	inst.open.Observe(dur)
	r.allOpen.Observe(dur)
	switch {
	case err != nil:
		pc.transport.Add(1)
		return false
	case status == 201 || status == 200:
		d.markOpen(pc)
		d.applyConfig(cfgName)
		return true
	case status == 409:
		// Already open (an adoption or a racing open won): fetch the
		// session's current config instead of assuming ours.
		if got, st, gerr := r.tr.get(ctx, d); gerr == nil && st == 200 {
			d.markOpen(pc)
			d.applyConfig(got)
			return true
		}
		pc.status4xx.Add(1)
		return false
	case status == 429:
		pc.status429.Add(1)
		return false
	case status >= 500:
		pc.status5xx.Add(1)
		return false
	default:
		pc.status4xx.Add(1)
		return false
	}
}

// markOpen flips the device open, counting re-opens (any open after the
// first successful one — the signature of eviction or rebalance churn).
func (d *device) markOpen(pc *counters) {
	if d.everOpen {
		pc.reopens.Add(1)
	}
	d.opened = true
	d.everOpen = true
}

// applyConfig adopts the server-directed sensor config — the adaptive
// loop's downlink. Unparseable or empty names keep the current config.
func (d *device) applyConfig(name string) {
	if name == "" || name == d.cfg.Name() {
		return
	}
	if c, err := sensor.ParseConfig(name); err == nil {
		d.cfg = c
	}
}

// backoff sleeps briefly before a retry: 2, 4, 8, 16, then capped 32 ms
// of jitter-free exponential delay — long enough to ride out a handoff,
// short enough not to distort a soak's event budget.
func backoff(ctx context.Context, attempt int) {
	if attempt > 5 {
		attempt = 5
	}
	t := time.NewTimer(time.Duration(1<<attempt) * time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
