package loadgen

import (
	"context"
	"errors"

	"adasense/internal/sensor"
	"adasense/internal/stream"
)

// streamTransport drives the ADSP streaming ingress: each device holds
// one persistent connection (d.sc) and pushes binary batch frames over
// it. Outcomes are mapped onto the HTTP status vocabulary the runner
// already classifies, so the retry, re-open and accounting logic is
// shared verbatim with the JSON transport:
//
//	events ack                     -> 200
//	bad-batch refusal              -> 409 (re-sync config, resend)
//	rate-limit refusal / capacity  -> 429
//	redirect / session closed      -> 410 (re-dial, at the named owner)
//	draining                       -> 503
//	unauthorized                   -> 401
//	other goodbye                  -> 500
//
// A redirect goodbye retargets d.streamTarget at the owner's URL (the
// ws transport — a raw-TCP device falls back to the advertised HTTP
// base, since the owner's -stream-addr is not in the frame).
type streamTransport struct {
	token string
}

func (t *streamTransport) open(ctx context.Context, d *device) (string, int, error) {
	if d.sc != nil {
		// The connection outlives the session flag: an open on a live
		// stream is just a config re-sync.
		return d.sc.Config().Name(), 200, nil
	}
	// A redirect at the door is half of all first dials on a multi-
	// replica target list — follow it inline (bounded, in case two
	// replicas disagree mid-rebalance) so only unresolved refusals
	// surface to the retry loop.
	for hop := 0; ; hop++ {
		c, err := stream.Dial(ctx, d.streamTarget, d.id, t.token)
		if err == nil {
			d.sc = c
			if c.Welcome().Resumed {
				return c.Config().Name(), 200, nil
			}
			return c.Config().Name(), 201, nil
		}
		var g *stream.GoodbyeError
		if !errors.As(err, &g) {
			return "", 0, err
		}
		if g.Code == stream.CodeRedirect && g.Redirect != nil &&
			g.Redirect.ReplicaURL != "" && hop < 2 {
			d.streamTarget = g.Redirect.ReplicaURL
			continue
		}
		return "", t.goodbye(d, g), nil
	}
}

func (t *streamTransport) get(ctx context.Context, d *device) (string, int, error) {
	return t.open(ctx, d)
}

func (t *streamTransport) push(ctx context.Context, d *device, b *sensor.Batch) (string, int, error) {
	if d.sc == nil {
		// The connection died on a non-reopening outcome (drain, rate
		// limit): re-dial before pushing.
		if cfg, status, err := t.open(ctx, d); status != 200 && status != 201 {
			return cfg, status, err
		}
	}
	ack, err := d.sc.Push(b)
	if err == nil {
		return ack.Config.Name(), 200, nil
	}
	var se *stream.ServerError
	if errors.As(err, &se) {
		// Per-batch refusal: the connection survives and the directed
		// config has already been applied to the client.
		if se.Code == stream.CodeRateLimited {
			return d.sc.Config().Name(), 429, nil
		}
		return d.sc.Config().Name(), 409, nil
	}
	var g *stream.GoodbyeError
	if errors.As(err, &g) {
		return "", t.goodbye(d, g), nil
	}
	d.sc.Close()
	d.sc = nil
	return "", 0, err
}

// goodbye maps a server goodbye onto a pseudo HTTP status and drops the
// dead connection. A redirect names the owning replica; the device
// follows it on the next dial.
func (t *streamTransport) goodbye(d *device, g *stream.GoodbyeError) int {
	if d.sc != nil {
		d.sc.Close()
		d.sc = nil
	}
	switch g.Code {
	case stream.CodeRedirect:
		if g.Redirect != nil && g.Redirect.ReplicaURL != "" {
			d.streamTarget = g.Redirect.ReplicaURL
		}
		return 410
	case stream.CodeSessionClosed, stream.CodeNotOwned:
		return 410
	case stream.CodeDraining:
		return 503
	case stream.CodeRateLimited, stream.CodeCapacity:
		return 429
	case stream.CodeUnauthorized:
		return 401
	default:
		return 500
	}
}

func (t *streamTransport) close(d *device) {
	if d.sc != nil {
		d.sc.Close()
		d.sc = nil
	}
}

var _ transport = (*streamTransport)(nil)
