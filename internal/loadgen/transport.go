package loadgen

import (
	"context"

	"adasense/internal/sensor"
)

// Transport names accepted by Config.Transport.
const (
	// TransportHTTP drives the request/response JSON surface: one POST
	// per push. The default.
	TransportHTTP = "http"
	// TransportStream drives the ADSP streaming ingress: one persistent
	// binary connection per device (WebSocket at /v1/stream for http://
	// targets, raw framing for tcp:// targets), pushes as batch frames.
	TransportStream = "stream"
)

// transport is the wire driver behind the runner: how a device opens
// its session, re-syncs its config, and pushes one batch. Every method
// reports the outcome in the HTTP status vocabulary the runner's retry
// and accounting logic classifies (a stream transport maps its goodbye
// codes onto it), with err reserved for transport-level failures.
// Callers hold d.mu.
type transport interface {
	open(ctx context.Context, d *device) (cfgName string, status int, err error)
	get(ctx context.Context, d *device) (cfgName string, status int, err error)
	push(ctx context.Context, d *device, b *sensor.Batch) (cfgName string, status int, err error)
	// close releases any per-device connection state at end of run.
	close(d *device)
}

// httpTransport adapts wireClient to the transport interface.
type httpTransport struct {
	c *wireClient
}

func (t *httpTransport) open(ctx context.Context, d *device) (string, int, error) {
	return t.c.open(ctx, d.target, d.id)
}

func (t *httpTransport) get(ctx context.Context, d *device) (string, int, error) {
	return t.c.get(ctx, d.target, d.id)
}

func (t *httpTransport) push(ctx context.Context, d *device, b *sensor.Batch) (string, int, error) {
	return t.c.push(ctx, d.target, d.id, marshalBatch(b))
}

func (t *httpTransport) close(*device) {}
