// Package mcu models the processing unit's cost of running the HAR
// pipeline: cycle counts for feature extraction, classifier inference and
// the intensity baseline's derivative computation, integrated into charge
// through a CC2640R2F-class current model.
//
// The paper's Section V-D argues that AdaSense avoids the data-processing
// overhead of the intensity-based approach (which must differentiate the
// raw signal every window on top of classification). That claim is an
// operation-count argument, so a cycle/current model is the faithful
// substitute for the missing hardware.
package mcu

// Model holds the electrical and timing constants of the host MCU. The
// defaults approximate a TI CC2640R2F: an ARM Cortex-M3 at 48 MHz drawing
// about 61 µA/MHz active and ~1 µA in standby.
type Model struct {
	ClockMHz        float64
	ActiveCurrentUA float64
	SleepCurrentUA  float64
}

// Default returns CC2640R2F-class constants.
func Default() Model {
	return Model{ClockMHz: 48, ActiveCurrentUA: 2930, SleepCurrentUA: 1}
}

// Cycle costs of primitive operations on a Cortex-M3-class core with a
// software floating-point path (no FPU on the CC2640R2F): conservative
// averages rather than exact instruction timings.
const (
	cyclesAdd  = 8   // software float add
	cyclesMul  = 10  // software float multiply
	cyclesMAC  = 18  // multiply-accumulate (mul+add)
	cyclesDiv  = 40  // software float divide
	cyclesSqrt = 90  // software sqrt
	cyclesExp  = 200 // software exp (softmax)
	cyclesAbs  = 2
	cyclesCmp  = 4
)

// SecondsFor converts a cycle count to seconds at the model's clock.
func (m Model) SecondsFor(cycles uint64) float64 {
	return float64(cycles) / (m.ClockMHz * 1e6)
}

// ActiveChargeUC returns the charge (µC) consumed executing the given
// cycle count at the active current.
func (m Model) ActiveChargeUC(cycles uint64) float64 {
	return m.ActiveCurrentUA * m.SecondsFor(cycles)
}

// SleepChargeUC returns the charge (µC) consumed sleeping for durSec
// seconds.
func (m Model) SleepChargeUC(durSec float64) float64 {
	if durSec < 0 {
		durSec = 0
	}
	return m.SleepCurrentUA * durSec
}

// AverageCurrentUA returns the MCU's average current when it executes
// cyclesPerSec cycles of work each second and sleeps the rest of the time.
func (m Model) AverageCurrentUA(cyclesPerSec float64) float64 {
	active := cyclesPerSec / (m.ClockMHz * 1e6)
	if active > 1 {
		active = 1
	}
	return m.ActiveCurrentUA*active + m.SleepCurrentUA*(1-active)
}

// FeatureExtractionCycles returns the cycle cost of the AdaSense feature
// set on one 3-axis batch of n samples with the given number of spectral
// bins: per axis, a mean pass, a detrend+variance pass with one sqrt, and
// one Goertzel recursion (one MAC and one add per sample) per bin.
func FeatureExtractionCycles(n, bins int) uint64 {
	if n <= 0 {
		return 0
	}
	perAxis := uint64(n)*cyclesAdd + cyclesDiv + // mean
		uint64(n)*(cyclesAdd+cyclesMAC) + cyclesDiv + cyclesSqrt + // variance/std
		uint64(bins)*(uint64(n)*(cyclesMAC+cyclesAdd)+3*cyclesMul+cyclesSqrt+cyclesDiv) // Goertzel bins
	return 3 * perAxis
}

// InferenceCycles returns the cycle cost of one forward pass of the
// 2-layer MLP: standardization, dense layers as MACs, ReLU compares and a
// softmax.
func InferenceCycles(in, hidden, out int) uint64 {
	std := uint64(in) * (cyclesAdd + cyclesDiv)
	l1 := uint64(hidden)*uint64(in)*cyclesMAC + uint64(hidden)*cyclesCmp
	l2 := uint64(out) * uint64(hidden) * cyclesMAC
	softmax := uint64(out)*(cyclesExp+cyclesAdd+cyclesDiv) + uint64(out)*cyclesCmp
	return std + l1 + l2 + softmax
}

// WaveletCycles returns the cycle cost of a Haar decomposition with the
// given depth on one 3-axis batch of n samples, plus the band-energy
// accumulation: the cascade halves the work each level (≤ 2n butterfly
// ops), and every coefficient is squared and accumulated once.
func WaveletCycles(n, levels int) uint64 {
	if n <= 0 {
		return 0
	}
	padded := uint64(1)
	for padded < uint64(n) {
		padded <<= 1
	}
	var butterflies uint64
	cur := padded
	for lv := 0; lv < levels && cur > 1; lv++ {
		butterflies += cur / 2
		cur /= 2
	}
	perAxis := butterflies*(2*cyclesAdd+2*cyclesMul) + // analysis steps
		padded*cyclesMAC + uint64(levels+1)*cyclesDiv // band energies
	return 3 * perAxis
}

// DerivativeCycles returns the cycle cost of the intensity-based
// baseline's activity-intensity computation: the mean absolute first
// difference over each of the 3 axes (one subtract, abs and accumulate per
// sample).
func DerivativeCycles(n int) uint64 {
	if n < 2 {
		return 0
	}
	perAxis := uint64(n-1)*(cyclesAdd+cyclesAbs+cyclesAdd) + cyclesDiv
	return 3 * perAxis
}
