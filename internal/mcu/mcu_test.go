package mcu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSecondsFor(t *testing.T) {
	m := Model{ClockMHz: 48, ActiveCurrentUA: 2930, SleepCurrentUA: 1}
	if got := m.SecondsFor(48_000_000); math.Abs(got-1) > 1e-12 {
		t.Fatalf("48M cycles at 48 MHz = %v s, want 1", got)
	}
}

func TestActiveChargeUC(t *testing.T) {
	m := Default()
	// One second of full-speed execution.
	cycles := uint64(m.ClockMHz * 1e6)
	if got := m.ActiveChargeUC(cycles); math.Abs(got-m.ActiveCurrentUA) > 1e-9 {
		t.Fatalf("1 s active charge = %v µC, want %v", got, m.ActiveCurrentUA)
	}
}

func TestSleepChargeNonNegative(t *testing.T) {
	m := Default()
	if m.SleepChargeUC(-5) != 0 {
		t.Fatal("negative duration should clamp to 0")
	}
	if got := m.SleepChargeUC(10); math.Abs(got-10*m.SleepCurrentUA) > 1e-12 {
		t.Fatalf("sleep charge = %v", got)
	}
}

func TestAverageCurrentBounds(t *testing.T) {
	m := Default()
	f := func(loadRaw uint32) bool {
		load := float64(loadRaw % 100_000_000)
		avg := m.AverageCurrentUA(load)
		return avg >= m.SleepCurrentUA-1e-9 && avg <= m.ActiveCurrentUA+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Zero load: sleep current. Saturated: active current.
	if got := m.AverageCurrentUA(0); got != m.SleepCurrentUA {
		t.Fatalf("idle current = %v", got)
	}
	if got := m.AverageCurrentUA(1e12); got != m.ActiveCurrentUA {
		t.Fatalf("saturated current = %v", got)
	}
}

func TestFeatureExtractionCyclesScaleWithBatch(t *testing.T) {
	small := FeatureExtractionCycles(25, 3)
	large := FeatureExtractionCycles(200, 3)
	if large <= small {
		t.Fatal("more samples should cost more cycles")
	}
	ratio := float64(large) / float64(small)
	if ratio < 4 || ratio > 9 {
		t.Fatalf("8× batch costs %.1f× cycles; expected roughly linear", ratio)
	}
	if FeatureExtractionCycles(0, 3) != 0 {
		t.Fatal("empty batch should cost nothing")
	}
}

func TestFeatureExtractionCyclesScaleWithBins(t *testing.T) {
	if FeatureExtractionCycles(100, 6) <= FeatureExtractionCycles(100, 3) {
		t.Fatal("more bins should cost more cycles")
	}
}

func TestInferenceCyclesScaleWithWidth(t *testing.T) {
	if InferenceCycles(15, 64, 6) <= InferenceCycles(15, 32, 6) {
		t.Fatal("wider hidden layer should cost more")
	}
}

func TestDerivativeCheaperThanPipelineButNotFree(t *testing.T) {
	// Sanity for the Section V-D comparison: the derivative is an extra
	// per-window cost of the same order as feature extraction for large
	// batches.
	n := 200
	d := DerivativeCycles(n)
	if d == 0 {
		t.Fatal("derivative on 200 samples should cost cycles")
	}
	fe := FeatureExtractionCycles(n, 3)
	if d >= fe {
		t.Fatalf("derivative (%d) should cost less than full feature extraction (%d)", d, fe)
	}
	if DerivativeCycles(1) != 0 {
		t.Fatal("derivative of single sample should be free")
	}
}

func TestPipelineRunsInRealTimeOnMCU(t *testing.T) {
	// The per-second workload (200-sample window features + inference)
	// must fit comfortably in one second of MCU time, or the deployment
	// story collapses.
	m := Default()
	cycles := FeatureExtractionCycles(200, 3) + InferenceCycles(15, 32, 6)
	if sec := m.SecondsFor(cycles); sec > 0.1 {
		t.Fatalf("per-window processing takes %v s on the MCU", sec)
	}
}

func TestWaveletCostlierThanGoertzel(t *testing.T) {
	// The related-work premise: DWT features cost more than the three
	// Goertzel bins AdaSense extracts (which scale with bins, not depth).
	n := 200
	goertzelOnly := FeatureExtractionCycles(n, 3) - FeatureExtractionCycles(n, 0)
	wavelet := WaveletCycles(n, 5)
	if wavelet <= goertzelOnly/2 {
		t.Fatalf("wavelet cycles %d implausibly below Goertzel bins %d", wavelet, goertzelOnly)
	}
	if WaveletCycles(0, 5) != 0 {
		t.Fatal("empty batch should cost nothing")
	}
	if WaveletCycles(200, 6) <= WaveletCycles(200, 1) {
		t.Fatal("deeper decomposition should cost more")
	}
}
