package membership

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"
)

// DefaultPollInterval is how often a FileSource re-reads its peers file
// when WithPollInterval is not given.
const DefaultPollInterval = 5 * time.Second

// FileSource drives membership from a peers file (the Parse grammar:
// "id=url" entries, commas or newlines, #-comments) — the shape of a
// mounted configmap or any file a deploy tool rewrites. The file is
// polled on an interval; a change is published as a new generation-
// tagged Snapshot once the content has been stable for the debounce
// window, so a writer caught mid-rewrite cannot publish a half fleet.
//
// A poll that finds the file unreadable or unparseable publishes
// nothing: the last good membership keeps serving and the failure is
// reported by Err. Cosmetic rewrites (reordering, comments, whitespace)
// are recognized via Equal and publish nothing.
type FileSource struct {
	path     string
	interval time.Duration
	debounce time.Duration
	now      func() time.Time

	mu           sync.Mutex
	cur          Snapshot
	publishedRaw []byte // file content behind cur (or accepted as cosmetic)
	pendingRaw   []byte // changed content awaiting the debounce window
	pendingSince time.Time
	lastErr      error

	updates   chan Snapshot
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// FileOption configures a FileSource.
type FileOption func(*FileSource) error

// WithPollInterval sets how often the peers file is re-read (default
// DefaultPollInterval).
func WithPollInterval(d time.Duration) FileOption {
	return func(f *FileSource) error {
		if d <= 0 {
			return fmt.Errorf("membership: non-positive poll interval %v", d)
		}
		f.interval = d
		return nil
	}
}

// WithDebounce requires changed file content to stay identical for d
// before it is published (default 0: a change publishes on the first
// poll that sees it). A debounce of one poll interval tolerates
// non-atomic writers.
func WithDebounce(d time.Duration) FileOption {
	return func(f *FileSource) error {
		if d < 0 {
			return fmt.Errorf("membership: negative debounce %v", d)
		}
		f.debounce = d
		return nil
	}
}

// WithFileClock injects the source's time source (default time.Now),
// making the debounce window deterministically testable alongside
// manual Poll calls.
func WithFileClock(now func() time.Time) FileOption {
	return func(f *FileSource) error {
		if now == nil {
			return fmt.Errorf("membership: nil clock")
		}
		f.now = now
		return nil
	}
}

// NewFileSource reads path once — an unreadable or invalid file fails
// construction, so Current is valid from the first instant — then polls
// it on the configured interval, publishing debounced changes on
// Updates until Close.
func NewFileSource(path string, opts ...FileOption) (*FileSource, error) {
	f := &FileSource{
		path:     path,
		interval: DefaultPollInterval,
		now:      time.Now,
		updates:  make(chan Snapshot, 4),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		if err := opt(f); err != nil {
			return nil, err
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("membership: %w", err)
	}
	members, err := Parse(string(raw))
	if err != nil {
		return nil, fmt.Errorf("membership: reading %s: %w", path, err)
	}
	f.cur = Snapshot{Generation: 1, Members: members}
	f.publishedRaw = raw
	go f.run()
	return f, nil
}

// run is the polling loop: one Poll per tick, publishing each change on
// the updates channel until Close.
func (f *FileSource) run() {
	defer close(f.done)
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			close(f.updates)
			return
		case <-ticker.C:
			snap, changed := f.Poll()
			if !changed {
				continue
			}
			select {
			case f.updates <- snap:
			case <-f.stop:
				close(f.updates)
				return
			}
		}
	}
}

// Poll performs one poll step — read, compare, debounce, parse — and
// reports whether it advanced the membership (returning the new
// snapshot if so). The internal loop calls it on every tick; tests call
// it directly for deterministic, clock-driven coverage.
func (f *FileSource) Poll() (Snapshot, bool) {
	// Read before locking, so a stalled filesystem (a configmap mount
	// mid-remount) never blocks Current/Err behind disk I/O — they keep
	// serving the last cached view.
	raw, err := os.ReadFile(f.path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		// Keep serving the last good membership: a vanished file (a
		// configmap re-mount mid-swap) must not dissolve the fleet.
		f.lastErr = fmt.Errorf("membership: %w", err)
		return Snapshot{}, false
	}
	// Any successful read is a clean poll: clear an outstanding failure
	// here, at the single entry point, so Err cannot report a stale
	// error through a debounce window or after a revert. A stable but
	// unparseable content re-arms it below.
	f.lastErr = nil
	if bytes.Equal(raw, f.publishedRaw) {
		f.pendingRaw = nil
		return Snapshot{}, false
	}
	if !bytes.Equal(raw, f.pendingRaw) {
		// Fresh change: (re)start its debounce window.
		f.pendingRaw = append(f.pendingRaw[:0], raw...)
		f.pendingSince = f.now()
		if f.debounce > 0 {
			return Snapshot{}, false
		}
	} else if f.now().Sub(f.pendingSince) < f.debounce {
		return Snapshot{}, false
	}
	members, err := Parse(string(raw))
	if err != nil {
		// Stable but invalid: keep the last good membership, surface the
		// parse failure, and leave the pending window armed so a fix
		// publishes as soon as it lands.
		f.lastErr = fmt.Errorf("membership: reading %s: %w", f.path, err)
		return Snapshot{}, false
	}
	f.publishedRaw = append([]byte(nil), raw...)
	f.pendingRaw = nil
	if Equal(members, f.cur.Members) {
		// Cosmetic rewrite (order, comments, whitespace): same fleet, no
		// new generation.
		return Snapshot{}, false
	}
	f.cur = Snapshot{Generation: f.cur.Generation + 1, Members: members}
	return f.cur.clone(), true
}

// Current returns the latest good membership view.
func (f *FileSource) Current() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.clone()
}

// Updates returns the stream of published snapshots; it is closed by
// Close.
func (f *FileSource) Updates() <-chan Snapshot { return f.updates }

// Err returns the most recent poll failure (unreadable or unparseable
// file), or nil after a clean poll. The membership view is unaffected
// by failures — Err is the observability hook for a fleet whose peers
// file has gone bad while the last good view keeps serving.
func (f *FileSource) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Close stops the polling loop and closes Updates. It is idempotent and
// returns once the loop has exited.
func (f *FileSource) Close() {
	f.closeOnce.Do(func() { close(f.stop) })
	<-f.done
}
