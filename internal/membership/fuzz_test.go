package membership

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the peers-file/-peers-flag parser.
// Invariants: no panic; an accepted member set is non-empty with
// non-empty, duplicate-free ids; and re-serializing what was accepted
// parses back to the same fleet (the grammar's comment and separator
// stripping means accepted ids/urls contain no '#', ',' or newline, so
// the one-entry-per-line form is always re-parseable).
func FuzzParse(f *testing.F) {
	f.Add("gw-a=http://a:8734,gw-b=http://b:8734")
	f.Add("gw-a=http://a:8734\ngw-b=http://b:8734\n")
	f.Add("# fleet\napi = http://x # trailing\n\n,,\nsolo\n")
	f.Add("a=,b=http://b")
	f.Add("dup=http://1\ndup=http://2")
	f.Add("=http://nameless")
	f.Add("")
	f.Add("#only a comment")
	f.Add("a=b=c,d")
	f.Add("\x00=\x01")

	f.Fuzz(func(t *testing.T, text string) {
		members, err := Parse(text)
		if err != nil {
			return
		}
		if len(members) == 0 {
			t.Fatalf("Parse(%q) accepted an empty member set", text)
		}
		seen := make(map[string]bool, len(members))
		var b strings.Builder
		for _, m := range members {
			if m.ID == "" {
				t.Fatalf("Parse(%q) accepted an empty member id", text)
			}
			if seen[m.ID] {
				t.Fatalf("Parse(%q) accepted duplicate id %q", text, m.ID)
			}
			seen[m.ID] = true
			for _, frag := range []string{m.ID, m.URL} {
				if strings.ContainsAny(frag, "#,\n") {
					t.Fatalf("Parse(%q) let a separator through: id=%q url=%q", text, m.ID, m.URL)
				}
			}
			fmt.Fprintf(&b, "%s=%s\n", m.ID, m.URL)
		}
		again, err := Parse(b.String())
		if err != nil {
			t.Fatalf("re-serialized form %q rejected: %v", b.String(), err)
		}
		if !Equal(members, again) {
			t.Fatalf("round trip changed the fleet: %v vs %v", members, again)
		}
	})
}
