// Package membership drives a federated fleet's replica set from a
// pluggable discovery source, turning the static -peers list into a
// watchable stream of replica-set snapshots.
//
// A Source publishes Snapshots: the full member set plus a generation
// number that increases with every change, so consumers can atomically
// swap in a rebuilt hash ring and detect stale views by comparing
// generations. Two implementations ship today — StaticSource wraps a
// fixed list (the -peers flag path), FileSource polls a peers file with
// an injectable clock and a debounce window (the configmap-reload path)
// — and the interface is deliberately small so a DNS- or Kubernetes-
// endpoint-backed source drops in later without touching consumers.
//
// Snapshots are value copies: consumers own what they receive and a
// source never mutates a published snapshot.
package membership

import (
	"fmt"
	"strings"
)

// Member is one replica of the fleet: a stable id (its position on the
// hash ring) and the base URL peers reach it at. The consumer's own
// entry may carry an empty URL — a replica never dials itself.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Snapshot is one complete view of the replica set. Generation increases
// by at least one with every published change (per source instance;
// generations are not comparable across sources or processes), so a
// consumer holding two snapshots always knows which is newer.
type Snapshot struct {
	Generation uint64   `json:"generation"`
	Members    []Member `json:"members"`
}

// clone deep-copies the snapshot so consumers and the source never share
// a Members slice.
func (s Snapshot) clone() Snapshot {
	return Snapshot{Generation: s.Generation, Members: append([]Member(nil), s.Members...)}
}

// Source is a watchable stream of replica-set snapshots.
//
// Current returns the latest snapshot and is valid from construction —
// a Source constructor fails rather than returning an empty view.
// Updates returns the channel on which every later snapshot is
// delivered in generation order; it is closed by Close. Close releases
// the source's watch resources and is idempotent.
type Source interface {
	Current() Snapshot
	Updates() <-chan Snapshot
	Close()
}

// closedUpdates is the shared pre-closed channel returned by sources
// that never change (StaticSource): ranging over it ends immediately.
var closedUpdates = func() chan Snapshot {
	ch := make(chan Snapshot)
	close(ch)
	return ch
}()

// StaticSource is the fixed member set behind today's -peers flag: one
// snapshot at construction, never an update. It exists so static and
// discovered fleets share one code path in consumers.
type StaticSource struct {
	snap Snapshot
}

// NewStatic builds a source over a fixed member list.
func NewStatic(members []Member) (*StaticSource, error) {
	if err := validate(members); err != nil {
		return nil, err
	}
	return &StaticSource{snap: Snapshot{Generation: 1, Members: members}.clone()}, nil
}

// Current returns the fixed member set at generation 1.
func (s *StaticSource) Current() Snapshot { return s.snap.clone() }

// Updates returns a closed channel: a static membership never changes.
func (s *StaticSource) Updates() <-chan Snapshot { return closedUpdates }

// Close is a no-op; a static source holds no watch resources.
func (s *StaticSource) Close() {}

// Parse decodes a member list from its textual form: "id=url" entries
// separated by commas and/or newlines, with blank entries and #-comment
// lines ignored, so one grammar serves both the -peers flag and a peers
// file. A bare "id" (or "id=") is a member without a URL — valid only
// for the consumer's own entry, which consumers enforce.
func Parse(text string) ([]Member, error) {
	var members []Member
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, entry := range strings.Split(line, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			id, url, _ := strings.Cut(entry, "=")
			if id == "" {
				return nil, fmt.Errorf("membership: malformed entry %q (want id=url)", entry)
			}
			members = append(members, Member{ID: id, URL: strings.TrimSpace(url)})
		}
	}
	if err := validate(members); err != nil {
		return nil, err
	}
	return members, nil
}

// validate rejects member sets no consumer could serve from: empty, or
// carrying a duplicate id.
func validate(members []Member) error {
	if len(members) == 0 {
		return fmt.Errorf("membership: no members")
	}
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m.ID == "" {
			return fmt.Errorf("membership: empty member id")
		}
		if _, dup := seen[m.ID]; dup {
			return fmt.Errorf("membership: duplicate member id %q", m.ID)
		}
		seen[m.ID] = struct{}{}
	}
	return nil
}

// Equal reports whether two member lists describe the same fleet: the
// same id→URL assignments, regardless of order. Sources use it to
// suppress no-op publishes (a reordered or reformatted peers file is
// not a membership change).
func Equal(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	urls := make(map[string]string, len(a))
	for _, m := range a {
		urls[m.ID] = m.URL
	}
	for _, m := range b {
		url, ok := urls[m.ID]
		if !ok || url != m.URL {
			return false
		}
	}
	return true
}
