package membership

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	members, err := Parse("gw-a, gw-b=http://host-b:8734\n# a comment\ngw-c=http://host-c:8734 # trailing\n\ngw-d=")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "gw-a"},
		{ID: "gw-b", URL: "http://host-b:8734"},
		{ID: "gw-c", URL: "http://host-c:8734"},
		{ID: "gw-d"},
	}
	if len(members) != len(want) {
		t.Fatalf("parsed %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, members[i], want[i])
		}
	}

	for _, bad := range []string{"", ",,", "# only a comment", "=http://host:1", "gw-a,gw-a=http://dup:1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestEqual(t *testing.T) {
	a := []Member{{ID: "x", URL: "http://x:1"}, {ID: "y", URL: "http://y:1"}}
	reordered := []Member{{ID: "y", URL: "http://y:1"}, {ID: "x", URL: "http://x:1"}}
	if !Equal(a, reordered) {
		t.Error("order must not matter")
	}
	movedURL := []Member{{ID: "x", URL: "http://x:2"}, {ID: "y", URL: "http://y:1"}}
	if Equal(a, movedURL) {
		t.Error("a changed URL is a membership change")
	}
	if Equal(a, a[:1]) {
		t.Error("different sizes compared equal")
	}
}

func TestStaticSource(t *testing.T) {
	if _, err := NewStatic(nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	members := []Member{{ID: "gw-a"}, {ID: "gw-b", URL: "http://b:1"}}
	src, err := NewStatic(members)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	snap := src.Current()
	if snap.Generation != 1 || !Equal(snap.Members, members) {
		t.Fatalf("Current() = %+v, want generation 1 over %v", snap, members)
	}
	// The snapshot is a copy: mutating it must not reach the source.
	snap.Members[0].ID = "mutated"
	if src.Current().Members[0].ID != "gw-a" {
		t.Error("Current() shares its Members slice with callers")
	}
	// A static membership never updates: the stream is already over.
	if _, open := <-src.Updates(); open {
		t.Error("static source delivered an update")
	}
}

// writeFile atomically replaces path (write + rename), the way a deploy
// tool or kubelet swaps a configmap.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// newTestFileSource builds a FileSource over content with a manual
// clock; polling is driven by explicit Poll calls (the background loop
// idles on a long interval).
func newTestFileSource(t *testing.T, content string, now *time.Time, opts ...FileOption) (*FileSource, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peers.conf")
	writeFile(t, path, content)
	opts = append([]FileOption{
		WithPollInterval(time.Hour),
		WithFileClock(func() time.Time { return *now }),
	}, opts...)
	src, err := NewFileSource(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src.Close)
	return src, path
}

func TestFileSourceConstruction(t *testing.T) {
	if _, err := NewFileSource(filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(path, []byte("=nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSource(path); err == nil {
		t.Fatal("invalid file accepted")
	}
	if _, err := NewFileSource(path, WithPollInterval(0)); err == nil {
		t.Fatal("zero poll interval accepted")
	}
	if _, err := NewFileSource(path, WithDebounce(-time.Second)); err == nil {
		t.Fatal("negative debounce accepted")
	}
	if _, err := NewFileSource(path, WithFileClock(nil)); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestFileSourcePublishesChanges(t *testing.T) {
	now := time.Unix(1000, 0)
	src, path := newTestFileSource(t, "gw-a\ngw-b=http://b:1\n", &now)
	if snap := src.Current(); snap.Generation != 1 || len(snap.Members) != 2 {
		t.Fatalf("initial snapshot = %+v", snap)
	}

	// An unchanged file publishes nothing.
	if _, changed := src.Poll(); changed {
		t.Fatal("unchanged file published")
	}

	// A membership change publishes the next generation.
	writeFile(t, path, "gw-a\ngw-b=http://b:1\ngw-c=http://c:1\n")
	snap, changed := src.Poll()
	if !changed || snap.Generation != 2 || len(snap.Members) != 3 {
		t.Fatalf("after change: changed=%v snap=%+v, want generation 2 with 3 members", changed, snap)
	}
	if cur := src.Current(); cur.Generation != 2 {
		t.Fatalf("Current() = generation %d, want 2", cur.Generation)
	}

	// A cosmetic rewrite (reordering + comments) is not a change.
	writeFile(t, path, "# reshuffled\ngw-c=http://c:1, gw-a\ngw-b=http://b:1\n")
	if _, changed := src.Poll(); changed {
		t.Fatal("cosmetic rewrite published a new generation")
	}
	if cur := src.Current(); cur.Generation != 2 {
		t.Fatalf("cosmetic rewrite bumped the generation to %d", cur.Generation)
	}
}

func TestFileSourceKeepsLastGoodView(t *testing.T) {
	now := time.Unix(1000, 0)
	src, path := newTestFileSource(t, "gw-a\ngw-b=http://b:1\n", &now)

	// Corrupt file: the last good membership keeps serving, Err reports.
	writeFile(t, path, "=broken")
	if _, changed := src.Poll(); changed {
		t.Fatal("broken file published")
	}
	if src.Err() == nil {
		t.Fatal("broken file not surfaced via Err")
	}
	if cur := src.Current(); cur.Generation != 1 || len(cur.Members) != 2 {
		t.Fatalf("broken file disturbed the view: %+v", cur)
	}

	// Reverting to the already-published content is a clean poll: no
	// publish, and the stale failure clears.
	writeFile(t, path, "gw-a\ngw-b=http://b:1\n")
	if _, changed := src.Poll(); changed {
		t.Fatal("revert to the published content published")
	}
	if err := src.Err(); err != nil {
		t.Fatalf("Err() = %v after reverting to good content, want nil", err)
	}
	writeFile(t, path, "=broken")
	src.Poll() // re-arm the failure for the vanish case below

	// Vanished file: same contract.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, changed := src.Poll(); changed {
		t.Fatal("vanished file published")
	}
	if src.Err() == nil {
		t.Fatal("vanished file not surfaced via Err")
	}

	// The fix lands: published with the error cleared.
	writeFile(t, path, "gw-a\ngw-c=http://c:1\n")
	snap, changed := src.Poll()
	if !changed || snap.Generation != 2 {
		t.Fatalf("fixed file: changed=%v snap=%+v, want generation 2", changed, snap)
	}
	if src.Err() != nil {
		t.Errorf("Err() = %v after a clean poll, want nil", src.Err())
	}
}

func TestFileSourceDebounce(t *testing.T) {
	now := time.Unix(1000, 0)
	src, path := newTestFileSource(t, "gw-a\n", &now, WithDebounce(10*time.Second))

	// A change must stay stable for the debounce window before it
	// publishes: the first sighting only arms the window.
	writeFile(t, path, "gw-a\ngw-b=http://b:1\n")
	if _, changed := src.Poll(); changed {
		t.Fatal("published on first sighting despite debounce")
	}
	now = now.Add(5 * time.Second)
	if _, changed := src.Poll(); changed {
		t.Fatal("published inside the debounce window")
	}

	// Content changing again mid-window restarts the window — a writer
	// caught mid-rewrite never publishes a half fleet.
	writeFile(t, path, "gw-a\ngw-b=http://b:1\ngw-c=http://c:1\n")
	now = now.Add(6 * time.Second) // 11s after the first change, 6s after the second
	if _, changed := src.Poll(); changed {
		t.Fatal("published while the rewrite was still settling")
	}
	now = now.Add(10 * time.Second)
	snap, changed := src.Poll()
	if !changed || snap.Generation != 2 || len(snap.Members) != 3 {
		t.Fatalf("after stability: changed=%v snap=%+v, want the final 3-member fleet", changed, snap)
	}
}

func TestFileSourcePollingLoopDelivers(t *testing.T) {
	// End-to-end through the real ticker: a rewrite arrives on Updates.
	path := filepath.Join(t.TempDir(), "peers.conf")
	writeFile(t, path, "gw-a\n")
	src, err := NewFileSource(path, WithPollInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	writeFile(t, path, "gw-a\ngw-b=http://b:1\n")
	select {
	case snap := <-src.Updates():
		if snap.Generation != 2 || len(snap.Members) != 2 {
			t.Fatalf("delivered %+v, want generation 2 with 2 members", snap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update within 5s")
	}
	// Close ends the stream.
	src.Close()
	if _, open := <-src.Updates(); open {
		t.Error("Updates still open after Close")
	}
	src.Close() // idempotent
}

func TestFileSourceParseGrammarMatchesFlag(t *testing.T) {
	// The file grammar is a superset of the -peers flag grammar: one
	// string, commas only.
	flagStyle := "gw-a,gw-b=http://b:1,gw-c=http://c:1"
	fromFlag, err := Parse(flagStyle)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Parse(strings.ReplaceAll(flagStyle, ",", "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(fromFlag, fromFile) {
		t.Errorf("flag and file grammar disagree: %v vs %v", fromFlag, fromFile)
	}
}
