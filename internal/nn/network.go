// Package nn implements the paper's activity classifier from scratch: a
// multi-layer perceptron with one ReLU hidden layer and a softmax output
// layer (Section III-C), together with a mini-batch trainer, input
// standardization, binary serialization and classifier-memory accounting.
//
// AdaSense trains a *single* such network on feature vectors pooled from
// every sensor configuration; the intensity-based baseline trains one per
// configuration. Both use this package.
package nn

import (
	"fmt"
	"math"

	"adasense/internal/rng"
)

// Network is a 2-layer MLP: standardize → W1·x+b1 → ReLU → W2·h+b2 →
// softmax. Weights are row-major: W1[h*In+i] connects input i to hidden h.
//
// A Network is safe for concurrent inference once training has finished
// (inference methods write only to caller-provided or local buffers).
type Network struct {
	In, Hidden, Out int

	W1, B1 []float64 // Hidden×In, Hidden
	W2, B2 []float64 // Out×Hidden, Out

	// MeanIn/StdIn standardize inputs; set by the trainer from the
	// training corpus. StdIn entries are never zero.
	MeanIn, StdIn []float64
}

// New returns a network with He-initialized weights drawn from r and
// identity standardization. It panics on non-positive dimensions.
func New(in, hidden, out int, r *rng.Source) *Network {
	if in <= 0 || hidden <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dimensions %d/%d/%d", in, hidden, out))
	}
	n := &Network{
		In: in, Hidden: hidden, Out: out,
		W1:     make([]float64, hidden*in),
		B1:     make([]float64, hidden),
		W2:     make([]float64, out*hidden),
		B2:     make([]float64, out),
		MeanIn: make([]float64, in),
		StdIn:  make([]float64, in),
	}
	for i := range n.StdIn {
		n.StdIn[i] = 1
	}
	s1 := math.Sqrt(2 / float64(in))
	for i := range n.W1 {
		n.W1[i] = r.NormSigma(0, s1)
	}
	s2 := math.Sqrt(2 / float64(hidden))
	for i := range n.W2 {
		n.W2[i] = r.NormSigma(0, s2)
	}
	return n
}

// NumParams returns the number of trainable parameters (weights + biases).
func (n *Network) NumParams() int {
	return len(n.W1) + len(n.B1) + len(n.W2) + len(n.B2)
}

// WeightBytes returns the storage footprint of the classifier's parameters
// (including the standardization vectors, which must ship with the model)
// at the given bytes per parameter (4 for float32, 2 for Q15).
func (n *Network) WeightBytes(bytesPerParam int) int {
	return (n.NumParams() + len(n.MeanIn) + len(n.StdIn)) * bytesPerParam
}

// forwardInto computes hidden activations and output probabilities for
// input x. hidden and probs must have lengths Hidden and Out.
func (n *Network) forwardInto(x, hidden, probs []float64) {
	for h := 0; h < n.Hidden; h++ {
		sum := n.B1[h]
		row := n.W1[h*n.In : (h+1)*n.In]
		for i, w := range row {
			sum += w * (x[i] - n.MeanIn[i]) / n.StdIn[i]
		}
		if sum < 0 {
			sum = 0
		}
		hidden[h] = sum
	}
	maxLogit := math.Inf(-1)
	for o := 0; o < n.Out; o++ {
		sum := n.B2[o]
		row := n.W2[o*n.Hidden : (o+1)*n.Hidden]
		for h, w := range row {
			sum += w * hidden[h]
		}
		probs[o] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var z float64
	for o := range probs {
		probs[o] = math.Exp(probs[o] - maxLogit)
		z += probs[o]
	}
	for o := range probs {
		probs[o] /= z
	}
}

// Forward returns the class probability vector for input x, writing into
// probs when it has capacity Out. len(x) must equal In.
func (n *Network) Forward(x, probs []float64) []float64 {
	if len(x) != n.In {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.In))
	}
	if cap(probs) < n.Out {
		probs = make([]float64, n.Out)
	}
	probs = probs[:n.Out]
	hidden := make([]float64, n.Hidden)
	n.forwardInto(x, hidden, probs)
	return probs
}

// Predict returns the most probable class for x and the softmax confidence
// of that class — the quantity SPOT-with-confidence thresholds on.
func (n *Network) Predict(x []float64) (class int, confidence float64) {
	probs := n.Forward(x, nil)
	class = 0
	for o, p := range probs {
		if p > probs[class] {
			class = o
		}
	}
	return class, probs[class]
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := *n
	c.W1 = append([]float64(nil), n.W1...)
	c.B1 = append([]float64(nil), n.B1...)
	c.W2 = append([]float64(nil), n.W2...)
	c.B2 = append([]float64(nil), n.B2...)
	c.MeanIn = append([]float64(nil), n.MeanIn...)
	c.StdIn = append([]float64(nil), n.StdIn...)
	return &c
}
