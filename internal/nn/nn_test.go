package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/rng"
)

// twoBlobs builds a linearly separable 2-class problem.
func twoBlobs(r *rng.Source, n int) (X [][]float64, Y []int) {
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := -2.0
		if cls == 1 {
			cx = 2.0
		}
		X = append(X, []float64{cx + r.Norm()*0.5, r.Norm() * 0.5})
		Y = append(Y, cls)
	}
	return X, Y
}

// spiralIsh builds a harder 3-class radial problem.
func rings(r *rng.Source, n int) (X [][]float64, Y []int) {
	for i := 0; i < n; i++ {
		cls := i % 3
		radius := float64(cls)*1.5 + 1
		theta := r.Uniform(0, 2*math.Pi)
		X = append(X, []float64{
			radius*math.Cos(theta) + r.Norm()*0.15,
			radius*math.Sin(theta) + r.Norm()*0.15,
		})
		Y = append(Y, cls)
	}
	return X, Y
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,1,1) did not panic")
		}
	}()
	New(0, 1, 1, rng.New(1))
}

func TestForwardIsDistribution(t *testing.T) {
	net := New(4, 8, 3, rng.New(2))
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		p := net.Forward([]float64{clamp(a), clamp(b), clamp(c), clamp(d)}, nil)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardPanicsOnSizeMismatch(t *testing.T) {
	net := New(4, 8, 3, rng.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	net.Forward([]float64{1, 2}, nil)
}

func TestTrainSeparableProblem(t *testing.T) {
	r := rng.New(3)
	X, Y := twoBlobs(r, 400)
	net := New(2, 8, 2, r.Split(1))
	res, err := Train(net, X, Y, TrainConfig{Epochs: 30}, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, X, Y); acc < 0.99 {
		t.Fatalf("separable training accuracy = %v", acc)
	}
	if res.FinalLoss() > 0.1 {
		t.Fatalf("final loss = %v", res.FinalLoss())
	}
}

func TestTrainNonlinearProblem(t *testing.T) {
	r := rng.New(5)
	X, Y := rings(r, 900)
	Xte, Yte := rings(r.Split(9), 300)
	net := New(2, 24, 3, r.Split(1))
	if _, err := Train(net, X, Y, TrainConfig{Epochs: 80, LR: 5e-3}, r.Split(2)); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, Xte, Yte); acc < 0.95 {
		t.Fatalf("rings test accuracy = %v, want >= 0.95 (needs the hidden layer)", acc)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	r := rng.New(7)
	X, Y := rings(r, 600)
	net := New(2, 16, 3, r.Split(1))
	res, err := Train(net, X, Y, TrainConfig{Epochs: 20}, r.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.FinalLoss()
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrainValidation(t *testing.T) {
	r := rng.New(8)
	net := New(2, 4, 2, r)
	if _, err := Train(net, nil, nil, TrainConfig{}, r); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Train(net, [][]float64{{1}}, []int{0}, TrainConfig{}, r); err == nil {
		t.Fatal("wrong input size accepted")
	}
	if _, err := Train(net, [][]float64{{1, 2}}, []int{5}, TrainConfig{}, r); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := Train(net, [][]float64{{1, 2}, {3, 4}}, []int{0}, TrainConfig{}, r); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	build := func() *Network {
		r := rng.New(11)
		X, Y := twoBlobs(r, 200)
		net := New(2, 8, 2, r.Split(1))
		if _, err := Train(net, X, Y, TrainConfig{Epochs: 5}, r.Split(2)); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := build(), build()
	for i := range a.W1 {
		if a.W1[i] != b.W1[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestStandardizationStored(t *testing.T) {
	r := rng.New(13)
	X := [][]float64{{10, 0}, {12, 0}, {14, 0}}
	Y := []int{0, 1, 0}
	net := New(2, 4, 2, r)
	if _, err := Train(net, X, Y, TrainConfig{Epochs: 1}, r); err != nil {
		t.Fatal(err)
	}
	if math.Abs(net.MeanIn[0]-12) > 1e-9 {
		t.Fatalf("MeanIn[0] = %v, want 12", net.MeanIn[0])
	}
	if net.StdIn[1] != 1 {
		t.Fatalf("constant feature std floored to %v, want 1", net.StdIn[1])
	}
}

func TestPredictConfidence(t *testing.T) {
	r := rng.New(17)
	X, Y := twoBlobs(r, 400)
	net := New(2, 8, 2, r.Split(1))
	if _, err := Train(net, X, Y, TrainConfig{Epochs: 30}, r.Split(2)); err != nil {
		t.Fatal(err)
	}
	// Deep inside class 1 territory: high confidence.
	cls, conf := net.Predict([]float64{3, 0})
	if cls != 1 || conf < 0.9 {
		t.Fatalf("Predict(3,0) = %d @ %v", cls, conf)
	}
	// On the decision boundary: confidence should drop.
	_, confMid := net.Predict([]float64{0, 0})
	if confMid >= conf {
		t.Fatalf("boundary confidence %v not below interior confidence %v", confMid, conf)
	}
}

func TestCloneIndependent(t *testing.T) {
	net := New(3, 4, 2, rng.New(19))
	c := net.Clone()
	c.W1[0] += 100
	if net.W1[0] == c.W1[0] {
		t.Fatal("Clone shares weight storage")
	}
}

func TestNumParamsAndWeightBytes(t *testing.T) {
	net := New(15, 32, 6, rng.New(23))
	wantParams := 15*32 + 32 + 32*6 + 6
	if got := net.NumParams(); got != wantParams {
		t.Fatalf("NumParams = %d, want %d", got, wantParams)
	}
	if got := net.WeightBytes(4); got != (wantParams+30)*4 {
		t.Fatalf("WeightBytes(4) = %d", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := rng.New(29)
	X, Y := twoBlobs(r, 200)
	net := New(2, 8, 2, r.Split(1))
	if _, err := Train(net, X, Y, TrainConfig{Epochs: 10}, r.Split(2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.In != net.In || got.Hidden != net.Hidden || got.Out != net.Out {
		t.Fatal("dimensions lost in round trip")
	}
	// float32 round trip loses precision but predictions must agree.
	for i := 0; i < 50; i++ {
		x := []float64{r.Uniform(-4, 4), r.Uniform(-2, 2)}
		a, _ := net.Predict(x)
		b, _ := got.Predict(x)
		if a != b {
			t.Fatalf("prediction changed after round trip at input %v", x)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("ADNN"), // truncated header
		append([]byte("ADNN"), make([]byte, 16)...), // zero dims
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: Read accepted garbage", i)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	net := New(2, 4, 2, rng.New(31))
	if Accuracy(net, nil, nil) != 0 {
		t.Fatal("Accuracy(empty) != 0")
	}
}

func BenchmarkPredict(b *testing.B) {
	net := New(15, 32, 6, rng.New(1))
	x := make([]float64, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	r := rng.New(1)
	X, Y := rings(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := New(2, 16, 3, rng.New(2))
		_, _ = Train(net, X, Y, TrainConfig{Epochs: 1}, rng.New(3))
	}
}
