package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization uses a compact little-endian binary format with float32
// parameters — the precision a wearable deployment would ship — so that
// WeightBytes(4) matches the real on-disk footprint.
//
// Layout: magic "ADNN" | uint32 version | uint32 in, hidden, out |
// float32 W1 | B1 | W2 | B2 | MeanIn | StdIn.

// Magic is the network stream's leading magic bytes; container formats
// embedding a network sniff it to recognize the legacy bare-network
// layout.
const Magic = "ADNN"

const (
	magic   = Magic
	version = 1
)

// WriteTo serializes the network. It implements io.WriterTo.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return written, err
	}
	written += int64(len(magic))
	for _, v := range []uint32{version, uint32(n.In), uint32(n.Hidden), uint32(n.Out)} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	for _, s := range [][]float64{n.W1, n.B1, n.W2, n.B2, n.MeanIn, n.StdIn} {
		f32 := make([]float32, len(s))
		for i, v := range s {
			f32[i] = float32(v)
		}
		if err := put(f32); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Read deserializes a network written by WriteTo.
func Read(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("nn: bad magic %q", head)
	}
	var meta [4]uint32
	if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
		return nil, fmt.Errorf("nn: reading header: %w", err)
	}
	if meta[0] != version {
		return nil, fmt.Errorf("nn: unsupported version %d", meta[0])
	}
	in, hidden, out := int(meta[1]), int(meta[2]), int(meta[3])
	const maxDim = 1 << 20
	if in <= 0 || hidden <= 0 || out <= 0 || in > maxDim || hidden > maxDim || out > maxDim {
		return nil, fmt.Errorf("nn: implausible dimensions %d/%d/%d", in, hidden, out)
	}
	// Bound the total parameter count, not just each dimension: a
	// hostile header with in = hidden = 2^20 would otherwise demand a
	// terabyte-scale W1 allocation before the first weight byte is even
	// read. 2^20 parameters (8 MiB as float64) is orders of magnitude
	// above any network this package trains.
	const maxParams = 1 << 20
	if hidden*in > maxParams || out*hidden > maxParams {
		return nil, fmt.Errorf("nn: implausible parameter count for dimensions %d/%d/%d", in, hidden, out)
	}
	n := &Network{
		In: in, Hidden: hidden, Out: out,
		W1:     make([]float64, hidden*in),
		B1:     make([]float64, hidden),
		W2:     make([]float64, out*hidden),
		B2:     make([]float64, out),
		MeanIn: make([]float64, in),
		StdIn:  make([]float64, in),
	}
	for _, s := range [][]float64{n.W1, n.B1, n.W2, n.B2, n.MeanIn, n.StdIn} {
		f32 := make([]float32, len(s))
		if err := binary.Read(br, binary.LittleEndian, f32); err != nil {
			return nil, fmt.Errorf("nn: reading parameters: %w", err)
		}
		for i, v := range f32 {
			if math.IsNaN(float64(v)) {
				return nil, fmt.Errorf("nn: NaN parameter at index %d", i)
			}
			s[i] = float64(v)
		}
	}
	for i, v := range n.StdIn {
		if v <= 0 {
			return nil, fmt.Errorf("nn: non-positive StdIn[%d] = %v", i, v)
		}
	}
	return n, nil
}
