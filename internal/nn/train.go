package nn

import (
	"fmt"
	"math"

	"adasense/internal/rng"
)

// TrainConfig holds hyperparameters for mini-batch Adam training with
// cross-entropy loss.
type TrainConfig struct {
	Epochs    int     // passes over the corpus (default 40)
	BatchSize int     // mini-batch size (default 32)
	LR        float64 // Adam step size (default 3e-3)
	L2        float64 // weight decay coefficient (default 1e-4)
	// LabelSmoothing mixes the one-hot target with the uniform
	// distribution: target = (1-s)·onehot + s/K. Smoothing calibrates the
	// softmax confidences the SPOT confidence gate thresholds on
	// (default 0: disabled).
	LabelSmoothing float64
	Beta1          float64 // Adam first-moment decay (default 0.9)
	Beta2          float64 // Adam second-moment decay (default 0.999)
}

// withDefaults fills zero fields with the package defaults.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	return c
}

// TrainResult reports the training trajectory.
type TrainResult struct {
	EpochLoss []float64 // mean cross-entropy per epoch
}

// FinalLoss returns the last epoch's mean loss (NaN when empty).
func (t TrainResult) FinalLoss() float64 {
	if len(t.EpochLoss) == 0 {
		return math.NaN()
	}
	return t.EpochLoss[len(t.EpochLoss)-1]
}

// adamState holds first/second moment estimates for one parameter slice.
type adamState struct{ m, v []float64 }

func newAdamState(n int) adamState {
	return adamState{m: make([]float64, n), v: make([]float64, n)}
}

// Train fits the network to inputs X with integer labels Y using
// mini-batch Adam and cross-entropy. It computes the input standardization
// from X first (overwriting MeanIn/StdIn). Shuffling draws from r, so the
// whole procedure is deterministic given (network init, r).
func Train(net *Network, X [][]float64, Y []int, cfg TrainConfig, r *rng.Source) (TrainResult, error) {
	if len(X) == 0 || len(X) != len(Y) {
		return TrainResult{}, fmt.Errorf("nn: bad corpus (%d inputs, %d labels)", len(X), len(Y))
	}
	for i, x := range X {
		if len(x) != net.In {
			return TrainResult{}, fmt.Errorf("nn: input %d has size %d, want %d", i, len(x), net.In)
		}
		if Y[i] < 0 || Y[i] >= net.Out {
			return TrainResult{}, fmt.Errorf("nn: label %d out of range [0,%d)", Y[i], net.Out)
		}
	}
	if cfg.LabelSmoothing < 0 || cfg.LabelSmoothing >= 1 {
		return TrainResult{}, fmt.Errorf("nn: label smoothing %v outside [0,1)", cfg.LabelSmoothing)
	}
	cfg = cfg.withDefaults()
	setStandardization(net, X)

	gW1 := make([]float64, len(net.W1))
	gB1 := make([]float64, len(net.B1))
	gW2 := make([]float64, len(net.W2))
	gB2 := make([]float64, len(net.B2))
	aW1 := newAdamState(len(net.W1))
	aB1 := newAdamState(len(net.B1))
	aW2 := newAdamState(len(net.W2))
	aB2 := newAdamState(len(net.B2))

	hidden := make([]float64, net.Hidden)
	probs := make([]float64, net.Out)
	xStd := make([]float64, net.In)
	dHidden := make([]float64, net.Hidden)

	var res TrainResult
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			zero(gW1)
			zero(gB1)
			zero(gW2)
			zero(gB2)
			for _, idx := range batch {
				x, y := X[idx], Y[idx]
				for i := range xStd {
					xStd[i] = (x[i] - net.MeanIn[i]) / net.StdIn[i]
				}
				// Forward on standardized input (inline to reuse xStd).
				for h := 0; h < net.Hidden; h++ {
					sum := net.B1[h]
					row := net.W1[h*net.In : (h+1)*net.In]
					for i, w := range row {
						sum += w * xStd[i]
					}
					if sum < 0 {
						sum = 0
					}
					hidden[h] = sum
				}
				maxLogit := math.Inf(-1)
				for o := 0; o < net.Out; o++ {
					sum := net.B2[o]
					row := net.W2[o*net.Hidden : (o+1)*net.Hidden]
					for h, w := range row {
						sum += w * hidden[h]
					}
					probs[o] = sum
					if sum > maxLogit {
						maxLogit = sum
					}
				}
				var z float64
				for o := range probs {
					probs[o] = math.Exp(probs[o] - maxLogit)
					z += probs[o]
				}
				for o := range probs {
					probs[o] /= z
				}
				p := probs[y]
				if p < 1e-12 {
					p = 1e-12
				}
				epochLoss += -math.Log(p)

				// Backward: dLogit = probs - target, where target is the
				// (possibly smoothed) label distribution.
				smooth := cfg.LabelSmoothing
				zero(dHidden)
				for o := 0; o < net.Out; o++ {
					target := smooth / float64(net.Out)
					if o == y {
						target += 1 - smooth
					}
					d := probs[o] - target
					gB2[o] += d
					row := net.W2[o*net.Hidden : (o+1)*net.Hidden]
					gRow := gW2[o*net.Hidden : (o+1)*net.Hidden]
					for h := 0; h < net.Hidden; h++ {
						gRow[h] += d * hidden[h]
						dHidden[h] += d * row[h]
					}
				}
				for h := 0; h < net.Hidden; h++ {
					if hidden[h] <= 0 { // ReLU gate
						continue
					}
					d := dHidden[h]
					gB1[h] += d
					gRow := gW1[h*net.In : (h+1)*net.In]
					for i := 0; i < net.In; i++ {
						gRow[i] += d * xStd[i]
					}
				}
			}
			inv := 1 / float64(len(batch))
			step++
			adamUpdate(net.W1, gW1, aW1, cfg, inv, step, true)
			adamUpdate(net.B1, gB1, aB1, cfg, inv, step, false)
			adamUpdate(net.W2, gW2, aW2, cfg, inv, step, true)
			adamUpdate(net.B2, gB2, aB2, cfg, inv, step, false)
		}
		res.EpochLoss = append(res.EpochLoss, epochLoss/float64(len(X)))
	}
	return res, nil
}

// adamUpdate applies one Adam step to params given accumulated batch
// gradients g (scaled by inv = 1/batchSize). Weight decay applies only to
// weights, not biases.
func adamUpdate(params, g []float64, st adamState, cfg TrainConfig, inv float64, step int, decay bool) {
	c1 := 1 - math.Pow(cfg.Beta1, float64(step))
	c2 := 1 - math.Pow(cfg.Beta2, float64(step))
	for i := range params {
		grad := g[i] * inv
		if decay {
			grad += cfg.L2 * params[i]
		}
		st.m[i] = cfg.Beta1*st.m[i] + (1-cfg.Beta1)*grad
		st.v[i] = cfg.Beta2*st.v[i] + (1-cfg.Beta2)*grad*grad
		mHat := st.m[i] / c1
		vHat := st.v[i] / c2
		params[i] -= cfg.LR * mHat / (math.Sqrt(vHat) + 1e-8)
	}
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// setStandardization computes per-feature mean and std over X and installs
// them on the network, flooring std at a small epsilon so constant
// features do not divide by zero.
func setStandardization(net *Network, X [][]float64) {
	in := net.In
	mean := make([]float64, in)
	for _, x := range X {
		for i := 0; i < in; i++ {
			mean[i] += x[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(X))
	}
	std := make([]float64, in)
	for _, x := range X {
		for i := 0; i < in; i++ {
			d := x[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(X)))
		if std[i] < 1e-8 {
			std[i] = 1
		}
	}
	copy(net.MeanIn, mean)
	copy(net.StdIn, std)
}

// Accuracy returns the fraction of inputs whose Predict class matches the
// label.
func Accuracy(net *Network, X [][]float64, Y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if c, _ := net.Predict(x); c == Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
