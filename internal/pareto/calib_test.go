package pareto

import (
	"testing"

	"adasense/internal/rng"
)

// TestCalibrationReport prints the full design-space table. Run with
//
//	go test ./internal/pareto/ -run Calibration -v
//
// to inspect the accuracy/current landscape when tuning model constants.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	res, err := Explore(Spec{TrainWindows: 1800, TestWindows: 1200}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		mark := " "
		if p.OnFront {
			mark = "*"
		}
		t.Logf("%s %-12s mode=%-9s current=%7.2f uA  accuracy=%6.2f%%",
			mark, p.Config.Name(), p.Mode, p.CurrentUA, 100*p.Accuracy)
	}
	t.Logf("front:")
	for _, p := range res.Front {
		t.Logf("  %-12s %7.2f uA  %6.2f%%", p.Config.Name(), p.CurrentUA, 100*p.Accuracy)
	}
}
