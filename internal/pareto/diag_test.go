package pareto

import (
	"testing"

	"adasense/internal/dataset"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// TestDiagPerConfig trains one network per configuration to expose the
// intrinsic separability of each design point, independent of the shared
// network's domain interference. Diagnostic; run with -run DiagPerConfig -v.
func TestDiagPerConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r := rng.New(99)
	for _, cfg := range sensor.TableI() {
		train, err := dataset.Generate(dataset.GenSpec{
			Configs: []sensor.Config{cfg}, Windows: 2400,
		}, r.Split(uint64(cfg.AvgWindow)*1000+uint64(cfg.FreqHz*10)))
		if err != nil {
			t.Fatal(err)
		}
		test, err := dataset.Generate(dataset.GenSpec{
			Configs: []sensor.Config{cfg}, Windows: 1800,
		}, r.Split(uint64(cfg.AvgWindow)*7777+uint64(cfg.FreqHz*10)))
		if err != nil {
			t.Fatal(err)
		}
		net := nn.New(train.FeatureSize, 32, synth.NumActivities, r.Split(3))
		X, Y := train.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 60}, r.Split(4)); err != nil {
			t.Fatal(err)
		}
		tx, ty := test.XY()
		t.Logf("%-12s per-config accuracy = %6.2f%%", cfg.Name(), 100*nn.Accuracy(net, tx, ty))
	}
}
