// Package pareto implements the paper's sensor-configuration design-space
// exploration (Section IV-B, Fig. 2): it measures recognition accuracy and
// current consumption for each of Table I's sixteen configurations and
// computes the Pareto frontier of the (accuracy ↑, current ↓) trade-off.
package pareto

import (
	"fmt"
	"sort"

	"adasense/internal/dataset"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

// Point is one explored configuration.
type Point struct {
	Config    sensor.Config
	Mode      sensor.Mode
	CurrentUA float64
	Accuracy  float64
	OnFront   bool
}

// Result is a completed exploration.
type Result struct {
	// Points holds every explored configuration in the input order.
	Points []Point
	// Front holds the non-dominated points sorted by descending current
	// (the order SPOT walks them).
	Front []Point
}

// FrontConfigs returns the frontier's configurations in descending current
// order.
func (r Result) FrontConfigs() []sensor.Config {
	out := make([]sensor.Config, len(r.Front))
	for i, p := range r.Front {
		out[i] = p.Config
	}
	return out
}

// Strategy selects how classifiers are trained during exploration.
type Strategy int

const (
	// PerConfig trains a dedicated classifier for each explored
	// configuration, so each point's accuracy reflects the configuration
	// itself rather than cross-configuration interference. This is the
	// natural design-space-exploration methodology (it is also what the
	// NK et al. baseline deploys).
	PerConfig Strategy = iota
	// Shared trains one classifier on data pooled across every explored
	// configuration — AdaSense's deployment strategy.
	Shared
)

// Spec parameterizes an exploration.
type Spec struct {
	// Configs to explore; defaults to Table I.
	Configs []sensor.Config
	// Strategy selects per-configuration (default) or shared training.
	Strategy Strategy
	// TrainWindows and TestWindows size the corpora. Under PerConfig they
	// are per configuration (defaults 2400 and 1800); under Shared they
	// are totals pooled across configurations (defaults 7300 and 2400).
	TrainWindows, TestWindows int
	// Replicas averages each configuration's accuracy over this many
	// independent train/test replications (default 1). Per-configuration
	// accuracies carry training-realization noise of ±1-2 % at moderate
	// corpus sizes; replication tightens the Fig. 2 landscape.
	Replicas int
	// Hidden is the classifier's hidden width (default 32).
	Hidden int
	// Train overrides training hyperparameters.
	Train nn.TrainConfig
	// Power is the current model (zero value selects the default).
	Power *sensor.PowerModel
	// Noise overrides the sensor noise model.
	Noise *sensor.NoiseModel
}

func (s Spec) withDefaults() Spec {
	if s.Configs == nil {
		s.Configs = sensor.TableI()
	}
	if s.TrainWindows == 0 {
		if s.Strategy == PerConfig {
			s.TrainWindows = 2400
		} else {
			s.TrainWindows = 7300
		}
	}
	if s.TestWindows == 0 {
		if s.Strategy == PerConfig {
			s.TestWindows = 1800
		} else {
			s.TestWindows = 2400
		}
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Hidden == 0 {
		s.Hidden = 32
	}
	if s.Power == nil {
		p := sensor.DefaultPowerModel()
		s.Power = &p
	}
	return s
}

// Explore measures recognition accuracy and current for every explored
// configuration, attaches the power model's current, and marks the Pareto
// frontier. Deterministic given r.
func Explore(spec Spec, r *rng.Source) (Result, error) {
	spec = spec.withDefaults()
	if len(spec.Configs) == 0 {
		return Result{}, fmt.Errorf("pareto: no configurations")
	}

	accuracies := make([]float64, len(spec.Configs))
	switch spec.Strategy {
	case Shared:
		if err := exploreShared(spec, r, accuracies); err != nil {
			return Result{}, err
		}
	case PerConfig:
		if err := explorePerConfig(spec, r, accuracies); err != nil {
			return Result{}, err
		}
	default:
		return Result{}, fmt.Errorf("pareto: unknown strategy %d", spec.Strategy)
	}

	res := Result{Points: make([]Point, len(spec.Configs))}
	for i, cfg := range spec.Configs {
		res.Points[i] = Point{
			Config:    cfg,
			Mode:      spec.Power.ModeFor(cfg),
			CurrentUA: spec.Power.CurrentUA(cfg),
			Accuracy:  accuracies[i],
		}
	}
	for _, i := range FrontIndices(res.Points) {
		res.Points[i].OnFront = true
	}
	for _, p := range res.Points {
		if p.OnFront {
			res.Front = append(res.Front, p)
		}
	}
	sort.Slice(res.Front, func(i, j int) bool {
		if res.Front[i].CurrentUA != res.Front[j].CurrentUA {
			return res.Front[i].CurrentUA > res.Front[j].CurrentUA
		}
		return res.Front[i].Accuracy > res.Front[j].Accuracy
	})
	return res, nil
}

// exploreShared trains one pooled classifier and scores it per config.
func exploreShared(spec Spec, r *rng.Source, accuracies []float64) error {
	train, err := dataset.Generate(dataset.GenSpec{
		Configs: spec.Configs,
		Windows: spec.TrainWindows,
		Noise:   spec.Noise,
	}, r.Split(1))
	if err != nil {
		return err
	}
	test, err := dataset.Generate(dataset.GenSpec{
		Configs: spec.Configs,
		Windows: spec.TestWindows,
		Noise:   spec.Noise,
	}, r.Split(2))
	if err != nil {
		return err
	}
	net := nn.New(train.FeatureSize, spec.Hidden, synth.NumActivities, r.Split(3))
	X, Y := train.XY()
	if _, err := nn.Train(net, X, Y, spec.Train, r.Split(4)); err != nil {
		return err
	}
	for i, cfg := range spec.Configs {
		sx, sy := test.FilterConfig(cfg).XY()
		accuracies[i] = nn.Accuracy(net, sx, sy)
	}
	return nil
}

// explorePerConfig trains and scores dedicated classifiers per config,
// averaging over spec.Replicas independent replications.
func explorePerConfig(spec Spec, r *rng.Source, accuracies []float64) error {
	for i, cfg := range spec.Configs {
		sum := 0.0
		for rep := 0; rep < spec.Replicas; rep++ {
			sub := r.Split(uint64(i)*100 + uint64(rep) + 10)
			train, err := dataset.Generate(dataset.GenSpec{
				Configs: []sensor.Config{cfg},
				Windows: spec.TrainWindows,
				Noise:   spec.Noise,
			}, sub.Split(1))
			if err != nil {
				return err
			}
			test, err := dataset.Generate(dataset.GenSpec{
				Configs: []sensor.Config{cfg},
				Windows: spec.TestWindows,
				Noise:   spec.Noise,
			}, sub.Split(2))
			if err != nil {
				return err
			}
			net := nn.New(train.FeatureSize, spec.Hidden, synth.NumActivities, sub.Split(3))
			X, Y := train.XY()
			if _, err := nn.Train(net, X, Y, spec.Train, sub.Split(4)); err != nil {
				return err
			}
			sx, sy := test.XY()
			sum += nn.Accuracy(net, sx, sy)
		}
		accuracies[i] = sum / float64(spec.Replicas)
	}
	return nil
}

// EpsilonNonDominated reports whether points[i] is ε-non-dominated: no
// other point has current ≤ its current while exceeding its accuracy by
// more than eps. With eps = 0 this reduces to ordinary non-domination.
//
// The reproduction's per-configuration accuracies carry sampling noise of
// a few tenths of a percent (finite synthetic test corpora, one training
// run), so experiment assertions about the paper's four chosen states use
// a small ε rather than strict domination.
func EpsilonNonDominated(points []Point, i int, eps float64) bool {
	p := points[i]
	for j, q := range points {
		if j == i {
			continue
		}
		if q.CurrentUA <= p.CurrentUA && q.Accuracy > p.Accuracy+eps {
			return false
		}
	}
	return true
}

// FrontIndices returns the indices of the non-dominated points: a point is
// dominated when another point has accuracy ≥ and current ≤, with at least
// one strict. Duplicate (accuracy, current) pairs keep their first
// occurrence only.
func FrontIndices(points []Point) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			better := q.Accuracy >= p.Accuracy && q.CurrentUA <= p.CurrentUA
			strict := q.Accuracy > p.Accuracy || q.CurrentUA < p.CurrentUA
			if better && strict {
				dominated = true
				break
			}
			// Tie-break exact duplicates by index.
			if better && !strict && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
