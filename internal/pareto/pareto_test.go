package pareto

import (
	"testing"

	"adasense/internal/rng"
	"adasense/internal/sensor"
)

func mkPoint(cur, acc float64) Point {
	return Point{CurrentUA: cur, Accuracy: acc}
}

func TestFrontIndicesBasic(t *testing.T) {
	points := []Point{
		mkPoint(100, 0.98), // front
		mkPoint(50, 0.95),  // front
		mkPoint(60, 0.94),  // dominated by (50, 0.95)
		mkPoint(10, 0.90),  // front
		mkPoint(10, 0.85),  // dominated by (10, 0.90)
	}
	got := FrontIndices(points)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("FrontIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FrontIndices = %v, want %v", got, want)
		}
	}
}

func TestFrontIndicesDuplicatesKeepFirst(t *testing.T) {
	points := []Point{mkPoint(50, 0.9), mkPoint(50, 0.9)}
	got := FrontIndices(points)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("duplicate handling wrong: %v", got)
	}
}

func TestFrontIndicesSinglePoint(t *testing.T) {
	got := FrontIndices([]Point{mkPoint(1, 0.5)})
	if len(got) != 1 {
		t.Fatalf("single point should be on front: %v", got)
	}
}

func TestFrontAllOnDiagonal(t *testing.T) {
	// Strictly increasing accuracy with current: everything on the front.
	var points []Point
	for i := 0; i < 10; i++ {
		points = append(points, mkPoint(float64(10+i*10), 0.80+float64(i)*0.01))
	}
	if got := FrontIndices(points); len(got) != 10 {
		t.Fatalf("diagonal front size = %d, want 10", len(got))
	}
}

func TestEpsilonNonDominated(t *testing.T) {
	points := []Point{
		mkPoint(50, 0.960),
		mkPoint(40, 0.964), // beats point 0 by 0.4 % at lower current
	}
	if EpsilonNonDominated(points, 0, 0) {
		t.Fatal("point 0 should be strictly dominated")
	}
	if !EpsilonNonDominated(points, 0, 0.01) {
		t.Fatal("point 0 should survive ε=1 %")
	}
	if !EpsilonNonDominated(points, 1, 0) {
		t.Fatal("point 1 should be non-dominated")
	}
}

// TestExploreShape runs a reduced exploration and asserts the qualitative
// properties of the paper's Fig. 2 that the reproduction targets.
func TestExploreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is seconds-long; skipped in -short mode")
	}
	res, err := Explore(Spec{TrainWindows: 2000, TestWindows: 1500, Replicas: 2}, rng.New(20260612))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Fatalf("explored %d points, want 16", len(res.Points))
	}
	byName := map[string]Point{}
	idxByName := map[string]int{}
	for i, p := range res.Points {
		byName[p.Config.Name()] = p
		idxByName[p.Config.Name()] = i
	}

	// All accuracies in a plausible recognition band.
	for _, p := range res.Points {
		if p.Accuracy < 0.80 || p.Accuracy > 0.999 {
			t.Errorf("%s accuracy %.3f outside [0.80, 0.999]", p.Config.Name(), p.Accuracy)
		}
	}

	// The top configuration is (near-)best: nothing beats F100_A128 by
	// more than the two-replica noise floor (~1.5 %).
	top := byName["F100_A128"]
	for _, p := range res.Points {
		if p.Accuracy > top.Accuracy+0.015 {
			t.Errorf("%s accuracy %.3f exceeds F100_A128 %.3f by more than 1.5 %%",
				p.Config.Name(), p.Accuracy, top.Accuracy)
		}
	}

	// The paper's four SPOT states are ε-non-dominated.
	for _, cfg := range sensor.ParetoStates() {
		if !EpsilonNonDominated(res.Points, idxByName[cfg.Name()], 0.015) {
			t.Errorf("paper state %s is ε-dominated", cfg.Name())
		}
	}

	// The paper's dominance example: F6.25_A128 is strictly dominated.
	if EpsilonNonDominated(res.Points, idxByName["F6.25_A128"], 0) {
		t.Error("F6.25_A128 should be dominated (paper Fig. 2 example)")
	}

	// Rate trend: at the widest window, the slowest rate must recognize
	// worse than the fastest (aliasing + estimator variance).
	if byName["F6.25_A128"].Accuracy >= byName["F100_A128"].Accuracy {
		t.Error("accuracy should increase with rate at A128")
	}

	// Currents must span the normal-mode ceiling down to a deep-low-power
	// floor (paper: ~180 down to tens of µA).
	if top.CurrentUA != 180 {
		t.Errorf("F100_A128 current = %v, want 180 (normal mode)", top.CurrentUA)
	}
	if floor := byName["F6.25_A8"].CurrentUA; floor > 15 {
		t.Errorf("F6.25_A8 current = %v, want < 15 µA", floor)
	}

	// The frontier must contain at least the extremes and be sorted by
	// descending current.
	if len(res.Front) < 3 {
		t.Fatalf("front has only %d points", len(res.Front))
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].CurrentUA > res.Front[i-1].CurrentUA {
			t.Fatal("front not sorted by descending current")
		}
		if res.Front[i].Accuracy > res.Front[i-1].Accuracy {
			t.Fatal("front accuracy should not increase as current drops")
		}
	}
	// FrontConfigs mirrors Front.
	cfgs := res.FrontConfigs()
	if len(cfgs) != len(res.Front) {
		t.Fatal("FrontConfigs length mismatch")
	}
}
