// Package ratelimit provides the gateway's admission throttle: a
// sharded token-bucket limiter with one lazily created bucket per device
// key plus an optional global bucket shared by all traffic.
//
// The limiter is deliberately allocation-light: a key's bucket is
// allocated once on its first request and then reused, the per-shard
// maps are guarded by independent mutexes (FNV-1a sharding, the same
// scheme as the session registry), and the decision path performs no
// allocation at all. Time comes from an injectable clock, so refill is
// deterministically testable with a fake clock; production passes
// time.Now.
//
// Buckets refill continuously at Rate tokens per second up to Burst and
// every request costs one token, so Burst bounds the size of a traffic
// spike and Rate the sustained throughput. A fresh bucket starts full —
// a device's first contact is never throttled below its burst
// allowance.
package ratelimit

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies the limiter's notion of now.
type Clock func() time.Time

// Limits configures a limiter. A non-positive rate disables that tier:
// zero DeviceRate means no per-key limiting, zero GlobalRate no global
// cap. Whenever a rate is positive the matching burst must be at least 1.
type Limits struct {
	// DeviceRate is the sustained per-key allowance in tokens per
	// second; DeviceBurst is the bucket depth (max spike).
	DeviceRate  float64
	DeviceBurst int
	// GlobalRate and GlobalBurst shape the single bucket every request
	// shares, regardless of key.
	GlobalRate  float64
	GlobalBurst int
}

func (l Limits) validate() error {
	if l.DeviceRate > 0 && l.DeviceBurst < 1 {
		return fmt.Errorf("ratelimit: device burst %d must be >= 1 when a device rate is set", l.DeviceBurst)
	}
	if l.GlobalRate > 0 && l.GlobalBurst < 1 {
		return fmt.Errorf("ratelimit: global burst %d must be >= 1 when a global rate is set", l.GlobalBurst)
	}
	return nil
}

// Decision is the outcome of one admission check.
type Decision int

const (
	// Allowed admits the request.
	Allowed Decision = iota
	// DeniedGlobal rejects it at the shared global bucket.
	DeniedGlobal
	// DeniedDevice rejects it at the key's own bucket.
	DeniedDevice
)

// OK reports whether the decision admits the request.
func (d Decision) OK() bool { return d == Allowed }

// String names the decision for logs and errors.
func (d Decision) String() string {
	switch d {
	case Allowed:
		return "allowed"
	case DeniedGlobal:
		return "denied-global"
	case DeniedDevice:
		return "denied-device"
	}
	return fmt.Sprintf("ratelimit.Decision(%d)", int(d))
}

// Option configures a Limiter.
type Option func(*options)

type options struct {
	shards int
	now    Clock
}

// WithShards sets the shard count (rounded up to a power of two,
// default 16).
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithClock injects the time source (default time.Now).
func WithClock(c Clock) Option { return func(o *options) { o.now = c } }

// bucket is one token bucket. last is the clock reading of the previous
// refill in unix nanoseconds; it doubles as the idle timestamp Prune
// inspects.
type bucket struct {
	tokens float64
	last   int64
}

// take refills the bucket to now and consumes one token if available.
// The refill anchor only moves forward: when the clock steps backward
// (an NTP correction under the real clock), the bucket neither refills
// nor rewinds its anchor, so the stepped-over interval cannot be
// credited twice.
func (b *bucket) take(now int64, rate, burst float64) bool {
	if dt := float64(now-b.last) / float64(time.Second); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

type shard struct {
	mu sync.Mutex
	m  map[string]*bucket
}

// Limiter is a sharded per-key token-bucket limiter with an optional
// global bucket. It is safe for concurrent use by any number of
// goroutines.
type Limiter struct {
	limits Limits
	shards []shard
	mask   uint32
	now    Clock

	globalMu sync.Mutex
	global   bucket
}

// New builds a limiter enforcing the given limits.
func New(limits Limits, opts ...Option) (*Limiter, error) {
	if err := limits.validate(); err != nil {
		return nil, err
	}
	o := options{shards: 16, now: time.Now}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards <= 0 {
		return nil, fmt.Errorf("ratelimit: non-positive shard count %d", o.shards)
	}
	n := 1
	for n < o.shards {
		n <<= 1
	}
	l := &Limiter{
		limits: limits,
		shards: make([]shard, n),
		mask:   uint32(n - 1),
		now:    o.now,
	}
	for i := range l.shards {
		l.shards[i].m = make(map[string]*bucket)
	}
	// The global bucket starts full at its burst depth.
	l.global = bucket{tokens: float64(limits.GlobalBurst), last: l.now().UnixNano()}
	return l, nil
}

// fnv1a is the 32-bit FNV-1a hash (inlined to keep Allow allocation-free).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// AllowGlobal consumes one token from the global bucket only — the check
// for keyless traffic such as one-shot classification. With no global
// rate configured it always admits.
func (l *Limiter) AllowGlobal() Decision {
	if l.limits.GlobalRate <= 0 {
		return Allowed
	}
	now := l.now().UnixNano()
	l.globalMu.Lock()
	ok := l.global.take(now, l.limits.GlobalRate, float64(l.limits.GlobalBurst))
	l.globalMu.Unlock()
	if !ok {
		return DeniedGlobal
	}
	return Allowed
}

// Allow consumes one token for the keyed request: first from the global
// bucket, then from key's own bucket (each only if its tier is
// configured). A request denied at the key's bucket has already spent
// its global token — global accounting charges offered load, not
// admitted load, so a flooding device cannot make the global bucket
// under-count.
func (l *Limiter) Allow(key string) Decision {
	if d := l.AllowGlobal(); !d.OK() {
		return d
	}
	if l.limits.DeviceRate <= 0 {
		return Allowed
	}
	now := l.now().UnixNano()
	s := &l.shards[fnv1a(key)&l.mask]
	s.mu.Lock()
	b, ok := s.m[key]
	if !ok {
		b = &bucket{tokens: float64(l.limits.DeviceBurst), last: now}
		s.m[key] = b
	}
	admitted := b.take(now, l.limits.DeviceRate, float64(l.limits.DeviceBurst))
	s.mu.Unlock()
	if !admitted {
		return DeniedDevice
	}
	return Allowed
}

// Len returns the number of live per-key buckets.
func (l *Limiter) Len() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Prune drops per-key buckets idle for at least maxIdle, returning how
// many it removed. Removal is semantically invisible: a bucket is only
// dropped once it has also been idle long enough to have refilled to its
// full burst, so the key's next request sees exactly the fresh-bucket
// state it would have seen anyway. Callers run Prune from their idle
// sweep so a churning fleet's dead keys do not accumulate.
func (l *Limiter) Prune(maxIdle time.Duration) int {
	if maxIdle < 0 {
		maxIdle = 0
	}
	if l.limits.DeviceRate > 0 {
		// Time for an empty bucket to refill completely.
		full := time.Duration(float64(l.limits.DeviceBurst) / l.limits.DeviceRate * float64(time.Second))
		if full > maxIdle {
			maxIdle = full
		}
	}
	deadline := l.now().Add(-maxIdle).UnixNano()
	removed := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for k, b := range s.m {
			if b.last <= deadline {
				delete(s.m, k)
				removed++
			}
		}
		s.mu.Unlock()
	}
	return removed
}
