package ratelimit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(t *testing.T, limits Limits) (*Limiter, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	l, err := New(limits, WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	return l, clk
}

func TestValidation(t *testing.T) {
	for _, limits := range []Limits{
		{DeviceRate: 1},                                // missing device burst
		{GlobalRate: 1},                                // missing global burst
		{DeviceRate: 1, DeviceBurst: -1},               // negative burst
		{DeviceRate: 1, DeviceBurst: 0, GlobalRate: 0}, // zero burst
	} {
		if _, err := New(limits); err == nil {
			t.Errorf("New(%+v) accepted", limits)
		}
	}
	if _, err := New(Limits{DeviceRate: 1, DeviceBurst: 1}, WithShards(0)); err == nil {
		t.Error("zero shard count accepted")
	}
	// A negative rate disables its tier, exactly like zero.
	l, err := New(Limits{DeviceRate: -1, GlobalRate: -2})
	if err != nil {
		t.Fatalf("negative (disabled) rates rejected: %v", err)
	}
	for i := 0; i < 100; i++ {
		if d := l.Allow("dev"); !d.OK() {
			t.Fatalf("negative-rate limiter denied request %d: %v", i, d)
		}
	}
}

func TestUnlimitedByDefault(t *testing.T) {
	l, _ := newTestLimiter(t, Limits{})
	for i := 0; i < 1000; i++ {
		if d := l.Allow("dev"); !d.OK() {
			t.Fatalf("unconfigured limiter denied request %d: %v", i, d)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("unconfigured limiter grew %d buckets", l.Len())
	}
}

func TestDeviceBurstAndRefill(t *testing.T) {
	l, clk := newTestLimiter(t, Limits{DeviceRate: 2, DeviceBurst: 3})

	// A fresh key gets its full burst, then is denied.
	for i := 0; i < 3; i++ {
		if d := l.Allow("a"); !d.OK() {
			t.Fatalf("burst request %d denied: %v", i, d)
		}
	}
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("over-burst request = %v, want DeniedDevice", d)
	}

	// Keys are independent.
	if d := l.Allow("b"); !d.OK() {
		t.Fatalf("independent key denied: %v", d)
	}

	// 1 s at 2 tokens/s refills 2 tokens, not the full burst.
	clk.Advance(time.Second)
	for i := 0; i < 2; i++ {
		if d := l.Allow("a"); !d.OK() {
			t.Fatalf("post-refill request %d denied: %v", i, d)
		}
	}
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("request past refill allowance = %v, want DeniedDevice", d)
	}

	// Refill caps at the burst depth even after a long idle gap.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if d := l.Allow("a"); !d.OK() {
			t.Fatalf("post-idle request %d denied: %v", i, d)
		}
	}
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("idle refill exceeded burst: %v", d)
	}
}

// TestClockRewindDoesNotRecredit steps the clock backward (an NTP
// correction under the real clock): the stepped-over interval must not
// refill the bucket twice.
func TestClockRewindDoesNotRecredit(t *testing.T) {
	l, clk := newTestLimiter(t, Limits{DeviceRate: 1, DeviceBurst: 2})
	for i := 0; i < 2; i++ {
		if d := l.Allow("a"); !d.OK() {
			t.Fatalf("burst request %d denied: %v", i, d)
		}
	}
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("exhausted bucket admitted: %v", d)
	}

	// Step back 10 s: no refill, and the anchor must not rewind.
	clk.Advance(-10 * time.Second)
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("rewound clock admitted: %v", d)
	}
	// Step forward to the original instant: the interval was already
	// spent once, so still empty.
	clk.Advance(10 * time.Second)
	if d := l.Allow("a"); d != DeniedDevice {
		t.Fatalf("re-crossed interval re-credited the bucket: %v", d)
	}
	// Genuinely new time refills as usual.
	clk.Advance(time.Second)
	if d := l.Allow("a"); !d.OK() {
		t.Fatalf("post-rewind refill denied: %v", d)
	}
}

func TestGlobalBucket(t *testing.T) {
	l, clk := newTestLimiter(t, Limits{GlobalRate: 1, GlobalBurst: 2})

	// The global bucket spans keys and keyless traffic.
	if d := l.Allow("a"); !d.OK() {
		t.Fatal(d)
	}
	if d := l.AllowGlobal(); !d.OK() {
		t.Fatal(d)
	}
	if d := l.Allow("b"); d != DeniedGlobal {
		t.Fatalf("over-global request = %v, want DeniedGlobal", d)
	}
	if d := l.AllowGlobal(); d != DeniedGlobal {
		t.Fatalf("keyless over-global request = %v, want DeniedGlobal", d)
	}

	clk.Advance(time.Second)
	if d := l.Allow("c"); !d.OK() {
		t.Fatalf("post-refill global request denied: %v", d)
	}
}

// TestGlobalChargesOfferedLoad pins the documented contract: a request
// denied at its device bucket has still consumed its global token.
func TestGlobalChargesOfferedLoad(t *testing.T) {
	l, _ := newTestLimiter(t, Limits{
		DeviceRate: 1, DeviceBurst: 1,
		GlobalRate: 1, GlobalBurst: 3,
	})
	if d := l.Allow("flood"); !d.OK() {
		t.Fatal(d)
	}
	if d := l.Allow("flood"); d != DeniedDevice {
		t.Fatalf("second flood request = %v, want DeniedDevice", d)
	}
	// Burst 3: one admitted + one denied-at-device leaves one global token.
	if d := l.Allow("victim"); !d.OK() {
		t.Fatalf("victim request = %v, want Allowed", d)
	}
	if d := l.Allow("other"); d != DeniedGlobal {
		t.Fatalf("fourth request = %v, want DeniedGlobal", d)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Allowed:      "allowed",
		DeniedGlobal: "denied-global",
		DeniedDevice: "denied-device",
		Decision(9):  "ratelimit.Decision(9)",
	} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestPrune(t *testing.T) {
	l, clk := newTestLimiter(t, Limits{DeviceRate: 1, DeviceBurst: 5})
	for i := 0; i < 10; i++ {
		l.Allow(fmt.Sprintf("dev-%d", i))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}

	// Too soon: buckets have not refilled to full burst yet (5 s at
	// 1 token/s), so pruning would be observable and must not happen.
	clk.Advance(2 * time.Second)
	if n := l.Prune(time.Second); n != 0 {
		t.Fatalf("early Prune removed %d buckets", n)
	}

	// Keep one key active; everything else is stale past both the idle
	// threshold and the refill horizon.
	clk.Advance(time.Hour)
	l.Allow("dev-0")
	if n := l.Prune(time.Minute); n != 9 {
		t.Fatalf("Prune removed %d buckets, want 9", n)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after prune = %d, want 1", l.Len())
	}

	// The pruned key's next request sees a fresh full bucket.
	clk.Advance(time.Hour)
	for i := 0; i < 5; i++ {
		if d := l.Allow("dev-3"); !d.OK() {
			t.Fatalf("post-prune burst request %d denied: %v", i, d)
		}
	}
}

// TestConcurrentAllow hammers the limiter from many goroutines under a
// real clock; run with -race. The total admitted count cannot exceed the
// per-key burst plus the refill over the test's (tiny) duration.
func TestConcurrentAllow(t *testing.T) {
	l, err := New(Limits{DeviceRate: 10, DeviceBurst: 50, GlobalRate: 1e6, GlobalBurst: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, attempts = 8, 100
	var admitted [goroutines]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				key := fmt.Sprintf("dev-%d", i%4)
				if l.Allow(key).OK() {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	// 4 keys × 50 burst plus a generous refill margin for test runtime.
	if total == 0 || total > 4*50+100 {
		t.Fatalf("admitted %d of %d, outside plausible range", total, goroutines*attempts)
	}
}
