// Package registry provides the gateway's session table: a sharded,
// capacity-capped map from session id to live session with idle-TTL
// eviction.
//
// The registry is deliberately mechanism, not policy: it stores opaque
// values, tracks a last-activity timestamp per entry, and evicts on
// demand when asked. Time comes from an injectable clock, so eviction is
// deterministically testable with a fake clock and the production
// gateway can simply pass time.Now.
//
// Sharding bounds lock contention under many concurrent devices: ids are
// FNV-1a-hashed onto independently locked shards, so opens, lookups and
// touches on different shards never serialize, and the capacity cap is a
// single shared atomic rather than a global lock.
package registry

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors returned by Put.
var (
	// ErrDuplicate reports that the id is already registered.
	ErrDuplicate = errors.New("registry: duplicate id")
	// ErrFull reports that the registry is at its capacity cap.
	ErrFull = errors.New("registry: at capacity")
)

// Clock supplies the registry's notion of now.
type Clock func() time.Time

// Registry is a sharded id → value table with last-activity tracking.
// It is safe for concurrent use by any number of goroutines.
type Registry[T comparable] struct {
	shards []shard[T]
	mask   uint32
	cap    int64 // 0 = unlimited
	count  atomic.Int64
	now    Clock
}

type shard[T comparable] struct {
	mu sync.RWMutex
	m  map[string]*entry[T]
}

type entry[T comparable] struct {
	val      T
	lastSeen atomic.Int64 // clock reading, unix nanoseconds
}

// Option configures a Registry.
type Option func(*options)

type options struct {
	shards int
	cap    int64
	now    Clock
}

// WithShards sets the shard count (rounded up to a power of two,
// default 16).
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithCapacity caps the number of registered entries; Put returns ErrFull
// beyond it. Zero (the default) means unlimited.
func WithCapacity(n int) Option { return func(o *options) { o.cap = int64(n) } }

// WithClock injects the time source (default time.Now).
func WithClock(c Clock) Option { return func(o *options) { o.now = c } }

// New builds an empty registry.
func New[T comparable](opts ...Option) *Registry[T] {
	o := options{shards: 16, now: time.Now}
	for _, opt := range opts {
		opt(&o)
	}
	n := 1
	for n < o.shards {
		n <<= 1
	}
	r := &Registry[T]{
		shards: make([]shard[T], n),
		mask:   uint32(n - 1),
		cap:    o.cap,
		now:    o.now,
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*entry[T])
	}
	return r
}

// fnv1a is the 32-bit FNV-1a hash (inlined to keep Get allocation-free).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (r *Registry[T]) shard(id string) *shard[T] {
	return &r.shards[fnv1a(id)&r.mask]
}

// Put registers v under id. It returns ErrDuplicate if the id is taken
// and ErrFull if the registry is at capacity; an already-registered id
// reports ErrDuplicate even at capacity.
func (r *Registry[T]) Put(id string, v T) error {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; ok {
		return ErrDuplicate
	}
	// Reserve a slot with the shared atomic, giving it back if over the
	// cap. This keeps the cap exact without a global lock.
	if r.count.Add(1) > r.cap && r.cap > 0 {
		r.count.Add(-1)
		return ErrFull
	}
	e := &entry[T]{val: v}
	e.lastSeen.Store(r.now().UnixNano())
	s.m[id] = e
	return nil
}

// Get returns the value registered under id. It does not refresh the
// entry's idle timer; use Touch for that.
func (r *Registry[T]) Get(id string) (T, bool) {
	s := r.shard(id)
	s.mu.RLock()
	e, ok := s.m[id]
	s.mu.RUnlock()
	if !ok {
		var zero T
		return zero, false
	}
	return e.val, true
}

// Touch refreshes id's idle timer, reporting whether the id is
// registered. The store happens under the shard's read lock so that a
// successful Touch is ordered against the write-locked eviction scan —
// an entry refreshed by Touch cannot be evicted with its stale
// timestamp.
func (r *Registry[T]) Touch(id string) bool {
	s := r.shard(id)
	s.mu.RLock()
	e, ok := s.m[id]
	if ok {
		e.lastSeen.Store(r.now().UnixNano())
	}
	s.mu.RUnlock()
	return ok
}

// Remove unregisters id and returns the value it held.
func (r *Registry[T]) Remove(id string) (T, bool) {
	s := r.shard(id)
	s.mu.Lock()
	e, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if !ok {
		var zero T
		return zero, false
	}
	r.count.Add(-1)
	return e.val, true
}

// CompareAndRemove unregisters id only if it still maps to v, reporting
// whether it did. It lets an owner tear down its own registration without
// racing a concurrent evict-and-reopen: if the id was evicted and reused
// by a new value, the new registration is left untouched.
func (r *Registry[T]) CompareAndRemove(id string, v T) bool {
	s := r.shard(id)
	s.mu.Lock()
	e, ok := s.m[id]
	if ok && e.val == v {
		delete(s.m, id)
		s.mu.Unlock()
		r.count.Add(-1)
		return true
	}
	s.mu.Unlock()
	return false
}

// Len returns the number of registered entries.
func (r *Registry[T]) Len() int { return int(r.count.Load()) }

// Range calls f for every registered entry until f returns false. Each
// shard is snapshotted under its read lock and f runs outside all locks,
// so f may freely call back into the registry (Remove, Touch, Put) —
// the price is the usual weak consistency: entries added or removed
// concurrently with the walk may or may not be visited.
func (r *Registry[T]) Range(f func(id string, v T) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		ids := make([]string, 0, len(s.m))
		vals := make([]T, 0, len(s.m))
		for id, e := range s.m {
			ids = append(ids, id)
			vals = append(vals, e.val)
		}
		s.mu.RUnlock()
		for j, id := range ids {
			if !f(id, vals[j]) {
				return
			}
		}
	}
}

// Evicted is one entry removed by EvictIdle.
type Evicted[T comparable] struct {
	ID  string
	Val T
}

// EvictIdle removes every entry whose idle time is ttl or more — that is,
// whose last activity was at or before now-ttl by the registry's clock —
// and returns the removed entries. A non-positive ttl evicts nothing.
func (r *Registry[T]) EvictIdle(ttl time.Duration) []Evicted[T] {
	if ttl <= 0 {
		return nil
	}
	deadline := r.now().Add(-ttl).UnixNano()
	var out []Evicted[T]
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for id, e := range s.m {
			if e.lastSeen.Load() <= deadline {
				delete(s.m, id)
				r.count.Add(-1)
				out = append(out, Evicted[T]{ID: id, Val: e.val})
			}
		}
		s.mu.Unlock()
	}
	return out
}
