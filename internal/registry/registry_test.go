package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for deterministic eviction
// tests. It is safe for concurrent use.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestPutGetRemove(t *testing.T) {
	r := New[int]()
	if err := r.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("a", 2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Put = %v, want ErrDuplicate", err)
	}
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get found a missing id")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if v, ok := r.Remove("a"); !ok || v != 1 {
		t.Fatalf("Remove(a) = %v, %v", v, ok)
	}
	if _, ok := r.Remove("a"); ok {
		t.Fatal("second Remove succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
}

func TestCapacityCap(t *testing.T) {
	r := New[int](WithCapacity(2), WithShards(4))
	if err := r.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("c", 3); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity Put = %v, want ErrFull", err)
	}
	// A rejected duplicate must not leak a capacity slot.
	if err := r.Put("a", 9); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Put = %v", err)
	}
	r.Remove("a")
	if err := r.Put("c", 3); err != nil {
		t.Fatalf("Put after Remove = %v, capacity slot leaked", err)
	}
}

func TestDeterministicIdleEviction(t *testing.T) {
	clk := newFakeClock()
	r := New[string](WithClock(clk.Now))

	r.Put("old", "v-old")
	clk.Advance(30 * time.Second)
	r.Put("mid", "v-mid")
	clk.Advance(30 * time.Second)
	r.Put("new", "v-new")

	// now = t+60: old idle 60 s, mid idle 30 s, new idle 0 s.
	// A 60 s TTL evicts exactly the entry idle for the full TTL.
	ev := r.EvictIdle(60 * time.Second)
	if len(ev) != 1 || ev[0].ID != "old" || ev[0].Val != "v-old" {
		t.Fatalf("EvictIdle(60s) = %+v, want [old]", ev)
	}

	// Touching mid resets its timer; 15 s later a 30 s TTL spares it.
	clk.Advance(15 * time.Second)
	if !r.Touch("mid") {
		t.Fatal("Touch(mid) = false")
	}
	ev = r.EvictIdle(30 * time.Second)
	if len(ev) != 0 {
		t.Fatalf("EvictIdle(30s) after touch = %+v, want none", ev)
	}

	// 30 s later both remaining entries are stale.
	clk.Advance(30 * time.Second)
	ev = r.EvictIdle(30 * time.Second)
	ids := []string{}
	for _, e := range ev {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	if len(ids) != 2 || ids[0] != "mid" || ids[1] != "new" {
		t.Fatalf("final eviction = %v, want [mid new]", ids)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after full eviction", r.Len())
	}

	// Non-positive TTL is an explicit no-op.
	r.Put("x", "v")
	if ev := r.EvictIdle(0); ev != nil {
		t.Fatalf("EvictIdle(0) = %+v, want nil", ev)
	}
}

func TestCompareAndRemove(t *testing.T) {
	r := New[int]()
	r.Put("a", 1)
	if r.CompareAndRemove("a", 2) {
		t.Fatal("removed under a stale value")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("mismatched CompareAndRemove dropped the entry")
	}
	if !r.CompareAndRemove("a", 1) {
		t.Fatal("matching CompareAndRemove failed")
	}
	if r.CompareAndRemove("a", 1) {
		t.Fatal("second CompareAndRemove succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// TestConcurrentChurn drives opens, lookups, touches, removes and
// evictions from many goroutines at once; under -race this is the
// registry's safety proof, and the final count must balance.
func TestConcurrentChurn(t *testing.T) {
	clk := newFakeClock()
	r := New[int](WithShards(8), WithCapacity(64), WithClock(clk.Now))

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i%10)
				switch i % 5 {
				case 0:
					err := r.Put(id, i)
					if err != nil && !errors.Is(err, ErrDuplicate) && !errors.Is(err, ErrFull) {
						t.Error(err)
						return
					}
				case 1:
					r.Get(id)
				case 2:
					r.Touch(id)
				case 3:
					r.Remove(id)
				case 4:
					clk.Advance(time.Millisecond)
					r.EvictIdle(50 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()

	// Len must equal the number of ids Get can still see (every id the
	// workers ever touched is probed).
	n := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < 10; i++ {
			if _, ok := r.Get(fmt.Sprintf("w%d-%d", w, i)); ok {
				n++
			}
		}
	}
	if n != r.Len() {
		t.Fatalf("Len = %d but Get sees %d entries", r.Len(), n)
	}
	if r.Len() < 0 || r.Len() > 64 {
		t.Fatalf("Len = %d out of [0, capacity]", r.Len())
	}
}

func TestRange(t *testing.T) {
	r := New[int](WithShards(4))
	want := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4}
	for id, v := range want {
		if err := r.Put(id, v); err != nil {
			t.Fatal(err)
		}
	}

	// A full walk visits every entry exactly once.
	seen := map[string]int{}
	r.Range(func(id string, v int) bool {
		seen[id] = v
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range saw %v, want %v", seen, want)
	}
	for id, v := range want {
		if seen[id] != v {
			t.Fatalf("Range saw %s=%d, want %d", id, seen[id], v)
		}
	}

	// Returning false stops the walk.
	calls := 0
	r.Range(func(string, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early-stop Range made %d calls, want 1", calls)
	}

	// The callback runs outside the shard locks, so it may mutate the
	// registry mid-walk without deadlocking — the Drain sweep relies on
	// this.
	r.Range(func(id string, _ int) bool {
		r.Remove(id)
		return true
	})
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing every entry mid-walk", r.Len())
	}
}
