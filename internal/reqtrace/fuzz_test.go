package reqtrace

import (
	"regexp"
	"strings"
	"testing"
)

// validIDRef is the reference grammar for wire trace ids: 1–64
// lowercase-hex characters, nothing else.
var validIDRef = regexp.MustCompile(`^[0-9a-f]{1,64}$`)

// FuzzValidID cross-checks the hand-rolled hot-path validator against
// the reference regexp: ValidID screens hostile inherited trace ids out
// of logs and JSON, so an acceptance disagreement is an injection hole
// and a rejection disagreement breaks trace continuity across hops.
func FuzzValidID(f *testing.F) {
	f.Add("bc8d4d9ae54f1779")
	f.Add(NewID())
	f.Add(strings.Repeat("f", 64))
	f.Add(strings.Repeat("f", 65))
	f.Add("")
	f.Add("DEADBEEF")
	f.Add("0123456789abcdefg")
	f.Add("bc8d4d9a\n54f1779")
	f.Add("{\"inject\":1}")
	f.Add("café")

	f.Fuzz(func(t *testing.T, s string) {
		got := ValidID(s)
		if want := validIDRef.MatchString(s); got != want {
			t.Fatalf("ValidID(%q) = %v, reference grammar says %v", s, got, want)
		}
	})
}
