package reqtrace

import (
	"sync"
	"time"
)

// Record is one completed request as retained by the flight recorder:
// the trace identity, the route's outcome, and the per-stage breakdown.
type Record struct {
	ID       string        `json:"id"`
	Hop      int           `json:"hop"`
	Route    string        `json:"route"`
	Method   string        `json:"method"`
	Path     string        `json:"path"`
	Device   string        `json:"device,omitempty"`
	Status   int           `json:"status"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []Span        `json:"spans"`
}

// Recorder is the in-memory flight recorder: a ring of the last N
// completed request traces, plus a second ring that only admits slow or
// error requests so the interesting ones survive a burst of healthy
// traffic. Both rings overwrite oldest-first; nothing is ever dropped
// for being too interesting.
type Recorder struct {
	slowThresh time.Duration

	mu        sync.Mutex
	recent    []Record
	recentAt  int
	notable   []Record
	notableAt int
	total     uint64
}

// NewRecorder returns a recorder keeping the last n requests and, in
// the notable ring (n/4 slots, minimum 16), every request that was
// slower than slowThresh or ended in a 5xx status.
func NewRecorder(n int, slowThresh time.Duration) *Recorder {
	if n < 1 {
		n = 1
	}
	notable := n / 4
	if notable < 16 {
		notable = 16
	}
	return &Recorder{
		slowThresh: slowThresh,
		recent:     make([]Record, 0, n),
		notable:    make([]Record, 0, notable),
	}
}

// SlowThreshold returns the duration beyond which a request is retained
// in the notable ring.
func (rec *Recorder) SlowThreshold() time.Duration { return rec.slowThresh }

// Record retains one completed request.
func (rec *Recorder) Record(r Record) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.total++
	push(&rec.recent, &rec.recentAt, r)
	if r.Status >= 500 || (rec.slowThresh > 0 && r.Duration >= rec.slowThresh) {
		push(&rec.notable, &rec.notableAt, r)
	}
}

// push appends into the ring until it reaches capacity, then overwrites
// oldest-first.
func push(ring *[]Record, at *int, r Record) {
	if len(*ring) < cap(*ring) {
		*ring = append(*ring, r)
		return
	}
	(*ring)[*at] = r
	*at = (*at + 1) % cap(*ring)
}

// Snapshot is the recorder's queryable state: both rings ordered
// oldest-first, plus the all-time admitted count.
type Snapshot struct {
	Total   uint64   `json:"total_recorded"`
	Recent  []Record `json:"recent"`
	Notable []Record `json:"notable"`
}

// Snapshot copies the recorder's state. The rings are returned in
// arrival order.
func (rec *Recorder) Snapshot() Snapshot {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return Snapshot{
		Total:   rec.total,
		Recent:  unroll(rec.recent, rec.recentAt),
		Notable: unroll(rec.notable, rec.notableAt),
	}
}

// unroll copies a ring into arrival order: the slot at the overwrite
// cursor is the oldest once the ring has wrapped.
func unroll(ring []Record, at int) []Record {
	out := make([]Record, 0, len(ring))
	if len(ring) < cap(ring) {
		return append(out, ring...)
	}
	out = append(out, ring[at:]...)
	return append(out, ring[:at]...)
}
