// Package reqtrace carries a per-request distributed trace through the
// serving path: a trace id minted at ingress (or inherited from the
// X-Adasense-Trace header on a forwarded hop), a hop counter, and a
// flat list of named span timings accumulated as the request crosses
// auth, routing, the proxy hop, and the classification pipeline.
//
// A *Trace rides the request context. It is deliberately not a general
// tracing API: spans are a fixed-capacity slice under one mutex, traces
// are never sampled out, and export is the in-memory Recorder behind
// GET /v1/debug/requests — enough to answer "where did this request's
// time go, and on which replica" without an external collector.
//
// This package is distinct from internal/trace, which holds the
// paper's sensor time-series traces, not request traces.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// maxSpans bounds a single trace's span list; a serving request crosses
// a handful of stages, so hitting the cap means a loop — drop, don't grow.
const maxSpans = 32

// Span is one timed stage of a request: its name, when it started
// relative to the trace start, and how long it took.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace accumulates one request's identity and span timings. All
// methods are nil-safe: code instrumented with spans runs unchanged on
// paths with no trace in the context.
type Trace struct {
	// ID is the fleet-wide request id, hex, minted at first ingress.
	ID string
	// Hop counts proxy hops: 0 at the replica the client hit, 1 on
	// the replica a forward landed on.
	Hop int
	// Start is when this replica began handling the request.
	Start time.Time

	mu    sync.Mutex
	spans []Span
}

// New returns a trace with a freshly minted id, hop 0, started now.
func New() *Trace {
	return &Trace{ID: NewID(), Start: time.Now()}
}

// NewID mints a 16-hex-char random trace id.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed
		// fallback id is still a valid (if degenerate) trace.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span records a stage beginning now and returns the function that ends
// it. Use as: defer tr.Span("auth")(). Nil-safe.
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.mu.Lock()
		if len(t.spans) < maxSpans {
			t.spans = append(t.spans, Span{
				Name:  name,
				Start: start.Sub(t.Start),
				Dur:   time.Since(start),
			})
		}
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured stage — used by code that timed
// itself (the classify pipeline hook) rather than via Span. Nil-safe.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Start), Dur: dur})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type ctxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. Callers need
// not check for nil: every Trace method is nil-safe.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// ValidID reports whether s is a well-formed wire trace id: 1–64
// lowercase-hex characters. Inherited ids are validated before reuse so
// a hostile header can't inject log or JSON content.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
