package reqtrace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID() = %q, not a valid id", id)
		}
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q in 100 draws", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"ab12", "0000000000000000", "f"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false, want true", ok)
		}
	}
	bad := []string{"", "AB12", "xyz", "ab\n12", `ab"12`, string(make([]byte, 65))}
	for _, s := range bad {
		if ValidID(s) {
			t.Errorf("ValidID(%q) = true, want false", s)
		}
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New()
	end := tr.Span("auth")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("classify", time.Now(), 5*time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "auth" || spans[0].Dur < time.Millisecond {
		t.Errorf("auth span = %+v", spans[0])
	}
	if spans[1].Name != "classify" || spans[1].Dur != 5*time.Millisecond {
		t.Errorf("classify span = %+v", spans[1])
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Span("auth")() // must not panic
	tr.AddSpan("x", time.Now(), 0)
	if tr.Spans() != nil {
		t.Error("nil trace should have nil spans")
	}
}

func TestSpanCap(t *testing.T) {
	tr := New()
	for i := 0; i < maxSpans+10; i++ {
		tr.Span("s")()
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("got %d spans, want cap %d", got, maxSpans)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("trace lost in context round trip")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded %v", got)
	}
	// WithoutCancel must preserve the trace: the swap-replication
	// fan-out relies on it.
	if got := FromContext(context.WithoutCancel(ctx)); got != tr {
		t.Fatal("trace lost through WithoutCancel")
	}
}

func TestRecorderRings(t *testing.T) {
	rec := NewRecorder(4, 50*time.Millisecond)
	for i := 0; i < 6; i++ {
		rec.Record(Record{ID: string(rune('a' + i)), Status: 200, Duration: time.Millisecond})
	}
	s := rec.Snapshot()
	if s.Total != 6 {
		t.Errorf("total = %d, want 6", s.Total)
	}
	if len(s.Recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(s.Recent))
	}
	// Oldest-first after wrap: c d e f.
	if s.Recent[0].ID != "c" || s.Recent[3].ID != "f" {
		t.Errorf("recent order = %v", ids(s.Recent))
	}
	if len(s.Notable) != 0 {
		t.Errorf("healthy fast requests should not be notable: %v", ids(s.Notable))
	}

	rec.Record(Record{ID: "slow", Status: 200, Duration: time.Second})
	rec.Record(Record{ID: "err", Status: 502, Duration: time.Millisecond})
	s = rec.Snapshot()
	if len(s.Notable) != 2 || s.Notable[0].ID != "slow" || s.Notable[1].ID != "err" {
		t.Errorf("notable = %v, want [slow err]", ids(s.Notable))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(8, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.Record(Record{ID: "x", Status: 200})
				rec.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := rec.Snapshot().Total; got != 800 {
		t.Fatalf("total = %d, want 800", got)
	}
}

func ids(rs []Record) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}
