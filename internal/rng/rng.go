// Package rng provides deterministic, splittable pseudo-random streams.
//
// Every stochastic component in the repository (signal synthesis, sensor
// noise, dataset sampling, network initialization) draws from an rng.Source
// so that experiments are exactly reproducible from a single seed, and so
// that independent subsystems can be given independent sub-streams that do
// not perturb each other when one subsystem changes how many variates it
// consumes.
//
// The generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend. It is not cryptographically secure; it is a simulation PRNG.
package rng

import "math"

// Source is a deterministic pseudo-random stream.
//
// The zero value is not usable; construct with New or Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output.
// It is used only to expand seeds into full generator state.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot emit four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of the receiver's
// subsequent output. label distinguishes sibling splits taken at the same
// point of the parent stream.
func (r *Source) Split(label uint64) *Source {
	mix := r.Uint64() ^ (label * 0xd1342543de82ef95)
	return New(mix)
}

// Float64 returns a uniform variate in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits -> uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Norm returns a standard normal variate (Marsaglia polar method).
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormSigma returns a normal variate with mean mu and standard deviation
// sigma.
func (r *Source) NormSigma(mu, sigma float64) float64 {
	return mu + sigma*r.Norm()
}

// Exp returns an exponential variate with the given mean. It panics if
// mean <= 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(1-r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }
