package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 64 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestSplitStableUnderParentUse(t *testing.T) {
	// A child split at the same parent position must be identical
	// regardless of what the child itself is later used for.
	p1, p2 := New(9), New(9)
	a := p1.Split(3)
	b := p2.Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormSigma(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormSigma(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("NormSigma mean = %v, want ~5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~3", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(29)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		// quick generates huge magnitudes; clamp to a sane band.
		lo = math.Mod(lo, 1e6)
		hi = lo + 1 + math.Abs(math.Mod(hi, 1e6))
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit fraction = %v", frac)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}
