package rollout

import (
	"fmt"
	"testing"
	"time"
)

// TestCohortAssignmentDeterministic is the fleet-agreement contract
// behind replicated rollouts: cohort membership is a pure function of
// (device id, candidate hash, stage fraction), so independently
// constructed controllers — one per replica, never having exchanged a
// byte — must pin exactly the same devices to the canary at every
// stage. A single disagreement would let one replica serve a device
// from the canary while another serves it from the incumbent, and a
// handed-off session would flip engines mid-rollout.
func TestCohortAssignmentDeterministic(t *testing.T) {
	devices := make([]string, 500)
	for i := range devices {
		devices[i] = fmt.Sprintf("soak-dev-%03d", i)
	}
	cases := []struct {
		name      string
		candidate uint64
		stages    []float64
	}{
		{"default ladder", 0xdeadbeefcafef00d, DefaultStages()},
		{"fine first slice", 1, []float64{0.01, 0.5, 1}},
		{"two-step", ^uint64(0), []float64{0.25, 1}},
		{"single stage", 0x8d8973f554d14fc1, []float64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			cfg.Stages = tc.stages
			mk := func() *Controller {
				c, err := New(cfg, tc.candidate, time.Unix(0, 0))
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			// Three replicas' controllers, built independently.
			ctls := []*Controller{mk(), mk(), mk()}
			for stage := range tc.stages {
				now := time.Unix(int64(stage+1), 0)
				for _, c := range ctls {
					if stage > 0 && !c.Advance(stage, now, "test") {
						t.Fatalf("stage %d advance refused", stage)
					}
				}
				inCohort := 0
				for _, dev := range devices {
					want := ctls[0].InCohort(dev)
					for i, c := range ctls[1:] {
						if got := c.InCohort(dev); got != want {
							t.Fatalf("stage %d: controller %d disagrees on %s: %v vs %v",
								stage, i+1, dev, got, want)
						}
					}
					// The method is the pure function at the stage's
					// fraction — nothing hidden in controller state.
					if want != InCohort(dev, tc.candidate, tc.stages[stage]) {
						t.Fatalf("stage %d: InCohort method diverges from pure function for %s", stage, dev)
					}
					if want {
						inCohort++
					}
				}
				// Cohorts are nested in the fraction: every device in
				// this stage's slice stays in every later, larger slice.
				for _, dev := range devices {
					if InCohort(dev, tc.candidate, tc.stages[stage]) {
						for _, later := range tc.stages[stage:] {
							if !InCohort(dev, tc.candidate, later) {
								t.Fatalf("%s left the cohort as the fraction grew to %v", dev, later)
							}
						}
					}
				}
				// The slice size tracks the fraction (loose bounds — the
				// hash is uniform, not exact).
				frac := tc.stages[stage]
				lo, hi := int(frac*float64(len(devices))*0.5), int(frac*float64(len(devices))*1.5)+5
				if inCohort < lo || inCohort > hi {
					t.Fatalf("stage %d: %d of %d devices in a %.0f%% cohort (want %d..%d)",
						stage, inCohort, len(devices), frac*100, lo, hi)
				}
			}
		})
	}
}
