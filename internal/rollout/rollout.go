// Package rollout implements the control plane of staged (canary)
// model deployment: the stage machine, the deterministic ring-slice
// cohort math and the telemetry-gated promote/rollback decision — the
// paper's observe→evaluate→switch adaptive loop lifted from one
// device's sensor configuration to a fleet's serving model.
//
// A rollout stages one candidate model through cohorts of growing
// fractions (e.g. 5% → 25% → 100% of device ids). Cohort membership is
// a pure function of the device id, the candidate hash and the stage
// fraction — computed in the same hash space as the placement ring
// (see adasense/internal/hashring) — so every replica of a fleet
// agrees on who serves the canary with zero coordination traffic, and
// a device keeps its cohort assignment when a rebalance moves its
// session between replicas. Cohorts are nested: a device in the 5%
// slice is also in the 25% and 100% slices, so promoting a stage only
// ever adds devices to the canary, never flips one back.
//
// While a stage observes, both arms (canary and incumbent) accumulate
// health from live classification traffic: sample and error counts,
// mean classify confidence, the per-activity prediction distribution
// and the estimated sensor current of the configurations the model's
// adaptation picked. At the end of each observation window the gates
// compare canary against incumbent (or, when the incumbent arm is
// starved — at the 100% stage everyone serves the canary — against the
// last full incumbent window, the baseline): a canary within tolerance
// promotes to the next stage, a canary outside any tolerance rolls the
// whole fleet back.
//
// The Controller is the pure state machine: it records, evaluates and
// logs, but performs no service swaps or network calls — the gateway
// applies its verdicts and the cluster replicates the resulting stage
// transitions.
package rollout

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"adasense/internal/hashring"
	"adasense/internal/synth"
)

// State is the lifecycle state of one rollout.
type State int32

const (
	// Observing means a stage is collecting health samples.
	Observing State = iota
	// Completed means the final stage passed its gates and the canary
	// was promoted to incumbent.
	Completed
	// RolledBack means a gate failed (or an operator aborted) and every
	// device was returned to the incumbent.
	RolledBack
)

// String returns the state's wire name.
func (s State) String() string {
	switch s {
	case Observing:
		return "observing"
	case Completed:
		return "completed"
	case RolledBack:
		return "rolled_back"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Action is one stage-machine transition kind, replicated fleet-wide so
// all replicas agree on the current stage.
const (
	// ActionPromote advances the rollout to a later stage.
	ActionPromote = "promote"
	// ActionComplete promotes the canary to incumbent after the final
	// stage passed its gates.
	ActionComplete = "complete"
	// ActionRollback returns every device to the incumbent because a
	// health gate failed; the candidate hash is frozen.
	ActionRollback = "rollback"
	// ActionAbort is an operator-initiated rollback (DELETE
	// /v1/rollout); the candidate hash is not frozen.
	ActionAbort = "abort"
)

// Config parameterizes a rollout: the stage fractions, the observation
// window and the health-gate tolerances.
type Config struct {
	// Stages are the cohort fractions, strictly ascending in (0, 1],
	// ending at 1.0 (the full-fleet stage that a completed rollout
	// promotes from). Default: 5%, 25%, 100%.
	Stages []float64
	// Window is the minimum observation time per stage; a stage is
	// never judged younger than this.
	Window time.Duration
	// MinSamples is the minimum classification events each arm needs
	// before a stage can be judged, so one unlucky batch cannot promote
	// or roll back a fleet.
	MinSamples int
	// ConfidenceTolerance is how far the canary's mean classify
	// confidence may trail the incumbent's before the rollout fails.
	ConfidenceTolerance float64
	// ShiftTolerance caps the total-variation distance between the two
	// arms' per-activity prediction distributions (0 = identical, 1 =
	// disjoint); a retrain that silently re-labels the world fails here
	// even if it is confident about it.
	ShiftTolerance float64
	// ErrorTolerance is how far the canary's per-sample error rate may
	// exceed the incumbent's.
	ErrorTolerance float64
	// PowerTolerance is the fractional headroom on the canary's mean
	// estimated sensor current (0.10 = canary may draw 10% more);
	// a model whose adaptation stops descending the Pareto frontier
	// fails here.
	PowerTolerance float64
}

// DefaultStages is the default cohort ladder: 5% → 25% → 100%.
func DefaultStages() []float64 { return []float64{0.05, 0.25, 1} }

// Default returns the default rollout policy: the 5/25/100% ladder, a
// one-minute window, 200 samples per arm, 5 points of confidence, 20
// points of distribution shift, 2 points of error rate and 10% power
// headroom.
func Default() Config {
	return Config{
		Stages:              DefaultStages(),
		Window:              time.Minute,
		MinSamples:          200,
		ConfidenceTolerance: 0.05,
		ShiftTolerance:      0.20,
		ErrorTolerance:      0.02,
		PowerTolerance:      0.10,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("rollout: no stages")
	}
	prev := 0.0
	for i, f := range c.Stages {
		if f <= prev || f > 1 {
			return fmt.Errorf("rollout: stage %d fraction %v not strictly ascending in (0, 1]", i, f)
		}
		prev = f
	}
	if c.Stages[len(c.Stages)-1] != 1 {
		return fmt.Errorf("rollout: last stage fraction %v is not 1.0 (the rollout could never complete)", prev)
	}
	if c.Window <= 0 {
		return fmt.Errorf("rollout: non-positive window %v", c.Window)
	}
	if c.MinSamples <= 0 {
		return fmt.Errorf("rollout: non-positive min samples %d", c.MinSamples)
	}
	for _, tol := range []struct {
		name string
		v    float64
	}{
		{"confidence", c.ConfidenceTolerance},
		{"shift", c.ShiftTolerance},
		{"error", c.ErrorTolerance},
		{"power", c.PowerTolerance},
	} {
		if tol.v < 0 || math.IsNaN(tol.v) {
			return fmt.Errorf("rollout: negative %s tolerance %v", tol.name, tol.v)
		}
	}
	return nil
}

// Position maps a device id to its rollout coordinate in [0, 2^64) —
// the device's point in the same hash space the placement ring uses,
// remixed with the candidate hash so successive rollouts canary
// different slices of the fleet. It is a pure function: every replica
// computes the same coordinate for the same device and candidate.
func Position(device string, candidate uint64) uint64 {
	h := hashring.DefaultHash(device) ^ candidate
	// One more avalanche round so the XOR cannot leave the low bits
	// correlated between candidates.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// InCohort reports whether device is inside the leading `fraction` of
// the rollout hash space for this candidate. Cohorts are nested in the
// fraction: InCohort at 5% implies InCohort at 25%.
func InCohort(device string, candidate uint64, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	limit := uint64(fraction * float64(math.MaxUint64))
	return Position(device, candidate) < limit
}

// arm accumulates one serving arm's health window with atomic adds
// only, so the per-classification record path takes no lock. Fractional
// quantities are accumulated in fixed-point micro-units.
type arm struct {
	samples    atomic.Uint64
	errors     atomic.Uint64
	confMicro  atomic.Uint64 // Σ confidence × 1e6
	powerMicro atomic.Uint64 // Σ estimated µA × 1e6
	activities [synth.NumActivities]atomic.Uint64
}

func (a *arm) record(activity int, confidence, currentUA float64) {
	a.samples.Add(1)
	a.confMicro.Add(uint64(confidence * 1e6))
	a.powerMicro.Add(uint64(currentUA * 1e6))
	if activity >= 0 && activity < len(a.activities) {
		a.activities[activity].Add(1)
	}
}

// Health is a point-in-time snapshot of one arm's observation window.
type Health struct {
	// Samples is the number of classification events observed; Errors
	// is the number of failed pushes attributed to the arm.
	Samples uint64 `json:"samples"`
	Errors  uint64 `json:"errors"`
	// MeanConfidence is the mean softmax confidence of the window's
	// classifications (0 while empty).
	MeanConfidence float64 `json:"mean_confidence"`
	// MeanCurrentUA is the mean estimated sensor current of the
	// configurations in effect at each classification, in µA — the
	// power half of the paper's accuracy/power trade-off.
	MeanCurrentUA float64 `json:"mean_current_ua"`
	// Activities is the per-activity prediction count, indexed like
	// synth.Activity.
	Activities [synth.NumActivities]uint64 `json:"activities"`
}

// ErrorRate returns Errors / (Samples + Errors), or 0 while empty.
func (h Health) ErrorRate() float64 {
	total := h.Samples + h.Errors
	if total == 0 {
		return 0
	}
	return float64(h.Errors) / float64(total)
}

// Distribution returns the per-activity prediction distribution
// (sums to 1 when Samples > 0).
func (h Health) Distribution() [synth.NumActivities]float64 {
	var d [synth.NumActivities]float64
	var total uint64
	for _, n := range h.Activities {
		total += n
	}
	if total == 0 {
		return d
	}
	for i, n := range h.Activities {
		d[i] = float64(n) / float64(total)
	}
	return d
}

func (a *arm) snapshot() Health {
	h := Health{Samples: a.samples.Load(), Errors: a.errors.Load()}
	if h.Samples > 0 {
		h.MeanConfidence = float64(a.confMicro.Load()) / 1e6 / float64(h.Samples)
		h.MeanCurrentUA = float64(a.powerMicro.Load()) / 1e6 / float64(h.Samples)
	}
	for i := range a.activities {
		h.Activities[i] = a.activities[i].Load()
	}
	return h
}

// windowStats is one stage's pair of accumulating arms; stage
// transitions swap in a fresh pair atomically so a reset cannot tear.
type windowStats struct {
	canary    arm
	incumbent arm
}

// Deltas are the current gate readings of a stage: each is the
// quantity its tolerance bounds.
type Deltas struct {
	// ConfidenceLag is incumbent mean confidence minus canary mean
	// confidence (positive = canary worse).
	ConfidenceLag float64 `json:"confidence_lag"`
	// DistributionShift is the total-variation distance between the
	// arms' per-activity prediction distributions.
	DistributionShift float64 `json:"distribution_shift"`
	// ErrorRateExcess is canary error rate minus incumbent error rate.
	ErrorRateExcess float64 `json:"error_rate_excess"`
	// PowerExcess is the canary's fractional mean-current excess over
	// the incumbent (0.1 = 10% more).
	PowerExcess float64 `json:"power_excess"`
}

// compare computes the gate readings of canary vs reference.
func compare(canary, ref Health) Deltas {
	d := Deltas{
		ConfidenceLag:   ref.MeanConfidence - canary.MeanConfidence,
		ErrorRateExcess: canary.ErrorRate() - ref.ErrorRate(),
	}
	cd, rd := canary.Distribution(), ref.Distribution()
	tv := 0.0
	for i := range cd {
		tv += math.Abs(cd[i] - rd[i])
	}
	d.DistributionShift = tv / 2
	if ref.MeanCurrentUA > 0 {
		d.PowerExcess = canary.MeanCurrentUA/ref.MeanCurrentUA - 1
	}
	return d
}

// Verdict is one evaluation outcome: hold the stage, promote, or roll
// back, with the reason and readings behind it.
type Verdict struct {
	// Action is ActionPromote, ActionComplete, ActionRollback, or ""
	// to keep observing.
	Action string
	// Reason names the deciding gate (or what the stage is waiting
	// for).
	Reason string
	// Canary and Reference are the windows the verdict compared;
	// Deltas the gate readings.
	Canary, Reference Health
	Deltas            Deltas
}

// Decision is one logged stage-machine transition.
type Decision struct {
	At        time.Time `json:"at"`
	FromStage int       `json:"from_stage"`
	ToStage   int       `json:"to_stage"`
	Action    string    `json:"action"`
	Reason    string    `json:"reason"`
	Canary    Health    `json:"canary"`
	Reference Health    `json:"reference"`
	Deltas    Deltas    `json:"deltas"`
}

// Status is the externally visible snapshot of one rollout — the
// payload behind GET /v1/rollout.
type Status struct {
	// CandidateHash identifies the candidate container (FNV-1a over
	// its bytes, hex).
	CandidateHash string `json:"candidate_hash"`
	// State is observing / completed / rolled_back.
	State string `json:"state"`
	// Stage is the current stage index; Stages the configured cohort
	// fractions; Fraction the current cohort fraction.
	Stage    int       `json:"stage"`
	Stages   []float64 `json:"stages"`
	Fraction float64   `json:"fraction"`
	// StageStarted is when the current stage began observing.
	StageStarted time.Time `json:"stage_started"`
	// Canary and Incumbent are the current window's arm healths;
	// Baseline is the last full incumbent window (the reference once
	// the incumbent arm is starved at the 100% stage).
	Canary    Health  `json:"canary"`
	Incumbent Health  `json:"incumbent"`
	Baseline  *Health `json:"baseline,omitempty"`
	// Deltas are the current gate readings against the effective
	// reference window.
	Deltas Deltas `json:"deltas"`
	// Decisions is the stage-machine transition log, oldest first.
	Decisions []Decision `json:"decisions"`
}

// Controller is the stage machine of one rollout. Record and InCohort
// are safe for lock-free concurrent use on the serving path; Evaluate,
// Advance, Complete and Rollback serialize on an internal mutex. The
// Controller never touches services or the network — its owner applies
// the verdicts.
type Controller struct {
	cfg       Config
	candidate uint64

	stage      atomic.Int32
	state      atomic.Int32
	stageStart atomic.Int64 // UnixNano
	win        atomic.Pointer[windowStats]
	baseline   atomic.Pointer[Health]

	mu        sync.Mutex
	decisions []Decision
}

// New builds a controller for one candidate (identified by the hash of
// its container bytes) starting at stage 0 at time now.
func New(cfg Config, candidate uint64, now time.Time) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, candidate: candidate}
	c.win.Store(&windowStats{})
	c.stageStart.Store(now.UnixNano())
	return c, nil
}

// Candidate returns the candidate container hash.
func (c *Controller) Candidate() uint64 { return c.candidate }

// Config returns the rollout policy.
func (c *Controller) Config() Config { return c.cfg }

// State returns the lifecycle state.
func (c *Controller) State() State { return State(c.state.Load()) }

// Stage returns the current stage index.
func (c *Controller) Stage() int { return int(c.stage.Load()) }

// Fraction returns the current cohort fraction (1 after completion, 0
// after rollback — the slices a resolver must serve the canary to).
func (c *Controller) Fraction() float64 {
	switch c.State() {
	case Completed:
		return 1
	case RolledBack:
		return 0
	}
	return c.cfg.Stages[c.Stage()]
}

// InCohort reports whether device currently serves the canary: inside
// the stage's ring slice while observing, everyone after completion,
// no one after rollback.
func (c *Controller) InCohort(device string) bool {
	return InCohort(device, c.candidate, c.Fraction())
}

// Record adds one classification event to the canary or incumbent arm:
// the predicted activity, its confidence, and the estimated sensor
// current of the configuration in effect. Lock-free.
func (c *Controller) Record(canary bool, activity int, confidence, currentUA float64) {
	w := c.win.Load()
	if canary {
		w.canary.record(activity, confidence, currentUA)
	} else {
		w.incumbent.record(activity, confidence, currentUA)
	}
}

// RecordError attributes one failed push to an arm. Lock-free.
func (c *Controller) RecordError(canary bool) {
	w := c.win.Load()
	if canary {
		w.canary.errors.Add(1)
	} else {
		w.incumbent.errors.Add(1)
	}
}

// reference picks the window the canary is judged against: the live
// incumbent arm when it has enough samples, else the stored baseline
// (the incumbent arm is structurally starved at the 100% stage). The
// bool reports whether any qualified reference exists.
func (c *Controller) reference(incumbent Health) (Health, bool) {
	if incumbent.Samples >= uint64(c.cfg.MinSamples) {
		return incumbent, true
	}
	if b := c.baseline.Load(); b != nil && b.Samples >= uint64(c.cfg.MinSamples) {
		return *b, true
	}
	return Health{}, false
}

// Evaluate judges the current stage at time now without mutating it:
// an empty Action means keep observing. The caller applies a non-empty
// verdict through Advance, Complete or Rollback (typically after
// winning whatever serialization its serving layer needs).
func (c *Controller) Evaluate(now time.Time) Verdict {
	if c.State() != Observing {
		return Verdict{Reason: "rollout settled"}
	}
	w := c.win.Load()
	canary := w.canary.snapshot()
	incumbent := w.incumbent.snapshot()
	ref, ok := c.reference(incumbent)
	v := Verdict{Canary: canary, Reference: ref}
	if elapsed := now.UnixNano() - c.stageStart.Load(); elapsed < int64(c.cfg.Window) {
		v.Reason = fmt.Sprintf("observing: %v of %v window elapsed", time.Duration(elapsed).Round(time.Millisecond), c.cfg.Window)
		return v
	}
	if canary.Samples < uint64(c.cfg.MinSamples) {
		v.Reason = fmt.Sprintf("observing: canary has %d of %d samples", canary.Samples, c.cfg.MinSamples)
		return v
	}
	if !ok {
		v.Reason = fmt.Sprintf("observing: no reference window with %d samples yet", c.cfg.MinSamples)
		return v
	}
	v.Deltas = compare(canary, ref)
	switch {
	case v.Deltas.ConfidenceLag > c.cfg.ConfidenceTolerance:
		v.Action = ActionRollback
		v.Reason = fmt.Sprintf("confidence gate: canary mean %.3f trails incumbent %.3f by %.3f (tolerance %.3f)",
			canary.MeanConfidence, ref.MeanConfidence, v.Deltas.ConfidenceLag, c.cfg.ConfidenceTolerance)
	case v.Deltas.DistributionShift > c.cfg.ShiftTolerance:
		v.Action = ActionRollback
		v.Reason = fmt.Sprintf("distribution gate: activity shift %.3f exceeds tolerance %.3f",
			v.Deltas.DistributionShift, c.cfg.ShiftTolerance)
	case v.Deltas.ErrorRateExcess > c.cfg.ErrorTolerance:
		v.Action = ActionRollback
		v.Reason = fmt.Sprintf("error gate: canary error rate %.3f exceeds incumbent %.3f by %.3f (tolerance %.3f)",
			canary.ErrorRate(), ref.ErrorRate(), v.Deltas.ErrorRateExcess, c.cfg.ErrorTolerance)
	case v.Deltas.PowerExcess > c.cfg.PowerTolerance:
		v.Action = ActionRollback
		v.Reason = fmt.Sprintf("power gate: canary mean %.1f µA exceeds incumbent %.1f µA by %.1f%% (tolerance %.1f%%)",
			canary.MeanCurrentUA, ref.MeanCurrentUA, 100*v.Deltas.PowerExcess, 100*c.cfg.PowerTolerance)
	case c.Stage() == len(c.cfg.Stages)-1:
		v.Action = ActionComplete
		v.Reason = fmt.Sprintf("final stage healthy over %d canary samples", canary.Samples)
	default:
		v.Action = ActionPromote
		v.Reason = fmt.Sprintf("stage %d healthy over %d canary samples", c.Stage(), canary.Samples)
	}
	return v
}

// log appends a decision under the mutex and snapshots the arms into
// it.
func (c *Controller) log(now time.Time, from, to int, action, reason string) {
	w := c.win.Load()
	canary := w.canary.snapshot()
	ref, _ := c.reference(w.incumbent.snapshot())
	c.decisions = append(c.decisions, Decision{
		At: now, FromStage: from, ToStage: to, Action: action, Reason: reason,
		Canary: canary, Reference: ref, Deltas: compare(canary, ref),
	})
}

// resetWindow stores the incumbent arm as the new baseline when it
// qualifies, then swaps in a fresh window for the next stage.
func (c *Controller) resetWindow(now time.Time) {
	if inc := c.win.Load().incumbent.snapshot(); inc.Samples >= uint64(c.cfg.MinSamples) {
		c.baseline.Store(&inc)
	}
	c.win.Store(&windowStats{})
	c.stageStart.Store(now.UnixNano())
}

// Advance moves the rollout to stage `to` (which must be ahead of the
// current stage and inside the ladder), resetting the observation
// window. It reports whether the transition applied — a stale or
// duplicate transition (replicated twice, or raced by a local
// decision) is a no-op, which is what makes fleet-wide replication
// idempotent.
func (c *Controller) Advance(to int, now time.Time, reason string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	from := c.Stage()
	if c.State() != Observing || to <= from || to >= len(c.cfg.Stages) {
		return false
	}
	c.log(now, from, to, ActionPromote, reason)
	c.resetWindow(now)
	c.stage.Store(int32(to))
	return true
}

// Complete settles the rollout as promoted. It reports whether the
// transition applied (false once settled).
func (c *Controller) Complete(now time.Time, reason string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.State() != Observing {
		return false
	}
	c.log(now, c.Stage(), c.Stage(), ActionComplete, reason)
	c.state.Store(int32(Completed))
	return true
}

// Rollback settles the rollout as rolled back. The action distinguishes
// a health-gate rollback (ActionRollback) from an operator abort
// (ActionAbort). It reports whether the transition applied.
func (c *Controller) Rollback(now time.Time, action, reason string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.State() != Observing {
		return false
	}
	c.log(now, c.Stage(), c.Stage(), action, reason)
	c.state.Store(int32(RolledBack))
	return true
}

// Status snapshots the rollout for reporting.
func (c *Controller) Status() Status {
	c.mu.Lock()
	decisions := append([]Decision(nil), c.decisions...)
	c.mu.Unlock()
	w := c.win.Load()
	canary := w.canary.snapshot()
	incumbent := w.incumbent.snapshot()
	st := Status{
		CandidateHash: fmt.Sprintf("%016x", c.candidate),
		State:         c.State().String(),
		Stage:         c.Stage(),
		Stages:        append([]float64(nil), c.cfg.Stages...),
		Fraction:      c.Fraction(),
		StageStarted:  time.Unix(0, c.stageStart.Load()),
		Canary:        canary,
		Incumbent:     incumbent,
		Decisions:     decisions,
	}
	if b := c.baseline.Load(); b != nil {
		bb := *b
		st.Baseline = &bb
	}
	if ref, ok := c.reference(incumbent); ok {
		st.Deltas = compare(canary, ref)
	}
	return st
}
