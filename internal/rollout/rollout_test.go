package rollout

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	cfg := Default()
	cfg.Window = time.Second
	cfg.MinSamples = 10
	return cfg
}

func mustNew(t *testing.T, cfg Config, candidate uint64) *Controller {
	t.Helper()
	c, err := New(cfg, candidate, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"no stages":       func(c *Config) { c.Stages = nil },
		"descending":      func(c *Config) { c.Stages = []float64{0.25, 0.05, 1} },
		"over one":        func(c *Config) { c.Stages = []float64{0.5, 1.5} },
		"not ending at 1": func(c *Config) { c.Stages = []float64{0.05, 0.25} },
		"zero window":     func(c *Config) { c.Window = 0 },
		"zero samples":    func(c *Config) { c.MinSamples = 0 },
		"negative tol":    func(c *Config) { c.PowerTolerance = -0.1 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("default-derived config rejected: %v", err)
	}
}

// Cohorts must be deterministic, nested across stages, and roughly
// proportional to the fraction.
func TestCohortMath(t *testing.T) {
	const candidate = 0xfeedbeefcafe
	const devices = 20000
	in5, in25 := 0, 0
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("dev-%d", i)
		c5 := InCohort(id, candidate, 0.05)
		c25 := InCohort(id, candidate, 0.25)
		if c5 && !c25 {
			t.Fatalf("%s in 5%% cohort but not 25%%: cohorts must be nested", id)
		}
		if !InCohort(id, candidate, 1) {
			t.Fatalf("%s not in the 100%% cohort", id)
		}
		if InCohort(id, candidate, 0) {
			t.Fatalf("%s in the 0%% cohort", id)
		}
		if c5 != InCohort(id, candidate, 0.05) {
			t.Fatalf("%s cohort membership not deterministic", id)
		}
		if c5 {
			in5++
		}
		if c25 {
			in25++
		}
	}
	if f := float64(in5) / devices; math.Abs(f-0.05) > 0.01 {
		t.Errorf("5%% cohort holds %.3f of the fleet", f)
	}
	if f := float64(in25) / devices; math.Abs(f-0.25) > 0.02 {
		t.Errorf("25%% cohort holds %.3f of the fleet", f)
	}
}

// Different candidates must canary different slices: the same device
// set should not be the guinea pig of every rollout.
func TestCohortVariesByCandidate(t *testing.T) {
	overlap, in := 0, 0
	for i := 0; i < 20000; i++ {
		id := fmt.Sprintf("dev-%d", i)
		a := InCohort(id, 1111, 0.25)
		b := InCohort(id, 2222, 0.25)
		if a {
			in++
			if b {
				overlap++
			}
		}
	}
	// Independent 25% cohorts overlap on ~25% of either; identical
	// cohorts would overlap on 100%.
	if f := float64(overlap) / float64(in); f > 0.5 {
		t.Errorf("candidate cohorts overlap on %.2f of the slice — not independent", f)
	}
}

func feed(c *Controller, canary bool, n int, activity int, conf, ua float64) {
	for i := 0; i < n; i++ {
		c.Record(canary, activity, conf, ua)
	}
}

func TestHoldsUntilWindowAndSamples(t *testing.T) {
	c := mustNew(t, testConfig(), 1)
	feed(c, true, 50, 0, 0.9, 100)
	feed(c, false, 50, 0, 0.9, 100)
	if v := c.Evaluate(time.Unix(0, 0).Add(500 * time.Millisecond)); v.Action != "" {
		t.Fatalf("acted %q before the window elapsed", v.Action)
	}
	c2 := mustNew(t, testConfig(), 1)
	feed(c2, true, 3, 0, 0.9, 100)
	feed(c2, false, 50, 0, 0.9, 100)
	if v := c2.Evaluate(time.Unix(0, 0).Add(2 * time.Second)); v.Action != "" {
		t.Fatalf("acted %q with %d canary samples", v.Action, 3)
	}
	// No qualified reference (incumbent starved, no baseline): hold.
	c3 := mustNew(t, testConfig(), 1)
	feed(c3, true, 50, 0, 0.9, 100)
	if v := c3.Evaluate(time.Unix(0, 0).Add(2 * time.Second)); v.Action != "" {
		t.Fatalf("acted %q without any reference window", v.Action)
	}
}

func TestHealthyCanaryPromotesThenCompletes(t *testing.T) {
	c := mustNew(t, testConfig(), 1)
	now := time.Unix(0, 0)
	for stage := 0; stage < 2; stage++ {
		feed(c, true, 50, 0, 0.9, 100)
		feed(c, false, 50, 0, 0.9, 100)
		now = now.Add(2 * time.Second)
		v := c.Evaluate(now)
		if v.Action != ActionPromote {
			t.Fatalf("stage %d: verdict %q (%s), want promote", stage, v.Action, v.Reason)
		}
		if !c.Advance(stage+1, now, v.Reason) {
			t.Fatalf("stage %d: Advance refused", stage)
		}
	}
	// Final stage: the incumbent arm is starved; the baseline stored at
	// the last promote must carry the reference.
	feed(c, true, 50, 0, 0.9, 100)
	now = now.Add(2 * time.Second)
	v := c.Evaluate(now)
	if v.Action != ActionComplete {
		t.Fatalf("final stage: verdict %q (%s), want complete", v.Action, v.Reason)
	}
	if !c.Complete(now, v.Reason) {
		t.Fatal("Complete refused")
	}
	if c.State() != Completed || c.Fraction() != 1 {
		t.Fatalf("state %v fraction %v after completion", c.State(), c.Fraction())
	}
	st := c.Status()
	if len(st.Decisions) != 3 {
		t.Fatalf("decision log has %d entries, want 3", len(st.Decisions))
	}
	if st.Decisions[2].Action != ActionComplete {
		t.Fatalf("last decision %q, want complete", st.Decisions[2].Action)
	}
}

func TestGateFailuresRollBack(t *testing.T) {
	base := func() (c *Controller, now time.Time) {
		return mustNew(t, testConfig(), 1), time.Unix(0, 0).Add(2 * time.Second)
	}
	t.Run("confidence", func(t *testing.T) {
		c, now := base()
		feed(c, true, 50, 0, 0.60, 100)
		feed(c, false, 50, 0, 0.90, 100)
		v := c.Evaluate(now)
		if v.Action != ActionRollback || !strings.Contains(v.Reason, "confidence gate") {
			t.Fatalf("verdict %q (%s)", v.Action, v.Reason)
		}
	})
	t.Run("distribution", func(t *testing.T) {
		c, now := base()
		feed(c, true, 50, 3, 0.90, 100) // same confidence, different world
		feed(c, false, 50, 0, 0.90, 100)
		v := c.Evaluate(now)
		if v.Action != ActionRollback || !strings.Contains(v.Reason, "distribution gate") {
			t.Fatalf("verdict %q (%s)", v.Action, v.Reason)
		}
	})
	t.Run("errors", func(t *testing.T) {
		c, now := base()
		feed(c, true, 50, 0, 0.90, 100)
		for i := 0; i < 10; i++ {
			c.RecordError(true)
		}
		feed(c, false, 50, 0, 0.90, 100)
		v := c.Evaluate(now)
		if v.Action != ActionRollback || !strings.Contains(v.Reason, "error gate") {
			t.Fatalf("verdict %q (%s)", v.Action, v.Reason)
		}
	})
	t.Run("power", func(t *testing.T) {
		c, now := base()
		feed(c, true, 50, 0, 0.90, 180) // stuck at the top configuration
		feed(c, false, 50, 0, 0.90, 100)
		v := c.Evaluate(now)
		if v.Action != ActionRollback || !strings.Contains(v.Reason, "power gate") {
			t.Fatalf("verdict %q (%s)", v.Action, v.Reason)
		}
		if !c.Rollback(now, ActionRollback, v.Reason) {
			t.Fatal("Rollback refused")
		}
		if c.State() != RolledBack || c.Fraction() != 0 {
			t.Fatalf("state %v fraction %v after rollback", c.State(), c.Fraction())
		}
		if c.InCohort("any-device") {
			t.Fatal("device still in cohort after rollback")
		}
	})
}

// Replicated transitions must be idempotent and monotonic: a duplicate
// or stale apply is a no-op.
func TestTransitionsIdempotentAndMonotonic(t *testing.T) {
	c := mustNew(t, testConfig(), 1)
	now := time.Unix(10, 0)
	if !c.Advance(1, now, "peer decision") {
		t.Fatal("first Advance refused")
	}
	if c.Advance(1, now, "duplicate") {
		t.Fatal("duplicate Advance applied")
	}
	if c.Advance(0, now, "stale") {
		t.Fatal("backward Advance applied")
	}
	if c.Advance(len(c.Config().Stages), now, "out of range") {
		t.Fatal("out-of-range Advance applied")
	}
	// Skipping a stage (replica lagging behind the fleet) applies.
	if !c.Advance(2, now, "catch up") {
		t.Fatal("stage-skipping Advance refused")
	}
	if !c.Rollback(now, ActionAbort, "operator") {
		t.Fatal("Rollback refused")
	}
	if c.Rollback(now, ActionRollback, "late gate") {
		t.Fatal("Rollback applied twice")
	}
	if c.Complete(now, "late complete") {
		t.Fatal("Complete applied after rollback")
	}
	if got := len(c.Status().Decisions); got != 3 {
		t.Fatalf("decision log has %d entries, want 3", got)
	}
}

// The record path is documented lock-free; hammer it alongside
// evaluation and transitions under -race.
func TestConcurrentRecordAndEvaluate(t *testing.T) {
	c := mustNew(t, testConfig(), 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Record(g%2 == 0, i%6, 0.9, 100)
				if i%17 == 0 {
					c.RecordError(g%2 == 0)
				}
			}
		}(g)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		c.Evaluate(now)
		c.Status()
	}
	c.Advance(1, now, "mid-traffic")
	c.Rollback(now, ActionAbort, "test over")
	close(stop)
	wg.Wait()
	if c.State() != RolledBack {
		t.Fatalf("state %v", c.State())
	}
}

func TestStatusShape(t *testing.T) {
	c := mustNew(t, testConfig(), 0xabc)
	feed(c, true, 5, 2, 0.8, 90)
	st := c.Status()
	if st.CandidateHash != fmt.Sprintf("%016x", uint64(0xabc)) {
		t.Fatalf("hash %q", st.CandidateHash)
	}
	if st.State != "observing" || st.Stage != 0 || st.Fraction != 0.05 {
		t.Fatalf("status %+v", st)
	}
	if st.Canary.Samples != 5 || st.Canary.Activities[2] != 5 {
		t.Fatalf("canary health %+v", st.Canary)
	}
	if st.Canary.MeanConfidence < 0.79 || st.Canary.MeanConfidence > 0.81 {
		t.Fatalf("mean confidence %v", st.Canary.MeanConfidence)
	}
	if st.Canary.MeanCurrentUA < 89 || st.Canary.MeanCurrentUA > 91 {
		t.Fatalf("mean current %v", st.Canary.MeanCurrentUA)
	}
}

func TestHealthDerivedQuantities(t *testing.T) {
	h := Health{Samples: 90, Errors: 10}
	if got := h.ErrorRate(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("error rate %v", got)
	}
	if got := (Health{}).ErrorRate(); got != 0 {
		t.Fatalf("empty error rate %v", got)
	}
	h.Activities = [6]uint64{45, 45, 0, 0, 0, 0}
	d := h.Distribution()
	if d[0] != 0.5 || d[1] != 0.5 {
		t.Fatalf("distribution %v", d)
	}
}
