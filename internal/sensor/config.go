// Package sensor models a BMI160-class 3-axis accelerometer: Table I's
// sixteen (sampling frequency, averaging window) configurations, the
// normal/low-power operating modes, a duty-cycle current model, an
// averaging noise model and a streaming sampler that reads from a
// synth.Motion signal.
//
// The real BMI160 and its host board are not available in this
// reproduction; the model keeps the two first-principles properties the
// paper's argument rests on:
//
//   - power: in low-power mode the sensor duty-cycles, staying awake for
//     (averaging window / internal rate + wake overhead) per output sample,
//     so current scales with sampleRate × onTime and the averaging window
//     becomes a power knob (the paper's central observation);
//   - noise: each output sample averages w internal samples, so broadband
//     noise shrinks as 1/sqrt(w) and narrow windows buy power at the cost
//     of accuracy.
package sensor

import (
	"fmt"
	"strconv"
	"strings"
)

// InternalRateHz is the sensor's internal sampling rate used to fill the
// averaging window (BMI160-class parts sample internally at 1.6 kHz).
const InternalRateHz = 1600.0

// Config is one accelerometer operating point: output data rate and
// averaging window length in internal samples.
type Config struct {
	FreqHz    float64 // output data rate, Hz
	AvgWindow int     // internal samples averaged per output sample
}

// Name returns the paper's label for the configuration, e.g. "F100_A128"
// or "F12.5_A16".
func (c Config) Name() string {
	f := strconv.FormatFloat(c.FreqHz, 'f', -1, 64)
	return fmt.Sprintf("F%s_A%d", f, c.AvgWindow)
}

// ParseConfig parses a label in the Name format.
func ParseConfig(s string) (Config, error) {
	rest, ok := strings.CutPrefix(s, "F")
	if !ok {
		return Config{}, fmt.Errorf("sensor: bad config label %q", s)
	}
	fPart, aPart, ok := strings.Cut(rest, "_A")
	if !ok {
		return Config{}, fmt.Errorf("sensor: bad config label %q", s)
	}
	f, err := strconv.ParseFloat(fPart, 64)
	if err != nil {
		return Config{}, fmt.Errorf("sensor: bad frequency in %q: %v", s, err)
	}
	a, err := strconv.Atoi(aPart)
	if err != nil {
		return Config{}, fmt.Errorf("sensor: bad window in %q: %v", s, err)
	}
	cfg := Config{FreqHz: f, AvgWindow: a}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	if c.FreqHz <= 0 {
		return fmt.Errorf("sensor: non-positive sampling frequency %v", c.FreqHz)
	}
	if c.AvgWindow <= 0 {
		return fmt.Errorf("sensor: non-positive averaging window %d", c.AvgWindow)
	}
	if c.FreqHz > InternalRateHz {
		return fmt.Errorf("sensor: output rate %v exceeds internal rate %v", c.FreqHz, InternalRateHz)
	}
	return nil
}

// AvgWindowSec returns the averaging window duration in seconds.
func (c Config) AvgWindowSec() float64 { return float64(c.AvgWindow) / InternalRateHz }

// BatchSize returns the number of output samples produced in durSec
// seconds.
func (c Config) BatchSize(durSec float64) int {
	n := int(durSec*c.FreqHz + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// TableI returns the paper's sixteen frequency/averaging-window
// combinations (Table I), in the paper's listing order.
func TableI() []Config {
	return []Config{
		{100, 128}, {50, 128},
		{25, 128}, {12.5, 128},
		{6.25, 128}, {25, 32},
		{12.5, 32}, {6.25, 32},
		{50, 16}, {25, 16},
		{12.5, 16}, {6.25, 16},
		{50, 8}, {25, 8},
		{12.5, 8}, {6.25, 8},
	}
}

// ParetoStates returns the four configurations the paper's design-space
// exploration identifies as the accuracy/power Pareto frontier, in
// descending power order — the SPOT controller's state sequence
// {F100_A128, F50_A16, F12.5_A16, F12.5_A8}.
//
// The frontier is *recomputed* from scratch by internal/pareto (Fig. 2);
// this canonical list exists so that the controller and experiments can be
// constructed independently of a DSE run, exactly as the paper fixes the
// four states after its exploration.
func ParetoStates() []Config {
	return []Config{{100, 128}, {50, 16}, {12.5, 16}, {12.5, 8}}
}
