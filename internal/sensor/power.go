package sensor

import "fmt"

// Mode is the sensor's operating mode.
type Mode int

const (
	// Normal keeps the sensing element powered continuously; current is
	// independent of the output rate and averaging window.
	Normal Mode = iota
	// LowPower duty-cycles the sensing element: it wakes for each output
	// sample, acquires the averaging window, and suspends again.
	LowPower
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Normal:
		return "normal"
	case LowPower:
		return "low-power"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PowerModel holds the electrical constants of the duty-cycle current
// model. The defaults are BMI160-datasheet-class values; the absolute
// numbers differ from the paper's bench measurements but the model
// reproduces the geometry of the accuracy/current trade-off.
type PowerModel struct {
	// ActiveCurrentUA is the accelerometer current in normal mode, µA.
	ActiveCurrentUA float64
	// SuspendCurrentUA is the suspend-mode floor current, µA.
	SuspendCurrentUA float64
	// WakeOverheadSec is the per-wakeup settling time before valid
	// samples, seconds.
	WakeOverheadSec float64
}

// DefaultPowerModel returns the BMI160-class constants used throughout the
// reproduction: 180 µA active, 3 µA suspended, 0.5 ms wake overhead.
func DefaultPowerModel() PowerModel {
	return PowerModel{ActiveCurrentUA: 180, SuspendCurrentUA: 3, WakeOverheadSec: 0.0005}
}

// DutyCycle returns the fraction of time the sensing element must be awake
// to honor cfg in low-power mode: FreqHz × (window/internalRate +
// wakeOverhead), clamped to 1. A result of 1 means duty-cycling is
// infeasible and the sensor must run in normal mode.
func (p PowerModel) DutyCycle(cfg Config) float64 {
	onPerSample := cfg.AvgWindowSec() + p.WakeOverheadSec
	d := cfg.FreqHz * onPerSample
	if d >= 1 {
		return 1
	}
	return d
}

// ModeFor returns the operating mode the sensor uses for cfg: LowPower
// when duty-cycling is feasible, otherwise Normal. This matches the
// paper's Fig. 2 annotation, where the high-rate/wide-window points sit in
// the normal-mode current band.
func (p PowerModel) ModeFor(cfg Config) Mode {
	if p.DutyCycle(cfg) >= 1 {
		return Normal
	}
	return LowPower
}

// CurrentUA returns the average current draw of the sensor under cfg, in
// µA. In normal mode this is the active current; in low-power mode it is
// the duty-cycle-weighted mix of active and suspend currents.
func (p PowerModel) CurrentUA(cfg Config) float64 {
	d := p.DutyCycle(cfg)
	if d >= 1 {
		return p.ActiveCurrentUA
	}
	return p.SuspendCurrentUA + d*(p.ActiveCurrentUA-p.SuspendCurrentUA)
}

// ChargeUC returns the charge consumed over durSec seconds at cfg, in
// microcoulombs (µA·s). Energy in µJ is ChargeUC × supply voltage.
func (p PowerModel) ChargeUC(cfg Config, durSec float64) float64 {
	return p.CurrentUA(cfg) * durSec
}
