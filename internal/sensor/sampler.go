package sensor

import (
	"math"

	"adasense/internal/rng"
	"adasense/internal/synth"
)

// NoiseModel holds the stochastic constants of the reading model.
type NoiseModel struct {
	// SensorNoiseStd is the accelerometer's own broadband noise standard
	// deviation per internal sample, m/s². It adds in quadrature with the
	// activity's body tremor; the sum is attenuated by sqrt(averaging
	// window).
	SensorNoiseStd float64
	// FullScaleG is the measurement range in g (readings clamp to
	// ±FullScaleG·g).
	FullScaleG float64
	// Bits is the ADC resolution; readings quantize to 2^Bits levels
	// across the full scale. Zero disables quantization.
	Bits int
}

// DefaultNoiseModel returns BMI160-class constants: ±8 g range, 16-bit
// resolution, and a broadband noise floor of 0.35 m/s² per 1.6 kHz
// internal sample.
func DefaultNoiseModel() NoiseModel {
	return NoiseModel{SensorNoiseStd: 0.35, FullScaleG: 8, Bits: 16}
}

// lsb returns the quantization step in m/s², or 0 when disabled.
func (n NoiseModel) lsb() float64 {
	if n.Bits <= 0 {
		return 0
	}
	return 2 * n.FullScaleG * synth.Gravity / float64(uint64(1)<<uint(n.Bits))
}

// quantize clamps v to the full-scale range and rounds to the ADC grid.
func (n NoiseModel) quantize(v float64) float64 {
	limit := n.FullScaleG * synth.Gravity
	if v > limit {
		v = limit
	} else if v < -limit {
		v = -limit
	}
	step := n.lsb()
	if step == 0 {
		return v
	}
	return math.Round(v/step) * step
}

// Batch is a contiguous run of 3-axis sensor readings produced under a
// single configuration. X, Y, Z have equal length.
type Batch struct {
	Config  Config
	StartAt float64 // time of the first sample, seconds
	X, Y, Z []float64
}

// Len returns the number of samples in the batch.
func (b *Batch) Len() int { return len(b.X) }

// Duration returns the time span covered by the batch in seconds.
func (b *Batch) Duration() float64 { return float64(b.Len()) / b.Config.FreqHz }

// Axis returns the samples of axis ax (0=x, 1=y, 2=z).
func (b *Batch) Axis(ax int) []float64 {
	switch ax {
	case 0:
		return b.X
	case 1:
		return b.Y
	case 2:
		return b.Z
	default:
		panic("sensor: axis out of range")
	}
}

// Append concatenates other onto b. The configurations must match.
func (b *Batch) Append(other *Batch) {
	if b.Config != other.Config {
		panic("sensor: appending batches with different configs")
	}
	b.X = append(b.X, other.X...)
	b.Y = append(b.Y, other.Y...)
	b.Z = append(b.Z, other.Z...)
}

// Sampler draws noisy, quantized readings from a synthetic motion signal
// under a given configuration. It is the software stand-in for the IMU's
// data path.
type Sampler struct {
	Noise NoiseModel
	r     *rng.Source
}

// NewSampler returns a sampler with the given noise model drawing
// stochastic terms from r.
func NewSampler(noise NoiseModel, r *rng.Source) *Sampler {
	return &Sampler{Noise: noise, r: r}
}

// ReadingStd returns the standard deviation of one output reading's noise
// under cfg when the body tremor level is tremor: the quadrature sum of
// sensor noise and tremor, attenuated by sqrt(averaging window).
func (s *Sampler) ReadingStd(cfg Config, tremor float64) float64 {
	raw := math.Sqrt(s.Noise.SensorNoiseStd*s.Noise.SensorNoiseStd + tremor*tremor)
	return raw / math.Sqrt(float64(cfg.AvgWindow))
}

// Sample produces the batch of readings a sensor configured as cfg would
// emit from motion m over [t0, t1). Each reading at time t is the exact
// analytic average of the deterministic signal over the averaging window
// [t-w, t], plus Gaussian reading noise, clamped and quantized to the ADC
// grid.
//
// Successive readings are treated as having independent noise even when
// averaging windows overlap (high rate × wide window); the correlation
// this ignores only affects normal-mode points, whose classification
// accuracy is the saturated best case anyway.
func (s *Sampler) Sample(m *synth.Motion, cfg Config, t0, t1 float64) *Batch {
	n := cfg.BatchSize(t1 - t0)
	b := &Batch{
		Config:  cfg,
		StartAt: t0,
		X:       make([]float64, n),
		Y:       make([]float64, n),
		Z:       make([]float64, n),
	}
	period := 1 / cfg.FreqHz
	w := cfg.AvgWindowSec()
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*period
		lo := t - w
		if lo < 0 {
			lo = 0
		}
		v := m.AvgEval(lo, t)
		sigma := s.ReadingStd(cfg, m.Tremor(t))
		for ax := 0; ax < 3; ax++ {
			reading := v[ax] + s.r.NormSigma(0, sigma)
			switch ax {
			case 0:
				b.X[i] = s.Noise.quantize(reading)
			case 1:
				b.Y[i] = s.Noise.quantize(reading)
			default:
				b.Z[i] = s.Noise.quantize(reading)
			}
		}
	}
	return b
}
