package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"adasense/internal/dsp"
	"adasense/internal/rng"
	"adasense/internal/synth"
)

func TestTableIHasSixteenDistinctConfigs(t *testing.T) {
	configs := TableI()
	if len(configs) != 16 {
		t.Fatalf("Table I has %d configs, want 16", len(configs))
	}
	seen := map[Config]bool{}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid Table I config %v: %v", c, err)
		}
		if seen[c] {
			t.Fatalf("duplicate config %v", c.Name())
		}
		seen[c] = true
	}
}

func TestParetoStatesAreInTableI(t *testing.T) {
	table := map[Config]bool{}
	for _, c := range TableI() {
		table[c] = true
	}
	states := ParetoStates()
	if len(states) != 4 {
		t.Fatalf("want 4 Pareto states, got %d", len(states))
	}
	for _, c := range states {
		if !table[c] {
			t.Fatalf("Pareto state %v not in Table I", c.Name())
		}
	}
	// Must be sorted in descending power order (the SPOT state sequence).
	p := DefaultPowerModel()
	for i := 1; i < len(states); i++ {
		if p.CurrentUA(states[i]) >= p.CurrentUA(states[i-1]) {
			t.Fatalf("Pareto states not in descending current order: %v then %v",
				states[i-1].Name(), states[i].Name())
		}
	}
}

func TestConfigNameRoundTrip(t *testing.T) {
	for _, c := range TableI() {
		got, err := ParseConfig(c.Name())
		if err != nil || got != c {
			t.Fatalf("round trip %v: got %v err %v", c.Name(), got, err)
		}
	}
	for _, bad := range []string{"", "X100_A128", "F100A128", "Fzz_A8", "F100_Azz", "F-5_A8", "F100_A0"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig accepted %q", bad)
		}
	}
}

func TestConfigNames(t *testing.T) {
	if got := (Config{100, 128}).Name(); got != "F100_A128" {
		t.Fatalf("Name = %q", got)
	}
	if got := (Config{12.5, 16}).Name(); got != "F12.5_A16" {
		t.Fatalf("Name = %q", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{0, 8}, {-5, 8}, {100, 0}, {100, -1}, {3200, 8}}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("Validate accepted %+v", c)
		}
	}
}

func TestBatchSize(t *testing.T) {
	if n := (Config{100, 128}).BatchSize(2); n != 200 {
		t.Fatalf("100 Hz × 2 s = %d samples", n)
	}
	if n := (Config{6.25, 8}).BatchSize(2); n != 13 && n != 12 {
		t.Fatalf("6.25 Hz × 2 s = %d samples", n)
	}
	if n := (Config{6.25, 8}).BatchSize(0.01); n != 1 {
		t.Fatalf("minimum batch size = %d, want 1", n)
	}
}

// --- power model ---

func TestNormalModeConfigsDrawActiveCurrent(t *testing.T) {
	p := DefaultPowerModel()
	for _, c := range []Config{{100, 128}, {50, 128}, {25, 128}, {12.5, 128}} {
		if p.ModeFor(c) != Normal {
			t.Fatalf("%v should be normal mode (duty=%v)", c.Name(), p.DutyCycle(c))
		}
		if got := p.CurrentUA(c); got != p.ActiveCurrentUA {
			t.Fatalf("%v current = %v, want active %v", c.Name(), got, p.ActiveCurrentUA)
		}
	}
}

func TestLowPowerConfigsDrawLess(t *testing.T) {
	p := DefaultPowerModel()
	for _, c := range []Config{{6.25, 128}, {50, 16}, {12.5, 16}, {12.5, 8}, {6.25, 8}} {
		if p.ModeFor(c) != LowPower {
			t.Fatalf("%v should be low-power mode", c.Name())
		}
		cur := p.CurrentUA(c)
		if cur >= p.ActiveCurrentUA || cur <= p.SuspendCurrentUA {
			t.Fatalf("%v current = %v outside (suspend, active)", c.Name(), cur)
		}
	}
}

func TestCurrentMonotonicInRateAndWindow(t *testing.T) {
	p := DefaultPowerModel()
	// At fixed window, more samples per second can never cost less.
	cur := func(f float64, w int) float64 { return p.CurrentUA(Config{f, w}) }
	if cur(12.5, 16) > cur(25, 16) || cur(25, 16) > cur(50, 16) {
		t.Fatal("current not monotone in sampling frequency")
	}
	// At fixed rate, a wider averaging window can never cost less.
	if cur(12.5, 8) > cur(12.5, 16) || cur(12.5, 16) > cur(12.5, 32) || cur(12.5, 32) > cur(12.5, 128) {
		t.Fatal("current not monotone in averaging window")
	}
}

func TestPaperDominanceExample(t *testing.T) {
	// The paper's Fig. 2 callout: F6.25_A128 is dominated by F12.5_A16,
	// which has *lower* current (and higher accuracy).
	p := DefaultPowerModel()
	if p.CurrentUA(Config{12.5, 16}) >= p.CurrentUA(Config{6.25, 128}) {
		t.Fatalf("F12.5_A16 (%v µA) should draw less than F6.25_A128 (%v µA)",
			p.CurrentUA(Config{12.5, 16}), p.CurrentUA(Config{6.25, 128}))
	}
}

func TestParetoStateCurrentsDescend(t *testing.T) {
	p := DefaultPowerModel()
	states := ParetoStates()
	// Floor state must draw a small fraction of the top state, otherwise
	// the paper's ~69 % saving is unreachable.
	top := p.CurrentUA(states[0])
	floor := p.CurrentUA(states[len(states)-1])
	if floor > top/5 {
		t.Fatalf("floor state current %v too close to top %v", floor, top)
	}
}

func TestDutyCycleClamp(t *testing.T) {
	p := DefaultPowerModel()
	if d := p.DutyCycle(Config{100, 128}); d != 1 {
		t.Fatalf("infeasible duty = %v, want clamp to 1", d)
	}
	f := func(fRaw, wRaw uint8) bool {
		cfg := Config{FreqHz: 1 + float64(fRaw%100), AvgWindow: 1 + int(wRaw)%256}
		d := p.DutyCycle(cfg)
		return d > 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeUC(t *testing.T) {
	p := DefaultPowerModel()
	c := Config{100, 128}
	if got := p.ChargeUC(c, 10); math.Abs(got-1800) > 1e-9 {
		t.Fatalf("ChargeUC = %v, want 1800", got)
	}
}

// --- noise / quantization ---

func TestQuantizeClampsAndRounds(t *testing.T) {
	n := DefaultNoiseModel()
	limit := n.FullScaleG * synth.Gravity
	if got := n.quantize(limit * 3); got != limit {
		t.Fatalf("positive clamp = %v, want %v", got, limit)
	}
	if got := n.quantize(-limit * 3); got != -limit {
		t.Fatalf("negative clamp = %v, want %v", got, -limit)
	}
	step := n.lsb()
	v := 1.2345
	q := n.quantize(v)
	if math.Abs(q-v) > step/2+1e-12 {
		t.Fatalf("quantize moved value by more than half an LSB: %v -> %v", v, q)
	}
	if rem := math.Mod(q, step); math.Abs(rem) > 1e-9 && math.Abs(rem-step) > 1e-9 {
		t.Fatalf("quantized value %v not on grid (step %v)", q, step)
	}
}

func TestQuantizeDisabled(t *testing.T) {
	n := NoiseModel{FullScaleG: 8, Bits: 0}
	if got := n.quantize(1.234567); got != 1.234567 {
		t.Fatalf("disabled quantization changed value: %v", got)
	}
}

func TestReadingStdShrinksWithWindow(t *testing.T) {
	s := NewSampler(DefaultNoiseModel(), rng.New(1))
	s8 := s.ReadingStd(Config{12.5, 8}, 1.0)
	s128 := s.ReadingStd(Config{12.5, 128}, 1.0)
	want := s8 / 4 // sqrt(128/8) = 4
	if math.Abs(s128-want) > 1e-12 {
		t.Fatalf("ReadingStd(128) = %v, want %v", s128, want)
	}
}

// --- sampler ---

func testMotion(seed uint64) *synth.Motion {
	sched := synth.MustSchedule(
		synth.Segment{Activity: synth.Sit, Duration: 30},
		synth.Segment{Activity: synth.Walk, Duration: 30},
	)
	return synth.NewMotion(synth.DefaultModels(), sched, rng.New(seed))
}

func TestSampleBatchShape(t *testing.T) {
	m := testMotion(1)
	s := NewSampler(DefaultNoiseModel(), rng.New(2))
	for _, cfg := range TableI() {
		b := s.Sample(m, cfg, 4, 6)
		if b.Len() != cfg.BatchSize(2) {
			t.Fatalf("%v: batch len %d, want %d", cfg.Name(), b.Len(), cfg.BatchSize(2))
		}
		if len(b.Y) != b.Len() || len(b.Z) != b.Len() {
			t.Fatalf("%v: axis length mismatch", cfg.Name())
		}
		if b.StartAt != 4 || b.Config != cfg {
			t.Fatalf("%v: metadata wrong", cfg.Name())
		}
	}
}

func TestSampleTracksGravityWhileSitting(t *testing.T) {
	m := testMotion(3)
	s := NewSampler(DefaultNoiseModel(), rng.New(4))
	b := s.Sample(m, Config{100, 128}, 10, 12)
	// While sitting, the mean magnitude must be close to 1 g.
	mag := dsp.Mean(dsp.Magnitude3(b.X, b.Y, b.Z))
	if math.Abs(mag-synth.Gravity) > 0.5 {
		t.Fatalf("sitting mean |a| = %v, want ~%v", mag, synth.Gravity)
	}
}

func TestSampleNoiseScalesWithWindow(t *testing.T) {
	// The reading noise std must scale as 1/sqrt(averaging window). The
	// deterministic signal is identical across two samplers with
	// different seeds, so the difference of their outputs isolates the
	// noise (times sqrt(2)).
	m := testMotion(5)
	noiseStd := func(w int) float64 {
		s1 := NewSampler(DefaultNoiseModel(), rng.New(6))
		s2 := NewSampler(DefaultNoiseModel(), rng.New(7))
		var diffs []float64
		for rep := 0; rep < 8; rep++ {
			a := s1.Sample(m, Config{25, w}, 5, 15)
			b := s2.Sample(m, Config{25, w}, 5, 15)
			for i := range a.X {
				diffs = append(diffs, a.X[i]-b.X[i])
			}
		}
		return dsp.StdDev(diffs)
	}
	narrow := noiseStd(8)
	wide := noiseStd(128)
	ratio := narrow / wide
	if ratio < 3 || ratio > 5 { // ideal sqrt(128/8) = 4
		t.Fatalf("noise attenuation ratio = %v, want ~4", ratio)
	}
}

func TestSampleWalkHasGaitEnergy(t *testing.T) {
	m := testMotion(7)
	s := NewSampler(DefaultNoiseModel(), rng.New(8))
	b := s.Sample(m, Config{100, 128}, 40, 50) // walking period
	y := append([]float64(nil), b.Y...)
	dsp.Detrend(y)
	// Spectral mass must exist in the 1–3 Hz gait band, well above the
	// 5–8 Hz band.
	gait := dsp.Goertzel(y, 1.75, 100) + dsp.Goertzel(y, 2, 100)
	high := dsp.Goertzel(y, 6.5, 100) + dsp.Goertzel(y, 7.5, 100)
	if gait < 3*high {
		t.Fatalf("gait band %v not dominant over high band %v", gait, high)
	}
}

func TestSampleDeterministicGivenSeeds(t *testing.T) {
	m1 := testMotion(9)
	m2 := testMotion(9)
	s1 := NewSampler(DefaultNoiseModel(), rng.New(10))
	s2 := NewSampler(DefaultNoiseModel(), rng.New(10))
	b1 := s1.Sample(m1, Config{50, 16}, 2, 4)
	b2 := s2.Sample(m2, Config{50, 16}, 2, 4)
	for i := range b1.X {
		if b1.X[i] != b2.X[i] || b1.Y[i] != b2.Y[i] || b1.Z[i] != b2.Z[i] {
			t.Fatal("sampling is not reproducible from seeds")
		}
	}
}

func TestBatchAppendAndAxis(t *testing.T) {
	m := testMotion(11)
	s := NewSampler(DefaultNoiseModel(), rng.New(12))
	a := s.Sample(m, Config{50, 16}, 0, 1)
	b := s.Sample(m, Config{50, 16}, 1, 2)
	n := a.Len()
	a.Append(b)
	if a.Len() != n+b.Len() {
		t.Fatalf("append length = %d", a.Len())
	}
	if &a.Axis(0)[0] != &a.X[0] || &a.Axis(1)[0] != &a.Y[0] || &a.Axis(2)[0] != &a.Z[0] {
		t.Fatal("Axis accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Axis(3) did not panic")
		}
	}()
	a.Axis(3)
}

func TestBatchAppendConfigMismatchPanics(t *testing.T) {
	a := &Batch{Config: Config{50, 16}}
	b := &Batch{Config: Config{25, 16}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched append did not panic")
		}
	}()
	a.Append(b)
}

func TestBatchDuration(t *testing.T) {
	m := testMotion(13)
	s := NewSampler(DefaultNoiseModel(), rng.New(14))
	b := s.Sample(m, Config{25, 16}, 0, 2)
	if math.Abs(b.Duration()-2) > 0.05 {
		t.Fatalf("Duration = %v, want ~2", b.Duration())
	}
}

func BenchmarkSample100Hz2s(b *testing.B) {
	m := testMotion(1)
	s := NewSampler(DefaultNoiseModel(), rng.New(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample(m, Config{100, 128}, 4, 6)
	}
}
