// Package sim runs the closed sensing/classification/control loop of
// Fig. 3 in the paper: a synthetic user (synth.Motion) is observed by the
// sensor model under the configuration chosen by an adaptive controller;
// every second the buffered window is classified and the result is fed
// back to the controller, which sets the next episode's configuration.
// The run accounts sensor and MCU charge and can record time series for
// figure generation.
package sim

import (
	"fmt"

	"adasense/internal/core"
	"adasense/internal/eval"
	"adasense/internal/mcu"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
	"adasense/internal/trace"
)

// WindowClassifier classifies one buffered sensor window. *core.Pipeline
// implements it; the intensity baseline's per-configuration classifier
// bank implements it too.
type WindowClassifier interface {
	Classify(b *sensor.Batch) core.Classification
}

// BatchObserver is re-exported from core for convenience: controllers
// that decide from the raw signal receive each classified window before
// Observe is called.
type BatchObserver = core.BatchObserver

// Spec describes one closed-loop run.
type Spec struct {
	// Motion is the ground-truth signal (required).
	Motion *synth.Motion
	// Controller adapts the sensor configuration (required).
	Controller core.Controller
	// Classifier maps windows to activities (required).
	Classifier WindowClassifier
	// CyclesPerWindow returns the MCU cycle cost of processing one window
	// of n samples. Defaults to AdaSense's feature extraction (3 bins)
	// plus a 15/32/6 MLP inference.
	CyclesPerWindow func(n int) uint64

	// WindowSec and HopSec define the buffer (defaults 2 and 1).
	WindowSec, HopSec float64

	// Power, Noise and MCU override the hardware models.
	Power *sensor.PowerModel
	Noise *sensor.NoiseModel
	MCU   *mcu.Model

	// Record enables trace recording ("config_current_uA", "state",
	// "pred", "truth", and per-axis "accel_*" series).
	Record bool
	// RecordAccel additionally records raw per-sample accelerometer
	// readings (heavy; Fig. 5a only).
	RecordAccel bool
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Motion == nil || s.Controller == nil || s.Classifier == nil {
		return s, fmt.Errorf("sim: Motion, Controller and Classifier are required")
	}
	if s.WindowSec == 0 {
		s.WindowSec = 2
	}
	if s.HopSec == 0 {
		s.HopSec = 1
	}
	if s.WindowSec < s.HopSec {
		return s, fmt.Errorf("sim: window %v shorter than hop %v", s.WindowSec, s.HopSec)
	}
	if s.Power == nil {
		p := sensor.DefaultPowerModel()
		s.Power = &p
	}
	if s.Noise == nil {
		n := sensor.DefaultNoiseModel()
		s.Noise = &n
	}
	if s.MCU == nil {
		m := mcu.Default()
		s.MCU = &m
	}
	if s.CyclesPerWindow == nil {
		s.CyclesPerWindow = func(n int) uint64 {
			return mcu.FeatureExtractionCycles(n, 3) + mcu.InferenceCycles(15, 32, 6)
		}
	}
	return s, nil
}

// Result summarizes a run.
type Result struct {
	DurationSec float64
	Ticks       int

	// Confusion scores every classification tick against the window's
	// dominant ground-truth activity.
	Confusion eval.Confusion

	// SensorChargeUC / MCUChargeUC are total consumed charge in µC.
	SensorChargeUC float64
	MCUChargeUC    float64

	// AvgSensorCurrentUA is SensorChargeUC / DurationSec — the quantity
	// the paper's Fig. 6b and Fig. 7 report.
	AvgSensorCurrentUA float64
	// AvgMCUCurrentUA likewise for the processing unit.
	AvgMCUCurrentUA float64

	// ConfigDwellSec maps configuration name to seconds spent sensing
	// under it.
	ConfigDwellSec map[string]float64

	// Recorder holds the recorded series when Spec.Record was set.
	Recorder *trace.Recorder
}

// Accuracy returns the fraction of correctly classified ticks.
func (r Result) Accuracy() float64 { return r.Confusion.Accuracy() }

// Run executes the closed loop over the motion's full duration.
// Deterministic given r.
func Run(spec Spec, r *rng.Source) (Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return Result{}, err
	}
	sampler := sensor.NewSampler(*spec.Noise, r.Split(1))
	spec.Controller.Reset()

	window, err := core.NewSlidingWindow(spec.Controller.Config(), spec.WindowSec)
	if err != nil {
		return Result{}, err
	}

	res := Result{ConfigDwellSec: make(map[string]float64)}
	if spec.Record {
		res.Recorder = trace.NewRecorder()
	}

	sched := spec.Motion.Schedule()
	total := spec.Motion.Duration()
	var mcuCycles uint64

	for t := 0.0; t+spec.HopSec <= total+1e-9; t += spec.HopSec {
		cfg := spec.Controller.Config()
		if cfg != window.Config() {
			// Configuration switch: heterogeneous samples cannot share
			// the buffer; restart it (the rate-invariant features keep
			// the next, shorter window classifiable). The discarded
			// partially filled window was charged when its samples were
			// sensed — the reset must never re-attribute that charge.
			window.Reset(cfg)
		}
		tEnd := t + spec.HopSec
		batch := sampler.Sample(spec.Motion, cfg, t, tEnd)
		window.Push(batch)

		// Attribute the episode's sensing charge and dwell to the
		// configuration the batch was actually sampled under — the one in
		// effect for this episode, regardless of any reset above.
		res.SensorChargeUC += spec.Power.ChargeUC(batch.Config, spec.HopSec)
		res.ConfigDwellSec[batch.Config.Name()] += spec.HopSec

		// Classify the buffered window.
		win := window.Window()
		cls := spec.Classifier.Classify(win)
		mcuCycles += spec.CyclesPerWindow(win.Len())

		winStart := tEnd - win.Duration()
		truth := sched.DominantActivity(winStart, tEnd)
		res.Confusion.Add(truth, cls.Activity)
		res.Ticks++

		// Feed the controller; its new config takes effect next episode.
		if bo, ok := spec.Controller.(BatchObserver); ok {
			bo.ObserveBatch(win)
		}
		spec.Controller.Observe(cls.Activity, cls.Confidence)

		if spec.Record {
			res.Recorder.Add("config_current_uA", t, spec.Power.CurrentUA(cfg))
			if s, ok := spec.Controller.(*core.SPOT); ok {
				res.Recorder.Add("state", t, float64(s.StateIndex()))
			}
			res.Recorder.Add("pred", tEnd, float64(cls.Activity))
			res.Recorder.Add("truth", tEnd, float64(truth))
			if spec.RecordAccel {
				period := 1 / cfg.FreqHz
				for i := 0; i < batch.Len(); i++ {
					ts := t + float64(i)*period
					res.Recorder.Add("accel_x", ts, batch.X[i])
					res.Recorder.Add("accel_y", ts, batch.Y[i])
					res.Recorder.Add("accel_z", ts, batch.Z[i])
				}
			}
		}
	}

	res.DurationSec = float64(res.Ticks) * spec.HopSec
	res.MCUChargeUC = spec.MCU.ActiveChargeUC(mcuCycles) +
		spec.MCU.SleepChargeUC(res.DurationSec-spec.MCU.SecondsFor(mcuCycles))
	if res.DurationSec > 0 {
		res.AvgSensorCurrentUA = res.SensorChargeUC / res.DurationSec
		res.AvgMCUCurrentUA = res.MCUChargeUC / res.DurationSec
	}
	return res, nil
}
