package sim

import (
	"testing"
	"testing/quick"

	"adasense/internal/core"
	"adasense/internal/rng"
	"adasense/internal/synth"
)

// TestRunInvariants drives the simulator with random workloads and
// controllers and checks accounting invariants: tick counts, charge
// bounds, dwell bookkeeping.
func TestRunInvariants(t *testing.T) {
	pipe := newPipe(t)
	f := func(seed uint16, thrRaw uint8, conf bool, dwellRaw uint8) bool {
		r := rng.New(uint64(seed))
		dwell := 10 + float64(dwellRaw%40)
		sched := synth.RandomSchedule(r.Split(1), 120, dwell, dwell+10)
		m := synth.NewMotion(synth.DefaultModels(), sched, r.Split(2))
		var ctl core.Controller
		thr := int(thrRaw % 20)
		if conf {
			ctl = core.NewPaperSPOTWithConfidence(thr)
		} else {
			ctl = core.NewPaperSPOT(thr)
		}
		res, err := Run(Spec{Motion: m, Controller: ctl, Classifier: pipe}, r.Split(3))
		if err != nil {
			return false
		}
		// One classification per hop second.
		if res.Ticks != 120 {
			return false
		}
		if res.Confusion.Total() != res.Ticks {
			return false
		}
		// Average current bounded by the Pareto extremes.
		if res.AvgSensorCurrentUA < 15 || res.AvgSensorCurrentUA > 180+1e-9 {
			return false
		}
		// Dwell must account for every second.
		var dwellSum float64
		for _, d := range res.ConfigDwellSec {
			dwellSum += d
		}
		if dwellSum != res.DurationSec {
			return false
		}
		// MCU charge positive, bounded by one second of active current
		// per second of run (the workload is far lighter than that).
		if res.MCUChargeUC <= 0 || res.MCUChargeUC > 2930*res.DurationSec {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
