package sim

import (
	"math"
	"sync"
	"testing"

	"adasense/internal/core"
	"adasense/internal/dataset"
	"adasense/internal/features"
	"adasense/internal/nn"
	"adasense/internal/rng"
	"adasense/internal/sensor"
	"adasense/internal/synth"
)

var (
	pipeOnce sync.Once
	pipeNet  *nn.Network
)

// sharedNet trains the AdaSense shared classifier once per test process.
func sharedNet(t *testing.T) *nn.Network {
	t.Helper()
	pipeOnce.Do(func() {
		r := rng.New(20200610)
		corpus, err := dataset.Generate(dataset.GenSpec{Windows: 3600}, r.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		net := nn.New(corpus.FeatureSize, 32, synth.NumActivities, r.Split(2))
		X, Y := corpus.XY()
		if _, err := nn.Train(net, X, Y, nn.TrainConfig{Epochs: 40}, r.Split(3)); err != nil {
			t.Fatal(err)
		}
		pipeNet = net
	})
	return pipeNet
}

func newPipe(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(sharedNet(t), features.MustExtractor(nil))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func motionFor(t *testing.T, seed uint64, segs ...synth.Segment) *synth.Motion {
	t.Helper()
	return synth.NewMotion(synth.DefaultModels(), synth.MustSchedule(segs...), rng.New(seed))
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}, rng.New(1)); err == nil {
		t.Fatal("empty spec accepted")
	}
	m := motionFor(t, 1, synth.Segment{Activity: synth.Sit, Duration: 10})
	if _, err := Run(Spec{Motion: m, Controller: core.NewBaseline(), Classifier: newPipe(t), WindowSec: 1, HopSec: 2}, rng.New(1)); err == nil {
		t.Fatal("window < hop accepted")
	}
}

func TestBaselineRunDrawsActiveCurrent(t *testing.T) {
	m := motionFor(t, 2, synth.Segment{Activity: synth.Sit, Duration: 30}, synth.Segment{Activity: synth.Walk, Duration: 30})
	res, err := Run(Spec{Motion: m, Controller: core.NewBaseline(), Classifier: newPipe(t)}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 60 {
		t.Fatalf("Ticks = %d, want 60", res.Ticks)
	}
	if math.Abs(res.AvgSensorCurrentUA-180) > 1e-9 {
		t.Fatalf("baseline avg current = %v, want 180", res.AvgSensorCurrentUA)
	}
	if res.Accuracy() < 0.85 {
		t.Fatalf("baseline accuracy = %v", res.Accuracy())
	}
	if dwell := res.ConfigDwellSec["F100_A128"]; math.Abs(dwell-60) > 1e-9 {
		t.Fatalf("dwell = %v", dwell)
	}
}

func TestSPOTDescendsOnStableActivity(t *testing.T) {
	m := motionFor(t, 4, synth.Segment{Activity: synth.Sit, Duration: 120})
	res, err := Run(Spec{
		Motion:     m,
		Controller: core.NewPaperSPOT(5),
		Classifier: newPipe(t),
		Record:     true,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSensorCurrentUA >= 100 {
		t.Fatalf("SPOT on stable activity should save a lot: avg = %v µA", res.AvgSensorCurrentUA)
	}
	// Must have dwelled in the floor state most of the time.
	floor := sensor.ParetoStates()[3].Name()
	if res.ConfigDwellSec[floor] < 60 {
		t.Fatalf("floor dwell = %v s, want > 60", res.ConfigDwellSec[floor])
	}
	// State series must be monotone per descent and reach 3.
	states := res.Recorder.Series("state")
	if states == nil || states.Len() != res.Ticks {
		t.Fatal("state series missing or wrong length")
	}
	max := 0.0
	for _, v := range states.V {
		if v > max {
			max = v
		}
	}
	if max != 3 {
		t.Fatalf("max state = %v, want 3", max)
	}
}

func TestSPOTSnapsBackAtTransition(t *testing.T) {
	m := motionFor(t, 6,
		synth.Segment{Activity: synth.Sit, Duration: 60},
		synth.Segment{Activity: synth.Walk, Duration: 60})
	res, err := Run(Spec{
		Motion:     m,
		Controller: core.NewPaperSPOT(7),
		Classifier: newPipe(t),
		Record:     true,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	states := res.Recorder.Series("state")
	// Shortly after t=60 the controller must be back at state 0.
	sawReset := false
	for i := range states.T {
		if states.T[i] >= 60 && states.T[i] <= 66 && states.V[i] == 0 {
			sawReset = true
			break
		}
	}
	if !sawReset {
		t.Fatal("SPOT did not snap back to state 0 after the activity change")
	}
	// And the current trace must reflect both the descent and the snap.
	cur := res.Recorder.Series("config_current_uA")
	if cur.V[0] != 180 {
		t.Fatalf("run must start at 180 µA, got %v", cur.V[0])
	}
}

func TestSPOTSavesVsBaselineOnTypicalWorkload(t *testing.T) {
	sched := synth.RandomSchedule(rng.New(8), 600, 40, 80)
	run := func(c core.Controller) Result {
		m := synth.NewMotion(synth.DefaultModels(), sched, rng.New(9))
		res, err := Run(Spec{Motion: m, Controller: c, Classifier: newPipe(t)}, rng.New(10))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(core.NewBaseline())
	spot := run(core.NewPaperSPOT(10))
	saving := 1 - spot.AvgSensorCurrentUA/base.AvgSensorCurrentUA
	if saving < 0.3 {
		t.Fatalf("SPOT saving = %.0f%%, want substantial", 100*saving)
	}
	if spot.Accuracy() < base.Accuracy()-0.06 {
		t.Fatalf("SPOT accuracy %v too far below baseline %v", spot.Accuracy(), base.Accuracy())
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		m := motionFor(t, 11, synth.Segment{Activity: synth.Walk, Duration: 40})
		res, err := Run(Spec{Motion: m, Controller: core.NewPaperSPOT(4), Classifier: newPipe(t)}, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SensorChargeUC != b.SensorChargeUC || a.Accuracy() != b.Accuracy() {
		t.Fatal("simulation is not deterministic")
	}
}

func TestMCUChargeAccounted(t *testing.T) {
	m := motionFor(t, 13, synth.Segment{Activity: synth.Stand, Duration: 30})
	res, err := Run(Spec{Motion: m, Controller: core.NewBaseline(), Classifier: newPipe(t)}, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if res.MCUChargeUC <= 0 {
		t.Fatal("MCU charge not accounted")
	}
	// The HAR workload is light: the MCU should spend most time asleep,
	// so its average current must be far below active.
	if res.AvgMCUCurrentUA > 500 {
		t.Fatalf("MCU average current = %v µA, implausibly high", res.AvgMCUCurrentUA)
	}
}

func TestRecordAccelSeries(t *testing.T) {
	m := motionFor(t, 15, synth.Segment{Activity: synth.Walk, Duration: 10})
	res, err := Run(Spec{
		Motion: m, Controller: core.NewBaseline(), Classifier: newPipe(t),
		Record: true, RecordAccel: true,
	}, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	ax := res.Recorder.Series("accel_x")
	if ax == nil || ax.Len() != 1000 { // 10 s × 100 Hz
		t.Fatalf("accel_x series length = %v, want 1000", ax)
	}
}

// switchAfter is a forced-switch controller: it pins cfg a for the first
// n observations, then b forever.
type switchAfter struct {
	n, seen int
	a, b    sensor.Config
}

func (s *switchAfter) Config() sensor.Config {
	if s.seen >= s.n {
		return s.b
	}
	return s.a
}
func (s *switchAfter) Observe(synth.Activity, float64) { s.seen++ }
func (s *switchAfter) Reset()                          { s.seen = 0 }

// TestDwellAttributionOnForcedSwitch locks the attribution invariant: a
// mid-run switch resets the sliding window, and every episode's dwell and
// charge land on the configuration that actually sensed it — n hops on
// the pre-switch configuration, the remainder on the post-switch one.
func TestDwellAttributionOnForcedSwitch(t *testing.T) {
	states := sensor.ParetoStates()
	ctl := &switchAfter{n: 3, a: states[0], b: states[3]}
	m := motionFor(t, 19, synth.Segment{Activity: synth.Sit, Duration: 10})
	res, err := Run(Spec{Motion: m, Controller: ctl, Classifier: newPipe(t)}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConfigDwellSec) != 2 {
		t.Fatalf("dwell map = %v, want exactly the two forced configurations", res.ConfigDwellSec)
	}
	if d := res.ConfigDwellSec[states[0].Name()]; math.Abs(d-3) > 1e-9 {
		t.Fatalf("pre-switch dwell = %v s, want 3", d)
	}
	if d := res.ConfigDwellSec[states[3].Name()]; math.Abs(d-7) > 1e-9 {
		t.Fatalf("post-switch dwell = %v s, want 7", d)
	}
	p := sensor.DefaultPowerModel()
	want := 3*p.CurrentUA(states[0]) + 7*p.CurrentUA(states[3])
	if math.Abs(res.SensorChargeUC-want) > 1e-9 {
		t.Fatalf("charge = %v µC, want %v", res.SensorChargeUC, want)
	}
}

// rotateEvery switches to the next Pareto state on every observation, so
// with a window wider than the hop every reset discards a partially
// filled window.
type rotateEvery struct {
	states []sensor.Config
	i      int
}

func (r *rotateEvery) Config() sensor.Config           { return r.states[r.i%len(r.states)] }
func (r *rotateEvery) Observe(synth.Activity, float64) { r.i++ }
func (r *rotateEvery) Reset()                          { r.i = 0 }

// TestDwellAttributionAcrossPartialWindowResets rotates configurations
// every hop under a 4 s window: each reset throws away a partially filled
// window, and the discarded samples' charge must stay attributed to the
// configuration that sensed them (one second per state per round).
func TestDwellAttributionAcrossPartialWindowResets(t *testing.T) {
	states := sensor.ParetoStates()
	ctl := &rotateEvery{states: states}
	m := motionFor(t, 21, synth.Segment{Activity: synth.Sit, Duration: 8})
	res, err := Run(Spec{Motion: m, Controller: ctl, Classifier: newPipe(t), WindowSec: 4, HopSec: 1}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 8 {
		t.Fatalf("Ticks = %d, want 8", res.Ticks)
	}
	p := sensor.DefaultPowerModel()
	var want float64
	for i, cfg := range states {
		if d := res.ConfigDwellSec[cfg.Name()]; math.Abs(d-2) > 1e-9 {
			t.Fatalf("state %d dwell = %v s, want 2", i, d)
		}
		want += 2 * p.CurrentUA(cfg)
	}
	if math.Abs(res.SensorChargeUC-want) > 1e-9 {
		t.Fatalf("charge = %v µC, want %v", res.SensorChargeUC, want)
	}
}

func TestChargeConservation(t *testing.T) {
	// Total sensor charge must equal sum over configs of dwell × current.
	m := motionFor(t, 17, synth.Segment{Activity: synth.Sit, Duration: 90})
	p := sensor.DefaultPowerModel()
	res, err := Run(Spec{Motion: m, Controller: core.NewPaperSPOT(3), Classifier: newPipe(t)}, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for name, dwell := range res.ConfigDwellSec {
		cfg, err := sensor.ParseConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		want += p.CurrentUA(cfg) * dwell
	}
	if math.Abs(res.SensorChargeUC-want) > 1e-6 {
		t.Fatalf("charge %v != dwell-weighted %v", res.SensorChargeUC, want)
	}
}
