package stream

import (
	"sync"
	"time"
)

// Batcher is the streaming ingress's admission stage: concurrently
// arriving pushes from many device connections funnel into one queue,
// and each worker drains whatever has accumulated in one greedy run,
// executing the queued tasks back to back. Under concurrency the
// feature-extraction working set (pipeline pool checkouts, DWT
// workspaces, branch-predictor and cache state) stays hot across a
// run instead of being re-faulted per request — that is where the
// amortization lands, which the per-run hook and the admission-wait
// stage timings make measurable.
//
// One connection submits at most one task at a time (ADSP acknowledges
// each batch before the device sends the next), so per-device ordering
// is structural and queue depth is bounded by live connections.
type Batcher struct {
	ch   chan *Task
	stop chan struct{}
	wg   sync.WaitGroup

	// mu orders Submit's enqueue against Close: Submits that saw the
	// batcher open hold the read side across their enqueue, so once
	// Close holds the write side every such task is in the queue and
	// will be drained before the workers exit.
	mu     sync.RWMutex
	closed bool

	// onFlush, if set, observes each completed run with the number of
	// tasks it coalesced; onWait observes each task's queue wait (the
	// "admit" stage).
	onFlush func(run int)
	onWait  func(d time.Duration)
}

// Task is one submission's reusable handle. A connection allocates one
// Task up front and submits through it for its whole lifetime, so the
// steady-state push path allocates nothing here.
type Task struct {
	fn   func()
	enq  time.Time
	done chan struct{}
}

// NewTask returns a reusable submission handle.
func NewTask() *Task { return &Task{done: make(chan struct{}, 1)} }

// NewBatcher starts a batcher with the given worker count and queue
// capacity (both forced to at least 1). onFlush and onWait may be nil.
func NewBatcher(workers, queue int, onFlush func(run int), onWait func(d time.Duration)) *Batcher {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	b := &Batcher{
		ch:      make(chan *Task, queue),
		stop:    make(chan struct{}),
		onFlush: onFlush,
		onWait:  onWait,
	}
	b.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// Submit runs fn through the batcher and blocks until it has executed.
// t must not be shared between concurrent Submits. After Close, fn
// runs inline on the caller.
func (b *Batcher) Submit(t *Task, fn func()) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		fn()
		return
	}
	t.fn = fn
	t.enq = time.Now()
	b.ch <- t // blocks when the queue is full: natural backpressure
	b.mu.RUnlock()
	<-t.done
}

// Depth returns the current queue occupancy (tasks admitted but not
// yet picked up by a worker) — the batcher-occupancy gauge.
func (b *Batcher) Depth() int { return len(b.ch) }

// Close drains the queue, executes everything already submitted, and
// stops the workers. Tasks submitted after Close run inline on their
// caller. Close is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	// Every Submit that saw the batcher open has finished its enqueue
	// (it held the read lock across the channel send), so the workers'
	// shutdown drain below cannot strand a task.
	close(b.stop)
	b.wg.Wait()
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for {
		select {
		case t := <-b.ch:
			run := b.flush(t)
			if b.onFlush != nil {
				b.onFlush(run)
			}
		case <-b.stop:
			// Shutdown drain: nothing new can be enqueued once stop is
			// closed (Close holds the write lock first), so emptying the
			// queue here is terminal.
			for {
				select {
				case t := <-b.ch:
					b.exec(t)
				default:
					return
				}
			}
		}
	}
}

// flush executes t and then greedily drains whatever else has queued
// behind it without blocking — one coalescing run.
func (b *Batcher) flush(t *Task) int {
	run := 1
	b.exec(t)
	for {
		select {
		case t2 := <-b.ch:
			b.exec(t2)
			run++
		default:
			return run
		}
	}
}

func (b *Batcher) exec(t *Task) {
	if b.onWait != nil {
		b.onWait(time.Since(t.enq))
	}
	t.fn()
	t.fn = nil
	t.done <- struct{}{}
}
