package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBatcherRunsEverySubmission(t *testing.T) {
	var flushes, coalesced atomic.Int64
	var waits atomic.Int64
	b := NewBatcher(2, 64,
		func(run int) { flushes.Add(1); coalesced.Add(int64(run)) },
		func(d time.Duration) {
			if d < 0 {
				t.Error("negative queue wait")
			}
			waits.Add(1)
		})
	defer b.Close()

	const devices, pushes = 16, 50
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			for j := 0; j < pushes; j++ {
				b.Submit(task, func() { sum.Add(1) })
			}
		}()
	}
	wg.Wait()

	if got := sum.Load(); got != devices*pushes {
		t.Fatalf("executed %d tasks, want %d", got, devices*pushes)
	}
	if got := waits.Load(); got != devices*pushes {
		t.Fatalf("onWait saw %d tasks, want %d", got, devices*pushes)
	}
	// Every task belongs to exactly one flush run.
	if got := coalesced.Load(); got != devices*pushes {
		t.Fatalf("flush runs covered %d tasks, want %d", got, devices*pushes)
	}
	if flushes.Load() < 1 || flushes.Load() > devices*pushes {
		t.Fatalf("flush count %d out of range", flushes.Load())
	}
}

func TestBatcherCoalesces(t *testing.T) {
	// One worker, one slow first task: everything submitted while it
	// runs must drain in a single greedy run.
	runs := make(chan int, 16)
	b := NewBatcher(1, 64, func(run int) { runs <- run }, nil)
	defer b.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		t := NewTask()
		b.Submit(t, func() { close(started); <-gate })
	}()
	<-started

	const queued = 8
	var wg sync.WaitGroup
	var executed atomic.Int64
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Submit(NewTask(), func() { executed.Add(1) })
		}()
	}
	// Let the submitters reach the queue, then release the worker.
	for b.Depth() < queued {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := executed.Load(); got != queued {
		t.Fatalf("executed %d, want %d", got, queued)
	}
	if run := <-runs; run != 1+queued {
		t.Fatalf("first flush coalesced %d tasks, want %d", run, 1+queued)
	}
}

func TestBatcherCloseDrainsAndGoesInline(t *testing.T) {
	var executed atomic.Int64
	b := NewBatcher(4, 128, nil, nil)

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Submit(NewTask(), func() { executed.Add(1) })
		}()
	}
	b.Close()
	wg.Wait()
	if got := executed.Load(); got != 32 {
		t.Fatalf("executed %d of 32 tasks across Close", got)
	}

	// After Close, Submit degrades to inline execution.
	ran := false
	b.Submit(NewTask(), func() { ran = true })
	if !ran {
		t.Fatal("post-Close Submit did not run inline")
	}
	b.Close() // idempotent
}
