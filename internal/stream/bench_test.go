package stream

import (
	"sync/atomic"
	"testing"
)

// benchBatch is a realistic push: 128 samples per axis at the F100
// config, the batch size one classification window needs.
func benchBatch() *BatchMsg {
	m := &BatchMsg{Seq: 1, Config: testCfg, StartAt: 0}
	m.X = make([]float64, 128)
	m.Y = make([]float64, 128)
	m.Z = make([]float64, 128)
	for i := range m.X {
		m.X[i] = float64(i) * 0.01
		m.Y[i] = float64(i) * 0.02
		m.Z[i] = float64(i) * 0.03
	}
	return m
}

// BenchmarkStreamFrameEncode measures building one batch frame into a
// reused buffer — the device-side (and ack-side) hot path. Pinned at 0
// allocs/op by scripts/bench-diff.sh.
func BenchmarkStreamFrameEncode(b *testing.B) {
	m := benchBatch()
	var buf []byte
	buf = BeginFrame(buf[:0], FrameBatch)
	buf = AppendBatch(buf, m)
	buf = EndFrame(buf, 0)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = BeginFrame(buf[:0], FrameBatch)
		buf = AppendBatch(buf, m)
		buf = EndFrame(buf, 0)
	}
}

// BenchmarkStreamFrameDecode measures envelope validation plus batch
// payload decode into reused structs — the gateway-side hot path.
// Pinned at 0 allocs/op by scripts/bench-diff.sh.
func BenchmarkStreamFrameDecode(b *testing.B) {
	m := benchBatch()
	data := AppendFrame(nil, FrameBatch, AppendBatch(nil, m))
	var dec BatchMsg
	if err := dec.Decode(data[HeaderLen : len(data)-TrailerLen]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _, err := DecodeFrame(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader feeds the same encoded frame forever, so the streaming
// Reader's steady state is measurable without a real peer.
type loopReader struct {
	data []byte
	off  int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkStreamReaderNext measures the full streaming decode loop —
// header read, validation, payload+CRC read into the reused buffer.
func BenchmarkStreamReaderNext(b *testing.B) {
	m := benchBatch()
	data := AppendFrame(nil, FrameBatch, AppendBatch(nil, m))
	rd := NewReader(&loopReader{data: data})
	if _, err := rd.Next(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamBatcher measures admission throughput under
// concurrent submitters — the coalescing path the streamed pushes
// funnel through.
func BenchmarkStreamBatcher(b *testing.B) {
	var executed atomic.Int64
	bt := NewBatcher(4, 256, nil, nil)
	defer bt.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		task := NewTask()
		fn := func() { executed.Add(1) }
		for pb.Next() {
			bt.Submit(task, fn)
		}
	})
}
