package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"strings"

	"adasense/internal/sensor"
)

// Client is the device side of one ADSP connection: dial, hello,
// welcome, then one push at a time. It is the shared wire driver for
// adasense-loadgen's stream transport and the e2e tests, and it holds
// the same zero-alloc discipline as the server: frames encode into a
// reused write buffer and acknowledgements decode into a reused
// EventsMsg.
//
// A Client is not safe for concurrent use — ADSP serializes a device's
// pushes by design (the next batch follows the previous batch's ack).
type Client struct {
	rwc io.ReadWriteCloser
	rd  *Reader

	device  string
	seq     uint64
	cfg     sensor.Config
	welcome Welcome

	wbuf   []byte
	events EventsMsg
}

// ServerError reports a per-batch refusal (an ADSP error frame); the
// connection remains usable. The embedded message's Config is the
// configuration the server directed — Dial/Push apply it before
// returning, so the next sampled batch self-heals a config mismatch.
type ServerError struct {
	ErrorMsg
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("stream: server refused batch %d: %s (%s)", e.Seq, e.Msg, e.Code)
}

// GoodbyeError reports the server closing the connection with a
// goodbye frame. Redirect is non-nil when a redirect frame preceded
// the goodbye (Code == CodeRedirect): it names the replica that owns
// the device, and the caller re-dials there.
type GoodbyeError struct {
	Code     CloseCode
	Msg      string
	Redirect *Redirect
}

func (e *GoodbyeError) Error() string {
	if e.Redirect != nil {
		return fmt.Sprintf("stream: server closed: %s (%s) -> %s", e.Msg, e.Code, e.Redirect.ReplicaURL)
	}
	return fmt.Sprintf("stream: server closed: %s (%s)", e.Msg, e.Code)
}

// Dial connects to an ADSP endpoint and completes the hello/welcome
// handshake for the given device. The target selects the transport by
// scheme: "ws://" or "http://" dials the WebSocket upgrade at
// /v1/stream (a path already present in the URL is kept), "tcp://"
// dials the gateway's raw -stream-addr listener. Auth is in-band: the
// bearer token rides in the hello frame.
//
// A refusal by goodbye frame (draining, unauthorized, redirect,
// capacity) returns a *GoodbyeError with the connection already
// closed.
func Dial(ctx context.Context, target, device, token string) (*Client, error) {
	rwc, err := dialTransport(ctx, target)
	if err != nil {
		return nil, err
	}
	c := &Client{rwc: rwc, rd: NewReader(rwc), device: device}
	c.wbuf = AppendFrame(c.wbuf[:0], FrameHello, AppendHello(nil, Hello{Device: device, Token: token}))
	if _, err := rwc.Write(c.wbuf); err != nil {
		rwc.Close()
		return nil, err
	}
	var redirect *Redirect
	for {
		f, err := c.rd.Next()
		if err != nil {
			rwc.Close()
			return nil, err
		}
		switch f.Type {
		case FrameWelcome:
			w, err := DecodeWelcome(f.Payload)
			if err != nil {
				rwc.Close()
				return nil, err
			}
			c.welcome = w
			c.cfg = w.Config
			return c, nil
		case FrameRedirect:
			r, err := DecodeRedirect(f.Payload)
			if err != nil {
				rwc.Close()
				return nil, err
			}
			redirect = &r
		case FrameGoodbye:
			g, _ := DecodeGoodbye(f.Payload)
			rwc.Close()
			return nil, &GoodbyeError{Code: g.Code, Msg: g.Msg, Redirect: redirect}
		case FramePing:
			if err := c.writeFrame(FramePong, f.Payload); err != nil {
				rwc.Close()
				return nil, err
			}
		default:
			rwc.Close()
			return nil, fmt.Errorf("%w: %s frame before welcome", errPayload, f.Type)
		}
	}
}

// dialTransport opens the byte stream behind an ADSP target URL.
func dialTransport(ctx context.Context, target string) (io.ReadWriteCloser, error) {
	if rest, ok := strings.CutPrefix(target, "tcp://"); ok {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", rest)
	}
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %q: %w", target, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/stream"
	}
	return DialWS(ctx, u.String())
}

// Welcome returns the handshake's welcome message.
func (c *Client) Welcome() Welcome { return c.welcome }

// Config returns the sensor configuration the server currently directs
// this device to sample at, updated by every welcome, events ack,
// error frame and config push.
func (c *Client) Config() sensor.Config { return c.cfg }

// Device returns the device id this connection authenticated as.
func (c *Client) Device() string { return c.device }

func (c *Client) writeFrame(typ FrameType, payload []byte) error {
	c.wbuf = AppendFrame(c.wbuf[:0], typ, payload)
	_, err := c.rwc.Write(c.wbuf)
	return err
}

// Push sends one batch and blocks for its acknowledgement. The
// returned EventsMsg is reused by the next Push. Error cases:
//
//   - *ServerError: the batch was refused (rate limit, config
//     mismatch); the connection stays open and the directed config has
//     been applied.
//   - *GoodbyeError: the server closed the connection (drain,
//     redirect, session closed); re-dial — at Redirect.ReplicaURL if
//     set — and resend the batch.
//   - anything else: transport failure; the connection is unusable.
func (c *Client) Push(b *sensor.Batch) (*EventsMsg, error) {
	c.seq++
	m := BatchMsg{Seq: c.seq, Config: b.Config, StartAt: b.StartAt, X: b.X, Y: b.Y, Z: b.Z}
	c.wbuf = BeginFrame(c.wbuf[:0], FrameBatch)
	c.wbuf = AppendBatch(c.wbuf, &m)
	c.wbuf = EndFrame(c.wbuf, 0)
	if _, err := c.rwc.Write(c.wbuf); err != nil {
		return nil, err
	}
	var redirect *Redirect
	for {
		f, err := c.rd.Next()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case FrameEvents:
			if err := c.events.Decode(f.Payload); err != nil {
				return nil, err
			}
			if c.events.Seq != c.seq {
				return nil, fmt.Errorf("%w: events ack for batch %d, expected %d", errPayload, c.events.Seq, c.seq)
			}
			c.cfg = c.events.Config
			return &c.events, nil
		case FrameError:
			e, err := DecodeError(f.Payload)
			if err != nil {
				return nil, err
			}
			c.cfg = e.Config
			return nil, &ServerError{ErrorMsg: e}
		case FrameConfig:
			cfg, err := DecodeConfig(f.Payload)
			if err != nil {
				return nil, err
			}
			c.cfg = cfg
		case FrameRedirect:
			r, err := DecodeRedirect(f.Payload)
			if err != nil {
				return nil, err
			}
			redirect = &r
		case FrameGoodbye:
			g, _ := DecodeGoodbye(f.Payload)
			c.rwc.Close()
			return nil, &GoodbyeError{Code: g.Code, Msg: g.Msg, Redirect: redirect}
		case FramePing:
			if err := c.writeFrame(FramePong, f.Payload); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unexpected %s frame in push exchange", errPayload, f.Type)
		}
	}
}

// Ping round-trips a liveness probe, returning an error if the echoed
// payload does not match. A config push interleaved with the pong is
// applied on the way.
func (c *Client) Ping() error {
	token := [8]byte{'a', 'd', 's', 'p', 'p', 'i', 'n', 'g'}
	if err := c.writeFrame(FramePing, token[:]); err != nil {
		return err
	}
	var redirect *Redirect
	for {
		f, err := c.rd.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case FramePong:
			if string(f.Payload) != string(token[:]) {
				return fmt.Errorf("%w: pong echo mismatch", errPayload)
			}
			return nil
		case FrameConfig:
			cfg, err := DecodeConfig(f.Payload)
			if err != nil {
				return err
			}
			c.cfg = cfg
		case FrameRedirect:
			r, err := DecodeRedirect(f.Payload)
			if err != nil {
				return err
			}
			redirect = &r
		case FrameGoodbye:
			g, _ := DecodeGoodbye(f.Payload)
			c.rwc.Close()
			return &GoodbyeError{Code: g.Code, Msg: g.Msg, Redirect: redirect}
		case FramePing:
			if err := c.writeFrame(FramePong, f.Payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected %s frame in ping exchange", errPayload, f.Type)
		}
	}
}

// Close says goodbye (best effort) and closes the connection.
func (c *Client) Close() error {
	c.writeFrame(FrameGoodbye, AppendGoodbye(nil, Goodbye{Code: CodeOK}))
	return c.rwc.Close()
}

// IsGoodbye reports whether err is a server goodbye with the given
// code, unwrapping as needed.
func IsGoodbye(err error, code CloseCode) bool {
	var g *GoodbyeError
	return errors.As(err, &g) && g.Code == code
}
