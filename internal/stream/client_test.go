package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"adasense/internal/sensor"
	"adasense/internal/telemetry"
)

// fakeServer runs a scripted ADSP peer on a raw TCP listener and
// returns its "tcp://" target. The script receives the accepted
// connection after the hello/welcome handshake has completed.
func fakeServer(t *testing.T, welcome Welcome, script func(conn net.Conn, rd *Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := NewReader(conn)
		f, err := rd.Next()
		if err != nil || f.Type != FrameHello {
			t.Errorf("server: first frame = %v, %v; want hello", f.Type, err)
			return
		}
		if _, err := DecodeHello(f.Payload); err != nil {
			t.Errorf("server: bad hello: %v", err)
			return
		}
		conn.Write(AppendFrame(nil, FrameWelcome, AppendWelcome(nil, welcome)))
		if script != nil {
			script(conn, rd)
		}
	}()
	return "tcp://" + ln.Addr().String()
}

func dialTest(t *testing.T, target string) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, target, "device-1", "token")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientHandshakeAndPush(t *testing.T) {
	w := Welcome{Config: testCfg, ModelGen: 3, Resumed: true}
	target := fakeServer(t, w, func(conn net.Conn, rd *Reader) {
		var batch BatchMsg
		for {
			f, err := rd.Next()
			if err != nil {
				return
			}
			if f.Type != FrameBatch {
				continue
			}
			if err := batch.Decode(f.Payload); err != nil {
				t.Errorf("server: batch decode: %v", err)
				return
			}
			ack := EventsMsg{Seq: batch.Seq, Config: batch.Config, Events: []Event{
				{Activity: 2, Confidence: 0.8, Config: batch.Config},
			}}
			conn.Write(AppendFrame(nil, FrameEvents, AppendEvents(nil, &ack)))
		}
	})

	c := dialTest(t, target)
	if got := c.Welcome(); got != w {
		t.Fatalf("Welcome() = %+v, want %+v", got, w)
	}
	if c.Config() != testCfg || c.Device() != "device-1" {
		t.Fatalf("Config/Device = %+v / %q", c.Config(), c.Device())
	}

	b := &sensor.Batch{Config: testCfg, StartAt: 1, X: []float64{1, 2}, Y: []float64{3, 4}, Z: []float64{5, 6}}
	for i := 0; i < 3; i++ {
		ev, err := c.Push(b)
		if err != nil {
			t.Fatalf("Push %d: %v", i, err)
		}
		if len(ev.Events) != 1 || ev.Events[0].Activity != 2 {
			t.Fatalf("Push %d ack = %+v", i, ev)
		}
	}
}

func TestClientServerErrorAppliesConfig(t *testing.T) {
	directed := sensor.Config{FreqHz: 50, AvgWindow: 64}
	target := fakeServer(t, Welcome{Config: testCfg}, func(conn net.Conn, rd *Reader) {
		f, err := rd.Next()
		if err != nil || f.Type != FrameBatch {
			return
		}
		var batch BatchMsg
		batch.Decode(f.Payload)
		e := ErrorMsg{Seq: batch.Seq, Code: CodeBadBatch, Config: directed, Msg: "config mismatch"}
		conn.Write(AppendFrame(nil, FrameError, AppendError(nil, e)))
	})

	c := dialTest(t, target)
	b := &sensor.Batch{Config: testCfg, X: []float64{1}, Y: []float64{1}, Z: []float64{1}}
	_, err := c.Push(b)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadBatch {
		t.Fatalf("Push err = %v, want *ServerError CodeBadBatch", err)
	}
	if c.Config() != directed {
		t.Fatalf("Config() = %+v, want the directed %+v", c.Config(), directed)
	}
}

func TestClientRedirectGoodbye(t *testing.T) {
	red := Redirect{ReplicaID: "replica-b", ReplicaURL: "http://10.9.9.9:1234"}
	target := fakeServer(t, Welcome{Config: testCfg}, func(conn net.Conn, rd *Reader) {
		if f, err := rd.Next(); err != nil || f.Type != FrameBatch {
			return
		}
		conn.Write(AppendFrame(nil, FrameRedirect, AppendRedirect(nil, red)))
		conn.Write(AppendFrame(nil, FrameGoodbye, AppendGoodbye(nil, Goodbye{Code: CodeRedirect, Msg: "not owner"})))
	})

	c := dialTest(t, target)
	b := &sensor.Batch{Config: testCfg, X: []float64{1}, Y: []float64{1}, Z: []float64{1}}
	_, err := c.Push(b)
	var g *GoodbyeError
	if !errors.As(err, &g) || g.Code != CodeRedirect {
		t.Fatalf("Push err = %v, want *GoodbyeError CodeRedirect", err)
	}
	if g.Redirect == nil || *g.Redirect != red {
		t.Fatalf("redirect = %+v, want %+v", g.Redirect, red)
	}
	if !IsGoodbye(err, CodeRedirect) || IsGoodbye(err, CodeDraining) {
		t.Fatal("IsGoodbye misclassified the error")
	}
}

func TestClientDialRefusedByGoodbye(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := NewReader(conn)
		if _, err := rd.Next(); err != nil {
			return
		}
		conn.Write(AppendFrame(nil, FrameGoodbye, AppendGoodbye(nil, Goodbye{Code: CodeDraining, Msg: "draining"})))
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = Dial(ctx, "tcp://"+ln.Addr().String(), "d", "t")
	if !IsGoodbye(err, CodeDraining) {
		t.Fatalf("Dial err = %v, want goodbye CodeDraining", err)
	}
}

func TestClientPingAndConfigPush(t *testing.T) {
	pushed := sensor.Config{FreqHz: 25, AvgWindow: 16}
	target := fakeServer(t, Welcome{Config: testCfg}, func(conn net.Conn, rd *Reader) {
		f, err := rd.Next()
		if err != nil || f.Type != FramePing {
			return
		}
		// Interleave a config push before the pong; the client applies it.
		conn.Write(AppendFrame(nil, FrameConfig, AppendConfig(nil, pushed)))
		conn.Write(AppendFrame(nil, FramePong, f.Payload))
	})

	c := dialTest(t, target)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if c.Config() != pushed {
		t.Fatalf("Config() = %+v, want pushed %+v", c.Config(), pushed)
	}
}

func TestClientEOFOnPeerVanishing(t *testing.T) {
	target := fakeServer(t, Welcome{Config: testCfg}, func(conn net.Conn, rd *Reader) {
		rd.Next()
		conn.Close() // vanish mid-exchange
	})
	c := dialTest(t, target)
	b := &sensor.Batch{Config: testCfg, X: []float64{1}, Y: []float64{1}, Z: []float64{1}}
	if _, err := c.Push(b); err == nil {
		t.Fatal("Push succeeded against a vanished peer")
	}
}

// TestFrameTypesFitTelemetry pins the cross-package invariant the
// stream counters rely on: every ADSP frame type indexes the
// fixed-size telemetry arrays, and every type has a label name.
func TestFrameTypesFitTelemetry(t *testing.T) {
	for typ := FrameHello; typ <= FrameGoodbye; typ++ {
		if uint8(typ) >= telemetry.NumFrameTypes {
			t.Errorf("frame type %s (0x%02x) does not fit telemetry.NumFrameTypes = %d",
				typ, uint8(typ), telemetry.NumFrameTypes)
		}
	}
	var sc telemetry.StreamCounters
	sc.FrameIn(uint8(FrameBatch))
	sc.FrameOut(uint8(FrameEvents))
	sc.FrameIn(0xFF) // out of range: must be dropped, not panic
	s := sc.Snapshot()
	if s.FramesIn[FrameBatch] != 1 || s.FramesOut[FrameEvents] != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestDialUnsupportedTarget(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, "ftp://host/x", "d", "t"); err == nil {
		t.Fatal("Dial accepted an ftp target")
	}
}

var _ io.ReadWriteCloser = (*WSConn)(nil)
