// Package stream implements ADSP, the adasense streaming protocol: a
// versioned, length-prefixed, CRC-protected binary frame container
// carried over one persistent connection per device (WebSocket or raw
// TCP — the framing is transport-agnostic, any ordered byte stream
// works). It replaces the per-batch HTTP/JSON request with a single
// long-lived push channel: the device sends sensor-batch frames, the
// gateway answers with classification events and server-pushed sensor
// reconfigurations (the paper's adaptation loop, without polling), and
// ring-routing mistakes are answered with a redirect frame so the
// device reconnects to its owner instead of paying a proxy hop per
// push.
//
// The container discipline matches the repo's other binary formats
// (ADSC model containers, ADSS session state): magic, version byte,
// explicit payload length bound-checked before any allocation, and a
// CRC32 over the payload so truncation and corruption are detected at
// the frame boundary. The decode path is allocation-free at steady
// state: Reader reuses one payload buffer across frames, and the
// per-message Decode methods reuse the caller's slices.
//
// docs/streaming.md is the normative wire specification; the constants
// in this file are its source of truth (scripts/check-docs.sh
// cross-checks them against the spec tables).
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame envelope layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "ADSP"
//	4       1     version (1)
//	5       1     frame type
//	6       2     flags (reserved, must be 0 in version 1)
//	8       4     payload length n (≤ MaxFramePayload)
//	12      n     payload
//	12+n    4     CRC32 (IEEE) of the payload bytes
const (
	// Magic opens every ADSP frame.
	Magic = "ADSP"
	// Version is the protocol version this package speaks. Version
	// checking is strict: a frame carrying any other version is refused.
	Version = 1
	// HeaderLen is the fixed envelope prefix before the payload.
	HeaderLen = 12
	// TrailerLen is the CRC32 suffix after the payload.
	TrailerLen = 4
	// FrameOverhead is the total envelope cost per frame.
	FrameOverhead = HeaderLen + TrailerLen
	// MaxFramePayload bounds one frame's payload. It is validated before
	// any buffer is sized, so a hostile length prefix cannot drive an
	// allocation larger than this.
	MaxFramePayload = 1 << 20
)

// FrameType identifies what a frame's payload carries. Unknown types
// are a protocol error in version 1 (strict, like the flags field): a
// future version that adds types bumps Version.
type FrameType uint8

// The ADSP frame types. The zero value is invalid on the wire.
const (
	// FrameHello is the connection's first client frame: device id plus
	// bearer token (auth is in-band so WebSocket and raw TCP share one
	// handshake).
	FrameHello FrameType = 0x01
	// FrameWelcome accepts a hello: the sensor config the device must
	// sample at, the serving model generation, and whether the session
	// resumed an existing one.
	FrameWelcome FrameType = 0x02
	// FrameBatch pushes one batch of raw 3-axis samples upstream.
	FrameBatch FrameType = 0x03
	// FrameEvents acknowledges one batch with its completed
	// classification events and the device's current directed config.
	FrameEvents FrameType = 0x04
	// FrameConfig is a server-initiated sensor reconfiguration push.
	FrameConfig FrameType = 0x05
	// FramePing is a liveness probe (either direction); the payload is
	// opaque and echoed back.
	FramePing FrameType = 0x06
	// FramePong answers a ping, echoing its payload.
	FramePong FrameType = 0x07
	// FrameRedirect tells a misrouted device which replica owns it; a
	// goodbye frame with CodeRedirect follows.
	FrameRedirect FrameType = 0x08
	// FrameError reports a per-batch failure that leaves the connection
	// open (rate limit, config mismatch).
	FrameError FrameType = 0x09
	// FrameGoodbye closes the connection gracefully with a close code.
	FrameGoodbye FrameType = 0x0A
)

// frameNames maps the frame types to their metric label / spec names.
var frameNames = [...]string{
	FrameHello:    "hello",
	FrameWelcome:  "welcome",
	FrameBatch:    "batch",
	FrameEvents:   "events",
	FrameConfig:   "config",
	FramePing:     "ping",
	FramePong:     "pong",
	FrameRedirect: "redirect",
	FrameError:    "error",
	FrameGoodbye:  "goodbye",
}

// Valid reports whether t is a frame type this protocol version knows.
func (t FrameType) Valid() bool { return t >= FrameHello && t <= FrameGoodbye }

// String returns the frame type's wire-spec name, which is also its
// metric label value.
func (t FrameType) String() string {
	if t.Valid() {
		return frameNames[t]
	}
	return "unknown"
}

// CloseCode explains why a connection is closing (goodbye frames) or
// why a batch was refused (error frames). Codes are stable wire
// constants documented in docs/streaming.md.
type CloseCode uint16

// The ADSP close and error codes.
const (
	// CodeOK is a clean, voluntary close.
	CodeOK CloseCode = 0
	// CodeProtocol rejects a malformed or out-of-order frame.
	CodeProtocol CloseCode = 1
	// CodeUnauthorized rejects a hello with a missing or wrong token.
	CodeUnauthorized CloseCode = 2
	// CodeVersion rejects an unsupported protocol version.
	CodeVersion CloseCode = 3
	// CodeTooLarge rejects a frame whose payload exceeds the limit.
	CodeTooLarge CloseCode = 4
	// CodeRateLimited refuses one batch at a token bucket; the
	// connection stays open and the device retries after backoff.
	CodeRateLimited CloseCode = 5
	// CodeDraining closes because the gateway is shutting down.
	CodeDraining CloseCode = 6
	// CodeRedirect closes because another replica owns the device; a
	// redirect frame naming the owner precedes the goodbye.
	CodeRedirect CloseCode = 7
	// CodeSessionClosed closes because the bound session was closed
	// underneath the connection (eviction, operator delete).
	CodeSessionClosed CloseCode = 8
	// CodeNotOwned rejects a device this replica's ring does not place
	// here and whose owner is unknown.
	CodeNotOwned CloseCode = 9
	// CodeBadBatch refuses one batch the session cannot accept (config
	// mismatch, malformed samples); the error frame carries the config
	// the device must resample at.
	CodeBadBatch CloseCode = 10
	// CodeInternal closes on an unexpected server-side failure.
	CodeInternal CloseCode = 11
	// CodeCapacity refuses a hello because the session registry is at
	// its max-sessions cap.
	CodeCapacity CloseCode = 12
)

// codeNames maps close codes to their spec names.
var codeNames = [...]string{
	CodeOK:            "ok",
	CodeProtocol:      "protocol",
	CodeUnauthorized:  "unauthorized",
	CodeVersion:       "version",
	CodeTooLarge:      "too_large",
	CodeRateLimited:   "rate_limited",
	CodeDraining:      "draining",
	CodeRedirect:      "redirect",
	CodeSessionClosed: "session_closed",
	CodeNotOwned:      "not_owned",
	CodeBadBatch:      "bad_batch",
	CodeInternal:      "internal",
	CodeCapacity:      "capacity",
}

// String returns the close code's spec name.
func (c CloseCode) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "unknown"
}

// Frame decoding errors. Reader and DecodeFrame wrap these with
// positional detail; match with errors.Is.
var (
	// ErrFrameTruncated reports a frame shorter than its envelope claims.
	ErrFrameTruncated = errors.New("stream: truncated frame")
	// ErrBadMagic reports bytes that do not open with "ADSP".
	ErrBadMagic = errors.New("stream: bad frame magic")
	// ErrBadVersion reports an unsupported protocol version byte.
	ErrBadVersion = errors.New("stream: unsupported protocol version")
	// ErrBadFlags reports nonzero reserved flags (strict in version 1).
	ErrBadFlags = errors.New("stream: nonzero reserved frame flags")
	// ErrBadType reports an unknown frame type byte.
	ErrBadType = errors.New("stream: unknown frame type")
	// ErrFrameTooLarge reports a payload length above MaxFramePayload.
	ErrFrameTooLarge = errors.New("stream: frame payload exceeds limit")
	// ErrBadChecksum reports a payload failing its CRC32.
	ErrBadChecksum = errors.New("stream: frame checksum mismatch")
)

// Frame is one decoded ADSP frame. Payload aliases the decode source
// (a Reader's internal buffer or the DecodeFrame input) and is only
// valid until the next read into that buffer.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// BeginFrame appends a frame envelope header for typ to dst with a
// zero length placeholder, returning the extended slice. The caller
// appends the payload in place and seals the frame with EndFrame,
// passing len(dst) as it was before this call — building a frame
// around an in-place payload without a staging copy.
func BeginFrame(dst []byte, typ FrameType) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, Version, byte(typ))
	dst = binary.LittleEndian.AppendUint16(dst, 0) // flags, reserved
	return binary.LittleEndian.AppendUint32(dst, 0)
}

// EndFrame seals a frame begun with BeginFrame at offset start:
// patches the payload length and appends the payload CRC32. It panics
// if the payload outgrew MaxFramePayload — message encoders bound
// their inputs, so an oversized payload is a programming error, not a
// wire condition.
func EndFrame(dst []byte, start int) []byte {
	n := len(dst) - start - HeaderLen
	if n < 0 || n > MaxFramePayload {
		panic(fmt.Sprintf("stream: EndFrame payload length %d out of range", n))
	}
	binary.LittleEndian.PutUint32(dst[start+8:], uint32(n))
	payload := dst[start+HeaderLen:]
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// AppendFrame appends one complete frame carrying payload to dst and
// returns the extended slice. Appending into a slice with sufficient
// capacity does not allocate. Panics if payload exceeds
// MaxFramePayload (see EndFrame).
func AppendFrame(dst []byte, typ FrameType, payload []byte) []byte {
	start := len(dst)
	dst = BeginFrame(dst, typ)
	dst = append(dst, payload...)
	return EndFrame(dst, start)
}

// DecodeFrame decodes the first frame in data, returning it and the
// remaining bytes. The frame's payload aliases data. All envelope
// fields are validated — magic, version, reserved flags, type, length
// bound, CRC — before the payload is touched, and no allocation
// happens on any input.
func DecodeFrame(data []byte) (Frame, []byte, error) {
	if len(data) < HeaderLen {
		return Frame{}, nil, fmt.Errorf("%w: %d header bytes of %d", ErrFrameTruncated, len(data), HeaderLen)
	}
	if string(data[:4]) != Magic {
		return Frame{}, nil, ErrBadMagic
	}
	if data[4] != Version {
		return Frame{}, nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, data[4], Version)
	}
	typ := FrameType(data[5])
	if !typ.Valid() {
		return Frame{}, nil, fmt.Errorf("%w: 0x%02x", ErrBadType, data[5])
	}
	if flags := binary.LittleEndian.Uint16(data[6:8]); flags != 0 {
		return Frame{}, nil, fmt.Errorf("%w: 0x%04x", ErrBadFlags, flags)
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	if n > MaxFramePayload {
		return Frame{}, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFramePayload)
	}
	if uint64(len(data)) < FrameOverhead+uint64(n) {
		return Frame{}, nil, fmt.Errorf("%w: %d bytes of %d", ErrFrameTruncated, len(data), FrameOverhead+n)
	}
	payload := data[HeaderLen : HeaderLen+n]
	want := binary.LittleEndian.Uint32(data[HeaderLen+n : FrameOverhead+n])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Frame{}, nil, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	return Frame{Type: typ, Payload: payload}, data[FrameOverhead+n:], nil
}

// Reader decodes a sequence of frames from a byte stream, reusing one
// payload buffer across frames: after warm-up, Next allocates nothing.
// The returned Frame's payload is valid only until the next call.
// Reader is not safe for concurrent use.
type Reader struct {
	r      io.Reader
	header [HeaderLen]byte
	// buf holds payload+trailer; grown on demand, capped by the
	// length-bound check at MaxFramePayload+TrailerLen.
	buf []byte
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads and validates the next frame. A clean end of stream at a
// frame boundary returns io.EOF; a stream ending mid-frame returns
// io.ErrUnexpectedEOF. The envelope's length field is validated
// against MaxFramePayload before the payload buffer is sized, so a
// hostile peer cannot drive allocation beyond that bound.
func (rd *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(rd.r, rd.header[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
		}
		return Frame{}, err
	}
	h := rd.header[:]
	if string(h[:4]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if h[4] != Version {
		return Frame{}, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, h[4], Version)
	}
	typ := FrameType(h[5])
	if !typ.Valid() {
		return Frame{}, fmt.Errorf("%w: 0x%02x", ErrBadType, h[5])
	}
	if flags := binary.LittleEndian.Uint16(h[6:8]); flags != 0 {
		return Frame{}, fmt.Errorf("%w: 0x%04x", ErrBadFlags, flags)
	}
	n := binary.LittleEndian.Uint32(h[8:12])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFramePayload)
	}
	need := int(n) + TrailerLen
	if cap(rd.buf) < need {
		rd.buf = make([]byte, need)
	}
	rd.buf = rd.buf[:need]
	if _, err := io.ReadFull(rd.r, rd.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
		}
		return Frame{}, err
	}
	payload := rd.buf[:n]
	want := binary.LittleEndian.Uint32(rd.buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Frame{}, fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	return Frame{Type: typ, Payload: payload}, nil
}
