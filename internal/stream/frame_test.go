package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello adsp")
	data := AppendFrame(nil, FrameBatch, payload)
	if len(data) != FrameOverhead+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(data), FrameOverhead+len(payload))
	}
	f, rest, err := DecodeFrame(data)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if f.Type != FrameBatch || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("decoded %v %q", f.Type, f.Payload)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes, want 0", len(rest))
	}
}

func TestFrameSequenceAndReader(t *testing.T) {
	var data []byte
	payloads := [][]byte{[]byte("one"), {}, []byte(strings.Repeat("x", 1000))}
	types := []FrameType{FrameHello, FramePing, FrameEvents}
	for i, p := range payloads {
		data = AppendFrame(data, types[i], p)
	}

	// Slice-at-a-time decoding.
	rest := data
	for i := range payloads {
		var f Frame
		var err error
		f, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != types[i] || !bytes.Equal(f.Payload, payloads[i]) {
			t.Fatalf("frame %d = %v %q", i, f.Type, f.Payload)
		}
	}

	// Streaming decoding through one Reader.
	rd := NewReader(bytes.NewReader(data))
	for i := range payloads {
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if f.Type != types[i] || !bytes.Equal(f.Payload, payloads[i]) {
			t.Fatalf("Next %d = %v %q", i, f.Type, f.Payload)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want io.EOF", err)
	}
}

func TestBeginEndFrameMatchesAppendFrame(t *testing.T) {
	payload := []byte("in-place payload")
	want := AppendFrame(nil, FrameConfig, payload)
	prefix := []byte("prefix")
	got := append([]byte(nil), prefix...)
	start := len(got)
	got = BeginFrame(got, FrameConfig)
	got = append(got, payload...)
	got = EndFrame(got, start)
	if !bytes.Equal(got[len(prefix):], want) {
		t.Fatalf("BeginFrame/EndFrame differs from AppendFrame")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame(nil, FrameBatch, []byte("payload"))
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short header", good[:HeaderLen-1], ErrFrameTruncated},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", mutate(func(b []byte) { b[4] = 99 }), ErrBadVersion},
		{"bad type", mutate(func(b []byte) { b[5] = 0xEE }), ErrBadType},
		{"zero type", mutate(func(b []byte) { b[5] = 0 }), ErrBadType},
		{"nonzero flags", mutate(func(b []byte) { b[6] = 1 }), ErrBadFlags},
		{"oversize length", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], MaxFramePayload+1)
		}), ErrFrameTooLarge},
		{"truncated payload", good[:len(good)-5], ErrFrameTruncated},
		{"bad crc", mutate(func(b []byte) { b[len(b)-1] ^= 0xff }), ErrBadChecksum},
		{"corrupt payload", mutate(func(b []byte) { b[HeaderLen] ^= 0xff }), ErrBadChecksum},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		rd := NewReader(bytes.NewReader(tc.data))
		if _, err := rd.Next(); !errors.Is(err, tc.want) && !errors.Is(err, ErrFrameTruncated) {
			t.Errorf("%s (Reader): err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestReaderHostileLength proves the length bound is enforced before
// the payload buffer is sized: a header advertising 4 GiB must be
// refused without any allocation.
func TestReaderHostileLength(t *testing.T) {
	hdr := make([]byte, HeaderLen)
	copy(hdr, Magic)
	hdr[4] = Version
	hdr[5] = byte(FrameBatch)
	binary.LittleEndian.PutUint32(hdr[8:], 0xFFFFFFFF)
	rd := NewReader(bytes.NewReader(hdr))
	if _, err := rd.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if rd.buf != nil {
		t.Fatalf("reader allocated %d payload bytes for a refused frame", cap(rd.buf))
	}
}

func TestEndFramePanicsOnOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndFrame did not panic on oversized payload")
		}
	}()
	dst := BeginFrame(nil, FrameBatch)
	dst = append(dst, make([]byte, MaxFramePayload+1)...)
	EndFrame(dst, 0)
}

func TestFrameTypeAndCodeNames(t *testing.T) {
	for typ := FrameHello; typ <= FrameGoodbye; typ++ {
		if !typ.Valid() {
			t.Errorf("%#x: Valid() = false", uint8(typ))
		}
		if typ.String() == "unknown" || typ.String() == "" {
			t.Errorf("%#x: unnamed frame type", uint8(typ))
		}
	}
	for _, typ := range []FrameType{0, 0x0B, 0xFF} {
		if typ.Valid() || typ.String() != "unknown" {
			t.Errorf("%#x: accepted as valid", uint8(typ))
		}
	}
	for code := CodeOK; code <= CodeCapacity; code++ {
		if code.String() == "unknown" || code.String() == "" {
			t.Errorf("code %d: unnamed", code)
		}
	}
	if CloseCode(200).String() != "unknown" {
		t.Error("out-of-range close code has a name")
	}
}
