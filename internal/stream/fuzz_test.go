package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives hostile bytes through both frame decoders and
// every payload codec. The contract under fuzzing:
//
//   - reject or round-trip, never panic;
//   - a frame DecodeFrame accepts re-encodes to exactly the bytes it
//     consumed (the envelope codec is bijective on valid frames);
//   - the streaming Reader agrees with the slice decoder on the first
//     frame;
//   - a hostile length prefix never drives the Reader's buffer past
//     MaxFramePayload + TrailerLen (the no-over-allocation bound).
//
// The committed seed corpus in testdata/fuzz/FuzzFrameDecode covers the
// interesting boundaries: a valid round-trip frame, a truncated header,
// a corrupted CRC, an oversized length prefix, and an unknown type.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameHello, AppendHello(nil, Hello{Device: "dev", Token: "tok"})))
	batch := BatchMsg{Seq: 1, Config: testCfg, StartAt: 2, X: []float64{1, 2}, Y: []float64{3, 4}, Z: []float64{5, 6}}
	f.Add(AppendFrame(nil, FrameBatch, AppendBatch(nil, &batch)))
	f.Add([]byte("ADSP")) // truncated header
	bad := AppendFrame(nil, FramePing, []byte("ping"))
	bad[len(bad)-1] ^= 0xFF // corrupted CRC
	f.Add(bad)
	oversize := AppendFrame(nil, FrameBatch, nil)
	binary.LittleEndian.PutUint32(oversize[8:], MaxFramePayload+1)
	f.Add(oversize)
	unknown := AppendFrame(nil, FrameGoodbye, AppendGoodbye(nil, Goodbye{Code: CodeOK}))
	unknown[5] = 0x7F // unknown frame type
	f.Add(unknown)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := DecodeFrame(data)

		rd := NewReader(bytes.NewReader(data))
		rf, rerr := rd.Next()
		if cap(rd.buf) > MaxFramePayload+TrailerLen {
			t.Fatalf("Reader buffer grew to %d bytes", cap(rd.buf))
		}
		if (err == nil) != (rerr == nil) {
			t.Fatalf("DecodeFrame err %v but Reader err %v", err, rerr)
		}

		if err != nil {
			return
		}
		if rf.Type != fr.Type || !bytes.Equal(rf.Payload, fr.Payload) {
			t.Fatalf("Reader decoded %v/%d bytes, DecodeFrame %v/%d bytes",
				rf.Type, len(rf.Payload), fr.Type, len(fr.Payload))
		}
		consumed := data[:len(data)-len(rest)]
		if re := AppendFrame(nil, fr.Type, fr.Payload); !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch: %x vs consumed %x", re, consumed)
		}

		// The payload codecs must reject-or-round-trip too; none may
		// panic on a payload that passed the envelope CRC.
		switch fr.Type {
		case FrameHello:
			if h, err := DecodeHello(fr.Payload); err == nil {
				if !bytes.Equal(AppendHello(nil, h), fr.Payload) {
					t.Fatal("hello re-encode mismatch")
				}
			}
		case FrameWelcome:
			if w, err := DecodeWelcome(fr.Payload); err == nil {
				if !bytes.Equal(AppendWelcome(nil, w), fr.Payload) {
					t.Fatal("welcome re-encode mismatch")
				}
			}
		case FrameBatch:
			var m BatchMsg
			if err := m.Decode(fr.Payload); err == nil {
				if !bytes.Equal(AppendBatch(nil, &m), fr.Payload) {
					t.Fatal("batch re-encode mismatch")
				}
			}
		case FrameEvents:
			var m EventsMsg
			if err := m.Decode(fr.Payload); err == nil {
				if !bytes.Equal(AppendEvents(nil, &m), fr.Payload) {
					t.Fatal("events re-encode mismatch")
				}
			}
		case FrameConfig:
			if cfg, err := DecodeConfig(fr.Payload); err == nil {
				if !bytes.Equal(AppendConfig(nil, cfg), fr.Payload) {
					t.Fatal("config re-encode mismatch")
				}
			}
		case FrameRedirect:
			if r, err := DecodeRedirect(fr.Payload); err == nil {
				if !bytes.Equal(AppendRedirect(nil, r), fr.Payload) {
					t.Fatal("redirect re-encode mismatch")
				}
			}
		case FrameError:
			if e, err := DecodeError(fr.Payload); err == nil {
				if !bytes.Equal(AppendError(nil, e), fr.Payload) {
					t.Fatal("error re-encode mismatch")
				}
			}
		case FrameGoodbye:
			if g, err := DecodeGoodbye(fr.Payload); err == nil {
				if !bytes.Equal(AppendGoodbye(nil, g), fr.Payload) {
					t.Fatal("goodbye re-encode mismatch")
				}
			}
		}
	})
}
